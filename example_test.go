package nuevomatch_test

import (
	"bytes"
	"fmt"
	"log"

	"nuevomatch"
)

// figure2 builds the paper's Figure 2 classifier: two fields (IPv4 address,
// port), five overlapping rules, priorities 1 (highest) to 5.
func figure2() *nuevomatch.RuleSet {
	ip := func(s string) uint32 {
		v, err := nuevomatch.ParseIPv4(s)
		if err != nil {
			log.Fatal(err)
		}
		return v
	}
	rs := nuevomatch.NewRuleSet(2)
	rs.AddAuto(nuevomatch.PrefixRange(ip("10.10.0.0"), 16), nuevomatch.Range{Lo: 10, Hi: 18})
	rs.AddAuto(nuevomatch.PrefixRange(ip("10.10.1.0"), 24), nuevomatch.Range{Lo: 15, Hi: 25})
	rs.AddAuto(nuevomatch.PrefixRange(ip("10.0.0.0"), 8), nuevomatch.Range{Lo: 5, Hi: 8})
	rs.AddAuto(nuevomatch.PrefixRange(ip("10.10.3.0"), 24), nuevomatch.Range{Lo: 7, Hi: 20})
	rs.AddAuto(nuevomatch.ExactRange(ip("10.10.3.100")), nuevomatch.ExactRange(19))
	return rs
}

// Open trains a table and serves lookups — the paper's worked example:
// 10.10.3.100:19 matches R3 and R4, and R3 wins on priority.
func ExampleOpen() {
	table, err := nuevomatch.Open(figure2())
	if err != nil {
		log.Fatal(err)
	}
	defer table.Close()

	addr, _ := nuevomatch.ParseIPv4("10.10.3.100")
	fmt.Println(table.Lookup(nuevomatch.Packet{addr, 19}))
	addr, _ = nuevomatch.ParseIPv4("10.9.0.1")
	fmt.Println(table.Lookup(nuevomatch.Packet{addr, 6}))
	addr, _ = nuevomatch.ParseIPv4("192.168.1.1")
	fmt.Println(table.Lookup(nuevomatch.Packet{addr, 80}))
	// Output:
	// 3
	// 2
	// -1
}

// Save and Load round-trip a trained table: the load reconstructs a
// lookup-identical classifier without retraining — the production
// build-offline / serve-warm split.
func ExampleTable_Save() {
	table, err := nuevomatch.Open(figure2())
	if err != nil {
		log.Fatal(err)
	}
	defer table.Close()

	var artifact bytes.Buffer
	if _, err := table.Save(&artifact); err != nil {
		log.Fatal(err)
	}
	loaded, err := nuevomatch.Load(&artifact)
	if err != nil {
		log.Fatal(err)
	}
	defer loaded.Close()

	addr, _ := nuevomatch.ParseIPv4("10.10.3.100")
	pkt := nuevomatch.Packet{addr, 19}
	fmt.Println(table.Lookup(pkt) == loaded.Lookup(pkt))
	// Output:
	// true
}

// Tables stay live after loading: updates apply online and an autopilot
// policy retrains in place when drift accumulates.
func ExampleWithAutopilot() {
	table, err := nuevomatch.Open(figure2(),
		nuevomatch.WithAutopilot(nuevomatch.AutopilotPolicy{
			MaxUpdates:   4,
			MinLiveRules: 1,
			Interval:     -1, // no background watcher: Check drives retrains
		}))
	if err != nil {
		log.Fatal(err)
	}
	defer table.Close()

	for i := 0; i < 4; i++ {
		err := table.Insert(nuevomatch.Rule{
			ID:       100 + i,
			Priority: int32(100 + i),
			Fields:   []nuevomatch.Range{nuevomatch.FullRange(), nuevomatch.ExactRange(uint32(9000 + i))},
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	retrained, err := table.Autopilot().Check()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(retrained)
	fmt.Println(table.Lookup(nuevomatch.Packet{1, 9002}))
	// Output:
	// true
	// 102
}

// OpenCluster shards the same rule-set across independent engines: packets
// route to exactly one shard, spanning rules are replicated, and the
// answers are identical to the unsharded table's.
func ExampleOpenCluster() {
	cluster, err := nuevomatch.OpenCluster(figure2(),
		nuevomatch.WithShards(2),
		nuevomatch.WithPartitionField(0), // shard on the address field
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	addr, _ := nuevomatch.ParseIPv4("10.10.3.100")
	fmt.Println(cluster.Lookup(nuevomatch.Packet{addr, 19}))

	out := make([]int, 2)
	addr2, _ := nuevomatch.ParseIPv4("10.9.0.1")
	cluster.LookupBatch([]nuevomatch.Packet{{addr, 19}, {addr2, 6}}, out)
	fmt.Println(out)
	// Output:
	// 3
	// [3 2]
}
