package nuevomatch

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"

	"nuevomatch/internal/core"
	"nuevomatch/internal/faultinject"
)

// Table is the package's primary handle: a built NuevoMatch classifier with
// a full lifecycle. Build one with Open (training happens here), persist it
// with Save/SaveFile, and reconstruct it — without retraining — with
// Load/LoadFile. Lookups on every path are lock-free and safe for any
// concurrency; updates (Insert/Delete/Modify) serialize internally and may
// run concurrently with lookups; Retrain hot-swaps a freshly trained state
// behind the handle while lookups keep flowing. A Table configured with
// WithAutopilot supervises itself: drift trips the policy, retraining runs
// on a background goroutine, and WithAutopilotPersist re-saves the artifact
// after every swap.
//
// Close releases background resources (the autopilot watcher and pooled
// lookup workers). Lookups remain valid after Close — the published state is
// immutable — but updates fail with ErrClosed, and Close is idempotent.
type Table struct {
	eng    *core.Engine
	ap     *core.Autopilot
	closed atomic.Bool
}

// ErrClosed is returned by update operations on a closed Table.
var ErrClosed = errors.New("nuevomatch: table is closed")

// Option configures Open and Load. The zero configuration reproduces the
// paper's default evaluation setup: up to 4 iSets, 5% minimum coverage,
// RQ-RMI error threshold 64, TupleMerge remainder, no autopilot.
type Option func(*tableConfig)

type tableConfig struct {
	opts        core.Options
	autopilot   *AutopilotPolicy
	persistPath string
	err         error
}

// WithMaxISets caps the number of RQ-RMI iSet models trained. The paper
// finds 1–2 best with CutSplit/NeuroCuts remainders and 4 (the default)
// with TupleMerge (§5.3.2). n <= 0 disables iSets entirely: the table
// degrades to the remainder classifier alone.
func WithMaxISets(n int) Option {
	return func(c *tableConfig) {
		if n <= 0 {
			n = -1
		}
		c.opts.MaxISets = n
	}
}

// WithMinCoverage discards candidate iSets below this fraction of the
// rule-set: the paper uses 0.25 against CutSplit/NeuroCuts and 0.05 (the
// default) against TupleMerge. f <= 0 keeps every iSet however small.
func WithMinCoverage(f float64) Option {
	return func(c *tableConfig) {
		if f <= 0 {
			f = -1
		}
		c.opts.MinCoverage = f
	}
}

// WithRemainder selects the external classifier indexing the rules the
// iSets cannot cover (§3.7). It accepts:
//
//   - a Builder value (TupleMerge, RVH, CutSplit, ...) or any function with
//     the Builder signature;
//   - a registered backend name string ("tuplemerge", "rvh", ...), resolved
//     through the RegisterRemainder registry;
//   - RemainderAuto ("auto"), which builds every registered Freezable
//     backend over the actual remainder rule distribution, scores them
//     (build time, frozen-lookup microbenchmark, memory), and keeps the
//     winner — Stats().RemainderBackend and RemainderScores report the
//     choice.
//
// The default is TupleMerge. On Load, a builder or non-auto name overrides
// the builder recorded in the artifact — required when the table was saved
// with a remainder registered under a custom name; RemainderAuto defers to
// the recorded backend (selection is a build-time decision, re-run by
// Retrain, never by Load). Any other argument type fails Open/Load with an
// error.
func WithRemainder(r any) Option {
	return func(c *tableConfig) {
		switch v := r.(type) {
		case Builder:
			c.opts.Remainder = v
			c.opts.RemainderName = ""
		case func(*RuleSet) (Classifier, error):
			c.opts.Remainder = v
			c.opts.RemainderName = ""
		case string:
			c.opts.RemainderName = v
		default:
			c.err = fmt.Errorf("nuevomatch: WithRemainder wants a Builder or a backend name string, got %T", r)
		}
	}
}

// WithRQRMI tunes per-iSet model training; zero fields take the paper's
// defaults for the iSet's size. Ignored by Load until the next Retrain
// (loading never trains).
func WithRQRMI(cfg RQRMIConfig) Option {
	return func(c *tableConfig) { c.opts.RQRMI = cfg }
}

// WithISetFields restricts which packet fields may carry iSets.
func WithISetFields(fields ...int) Option {
	return func(c *tableConfig) { c.opts.ISetFields = fields }
}

// WithAutopilot attaches a drift supervisor to the table: a background
// watcher polls update drift and retrains in place when the policy trips
// (zero policy fields take the documented defaults; a negative
// policy.Interval disables the watcher so Autopilot().Check drives retrains
// explicitly). The watcher starts immediately and Close stops it.
func WithAutopilot(p AutopilotPolicy) Option {
	return func(c *tableConfig) { c.autopilot = &p }
}

// WithAutopilotPersist re-saves the table to path (atomically: temp file +
// rename) after every successful autopilot retrain, so a restart
// warm-starts from the freshest trained state instead of the artifact it
// booted from. Requires WithAutopilot. Persist failures are recorded in
// Autopilot().Stats() and never undo the in-memory swap.
func WithAutopilotPersist(path string) Option {
	return func(c *tableConfig) { c.persistPath = path }
}

func applyOptions(opts []Option) (tableConfig, error) {
	var c tableConfig
	for _, o := range opts {
		o(&c)
	}
	if c.err != nil {
		return c, c.err
	}
	if c.persistPath != "" && c.autopilot == nil {
		return c, errors.New("nuevomatch: WithAutopilotPersist requires WithAutopilot")
	}
	return c, nil
}

// remainderOverride resolves the configured remainder into the builder
// override a load path passes to core.ReadEngine: an explicit builder or a
// registry-resolved name overrides the artifact's recorded backend, while
// RemainderAuto (and no remainder option at all) returns nil so the
// recorded backend is used.
func (c *tableConfig) remainderOverride() (Builder, error) {
	if name := c.opts.RemainderName; name != "" && name != core.AutoRemainder {
		b, ok := core.RemainderBuilderFor(name)
		if !ok {
			return nil, fmt.Errorf("nuevomatch: unknown remainder classifier %q (register it with RegisterRemainder)", name)
		}
		return b, nil
	}
	return c.opts.Remainder, nil
}

// finish wraps a built or loaded engine into a Table and wires the
// autopilot.
func finish(eng *core.Engine, c tableConfig) *Table {
	t := &Table{eng: eng}
	if c.autopilot != nil {
		policy := *c.autopilot
		if c.persistPath != "" {
			path, user := c.persistPath, policy.AfterRetrain
			policy.AfterRetrain = func(st RetrainStats) error {
				// Write through the engine, not Table.SaveFile: a retrain
				// that Close is waiting out must still persist its result
				// (the closed flag is already set at that point).
				if err := saveEngineFile(t.eng, path); err != nil {
					return err
				}
				if user != nil {
					return user(st)
				}
				return nil
			}
		}
		t.ap = core.NewAutopilot(eng, policy)
		t.ap.Start()
	}
	return t
}

// Open trains a NuevoMatch table over the rule-set — the expensive step the
// persistence lifecycle amortizes: minutes of RQ-RMI training at 500K rules
// (§3.9) against a Load measured in milliseconds. The rule-set is cloned;
// the caller's copy is not retained.
func Open(rs *RuleSet, opts ...Option) (*Table, error) {
	c, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	eng, err := core.Build(rs, c.opts)
	if err != nil {
		return nil, err
	}
	return finish(eng, c), nil
}

// Load reconstructs a table serialized by Save: options, rules, liveness,
// and every trained model deserialize; the remainder classifier is rebuilt
// from the saved remainder rules and re-frozen — zero retraining, and the
// loaded table answers every lookup exactly like the saved one, zero-lock
// from the first packet. Structural options recorded in the artifact
// (MaxISets, MinCoverage, iSet fields) are restored from it; WithRemainder
// overrides the recorded remainder builder, and WithAutopilot /
// WithAutopilotPersist attach a fresh supervisor. Malformed input returns an
// error, never a panic.
func Load(r io.Reader, opts ...Option) (*Table, error) {
	c, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	override, err := c.remainderOverride()
	if err != nil {
		return nil, err
	}
	eng, err := core.ReadEngine(r, override)
	if err != nil {
		return nil, err
	}
	return finish(eng, c), nil
}

// LoadFile is Load from a file.
func LoadFile(path string, opts ...Option) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Load(f, opts...)
	if err != nil {
		return nil, fmt.Errorf("nuevomatch: loading %s: %w", path, err)
	}
	return t, nil
}

// Save serializes the table's complete state — build options, rules with
// liveness, every trained RQ-RMI model, and the current remainder —
// capturing online drift too: a table saved mid-churn reloads with its
// inserts, deletes, and overlay intact. It implements io.WriterTo's
// contract and returns the byte count. Safe to call concurrently with
// lookups (which it never blocks) and with updates (which serialize with
// it, so the image is one consistent state).
func (t *Table) Save(w io.Writer) (int64, error) {
	if t.closed.Load() {
		return 0, ErrClosed
	}
	return t.eng.WriteTo(w)
}

// SaveFile saves atomically: the table is written to a temp file in the
// destination directory and renamed over path, so readers never observe a
// torn artifact.
func (t *Table) SaveFile(path string) error {
	if t.closed.Load() {
		return ErrClosed
	}
	return saveEngineFile(t.eng, path)
}

// saveEngineFile is the atomic write behind SaveFile and the autopilot
// persistence hook (which must work even while Close waits out an
// in-flight retrain). Durability is complete: the temp file is fsynced
// before the rename, and the directory entry after it — without the
// second sync a crash can lose the rename itself and resurface the old
// artifact (or none) despite the write "succeeding".
func saveEngineFile(eng *core.Engine, path string) error {
	if err := faultinject.Hit(faultinject.PointTableSave); err != nil {
		return err
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := eng.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDirEntry(dir)
}

// syncDirEntry fsyncs a directory so a just-renamed entry inside it is
// durable. Filesystems that reject directory fsync (some network mounts)
// are tolerated: the rename still happened, only its durability window
// widens.
func syncDirEntry(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}

// Lookup returns the ID of the highest-priority rule matching the packet,
// or NoMatch. Lock-free: one atomic snapshot load, then flat-array reads.
func (t *Table) Lookup(p Packet) int { return t.eng.Lookup(p) }

// LookupWithBound is Lookup under an externally known best priority
// (rules.BoundedClassifier).
func (t *Table) LookupWithBound(p Packet, bestPrio int32) int {
	return t.eng.LookupWithBound(p, bestPrio)
}

// LookupBatch classifies len(pkts) packets into out (which must have at
// least len(pkts) entries) with batched RQ-RMI inference — the table's
// highest-throughput entry point.
func (t *Table) LookupBatch(pkts []Packet, out []int) { t.eng.LookupBatch(pkts, out) }

// LookupBatchParallel is LookupBatch under the paper's two-core split
// (§5.1): iSet inference and the remainder run on separate goroutines. On a
// single-CPU process it degrades to LookupBatch.
func (t *Table) LookupBatchParallel(pkts []Packet, out []int) { t.eng.LookupBatchParallel(pkts, out) }

// Insert adds a rule online; per §3.9 additions go to the remainder.
func (t *Table) Insert(r Rule) error {
	if t.closed.Load() {
		return ErrClosed
	}
	return t.eng.Insert(r)
}

// Delete removes a rule by ID online.
func (t *Table) Delete(id int) error {
	if t.closed.Load() {
		return ErrClosed
	}
	return t.eng.Delete(id)
}

// Modify replaces a rule's matching set or priority (delete + reinsert,
// §3.9).
func (t *Table) Modify(r Rule) error {
	if t.closed.Load() {
		return ErrClosed
	}
	return t.eng.Modify(r)
}

// Retrain retrains the table in place over its current live rules — the
// paper's periodic retraining as a hot swap. Lookups never stall: training
// runs off-lock, concurrent updates are journaled and replayed in one bulk
// pass, and the result publishes atomically behind the handle.
func (t *Table) Retrain() (RetrainStats, error) {
	if t.closed.Load() {
		return RetrainStats{}, ErrClosed
	}
	return t.eng.Retrain()
}

// Autopilot returns the drift supervisor attached by WithAutopilot, or nil.
// Use it for Stats and for explicit Check-driven retrain points.
func (t *Table) Autopilot() *Autopilot { return t.ap }

// AutopilotStats returns the attached supervisor's cumulative activity, or
// the zero value when the table has no autopilot. It gives tables and
// clusters a uniform stats surface for metrics exporters (the serving
// tier's /metrics endpoint reads it through one interface).
func (t *Table) AutopilotStats() AutopilotStats {
	if t.ap == nil {
		return AutopilotStats{}
	}
	return t.ap.Stats()
}

// NumFields returns the dimensionality of the table's rule-set — the field
// count every Lookup packet must carry. Fixed at build time.
func (t *Table) NumFields() int { return t.eng.NumFields() }

// Health reports the table's serving condition. A closed table is Failed;
// an open one is Healthy unless its autopilot is accumulating consecutive
// retrain or persist failures, which degrade it with machine-readable
// reasons ("retrain-failing", "persist-failing"). Degraded never implies
// wrong answers — the fail-static guarantee means lookups keep serving the
// last good state; it means the state may be growing stale.
func (t *Table) Health() Health {
	if t.closed.Load() {
		return Health{State: Failed, Reasons: []HealthReason{{Shard: -1, Code: "closed", Detail: "table is closed"}}}
	}
	if t.ap == nil {
		return Health{State: Healthy}
	}
	return core.EngineHealth(t.ap.Stats())
}

// Engine exposes the underlying engine for code written against the
// pre-Table API. The pointer is stable for the table's lifetime (retrains
// swap state behind it).
//
// Deprecated: new code should use the Table methods directly.
func (t *Table) Engine() *Engine { return t.eng }

// Stats returns the most recent (re)build's statistics.
func (t *Table) Stats() BuildStats { return t.eng.Stats() }

// Updates returns the drift accumulated since the last (re)build.
func (t *Table) Updates() UpdateStats { return t.eng.Updates() }

// NumISets returns the number of trained RQ-RMI models currently serving.
func (t *Table) NumISets() int { return t.eng.NumISets() }

// Name implements Classifier.
func (t *Table) Name() string { return t.eng.Name() }

// MemoryFootprint implements Classifier: model bytes plus the remainder's
// index (§5.2.1 accounting).
func (t *Table) MemoryFootprint() int { return t.eng.MemoryFootprint() }

// RQRMIBytes returns the trained models' size alone (Figure 13's "iSets").
func (t *Table) RQRMIBytes() int { return t.eng.RQRMIBytes() }

// RemainderBytes returns the remainder index size (Figure 13's
// "Remainder").
func (t *Table) RemainderBytes() int { return t.eng.RemainderBytes() }

// Close stops the autopilot watcher (waiting out any in-flight retrain) and
// releases the pooled lookup workers. Idempotent; concurrent lookups are
// unaffected and remain valid after Close, while subsequent updates fail
// with ErrClosed.
func (t *Table) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	if t.ap != nil {
		t.ap.Stop()
	}
	t.eng.Close()
	return nil
}

var _ Classifier = (*Table)(nil)
var _ BoundedClassifier = (*Table)(nil)
