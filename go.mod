module nuevomatch

go 1.24
