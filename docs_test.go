package nuevomatch_test

// Documentation enforcement: the godoc-coverage lint keeps every exported
// identifier of the public package documented (the "docs" CI step runs it
// alongside go vet), and the link checker keeps the relative links inside
// README.md and docs/*.md resolving as files move.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"slices"
	"strings"
	"testing"
)

// TestGodocCoverage parses the root package and fails on any exported
// top-level identifier — type, function, method, constant, or variable —
// without a doc comment. It is the enforcement half of the godoc pass: a
// new exported name cannot land undocumented.
func TestGodocCoverage(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["nuevomatch"]
	if !ok {
		t.Fatalf("package nuevomatch not found in .; got %v", pkgs)
	}
	var missing []string
	report := func(pos token.Pos, kind, name string) {
		missing = append(missing, fset.Position(pos).String()+": "+kind+" "+name)
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil && !exportedReceiver(d.Recv) {
					continue
				}
				if d.Doc == nil {
					kind := "func"
					if d.Recv != nil {
						kind = "method"
					}
					report(d.Pos(), kind, d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && s.Doc == nil && s.Comment == nil && d.Doc == nil {
							report(s.Pos(), "type", s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, name := range s.Names {
							// A spec comment, a spec line comment, or a doc on
							// the enclosing const/var block all count.
							if name.IsExported() && s.Doc == nil && s.Comment == nil && d.Doc == nil {
								report(name.Pos(), "value", name.Name)
							}
						}
					}
				}
			}
		}
	}
	for _, m := range missing {
		t.Errorf("undocumented exported identifier: %s", m)
	}
}

// exportedReceiver reports whether a method's receiver type is exported
// (methods on unexported types need no godoc).
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	typ := recv.List[0].Type
	for {
		switch x := typ.(type) {
		case *ast.StarExpr:
			typ = x.X
		case *ast.IndexExpr: // generic receiver
			typ = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}

// mdLink matches markdown inline links; group 2 is the target.
var mdLink = regexp.MustCompile(`\[([^\]]*)\]\(([^)\s]+)\)`)

// TestDocLinks resolves every relative link in README.md and docs/*.md:
// each must point at a file (or directory) that exists, so restructuring
// cannot silently orphan the documentation system.
func TestDocLinks(t *testing.T) {
	files := []string{"README.md"}
	docFiles, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, docFiles...)
	if len(docFiles) < 2 {
		t.Errorf("expected at least docs/ARCHITECTURE.md and docs/BENCHMARKS.md, found %v", docFiles)
	}
	// Core docs that must exist by name: the glob above would silently
	// shrink if one were deleted or renamed.
	for _, want := range []string{"ARCHITECTURE.md", "BENCHMARKS.md", "RELIABILITY.md", "SERVING.md", "STATIC_ANALYSIS.md"} {
		if !slices.Contains(docFiles, filepath.Join("docs", want)) {
			t.Errorf("docs/%s is missing", want)
		}
	}
	checked := 0
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("reading %s: %v", f, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[2]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			resolved := filepath.Join(filepath.Dir(f), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: link %q does not resolve (%s)", f, m[2], resolved)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Error("no relative links found at all — checker likely broken")
	}
}
