// The package documentation lives in doc.go; this file holds the
// re-exported model types, constants, and constructor shims.
package nuevomatch

import (
	"nuevomatch/internal/classifiers/cutsplit"
	"nuevomatch/internal/classifiers/linear"
	"nuevomatch/internal/classifiers/neurocuts"
	"nuevomatch/internal/classifiers/rvh"
	"nuevomatch/internal/classifiers/tss"
	"nuevomatch/internal/classifiers/tuplemerge"
	"nuevomatch/internal/core"
	"nuevomatch/internal/rqrmi"
	"nuevomatch/internal/rules"
)

// Core rule-model types, re-exported from the internal packages.
type (
	// Range is an inclusive [Lo, Hi] match over one 32-bit field.
	Range = rules.Range
	// Rule is a multi-field matching rule; smaller Priority wins.
	Rule = rules.Rule
	// Packet is a point in field space.
	Packet = rules.Packet
	// RuleSet is an ordered rule collection.
	RuleSet = rules.RuleSet
	// FiveTuple is the classic (src IP, dst IP, src port, dst port,
	// proto) packet metadata.
	FiveTuple = rules.FiveTuple
	// Classifier is the lookup contract every algorithm implements.
	Classifier = rules.Classifier
	// BoundedClassifier adds early-termination support.
	BoundedClassifier = rules.BoundedClassifier
	// Updatable adds online Insert/Delete.
	Updatable = rules.Updatable
	// Freezable is an updatable classifier that can compile its contents
	// into an immutable, lock-free FrozenClassifier (TupleMerge does; the
	// engine freezes its remainder into every published snapshot).
	Freezable = rules.Freezable
	// FrozenClassifier is the compiled, immutable classifier form.
	FrozenClassifier = rules.FrozenClassifier
	// Builder constructs a classifier over a rule-set.
	Builder = rules.Builder

	// Engine is the classifier underlying a Table. It remains exported for
	// the deprecated Build shim and for code written against the pre-Table
	// API; new code should hold a *Table.
	Engine = core.Engine
	// Options is the positional configuration of the deprecated Build shim.
	// New code passes functional options (WithMaxISets, WithRemainder, …)
	// to Open and Load instead.
	Options = core.Options
	// BuildStats reports what Open (or Build) produced, including which
	// remainder backend serves and — under WithRemainder(RemainderAuto) —
	// the per-candidate selection scores.
	BuildStats = core.BuildStats
	// RemainderScore is one remainder auto-select candidate's measurements
	// (BuildStats.RemainderScores).
	RemainderScore = core.RemainderScore
	// UpdateStats tracks drift since the last build (§3.9).
	UpdateStats = core.UpdateStats
	// RQRMIConfig tunes per-iSet model training (WithRQRMI).
	RQRMIConfig = rqrmi.Config

	// Autopilot supervises a live table: it watches update drift and
	// retrains in place on a background goroutine when the policy trips.
	// Lookups stay zero-lock across the hot swap. Attach one with
	// WithAutopilot (or NewAutopilot for a bare Engine).
	Autopilot = core.Autopilot
	// AutopilotPolicy configures the drift triggers and the optional
	// AfterRetrain persistence hook.
	AutopilotPolicy = core.AutopilotPolicy
	// AutopilotStats is the supervisor's cumulative activity record.
	AutopilotStats = core.AutopilotStats
	// RetrainStats reports one in-place retrain (train time, swap time,
	// journaled updates replayed).
	RetrainStats = core.RetrainStats

	// ClusterStats is a point-in-time structural summary of a Cluster:
	// shard count, routing function, per-shard rule counts, and replication
	// overhead.
	ClusterStats = core.ClusterStats
	// PartitionKind names a cluster partitioning strategy (ClusterStats.Kind).
	PartitionKind = core.PartitionKind

	// Health is a point-in-time serving-condition summary (Table.Health,
	// Cluster.Health): an overall state plus machine-readable reasons.
	Health = core.Health
	// HealthState classifies serving condition: Healthy, Degraded, Failed.
	HealthState = core.HealthState
	// HealthReason is one machine-readable degradation signal (stable Code,
	// human-readable Detail, shard index or -1).
	HealthReason = core.HealthReason
	// QuarantinePolicy configures when a cluster isolates a failing shard
	// and how the background rebuilder paces retries
	// (Cluster.SetQuarantinePolicy).
	QuarantinePolicy = core.QuarantinePolicy
	// FsckReport is FsckCluster's verification/repair result.
	FsckReport = core.FsckReport
	// FsckGeneration is one saved generation's verification verdict within
	// an FsckReport.
	FsckGeneration = core.FsckGeneration
)

// Health states reported by Table.Health and Cluster.Health. Degraded
// still serves correct answers (the fail-static guarantee); Failed means
// not serving updates (closed).
const (
	// Healthy: serving normally.
	Healthy = core.Healthy
	// Degraded: correct but needs attention (quarantined shard, failing
	// retrains or persistence).
	Degraded = core.Degraded
	// Failed: closed.
	Failed = core.Failed
)

// Cluster partitioning strategies, as reported by ClusterStats.Kind. The
// default is range partitioning; WithHashPartition selects hashing.
const (
	// PartitionRange splits the partition field's value space at cut points
	// chosen from the rule distribution.
	PartitionRange = core.PartitionRange
	// PartitionHash maps partition-field values through a fixed hash; rules
	// that are not exact in the field replicate to every shard.
	PartitionHash = core.PartitionHash
)

// MaxClusterShards is the widest cluster WithShards accepts.
const MaxClusterShards = core.MaxClusterShards

// Field indices of the 5-tuple layout.
const (
	FieldSrcIP   = rules.FieldSrcIP
	FieldDstIP   = rules.FieldDstIP
	FieldSrcPort = rules.FieldSrcPort
	FieldDstPort = rules.FieldDstPort
	FieldProto   = rules.FieldProto
	// NumFiveTupleFields is the dimensionality of 5-tuple rule-sets.
	NumFiveTupleFields = rules.NumFiveTupleFields
)

// NoMatch is returned by Lookup when no rule matches.
const NoMatch = rules.NoMatch

// RemainderAuto is the WithRemainder argument that enables remainder
// auto-selection: every registered Freezable backend is trained on the
// actual remainder rule distribution and scored (build time, frozen-lookup
// microbenchmark, memory footprint); the winner serves, and
// Stats().RemainderBackend / RemainderScores report the decision. Retrain
// re-runs the selection, so the backend tracks workload drift.
const RemainderAuto = core.AutoRemainder

// NewRuleSet returns an empty rule-set over the given number of fields.
func NewRuleSet(numFields int) *RuleSet { return rules.NewRuleSet(numFields) }

// FullRange matches any field value.
func FullRange() Range { return rules.FullRange() }

// ExactRange matches a single value.
func ExactRange(v uint32) Range { return rules.ExactRange(v) }

// PrefixRange matches value/prefixLen, e.g. 10.0.0.0/8.
func PrefixRange(value uint32, prefixLen int) Range { return rules.PrefixRange(value, prefixLen) }

// ParseIPv4 parses dotted-quad notation into a uint32 field value.
func ParseIPv4(s string) (uint32, error) { return rules.ParseIPv4(s) }

// FormatIPv4 renders a field value in dotted-quad notation.
func FormatIPv4(v uint32) string { return rules.FormatIPv4(v) }

// Build trains a NuevoMatch engine over the rule-set. The zero Options
// reproduce the paper's default setup: up to 4 iSets, 5% minimum coverage,
// error threshold 64, TupleMerge remainder.
//
// Deprecated: use Open, which returns a *Table with the full
// Save/Load/autopilot lifecycle; Table.Engine recovers the *Engine where
// one is still required.
func Build(rs *RuleSet, opts Options) (*Engine, error) { return core.Build(rs, opts) }

// NewAutopilot wraps a built engine with a drift supervisor. Call Start to
// launch the background watcher (and Stop to halt it), or drive Check
// manually for deterministic retrain points. Tables attach their own via
// WithAutopilot.
func NewAutopilot(e *Engine, policy AutopilotPolicy) *Autopilot {
	return core.NewAutopilot(e, policy)
}

// ErrRetrainInProgress is returned by Retrain when another retrain on the
// same table has not finished yet.
var ErrRetrainInProgress = core.ErrRetrainInProgress

// SetKernelMode selects the RQ-RMI batched-inference kernel process-wide:
// "auto" (AVX2 assembly when the build and host support it, the default),
// "go" (the portable pure-Go float32 kernel), or "asm" (AVX2 required —
// errors when unavailable). The kernels are bit-identical, so switching
// never changes classification results, only throughput; the override
// exists for benchmarking ablations and for pinning CI measurements.
func SetKernelMode(mode string) error { return rqrmi.SetKernelMode(mode) }

// KernelName reports the active RQ-RMI batched-inference kernel: "avx2" or
// "go-f32".
func KernelName() string { return rqrmi.KernelName() }

// HasAsmKernel reports whether the AVX2 assembly kernel can run on this
// build and host.
func HasAsmKernel() bool { return rqrmi.HasAsmKernel() }

// RegisterRemainder makes a remainder builder resolvable by classifier name
// when a saved table is loaded: Save records the remainder's Name(), and
// Load rebuilds the remainder through this registry (WithRemainder
// overrides it per call). The bundled classifiers below are pre-registered.
func RegisterRemainder(name string, b Builder) { core.RegisterRemainder(name, b) }

// Remainder classifier builders for WithRemainder, and standalone baselines
// for comparison. TupleMerge and RVH are the production Freezable backends
// (lock-free frozen serving, online updates, auto-select candidates); the
// others are locked-fallback baselines — correct, update-capable where
// documented, but served through their own locks rather than a compiled
// frozen form.
var (
	// TupleMerge is the update-capable hash-based classifier (default
	// remainder, Freezable).
	TupleMerge Builder = tuplemerge.Build
	// RVH is the range-vector-hash classifier (Freezable): interval-index
	// hashing over boundary vectors derived from the rule distribution,
	// built for range-heavy rule-sets that defeat prefix tuples.
	RVH Builder = rvh.Build
	// CutSplit is the decision-tree baseline with binth=8.
	CutSplit Builder = cutsplit.Build
	// NeuroCuts is the policy-search decision-tree baseline.
	NeuroCuts Builder = neurocuts.Build
	// TupleSpaceSearch is the classic TSS classifier.
	TupleSpaceSearch Builder = tss.Build
	// Linear is the priority-ordered scan (correctness reference).
	Linear Builder = linear.Build
)

func init() {
	// "tuplemerge" and "rvh" are registered by the core package itself
	// (they are the Freezable production backends); the other bundled
	// classifiers register here so tables saved with them load by name.
	RegisterRemainder("cutsplit", cutsplit.Build)
	RegisterRemainder("neurocuts", neurocuts.Build)
	RegisterRemainder("tss", tss.Build)
	RegisterRemainder("linear", linear.Build)
}
