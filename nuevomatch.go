// Package nuevomatch is the public API of this repository: a Go
// implementation of NuevoMatch, the RQ-RMI-based packet classification
// system of "A Computational Approach to Packet Classification"
// (Rashelbach, Rottenstreich, Silberstein — SIGCOMM 2020).
//
// # Quickstart
//
//	rs := nuevomatch.NewRuleSet(nuevomatch.NumFiveTupleFields)
//	rs.AddAuto(
//	    nuevomatch.PrefixRange(ip, 24),   // source IP
//	    nuevomatch.FullRange(),           // destination IP
//	    nuevomatch.FullRange(),           // source port
//	    nuevomatch.ExactRange(443),       // destination port
//	    nuevomatch.ExactRange(6),         // protocol (TCP)
//	)
//	engine, err := nuevomatch.Build(rs, nuevomatch.Options{})
//	id := engine.Lookup(pkt) // ID of the winning rule, -1 if none
//
// The engine partitions the rules into iSets indexed by RQ-RMI neural
// models and a remainder indexed by an external classifier (TupleMerge by
// default; CutSplit and NeuroCuts builders are provided). Lookups run the
// paper's full pipeline: model inference, bounded secondary search,
// multi-field validation, highest-priority selection, and the
// early-termination remainder query.
//
// Rule priorities are numeric with smaller values winning, matching the
// paper's "priority 1 (highest)" convention. Matching is over 32-bit
// fields; wider fields are split into 32-bit chunks as in §4 of the paper.
package nuevomatch

import (
	"nuevomatch/internal/classifiers/cutsplit"
	"nuevomatch/internal/classifiers/linear"
	"nuevomatch/internal/classifiers/neurocuts"
	"nuevomatch/internal/classifiers/tss"
	"nuevomatch/internal/classifiers/tuplemerge"
	"nuevomatch/internal/core"
	"nuevomatch/internal/rqrmi"
	"nuevomatch/internal/rules"
)

// Core rule-model types, re-exported from the internal packages.
type (
	// Range is an inclusive [Lo, Hi] match over one 32-bit field.
	Range = rules.Range
	// Rule is a multi-field matching rule; smaller Priority wins.
	Rule = rules.Rule
	// Packet is a point in field space.
	Packet = rules.Packet
	// RuleSet is an ordered rule collection.
	RuleSet = rules.RuleSet
	// FiveTuple is the classic (src IP, dst IP, src port, dst port,
	// proto) packet metadata.
	FiveTuple = rules.FiveTuple
	// Classifier is the lookup contract every algorithm implements.
	Classifier = rules.Classifier
	// BoundedClassifier adds early-termination support.
	BoundedClassifier = rules.BoundedClassifier
	// Updatable adds online Insert/Delete.
	Updatable = rules.Updatable
	// Freezable is an updatable classifier that can compile its contents
	// into an immutable, lock-free FrozenClassifier (TupleMerge does; the
	// engine freezes its remainder into every published snapshot).
	Freezable = rules.Freezable
	// FrozenClassifier is the compiled, immutable classifier form.
	FrozenClassifier = rules.FrozenClassifier
	// Builder constructs a classifier over a rule-set.
	Builder = rules.Builder

	// Engine is a built NuevoMatch classifier.
	Engine = core.Engine
	// Options configures Build.
	Options = core.Options
	// BuildStats reports what Build produced.
	BuildStats = core.BuildStats
	// UpdateStats tracks drift since the last build (§3.9).
	UpdateStats = core.UpdateStats
	// RQRMIConfig tunes per-iSet model training.
	RQRMIConfig = rqrmi.Config

	// Autopilot supervises a live engine: it watches update drift and
	// retrains in place on a background goroutine when the policy trips.
	// Lookups stay zero-lock across the hot swap (Engine.Retrain).
	Autopilot = core.Autopilot
	// AutopilotPolicy configures the drift triggers.
	AutopilotPolicy = core.AutopilotPolicy
	// AutopilotStats is the supervisor's cumulative activity record.
	AutopilotStats = core.AutopilotStats
	// RetrainStats reports one in-place retrain (train time, swap time,
	// journaled updates replayed).
	RetrainStats = core.RetrainStats
)

// Field indices of the 5-tuple layout.
const (
	FieldSrcIP   = rules.FieldSrcIP
	FieldDstIP   = rules.FieldDstIP
	FieldSrcPort = rules.FieldSrcPort
	FieldDstPort = rules.FieldDstPort
	FieldProto   = rules.FieldProto
	// NumFiveTupleFields is the dimensionality of 5-tuple rule-sets.
	NumFiveTupleFields = rules.NumFiveTupleFields
)

// NoMatch is returned by Lookup when no rule matches.
const NoMatch = rules.NoMatch

// NewRuleSet returns an empty rule-set over the given number of fields.
func NewRuleSet(numFields int) *RuleSet { return rules.NewRuleSet(numFields) }

// FullRange matches any field value.
func FullRange() Range { return rules.FullRange() }

// ExactRange matches a single value.
func ExactRange(v uint32) Range { return rules.ExactRange(v) }

// PrefixRange matches value/prefixLen, e.g. 10.0.0.0/8.
func PrefixRange(value uint32, prefixLen int) Range { return rules.PrefixRange(value, prefixLen) }

// ParseIPv4 parses dotted-quad notation into a uint32 field value.
func ParseIPv4(s string) (uint32, error) { return rules.ParseIPv4(s) }

// FormatIPv4 renders a field value in dotted-quad notation.
func FormatIPv4(v uint32) string { return rules.FormatIPv4(v) }

// Build trains a NuevoMatch engine over the rule-set. The zero Options
// reproduce the paper's default setup: up to 4 iSets, 5% minimum coverage,
// error threshold 64, TupleMerge remainder.
func Build(rs *RuleSet, opts Options) (*Engine, error) { return core.Build(rs, opts) }

// NewAutopilot wraps a built engine with a drift supervisor. Call Start to
// launch the background watcher (and Stop to halt it), or drive Check
// manually for deterministic retrain points.
func NewAutopilot(e *Engine, policy AutopilotPolicy) *Autopilot {
	return core.NewAutopilot(e, policy)
}

// ErrRetrainInProgress is returned by Engine.Retrain when another retrain on
// the same engine has not finished yet.
var ErrRetrainInProgress = core.ErrRetrainInProgress

// Remainder classifier builders for Options.Remainder, and standalone
// baselines for comparison.
var (
	// TupleMerge is the update-capable hash-based classifier (default
	// remainder).
	TupleMerge Builder = tuplemerge.Build
	// CutSplit is the decision-tree baseline with binth=8.
	CutSplit Builder = cutsplit.Build
	// NeuroCuts is the policy-search decision-tree baseline.
	NeuroCuts Builder = neurocuts.Build
	// TupleSpaceSearch is the classic TSS classifier.
	TupleSpaceSearch Builder = tss.Build
	// Linear is the priority-ordered scan (correctness reference).
	Linear Builder = linear.Build
)
