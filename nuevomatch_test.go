package nuevomatch_test

import (
	"testing"

	"nuevomatch"
)

// TestPaperFigure2 runs the paper's worked example end-to-end through the
// public API: the classifier of Figure 2 with two fields, an incoming
// packet 10.10.3.100:19, and the expected action a4 (rule R3).
func TestPaperFigure2(t *testing.T) {
	ip := func(s string) uint32 {
		v, err := nuevomatch.ParseIPv4(s)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	rs := nuevomatch.NewRuleSet(2)
	rs.AddAuto(nuevomatch.PrefixRange(ip("10.10.0.0"), 16), nuevomatch.Range{Lo: 10, Hi: 18}) // R0
	rs.AddAuto(nuevomatch.PrefixRange(ip("10.10.1.0"), 24), nuevomatch.Range{Lo: 15, Hi: 25}) // R1
	rs.AddAuto(nuevomatch.PrefixRange(ip("10.0.0.0"), 8), nuevomatch.Range{Lo: 5, Hi: 8})     // R2
	rs.AddAuto(nuevomatch.PrefixRange(ip("10.10.3.0"), 24), nuevomatch.Range{Lo: 7, Hi: 20})  // R3
	rs.AddAuto(nuevomatch.ExactRange(ip("10.10.3.100")), nuevomatch.ExactRange(19))           // R4

	engine, err := nuevomatch.Build(rs, nuevomatch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pkt := nuevomatch.Packet{ip("10.10.3.100"), 19}
	if got := engine.Lookup(pkt); got != 3 {
		t.Fatalf("Lookup = rule %d, want 3 (action a4 in Figure 2)", got)
	}
	if got := engine.Lookup(nuevomatch.Packet{ip("192.168.0.1"), 19}); got != nuevomatch.NoMatch {
		t.Fatalf("Lookup = %d, want NoMatch", got)
	}
}

func TestRemainderBuilders(t *testing.T) {
	rs := nuevomatch.NewRuleSet(2)
	for i := uint32(0); i < 50; i++ {
		rs.AddAuto(nuevomatch.ExactRange(i), nuevomatch.FullRange())
	}
	for _, b := range []struct {
		name string
		b    nuevomatch.Builder
	}{
		{"tuplemerge", nuevomatch.TupleMerge},
		{"cutsplit", nuevomatch.CutSplit},
		{"neurocuts", nuevomatch.NeuroCuts},
		{"tss", nuevomatch.TupleSpaceSearch},
		{"linear", nuevomatch.Linear},
	} {
		e, err := nuevomatch.Build(rs, nuevomatch.Options{Remainder: b.b})
		if err != nil {
			t.Fatalf("%s: %v", b.name, err)
		}
		if got := e.Lookup(nuevomatch.Packet{7, 99}); got != 7 {
			t.Errorf("%s: Lookup = %d, want 7", b.name, got)
		}
	}
}

// TestAutopilotPublicSurface exercises the drift supervisor end-to-end
// through the public API: churn an engine past the policy threshold, let
// Check retrain it in place, and verify the engine pointer kept serving
// correct results.
func TestAutopilotPublicSurface(t *testing.T) {
	rs := nuevomatch.NewRuleSet(2)
	for i := uint32(0); i < 200; i++ {
		rs.AddAuto(nuevomatch.ExactRange(i), nuevomatch.Range{Lo: i, Hi: i + 1000})
	}
	engine, err := nuevomatch.Build(rs, nuevomatch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ap := nuevomatch.NewAutopilot(engine, nuevomatch.AutopilotPolicy{
		MaxUpdates:   50,
		MinLiveRules: 1,
	})
	if ap.Engine() != engine {
		t.Fatal("Engine() must return the supervised engine")
	}
	nextID := 10_000
	for i := uint32(0); i < 60; i++ {
		if err := engine.Delete(int(i)); err != nil {
			t.Fatal(err)
		}
		r := nuevomatch.Rule{
			ID:       nextID,
			Priority: int32(nextID),
			Fields:   []nuevomatch.Range{nuevomatch.ExactRange(i), nuevomatch.Range{Lo: i, Hi: i + 500}},
		}
		nextID++
		if err := engine.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	retrained, err := ap.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !retrained {
		t.Fatal("policy must trip after 120 updates")
	}
	st := ap.Stats()
	if st.Retrains != 1 || st.Failures != 0 {
		t.Fatalf("unexpected autopilot stats: %+v", st)
	}
	// The same engine pointer serves the retrained state: replaced rules
	// match under their new IDs, untouched rules under their old ones.
	if got := engine.Lookup(nuevomatch.Packet{10, 400}); got != 10_010 {
		t.Errorf("replaced rule: Lookup = %d, want %d", got, 10_010)
	}
	if got := engine.Lookup(nuevomatch.Packet{150, 600}); got != 150 {
		t.Errorf("untouched rule: Lookup = %d, want %d", got, 150)
	}
	if _, err := engine.Retrain(); err != nil {
		t.Fatalf("manual public Retrain: %v", err)
	}
}

func TestFormatIPv4RoundTrip(t *testing.T) {
	v, err := nuevomatch.ParseIPv4("172.16.254.1")
	if err != nil {
		t.Fatal(err)
	}
	if s := nuevomatch.FormatIPv4(v); s != "172.16.254.1" {
		t.Errorf("round trip = %q", s)
	}
}
