package nuevomatch_test

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"nuevomatch"
	"nuevomatch/internal/classbench"
	"nuevomatch/internal/faultinject"
)

// testRuleSet generates a deterministic ClassBench ACL with unique
// priorities.
func testRuleSet(t *testing.T, size int) *nuevomatch.RuleSet {
	t.Helper()
	prof, err := classbench.ProfileByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	rs := classbench.Generate(prof, size)
	for i := range rs.Rules {
		rs.Rules[i].Priority = int32(2 * (i + 1))
	}
	return rs
}

func probe(rng *rand.Rand, rs *nuevomatch.RuleSet) nuevomatch.Packet {
	p := make(nuevomatch.Packet, rs.NumFields)
	if rng.Intn(4) != 0 {
		classbench.FillMatchingPacket(rng, &rs.Rules[rng.Intn(rs.Len())], p)
	} else {
		for d := range p {
			p[d] = rng.Uint32()
		}
	}
	return p
}

// TestOpenMatchesDeprecatedBuild proves the shim and the new surface build
// the same classifier: Build(rs, Options{}) and Open(rs) agree with the
// linear reference on every probe.
func TestOpenMatchesDeprecatedBuild(t *testing.T) {
	rs := testRuleSet(t, 300)
	table, err := nuevomatch.Open(rs)
	if err != nil {
		t.Fatal(err)
	}
	defer table.Close()
	engine, err := nuevomatch.Build(rs, nuevomatch.Options{}) // deprecated shim must keep compiling
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()

	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		p := probe(rng, rs)
		want := rs.MatchID(p)
		if got := table.Lookup(p); got != want {
			t.Fatalf("table.Lookup(%v) = %d, want %d", p, got, want)
		}
		if got := engine.Lookup(p); got != want {
			t.Fatalf("engine.Lookup(%v) = %d, want %d", p, got, want)
		}
	}
	if table.NumISets() != engine.NumISets() {
		t.Errorf("iSet count differs: table %d, engine %d", table.NumISets(), engine.NumISets())
	}
}

// TestTableOptions exercises the functional options end to end.
func TestTableOptions(t *testing.T) {
	rs := testRuleSet(t, 300)

	noISets, err := nuevomatch.Open(rs, nuevomatch.WithMaxISets(0))
	if err != nil {
		t.Fatal(err)
	}
	defer noISets.Close()
	if n := noISets.NumISets(); n != 0 {
		t.Errorf("WithMaxISets(0) trained %d iSets, want 0", n)
	}

	linear, err := nuevomatch.Open(rs,
		nuevomatch.WithRemainder(nuevomatch.Linear),
		nuevomatch.WithMinCoverage(0.25),
		nuevomatch.WithRQRMI(nuevomatch.RQRMIConfig{TargetError: 32}))
	if err != nil {
		t.Fatal(err)
	}
	defer linear.Close()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		p := probe(rng, rs)
		if got, want := linear.Lookup(p), rs.MatchID(p); got != want {
			t.Fatalf("linear-remainder table: Lookup(%v) = %d, want %d", p, got, want)
		}
	}
}

// TestTableSaveLoadFile is the public-surface persistence round trip,
// including drift applied through the Table update methods before Save.
func TestTableSaveLoadFile(t *testing.T) {
	rs := testRuleSet(t, 400)
	table, err := nuevomatch.Open(rs)
	if err != nil {
		t.Fatal(err)
	}
	defer table.Close()

	rng := rand.New(rand.NewSource(3))
	mirror := rs.Clone()
	for i := 0; i < 120; i++ {
		if i%3 == 0 && mirror.Len() > 32 {
			j := rng.Intn(mirror.Len())
			if err := table.Delete(mirror.Rules[j].ID); err != nil {
				t.Fatal(err)
			}
			mirror.Rules[j] = mirror.Rules[mirror.Len()-1]
			mirror.Rules = mirror.Rules[:mirror.Len()-1]
		} else {
			r := mirror.Rules[rng.Intn(mirror.Len())]
			r.ID = 50_000 + i
			r.Priority = int32(2*i + 1)
			r.Fields = append([]nuevomatch.Range(nil), r.Fields...)
			r.Fields[nuevomatch.FieldDstPort] = nuevomatch.ExactRange(uint32(rng.Intn(65536)))
			if err := table.Insert(r); err != nil {
				t.Fatal(err)
			}
			mirror.Add(r)
		}
	}

	path := filepath.Join(t.TempDir(), "table.nm")
	if err := table.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := nuevomatch.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()

	pkts := make([]nuevomatch.Packet, 400)
	want := make([]int, len(pkts))
	for i := range pkts {
		pkts[i] = probe(rng, mirror)
		want[i] = mirror.MatchID(pkts[i])
	}
	out := make([]int, len(pkts))
	loaded.LookupBatch(pkts, out)
	for i := range pkts {
		if got := loaded.Lookup(pkts[i]); got != want[i] {
			t.Fatalf("loaded.Lookup(%v) = %d, want %d", pkts[i], got, want[i])
		}
		if out[i] != want[i] {
			t.Fatalf("loaded.LookupBatch[%d] = %d, want %d", i, out[i], want[i])
		}
		if got := table.Lookup(pkts[i]); got != want[i] {
			t.Fatalf("original.Lookup(%v) = %d, want %d", pkts[i], got, want[i])
		}
	}

	// The loaded table stays live: it takes updates and saves again.
	r := mirror.Rules[0]
	r.ID = 99_999
	r.Priority = 1
	r.Fields = append([]nuevomatch.Range(nil), r.Fields...)
	if err := loaded.Insert(r); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if n, err := loaded.Save(&buf); err != nil || n != int64(buf.Len()) {
		t.Fatalf("re-save: n=%d err=%v (buffered %d)", n, err, buf.Len())
	}

	// Load rejects garbage with an error, not a panic.
	if _, err := nuevomatch.Load(bytes.NewReader([]byte("not a table"))); err == nil {
		t.Fatal("Load of garbage succeeded")
	}
}

// TestTableCloseSemantics is the lifecycle regression test: double-Close,
// lookups after Close on every path, ErrClosed on updates, and no leaked
// worker goroutines.
func TestTableCloseSemantics(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)

	rs := testRuleSet(t, 200)
	table, err := nuevomatch.Open(rs)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	pkts := make([]nuevomatch.Packet, 64)
	for i := range pkts {
		pkts[i] = probe(rng, rs)
	}
	out := make([]int, len(pkts))
	table.LookupBatchParallel(pkts, out) // warm the worker pool
	goroutines := runtime.NumGoroutine()

	if err := table.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := table.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// Lookups after Close never panic and stay correct.
	for i, p := range pkts {
		if got, want := table.Lookup(p), rs.MatchID(p); got != want {
			t.Fatalf("post-Close Lookup(%v) = %d, want %d", p, got, want)
		}
		_ = i
	}
	table.LookupBatch(pkts, out)
	table.LookupBatchParallel(pkts, out)

	// Updates and persistence are refused.
	if err := table.Insert(rs.Rules[0]); !errors.Is(err, nuevomatch.ErrClosed) {
		t.Errorf("Insert after Close: err = %v, want ErrClosed", err)
	}
	if err := table.Delete(rs.Rules[0].ID); !errors.Is(err, nuevomatch.ErrClosed) {
		t.Errorf("Delete after Close: err = %v, want ErrClosed", err)
	}
	if _, err := table.Retrain(); !errors.Is(err, nuevomatch.ErrClosed) {
		t.Errorf("Retrain after Close: err = %v, want ErrClosed", err)
	}
	if _, err := table.Save(&bytes.Buffer{}); !errors.Is(err, nuevomatch.ErrClosed) {
		t.Errorf("Save after Close: err = %v, want ErrClosed", err)
	}

	// The worker pool must not re-accumulate goroutines after Close.
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() >= goroutines && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n >= goroutines {
		t.Errorf("%d goroutines after Close, had %d before (leaked workers?)", n, goroutines)
	}
}

// TestAutopilotPersist proves the WithAutopilot + WithAutopilotPersist
// wiring: drift trips a retrain and the artifact on disk is refreshed to
// the retrained state, which warm-starts an equivalent table.
func TestAutopilotPersist(t *testing.T) {
	rs := testRuleSet(t, 240)
	path := filepath.Join(t.TempDir(), "autosave.nm")
	table, err := nuevomatch.Open(rs,
		nuevomatch.WithAutopilot(nuevomatch.AutopilotPolicy{
			MaxUpdates:   60,
			MinLiveRules: 1,
			Interval:     -1, // Check-driven: deterministic test
		}),
		nuevomatch.WithAutopilotPersist(path))
	if err != nil {
		t.Fatal(err)
	}
	defer table.Close()
	ap := table.Autopilot()
	if ap == nil {
		t.Fatal("Autopilot() = nil with WithAutopilot")
	}

	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("artifact exists before any retrain (stat err %v)", err)
	}

	mirror := rs.Clone()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 80; i++ {
		r := mirror.Rules[rng.Intn(mirror.Len())]
		r.ID = 70_000 + i
		r.Priority = int32(2*i + 1)
		r.Fields = append([]nuevomatch.Range(nil), r.Fields...)
		if err := table.Insert(r); err != nil {
			t.Fatal(err)
		}
		mirror.Add(r)
	}
	ran, err := ap.Check()
	if err != nil {
		t.Fatalf("autopilot check: %v", err)
	}
	if !ran {
		t.Fatalf("policy did not trip after 80 updates: %+v", table.Updates())
	}
	st := ap.Stats()
	if st.Retrains != 1 || st.PersistFailures != 0 {
		t.Fatalf("stats after retrain: %+v", st)
	}

	loaded, err := nuevomatch.LoadFile(path)
	if err != nil {
		t.Fatalf("loading autopersisted artifact: %v", err)
	}
	defer loaded.Close()
	for i := 0; i < 400; i++ {
		p := probe(rng, mirror)
		if got, want := loaded.Lookup(p), mirror.MatchID(p); got != want {
			t.Fatalf("warm-started Lookup(%v) = %d, want %d", p, got, want)
		}
	}

	// WithAutopilotPersist without WithAutopilot is a configuration error.
	if _, err := nuevomatch.Open(rs, nuevomatch.WithAutopilotPersist(path)); err == nil {
		t.Error("WithAutopilotPersist without WithAutopilot must error")
	}
}

// TestClosePersistsInFlightRetrain: a Close issued while a background
// retrain is training must still persist that retrain's result — Close
// waits the retrain out, and the persistence hook must not be defeated by
// the closed flag it sets.
func TestClosePersistsInFlightRetrain(t *testing.T) {
	var armed atomic.Bool
	entered := make(chan struct{})
	gate := make(chan struct{})
	gated := func(rs *nuevomatch.RuleSet) (nuevomatch.Classifier, error) {
		if armed.Load() {
			entered <- struct{}{}
			<-gate
		}
		return nuevomatch.TupleMerge(rs)
	}

	rs := testRuleSet(t, 200)
	path := filepath.Join(t.TempDir(), "inflight.nm")
	table, err := nuevomatch.Open(rs,
		nuevomatch.WithRemainder(gated),
		nuevomatch.WithAutopilot(nuevomatch.AutopilotPolicy{
			MaxUpdates:   30,
			MinLiveRules: 1,
			Interval:     time.Millisecond,
		}),
		nuevomatch.WithAutopilotPersist(path))
	if err != nil {
		t.Fatal(err)
	}
	armed.Store(true)

	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 40; i++ {
		r := rs.Rules[rng.Intn(rs.Len())]
		r.ID = 80_000 + i
		r.Priority = int32(2*i + 1)
		r.Fields = append([]nuevomatch.Range(nil), r.Fields...)
		if err := table.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	<-entered // the watcher's retrain is now mid-training
	armed.Store(false)
	closed := make(chan error, 1)
	go func() { closed <- table.Close() }()
	time.Sleep(5 * time.Millisecond) // let Close reach the autopilot Stop
	close(gate)                      // release the trainer
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}

	st := table.Autopilot().Stats()
	if st.Retrains != 1 {
		t.Fatalf("retrains = %d, want 1 (the in-flight one Close waited out)", st.Retrains)
	}
	if st.PersistFailures != 0 {
		t.Fatalf("persist hook failed during Close: %+v", st)
	}
	loaded, err := nuevomatch.LoadFile(path, nuevomatch.WithRemainder(nuevomatch.TupleMerge))
	if err != nil {
		t.Fatalf("artifact persisted during Close is unloadable: %v", err)
	}
	loaded.Close()
}

// TestTableHealthPersistRetry proves the health surface and the persist
// retry policy: a transient save failure is retried away invisibly, a
// persistent one degrades the table with a persist-failing reason (the
// in-memory swap is never undone), and recovery plus Close move the state
// back to Healthy and finally Failed.
func TestTableHealthPersistRetry(t *testing.T) {
	defer faultinject.Reset()
	rs := testRuleSet(t, 200)
	path := filepath.Join(t.TempDir(), "health.nm")
	table, err := nuevomatch.Open(rs,
		nuevomatch.WithAutopilot(nuevomatch.AutopilotPolicy{
			MaxUpdates:   20,
			MinLiveRules: 1,
			Interval:     -1, // Check-driven
		}),
		nuevomatch.WithAutopilotPersist(path))
	if err != nil {
		t.Fatal(err)
	}
	defer table.Close()
	if h := table.Health(); h.State != nuevomatch.Healthy {
		t.Fatalf("fresh table health = %v", h)
	}
	ap := table.Autopilot()

	churn := func(base int) {
		t.Helper()
		for i := 0; i < 30; i++ {
			r := rs.Rules[i]
			r.ID = base + i
			r.Priority = int32(2*(base+i) + 1)
			r.Fields = append([]nuevomatch.Range(nil), r.Fields...)
			if err := table.Insert(r); err != nil {
				t.Fatal(err)
			}
		}
	}

	// One injected save failure: the retry (default 2) absorbs it.
	churn(100_000)
	faultinject.Enable(faultinject.PointTableSave, faultinject.Rule{FailCount: 1})
	if ran, err := ap.Check(); err != nil || !ran {
		t.Fatalf("check under transient fault: ran=%v err=%v", ran, err)
	}
	faultinject.Reset()
	if st := ap.Stats(); st.PersistFailures != 0 || st.PersistRetries == 0 {
		t.Fatalf("transient fault not retried away: %+v", st)
	}
	if h := table.Health(); h.State != nuevomatch.Healthy {
		t.Fatalf("health after retried persist = %v", h)
	}

	// A persistent failure exhausts the retries and degrades the table.
	churn(200_000)
	faultinject.Enable(faultinject.PointTableSave, faultinject.Rule{})
	if ran, err := ap.Check(); err != nil || !ran {
		t.Fatalf("check under persistent fault: ran=%v err=%v", ran, err)
	}
	faultinject.Reset()
	if st := ap.Stats(); st.PersistFailures == 0 || st.ConsecPersistFailures == 0 {
		t.Fatalf("persistent fault unrecorded: %+v", st)
	}
	h := table.Health()
	if h.State != nuevomatch.Degraded || len(h.Reasons) != 1 || h.Reasons[0].Code != "persist-failing" {
		t.Fatalf("health under persist failure = %v", h)
	}
	// Fail-static: the degraded table still answers (swap was not undone).
	if table.Lookup(make(nuevomatch.Packet, rs.NumFields)) < -1 {
		t.Fatal("degraded table unservable")
	}

	// Recovery: the next successful persist clears the streak.
	churn(300_000)
	if ran, err := ap.Check(); err != nil || !ran {
		t.Fatalf("recovery check: ran=%v err=%v", ran, err)
	}
	if h := table.Health(); h.State != nuevomatch.Healthy {
		t.Fatalf("health after recovery = %v", h)
	}
	if _, err := nuevomatch.LoadFile(path); err != nil {
		t.Fatalf("persisted artifact unreadable after recovery: %v", err)
	}

	table.Close()
	if h := table.Health(); h.State != nuevomatch.Failed {
		t.Fatalf("closed table health = %v", h)
	}
}

// TestTableRemainderByName exercises the string forms of WithRemainder
// end to end through the public API: a named backend, the auto selector,
// the unknown-name error, and the Load-time override semantics.
func TestTableRemainderByName(t *testing.T) {
	rs := testRuleSet(t, 250)

	rvh, err := nuevomatch.Open(rs, nuevomatch.WithRemainder("rvh"))
	if err != nil {
		t.Fatal(err)
	}
	defer rvh.Close()
	if got := rvh.Stats().RemainderBackend; got != "rvh" {
		t.Fatalf("Stats().RemainderBackend = %q, want rvh", got)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		p := probe(rng, rs)
		if got, want := rvh.Lookup(p), rs.MatchID(p); got != want {
			t.Fatalf("rvh table Lookup(%v) = %d, want %d", p, got, want)
		}
	}

	auto, err := nuevomatch.Open(rs, nuevomatch.WithRemainder(nuevomatch.RemainderAuto))
	if err != nil {
		t.Fatal(err)
	}
	defer auto.Close()
	st := auto.Stats()
	if !st.RemainderAutoSelected || st.RemainderBackend == "" || len(st.RemainderScores) < 2 {
		t.Fatalf("auto-select not recorded: %+v", st)
	}
	for i := 0; i < 400; i++ {
		p := probe(rng, rs)
		if got, want := auto.Lookup(p), rs.MatchID(p); got != want {
			t.Fatalf("auto table Lookup(%v) = %d, want %d", p, got, want)
		}
	}

	// Save the rvh table; load it three ways: plain (recorded name), with
	// an explicit name override, and with RemainderAuto (defers to the
	// recorded backend — selection is a build-time decision).
	var buf bytes.Buffer
	if _, err := rvh.Save(&buf); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		label string
		opts  []nuevomatch.Option
	}{
		{"plain", nil},
		{"name-override", []nuevomatch.Option{nuevomatch.WithRemainder("tuplemerge")}},
		{"auto-defers", []nuevomatch.Option{nuevomatch.WithRemainder(nuevomatch.RemainderAuto)}},
	} {
		loaded, err := nuevomatch.Load(bytes.NewReader(buf.Bytes()), tc.opts...)
		if err != nil {
			t.Fatalf("%s: Load: %v", tc.label, err)
		}
		want := "rvh"
		if tc.label == "name-override" {
			want = "tuplemerge"
		}
		if got := loaded.Stats().RemainderBackend; got != want {
			t.Fatalf("%s: loaded backend %q, want %q", tc.label, got, want)
		}
		for i := 0; i < 200; i++ {
			p := probe(rng, rs)
			if got, w := loaded.Lookup(p), rs.MatchID(p); got != w {
				t.Fatalf("%s: Lookup(%v) = %d, want %d", tc.label, p, got, w)
			}
		}
		loaded.Close()
	}

	if _, err := nuevomatch.Open(rs, nuevomatch.WithRemainder("no-such-backend")); err == nil {
		t.Fatal("Open with an unknown remainder name must error")
	}
	if _, err := nuevomatch.Open(rs, nuevomatch.WithRemainder(42)); err == nil {
		t.Fatal("Open with a non-Builder, non-string remainder must error")
	}
	if _, err := nuevomatch.Load(bytes.NewReader(buf.Bytes()), nuevomatch.WithRemainder("no-such-backend")); err == nil {
		t.Fatal("Load with an unknown remainder name must error")
	}
}
