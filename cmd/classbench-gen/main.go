// Command classbench-gen writes a synthetic ClassBench-style rule-set in
// the classic filter format to stdout or a file.
//
// Usage:
//
//	classbench-gen -profile acl1 -n 10000 > acl1_10k.rules
//	classbench-gen -profile stanford -n 183376 -set 2 > stanford2.rules
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"nuevomatch/internal/classbench"
	"nuevomatch/internal/rules"
	"nuevomatch/internal/stanford"
)

func main() {
	var (
		profile = flag.String("profile", "acl1", "ClassBench profile (acl1..5, fw1..5, ipc1..2) or 'stanford'")
		n       = flag.Int("n", 1000, "number of rules")
		set     = flag.Int("set", 0, "Stanford backbone set index (0..3), with -profile stanford")
		out     = flag.String("o", "-", "output file ('-' = stdout)")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	if *profile == "stanford" {
		rs := stanford.Generate(*set, *n)
		// Single-field sets use a simple "prefix per line" format.
		for i := range rs.Rules {
			plen, _ := rs.Rules[i].Fields[0].IsPrefix()
			fmt.Fprintf(bw, "%s/%d\n", rules.FormatIPv4(rs.Rules[i].Fields[0].Lo), plen)
		}
		return
	}

	p, err := classbench.ProfileByName(*profile)
	if err != nil {
		fatal(err)
	}
	rs := classbench.Generate(p, *n)
	if err := rules.WriteClassBench(bw, rs); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "classbench-gen: %v\n", err)
	os.Exit(1)
}
