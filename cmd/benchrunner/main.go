// Command benchrunner regenerates the paper's tables and figures as text,
// and emits machine-readable performance artifacts for the perf trajectory.
//
// Usage:
//
//	benchrunner -exp fig8 -size 10000 -profiles acl1,fw1
//	benchrunner -exp all -size 500000 -trace 700000   # paper scale
//	benchrunner -benchjson . -size 10000              # write BENCH_acl1_10000.json
//	benchrunner -benchjson . -cpuprofile cpu.pprof    # profile the hot paths
//
// Every experiment id maps to one table or figure of the evaluation
// section; see EXPERIMENTS.md for the index and DESIGN.md for the
// methodology substitutions. With -benchjson DIR the runner skips the
// experiments and instead measures the engine's lookup paths (per-packet,
// batched, two-core parallel: throughput, p50/p99 latency, memory
// footprint) on one profile, writing BENCH_<profile>_<size>.json into DIR.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"nuevomatch/internal/analysis"
	"nuevomatch/internal/rqrmi"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id: "+strings.Join(analysis.Experiments(), ", ")+", or all")
		size     = flag.Int("size", 10000, "primary rule-set size (paper: 500000)")
		small    = flag.String("sizes", "1000,10000", "comma-separated scaling ladder for fig11/fig13/fig17/table2")
		profiles = flag.String("profiles", "", "comma-separated ClassBench profiles (default: all 12)")
		traceLen = flag.Int("trace", 20000, "packets per trace (paper: 700000)")
		stanford = flag.Int("stanford", 20000, "Stanford backbone rule-set size (paper: ~183376)")
		seed     = flag.Int64("seed", 1, "trace generation seed")
		benchjs  = flag.String("benchjson", "", "directory to write a BENCH_<name>.json perf artifact into (skips -exp)")
		churnOps = flag.Int("churnops", 20000, "churn-experiment operations per profile recorded into the benchjson artifact (0 disables)")
		shards   = flag.Int("shards", 2, "cluster-experiment shard count recorded into the benchjson artifact (0 disables)")
		serveCli = flag.Int("serve", 8, "serving-experiment client count recorded into the benchjson artifact (0 disables)")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		kernel   = flag.String("kernel", "auto", "rqrmi inference kernel: auto, go (pure-Go float32), asm (AVX2 assembly; errors when unsupported)")
		remaind  = flag.String("remainder", "", "with -benchjson: remainder classifier name (tuplemerge(tm) | rvh | auto; default tuplemerge)")
		minBatch = flag.Float64("minbatch", 0, "with -benchjson: exit non-zero unless batch_speedup >= this ratio (0 disables; the CI perf gate)")
	)
	flag.Parse()

	if err := rqrmi.SetKernelMode(*kernel); err != nil {
		fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
		os.Exit(2)
	}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *benchjs != "" {
		profile := "acl1"
		if *profiles != "" {
			profile = strings.Split(*profiles, ",")[0]
		}
		a, err := analysis.RunBenchArtifact(profile, *size, *traceLen, *seed, *remaind)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		if err := a.AttachChurn(*churnOps, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: churn: %v\n", err)
			os.Exit(1)
		}
		if err := a.AttachCluster(*shards, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: cluster: %v\n", err)
			os.Exit(1)
		}
		if err := a.AttachServing(*serveCli, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: serving: %v\n", err)
			os.Exit(1)
		}
		path, err := analysis.WriteBenchArtifact(*benchjs, a)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
		m := a.Machine
		fmt.Printf("  machine:         %s/%s, %d CPUs (GOMAXPROCS %d), simd %v, kernel %s\n",
			m.GoOS, m.GoArch, m.NumCPU, m.GOMAXPROCS, m.SIMDFeatures, m.Kernel)
		fmt.Printf("  conformance:     batch vs scalar %d/%d packets identical\n",
			a.BatchVerifiedPackets-a.BatchMismatches, a.BatchVerifiedPackets)
		fmt.Printf("  lookup:          %12.0f pps  p50 %6.0f ns  p99 %6.0f ns  %.2f allocs/op\n",
			a.Lookup.ThroughputPPS, a.Lookup.P50Nanos, a.Lookup.P99Nanos, a.Lookup.AllocsPerOp)
		fmt.Printf("  lookup_batch:    %12.0f pps  p50 %6.0f ns  p99 %6.0f ns  %.2f allocs/op  (%.2fx speedup)\n",
			a.LookupBatch.ThroughputPPS, a.LookupBatch.P50Nanos, a.LookupBatch.P99Nanos, a.LookupBatch.AllocsPerOp, a.BatchSpeedup)
		fmt.Printf("  batch_parallel:  %12.0f pps  p50 %6.0f ns  p99 %6.0f ns  %.2f allocs/op\n",
			a.LookupBatchParallel.ThroughputPPS, a.LookupBatchParallel.P50Nanos, a.LookupBatchParallel.P99Nanos, a.LookupBatchParallel.AllocsPerOp)
		fmt.Printf("  memory:          %d B total (%d B iSets + %d B remainder)\n",
			a.Engine.TotalBytes, a.Engine.ISetBytes, a.Engine.RemainderBytes)
		if a.Engine.RemainderAutoSelected {
			fmt.Printf("  remainder:       %s (auto-selected)\n", a.Engine.RemainderBackend)
			for _, s := range a.Engine.RemainderScores {
				if s.Err != "" {
					fmt.Printf("    %-12s failed: %s\n", s.Name, s.Err)
					continue
				}
				mark := " "
				if s.Selected {
					mark = "*"
				}
				fmt.Printf("   %s%-12s score %5.2f  lookup %6.1f ns  %8d B  build %s\n",
					mark, s.Name, s.Score, s.LookupNs, s.MemoryBytes, s.BuildTime.Round(time.Microsecond))
			}
		} else {
			fmt.Printf("  remainder:       %s\n", a.Engine.RemainderBackend)
		}
		fmt.Printf("  persistence:     build %.2fs -> save %.1fms, load %.1fms (%.0fx faster than build), %d B table, %d/%d verified\n",
			a.Persistence.BuildSeconds, a.Persistence.SaveSeconds*1e3, a.Persistence.LoadSeconds*1e3,
			a.Persistence.LoadSpeedup, a.Persistence.TableBytes,
			a.Persistence.VerifiedPackets-a.Persistence.Mismatches, a.Persistence.VerifiedPackets)
		if a.Churn != nil {
			fmt.Printf("  churn:           %d ops, %d retrains, %d mismatches\n",
				a.Churn.TotalOps, a.Churn.TotalRetrains, a.Churn.Mismatches)
			for _, p := range a.Churn.Profiles {
				fmt.Printf("    %-5s %6d ops  %d retrains (%s)  swap max %6.0f µs  probe p99 %5.0f ns max %6.0f ns  remfrac %.2f\n",
					p.Profile, p.Ops, p.Retrains, p.Trigger, p.SwapMaxNanos/1e3,
					p.Probe.P99, p.Probe.Max, p.RemainderFractionEnd)
			}
		}
		if c := a.Cluster; c != nil {
			fmt.Printf("  cluster:         %d shards (%s on field %d), %d/%d rules replicated, %d mismatches\n",
				c.Shards, c.Kind, c.PartitionField, c.ReplicatedRules, c.LiveRules, c.Mismatches)
			fmt.Printf("    merged batch   %12.0f pps  (%.2fx single engine — report-only on 1 CPU)\n",
				c.LookupBatch.ThroughputPPS, c.MergedVsSingleBatch)
			for s, sp := range c.PerShard {
				fmt.Printf("    shard %02d       %6d rules  %6d trace pkts  %12.0f pps batch\n",
					s, sp.Rules, sp.TracePackets, sp.ThroughputPPS)
			}
			if c.Health != "" && c.Health != "healthy" {
				fmt.Printf("    health         %s (%d reasons)\n", c.Health, len(c.HealthReasons))
			}
		}
		if sv := a.Serving; sv != nil {
			fmt.Printf("  serving:         %d clients (window %d): %12.0f pps coalesced (%.2fx of direct batch), fill %.1f/%d, %d mismatches\n",
				sv.Clients, sv.Window, sv.CoalescedPPS, sv.CoalescedVsDirect, sv.AvgBatchFill, sv.BatchSize, sv.Mismatches)
			fmt.Printf("    e2e latency    p50 %6.0f µs  p99 %6.0f µs\n", sv.E2EP50US, sv.E2EP99US)
		}
		if a.BatchMismatches != 0 {
			fmt.Fprintf(os.Stderr, "benchrunner: batched path disagreed with scalar path on %d/%d packets\n",
				a.BatchMismatches, a.BatchVerifiedPackets)
			os.Exit(1)
		}
		if a.Serving != nil && a.Serving.Mismatches != 0 {
			fmt.Fprintf(os.Stderr, "benchrunner: serving path disagreed with the direct engine on %d/%d requests\n",
				a.Serving.Mismatches, a.Serving.Requests)
			os.Exit(1)
		}
		if *minBatch > 0 && a.BatchSpeedup < *minBatch {
			fmt.Fprintf(os.Stderr, "benchrunner: batch speedup %.2fx below the required %.2fx (machine: %d CPUs, kernel %s)\n",
				a.BatchSpeedup, *minBatch, m.NumCPU, m.Kernel)
			os.Exit(1)
		}
		return
	}

	cfg := analysis.DefaultConfig(os.Stdout)
	cfg.Size = *size
	cfg.TraceLen = *traceLen
	cfg.StanfordSize = *stanford
	cfg.Seed = *seed
	if *profiles != "" {
		cfg.Profiles = strings.Split(*profiles, ",")
	}
	if *small != "" {
		cfg.SmallSizes = nil
		for _, s := range strings.Split(*small, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "benchrunner: invalid size %q\n", s)
				os.Exit(2)
			}
			cfg.SmallSizes = append(cfg.SmallSizes, n)
		}
	}

	r := analysis.NewRunner(cfg)
	if err := r.Run(*exp); err != nil {
		fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
		os.Exit(1)
	}
}
