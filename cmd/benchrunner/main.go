// Command benchrunner regenerates the paper's tables and figures as text.
//
// Usage:
//
//	benchrunner -exp fig8 -size 10000 -profiles acl1,fw1
//	benchrunner -exp all -size 500000 -trace 700000   # paper scale
//
// Every experiment id maps to one table or figure of the evaluation
// section; see EXPERIMENTS.md for the index and DESIGN.md for the
// methodology substitutions.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nuevomatch/internal/analysis"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id: "+strings.Join(analysis.Experiments(), ", ")+", or all")
		size     = flag.Int("size", 10000, "primary rule-set size (paper: 500000)")
		small    = flag.String("sizes", "1000,10000", "comma-separated scaling ladder for fig11/fig13/fig17/table2")
		profiles = flag.String("profiles", "", "comma-separated ClassBench profiles (default: all 12)")
		traceLen = flag.Int("trace", 20000, "packets per trace (paper: 700000)")
		stanford = flag.Int("stanford", 20000, "Stanford backbone rule-set size (paper: ~183376)")
		seed     = flag.Int64("seed", 1, "trace generation seed")
	)
	flag.Parse()

	cfg := analysis.DefaultConfig(os.Stdout)
	cfg.Size = *size
	cfg.TraceLen = *traceLen
	cfg.StanfordSize = *stanford
	cfg.Seed = *seed
	if *profiles != "" {
		cfg.Profiles = strings.Split(*profiles, ",")
	}
	if *small != "" {
		cfg.SmallSizes = nil
		for _, s := range strings.Split(*small, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "benchrunner: invalid size %q\n", s)
				os.Exit(2)
			}
			cfg.SmallSizes = append(cfg.SmallSizes, n)
		}
	}

	r := analysis.NewRunner(cfg)
	if err := r.Run(*exp); err != nil {
		fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
		os.Exit(1)
	}
}
