// Command nmlint runs the repo's static-analysis suite (internal/lint) over
// a set of package patterns and exits nonzero on any diagnostic. It is the
// CI gate for the invariants runtime tests can only spot-check: the
// zero-alloc/zero-lock hot path, RCU snapshot immutability, the fault-point
// registry, and no blocking work under the engine write mutex.
//
// Usage:
//
//	nmlint [-dir d] [-only a,b] [packages...]
//
// With no package arguments it analyzes ./.... The -only flag restricts the
// run to a comma-separated subset of analyzers (hotpath, rcusnapshot,
// faultpoint, lockscope).
//
// nmlint drives itself instead of plugging into `go vet -vettool`: the
// vettool protocol needs golang.org/x/tools/go/analysis/unitchecker, and
// this module deliberately carries no third-party dependencies. The
// analyzers mirror the go/analysis API, so they would port mechanically.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nuevomatch/internal/lint"
)

func main() {
	dir := flag.String("dir", ".", "module directory to analyze")
	only := flag.String("only", "", "comma-separated analyzer subset (default: all)")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers := lint.All()
	if *only != "" {
		keep := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(os.Stderr, "nmlint: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = sel
	}

	prog, err := lint.Load(*dir, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nmlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.Run(prog, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nmlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s: %s: %s\n", prog.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "nmlint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
