// Command nmserve is the network-facing serving daemon: it loads a
// persisted table or cluster and serves classification over TCP with
// batch-coalescing ingress, plus an HTTP admin plane (/healthz, /readyz,
// /metrics, /reload). SIGHUP hot-reloads the artifact from disk; SIGINT or
// SIGTERM drains in-flight requests, optionally persists, and exits.
//
//	nmserve -load table.nm                     # serve a single table
//	nmserve -load cluster.d -persist           # serve a cluster, save on exit
//	nmserve bench -connect host:9090 -load ... # client-side conformance bench
//
// See docs/SERVING.md for the protocol and operational semantics.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"nuevomatch"
	"nuevomatch/internal/rules"
	"nuevomatch/internal/serve"
	"nuevomatch/internal/trace"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "bench" {
		cmdBench(os.Args[2:])
		return
	}
	cmdServe(os.Args[1:])
}

func cmdServe(args []string) {
	fs := newFlagSet("nmserve")
	var (
		load     = fs.String("load", "", "table artifact or cluster directory from `nmctl build` (required)")
		listen   = fs.String("listen", "127.0.0.1:9090", "data-plane TCP listen address")
		admin    = fs.String("admin", "127.0.0.1:9091", "HTTP admin listen address (empty disables)")
		batch    = fs.Int("batch", 128, "max requests per coalesced inference batch")
		maxdelay = fs.Duration("maxdelay", 50*time.Microsecond, "max wait to top up a partial batch")
		queue    = fs.Int("queue", 4096, "ingress queue depth")
		persist  = fs.Bool("persist", false, "save the artifact back to -load on autopilot retrains and at shutdown")
		maxUpd   = fs.Int("retrain-updates", 0, "autopilot: retrain after this many updates (0 = policy default)")
		maxFrac  = fs.Float64("retrain-remfrac", 0, "autopilot: retrain when the remainder fraction exceeds this (0 = policy default)")
		kernel   = fs.String("kernel", "auto", "rqrmi inference kernel: auto | go | asm")
	)
	fs.Parse(args)
	if *load == "" {
		fatal(fmt.Errorf("nmserve requires -load table.nm (or a cluster directory)"))
	}
	if err := nuevomatch.SetKernelMode(*kernel); err != nil {
		fatal(err)
	}

	loader := func() (serve.Backend, error) {
		return loadBackend(*load, *maxUpd, *maxFrac, *persist)
	}
	backend, err := loader()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %s (%d fields)\n", *load, backend.NumFields())

	srv := serve.New(backend, serve.Config{
		Listen:     *listen,
		Admin:      *admin,
		BatchSize:  *batch,
		MaxDelay:   *maxdelay,
		QueueDepth: *queue,
		Reload:     loader,
	})
	if err := srv.Start(); err != nil {
		fatal(err)
	}
	fmt.Printf("serving on %s (admin %s), batch %d, maxdelay %v\n",
		srv.Addr(), *admin, *batch, *maxdelay)

	// SIGHUP: hot reload from the same path — the RCU swap never stalls
	// in-flight batches.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := srv.Reload(); err != nil {
				fmt.Fprintf(os.Stderr, "nmserve: reload: %v\n", err)
				continue
			}
			fmt.Println("reloaded", *load)
		}
	}()

	// SIGINT/SIGTERM: drain, persist, close — the same drain path nmctl's
	// churn mode uses.
	ctx, stop := serve.ShutdownContext()
	defer stop()
	<-ctx.Done()
	signal.Stop(hup)
	fmt.Println("shutting down: draining in-flight requests")
	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "nmserve: drain: %v\n", err)
	}
	final := srv.Backend()
	if *persist {
		if err := saveBackend(final, *load); err != nil {
			fmt.Fprintf(os.Stderr, "nmserve: final persist: %v\n", err)
		} else {
			fmt.Println("persisted", *load)
		}
	}
	if cl, ok := final.(interface{ Close() error }); ok {
		cl.Close()
	}
	snap := srv.MetricsSnapshot()
	fmt.Printf("served %d requests in %d batches (avg fill %.1f)\n",
		snap.ResponsesTotal, snap.BatchesTotal, snap.AvgBatchFill())
}

// loadBackend warm-loads the artifact at path: a cluster directory (or a
// path inside one) or a single-table file. Autopilot supervision is
// attached when any retrain flag or persistence is requested.
func loadBackend(path string, maxUpd int, maxFrac float64, persist bool) (serve.Backend, error) {
	wantAP := maxUpd > 0 || maxFrac > 0 || persist
	if dir, ok := clusterDir(path); ok {
		var opts []nuevomatch.ClusterOption
		if wantAP {
			opts = append(opts, nuevomatch.WithClusterAutopilot(nuevomatch.AutopilotPolicy{
				MaxUpdates:           maxUpd,
				MaxRemainderFraction: maxFrac,
			}))
			if persist {
				opts = append(opts, nuevomatch.WithClusterAutopilotPersist(dir))
			}
		}
		return nuevomatch.LoadCluster(dir, opts...)
	}
	var opts []nuevomatch.Option
	if wantAP {
		opts = append(opts, nuevomatch.WithAutopilot(nuevomatch.AutopilotPolicy{
			MaxUpdates:           maxUpd,
			MaxRemainderFraction: maxFrac,
		}))
		if persist {
			opts = append(opts, nuevomatch.WithAutopilotPersist(path))
		}
	}
	return nuevomatch.LoadFile(path, opts...)
}

// saveBackend writes the backend's live state back to its artifact path —
// the final persist on graceful shutdown.
func saveBackend(b serve.Backend, path string) error {
	switch t := b.(type) {
	case *nuevomatch.Table:
		return t.SaveFile(path)
	case *nuevomatch.Cluster:
		dir, ok := clusterDir(path)
		if !ok {
			dir = path
		}
		return t.SaveDir(dir)
	default:
		return fmt.Errorf("backend %T does not support persistence", b)
	}
}

// clusterDir reports whether path names a saved cluster directory (same
// detection as nmctl: the directory, its manifest, CURRENT, or a
// generation directory inside it).
func clusterDir(path string) (string, bool) {
	switch filepath.Base(path) {
	case "cluster.json", "CURRENT":
		path = filepath.Dir(path)
	}
	if strings.HasPrefix(filepath.Base(path), "gen-") {
		if _, err := os.Stat(filepath.Join(filepath.Dir(path), "CURRENT")); err == nil {
			path = filepath.Dir(path)
		}
	}
	if info, err := os.Stat(path); err == nil && info.IsDir() {
		return path, true
	}
	return "", false
}

// cmdBench is the client side: stream count uniform packets through a
// running nmserve from several pipelined connections, verify every response
// against a linear reference over the same artifact, and report throughput
// and end-to-end latency. Exits non-zero on any mismatch — the CI smoke
// test's conformance assert.
func cmdBench(args []string) {
	fs := newFlagSet("nmserve bench")
	var (
		connect = fs.String("connect", "127.0.0.1:9090", "nmserve data-plane address")
		load    = fs.String("load", "", "artifact the server is serving, for the linear reference (required)")
		count   = fs.Int("count", 20000, "total packets to stream")
		clients = fs.Int("clients", 8, "concurrent connections")
		window  = fs.Int("window", 64, "pipelining window per connection")
		seed    = fs.Int64("seed", 1, "random seed for the uniform trace")
		ready   = fs.String("ready", "", "poll this /readyz URL until 200 before streaming (e.g. http://127.0.0.1:9091/readyz)")
	)
	fs.Parse(args)
	if *load == "" {
		fatal(fmt.Errorf("bench requires -load (the served artifact, for reference lookups)"))
	}
	if *ready != "" {
		if err := waitReady(*ready, 30*time.Second); err != nil {
			fatal(err)
		}
	}

	rs, err := referenceRules(*load)
	if err != nil {
		fatal(err)
	}
	prioOf := make(map[int]int32, rs.Len())
	for i := range rs.Rules {
		prioOf[rs.Rules[i].ID] = rs.Rules[i].Priority
	}
	rng := rand.New(rand.NewSource(*seed))
	pkts := trace.Uniform(rng, rs, *count).Packets

	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		mismatches int
		latencies  []time.Duration
	)
	per := (len(pkts) + *clients - 1) / *clients
	start := time.Now()
	for ci := 0; ci < *clients; ci++ {
		lo := ci * per
		hi := min(lo+per, len(pkts))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(part []rules.Packet) {
			defer wg.Done()
			cl, err := serve.Dial(*connect)
			if err != nil {
				fatal(err)
			}
			defer cl.Close()
			bad, lats := streamVerify(cl, part, rs, prioOf, *window)
			mu.Lock()
			mismatches += bad
			latencies = append(latencies, lats...)
			mu.Unlock()
		}(pkts[lo:hi])
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(q float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(q * float64(len(latencies)-1))
		return latencies[i]
	}
	fmt.Printf("streamed %d packets from %d clients (window %d) in %v: %.0f pps\n",
		len(pkts), *clients, *window, elapsed.Round(time.Millisecond),
		float64(len(pkts))/elapsed.Seconds())
	fmt.Printf("e2e latency: p50 %v  p99 %v\n", pct(0.50).Round(time.Microsecond), pct(0.99).Round(time.Microsecond))
	fmt.Printf("verification: %d mismatches over %d responses\n", mismatches, len(pkts))
	if mismatches > 0 {
		os.Exit(1)
	}
}

// streamVerify pipelines part through cl with the given window, verifying
// every response against the linear reference (compared by winning
// priority, tolerating duplicate priorities). Returns the mismatch count
// and per-request client-side latencies.
func streamVerify(cl *serve.Client, part []rules.Packet, rs *rules.RuleSet, prioOf map[int]int32, window int) (int, []time.Duration) {
	sent := make([]time.Time, len(part))
	lats := make([]time.Duration, 0, len(part))
	mismatches := 0
	inflight, next := 0, 0
	recvOne := func() {
		seq, got, err := cl.Recv()
		if err != nil {
			fatal(err)
		}
		lats = append(lats, time.Since(sent[seq]))
		want := rs.MatchID(part[seq])
		if got != want && ((got < 0) != (want < 0) || prioOf[got] != prioOf[want]) {
			mismatches++
		}
		inflight--
	}
	for next < len(part) || inflight > 0 {
		for next < len(part) && inflight < window {
			sent[next] = time.Now()
			if err := cl.Send(uint32(next), part[next]); err != nil {
				fatal(err)
			}
			next++
			inflight++
		}
		if err := cl.Flush(); err != nil {
			fatal(err)
		}
		for inflight > 0 {
			recvOne()
			// Top the window back up as soon as there is room again.
			if next < len(part) && inflight < window/2 {
				break
			}
		}
	}
	return mismatches, lats
}

// referenceRules recovers the live rule-set from the served artifact for
// linear-reference verification.
func referenceRules(path string) (*rules.RuleSet, error) {
	if dir, ok := clusterDir(path); ok {
		c, err := nuevomatch.LoadCluster(dir)
		if err != nil {
			return nil, err
		}
		defer c.Close()
		return c.LiveRuleSet().Clone(), nil
	}
	t, err := nuevomatch.LoadFile(path)
	if err != nil {
		return nil, err
	}
	defer t.Close()
	return t.Engine().LiveRuleSet().Clone(), nil
}

// waitReady polls an admin /readyz URL until it answers 200 or the timeout
// lapses — lets CI background nmserve and start streaming the moment it is
// up, without sleeps.
func waitReady(url string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("not ready after %v: %s", timeout, url)
}

func newFlagSet(name string) *flag.FlagSet { return flag.NewFlagSet(name, flag.ExitOnError) }

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "nmserve: %v\n", err)
	os.Exit(1)
}
