// Command nmctl trains a NuevoMatch engine on a rule file and classifies a
// trace, reporting build statistics and throughput — the end-to-end driver
// for ad-hoc experiments.
//
// Usage:
//
//	nmctl -rules acl1_10k.rules -trace trace.txt -remainder tm
//	nmctl -rules acl1_10k.rules -bench            # uniform self-trace
//	nmctl -gen acl1 -size 10000 -bench            # generate rules in-process
//	nmctl -gen fw1 -churn 50000                   # autopilot churn serve mode
//
// Churn mode (-churn N) runs a sustained interleaved insert/delete/lookup
// workload with the autopilot supervising the engine: drift trips the
// policy, retraining happens on a background goroutine, and the retrained
// state is hot-swapped behind the lookup path. Progress lines report ops,
// throughput, retrains, and swap latency; -verify additionally checks every
// lookup against a linear reference mirror.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"nuevomatch/internal/analysis"
	"nuevomatch/internal/classbench"
	"nuevomatch/internal/core"
	"nuevomatch/internal/rules"
	"nuevomatch/internal/trace"
)

func main() {
	var (
		rulesPath = flag.String("rules", "", "ClassBench-format rule file (or use -gen)")
		gen       = flag.String("gen", "", "generate rules from a ClassBench profile (acl1..acl5, fw1..fw5, ipc1, ipc2) instead of -rules")
		size      = flag.Int("size", 10000, "rule count for -gen")
		tracePath = flag.String("trace", "", "trace file from tracegen (optional)")
		remainder = flag.String("remainder", "tm", "remainder classifier: cs | nc | tm")
		maxErr    = flag.Int("error", 64, "RQ-RMI maximum error threshold")
		bench     = flag.Bool("bench", false, "measure throughput on a generated uniform trace")
		churn     = flag.Int("churn", 0, "churn serve mode: run this many interleaved insert/delete/lookup ops under the autopilot")
		maxUpd    = flag.Int("retrain-updates", 0, "autopilot: retrain after this many updates (0 = policy default)")
		maxFrac   = flag.Float64("retrain-remfrac", 0, "autopilot: retrain when the remainder fraction exceeds this (0 = policy default)")
		verify    = flag.Bool("verify", false, "churn mode: verify every lookup against a linear reference")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var rs *rules.RuleSet
	switch {
	case *gen != "":
		prof, err := classbench.ProfileByName(*gen)
		if err != nil {
			fatal(err)
		}
		rs = classbench.Generate(prof, *size)
		fmt.Printf("generated %d %s rules\n", rs.Len(), prof.Name)
	case *rulesPath != "":
		f, err := os.Open(*rulesPath)
		if err != nil {
			fatal(err)
		}
		rs, err = rules.ReadClassBench(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded %d rules from %s\n", rs.Len(), *rulesPath)
	default:
		fatal(fmt.Errorf("-rules or -gen is required"))
	}

	opt, err := analysis.NMOptions(*remainder, *maxErr)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	engine, err := core.Build(rs, opt)
	if err != nil {
		fatal(err)
	}
	st := engine.Stats()
	fmt.Printf("build: %v total (%v training), %d iSets (fields %v, sizes %v)\n",
		time.Since(start).Round(time.Millisecond), st.TrainingTime.Round(time.Millisecond),
		engine.NumISets(), st.ISetFields, st.ISetSizes)
	fmt.Printf("coverage: %.1f%%, remainder: %d rules, max search distance: %d\n",
		st.Coverage*100, st.RemainderSize, st.MaxSearchDistance)
	fmt.Printf("memory: iSet models %d B, remainder index %d B (total %d B)\n",
		engine.RQRMIBytes(), engine.RemainderBytes(), engine.MemoryFootprint())

	if *churn > 0 {
		runChurn(engine, rs, *churn, *seed, *verify, core.AutopilotPolicy{
			MaxUpdates:           *maxUpd,
			MaxRemainderFraction: *maxFrac,
		})
		return
	}

	var pkts []rules.Packet
	switch {
	case *tracePath != "":
		pkts, err = readTrace(*tracePath, rs.NumFields)
		if err != nil {
			fatal(err)
		}
	case *bench:
		rng := rand.New(rand.NewSource(*seed))
		pkts = trace.Uniform(rng, rs, 100000).Packets
	default:
		return
	}

	matched := 0
	start = time.Now()
	for _, p := range pkts {
		if engine.Lookup(p) >= 0 {
			matched++
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("classified %d packets in %v (%.0f pps, %.0f%% matched)\n",
		len(pkts), elapsed.Round(time.Millisecond),
		float64(len(pkts))/elapsed.Seconds(), 100*float64(matched)/float64(len(pkts)))
}

// runChurn is the serve-style churn mode: a sustained update/lookup stream
// with the autopilot retraining in the background, reporting progress about
// once a second.
func runChurn(e *core.Engine, rs *rules.RuleSet, ops int, seed int64, verify bool, policy core.AutopilotPolicy) {
	rng := rand.New(rand.NewSource(seed))
	mirror := rs.Clone()
	prioOf := make(map[int]int32, mirror.Len())
	for i := range mirror.Rules {
		prioOf[mirror.Rules[i].ID] = mirror.Rules[i].Priority
	}

	ap := core.NewAutopilot(e, policy)
	ap.Start()
	defer ap.Stop()
	fmt.Printf("churn: %d ops, policy %+v\n", ops, ap.Policy())

	nextID := 1 << 24
	var lookups, inserts, deletes, mismatches int
	start := time.Now()
	lastReport := start
	lastOps := 0
	for op := 0; op < ops; op++ {
		switch x := rng.Float64(); {
		case x < 0.60:
			lookups++
			p := make(rules.Packet, mirror.NumFields)
			if mirror.Len() > 0 && rng.Intn(4) != 0 {
				classbench.FillMatchingPacket(rng, &mirror.Rules[rng.Intn(mirror.Len())], p)
			} else {
				for d := range p {
					p[d] = rng.Uint32()
				}
			}
			got := e.Lookup(p)
			if verify {
				// File-loaded rule-sets may carry duplicate priorities, so
				// compare by winning priority, not rule identity.
				want := mirror.MatchID(p)
				if got != want && ((got < 0) != (want < 0) || prioOf[got] != prioOf[want]) {
					mismatches++
				}
			}
		case x < 0.80 && mirror.Len() > 0:
			// Insert a mutation of a random live rule under a fresh ID.
			src := mirror.Rules[rng.Intn(mirror.Len())]
			r := src
			r.ID = nextID
			nextID++
			r.Priority = int32(rng.Intn(1 << 20))
			r.Fields = append([]rules.Range(nil), src.Fields...)
			if mirror.NumFields == rules.NumFiveTupleFields {
				r.Fields[rules.FieldDstPort] = rules.ExactRange(uint32(rng.Intn(65536)))
			}
			if err := e.Insert(r); err != nil {
				fatal(err)
			}
			mirror.Add(r)
			prioOf[r.ID] = r.Priority
			inserts++
		default:
			if mirror.Len() <= 16 {
				continue
			}
			i := rng.Intn(mirror.Len())
			id := mirror.Rules[i].ID
			if err := e.Delete(id); err != nil {
				fatal(err)
			}
			delete(prioOf, id)
			mirror.Rules[i] = mirror.Rules[mirror.Len()-1]
			mirror.Rules = mirror.Rules[:mirror.Len()-1]
			deletes++
		}
		if now := time.Now(); now.Sub(lastReport) >= time.Second {
			st := ap.Stats()
			us := e.Updates()
			fmt.Printf("  %7d ops (%6.0f ops/s)  live %6d  remfrac %.2f  retrains %d  last swap %v  trigger %q\n",
				op+1, float64(op+1-lastOps)/now.Sub(lastReport).Seconds(),
				us.LiveRules, us.RemainderFraction, st.Retrains, st.LastSwap.Round(time.Microsecond), st.LastTrigger)
			lastReport, lastOps = now, op+1
		}
	}
	if ap.Stats().Retrains == 0 {
		if _, err := ap.Check(); err != nil {
			fatal(err)
		}
	}
	ap.Stop()

	st := ap.Stats()
	us := e.Updates()
	elapsed := time.Since(start)
	fmt.Printf("churn done: %d ops in %v (%.0f ops/s): %d lookups, %d inserts, %d deletes\n",
		ops, elapsed.Round(time.Millisecond), float64(ops)/elapsed.Seconds(), lookups, inserts, deletes)
	fmt.Printf("autopilot: %d retrains (%d failures), %d journaled updates replayed, max swap %v, total train %v\n",
		st.Retrains, st.Failures, st.Replayed, st.MaxSwap.Round(time.Microsecond), st.TotalTrain.Round(time.Millisecond))
	fmt.Printf("final: live %d rules, remainder fraction %.2f\n", us.LiveRules, us.RemainderFraction)
	if verify {
		fmt.Printf("verification: %d mismatches over %d lookups\n", mismatches, lookups)
		if mismatches > 0 {
			os.Exit(1)
		}
	}
}

func readTrace(path string, numFields int) ([]rules.Packet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var pkts []rules.Packet
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if len(fields) != numFields {
			return nil, fmt.Errorf("trace line has %d fields, rules have %d", len(fields), numFields)
		}
		p := make(rules.Packet, len(fields))
		for d, s := range fields {
			v, err := strconv.ParseUint(s, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("bad field %q: %v", s, err)
			}
			p[d] = uint32(v)
		}
		pkts = append(pkts, p)
	}
	return pkts, sc.Err()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "nmctl: %v\n", err)
	os.Exit(1)
}
