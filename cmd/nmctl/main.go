// Command nmctl drives NuevoMatch tables end to end: train and persist a
// table offline, then serve it warm — the production split the persistence
// lifecycle exists for — plus an ad-hoc combined mode for quick experiments.
//
// Usage:
//
//	nmctl build -gen acl1 -size 10000 -o table.nm     # train offline, persist
//	nmctl build -rules acl1_10k.rules -o table.nm
//	nmctl build -gen acl1 -size 10000 -shards 4 -o cluster.d   # sharded cluster
//	nmctl serve -load table.nm -bench                 # warm start: no retraining
//	nmctl serve -load table.nm -churn 50000 -persist table.nm
//	nmctl serve -load cluster.d -bench                # warm start a whole cluster
//	nmctl serve -load cluster.d -churn 50000 -persist cluster.d
//	nmctl fsck -repair cluster.d                      # verify/repair a saved cluster
//	nmctl -gen acl1 -size 10000 -bench                # legacy combined mode
//
// With -shards N (N > 1) build trains a sharded nuevomatch.Cluster —
// N independent engines over a partitioned rule-set — and -o names a
// directory holding one table artifact per shard plus the cluster manifest.
// serve -load detects such a directory (or its cluster.json) and loads the
// whole cluster; churn mode then runs one autopilot per shard, so retrains
// stall 1/N of the table.
//
// serve loads in milliseconds whatever build spent training and reports the
// load-vs-build amortization. Churn mode (-churn N) runs a sustained
// interleaved insert/delete/lookup workload with the autopilot supervising
// the table: drift trips the policy, retraining happens on a background
// goroutine, the retrained state is hot-swapped behind the lookup path, and
// with -persist the artifact on disk is refreshed after every retrain so a
// restart warm-starts from the freshest state. Progress lines report ops,
// throughput, retrains, and swap latency; -verify additionally checks every
// lookup against a linear reference mirror.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"nuevomatch"
	"nuevomatch/internal/classbench"
	"nuevomatch/internal/rules"
	"nuevomatch/internal/serve"
	"nuevomatch/internal/trace"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "build":
			cmdBuild(os.Args[2:])
			return
		case "serve":
			cmdServe(os.Args[2:])
			return
		case "fsck":
			cmdFsck(os.Args[2:])
			return
		}
	}
	cmdLegacy(os.Args[1:])
}

// ruleSource loads or generates the rule-set shared by build and the legacy
// mode.
func ruleSource(rulesPath, gen string, size int) (*rules.RuleSet, error) {
	switch {
	case gen != "":
		prof, err := classbench.ProfileByName(gen)
		if err != nil {
			return nil, err
		}
		rs := classbench.Generate(prof, size)
		fmt.Printf("generated %d %s rules\n", rs.Len(), prof.Name)
		return rs, nil
	case rulesPath != "":
		f, err := os.Open(rulesPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		rs, err := rules.ReadClassBench(f)
		if err != nil {
			return nil, err
		}
		fmt.Printf("loaded %d rules from %s\n", rs.Len(), rulesPath)
		return rs, nil
	default:
		return nil, fmt.Errorf("-rules or -gen is required")
	}
}

// buildOptions maps the -remainder/-error flags onto functional options,
// using the paper's pairing of minimum coverage per remainder (§5.3.2).
func buildOptions(remainder string, maxErr int) ([]nuevomatch.Option, error) {
	var opts []nuevomatch.Option
	switch remainder {
	case "tm", "tuplemerge":
		opts = append(opts, nuevomatch.WithRemainder(nuevomatch.TupleMerge),
			nuevomatch.WithMaxISets(4), nuevomatch.WithMinCoverage(0.05))
	case "rvh":
		opts = append(opts, nuevomatch.WithRemainder("rvh"),
			nuevomatch.WithMaxISets(4), nuevomatch.WithMinCoverage(0.05))
	case "auto":
		// Hash-remainder iSet pairing: both auto candidates are hash-based,
		// so the TupleMerge coverage settings apply whichever wins.
		opts = append(opts, nuevomatch.WithRemainder(nuevomatch.RemainderAuto),
			nuevomatch.WithMaxISets(4), nuevomatch.WithMinCoverage(0.05))
	case "cs":
		opts = append(opts, nuevomatch.WithRemainder(nuevomatch.CutSplit),
			nuevomatch.WithMaxISets(2), nuevomatch.WithMinCoverage(0.25))
	case "nc":
		opts = append(opts, nuevomatch.WithRemainder(nuevomatch.NeuroCuts),
			nuevomatch.WithMaxISets(2), nuevomatch.WithMinCoverage(0.25))
	default:
		return nil, fmt.Errorf("unknown remainder %q (want tuplemerge/tm, rvh, auto, cs, or nc)", remainder)
	}
	opts = append(opts, nuevomatch.WithRQRMI(nuevomatch.RQRMIConfig{TargetError: maxErr}))
	return opts, nil
}

func printTableStats(t *nuevomatch.Table) {
	st := t.Stats()
	fmt.Printf("table: %d iSets (fields %v, sizes %v), coverage %.1f%%, remainder %d rules, max search distance %d\n",
		t.NumISets(), st.ISetFields, st.ISetSizes, st.Coverage*100, st.RemainderSize, st.MaxSearchDistance)
	fmt.Printf("memory: iSet models %d B, remainder index %d B (total %d B)\n",
		t.RQRMIBytes(), t.RemainderBytes(), t.MemoryFootprint())
}

// cmdBuild trains a table and persists it: the offline, expensive half of
// the lifecycle.
func cmdBuild(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	var (
		rulesPath = fs.String("rules", "", "ClassBench-format rule file (or use -gen)")
		gen       = fs.String("gen", "", "generate rules from a ClassBench profile (acl1..acl5, fw1..fw5, ipc1, ipc2)")
		size      = fs.Int("size", 10000, "rule count for -gen")
		remainder = fs.String("remainder", "tm", "remainder classifier: tuplemerge(tm) | rvh | auto | cs | nc")
		maxErr    = fs.Int("error", 64, "RQ-RMI maximum error threshold")
		shards    = fs.Int("shards", 1, "shard count; >1 builds a sharded cluster and -o names a directory")
		out       = fs.String("o", "table.nm", "output table artifact (or cluster directory with -shards)")
	)
	fs.Parse(args)

	rs, err := ruleSource(*rulesPath, *gen, *size)
	if err != nil {
		fatal(err)
	}
	opts, err := buildOptions(*remainder, *maxErr)
	if err != nil {
		fatal(err)
	}
	if *shards > 1 {
		start := time.Now()
		cluster, err := nuevomatch.OpenCluster(rs,
			nuevomatch.WithShards(*shards), nuevomatch.WithShardOptions(opts...))
		if err != nil {
			fatal(err)
		}
		defer cluster.Close()
		buildTime := time.Since(start)
		fmt.Printf("build: %v total across %d parallel shard trainings\n",
			buildTime.Round(time.Millisecond), cluster.NumShards())
		printClusterStats(cluster)
		start = time.Now()
		if err := cluster.SaveDir(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("saved cluster %s (%d shard files + manifest) in %v (`nmctl serve -load %s` skips the %v of training)\n",
			*out, cluster.NumShards(), time.Since(start).Round(time.Millisecond), *out, buildTime.Round(time.Millisecond))
		return
	}
	start := time.Now()
	table, err := nuevomatch.Open(rs, opts...)
	if err != nil {
		fatal(err)
	}
	defer table.Close()
	buildTime := time.Since(start)
	fmt.Printf("build: %v total (%v training)\n",
		buildTime.Round(time.Millisecond), table.Stats().TrainingTime.Round(time.Millisecond))
	printTableStats(table)

	start = time.Now()
	if err := table.SaveFile(*out); err != nil {
		fatal(err)
	}
	info, err := os.Stat(*out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("saved %s: %d B in %v (a later `nmctl serve -load %s` skips the %v of training)\n",
		*out, info.Size(), time.Since(start).Round(time.Millisecond), *out, buildTime.Round(time.Millisecond))
}

// printClusterStats summarizes a cluster's shape: shard widths, routing,
// replication overhead, and memory.
func printClusterStats(c *nuevomatch.Cluster) {
	st := c.Stats()
	fmt.Printf("cluster: %d shards (%s partition on field %d), rules per shard %v\n",
		st.Shards, st.Kind, st.PartitionField, st.ShardRules)
	fmt.Printf("rules: %d live, %d replicated to multiple shards; memory %d B total\n",
		st.LiveRules, st.Replicated, c.MemoryFootprint())
}

// cmdServe loads a persisted table — the warm start — and serves it:
// one-shot classification (-trace / -bench) or the autopilot churn workload
// (-churn).
func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		load      = fs.String("load", "", "table artifact from `nmctl build` (required)")
		tracePath = fs.String("trace", "", "trace file from tracegen (optional)")
		bench     = fs.Bool("bench", false, "measure throughput on a generated uniform trace")
		churn     = fs.Int("churn", 0, "churn serve mode: run this many interleaved insert/delete/lookup ops under the autopilot")
		maxUpd    = fs.Int("retrain-updates", 0, "autopilot: retrain after this many updates (0 = policy default)")
		maxFrac   = fs.Float64("retrain-remfrac", 0, "autopilot: retrain when the remainder fraction exceeds this (0 = policy default)")
		persist   = fs.String("persist", "", "re-save the table here after every autopilot retrain")
		verify    = fs.Bool("verify", false, "churn mode: verify every lookup against a linear reference")
		seed      = fs.Int64("seed", 1, "random seed")
		kernel    = fs.String("kernel", "auto", "rqrmi inference kernel: auto | go | asm (bit-identical; perf only)")
	)
	fs.Parse(args)
	setKernel(*kernel)
	if *load == "" {
		fatal(fmt.Errorf("serve requires -load table.nm (or a cluster directory)"))
	}

	// A directory (or a path to its cluster.json) is a sharded cluster.
	if dir, ok := clusterDir(*load); ok {
		serveCluster(dir, *tracePath, *bench, *churn, *maxUpd, *maxFrac, *persist, *verify, *seed)
		return
	}

	var opts []nuevomatch.Option
	if *churn > 0 {
		policy := nuevomatch.AutopilotPolicy{
			MaxUpdates:           *maxUpd,
			MaxRemainderFraction: *maxFrac,
		}
		opts = append(opts, nuevomatch.WithAutopilot(policy))
		if *persist != "" {
			opts = append(opts, nuevomatch.WithAutopilotPersist(*persist))
		}
	}
	start := time.Now()
	table, err := nuevomatch.LoadFile(*load, opts...)
	if err != nil {
		fatal(err)
	}
	defer table.Close()
	st := table.Stats()
	fmt.Printf("loaded %s in %v (original training: %v — skipped)\n",
		*load, time.Since(start).Round(time.Millisecond), st.TrainingTime.Round(time.Millisecond))
	printTableStats(table)

	rs := table.Engine().LiveRuleSet()
	if *churn > 0 {
		ctx, stop := serve.ShutdownContext()
		defer stop()
		runChurn(ctx, table, rs, *churn, *seed, *verify, *persist)
		return
	}

	var pkts []rules.Packet
	switch {
	case *tracePath != "":
		pkts, err = readTrace(*tracePath, rs.NumFields)
		if err != nil {
			fatal(err)
		}
	case *bench:
		rng := rand.New(rand.NewSource(*seed))
		pkts = trace.Uniform(rng, rs, 100000).Packets
	default:
		return
	}
	classify(table, pkts)
}

// clusterDir reports whether path names a saved cluster: the directory
// itself, its manifest file, its CURRENT generation pointer, or a
// generation directory inside it (gen-NNNNNNNN — the parent is the
// cluster).
func clusterDir(path string) (string, bool) {
	switch filepath.Base(path) {
	case "cluster.json", "CURRENT":
		path = filepath.Dir(path)
	}
	if strings.HasPrefix(filepath.Base(path), "gen-") {
		if _, err := os.Stat(filepath.Join(filepath.Dir(path), "CURRENT")); err == nil {
			path = filepath.Dir(path)
		}
	}
	if info, err := os.Stat(path); err == nil && info.IsDir() {
		return path, true
	}
	return "", false
}

// cmdFsck verifies a saved cluster directory (every generation's manifest,
// shard checksums, rules artifact, and replication invariant) and with
// -repair restores it to a loadable last-good state.
func cmdFsck(args []string) {
	fs := flag.NewFlagSet("fsck", flag.ExitOnError)
	repair := fs.Bool("repair", false, "repair: point CURRENT at the newest intact generation and sweep torn or broken ones")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("usage: nmctl fsck [-repair] cluster.d"))
	}
	dir, ok := clusterDir(fs.Arg(0))
	if !ok {
		fatal(fmt.Errorf("%s is not a cluster directory", fs.Arg(0)))
	}
	rep, err := nuevomatch.FsckCluster(dir, *repair)
	if rep != nil {
		for _, g := range rep.Generations {
			verdict := "intact"
			if !g.Intact {
				verdict = "BROKEN"
			}
			fmt.Printf("generation %s: %s (%d shards)\n", g.Name, verdict, g.Shards)
			for _, p := range g.Problems {
				fmt.Printf("  problem: %s\n", p)
			}
		}
		if rep.RepairedCurrent {
			fmt.Printf("repaired CURRENT: %s -> %s\n", rep.CurrentBefore, rep.CurrentAfter)
		}
		for _, name := range rep.Removed {
			fmt.Printf("removed: %s\n", name)
		}
	}
	if err != nil {
		fatal(err)
	}
	if rep.Healthy() {
		fmt.Printf("%s: healthy (serving %s)\n", dir, rep.CurrentAfter)
		return
	}
	if *repair {
		fmt.Printf("%s: repaired (serving %s)\n", dir, rep.CurrentAfter)
		return
	}
	fmt.Printf("%s: needs repair (run nmctl fsck -repair)\n", dir)
	os.Exit(1)
}

// serveCluster is cmdServe for a sharded cluster: warm-load the whole
// directory, then classify (-trace/-bench) or churn with one autopilot per
// shard (-churn).
func serveCluster(dir, tracePath string, bench bool, churn, maxUpd int, maxFrac float64, persist string, verify bool, seed int64) {
	var opts []nuevomatch.ClusterOption
	if churn > 0 {
		opts = append(opts, nuevomatch.WithClusterAutopilot(nuevomatch.AutopilotPolicy{
			MaxUpdates:           maxUpd,
			MaxRemainderFraction: maxFrac,
		}))
		if persist != "" {
			if pdir, ok := clusterDir(persist); ok {
				persist = pdir
			}
			opts = append(opts, nuevomatch.WithClusterAutopilotPersist(persist))
		}
	}
	start := time.Now()
	cluster, err := nuevomatch.LoadCluster(dir, opts...)
	if err != nil {
		fatal(err)
	}
	defer cluster.Close()
	fmt.Printf("loaded cluster %s in %v (training skipped on all %d shards)\n",
		dir, time.Since(start).Round(time.Millisecond), cluster.NumShards())
	printClusterStats(cluster)
	if h := cluster.Health(); h.State != nuevomatch.Healthy {
		fmt.Printf("health: %s\n", h)
	}

	rs := cluster.LiveRuleSet()
	if churn > 0 {
		ctx, stop := serve.ShutdownContext()
		defer stop()
		runClusterChurn(ctx, cluster, rs, churn, seed, verify, persist)
		return
	}
	var pkts []rules.Packet
	switch {
	case tracePath != "":
		pkts, err = readTrace(tracePath, rs.NumFields)
		if err != nil {
			fatal(err)
		}
	case bench:
		rng := rand.New(rand.NewSource(seed))
		pkts = trace.Uniform(rng, rs, 100000).Packets
	default:
		return
	}
	matched := 0
	out := make([]int, 256)
	start = time.Now()
	for off := 0; off < len(pkts); off += 256 {
		n := len(pkts) - off
		if n > 256 {
			n = 256
		}
		cluster.LookupBatch(pkts[off:off+n], out[:n])
		for _, id := range out[:n] {
			if id >= 0 {
				matched++
			}
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("classified %d packets in %v via the sharded batch path (%.0f pps, %.0f%% matched)\n",
		len(pkts), elapsed.Round(time.Millisecond),
		float64(len(pkts))/elapsed.Seconds(), 100*float64(matched)/float64(len(pkts)))
}

// churnTarget is the lookup/update surface the churn workload drives —
// satisfied by both *nuevomatch.Table and *nuevomatch.Cluster, so one loop
// serves both serve modes.
type churnTarget interface {
	Lookup(rules.Packet) int
	Insert(nuevomatch.Rule) error
	Delete(int) error
}

// churnCounts summarizes one churn run.
type churnCounts struct {
	done                                  int
	lookups, inserts, deletes, mismatches int
	interrupted                           bool
	elapsed                               time.Duration
}

// churnLoop drives ops interleaved operations (~60% lookups, ~20% inserts
// of mutated live rules under fresh IDs, ~20% deletes) against tgt while
// maintaining an exact linear-reference mirror. With verify, every lookup
// is checked against the mirror (compared by winning priority — file-loaded
// rule-sets may carry duplicate priorities). report runs about once a
// second with the ops completed so far and the instantaneous rate. A
// cancelled ctx (SIGINT/SIGTERM via serve.ShutdownContext) stops the loop
// at the next op boundary so the caller can persist and close cleanly.
func churnLoop(ctx context.Context, tgt churnTarget, mirror *rules.RuleSet, ops int, seed int64, verify bool, report func(done int, rate float64)) churnCounts {
	rng := rand.New(rand.NewSource(seed))
	prioOf := make(map[int]int32, mirror.Len())
	for i := range mirror.Rules {
		prioOf[mirror.Rules[i].ID] = mirror.Rules[i].Priority
	}
	nextID := 1 << 24
	var n churnCounts
	start := time.Now()
	lastReport := start
	lastOps := 0
	for op := 0; op < ops; op++ {
		select {
		case <-ctx.Done():
			n.interrupted = true
			n.done = op
			n.elapsed = time.Since(start)
			return n
		default:
		}
		n.done = op + 1
		switch x := rng.Float64(); {
		case x < 0.60:
			n.lookups++
			p := make(rules.Packet, mirror.NumFields)
			if mirror.Len() > 0 && rng.Intn(4) != 0 {
				classbench.FillMatchingPacket(rng, &mirror.Rules[rng.Intn(mirror.Len())], p)
			} else {
				for d := range p {
					p[d] = rng.Uint32()
				}
			}
			got := tgt.Lookup(p)
			if verify {
				want := mirror.MatchID(p)
				if got != want && ((got < 0) != (want < 0) || prioOf[got] != prioOf[want]) {
					n.mismatches++
				}
			}
		case x < 0.80 && mirror.Len() > 0:
			// Insert a mutation of a random live rule under a fresh ID.
			src := mirror.Rules[rng.Intn(mirror.Len())]
			r := src
			r.ID = nextID
			nextID++
			r.Priority = int32(rng.Intn(1 << 20))
			r.Fields = append([]rules.Range(nil), src.Fields...)
			if mirror.NumFields == rules.NumFiveTupleFields {
				r.Fields[rules.FieldDstPort] = rules.ExactRange(uint32(rng.Intn(65536)))
			}
			if err := tgt.Insert(r); err != nil {
				fatal(err)
			}
			mirror.Add(r)
			prioOf[r.ID] = r.Priority
			n.inserts++
		default:
			if mirror.Len() <= 16 {
				continue
			}
			i := rng.Intn(mirror.Len())
			id := mirror.Rules[i].ID
			if err := tgt.Delete(id); err != nil {
				fatal(err)
			}
			delete(prioOf, id)
			mirror.Rules[i] = mirror.Rules[mirror.Len()-1]
			mirror.Rules = mirror.Rules[:mirror.Len()-1]
			n.deletes++
		}
		if now := time.Now(); now.Sub(lastReport) >= time.Second {
			report(op+1, float64(op+1-lastOps)/now.Sub(lastReport).Seconds())
			lastReport, lastOps = now, op+1
		}
	}
	n.elapsed = time.Since(start)
	return n
}

// finishChurn prints the shared tail of a churn run and exits non-zero on
// verification mismatches.
func finishChurn(n churnCounts, verify bool) {
	verb := "done"
	if n.interrupted {
		verb = "interrupted (drained cleanly)"
	}
	fmt.Printf("churn %s: %d ops in %v (%.0f ops/s): %d lookups, %d inserts, %d deletes\n",
		verb, n.done, n.elapsed.Round(time.Millisecond), float64(n.done)/n.elapsed.Seconds(),
		n.lookups, n.inserts, n.deletes)
	if verify {
		fmt.Printf("verification: %d mismatches over %d lookups\n", n.mismatches, n.lookups)
		if n.mismatches > 0 {
			os.Exit(1)
		}
	}
}

// runClusterChurn is churn serve mode for a cluster: the shared workload
// loop with one autopilot per shard retraining in the background. On
// SIGINT/SIGTERM the loop drains at an op boundary, the final state is
// saved to persistDir (when set), and the deferred Close runs — pooled
// workers and rebuild loops exit instead of dying mid-flight.
func runClusterChurn(ctx context.Context, c *nuevomatch.Cluster, rs *rules.RuleSet, ops int, seed int64, verify bool, persistDir string) {
	if c.ShardAutopilot(0) == nil {
		fatal(fmt.Errorf("cluster churn mode requires autopilot options"))
	}
	fmt.Printf("churn: %d ops across %d shards, policy %+v\n", ops, c.NumShards(), c.ShardAutopilot(0).Policy())
	n := churnLoop(ctx, c, rs.Clone(), ops, seed, verify, func(done int, rate float64) {
		st := c.AutopilotStats()
		cst := c.Stats()
		fmt.Printf("  %7d ops (%6.0f ops/s)  live %6d  shards %v  retrains %d  last swap %v  trigger %q\n",
			done, rate, cst.LiveRules, cst.ShardRules, st.Retrains,
			st.LastSwap.Round(time.Microsecond), st.LastTrigger)
	})
	if !n.interrupted && c.AutopilotStats().Retrains == 0 {
		for s := 0; s < c.NumShards(); s++ {
			if _, err := c.ShardAutopilot(s).Check(); err != nil {
				fatal(err)
			}
		}
	}
	if persistDir != "" {
		if err := c.SaveDir(persistDir); err != nil {
			fmt.Fprintf(os.Stderr, "nmctl: final persist: %v\n", err)
		} else {
			fmt.Printf("final persist: %s\n", persistDir)
		}
	}
	st := c.AutopilotStats()
	cst := c.Stats()
	fmt.Printf("autopilots: %d retrains (%d failures) across %d shards, %d journaled updates replayed, max swap %v, total train %v\n",
		st.Retrains, st.Failures, c.NumShards(), st.Replayed, st.MaxSwap.Round(time.Microsecond), st.TotalTrain.Round(time.Millisecond))
	if st.PersistFailures > 0 {
		fmt.Printf("autopilots: %d persist failures (last: %s)\n", st.PersistFailures, st.LastPersistError)
	}
	fmt.Printf("final: live %d rules, per shard %v, %d replicated\n", cst.LiveRules, cst.ShardRules, cst.Replicated)
	fmt.Printf("health: %s\n", c.Health())
	finishChurn(n, verify)
}

// cmdLegacy is the original combined mode: build in-process, then classify
// or churn, without persistence.
func cmdLegacy(args []string) {
	fs := flag.NewFlagSet("nmctl", flag.ExitOnError)
	var (
		rulesPath = fs.String("rules", "", "ClassBench-format rule file (or use -gen)")
		gen       = fs.String("gen", "", "generate rules from a ClassBench profile (acl1..acl5, fw1..fw5, ipc1, ipc2) instead of -rules")
		size      = fs.Int("size", 10000, "rule count for -gen")
		tracePath = fs.String("trace", "", "trace file from tracegen (optional)")
		remainder = fs.String("remainder", "tm", "remainder classifier: tuplemerge(tm) | rvh | auto | cs | nc")
		maxErr    = fs.Int("error", 64, "RQ-RMI maximum error threshold")
		bench     = fs.Bool("bench", false, "measure throughput on a generated uniform trace")
		churn     = fs.Int("churn", 0, "churn serve mode: run this many interleaved insert/delete/lookup ops under the autopilot")
		maxUpd    = fs.Int("retrain-updates", 0, "autopilot: retrain after this many updates (0 = policy default)")
		maxFrac   = fs.Float64("retrain-remfrac", 0, "autopilot: retrain when the remainder fraction exceeds this (0 = policy default)")
		verify    = fs.Bool("verify", false, "churn mode: verify every lookup against a linear reference")
		seed      = fs.Int64("seed", 1, "random seed")
		kernel    = fs.String("kernel", "auto", "rqrmi inference kernel: auto | go | asm (bit-identical; perf only)")
	)
	fs.Parse(args)
	setKernel(*kernel)

	rs, err := ruleSource(*rulesPath, *gen, *size)
	if err != nil {
		fatal(err)
	}
	opts, err := buildOptions(*remainder, *maxErr)
	if err != nil {
		fatal(err)
	}
	if *churn > 0 {
		opts = append(opts, nuevomatch.WithAutopilot(nuevomatch.AutopilotPolicy{
			MaxUpdates:           *maxUpd,
			MaxRemainderFraction: *maxFrac,
		}))
	}
	start := time.Now()
	table, err := nuevomatch.Open(rs, opts...)
	if err != nil {
		fatal(err)
	}
	defer table.Close()
	fmt.Printf("build: %v total (%v training)\n",
		time.Since(start).Round(time.Millisecond), table.Stats().TrainingTime.Round(time.Millisecond))
	printTableStats(table)

	if *churn > 0 {
		ctx, stop := serve.ShutdownContext()
		defer stop()
		runChurn(ctx, table, rs, *churn, *seed, *verify, "")
		return
	}

	var pkts []rules.Packet
	switch {
	case *tracePath != "":
		pkts, err = readTrace(*tracePath, rs.NumFields)
		if err != nil {
			fatal(err)
		}
	case *bench:
		rng := rand.New(rand.NewSource(*seed))
		pkts = trace.Uniform(rng, rs, 100000).Packets
	default:
		return
	}
	classify(table, pkts)
}

func classify(t *nuevomatch.Table, pkts []rules.Packet) {
	matched := 0
	start := time.Now()
	for _, p := range pkts {
		if t.Lookup(p) >= 0 {
			matched++
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("classified %d packets in %v (%.0f pps, %.0f%% matched)\n",
		len(pkts), elapsed.Round(time.Millisecond),
		float64(len(pkts))/elapsed.Seconds(), 100*float64(matched)/float64(len(pkts)))
}

// runChurn is the serve-style churn mode: the shared workload loop with
// the table's autopilot retraining in the background. On SIGINT/SIGTERM
// the loop drains at an op boundary, the final state is saved to
// persistPath (when set), and the deferred Close runs.
func runChurn(ctx context.Context, t *nuevomatch.Table, rs *rules.RuleSet, ops int, seed int64, verify bool, persistPath string) {
	ap := t.Autopilot()
	if ap == nil {
		fatal(fmt.Errorf("churn mode requires an autopilot-configured table"))
	}
	fmt.Printf("churn: %d ops, policy %+v\n", ops, ap.Policy())
	n := churnLoop(ctx, t, rs.Clone(), ops, seed, verify, func(done int, rate float64) {
		st := ap.Stats()
		us := t.Updates()
		fmt.Printf("  %7d ops (%6.0f ops/s)  live %6d  remfrac %.2f  retrains %d  last swap %v  trigger %q\n",
			done, rate, us.LiveRules, us.RemainderFraction, st.Retrains,
			st.LastSwap.Round(time.Microsecond), st.LastTrigger)
	})
	if !n.interrupted && ap.Stats().Retrains == 0 {
		if _, err := ap.Check(); err != nil {
			fatal(err)
		}
	}
	if persistPath != "" {
		if err := t.SaveFile(persistPath); err != nil {
			fmt.Fprintf(os.Stderr, "nmctl: final persist: %v\n", err)
		} else {
			fmt.Printf("final persist: %s\n", persistPath)
		}
	}
	st := ap.Stats()
	us := t.Updates()
	fmt.Printf("autopilot: %d retrains (%d failures), %d journaled updates replayed, max swap %v, total train %v\n",
		st.Retrains, st.Failures, st.Replayed, st.MaxSwap.Round(time.Microsecond), st.TotalTrain.Round(time.Millisecond))
	if st.PersistFailures > 0 {
		fmt.Printf("autopilot: %d persist failures (last: %s)\n", st.PersistFailures, st.LastPersistError)
	}
	fmt.Printf("final: live %d rules, remainder fraction %.2f\n", us.LiveRules, us.RemainderFraction)
	fmt.Printf("health: %s\n", t.Health())
	finishChurn(n, verify)
}

func readTrace(path string, numFields int) ([]rules.Packet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var pkts []rules.Packet
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if len(fields) != numFields {
			return nil, fmt.Errorf("trace line has %d fields, rules have %d", len(fields), numFields)
		}
		p := make(rules.Packet, len(fields))
		for d, s := range fields {
			v, err := strconv.ParseUint(s, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("bad field %q: %v", s, err)
			}
			p[d] = uint32(v)
		}
		pkts = append(pkts, p)
	}
	return pkts, sc.Err()
}

// setKernel applies the -kernel override before any lookups run. The
// kernels are bit-identical, so this is a performance choice; "asm" fails
// fast here when the build or host cannot run the AVX2 kernel.
func setKernel(mode string) {
	if err := nuevomatch.SetKernelMode(mode); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "nmctl: %v\n", err)
	os.Exit(1)
}
