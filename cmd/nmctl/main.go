// Command nmctl trains a NuevoMatch engine on a rule file and classifies a
// trace, reporting build statistics and throughput — the end-to-end driver
// for ad-hoc experiments.
//
// Usage:
//
//	nmctl -rules acl1_10k.rules -trace trace.txt -remainder tm
//	nmctl -rules acl1_10k.rules -bench            # uniform self-trace
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"nuevomatch/internal/analysis"
	"nuevomatch/internal/core"
	"nuevomatch/internal/rules"
	"nuevomatch/internal/trace"
)

func main() {
	var (
		rulesPath = flag.String("rules", "", "ClassBench-format rule file (required)")
		tracePath = flag.String("trace", "", "trace file from tracegen (optional)")
		remainder = flag.String("remainder", "tm", "remainder classifier: cs | nc | tm")
		maxErr    = flag.Int("error", 64, "RQ-RMI maximum error threshold")
		bench     = flag.Bool("bench", false, "measure throughput on a generated uniform trace")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *rulesPath == "" {
		fatal(fmt.Errorf("-rules is required"))
	}

	f, err := os.Open(*rulesPath)
	if err != nil {
		fatal(err)
	}
	rs, err := rules.ReadClassBench(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %d rules from %s\n", rs.Len(), *rulesPath)

	opt, err := analysis.NMOptions(*remainder, *maxErr)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	engine, err := core.Build(rs, opt)
	if err != nil {
		fatal(err)
	}
	st := engine.Stats()
	fmt.Printf("build: %v total (%v training), %d iSets (fields %v, sizes %v)\n",
		time.Since(start).Round(time.Millisecond), st.TrainingTime.Round(time.Millisecond),
		engine.NumISets(), st.ISetFields, st.ISetSizes)
	fmt.Printf("coverage: %.1f%%, remainder: %d rules, max search distance: %d\n",
		st.Coverage*100, st.RemainderSize, st.MaxSearchDistance)
	fmt.Printf("memory: iSet models %d B, remainder index %d B (total %d B)\n",
		engine.RQRMIBytes(), engine.RemainderBytes(), engine.MemoryFootprint())

	var pkts []rules.Packet
	switch {
	case *tracePath != "":
		pkts, err = readTrace(*tracePath, rs.NumFields)
		if err != nil {
			fatal(err)
		}
	case *bench:
		rng := rand.New(rand.NewSource(*seed))
		pkts = trace.Uniform(rng, rs, 100000).Packets
	default:
		return
	}

	matched := 0
	start = time.Now()
	for _, p := range pkts {
		if engine.Lookup(p) >= 0 {
			matched++
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("classified %d packets in %v (%.0f pps, %.0f%% matched)\n",
		len(pkts), elapsed.Round(time.Millisecond),
		float64(len(pkts))/elapsed.Seconds(), 100*float64(matched)/float64(len(pkts)))
}

func readTrace(path string, numFields int) ([]rules.Packet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var pkts []rules.Packet
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if len(fields) != numFields {
			return nil, fmt.Errorf("trace line has %d fields, rules have %d", len(fields), numFields)
		}
		p := make(rules.Packet, len(fields))
		for d, s := range fields {
			v, err := strconv.ParseUint(s, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("bad field %q: %v", s, err)
			}
			p[d] = uint32(v)
		}
		pkts = append(pkts, p)
	}
	return pkts, sc.Err()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "nmctl: %v\n", err)
	os.Exit(1)
}
