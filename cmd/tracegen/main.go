// Command tracegen generates packet traces for a rule-set file: uniform,
// Zipf-skewed (the paper's four presets), or CAIDA-like with flow locality.
// Packets are emitted one per line as space-separated field values.
//
// Usage:
//
//	tracegen -rules acl1_10k.rules -kind zipf90 -n 700000 > trace.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"nuevomatch/internal/rules"
	"nuevomatch/internal/trace"
)

func main() {
	var (
		rulesPath = flag.String("rules", "", "ClassBench-format rule file (required)")
		kind      = flag.String("kind", "uniform", "uniform | zipf80 | zipf85 | zipf90 | zipf95 | caida")
		n         = flag.Int("n", 100000, "number of packets")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *rulesPath == "" {
		fatal(fmt.Errorf("-rules is required"))
	}
	f, err := os.Open(*rulesPath)
	if err != nil {
		fatal(err)
	}
	rs, err := rules.ReadClassBench(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if rs.Len() == 0 {
		fatal(fmt.Errorf("rule file %s is empty", *rulesPath))
	}

	rng := rand.New(rand.NewSource(*seed))
	var tr *trace.Trace
	switch *kind {
	case "uniform":
		tr = trace.Uniform(rng, rs, *n)
	case "caida":
		tr, err = trace.CAIDALike(rng, rs, *n, trace.CAIDAOptions{})
	default:
		found := false
		for _, preset := range trace.SkewPresets() {
			if preset.Name == *kind {
				tr, err = trace.Zipf(rng, rs, *n, preset)
				found = true
				break
			}
		}
		if !found {
			err = fmt.Errorf("unknown trace kind %q", *kind)
		}
	}
	if err != nil {
		fatal(err)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, p := range tr.Packets {
		for d, v := range p {
			if d > 0 {
				fmt.Fprint(w, " ")
			}
			fmt.Fprint(w, v)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d packets, top-3%% share %.1f%%\n", len(tr.Packets), tr.Top3Share()*100)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}
