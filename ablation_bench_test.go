package nuevomatch_test

// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - early termination (§4): remainder queried under the iSets' best
//     priority vs unconditionally;
//   - RQ-RMI inference + bounded search vs a plain binary search over the
//     same sorted range array (what a non-learned index would do);
//   - batched two-core split vs single-core sequential lookup.

import (
	"math/rand"
	"sort"
	"testing"

	"nuevomatch/internal/analysis"
	"nuevomatch/internal/rules"
)

func BenchmarkAblationEarlyTermination(b *testing.B) {
	f := getFixture(b)
	e := f.nm[analysis.TM]
	b.Run("with", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.Lookup(f.pkts[i%len(f.pkts)])
		}
	})
	b.Run("without", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.LookupNoEarlyTermination(f.pkts[i%len(f.pkts)])
		}
	})
}

func BenchmarkAblationModelVsBinarySearch(b *testing.B) {
	f := getFixture(b)
	m := f.model
	entries := m.Entries()
	los := make([]uint32, len(entries))
	his := make([]uint32, len(entries))
	for i, e := range entries {
		los[i], his[i] = e.Range.Lo, e.Range.Hi
	}
	rng := rand.New(rand.NewSource(9))
	keys := make([]uint32, 4096)
	for i := range keys {
		// Bias half the probes into ranges so both paths do real work.
		if i%2 == 0 {
			e := entries[rng.Intn(len(entries))]
			keys[i] = e.Range.Lo + uint32(rng.Uint64()%e.Range.Size())
		} else {
			keys[i] = rng.Uint32()
		}
	}
	b.Run("rqrmi", func(b *testing.B) {
		hits := 0
		for i := 0; i < b.N; i++ {
			if _, ok := m.Lookup(keys[i&4095]); ok {
				hits++
			}
		}
		_ = hits
	})
	b.Run("binarysearch", func(b *testing.B) {
		hits := 0
		for i := 0; i < b.N; i++ {
			k := keys[i&4095]
			j := sort.Search(len(los), func(x int) bool { return los[x] > k })
			if j > 0 && k <= his[j-1] {
				hits++
			}
		}
		_ = hits
	})
}

func BenchmarkAblationParallelVsSequential(b *testing.B) {
	f := getFixture(b)
	e := f.nm[analysis.TM]
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.Lookup(f.pkts[i%len(f.pkts)])
		}
	})
	b.Run("batch2core", func(b *testing.B) {
		out := make([]int, analysis.BatchSize)
		for i := 0; i < b.N; i += analysis.BatchSize {
			off := i % (len(f.pkts) - analysis.BatchSize)
			e.LookupBatchParallel(f.pkts[off:off+analysis.BatchSize], out)
		}
	})
}

func BenchmarkAblationRemainderChoice(b *testing.B) {
	// The same engine workload with each remainder classifier family.
	f := getFixture(b)
	for _, name := range analysis.Baselines() {
		e := f.nm[name]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.Lookup(f.pkts[i%len(f.pkts)])
			}
		})
	}
}

func BenchmarkDecodeFiveTuple(b *testing.B) {
	pkt := rules.EncodeFiveTuple(rules.FiveTuple{
		SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 1234, DstPort: 443, Proto: 6,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rules.DecodeFiveTuple(pkt); err != nil {
			b.Fatal(err)
		}
	}
}
