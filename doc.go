// Package nuevomatch is the public API of this repository: a Go
// implementation of NuevoMatch, the RQ-RMI-based packet classification
// system of "A Computational Approach to Packet Classification"
// (Rashelbach, Rottenstreich, Silberstein — SIGCOMM 2020).
//
// # Quickstart
//
// The package is organized around a serializable Table handle with a
// Build → Save → Load lifecycle, configured by functional options:
//
//	rs := nuevomatch.NewRuleSet(nuevomatch.NumFiveTupleFields)
//	rs.AddAuto(
//	    nuevomatch.PrefixRange(ip, 24),   // source IP
//	    nuevomatch.FullRange(),           // destination IP
//	    nuevomatch.FullRange(),           // source port
//	    nuevomatch.ExactRange(443),       // destination port
//	    nuevomatch.ExactRange(6),         // protocol (TCP)
//	)
//	table, err := nuevomatch.Open(rs)     // trains the RQ-RMI models
//	id := table.Lookup(pkt)               // winning rule ID, -1 if none
//
// The table partitions the rules into iSets indexed by RQ-RMI neural
// models and a remainder indexed by an external classifier (TupleMerge by
// default; CutSplit and NeuroCuts builders are provided). Lookups run the
// paper's full pipeline — model inference, bounded secondary search,
// multi-field validation, highest-priority selection, and the
// early-termination remainder query — lock-free on every path.
//
// # Persistence
//
// Training is the expensive half of NuevoMatch (§3.9: minutes at 500K
// rules); lookups amortize it. Tables therefore serialize, so the training
// happens offline, once:
//
//	table.SaveFile("acl.nm")                      // build box
//	table, err := nuevomatch.LoadFile("acl.nm")   // serving box: no retraining
//
// Load reconstructs a lookup-identical table in milliseconds: models
// deserialize, the remainder rebuilds from its saved rules, and the first
// packet is served from the same zero-lock snapshot machinery as the
// millionth. Every artifact carries a CRC32-C integrity trailer verified
// before decoding, so torn writes are caught up front. Online drift
// (Insert/Delete/Modify) is captured by Save too — a table saved mid-churn
// reloads with its updates intact.
//
// # Updates and the autopilot
//
// Tables take online updates concurrently with lookups (§3.9) and retrain
// in place via Retrain, a hot swap behind the handle. WithAutopilot
// automates the loop — a drift policy trips background retraining — and
// WithAutopilotPersist re-saves the artifact after every swap:
//
//	table, err := nuevomatch.Open(rs,
//	    nuevomatch.WithAutopilot(nuevomatch.AutopilotPolicy{MaxUpdates: 4096}),
//	    nuevomatch.WithAutopilotPersist("acl.nm"),
//	)
//
// # Sharded serving: Cluster
//
// One engine is bounded by one core's inference throughput and one
// training run's rule capacity. A Cluster partitions the rule-set across N
// independent engine shards (the paper's evaluation scales the same way,
// §6): a configurable partition field routes every packet to exactly one
// shard, rules whose range spans several shards are replicated so
// first-match semantics hold shard-locally, and batches scatter across the
// shards to run concurrently on a multi-core host:
//
//	cluster, err := nuevomatch.OpenCluster(rs,
//	    nuevomatch.WithShards(4),
//	    nuevomatch.WithClusterAutopilot(nuevomatch.AutopilotPolicy{MaxUpdates: 2048}),
//	)
//	id := cluster.Lookup(pkt)         // routed: one shard consulted
//	cluster.LookupBatch(pkts, out)    // scattered: shards run in parallel
//	cluster.SaveDir("cluster.d")      // manifest + one table file per shard
//	cluster, err = nuevomatch.LoadCluster("cluster.d")
//
// Each shard carries its own autopilot, so a drift-triggered retrain
// stalls the update side of 1/N of the table instead of all of it.
//
// # Conventions
//
// Rule priorities are numeric with smaller values winning, matching the
// paper's "priority 1 (highest)" convention. Matching is over 32-bit
// fields; wider fields are split into 32-bit chunks as in §4 of the paper.
//
// # Migration from the Options struct
//
// The pre-Table surface — Build(rs, Options{...}) returning an *Engine —
// still compiles and behaves identically, but is deprecated: Open with
// functional options replaces it, and *Table wraps the same engine (see
// Table.Engine for the escape hatch). Options and Engine remain exported
// for that shim and for code that embeds them.
package nuevomatch
