// Package neurocuts implements a NeuroCuts-like baseline (Liang et al.,
// SIGCOMM 2019). The published system uses reinforcement learning offline to
// choose per-node decision-tree actions (which dimension to cut, how many
// cuts, or where to split); the classifier it produces is an ordinary
// decision tree. This package reproduces that architecture with a budgeted
// stochastic policy search in place of the RL loop: a linear scoring policy
// over node features selects actions, candidate policies are sampled and
// hill-climbed, each is evaluated by building a tree and measuring the same
// objective NeuroCuts optimizes (memory footprint and expected walk depth),
// and the best policy builds the final tree. See DESIGN.md for why the
// substitution preserves the classification-time behaviour the NuevoMatch
// evaluation measures.
package neurocuts

import (
	"math"
	"math/rand"

	"nuevomatch/internal/classifiers/dtree"
	"nuevomatch/internal/rules"
)

// Config controls the policy search.
type Config struct {
	// Binth is the leaf threshold.
	Binth int
	// Iterations is the number of candidate policies evaluated; the paper
	// gives NeuroCuts hours of search — scale this up for closer parity.
	Iterations int
	// MemoryWeight/DepthWeight blend the two objectives ("bytes per rule"
	// vs "expected walk depth"); NeuroCuts exposes the same trade-off.
	MemoryWeight, DepthWeight float64
	// Seed makes the search deterministic.
	Seed int64
	// SampleSize caps the rules used during search evaluation; the final
	// tree always uses the full set. 0 means no cap.
	SampleSize int
}

// DefaultConfig is a laptop-scale stand-in for the paper's 36-hour
// hyperparameter sweep.
func DefaultConfig() Config {
	return Config{
		Binth:        8,
		Iterations:   24,
		MemoryWeight: 1,
		DepthWeight:  1,
		Seed:         1,
		SampleSize:   4096,
	}
}

// policyParams weight the node features that score each candidate action.
type policyParams struct {
	wDistinct float64 // distinct range starts in the dimension
	wSpan     float64 // fraction of the dimension still uncut
	wRepl     float64 // estimated replication of the action (penalty)
	wBalance  float64 // balance of the split
	cutBias   float64 // preference for cutting over splitting
	cutsExp   float64 // in [0,1]: aggressiveness of the cut fan-out
}

func randomParams(rng *rand.Rand) policyParams {
	return policyParams{
		wDistinct: rng.Float64() * 2,
		wSpan:     rng.Float64(),
		wRepl:     rng.Float64() * 2,
		wBalance:  rng.Float64() * 2,
		cutBias:   rng.NormFloat64(),
		cutsExp:   rng.Float64(),
	}
}

func (p policyParams) perturb(rng *rand.Rand) policyParams {
	q := p
	switch rng.Intn(6) {
	case 0:
		q.wDistinct = math.Max(0, q.wDistinct+rng.NormFloat64()*0.3)
	case 1:
		q.wSpan = math.Max(0, q.wSpan+rng.NormFloat64()*0.2)
	case 2:
		q.wRepl = math.Max(0, q.wRepl+rng.NormFloat64()*0.3)
	case 3:
		q.wBalance = math.Max(0, q.wBalance+rng.NormFloat64()*0.3)
	case 4:
		q.cutBias += rng.NormFloat64() * 0.3
	case 5:
		q.cutsExp = math.Min(1, math.Max(0, q.cutsExp+rng.NormFloat64()*0.15))
	}
	return q
}

// Classifier is the final tree chosen by the search.
type Classifier struct {
	tree *dtree.Tree
}

var _ rules.BoundedClassifier = (*Classifier)(nil)

// New runs the policy search and builds the final classifier.
func New(rs *rules.RuleSet, cfg Config) *Classifier {
	if cfg.Binth <= 0 {
		cfg.Binth = 8
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 1
	}
	if cfg.MemoryWeight == 0 && cfg.DepthWeight == 0 {
		cfg.MemoryWeight, cfg.DepthWeight = 1, 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	eval := rs
	if cfg.SampleSize > 0 && rs.Len() > cfg.SampleSize {
		positions := rng.Perm(rs.Len())[:cfg.SampleSize]
		eval = rs.Subset(positions)
	}

	best := randomParams(rng)
	bestCost := math.Inf(1)
	for it := 0; it < cfg.Iterations; it++ {
		var cand policyParams
		if it%3 == 0 || math.IsInf(bestCost, 1) {
			cand = randomParams(rng) // explore
		} else {
			cand = best.perturb(rng) // exploit
		}
		tr := dtree.Build(eval, dtree.Config{Binth: cfg.Binth, Policy: cand.policy(eval)})
		st := tr.Stats()
		cost := cfg.MemoryWeight*float64(tr.MemoryFootprint())/float64(eval.Len()+1) +
			cfg.DepthWeight*float64(st.SumLeafDepth)/float64(st.Leaves)
		if cost < bestCost {
			bestCost, best = cost, cand
		}
	}
	return &Classifier{tree: dtree.Build(rs, dtree.Config{Binth: cfg.Binth, Policy: best.policy(rs)})}
}

// Build adapts New (with defaults) to the rules.Builder signature.
func Build(rs *rules.RuleSet) (rules.Classifier, error) {
	return New(rs, DefaultConfig()), nil
}

// policy scores, per node, a cut on each dimension and the best balanced
// split, and returns the action with the highest score.
func (p policyParams) policy(rs *rules.RuleSet) dtree.Policy {
	return func(ruleIdx []int32, box []rules.Range, depth int) dtree.Action {
		bestScore := math.Inf(-1)
		action := dtree.Action{Kind: dtree.KindLeaf}

		for d := range box {
			span := box[d].Size()
			if span < 4 {
				continue
			}
			distinct := 0
			seen := make(map[uint32]struct{}, len(ruleIdx))
			for _, ri := range ruleIdx {
				lo := rs.Rules[ri].Fields[d].Lo
				if lo < box[d].Lo {
					lo = box[d].Lo
				}
				if _, dup := seen[lo]; !dup {
					seen[lo] = struct{}{}
					distinct++
				}
			}
			if distinct < 2 {
				continue
			}
			// Replication estimate: how many rules span more than half the
			// box and would be copied into many children.
			wide := 0
			for _, ri := range ruleIdx {
				f := rs.Rules[ri].Fields[d]
				if f.Covers(box[d]) || f.Size() > span/2 {
					wide++
				}
			}
			score := p.cutBias +
				p.wDistinct*float64(distinct)/float64(len(ruleIdx)) +
				p.wSpan*math.Log2(float64(span))/32 -
				p.wRepl*float64(wide)/float64(len(ruleIdx))
			if score > bestScore {
				// Fan-out is capped at 64: wider cuts buy little separation
				// and inflate replication on wildcard-heavy nodes (the
				// dtree space-factor guard would veto them anyway).
				maxCuts := 2
				for maxCuts < distinct && maxCuts < 64 {
					maxCuts <<= 1
				}
				cuts := 2 + int(p.cutsExp*float64(maxCuts-2))
				bestScore = score
				action = dtree.Action{Kind: dtree.KindCut, Dim: d, NumCuts: cuts}
			}
		}

		if dim, at, l, r, ok := medianSplit(rs, ruleIdx, box); ok {
			bal := 1 - math.Abs(float64(l-r))/float64(l+r+1)
			repl := float64(l+r-len(ruleIdx)) / float64(len(ruleIdx))
			score := p.wBalance*bal - p.wRepl*repl
			if score > bestScore {
				action = dtree.Action{Kind: dtree.KindSplit, Dim: dim, SplitAt: at}
			}
		}
		return action
	}
}

// maxSplitCandidates caps the endpoints scored per dimension (each costs
// O(rules)); candidates are evenly subsampled beyond it.
const maxSplitCandidates = 32

// medianSplit returns the most balanced endpoint split across dimensions.
func medianSplit(rs *rules.RuleSet, ruleIdx []int32, box []rules.Range) (dim int, at uint32, l, r int, ok bool) {
	bestCost := math.MaxInt64
	step := 1
	if len(ruleIdx) > maxSplitCandidates {
		step = len(ruleIdx) / maxSplitCandidates
	}
	for d := range box {
		if box[d].Size() < 2 {
			continue
		}
		for i := 0; i < len(ruleIdx); i += step {
			ri := ruleIdx[i]
			f := rs.Rules[ri].Fields[d]
			cand := f.Hi
			if cand < box[d].Lo || cand >= box[d].Hi {
				continue
			}
			var cl, cr int
			for _, rj := range ruleIdx {
				g := rs.Rules[rj].Fields[d]
				if g.Lo <= cand {
					cl++
				}
				if g.Hi > cand {
					cr++
				}
			}
			if cl == len(ruleIdx) && cr == len(ruleIdx) {
				continue
			}
			cost := cl
			if cr > cost {
				cost = cr
			}
			if cost < bestCost {
				bestCost, dim, at, l, r, ok = cost, d, cand, cl, cr, true
			}
		}
	}
	return
}

// Name implements rules.Classifier.
func (c *Classifier) Name() string { return "neurocuts" }

// Lookup implements rules.Classifier.
func (c *Classifier) Lookup(p rules.Packet) int { return c.tree.Lookup(p) }

// LookupWithBound implements rules.BoundedClassifier.
func (c *Classifier) LookupWithBound(p rules.Packet, bestPrio int32) int {
	return c.tree.LookupWithBound(p, bestPrio)
}

// MemoryFootprint implements rules.Classifier.
func (c *Classifier) MemoryFootprint() int { return c.tree.MemoryFootprint() }

// Stats exposes the final tree's build statistics.
func (c *Classifier) Stats() dtree.Stats { return c.tree.Stats() }
