package neurocuts

import (
	"math/rand"
	"testing"

	"nuevomatch/internal/classifiers/conformance"
)

func TestConformance(t *testing.T) {
	conformance.Check(t, Build, 5, []int{1, 10, 100, 400}, 150)
}

func TestDegenerate(t *testing.T) {
	conformance.CheckDegenerate(t, Build)
}

func TestSearchIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rs := conformance.RandomRuleSet(rng, 300, 5)
	cfg := DefaultConfig()
	cfg.Iterations = 6
	a := New(rs, cfg)
	b := New(rs, cfg)
	if a.MemoryFootprint() != b.MemoryFootprint() || a.Stats() != b.Stats() {
		t.Error("search must be deterministic for a fixed seed")
	}
}

func TestMoreIterationsNeverWorseObjective(t *testing.T) {
	// The search keeps the best policy, so the blended objective with 12
	// iterations must be no worse than with 1 (same seed, same candidate
	// stream prefix).
	rng := rand.New(rand.NewSource(9))
	rs := conformance.RandomRuleSet(rng, 500, 5)
	cost := func(iters int) float64 {
		cfg := DefaultConfig()
		cfg.Iterations = iters
		cfg.SampleSize = 0
		c := New(rs, cfg)
		st := c.Stats()
		return float64(c.MemoryFootprint())/float64(rs.Len()) + float64(st.SumLeafDepth)/float64(st.Leaves)
	}
	if c12, c1 := cost(12), cost(1); c12 > c1*1.001 {
		t.Errorf("12-iteration cost %.3f worse than 1-iteration cost %.3f", c12, c1)
	}
}
