package tss

import (
	"math/rand"
	"testing"

	"nuevomatch/internal/classifiers/conformance"
	"nuevomatch/internal/rules"
)

func TestConformance(t *testing.T) {
	conformance.Check(t, Build, 2, []int{1, 10, 100, 500}, 200)
}

func TestDegenerate(t *testing.T) {
	conformance.CheckDegenerate(t, Build)
}

func TestTablesGroupByTuple(t *testing.T) {
	rs := rules.NewRuleSet(2)
	// Two distinct tuples: (/16, exact) and (/8, wildcard).
	for i := 0; i < 10; i++ {
		rs.AddAuto(rules.PrefixRange(uint32(i)<<16, 16), rules.ExactRange(uint32(i)))
	}
	for i := 0; i < 10; i++ {
		rs.AddAuto(rules.PrefixRange(uint32(i)<<24, 8), rules.FullRange())
	}
	c := New(rs)
	if got := c.NumTables(); got != 2 {
		t.Errorf("NumTables = %d, want 2", got)
	}
}

func TestPortRangeFalsePositiveElimination(t *testing.T) {
	// [1024, 65535] has common prefix length 16 over the 32-bit domain
	// (upper 16 bits zero); port 512 shares that masked key but is outside
	// the range — verification must reject it.
	rs := rules.NewRuleSet(1)
	rs.AddAuto(rules.Range{Lo: 1024, Hi: 65535})
	c := New(rs)
	if got := c.Lookup(rules.Packet{512}); got != rules.NoMatch {
		t.Errorf("Lookup(512) = %d, want no match", got)
	}
	if got := c.Lookup(rules.Packet{2048}); got != 0 {
		t.Errorf("Lookup(2048) = %d, want 0", got)
	}
}

func TestMemoryGrowsWithRules(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	small := conformance.RandomRuleSet(rng, 50, 5)
	big := conformance.RandomRuleSet(rng, 2000, 5)
	if New(small).MemoryFootprint() >= New(big).MemoryFootprint() {
		t.Error("memory footprint should grow with the rule count")
	}
}
