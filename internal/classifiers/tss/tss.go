// Package tss implements Tuple Space Search (Srinivasan et al., SIGCOMM
// 1999): one hash table per distinct tuple of per-field prefix lengths.
// Classification probes every table and keeps the best-priority verified
// match. It is the classifier Open vSwitch invokes on megaflow-cache misses
// and the ancestor of TupleMerge.
package tss

import (
	"math"
	"sort"

	"nuevomatch/internal/classifiers/tuplehash"
	"nuevomatch/internal/rules"
)

type table struct {
	lens     []uint8
	buckets  map[uint64][]int32
	bestPrio int32
	entries  int
}

// Classifier is a set of per-tuple hash tables ordered by best priority, so
// probing can stop as soon as no later table can improve on the current
// match.
type Classifier struct {
	rules  []rules.Rule
	tables []*table
}

var _ rules.BoundedClassifier = (*Classifier)(nil)

// New builds the tuple space over a snapshot of rs.
func New(rs *rules.RuleSet) *Classifier {
	c := &Classifier{rules: append([]rules.Rule(nil), rs.Rules...)}
	byKey := make(map[string]*table)
	for i := range c.rules {
		r := &c.rules[i]
		lens := tuplehash.Lens(r)
		key := tuplehash.Key(lens)
		t, ok := byKey[key]
		if !ok {
			t = &table{lens: lens, buckets: make(map[uint64][]int32), bestPrio: math.MaxInt32}
			byKey[key] = t
			c.tables = append(c.tables, t)
		}
		h := tuplehash.HashRule(r, t.lens)
		t.buckets[h] = append(t.buckets[h], int32(i))
		t.entries++
		if r.Priority < t.bestPrio {
			t.bestPrio = r.Priority
		}
	}
	sort.SliceStable(c.tables, func(a, b int) bool { return c.tables[a].bestPrio < c.tables[b].bestPrio })
	return c
}

// Build adapts New to the rules.Builder signature.
func Build(rs *rules.RuleSet) (rules.Classifier, error) { return New(rs), nil }

// Name implements rules.Classifier.
func (c *Classifier) Name() string { return "tss" }

// NumTables returns the number of hash tables (distinct tuples).
func (c *Classifier) NumTables() int { return len(c.tables) }

// Lookup implements rules.Classifier.
func (c *Classifier) Lookup(p rules.Packet) int {
	return c.LookupWithBound(p, math.MaxInt32)
}

// LookupWithBound implements rules.BoundedClassifier. Tables are sorted by
// their best priority, so the probe loop stops at the first table that
// cannot beat the running best — the early-termination variant of §4.
func (c *Classifier) LookupWithBound(p rules.Packet, bestPrio int32) int {
	best := rules.NoMatch
	for _, t := range c.tables {
		if t.bestPrio >= bestPrio {
			break
		}
		h := tuplehash.HashPacket(p, t.lens)
		for _, ri := range t.buckets[h] {
			r := &c.rules[ri]
			if r.Priority < bestPrio && r.Matches(p) {
				best = r.ID
				bestPrio = r.Priority
			}
		}
	}
	return best
}

// MemoryFootprint implements rules.Classifier: per-table fixed overhead plus
// hash-map entries (8-byte hash key + 4-byte position + bucket overhead).
func (c *Classifier) MemoryFootprint() int {
	total := 0
	for _, t := range c.tables {
		total += 64 + len(t.lens) + 16*t.entries
	}
	return total
}
