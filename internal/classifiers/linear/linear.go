// Package linear provides the priority-ordered linear-scan classifier: the
// correctness reference for every other algorithm and the natural remainder
// index for very small remainders. It trivially supports updates.
package linear

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"nuevomatch/internal/rules"
)

// Classifier scans rules in priority order and returns the first match.
type Classifier struct {
	mu    sync.RWMutex
	rules []rules.Rule // sorted by ascending priority value
	byID  map[int]int  // id -> position in rules
}

var (
	_ rules.BoundedClassifier = (*Classifier)(nil)
	_ rules.Updatable         = (*Classifier)(nil)
)

// New builds a linear classifier over a snapshot of rs.
func New(rs *rules.RuleSet) *Classifier {
	c := &Classifier{byID: make(map[int]int, rs.Len())}
	c.rules = append(c.rules, rs.Rules...)
	sort.SliceStable(c.rules, func(i, j int) bool {
		if c.rules[i].Priority != c.rules[j].Priority {
			return c.rules[i].Priority < c.rules[j].Priority
		}
		return c.rules[i].ID < c.rules[j].ID
	})
	c.reindex()
	return c
}

// Build adapts New to the rules.Builder signature.
func Build(rs *rules.RuleSet) (rules.Classifier, error) { return New(rs), nil }

func (c *Classifier) reindex() {
	for i := range c.rules {
		c.byID[c.rules[i].ID] = i
	}
}

// Name implements rules.Classifier.
func (c *Classifier) Name() string { return "linear" }

// Lookup implements rules.Classifier.
func (c *Classifier) Lookup(p rules.Packet) int {
	return c.LookupWithBound(p, math.MaxInt32)
}

// LookupWithBound implements rules.BoundedClassifier: rules are scanned in
// priority order, so the scan stops at the first match or as soon as the
// remaining rules cannot beat bestPrio.
func (c *Classifier) LookupWithBound(p rules.Packet, bestPrio int32) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for i := range c.rules {
		r := &c.rules[i]
		if r.Priority >= bestPrio {
			return rules.NoMatch
		}
		if r.Matches(p) {
			return r.ID
		}
	}
	return rules.NoMatch
}

// MemoryFootprint implements rules.Classifier. The linear scan has no index
// beyond the priority-sorted order, accounted as one 4-byte position per
// rule.
func (c *Classifier) MemoryFootprint() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return 4 * len(c.rules)
}

// Len returns the current number of rules.
func (c *Classifier) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.rules)
}

// Insert implements rules.Updatable.
func (c *Classifier) Insert(r rules.Rule) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.byID[r.ID]; dup {
		return fmt.Errorf("linear: duplicate rule ID %d", r.ID)
	}
	pos := sort.Search(len(c.rules), func(i int) bool {
		if c.rules[i].Priority != r.Priority {
			return c.rules[i].Priority > r.Priority
		}
		return c.rules[i].ID > r.ID
	})
	c.rules = append(c.rules, rules.Rule{})
	copy(c.rules[pos+1:], c.rules[pos:])
	c.rules[pos] = r
	c.reindex()
	return nil
}

// Delete implements rules.Updatable.
func (c *Classifier) Delete(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	pos, ok := c.byID[id]
	if !ok {
		return fmt.Errorf("linear: no rule with ID %d", id)
	}
	c.rules = append(c.rules[:pos], c.rules[pos+1:]...)
	delete(c.byID, id)
	c.reindex()
	return nil
}
