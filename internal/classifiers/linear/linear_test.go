package linear

import (
	"math/rand"
	"testing"

	"nuevomatch/internal/classifiers/conformance"
	"nuevomatch/internal/rules"
)

func TestConformance(t *testing.T) {
	conformance.Check(t, Build, 1, []int{1, 10, 100, 500}, 200)
}

func TestDegenerate(t *testing.T) {
	conformance.CheckDegenerate(t, Build)
}

func TestInsertDelete(t *testing.T) {
	rs := rules.NewRuleSet(1)
	rs.AddAuto(rules.Range{Lo: 0, Hi: 9})
	rs.AddAuto(rules.Range{Lo: 5, Hi: 14})
	c := New(rs)

	if got := c.Lookup(rules.Packet{7}); got != 0 {
		t.Fatalf("Lookup = %d, want 0", got)
	}
	// Insert a higher-priority rule (smaller value) covering 7.
	if err := c.Insert(rules.Rule{ID: 99, Priority: 0, Fields: []rules.Range{{Lo: 7, Hi: 7}}}); err != nil {
		t.Fatal(err)
	}
	if got := c.Lookup(rules.Packet{7}); got != 99 {
		t.Fatalf("Lookup after insert = %d, want 99", got)
	}
	if err := c.Insert(rules.Rule{ID: 99, Priority: 5, Fields: []rules.Range{{Lo: 0, Hi: 1}}}); err == nil {
		t.Fatal("duplicate ID insert should fail")
	}
	if err := c.Delete(99); err != nil {
		t.Fatal(err)
	}
	if got := c.Lookup(rules.Packet{7}); got != 0 {
		t.Fatalf("Lookup after delete = %d, want 0", got)
	}
	if err := c.Delete(99); err == nil {
		t.Fatal("double delete should fail")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestUpdatesAgainstReference(t *testing.T) {
	// Random interleavings of insert/delete/lookup stay consistent with a
	// shadow rule-set.
	rng := rand.New(rand.NewSource(3))
	shadow := rules.NewRuleSet(2)
	c := New(shadow)
	nextID := 0
	live := map[int]rules.Rule{}
	for step := 0; step < 400; step++ {
		switch op := rng.Intn(3); {
		case op == 0 || len(live) == 0:
			r := rules.Rule{
				ID:       nextID,
				Priority: int32(rng.Intn(50)),
				Fields: []rules.Range{
					{Lo: rng.Uint32() % 100, Hi: rng.Uint32()%100 + 100},
					{Lo: rng.Uint32() % 100, Hi: rng.Uint32()%100 + 100},
				},
			}
			nextID++
			live[r.ID] = r
			if err := c.Insert(r); err != nil {
				t.Fatal(err)
			}
		case op == 1:
			for id := range live {
				delete(live, id)
				if err := c.Delete(id); err != nil {
					t.Fatal(err)
				}
				break
			}
		default:
			p := rules.Packet{rng.Uint32() % 300, rng.Uint32() % 300}
			ref := rules.NewRuleSet(2)
			for _, r := range live {
				ref.Add(r)
			}
			if got, want := c.Lookup(p), ref.MatchID(p); got != want {
				// Ties on priority may resolve differently; accept equal
				// priority winners.
				if got < 0 || want < 0 || live[got].Priority != live[want].Priority {
					t.Fatalf("step %d: Lookup(%v) = %d, want %d", step, p, got, want)
				}
			}
		}
	}
}
