// Package rvh implements a Range-Vector Hash classifier: an update-capable
// hash-based remainder alternative to TupleMerge built around interval
// indices instead of prefix masks.
//
// At construction the rule-set's per-field range endpoints are collected
// into one sorted boundary vector per field (sampled down past a cap). The
// boundaries cut each field's value space into intervals, and any value —
// packet field or rule endpoint — maps to the interval containing it with
// one binary search. A rule whose range falls entirely inside a single
// interval of field d is "exact" in d for hashing purposes: every packet it
// matches maps to the same interval index, so the index can carry hash bits
// the way a masked prefix does in tuple-space schemes. Each rule's set of
// exact fields forms a 64-bit mask; rules sharing a mask share one hash
// group keyed by their interval indices in the masked fields. Rules too
// wide for any boundary spacing keep an empty mask and fall into a single
// priority-sorted catch-all group (the all-wildcard bucket of TSS).
//
// The group list is kept sorted by best (lowest) priority value, so bounded
// lookups stop as soon as no remaining group can beat the running best —
// the same §4 early-termination shape as the TupleMerge remainder. Because
// boundary vectors are chosen from the rule distribution itself, range-heavy
// ClassBench-style rule-sets (which defeat prefix tuples) still land in
// high-mask groups, which is the workload the auto-select mode exists to
// detect.
//
// The classifier supports online Insert/Delete (boundary vectors are fixed
// at build time; later rules simply compute their mask against the existing
// vectors) and compiles into an immutable struct-of-arrays form via Freeze
// (frozen.go), so the engine serves it lock-free like any other Freezable
// remainder.
package rvh

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"

	"nuevomatch/internal/classifiers/tuplehash"
	"nuevomatch/internal/rules"
)

// maxBoundariesPerField caps each field's boundary vector. More boundaries
// mean finer intervals (more rules hash on the field) but deeper binary
// searches; past the cap the collected endpoints are sampled evenly, which
// only coarsens masks — never correctness.
const maxBoundariesPerField = 256

// maxMaskFields is how many leading fields can carry hash bits (one bit per
// field in a uint64 mask). The engine codec caps rule-sets at 64 fields, so
// in practice every field participates.
const maxMaskFields = 64

// group is one hash group: all rules sharing an exact-field mask, bucketed
// by the hash of their interval indices in the masked fields. The empty
// mask hashes no fields, so its rules share the single h=Finish(0) bucket —
// the catch-all — with no special casing.
type group struct {
	mask uint64
	// buckets maps interval hashes to priority-sorted rule-slot slices.
	// The live side is only read under the RWMutex (the lock-free read path
	// is the frozen form), so a plain map is the right shape here.
	buckets map[uint64][]int32
	// occ is a 64-bit occupancy filter over hash low bits, mirroring the
	// TupleMerge tables': deletions leave bits stale, costing only a probe.
	occ      uint64
	entries  int
	bestPrio int32
}

type gref struct {
	g *group
	h uint64
}

// Classifier is the live, updatable RVH classifier. All methods are safe
// for concurrent use; lookups take a read lock (the engine's zero-lock path
// serves the Frozen form instead).
type Classifier struct {
	mu        sync.RWMutex
	numFields int
	// vecs holds one sorted boundary vector per field, fixed after New.
	vecs    [][]uint32
	rls     []rules.Rule // slot-stable storage; holes after delete
	free    []int32      // recycled slots
	groups  []*group     // sorted by bestPrio
	prios   []int32      // prios[i] == groups[i].bestPrio, flat for the bound scan
	whereIs map[int]gref // rule ID -> group/bucket
	byMask  map[uint64]*group
}

var (
	_ rules.BoundedClassifier      = (*Classifier)(nil)
	_ rules.BatchBoundedClassifier = (*Classifier)(nil)
	_ rules.Updatable              = (*Classifier)(nil)
	_ rules.Freezable              = (*Classifier)(nil)
)

// New builds an RVH classifier over a snapshot of rs: boundary vectors are
// derived from the rule-set's range endpoints, then every rule is inserted.
func New(rs *rules.RuleSet) *Classifier {
	c := &Classifier{
		numFields: rs.NumFields,
		vecs:      buildBoundaries(rs),
		whereIs:   make(map[int]gref, rs.Len()),
		byMask:    make(map[uint64]*group),
	}
	for i := range rs.Rules {
		// Build-time inserts cannot collide on IDs: rs was validated.
		_ = c.Insert(rs.Rules[i])
	}
	return c
}

// Build adapts New to the rules.Builder signature.
func Build(rs *rules.RuleSet) (rules.Classifier, error) {
	return New(rs), nil
}

// buildBoundaries collects each field's distinct range endpoints (Lo, and
// Hi+1 — the first value past the range), sorts them, and samples evenly
// past the cap. Dropping boundaries only merges adjacent intervals: rules
// that then span the wider interval lose the field's mask bit and fall to a
// looser group, which stays correct.
func buildBoundaries(rs *rules.RuleSet) [][]uint32 {
	vecs := make([][]uint32, rs.NumFields)
	for d := 0; d < rs.NumFields; d++ {
		seen := make(map[uint32]struct{}, 2*rs.Len())
		for i := range rs.Rules {
			f := rs.Rules[i].Fields[d]
			seen[f.Lo] = struct{}{}
			if f.Hi != math.MaxUint32 {
				seen[f.Hi+1] = struct{}{}
			}
		}
		v := make([]uint32, 0, len(seen))
		for b := range seen {
			v = append(v, b)
		}
		sort.Slice(v, func(a, b int) bool { return v[a] < v[b] })
		if len(v) > maxBoundariesPerField {
			sampled := make([]uint32, 0, maxBoundariesPerField)
			for i := 0; i < maxBoundariesPerField; i++ {
				sampled = append(sampled, v[i*len(v)/maxBoundariesPerField])
			}
			v = sampled
		}
		vecs[d] = v
	}
	return vecs
}

// intervalOf returns the index of the interval containing v in field d: the
// number of boundaries <= v. Monotone in v, so a rule whose Lo and Hi share
// an index contains only packet values with that index.
func (c *Classifier) intervalOf(d int, v uint32) int32 {
	vec := c.vecs[d]
	lo, hi := 0, len(vec)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if vec[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int32(lo)
}

// maskOf computes the rule's exact-field mask: bit d is set when the rule's
// range in field d falls inside one interval.
func (c *Classifier) maskOf(r *rules.Rule) uint64 {
	var m uint64
	nf := c.numFields
	if nf > maxMaskFields {
		nf = maxMaskFields
	}
	for d := 0; d < nf; d++ {
		f := r.Fields[d]
		if c.intervalOf(d, f.Lo) == c.intervalOf(d, f.Hi) {
			m |= 1 << d
		}
	}
	return m
}

// hashRule hashes the rule's interval indices in the masked fields. A
// packet the rule matches hashes identically under hashPacketMasked because
// the mask certifies every matched value shares the rule's interval.
func (c *Classifier) hashRule(r *rules.Rule, mask uint64) uint64 {
	var h uint64
	for m := mask; m != 0; m &= m - 1 {
		d := bits.TrailingZeros64(m)
		h ^= tuplehash.MixField(d, uint32(c.intervalOf(d, r.Fields[d].Lo)))
	}
	return tuplehash.Finish(h)
}

// hashPacketMasked hashes the packet's interval indices in the masked
// fields.
func (c *Classifier) hashPacketMasked(p rules.Packet, mask uint64) uint64 {
	var h uint64
	for m := mask; m != 0; m &= m - 1 {
		d := bits.TrailingZeros64(m)
		h ^= tuplehash.MixField(d, uint32(c.intervalOf(d, p[d])))
	}
	return tuplehash.Finish(h)
}

// Name implements rules.Classifier.
func (c *Classifier) Name() string { return "rvh" }

// Len returns the number of rules currently stored.
func (c *Classifier) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.whereIs)
}

// NumGroups returns the number of hash groups (distinct exact-field masks).
func (c *Classifier) NumGroups() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.groups)
}

// Insert implements rules.Updatable. Boundary vectors are fixed, so an
// insert is a mask computation, a hash, and one sorted bucket insertion.
func (c *Classifier) Insert(r rules.Rule) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.whereIs[r.ID]; dup {
		return fmt.Errorf("rvh: duplicate rule ID %d", r.ID)
	}
	var pos int32
	if n := len(c.free); n > 0 {
		pos = c.free[n-1]
		c.free = c.free[:n-1]
		c.rls[pos] = r
	} else {
		pos = int32(len(c.rls))
		c.rls = append(c.rls, r)
	}
	mask := c.maskOf(&c.rls[pos])
	g := c.byMask[mask]
	if g == nil {
		g = &group{mask: mask, buckets: make(map[uint64][]int32), bestPrio: math.MaxInt32}
		c.byMask[mask] = g
		c.groups = append(c.groups, g)
	}
	h := c.hashRule(&c.rls[pos], mask)
	g.occ |= 1 << (h & 63)
	// Buckets stay sorted by ascending priority value so lookup scans can
	// stop at the first entry that cannot beat the running best.
	b := g.buckets[h]
	prio := r.Priority
	at := sort.Search(len(b), func(i int) bool { return c.rls[b[i]].Priority > prio })
	b = append(b, 0)
	copy(b[at+1:], b[at:])
	b[at] = pos
	g.buckets[h] = b
	g.entries++
	if prio < g.bestPrio {
		g.bestPrio = prio
	}
	c.whereIs[r.ID] = gref{g, h}
	c.sortGroups()
	return nil
}

func (c *Classifier) sortGroups() {
	sort.SliceStable(c.groups, func(a, b int) bool { return c.groups[a].bestPrio < c.groups[b].bestPrio })
	if cap(c.prios) < len(c.groups) {
		c.prios = make([]int32, len(c.groups))
	}
	c.prios = c.prios[:len(c.groups)]
	for i, g := range c.groups {
		c.prios[i] = g.bestPrio
	}
}

// Delete implements rules.Updatable.
func (c *Classifier) Delete(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	loc, ok := c.whereIs[id]
	if !ok {
		return fmt.Errorf("rvh: no rule with ID %d", id)
	}
	bucket := loc.g.buckets[loc.h]
	for i, pos := range bucket {
		if c.rls[pos].ID == id {
			copy(bucket[i:], bucket[i+1:]) // preserve priority order
			loc.g.buckets[loc.h] = bucket[:len(bucket)-1]
			loc.g.entries--
			c.free = append(c.free, pos)
			break
		}
	}
	delete(c.whereIs, id)
	// bestPrio is left as-is (a lower bound remains correct for early
	// termination); group compaction happens on the next Freeze.
	return nil
}

// Lookup implements rules.Classifier.
func (c *Classifier) Lookup(p rules.Packet) int {
	return c.LookupWithBound(p, math.MaxInt32)
}

// LookupWithBound implements rules.BoundedClassifier; groups are sorted by
// best priority so probing stops when no group can beat the bound.
func (c *Classifier) LookupWithBound(p rules.Packet, bestPrio int32) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.lookupLocked(p, bestPrio)
}

// lookupLocked probes the groups under the running bound.
func (c *Classifier) lookupLocked(p rules.Packet, bestPrio int32) int {
	best := rules.NoMatch
	if len(p) < c.numFields {
		return best
	}
	for gi, bp := range c.prios {
		if bp >= bestPrio {
			break
		}
		g := c.groups[gi]
		h := c.hashPacketMasked(p, g.mask)
		if g.occ&(1<<(h&63)) == 0 {
			continue // definite miss: skip the map probe
		}
		for _, ri := range g.buckets[h] {
			r := &c.rls[ri]
			if r.Priority >= bestPrio {
				break // bucket is priority-sorted
			}
			if r.Matches(p) {
				best = r.ID
				bestPrio = r.Priority
			}
		}
	}
	return best
}

// LookupBatchWithBound implements rules.BatchBoundedClassifier: one lock
// acquisition serves the whole batch. Results equal per-packet
// LookupWithBound.
func (c *Classifier) LookupBatchWithBound(pkts []rules.Packet, bounds []int32, out []int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for i, p := range pkts {
		out[i] = c.lookupLocked(p, bounds[i])
	}
}

// MemoryFootprint implements rules.Classifier with the same accounting as
// the other hash-based baselines: the boundary vectors, fixed per-group
// overhead, and 16 bytes per entry.
func (c *Classifier) MemoryFootprint() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	total := 0
	for _, v := range c.vecs {
		total += 4 * len(v)
	}
	for _, g := range c.groups {
		total += 64 + 16*g.entries
	}
	return total
}
