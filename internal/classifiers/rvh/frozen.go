package rvh

import (
	"math/bits"

	"nuevomatch/internal/classifiers/tuplehash"
	"nuevomatch/internal/rules"
)

// This file implements the compiled, immutable form of the classifier,
// mirroring the TupleMerge Frozen layout: the live group maps flatten into
// contiguous arrays (an open-addressed bucket directory per group,
// struct-of-arrays rule bounds) that an RCU-published engine snapshot can
// own and scan without locks, maps, pointer chasing, or allocation.

// Frozen is the compiled RVH classifier: every boundary vector, group,
// bucket and rule packed into flat arrays. It implements
// rules.FrozenClassifier. Groups keep the live classifier's ascending
// bestPrio order and buckets their ascending-priority entry order, so the
// early-termination scans are identical to the live classifier's — only the
// memory layout differs.
//
//nm:immutable
type Frozen struct {
	numFields int
	numGroups int

	// Boundary vectors, flattened: field d's sorted boundaries are
	// vecBounds[vecOff[d] : vecOff[d+1]].
	vecOff    []int32
	vecBounds []uint32

	// Per-group arrays, index gi in [0, numGroups).
	gMask []uint64 // exact-field mask (bit d set: hash on field d's interval)
	gPrio []int32  // best (lowest) priority stored in group gi
	gOcc  []uint64 // 64-bit occupancy filter over hash low bits

	// Per-group open-addressed bucket directory. Group gi's slots are
	// [gSlotOff[gi], gSlotOff[gi+1]); the slot count is a power of two
	// sized for <= 1/2 load. A slot is free iff slotLen is zero (frozen
	// buckets are non-empty by construction), which terminates probes.
	gSlotOff  []int32
	slotHash  []uint64
	slotStart []int32 // offset into entries
	slotLen   []int32 // 0 marks a free slot

	// entries holds each bucket's rule indices contiguously, ascending by
	// priority within the bucket.
	entries []int32

	// Rule storage, struct-of-arrays: priorities and IDs in their own flat
	// arrays, field bounds flattened with stride numFields.
	rPrio []int32
	rID   []int
	rLo   []uint32
	rHi   []uint32
}

var _ rules.FrozenClassifier = (*Frozen)(nil)

// Freeze implements rules.Freezable: it compiles the classifier's current
// contents under the read lock and returns a detached immutable form.
// Emptied buckets and emptied groups are dropped during compilation.
//
//nm:builder Frozen
func (c *Classifier) Freeze() rules.FrozenClassifier {
	c.mu.RLock()
	defer c.mu.RUnlock()

	f := &Frozen{numFields: c.numFields}
	nRules := len(c.whereIs)
	f.rPrio = make([]int32, 0, nRules)
	f.rID = make([]int, 0, nRules)
	f.rLo = make([]uint32, 0, nRules*c.numFields)
	f.rHi = make([]uint32, 0, nRules*c.numFields)
	f.vecOff = append(f.vecOff, 0)
	for _, v := range c.vecs {
		f.vecBounds = append(f.vecBounds, v...)
		f.vecOff = append(f.vecOff, int32(len(f.vecBounds)))
	}
	f.gSlotOff = append(f.gSlotOff, 0)

	for _, g := range c.groups {
		// Collect the group's non-empty buckets.
		type bucket struct {
			h uint64
			b []int32
		}
		var buckets []bucket
		live := 0
		for h, b := range g.buckets {
			if len(b) > 0 {
				buckets = append(buckets, bucket{h, b})
				live += len(b)
			}
		}
		if live == 0 {
			continue // group emptied by deletions: drop it
		}
		gi := f.numGroups
		f.numGroups++
		f.gMask = append(f.gMask, g.mask)
		f.gPrio = append(f.gPrio, g.bestPrio)
		f.gOcc = append(f.gOcc, 0)

		slots := 4
		for slots < 2*len(buckets) {
			slots *= 2
		}
		base := len(f.slotHash)
		f.slotHash = append(f.slotHash, make([]uint64, slots)...)
		f.slotStart = append(f.slotStart, make([]int32, slots)...)
		f.slotLen = append(f.slotLen, make([]int32, slots)...)
		f.gSlotOff = append(f.gSlotOff, int32(base+slots))

		mask := uint64(slots - 1)
		for _, bk := range buckets {
			f.gOcc[gi] |= 1 << (bk.h & 63)
			i := bk.h & mask
			for f.slotLen[base+int(i)] != 0 {
				i = (i + 1) & mask
			}
			f.slotHash[base+int(i)] = bk.h
			f.slotStart[base+int(i)] = int32(len(f.entries))
			f.slotLen[base+int(i)] = int32(len(bk.b))
			for _, pos := range bk.b {
				r := &c.rls[pos]
				f.entries = append(f.entries, int32(len(f.rID)))
				f.rPrio = append(f.rPrio, r.Priority)
				f.rID = append(f.rID, r.ID)
				for _, fd := range r.Fields {
					f.rLo = append(f.rLo, fd.Lo)
					f.rHi = append(f.rHi, fd.Hi)
				}
			}
		}
	}
	return f
}

// Len implements rules.FrozenClassifier.
func (f *Frozen) Len() int { return len(f.rID) }

// MemoryFootprint implements rules.FrozenClassifier: the actual byte size
// of the compiled arrays.
func (f *Frozen) MemoryFootprint() int {
	return 4*len(f.vecOff) + 4*len(f.vecBounds) +
		20*f.numGroups + // gMask + gPrio + gOcc
		4*len(f.gSlotOff) + 16*len(f.slotHash) + // directory
		4*len(f.entries) +
		12*len(f.rID) + // rPrio + rID (8 bytes on 64-bit)
		4*len(f.rLo) + 4*len(f.rHi)
}

// intervalOf returns the interval index of v in field d — the count of
// boundaries <= v — with a manual binary search over the flattened vector
// (no sort.Search: its closure is off-limits on the hot path).
//
//nm:hotpath
func (f *Frozen) intervalOf(d int, v uint32) int32 {
	base := f.vecOff[d]
	lo, hi := base, f.vecOff[d+1]
	for lo < hi {
		mid := int32(uint32(lo+hi) >> 1)
		if f.vecBounds[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - base
}

// skipped reports whether id appears in the sorted skip list (the overlay's
// deleted-rule IDs; tiny by the compaction threshold).
//
//nm:hotpath
func skipped(skip []int, id int) bool {
	lo, hi := 0, len(skip)-1
	for lo <= hi {
		mid := int(uint(lo+hi) >> 1)
		v := skip[mid]
		if v < id {
			lo = mid + 1
		} else if v > id {
			hi = mid - 1
		} else {
			return true
		}
	}
	return false
}

// matchRule verifies packet p against compiled rule ri with a branch-light
// lockstep scan over the SoA bounds: one unsigned-subtract range check per
// field, AND-accumulated so the loop carries no data-dependent branches.
//
//nm:hotpath
func (f *Frozen) matchRule(ri int32, p rules.Packet) bool {
	base := int(ri) * f.numFields
	in := uint32(1)
	for d := 0; d < f.numFields; d++ {
		lo := f.rLo[base+d]
		hi := f.rHi[base+d]
		in &= b32(p[d]-lo <= hi-lo) // unsigned trick: lo <= p[d] <= hi
	}
	return in != 0
}

//nm:hotpath
func b32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// scanBucket walks one priority-sorted bucket under the bound, returning
// the winner (or -1) and the tightened bound.
//
//nm:hotpath
func (f *Frozen) scanBucket(start, n int32, p rules.Packet, bestPrio int32, skip []int) (int, int32) {
	best := rules.NoMatch
	for _, ri := range f.entries[start : start+n] {
		if f.rPrio[ri] >= bestPrio {
			break
		}
		if f.matchRule(ri, p) && !skipped(skip, f.rID[ri]) {
			best = f.rID[ri]
			bestPrio = f.rPrio[ri]
		}
	}
	return best, bestPrio
}

// probe finds group gi's bucket for hash h, returning its entries span.
//
//nm:hotpath
func (f *Frozen) probe(gi int, h uint64) (start, n int32) {
	base := f.gSlotOff[gi]
	mask := uint64(f.gSlotOff[gi+1]-base) - 1
	for i := h & mask; ; i = (i + 1) & mask {
		j := base + int32(i)
		if f.slotLen[j] == 0 {
			return 0, 0
		}
		if f.slotHash[j] == h {
			return f.slotStart[j], f.slotLen[j]
		}
	}
}

// groupHash hashes the packet's interval indices over the group's mask,
// memoizing per-field indices in the caller's stack arrays (idx/have) so a
// field searched for one group is free for every later group that also
// hashes it. Zero allocation: the memo lives in the caller's frame.
//
//nm:hotpath
func (f *Frozen) groupHash(p rules.Packet, mask uint64, idx *[maxMaskFields]int32, have *uint64) uint64 {
	var h uint64
	for m := mask; m != 0; m &= m - 1 {
		d := bits.TrailingZeros64(m)
		if *have&(1<<d) == 0 {
			idx[d] = f.intervalOf(d, p[d])
			*have |= 1 << d
		}
		h ^= tuplehash.MixField(d, uint32(idx[d]))
	}
	return tuplehash.Finish(h)
}

// Lookup implements rules.FrozenClassifier: the live classifier's bounded
// group walk over the compiled arrays. Zero locks, zero allocation.
//
//nm:hotpath
func (f *Frozen) Lookup(p rules.Packet, bestPrio int32, skip []int) int {
	if len(p) < f.numFields {
		return rules.NoMatch
	}
	best := rules.NoMatch
	var idx [maxMaskFields]int32
	var have uint64
	for gi := 0; gi < f.numGroups; gi++ {
		if f.gPrio[gi] >= bestPrio {
			break // groups ascend by best priority: nothing can win
		}
		h := f.groupHash(p, f.gMask[gi], &idx, &have)
		if f.gOcc[gi]&(1<<(h&63)) == 0 {
			continue // definite miss: skip the directory probe
		}
		start, n := f.probe(gi, h)
		if n == 0 {
			continue
		}
		if id, prio := f.scanBucket(start, n, p, bestPrio, skip); id >= 0 {
			best, bestPrio = id, prio
		}
	}
	return best
}

// LookupBatch implements rules.FrozenClassifier group-major: each group is
// hashed and probed for every still-improvable packet before moving to the
// next, so a chunk shares the group's directory while it is cache-hot. The
// groups' ascending-priority order gives a whole-batch early exit: once no
// packet's bound exceeds the group's best priority, no later group can
// improve anything.
//
//nm:hotpath
func (f *Frozen) LookupBatch(pkts []rules.Packet, bounds []int32, skip []int, out []int) {
	nf := f.numFields
	var idx [maxMaskFields]int32
	for gi := 0; gi < f.numGroups; gi++ {
		gp := f.gPrio[gi]
		gm := f.gMask[gi]
		occ := f.gOcc[gi]
		improvable := false
		for c, p := range pkts {
			if gp >= bounds[c] || len(p) < nf {
				continue
			}
			improvable = true
			// The per-field memo is per packet: reset and rebuild. The
			// group-major walk trades the cross-group memo for directory
			// locality, matching the TupleMerge batch shape.
			var have uint64
			h := f.groupHash(p, gm, &idx, &have)
			if occ&(1<<(h&63)) == 0 {
				continue
			}
			start, n := f.probe(gi, h)
			if n == 0 {
				continue
			}
			if id, prio := f.scanBucket(start, n, p, bounds[c], skip); id >= 0 {
				out[c] = id
				bounds[c] = prio
			}
		}
		if !improvable {
			break
		}
	}
}
