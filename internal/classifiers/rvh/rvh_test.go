package rvh

import (
	"math"
	"math/rand"
	"testing"

	"nuevomatch/internal/classifiers/conformance"
	"nuevomatch/internal/rules"
)

// TestConformance runs the shared randomized harness: Lookup against the
// linear reference plus the strict-inequality LookupWithBound contract.
func TestConformance(t *testing.T) {
	conformance.Check(t, Build, 1701, []int{1, 10, 100, 1000, 4000}, 300)
}

// TestDegenerate covers the structural corner cases (empty, wildcard-only,
// identical rules, one-field rule-sets).
func TestDegenerate(t *testing.T) {
	conformance.CheckDegenerate(t, Build)
}

// TestUpdateConformance interleaves inserts and deletes and checks lookups
// against the rule-set reference after every burst. Inserted rules compute
// their masks against the build-time boundary vectors, so this exercises
// the online path where new ranges straddle existing intervals.
func TestUpdateConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(1702))
	rs := conformance.RandomRuleSet(rng, 500, 5)
	c := New(rs)

	live := rules.NewRuleSet(5)
	for i := range rs.Rules {
		live.Add(rs.Rules[i])
	}
	nextID := 100000
	for step := 0; step < 30; step++ {
		for burst := 0; burst < 15; burst++ {
			if rng.Intn(2) == 0 || live.Len() < 50 {
				donor := conformance.RandomRuleSet(rng, 1, 5)
				r := donor.Rules[0]
				r.ID = nextID
				r.Priority = int32(50000 + nextID)
				nextID++
				if err := c.Insert(r); err != nil {
					t.Fatal(err)
				}
				live.Add(r)
			} else {
				victim := rng.Intn(live.Len())
				id := live.Rules[victim].ID
				if err := c.Delete(id); err != nil {
					t.Fatal(err)
				}
				live.Rules = append(live.Rules[:victim], live.Rules[victim+1:]...)
			}
		}
		for i := 0; i < 50; i++ {
			p := conformance.RandomPacket(rng, live)
			if got, want := c.Lookup(p), live.MatchID(p); got != want {
				t.Fatalf("step %d: Lookup(%v) = %d, want %d", step, p, got, want)
			}
		}
	}
}

// TestBatchAgreesWithScalar checks the one-lock batched entry point against
// per-packet bounded lookups.
func TestBatchAgreesWithScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1703))
	rs := conformance.RandomRuleSet(rng, 800, 5)
	c := New(rs)
	const batch = 128
	pkts := make([]rules.Packet, batch)
	bounds := make([]int32, batch)
	out := make([]int, batch)
	for round := 0; round < 20; round++ {
		for i := range pkts {
			pkts[i] = conformance.RandomPacket(rng, rs)
			bounds[i] = math.MaxInt32
			if rng.Intn(4) == 0 {
				bounds[i] = int32(rng.Intn(rs.Len() + 1))
			}
		}
		c.LookupBatchWithBound(pkts, bounds, out)
		for i := range pkts {
			if want := c.LookupWithBound(pkts[i], bounds[i]); out[i] != want {
				t.Fatalf("round %d pkt %d: batch %d, scalar %d", round, i, out[i], want)
			}
		}
	}
}

// TestBoundaryCap verifies the per-field boundary vectors stay under the
// cap on endpoint-diverse rule-sets, and that sampling them down does not
// break lookups (correctness is checked against the reference).
func TestBoundaryCap(t *testing.T) {
	rng := rand.New(rand.NewSource(1704))
	rs := rules.NewRuleSet(3)
	for i := 0; i < 2000; i++ {
		lo := rng.Uint32() >> 1
		rs.AddAuto(
			rules.Range{Lo: lo, Hi: lo + rng.Uint32()>>8},
			rules.ExactRange(rng.Uint32()),
			rules.Range{Lo: rng.Uint32() >> 2, Hi: math.MaxUint32},
		)
	}
	c := New(rs)
	for d, v := range c.vecs {
		if len(v) > maxBoundariesPerField {
			t.Fatalf("field %d has %d boundaries, cap is %d", d, len(v), maxBoundariesPerField)
		}
		for i := 1; i < len(v); i++ {
			if v[i-1] >= v[i] {
				t.Fatalf("field %d boundaries not strictly ascending at %d", d, i)
			}
		}
	}
	for i := 0; i < 500; i++ {
		p := conformance.RandomPacket(rng, rs)
		if got, want := c.Lookup(p), rs.MatchID(p); got != want {
			t.Fatalf("Lookup(%v) = %d, want %d", p, got, want)
		}
	}
}

// TestGroupCount pins the structural bound: with numFields hashable fields
// there are at most 2^numFields distinct masks, so at most that many
// groups — the walk the bounded lookup prunes is short by construction.
func TestGroupCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1705))
	rs := conformance.RandomRuleSet(rng, 3000, 5)
	c := New(rs)
	if got := c.NumGroups(); got > 32 {
		t.Fatalf("5-field rule-set produced %d groups, want <= 32", got)
	}
	if c.Len() != rs.Len() {
		t.Fatalf("Len = %d, want %d", c.Len(), rs.Len())
	}
}

// TestShortPacket pins the defensive contract shared with the other
// backends: a packet with fewer fields than the rule-set matches nothing
// instead of panicking.
func TestShortPacket(t *testing.T) {
	rng := rand.New(rand.NewSource(1706))
	rs := conformance.RandomRuleSet(rng, 100, 5)
	c := New(rs)
	short := rules.Packet{1, 2}
	if got := c.Lookup(short); got != rules.NoMatch {
		t.Fatalf("short-packet Lookup = %d", got)
	}
	f := c.Freeze()
	if got := f.Lookup(short, math.MaxInt32, nil); got != rules.NoMatch {
		t.Fatalf("short-packet frozen Lookup = %d", got)
	}
}
