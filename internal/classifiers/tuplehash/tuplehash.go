// Package tuplehash holds the masking and hashing helpers shared by the
// Tuple Space Search and TupleMerge classifiers: a rule's tuple is the
// vector of its per-field effective prefix lengths, and lookup keys are
// FNV-1a hashes of packet fields masked to a table's tuple.
//
// Port ranges and other non-prefix ranges are represented by the longest
// prefix covering the range (Range.CommonPrefixLen); false positives this
// introduces are eliminated by the exact verification step every hash-based
// classifier performs anyway.
package tuplehash

import "nuevomatch/internal/rules"

// Lens returns the tuple of r: the effective prefix length of each field.
func Lens(r *rules.Rule) []uint8 {
	out := make([]uint8, len(r.Fields))
	for d, f := range r.Fields {
		out[d] = uint8(f.CommonPrefixLen())
	}
	return out
}

// Mask keeps the top n bits of v.
//
//nm:hotpath
func Mask(v uint32, n uint8) uint32 {
	if n == 0 {
		return 0
	}
	if n >= 32 {
		return v
	}
	return v &^ (1<<(32-n) - 1)
}

// CoversTuple reports whether a table tuple t can store a rule tuple r:
// every table length must be at most the rule's (masking strictly loses
// information, never invents it).
func CoversTuple(t, r []uint8) bool {
	for d := range t {
		if t[d] > r[d] {
			return false
		}
	}
	return true
}

// Sum returns the total specified bits of a tuple — the "tightness" used to
// rank candidate tables.
func Sum(t []uint8) int {
	s := 0
	for _, v := range t {
		s += int(v)
	}
	return s
}

// Key converts a tuple to a comparable map key.
func Key(t []uint8) string { return string(t) }

// The hash mixes each masked field independently — one multiply per field
// whose dependency chains the CPU overlaps, unlike a byte-serial FNV chain —
// and finishes with a murmur3-style avalanche. Zero-length fields mask to
// zero for every packet and rule, so they are skipped entirely; relaxed
// TupleMerge tuples leave most fields at zero. Only HashPacket/HashRule
// agreement matters for correctness; the mixing constants are the usual
// golden-ratio / murmur3 finalizer values.
const (
	hashSeed  = 0x9E3779B97F4A7C15
	fieldMix  = 0x2545F4914F6CDD1D
	avalanche = 0xFF51AFD7ED558CCD
)

// MixField is the per-field contribution of masked value v in dimension d;
// a tuple hash is the XOR of its nonzero fields' mixes passed through
// Finish. Callers scanning many tables that share (dimension, length) pairs
// can memoize MixField results and rebuild each table's hash with XORs.
//
//nm:hotpath
func MixField(d int, v uint32) uint64 {
	return (uint64(v) + uint64(d+1)*hashSeed) * fieldMix
}

// Finish is the final avalanche applied to the XOR of field mixes.
//
//nm:hotpath
func Finish(h uint64) uint64 {
	h ^= h >> 33
	h *= avalanche
	h ^= h >> 29
	return h
}

// HashPacket hashes the packet fields masked to the tuple.
//
//nm:hotpath
func HashPacket(p rules.Packet, lens []uint8) uint64 {
	var h uint64
	for d, n := range lens {
		if n == 0 {
			continue
		}
		h ^= MixField(d, Mask(p[d], n))
	}
	return Finish(h)
}

// HashRule hashes a rule's range starts masked to the tuple; a packet inside
// the rule hashes identically because the tuple never exceeds the rule's
// effective prefix lengths and zero-length fields are skipped in both.
func HashRule(r *rules.Rule, lens []uint8) uint64 {
	var h uint64
	for d, n := range lens {
		if n == 0 {
			continue
		}
		h ^= MixField(d, Mask(r.Fields[d].Lo, n))
	}
	return Finish(h)
}
