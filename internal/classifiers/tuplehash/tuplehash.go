// Package tuplehash holds the masking and hashing helpers shared by the
// Tuple Space Search and TupleMerge classifiers: a rule's tuple is the
// vector of its per-field effective prefix lengths, and lookup keys are
// FNV-1a hashes of packet fields masked to a table's tuple.
//
// Port ranges and other non-prefix ranges are represented by the longest
// prefix covering the range (Range.CommonPrefixLen); false positives this
// introduces are eliminated by the exact verification step every hash-based
// classifier performs anyway.
package tuplehash

import "nuevomatch/internal/rules"

// Lens returns the tuple of r: the effective prefix length of each field.
func Lens(r *rules.Rule) []uint8 {
	out := make([]uint8, len(r.Fields))
	for d, f := range r.Fields {
		out[d] = uint8(f.CommonPrefixLen())
	}
	return out
}

// Mask keeps the top n bits of v.
func Mask(v uint32, n uint8) uint32 {
	if n == 0 {
		return 0
	}
	if n >= 32 {
		return v
	}
	return v &^ (1<<(32-n) - 1)
}

// CoversTuple reports whether a table tuple t can store a rule tuple r:
// every table length must be at most the rule's (masking strictly loses
// information, never invents it).
func CoversTuple(t, r []uint8) bool {
	for d := range t {
		if t[d] > r[d] {
			return false
		}
	}
	return true
}

// Sum returns the total specified bits of a tuple — the "tightness" used to
// rank candidate tables.
func Sum(t []uint8) int {
	s := 0
	for _, v := range t {
		s += int(v)
	}
	return s
}

// Key converts a tuple to a comparable map key.
func Key(t []uint8) string { return string(t) }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// HashPacket hashes the packet fields masked to the tuple.
func HashPacket(p rules.Packet, lens []uint8) uint64 {
	h := uint64(fnvOffset)
	for d, n := range lens {
		v := Mask(p[d], n)
		for shift := 0; shift < 32; shift += 8 {
			h ^= uint64(v>>shift) & 0xff
			h *= fnvPrime
		}
	}
	return h
}

// HashRule hashes a rule's range starts masked to the tuple; a packet inside
// the rule hashes identically because the tuple never exceeds the rule's
// effective prefix lengths.
func HashRule(r *rules.Rule, lens []uint8) uint64 {
	h := uint64(fnvOffset)
	for d, n := range lens {
		v := Mask(r.Fields[d].Lo, n)
		for shift := 0; shift < 32; shift += 8 {
			h ^= uint64(v>>shift) & 0xff
			h *= fnvPrime
		}
	}
	return h
}
