package tuplehash

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nuevomatch/internal/rules"
)

func TestMask(t *testing.T) {
	cases := []struct {
		v    uint32
		n    uint8
		want uint32
	}{
		{0xffffffff, 0, 0},
		{0xffffffff, 8, 0xff000000},
		{0xffffffff, 32, 0xffffffff},
		{0xffffffff, 33, 0xffffffff},
		{0x12345678, 16, 0x12340000},
	}
	for _, c := range cases {
		if got := Mask(c.v, c.n); got != c.want {
			t.Errorf("Mask(%#x, %d) = %#x, want %#x", c.v, c.n, got, c.want)
		}
	}
}

func TestLens(t *testing.T) {
	r := rules.Rule{Fields: []rules.Range{
		rules.PrefixRange(0x0a0b0000, 16),
		rules.FullRange(),
		rules.ExactRange(80),
		{Lo: 1024, Hi: 65535},
	}}
	got := Lens(&r)
	want := []uint8{16, 0, 32, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Lens[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestCoversTupleAndSum(t *testing.T) {
	if !CoversTuple([]uint8{8, 0}, []uint8{16, 4}) {
		t.Error("shorter tuple must cover longer")
	}
	if CoversTuple([]uint8{24, 0}, []uint8{16, 4}) {
		t.Error("longer tuple must not cover shorter")
	}
	if Sum([]uint8{8, 16, 0}) != 24 {
		t.Error("Sum mismatch")
	}
	if Key([]uint8{1, 2}) == Key([]uint8{2, 1}) {
		t.Error("Key must distinguish tuples")
	}
}

// TestPacketInRuleHashesEqually is the correctness keystone for the
// hash-based classifiers: any packet inside a rule must hash to the rule's
// bucket under any tuple the rule's table may use (lengths ≤ rule lengths).
func TestPacketInRuleHashesEqually(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rules.Rule{Fields: make([]rules.Range, 3)}
		p := make(rules.Packet, 3)
		for d := range r.Fields {
			switch rng.Intn(3) {
			case 0:
				r.Fields[d] = rules.PrefixRange(rng.Uint32(), rng.Intn(33))
			case 1:
				lo := rng.Uint32() >> 1
				r.Fields[d] = rules.Range{Lo: lo, Hi: lo + rng.Uint32()>>8}
			default:
				r.Fields[d] = rules.ExactRange(rng.Uint32())
			}
			p[d] = r.Fields[d].Lo + uint32(rng.Uint64()%r.Fields[d].Size())
		}
		exact := Lens(&r)
		relaxed := make([]uint8, len(exact))
		for d := range relaxed {
			relaxed[d] = exact[d] / 8 * 8
		}
		return HashPacket(p, exact) == HashRule(&r, exact) &&
			HashPacket(p, relaxed) == HashRule(&r, relaxed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHashDiscriminates(t *testing.T) {
	// Different masked values should (overwhelmingly) hash differently.
	lens := []uint8{32, 32}
	seen := make(map[uint64]bool)
	collisions := 0
	for i := uint32(0); i < 1000; i++ {
		h := HashPacket(rules.Packet{i, i * 7}, lens)
		if seen[h] {
			collisions++
		}
		seen[h] = true
	}
	if collisions > 0 {
		t.Errorf("%d collisions in 1000 distinct keys", collisions)
	}
}
