// Package conformance provides the shared correctness harness for every
// classifier in the repository: randomized rule-sets with realistic
// structure (prefixes, ranges, exact values, wildcards, duplicated field
// values) are classified against the linear-scan reference, both for plain
// lookups and for the early-termination (bounded) variant.
package conformance

import (
	"math/rand"
	"testing"

	"nuevomatch/internal/rules"
)

// RandomRuleSet generates n rules over numFields dimensions mixing the
// structures real rule-sets exhibit: IP-like prefixes, port-like ranges,
// exact values, wildcards, and deliberate duplicates that force overlap.
func RandomRuleSet(rng *rand.Rand, n, numFields int) *rules.RuleSet {
	rs := rules.NewRuleSet(numFields)
	for i := 0; i < n; i++ {
		fields := make([]rules.Range, numFields)
		for d := range fields {
			switch rng.Intn(5) {
			case 0: // prefix
				fields[d] = rules.PrefixRange(rng.Uint32(), 4+rng.Intn(29))
			case 1: // arbitrary range
				lo := rng.Uint32()
				span := rng.Uint32() % (1 << uint(4+rng.Intn(20)))
				hi := lo + span
				if hi < lo {
					hi = rules.MaxValue
				}
				fields[d] = rules.Range{Lo: lo, Hi: hi}
			case 2: // exact
				fields[d] = rules.ExactRange(rng.Uint32() % 10000)
			case 3: // wildcard
				fields[d] = rules.FullRange()
			default: // low-diversity exact value (forces overlaps)
				fields[d] = rules.ExactRange(uint32(rng.Intn(4)))
			}
		}
		rs.AddAuto(fields...)
	}
	return rs
}

// RandomPacket returns a packet biased toward matching: half the time it is
// drawn from inside a random rule's box, otherwise uniformly.
func RandomPacket(rng *rand.Rand, rs *rules.RuleSet) rules.Packet {
	p := make(rules.Packet, rs.NumFields)
	if rs.Len() > 0 && rng.Intn(2) == 0 {
		r := &rs.Rules[rng.Intn(rs.Len())]
		for d, f := range r.Fields {
			p[d] = f.Lo + uint32(rng.Uint64()%f.Size())
		}
		return p
	}
	for d := range p {
		p[d] = rng.Uint32()
	}
	return p
}

// Check builds the classifier on randomized rule-sets and verifies that
// Lookup agrees with the reference on every probe, and — when the
// classifier implements rules.BoundedClassifier — that LookupWithBound
// honors the early-termination contract.
func Check(t *testing.T, build rules.Builder, seed int64, sizes []int, probes int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for _, n := range sizes {
		rs := RandomRuleSet(rng, n, 5)
		c, err := build(rs)
		if err != nil {
			t.Fatalf("build(%d rules): %v", n, err)
		}
		bounded, hasBound := c.(rules.BoundedClassifier)
		for i := 0; i < probes; i++ {
			p := RandomPacket(rng, rs)
			want := rs.MatchID(p)
			got := c.Lookup(p)
			if got != want {
				t.Fatalf("%s: size %d probe %d: Lookup(%v) = %d, want %d", c.Name(), n, i, p, got, want)
			}
			if !hasBound {
				continue
			}
			// With a bound equal to the winner's priority, the winner must
			// be suppressed (strict inequality contract).
			if want >= 0 {
				prio := priorityOf(rs, want)
				if g := bounded.LookupWithBound(p, prio); g != rules.NoMatch {
					gotPrio := priorityOf(rs, g)
					if gotPrio >= prio {
						t.Fatalf("%s: LookupWithBound(bound=%d) returned %d with prio %d", c.Name(), prio, g, gotPrio)
					}
				}
				// With a bound just above it, the winner must be found.
				if g := bounded.LookupWithBound(p, prio+1); g != want {
					t.Fatalf("%s: LookupWithBound(bound=%d) = %d, want %d", c.Name(), prio+1, g, want)
				}
			} else if g := bounded.LookupWithBound(p, 1<<30); g != rules.NoMatch {
				t.Fatalf("%s: LookupWithBound on non-matching packet = %d", c.Name(), g)
			}
		}
		if c.MemoryFootprint() < 0 {
			t.Fatalf("%s: negative memory footprint", c.Name())
		}
	}
}

// CheckDegenerate exercises the structural corner cases: an empty rule-set,
// a single wildcard rule, fully identical rules, and one-field rules.
func CheckDegenerate(t *testing.T, build rules.Builder) {
	t.Helper()
	empty := rules.NewRuleSet(5)
	c, err := build(empty)
	if err != nil {
		t.Fatalf("build(empty): %v", err)
	}
	if got := c.Lookup(rules.Packet{1, 2, 3, 4, 5}); got != rules.NoMatch {
		t.Fatalf("empty classifier returned %d", got)
	}

	wild := rules.NewRuleSet(5)
	wild.AddAuto(rules.FullRange(), rules.FullRange(), rules.FullRange(), rules.FullRange(), rules.FullRange())
	c, err = build(wild)
	if err != nil {
		t.Fatalf("build(wildcard): %v", err)
	}
	if got := c.Lookup(rules.Packet{9, 9, 9, 9, 9}); got != 0 {
		t.Fatalf("wildcard classifier returned %d, want 0", got)
	}

	same := rules.NewRuleSet(2)
	for i := 0; i < 20; i++ {
		same.AddAuto(rules.ExactRange(5), rules.Range{Lo: 10, Hi: 20})
	}
	c, err = build(same)
	if err != nil {
		t.Fatalf("build(identical): %v", err)
	}
	if got := c.Lookup(rules.Packet{5, 15}); got != 0 {
		t.Fatalf("identical-rules classifier returned %d, want 0 (best priority)", got)
	}
	if got := c.Lookup(rules.Packet{5, 21}); got != rules.NoMatch {
		t.Fatalf("identical-rules classifier returned %d, want no match", got)
	}

	one := rules.NewRuleSet(1)
	one.AddAuto(rules.Range{Lo: 100, Hi: 200})
	one.AddAuto(rules.Range{Lo: 150, Hi: 250})
	c, err = build(one)
	if err != nil {
		t.Fatalf("build(1-field): %v", err)
	}
	if got := c.Lookup(rules.Packet{175}); got != 0 {
		t.Fatalf("1-field classifier returned %d, want 0", got)
	}
}

func priorityOf(rs *rules.RuleSet, id int) int32 {
	for i := range rs.Rules {
		if rs.Rules[i].ID == id {
			return rs.Rules[i].Priority
		}
	}
	return -1
}
