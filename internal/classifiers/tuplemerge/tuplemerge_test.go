package tuplemerge

import (
	"math/rand"
	"testing"

	"nuevomatch/internal/classifiers/conformance"
	"nuevomatch/internal/classifiers/tss"
	"nuevomatch/internal/rules"
)

func TestConformance(t *testing.T) {
	conformance.Check(t, Build, 3, []int{1, 10, 100, 500}, 200)
}

func TestDegenerate(t *testing.T) {
	conformance.CheckDegenerate(t, Build)
}

func TestMergesTablesComparedToTSS(t *testing.T) {
	// Rules with similar-but-unequal prefix lengths: TSS needs one table
	// per distinct tuple, TupleMerge folds them into relaxed tables.
	rng := rand.New(rand.NewSource(7))
	rs := rules.NewRuleSet(5)
	for i := 0; i < 400; i++ {
		rs.AddAuto(
			rules.PrefixRange(rng.Uint32(), 17+rng.Intn(7)), // /17../23
			rules.PrefixRange(rng.Uint32(), 9+rng.Intn(7)),  // /9../15
			rules.FullRange(),
			rules.ExactRange(uint32(rng.Intn(1000))),
			rules.ExactRange(6),
		)
	}
	tm := New(rs, DefaultConfig())
	ts := tss.New(rs)
	if tm.NumTables() >= ts.NumTables() {
		t.Errorf("TupleMerge tables = %d, TSS tables = %d; merging should reduce the count",
			tm.NumTables(), ts.NumTables())
	}
	// Merging must not change results.
	for i := 0; i < 500; i++ {
		p := conformance.RandomPacket(rng, rs)
		if got, want := tm.Lookup(p), rs.MatchID(p); got != want {
			t.Fatalf("Lookup(%v) = %d, want %d", p, got, want)
		}
	}
}

func TestCollisionLimitSplitsTables(t *testing.T) {
	// Many rules sharing a masked key in a relaxed table but with longer
	// exact tuples: the bucket must be split instead of growing unbounded.
	rs := rules.NewRuleSet(2)
	for i := 0; i < 200; i++ {
		// All fall into the same /8-masked bucket; exact tuples are /32.
		rs.AddAuto(rules.ExactRange(0x0a000000|uint32(i)), rules.ExactRange(uint32(i)))
	}
	cfg := Config{CollisionLimit: 10, RelaxBits: 8, RelaxCap: 8}
	c := New(rs, cfg)
	for i := 0; i < 200; i++ {
		p := rules.Packet{0x0a000000 | uint32(i), uint32(i)}
		if got := c.Lookup(p); got != i {
			t.Fatalf("Lookup(rule %d) = %d", i, got)
		}
	}
}

func TestInsertDeleteLifecycle(t *testing.T) {
	rs := rules.NewRuleSet(2)
	c := New(rs, DefaultConfig())
	r := rules.Rule{ID: 1, Priority: 1, Fields: []rules.Range{{Lo: 10, Hi: 20}, rules.FullRange()}}
	if err := c.Insert(r); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(r); err == nil {
		t.Fatal("duplicate insert should fail")
	}
	if got := c.Lookup(rules.Packet{15, 3}); got != 1 {
		t.Fatalf("Lookup = %d, want 1", got)
	}
	if err := c.Delete(1); err != nil {
		t.Fatal(err)
	}
	if got := c.Lookup(rules.Packet{15, 3}); got != rules.NoMatch {
		t.Fatalf("Lookup after delete = %d, want no match", got)
	}
	if err := c.Delete(1); err == nil {
		t.Fatal("double delete should fail")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
}

func TestRandomizedUpdatesAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := New(rules.NewRuleSet(3), DefaultConfig())
	live := map[int]rules.Rule{}
	nextID := 0
	for step := 0; step < 600; step++ {
		switch op := rng.Intn(4); {
		case op <= 1 || len(live) == 0: // insert-biased
			fields := make([]rules.Range, 3)
			for d := range fields {
				switch rng.Intn(3) {
				case 0:
					fields[d] = rules.PrefixRange(rng.Uint32(), 8*rng.Intn(5))
				case 1:
					lo := rng.Uint32() % 1000
					fields[d] = rules.Range{Lo: lo, Hi: lo + rng.Uint32()%1000}
				default:
					fields[d] = rules.ExactRange(rng.Uint32() % 100)
				}
			}
			r := rules.Rule{ID: nextID, Priority: int32(nextID), Fields: fields}
			nextID++
			live[r.ID] = r
			if err := c.Insert(r); err != nil {
				t.Fatal(err)
			}
		case op == 2:
			for id := range live {
				delete(live, id)
				if err := c.Delete(id); err != nil {
					t.Fatal(err)
				}
				break
			}
		default:
			ref := rules.NewRuleSet(3)
			for _, r := range live {
				ref.Add(r)
			}
			var p rules.Packet
			if len(live) > 0 && rng.Intn(2) == 0 {
				p = conformance.RandomPacket(rng, ref)
			} else {
				p = rules.Packet{rng.Uint32() % 2000, rng.Uint32() % 2000, rng.Uint32() % 200}
			}
			if got, want := c.Lookup(p), ref.MatchID(p); got != want {
				t.Fatalf("step %d: Lookup(%v) = %d, want %d", step, p, got, want)
			}
		}
	}
}

func TestRelaxBitsOneDegeneratesToTSS(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rs := conformance.RandomRuleSet(rng, 300, 5)
	exact := New(rs, Config{CollisionLimit: 40, RelaxBits: 1, RelaxCap: 32})
	reference := tss.New(rs)
	// With 1-bit granularity no relaxation happens on table creation, so
	// the table count cannot be below a TSS build of the same set... but
	// merging of longer tuples into earlier tables still applies, so it
	// must be at most the TSS count.
	if exact.NumTables() > reference.NumTables() {
		t.Errorf("RelaxBits=1 tables = %d > TSS tables = %d", exact.NumTables(), reference.NumTables())
	}
	for i := 0; i < 300; i++ {
		p := conformance.RandomPacket(rng, rs)
		if got, want := exact.Lookup(p), rs.MatchID(p); got != want {
			t.Fatalf("Lookup(%v) = %d, want %d", p, got, want)
		}
	}
}

// TestSplitBucketKeepsPriorityOrder is the regression test for a bucket-
// ordering bug: when splitBucket's degenerate fallback returned unhostable
// movers to the kept bucket, they were appended at the end, breaking the
// ascending-priority invariant the early-stop scan in LookupWithBound relies
// on — high-priority rules behind the out-of-place entry became unreachable.
//
// The construction forces exactly that path with CollisionLimit 3: rules
// insert in priority order into the loose [0,0] table, the bucket overflows
// with movers whose element-wise tuple minimum degenerates to the table
// tuple ([0,8] vs [8,0] -> [0,0]), the fallback keeps the [0,8] mover's
// tuple, and the unhostable [8,0] rule (priority 2) is returned to the kept
// bucket behind the wildcards (priorities 3, 4). The scan then matches the
// priority-3 wildcard, breaks at the priority-4 one, and never reaches the
// better rule.
func TestSplitBucketKeepsPriorityOrder(t *testing.T) {
	rs := rules.NewRuleSet(2)
	add := func(id int, prio int32, f0, f1 rules.Range) {
		rs.Add(rules.Rule{ID: id, Priority: prio, Fields: []rules.Range{f0, f1}})
	}
	add(1, 1, rules.FullRange(), rules.PrefixRange(0xBB000000, 8)) // mover, hosts the split tuple
	add(2, 2, rules.PrefixRange(0xAA000000, 8), rules.FullRange()) // unhostable mover: the victim
	add(3, 3, rules.FullRange(), rules.FullRange())
	add(4, 4, rules.FullRange(), rules.FullRange())
	c := New(rs, Config{CollisionLimit: 3, RelaxBits: 16, RelaxCap: 16})

	p := rules.Packet{0xAA000001, 0x11000000} // matches rules 2, 3, 4
	if got, want := c.Lookup(p), rs.MatchID(p); got != want {
		t.Fatalf("Lookup(%v) = %d, want %d", p, got, want)
	}
	if got := c.Lookup(p); got != 2 {
		t.Fatalf("Lookup = %d, want the buried rule 2", got)
	}
}
