package tuplemerge

import (
	"unsafe"

	"nuevomatch/internal/classifiers/tuplehash"
	"nuevomatch/internal/cpu"
	"nuevomatch/internal/rules"
)

// This file implements the compiled, immutable form of the classifier. The
// live Classifier is built for online updates — per-bucket slices behind a
// bucket index behind an RWMutex — which is the right shape for the write
// side but the wrong one for a lock-free read path. Freeze flattens the
// whole table set into a handful of contiguous arrays (struct-of-arrays for
// the rule bounds) that an RCU-published snapshot can own and scan without
// locks, maps, pointer chasing, or allocation.

// Frozen is the compiled TupleMerge: every table, bucket and rule packed
// into flat arrays. It implements rules.FrozenClassifier. Tables keep the
// live classifier's ascending-bestPrio order and buckets keep their
// ascending-priority entry order, so the early-termination scans are
// identical to the live classifier's — only the memory layout differs.
//
//nm:immutable
type Frozen struct {
	numFields int
	numTables int

	// Per-table arrays, index ti in [0, numTables). Tuples are flattened
	// with stride numFields.
	tLens []uint8  // table ti's tuple is tLens[ti*numFields : (ti+1)*numFields]
	tPrio []int32  // best (lowest) priority stored in table ti
	tOcc  []uint64 // 64-bit occupancy filter over hash low bits

	// Per-table open-addressed bucket directory. Table ti's slots are
	// [tSlotOff[ti], tSlotOff[ti+1]); the slot count is a power of two
	// sized for <= 1/2 load. A slot is free iff slotLen is zero (frozen
	// buckets are non-empty by construction), which terminates probes.
	tSlotOff  []int32
	slotHash  []uint64
	slotStart []int32 // offset into entries
	slotLen   []int32 // 0 marks a free slot

	// entries holds each bucket's rule indices contiguously, ascending by
	// priority within the bucket.
	entries []int32

	// Rule storage, struct-of-arrays: priorities and IDs in their own
	// flat arrays, field bounds flattened with stride numFields.
	rPrio []int32
	rID   []int
	rLo   []uint32
	rHi   []uint32

	// prefetchWorth records whether the leading tables' slot directories
	// are big enough that PrefetchBatch plausibly beats the cost of the
	// extra hash pass (see prefetchMinDirBytes).
	prefetchWorth bool
}

var _ rules.FrozenClassifier = (*Frozen)(nil)
var _ rules.BatchPrefetcher = (*Frozen)(nil)

// Freeze implements rules.Freezable: it compiles the classifier's current
// contents under the read lock and returns a detached immutable form.
// Emptied buckets and emptied tables are dropped during compilation.
//
//nm:builder Frozen
func (c *Classifier) Freeze() rules.FrozenClassifier {
	c.mu.RLock()
	defer c.mu.RUnlock()

	f := &Frozen{}
	nRules := len(c.whereIs)
	if len(c.tables) > 0 {
		f.numFields = len(c.tables[0].lens)
	}
	f.rPrio = make([]int32, 0, nRules)
	f.rID = make([]int, 0, nRules)
	f.rLo = make([]uint32, 0, nRules*f.numFields)
	f.rHi = make([]uint32, 0, nRules*f.numFields)
	f.tSlotOff = append(f.tSlotOff, 0)

	for _, t := range c.tables {
		// Collect the table's non-empty buckets.
		type bucket struct {
			h uint64
			b []int32
		}
		var buckets []bucket
		live := 0
		for i, b := range t.buckets.bs {
			if b != nil && len(b) > 0 {
				buckets = append(buckets, bucket{t.buckets.hs[i], b})
				live += len(b)
			}
		}
		if live == 0 {
			continue // table emptied by deletions: drop it
		}
		ti := f.numTables
		f.numTables++
		f.tLens = append(f.tLens, t.lens...)
		f.tPrio = append(f.tPrio, t.bestPrio)
		f.tOcc = append(f.tOcc, 0)

		slots := 4
		for slots < 2*len(buckets) {
			slots *= 2
		}
		base := len(f.slotHash)
		f.slotHash = append(f.slotHash, make([]uint64, slots)...)
		f.slotStart = append(f.slotStart, make([]int32, slots)...)
		f.slotLen = append(f.slotLen, make([]int32, slots)...)
		f.tSlotOff = append(f.tSlotOff, int32(base+slots))

		mask := uint64(slots - 1)
		for _, bk := range buckets {
			f.tOcc[ti] |= 1 << (bk.h & 63)
			i := bk.h & mask
			for f.slotLen[base+int(i)] != 0 {
				i = (i + 1) & mask
			}
			f.slotHash[base+int(i)] = bk.h
			f.slotStart[base+int(i)] = int32(len(f.entries))
			f.slotLen[base+int(i)] = int32(len(bk.b))
			for _, pos := range bk.b {
				r := &c.rules[pos]
				f.entries = append(f.entries, int32(len(f.rID)))
				f.rPrio = append(f.rPrio, r.Priority)
				f.rID = append(f.rID, r.ID)
				for _, fd := range r.Fields {
					f.rLo = append(f.rLo, fd.Lo)
					f.rHi = append(f.rHi, fd.Hi)
				}
			}
		}
	}
	if nt := min(f.numTables, prefetchTables); nt > 0 {
		// 16 bytes of directory per slot (slotHash + slotStart + slotLen).
		f.prefetchWorth = 16*int(f.tSlotOff[nt]) >= prefetchMinDirBytes
	}
	return f
}

// Len implements rules.FrozenClassifier.
func (f *Frozen) Len() int { return len(f.rID) }

// MemoryFootprint implements rules.FrozenClassifier: the actual byte size
// of the compiled arrays.
func (f *Frozen) MemoryFootprint() int {
	return len(f.tLens) + 12*f.numTables + // tLens + tPrio + tOcc
		4*len(f.tSlotOff) + 16*len(f.slotHash) + // directory
		4*len(f.entries) +
		12*len(f.rID) + // rPrio + rID (8 bytes on 64-bit)
		4*len(f.rLo) + 4*len(f.rHi)
}

// skipped reports whether id appears in the sorted skip list. Skip lists
// are the overlay's deleted-rule IDs and stay tiny (compaction re-freezes
// past a threshold), and the check runs only on candidate matches, so a
// branch-free-ish binary search is plenty.
//
//nm:hotpath
func skipped(skip []int, id int) bool {
	lo, hi := 0, len(skip)-1
	for lo <= hi {
		mid := int(uint(lo+hi) >> 1)
		v := skip[mid]
		if v < id {
			lo = mid + 1
		} else if v > id {
			hi = mid - 1
		} else {
			return true
		}
	}
	return false
}

// matchRule verifies packet p against compiled rule ri with a branch-light
// lockstep scan over the SoA bounds: one unsigned-subtract range check per
// field, AND-accumulated so the loop carries no data-dependent branches.
//
//nm:hotpath
func (f *Frozen) matchRule(ri int32, p rules.Packet) bool {
	base := int(ri) * f.numFields
	in := uint32(1)
	for d := 0; d < f.numFields; d++ {
		lo := f.rLo[base+d]
		hi := f.rHi[base+d]
		in &= b32(p[d]-lo <= hi-lo) // unsigned trick: lo <= p[d] <= hi
	}
	return in != 0
}

//nm:hotpath
func b32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// scanBucket walks one priority-sorted bucket under the bound, returning
// the winner (or -1) and the tightened bound.
//
//nm:hotpath
func (f *Frozen) scanBucket(start, n int32, p rules.Packet, bestPrio int32, skip []int) (int, int32) {
	best := rules.NoMatch
	for _, ri := range f.entries[start : start+n] {
		if f.rPrio[ri] >= bestPrio {
			break
		}
		if f.matchRule(ri, p) && !skipped(skip, f.rID[ri]) {
			best = f.rID[ri]
			bestPrio = f.rPrio[ri]
		}
	}
	return best, bestPrio
}

// probe finds table ti's bucket for hash h, returning its entries span.
//
//nm:hotpath
func (f *Frozen) probe(ti int, h uint64) (start, n int32) {
	base := f.tSlotOff[ti]
	mask := uint64(f.tSlotOff[ti+1]-base) - 1
	for i := h & mask; ; i = (i + 1) & mask {
		j := base + int32(i)
		if f.slotLen[j] == 0 {
			return 0, 0
		}
		if f.slotHash[j] == h {
			return f.slotStart[j], f.slotLen[j]
		}
	}
}

// Lookup implements rules.FrozenClassifier: the live classifier's bounded
// table walk over the compiled arrays. Zero locks, zero allocation.
//
//nm:hotpath
func (f *Frozen) Lookup(p rules.Packet, bestPrio int32, skip []int) int {
	if len(p) < f.numFields {
		return rules.NoMatch
	}
	best := rules.NoMatch
	nf := f.numFields
	for ti := 0; ti < f.numTables; ti++ {
		if f.tPrio[ti] >= bestPrio {
			break // tables ascend by best priority: nothing can win
		}
		h := tuplehash.HashPacket(p, f.tLens[ti*nf:ti*nf+nf])
		if f.tOcc[ti]&(1<<(h&63)) == 0 {
			continue // definite miss: skip the directory probe
		}
		start, n := f.probe(ti, h)
		if n == 0 {
			continue
		}
		if id, prio := f.scanBucket(start, n, p, bestPrio, skip); id >= 0 {
			best, bestPrio = id, prio
		}
	}
	return best
}

// prefetchTables caps how many leading tables PrefetchBatch touches. The
// tables ascend by best priority, so the first ones are the likeliest to be
// probed for real; prefetching deeper tables mostly evicts useful lines for
// probes the priority cutoff will skip anyway.
const prefetchTables = 2

// prefetchMinDirBytes gates PrefetchBatch on the leading tables' directory
// size. Prefetching costs a full extra hash pass over the chunk; that pays
// off only when the directory lines would otherwise miss cache. Below this
// threshold the directories fit comfortably in L2 and stay resident across
// chunks, so the hint warms lines that are already warm and the pass is
// pure overhead (measurably so on small rule-sets).
const prefetchMinDirBytes = 1 << 20

// PrefetchBatch implements rules.BatchPrefetcher: it hashes each packet
// against the leading tables and issues PREFETCHT0 for the home slot's
// directory lines, so when the engine's RQ-RMI inference on the same chunk
// finishes, LookupBatch's probes land in warm cache. The occupancy filter
// runs first — tOcc and the tuple lengths are a handful of hot lines — so
// definite misses cost no prefetch slot. Pure hint: no state changes, no
// allocation, and linear-probe continuations beyond the home slot simply
// miss like they would have anyway. On builds without a prefetch
// instruction cpu.HasPrefetch is a false constant and the whole body folds
// away; on small tables prefetchWorth is false and the call is a bounds
// check and a load.
//
//nm:hotpath
func (f *Frozen) PrefetchBatch(pkts []rules.Packet) {
	if !cpu.HasPrefetch || !f.prefetchWorth {
		return
	}
	nf := f.numFields
	nt := f.numTables
	if nt > prefetchTables {
		nt = prefetchTables
	}
	for ti := 0; ti < nt; ti++ {
		lens := f.tLens[ti*nf : ti*nf+nf]
		occ := f.tOcc[ti]
		base := f.tSlotOff[ti]
		mask := uint64(f.tSlotOff[ti+1]-base) - 1
		for _, p := range pkts {
			if len(p) < nf {
				continue
			}
			h := tuplehash.HashPacket(p, lens)
			if occ&(1<<(h&63)) == 0 {
				continue
			}
			j := base + int32(h&mask)
			cpu.Prefetch(unsafe.Pointer(&f.slotHash[j]))
			cpu.Prefetch(unsafe.Pointer(&f.slotLen[j]))
		}
	}
}

// LookupBatch implements rules.FrozenClassifier table-major: each table is
// hashed and probed for every still-improvable packet before moving to the
// next, so a chunk shares the table's tuple and directory while they are
// cache-hot. The tables' ascending-priority order gives a whole-batch early
// exit: once no packet's bound exceeds the table's best priority, no later
// table can improve anything.
//
//nm:hotpath
func (f *Frozen) LookupBatch(pkts []rules.Packet, bounds []int32, skip []int, out []int) {
	nf := f.numFields
	for ti := 0; ti < f.numTables; ti++ {
		tp := f.tPrio[ti]
		lens := f.tLens[ti*nf : ti*nf+nf]
		occ := f.tOcc[ti]
		improvable := false
		for c, p := range pkts {
			if tp >= bounds[c] || len(p) < nf {
				continue
			}
			improvable = true
			h := tuplehash.HashPacket(p, lens)
			if occ&(1<<(h&63)) == 0 {
				continue
			}
			start, n := f.probe(ti, h)
			if n == 0 {
				continue
			}
			if id, prio := f.scanBucket(start, n, p, bounds[c], skip); id >= 0 {
				out[c] = id
				bounds[c] = prio
			}
		}
		if !improvable {
			break
		}
	}
}
