package tuplemerge

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"nuevomatch/internal/rules"
)

func randomRuleSet(rng *rand.Rand, n int) *rules.RuleSet {
	rs := rules.NewRuleSet(5)
	for i := 0; i < n; i++ {
		rs.AddAuto(
			rules.PrefixRange(rng.Uint32(), rng.Intn(33)),
			rules.PrefixRange(rng.Uint32(), rng.Intn(33)),
			rules.Range{Lo: 0, Hi: 65535},
			rules.ExactRange(uint32(rng.Intn(1000))),
			rules.ExactRange(uint32(rng.Intn(3))),
		)
	}
	return rs
}

func randomPacket(rng *rand.Rand, rs *rules.RuleSet) rules.Packet {
	p := make(rules.Packet, 5)
	if rng.Intn(2) == 0 && rs.Len() > 0 {
		r := &rs.Rules[rng.Intn(rs.Len())]
		for d, f := range r.Fields {
			span := uint64(f.Hi) - uint64(f.Lo)
			p[d] = f.Lo + uint32(rng.Int63n(int64(span+1)))
		}
	} else {
		for d := range p {
			p[d] = rng.Uint32()
		}
	}
	return p
}

// TestFrozenAgreesWithLive freezes a classifier and checks that the
// compiled form answers exactly like the live one, across random bounds.
func TestFrozenAgreesWithLive(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	rs := randomRuleSet(rng, 800)
	c := New(rs, DefaultConfig())
	f := c.Freeze()
	if f.Len() != c.Len() {
		t.Fatalf("frozen Len = %d, live Len = %d", f.Len(), c.Len())
	}
	if f.MemoryFootprint() <= 0 {
		t.Fatal("frozen MemoryFootprint must be positive")
	}
	for i := 0; i < 4000; i++ {
		p := randomPacket(rng, rs)
		bound := int32(math.MaxInt32)
		if rng.Intn(3) == 0 {
			bound = int32(rng.Intn(rs.Len() + 1))
		}
		got := f.Lookup(p, bound, nil)
		want := c.LookupWithBound(p, bound)
		if got != want {
			t.Fatalf("packet %v bound %d: frozen %d, live %d", p, bound, got, want)
		}
	}
}

// TestFrozenSkipMasksDeletedRules checks that the sorted skip list makes
// the frozen form answer exactly like a live classifier with those rules
// actually deleted — including surfacing buried lower-priority matches.
func TestFrozenSkipMasksDeletedRules(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	rs := randomRuleSet(rng, 600)
	c := New(rs, DefaultConfig())
	f := c.Freeze()

	skip := make([]int, 0, 60)
	for i := 0; i < 60; i++ {
		id := rs.Rules[rng.Intn(rs.Len())].ID
		at := sort.SearchInts(skip, id)
		if at < len(skip) && skip[at] == id {
			continue
		}
		skip = append(skip, 0)
		copy(skip[at+1:], skip[at:])
		skip[at] = id
		if err := c.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4000; i++ {
		p := randomPacket(rng, rs)
		got := f.Lookup(p, math.MaxInt32, skip)
		want := c.Lookup(p)
		if got != want {
			t.Fatalf("packet %v: frozen+skip %d, live-after-delete %d", p, got, want)
		}
	}
}

// TestFrozenIsDetached verifies Freeze snapshots the contents: updates to
// the live classifier after the freeze must not leak into the frozen form.
func TestFrozenIsDetached(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	rs := randomRuleSet(rng, 200)
	c := New(rs, DefaultConfig())
	f := c.Freeze()

	pkts := make([]rules.Packet, 500)
	want := make([]int, len(pkts))
	for i := range pkts {
		pkts[i] = randomPacket(rng, rs)
		want[i] = c.Lookup(pkts[i])
	}
	// Churn the live classifier.
	for i := 0; i < 100; i++ {
		_ = c.Delete(rs.Rules[i].ID)
	}
	wild := rules.Rule{ID: 999999, Priority: -1, Fields: []rules.Range{
		rules.FullRange(), rules.FullRange(), rules.FullRange(),
		rules.FullRange(), rules.FullRange(),
	}}
	if err := c.Insert(wild); err != nil {
		t.Fatal(err)
	}
	for i, p := range pkts {
		if got := f.Lookup(p, math.MaxInt32, nil); got != want[i] {
			t.Fatalf("frozen answer changed after live churn: %d != %d", got, want[i])
		}
	}
}

// TestFrozenBatchAgreesWithScalar cross-checks the table-major batch walk
// against per-packet frozen lookups, including the in-place bounds
// tightening and untouched-entry contract.
func TestFrozenBatchAgreesWithScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	rs := randomRuleSet(rng, 700)
	c := New(rs, DefaultConfig())
	f := c.Freeze()

	var skip []int
	for i := 0; i < 20; i++ {
		id := rs.Rules[rng.Intn(rs.Len())].ID
		at := sort.SearchInts(skip, id)
		if at < len(skip) && skip[at] == id {
			continue
		}
		skip = append(skip, 0)
		copy(skip[at+1:], skip[at:])
		skip[at] = id
	}

	const batch = 128
	pkts := make([]rules.Packet, batch)
	bounds := make([]int32, batch)
	scalarBounds := make([]int32, batch)
	out := make([]int, batch)
	for round := 0; round < 30; round++ {
		for i := range pkts {
			pkts[i] = randomPacket(rng, rs)
			bounds[i] = int32(math.MaxInt32)
			if rng.Intn(4) == 0 {
				bounds[i] = int32(rng.Intn(rs.Len() + 1))
			}
			scalarBounds[i] = bounds[i]
			out[i] = -7 // sentinel: untouched unless improved
		}
		f.LookupBatch(pkts, bounds, skip, out)
		for i, p := range pkts {
			want := f.Lookup(p, scalarBounds[i], skip)
			if want < 0 {
				if out[i] != -7 {
					t.Fatalf("round %d pkt %d: batch wrote %d where scalar found nothing", round, i, out[i])
				}
				if bounds[i] != scalarBounds[i] {
					t.Fatalf("round %d pkt %d: bounds changed without a match", round, i)
				}
			} else if out[i] != want {
				t.Fatalf("round %d pkt %d: batch %d, scalar %d", round, i, out[i], want)
			}
		}
	}
}

// TestFrozenEmpty covers the degenerate frozen forms.
func TestFrozenEmpty(t *testing.T) {
	c := New(rules.NewRuleSet(5), DefaultConfig())
	f := c.Freeze()
	if f.Len() != 0 {
		t.Fatalf("empty frozen Len = %d", f.Len())
	}
	p := rules.Packet{1, 2, 3, 4, 5}
	if got := f.Lookup(p, math.MaxInt32, nil); got != rules.NoMatch {
		t.Fatalf("empty frozen Lookup = %d", got)
	}
	out := []int{-7}
	bounds := []int32{math.MaxInt32}
	f.LookupBatch([]rules.Packet{p}, bounds, nil, out)
	if out[0] != -7 {
		t.Fatalf("empty frozen LookupBatch wrote %d", out[0])
	}

	// Freeze after deleting everything: tables are emptied and dropped.
	rng := rand.New(rand.NewSource(75))
	rs := randomRuleSet(rng, 50)
	c2 := New(rs, DefaultConfig())
	for i := range rs.Rules {
		if err := c2.Delete(rs.Rules[i].ID); err != nil {
			t.Fatal(err)
		}
	}
	f2 := c2.Freeze()
	if f2.Len() != 0 {
		t.Fatalf("emptied frozen Len = %d", f2.Len())
	}
	if got := f2.Lookup(p, math.MaxInt32, nil); got != rules.NoMatch {
		t.Fatalf("emptied frozen Lookup = %d", got)
	}
}
