// Package tuplemerge implements the TupleMerge baseline (Daly et al.,
// IEEE/ACM ToN 2019), the update-capable hash-based classifier NuevoMatch
// uses as its default remainder index. TupleMerge improves on Tuple Space
// Search in two ways reproduced here:
//
//   - Table merging: a table's tuple is a relaxed (element-wise ≤) version
//     of its rules' tuples, so rules with similar — not identical — prefix
//     lengths share one table, shrinking the number of probes per lookup.
//     New tables round lengths down to multiples of 8 bits to attract
//     future rules.
//   - Collision limiting: when one hash bucket exceeds the collision limit
//     (the paper's evaluation uses 40), the most specific colliding rules
//     are migrated into a new, tighter table.
//
// The classifier supports online Insert/Delete (§3.9 of the NuevoMatch
// paper relies on this for the remainder).
package tuplemerge

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"nuevomatch/internal/classifiers/tuplehash"
	"nuevomatch/internal/rules"
)

// Config tunes the classifier.
type Config struct {
	// CollisionLimit caps one hash bucket; the paper uses 40.
	CollisionLimit int
	// RelaxBits rounds new tables' tuple lengths down to this granularity
	// and RelaxCap truncates them — the merging levers. The defaults
	// (16/16) give every field just two mask classes {0, 16}, so a handful
	// of loose tables absorb the whole rule-set and the collision limit
	// splits out tighter tables only where buckets actually overflow.
	// TupleMerge's published behaviour — roughly an order of magnitude
	// fewer tables than TSS — emerges from exactly this start-loose,
	// tighten-under-pressure design. RelaxBits=1 with RelaxCap=32
	// degenerates to TSS-shaped exact tuples.
	RelaxBits int
	RelaxCap  int
}

// DefaultConfig matches the configuration evaluated in the paper.
func DefaultConfig() Config { return Config{CollisionLimit: 40, RelaxBits: 16, RelaxCap: 16} }

type table struct {
	lens     []uint8
	buckets  map[uint64][]int32
	entries  int
	bestPrio int32
}

func (t *table) insert(c *Classifier, pos int32) {
	h := tuplehash.HashRule(&c.rules[pos], t.lens)
	// Buckets stay sorted by ascending priority value so lookup scans can
	// stop at the first entry that cannot beat the running best.
	b := t.buckets[h]
	prio := c.rules[pos].Priority
	at := sort.Search(len(b), func(i int) bool { return c.rules[b[i]].Priority > prio })
	b = append(b, 0)
	copy(b[at+1:], b[at:])
	b[at] = pos
	t.buckets[h] = b
	t.entries++
	if prio < t.bestPrio {
		t.bestPrio = prio
	}
	c.whereIs[c.rules[pos].ID] = ref{t, h}
}

type ref struct {
	t *table
	h uint64
}

// Classifier is the TupleMerge table set. All methods are safe for
// concurrent use; lookups take a read lock.
type Classifier struct {
	cfg Config

	mu      sync.RWMutex
	rules   []rules.Rule // slot-stable storage; holes after delete
	free    []int32      // recycled slots
	tables  []*table     // sorted by bestPrio
	whereIs map[int]ref  // rule ID -> table/bucket
}

var (
	_ rules.BoundedClassifier = (*Classifier)(nil)
	_ rules.Updatable         = (*Classifier)(nil)
)

// New builds a TupleMerge classifier over a snapshot of rs.
func New(rs *rules.RuleSet, cfg Config) *Classifier {
	if cfg.CollisionLimit <= 0 {
		cfg.CollisionLimit = 40
	}
	if cfg.RelaxBits <= 0 {
		cfg.RelaxBits = 16
	}
	if cfg.RelaxCap <= 0 {
		cfg.RelaxCap = 16
	}
	c := &Classifier{cfg: cfg, whereIs: make(map[int]ref, rs.Len())}
	// Insert in priority order: more important rules pick table shapes
	// first, which is TupleMerge's offline construction order.
	order := make([]int, rs.Len())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return rs.Rules[order[a]].Priority < rs.Rules[order[b]].Priority
	})
	for _, i := range order {
		// Build-time inserts cannot collide on IDs: rs was validated.
		_ = c.Insert(rs.Rules[i])
	}
	return c
}

// Build adapts New (with defaults) to the rules.Builder signature.
func Build(rs *rules.RuleSet) (rules.Classifier, error) {
	return New(rs, DefaultConfig()), nil
}

// Name implements rules.Classifier.
func (c *Classifier) Name() string { return "tuplemerge" }

// NumTables returns the number of hash tables.
func (c *Classifier) NumTables() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.tables)
}

// Len returns the number of rules currently stored.
func (c *Classifier) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.whereIs)
}

// relax rounds tuple lengths down to the merge granularity and caps them.
func (c *Classifier) relax(lens []uint8) []uint8 {
	out := make([]uint8, len(lens))
	g := uint8(c.cfg.RelaxBits)
	cap16 := uint8(c.cfg.RelaxCap)
	for d, v := range lens {
		v = v / g * g
		if v > cap16 {
			v = cap16
		}
		out[d] = v
	}
	return out
}

// Insert implements rules.Updatable.
func (c *Classifier) Insert(r rules.Rule) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.whereIs[r.ID]; dup {
		return fmt.Errorf("tuplemerge: duplicate rule ID %d", r.ID)
	}
	var pos int32
	if n := len(c.free); n > 0 {
		pos = c.free[n-1]
		c.free = c.free[:n-1]
		c.rules[pos] = r
	} else {
		pos = int32(len(c.rules))
		c.rules = append(c.rules, r)
	}
	c.place(pos)
	return nil
}

// place routes the rule at pos into the tightest compatible table, creating
// a relaxed table when none fits, then enforces the collision limit.
func (c *Classifier) place(pos int32) {
	r := &c.rules[pos]
	lens := tuplehash.Lens(r)
	var best *table
	for _, t := range c.tables {
		if tuplehash.CoversTuple(t.lens, lens) {
			if best == nil || tuplehash.Sum(t.lens) > tuplehash.Sum(best.lens) {
				best = t
			}
		}
	}
	if best == nil {
		best = &table{lens: c.relax(lens), buckets: make(map[uint64][]int32), bestPrio: math.MaxInt32}
		c.tables = append(c.tables, best)
	}
	best.insert(c, pos)
	c.sortTables()

	h := c.whereIs[r.ID].h
	if len(best.buckets[h]) > c.cfg.CollisionLimit {
		c.splitBucket(best, h)
	}
}

// splitBucket migrates the most specific rules of an overflowing bucket
// into one new, strictly tighter table whose tuple is the element-wise
// minimum of the movers' exact tuples. Finer masks spread the movers over
// distinct buckets; if they still collide there, further splits tighten the
// chain until rules are either separated or share identical exact tuples
// (which no tuple-space scheme can separate — the bucket is accepted and
// the priority-sorted scan bounds its cost).
func (c *Classifier) splitBucket(t *table, h uint64) {
	bucket := t.buckets[h]
	moved := make([]int32, 0, len(bucket))
	kept := bucket[:0]
	tsum := tuplehash.Sum(t.lens)
	var minLens []uint8
	for _, pos := range bucket {
		lens := tuplehash.Lens(&c.rules[pos])
		if tuplehash.Sum(lens) > tsum {
			moved = append(moved, pos)
			if minLens == nil {
				minLens = append([]uint8(nil), lens...)
			} else {
				for d := range minLens {
					if lens[d] < minLens[d] {
						minLens[d] = lens[d]
					}
				}
			}
		} else {
			kept = append(kept, pos)
		}
	}
	if len(moved) == 0 {
		return // every rule is exactly as specific as the table: accept
	}
	if tuplehash.Sum(minLens) <= tsum {
		// Element-wise min degenerated to the parent tuple: fall back to
		// the exact tuple of the most specific mover to guarantee
		// progress.
		best := moved[0]
		for _, pos := range moved[1:] {
			if tuplehash.Sum(tuplehash.Lens(&c.rules[pos])) > tuplehash.Sum(tuplehash.Lens(&c.rules[best])) {
				best = pos
			}
		}
		minLens = tuplehash.Lens(&c.rules[best])
		// Keep movers the new tuple cannot host.
		still := moved[:0]
		for _, pos := range moved {
			if tuplehash.CoversTuple(minLens, tuplehash.Lens(&c.rules[pos])) {
				still = append(still, pos)
			} else {
				kept = append(kept, pos)
			}
		}
		moved = still
		if len(moved) == 0 {
			t.buckets[h] = kept
			return
		}
	}
	t.buckets[h] = kept
	t.entries -= len(moved)

	nt := &table{lens: minLens, buckets: make(map[uint64][]int32), bestPrio: math.MaxInt32}
	c.tables = append(c.tables, nt)
	var overflow []uint64
	for _, pos := range moved {
		nt.insert(c, pos)
		nh := c.whereIs[c.rules[pos].ID].h
		if len(nt.buckets[nh]) == c.cfg.CollisionLimit+1 {
			overflow = append(overflow, nh)
		}
	}
	c.sortTables()
	for _, nh := range overflow {
		if len(nt.buckets[nh]) > c.cfg.CollisionLimit {
			c.splitBucket(nt, nh)
		}
	}
}

func (c *Classifier) sortTables() {
	sort.SliceStable(c.tables, func(a, b int) bool { return c.tables[a].bestPrio < c.tables[b].bestPrio })
}

// Delete implements rules.Updatable.
func (c *Classifier) Delete(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	loc, ok := c.whereIs[id]
	if !ok {
		return fmt.Errorf("tuplemerge: no rule with ID %d", id)
	}
	bucket := loc.t.buckets[loc.h]
	for i, pos := range bucket {
		if c.rules[pos].ID == id {
			copy(bucket[i:], bucket[i+1:]) // preserve priority order
			loc.t.buckets[loc.h] = bucket[:len(bucket)-1]
			if len(loc.t.buckets[loc.h]) == 0 {
				delete(loc.t.buckets, loc.h)
			}
			loc.t.entries--
			c.free = append(c.free, pos)
			break
		}
	}
	delete(c.whereIs, id)
	// bestPrio is left as-is (a lower bound remains correct for early
	// termination); table compaction happens on rebuild.
	return nil
}

// Lookup implements rules.Classifier.
func (c *Classifier) Lookup(p rules.Packet) int {
	return c.LookupWithBound(p, math.MaxInt32)
}

// LookupWithBound implements rules.BoundedClassifier; tables are sorted by
// best priority so probing stops when no table can beat the bound.
func (c *Classifier) LookupWithBound(p rules.Packet, bestPrio int32) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	best := rules.NoMatch
	for _, t := range c.tables {
		if t.bestPrio >= bestPrio {
			break
		}
		h := tuplehash.HashPacket(p, t.lens)
		for _, ri := range t.buckets[h] {
			r := &c.rules[ri]
			if r.Priority >= bestPrio {
				break // bucket is priority-sorted
			}
			if r.Matches(p) {
				best = r.ID
				bestPrio = r.Priority
			}
		}
	}
	return best
}

// MemoryFootprint implements rules.Classifier with the same accounting as
// the TSS baseline: fixed per-table overhead plus 16 bytes per entry.
func (c *Classifier) MemoryFootprint() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	total := 0
	for _, t := range c.tables {
		total += 64 + len(t.lens) + 16*t.entries
	}
	return total
}
