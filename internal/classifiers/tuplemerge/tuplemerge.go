// Package tuplemerge implements the TupleMerge baseline (Daly et al.,
// IEEE/ACM ToN 2019), the update-capable hash-based classifier NuevoMatch
// uses as its default remainder index. TupleMerge improves on Tuple Space
// Search in two ways reproduced here:
//
//   - Table merging: a table's tuple is a relaxed (element-wise ≤) version
//     of its rules' tuples, so rules with similar — not identical — prefix
//     lengths share one table, shrinking the number of probes per lookup.
//     New tables round lengths down to multiples of 8 bits to attract
//     future rules.
//   - Collision limiting: when one hash bucket exceeds the collision limit
//     (the paper's evaluation uses 40), the most specific colliding rules
//     are migrated into a new, tighter table.
//
// The classifier supports online Insert/Delete (§3.9 of the NuevoMatch
// paper relies on this for the remainder).
package tuplemerge

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"nuevomatch/internal/classifiers/tuplehash"
	"nuevomatch/internal/rules"
)

// Config tunes the classifier.
type Config struct {
	// CollisionLimit caps one hash bucket; the paper uses 40.
	CollisionLimit int
	// RelaxBits rounds new tables' tuple lengths down to this granularity
	// and RelaxCap truncates them — the merging levers. The defaults
	// (16/16) give every field just two mask classes {0, 16}, so a handful
	// of loose tables absorb the whole rule-set and the collision limit
	// splits out tighter tables only where buckets actually overflow.
	// TupleMerge's published behaviour — roughly an order of magnitude
	// fewer tables than TSS — emerges from exactly this start-loose,
	// tighten-under-pressure design. RelaxBits=1 with RelaxCap=32
	// degenerates to TSS-shaped exact tuples.
	RelaxBits int
	RelaxCap  int
}

// DefaultConfig matches the configuration evaluated in the paper.
func DefaultConfig() Config { return Config{CollisionLimit: 40, RelaxBits: 16, RelaxCap: 16} }

type table struct {
	lens    []uint8
	buckets bucketIndex
	// occ is a 64-bit occupancy filter over hash low bits: a bucket with
	// hash h can exist only if bit h&63 is set. Deletions leave bits stale
	// (the filter over-approximates), which only costs an index probe.
	occ      uint64
	entries  int
	bestPrio int32
}

// bucketIndex maps bucket hashes to priority-sorted rule-slot slices with a
// small open-addressed table: a probe on the hot path is one or two slot
// loads instead of a general map lookup. Buckets emptied by deletions keep
// their slot (the slice stays non-nil), so probe chains never break.
type bucketIndex struct {
	hs []uint64  // slot hash; meaningful only where bs[i] != nil
	bs [][]int32 // nil marks a free slot
	n  int       // occupied slots
}

func (ix *bucketIndex) get(h uint64) []int32 {
	if len(ix.hs) == 0 {
		return nil
	}
	mask := uint64(len(ix.hs) - 1)
	for i := h & mask; ix.bs[i] != nil; i = (i + 1) & mask {
		if ix.hs[i] == h {
			return ix.bs[i]
		}
	}
	return nil
}

// put stores b (non-nil) under h, growing at 3/4 load.
func (ix *bucketIndex) put(h uint64, b []int32) {
	if 4*(ix.n+1) > 3*len(ix.hs) {
		ix.grow()
	}
	mask := uint64(len(ix.hs) - 1)
	i := h & mask
	for ix.bs[i] != nil {
		if ix.hs[i] == h {
			ix.bs[i] = b
			return
		}
		i = (i + 1) & mask
	}
	ix.hs[i] = h
	ix.bs[i] = b
	ix.n++
}

func (ix *bucketIndex) grow() {
	newCap := 16
	if len(ix.hs) > 0 {
		newCap = 2 * len(ix.hs)
	}
	oldHs, oldBs := ix.hs, ix.bs
	ix.hs = make([]uint64, newCap)
	ix.bs = make([][]int32, newCap)
	ix.n = 0
	mask := uint64(newCap - 1)
	for i, b := range oldBs {
		if b == nil || len(b) == 0 {
			continue // drop emptied buckets while rehashing
		}
		j := oldHs[i] & mask
		for ix.bs[j] != nil {
			j = (j + 1) & mask
		}
		ix.hs[j] = oldHs[i]
		ix.bs[j] = b
		ix.n++
	}
}

func (t *table) insert(c *Classifier, pos int32) {
	h := tuplehash.HashRule(&c.rules[pos], t.lens)
	t.occ |= 1 << (h & 63)
	// Buckets stay sorted by ascending priority value so lookup scans can
	// stop at the first entry that cannot beat the running best.
	b := t.buckets.get(h)
	prio := c.rules[pos].Priority
	at := sort.Search(len(b), func(i int) bool { return c.rules[b[i]].Priority > prio })
	b = append(b, 0)
	copy(b[at+1:], b[at:])
	b[at] = pos
	t.buckets.put(h, b)
	t.entries++
	if prio < t.bestPrio {
		t.bestPrio = prio
	}
	c.whereIs[c.rules[pos].ID] = ref{t, h}
}

type ref struct {
	t *table
	h uint64
}

// Classifier is the TupleMerge table set. All methods are safe for
// concurrent use; lookups take a read lock.
type Classifier struct {
	cfg Config

	mu      sync.RWMutex
	rules   []rules.Rule // slot-stable storage; holes after delete
	free    []int32      // recycled slots
	tables  []*table     // sorted by bestPrio
	prios   []int32      // prios[i] == tables[i].bestPrio, flat for the bound scan
	whereIs map[int]ref  // rule ID -> table/bucket
}

var (
	_ rules.BoundedClassifier      = (*Classifier)(nil)
	_ rules.BatchBoundedClassifier = (*Classifier)(nil)
	_ rules.Updatable              = (*Classifier)(nil)
	_ rules.Freezable              = (*Classifier)(nil)
)

// New builds a TupleMerge classifier over a snapshot of rs.
func New(rs *rules.RuleSet, cfg Config) *Classifier {
	if cfg.CollisionLimit <= 0 {
		cfg.CollisionLimit = 40
	}
	if cfg.RelaxBits <= 0 {
		cfg.RelaxBits = 16
	}
	if cfg.RelaxCap <= 0 {
		cfg.RelaxCap = 16
	}
	c := &Classifier{cfg: cfg, whereIs: make(map[int]ref, rs.Len())}
	// Insert in priority order: more important rules pick table shapes
	// first, which is TupleMerge's offline construction order.
	order := make([]int, rs.Len())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return rs.Rules[order[a]].Priority < rs.Rules[order[b]].Priority
	})
	for _, i := range order {
		// Build-time inserts cannot collide on IDs: rs was validated.
		_ = c.Insert(rs.Rules[i])
	}
	return c
}

// Build adapts New (with defaults) to the rules.Builder signature.
func Build(rs *rules.RuleSet) (rules.Classifier, error) {
	return New(rs, DefaultConfig()), nil
}

// Name implements rules.Classifier.
func (c *Classifier) Name() string { return "tuplemerge" }

// NumTables returns the number of hash tables.
func (c *Classifier) NumTables() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.tables)
}

// Len returns the number of rules currently stored.
func (c *Classifier) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.whereIs)
}

// relax rounds tuple lengths down to the merge granularity and caps them.
func (c *Classifier) relax(lens []uint8) []uint8 {
	out := make([]uint8, len(lens))
	g := uint8(c.cfg.RelaxBits)
	cap16 := uint8(c.cfg.RelaxCap)
	for d, v := range lens {
		v = v / g * g
		if v > cap16 {
			v = cap16
		}
		out[d] = v
	}
	return out
}

// Insert implements rules.Updatable.
func (c *Classifier) Insert(r rules.Rule) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.whereIs[r.ID]; dup {
		return fmt.Errorf("tuplemerge: duplicate rule ID %d", r.ID)
	}
	var pos int32
	if n := len(c.free); n > 0 {
		pos = c.free[n-1]
		c.free = c.free[:n-1]
		c.rules[pos] = r
	} else {
		pos = int32(len(c.rules))
		c.rules = append(c.rules, r)
	}
	c.place(pos)
	return nil
}

// place routes the rule at pos into the tightest compatible table, creating
// a relaxed table when none fits, then enforces the collision limit.
func (c *Classifier) place(pos int32) {
	r := &c.rules[pos]
	lens := tuplehash.Lens(r)
	var best *table
	for _, t := range c.tables {
		if tuplehash.CoversTuple(t.lens, lens) {
			if best == nil || tuplehash.Sum(t.lens) > tuplehash.Sum(best.lens) {
				best = t
			}
		}
	}
	if best == nil {
		best = &table{lens: c.relax(lens), bestPrio: math.MaxInt32}
		c.tables = append(c.tables, best)
	}
	best.insert(c, pos)
	c.sortTables()

	h := c.whereIs[r.ID].h
	if len(best.buckets.get(h)) > c.cfg.CollisionLimit {
		c.splitBucket(best, h)
	}
}

// splitBucket migrates the most specific rules of an overflowing bucket
// into one new, strictly tighter table whose tuple is the element-wise
// minimum of the movers' exact tuples. Finer masks spread the movers over
// distinct buckets; if they still collide there, further splits tighten the
// chain until rules are either separated or share identical exact tuples
// (which no tuple-space scheme can separate — the bucket is accepted and
// the priority-sorted scan bounds its cost).
func (c *Classifier) splitBucket(t *table, h uint64) {
	bucket := t.buckets.get(h)
	moved := make([]int32, 0, len(bucket))
	kept := bucket[:0]
	tsum := tuplehash.Sum(t.lens)
	var minLens []uint8
	for _, pos := range bucket {
		lens := tuplehash.Lens(&c.rules[pos])
		if tuplehash.Sum(lens) > tsum {
			moved = append(moved, pos)
			if minLens == nil {
				minLens = append([]uint8(nil), lens...)
			} else {
				for d := range minLens {
					if lens[d] < minLens[d] {
						minLens[d] = lens[d]
					}
				}
			}
		} else {
			kept = append(kept, pos)
		}
	}
	if len(moved) == 0 {
		return // every rule is exactly as specific as the table: accept
	}
	if tuplehash.Sum(minLens) <= tsum {
		// Element-wise min degenerated to the parent tuple: fall back to
		// the exact tuple of the most specific mover to guarantee
		// progress.
		best := moved[0]
		for _, pos := range moved[1:] {
			if tuplehash.Sum(tuplehash.Lens(&c.rules[pos])) > tuplehash.Sum(tuplehash.Lens(&c.rules[best])) {
				best = pos
			}
		}
		minLens = tuplehash.Lens(&c.rules[best])
		// Keep movers the new tuple cannot host. Appending them breaks the
		// bucket's ascending-priority invariant (the early-stop scan relies
		// on it), so restore it before storing.
		still := moved[:0]
		for _, pos := range moved {
			if tuplehash.CoversTuple(minLens, tuplehash.Lens(&c.rules[pos])) {
				still = append(still, pos)
			} else {
				kept = append(kept, pos)
			}
		}
		sort.SliceStable(kept, func(a, b int) bool {
			return c.rules[kept[a]].Priority < c.rules[kept[b]].Priority
		})
		moved = still
		if len(moved) == 0 {
			t.buckets.put(h, kept)
			return
		}
	}
	t.buckets.put(h, kept)
	t.entries -= len(moved)

	nt := &table{lens: minLens, bestPrio: math.MaxInt32}
	c.tables = append(c.tables, nt)
	var overflow []uint64
	for _, pos := range moved {
		nt.insert(c, pos)
		nh := c.whereIs[c.rules[pos].ID].h
		if len(nt.buckets.get(nh)) == c.cfg.CollisionLimit+1 {
			overflow = append(overflow, nh)
		}
	}
	c.sortTables()
	for _, nh := range overflow {
		if len(nt.buckets.get(nh)) > c.cfg.CollisionLimit {
			c.splitBucket(nt, nh)
		}
	}
}

func (c *Classifier) sortTables() {
	sort.SliceStable(c.tables, func(a, b int) bool { return c.tables[a].bestPrio < c.tables[b].bestPrio })
	if cap(c.prios) < len(c.tables) {
		c.prios = make([]int32, len(c.tables))
	}
	c.prios = c.prios[:len(c.tables)]
	for i, t := range c.tables {
		c.prios[i] = t.bestPrio
	}
}

// Delete implements rules.Updatable.
func (c *Classifier) Delete(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	loc, ok := c.whereIs[id]
	if !ok {
		return fmt.Errorf("tuplemerge: no rule with ID %d", id)
	}
	bucket := loc.t.buckets.get(loc.h)
	for i, pos := range bucket {
		if c.rules[pos].ID == id {
			copy(bucket[i:], bucket[i+1:]) // preserve priority order
			// An emptied bucket keeps its slot so probe chains stay intact.
			loc.t.buckets.put(loc.h, bucket[:len(bucket)-1])
			loc.t.entries--
			c.free = append(c.free, pos)
			break
		}
	}
	delete(c.whereIs, id)
	// bestPrio is left as-is (a lower bound remains correct for early
	// termination); table compaction happens on rebuild.
	return nil
}

// Lookup implements rules.Classifier.
func (c *Classifier) Lookup(p rules.Packet) int {
	return c.LookupWithBound(p, math.MaxInt32)
}

// LookupWithBound implements rules.BoundedClassifier; tables are sorted by
// best priority so probing stops when no table can beat the bound.
func (c *Classifier) LookupWithBound(p rules.Packet, bestPrio int32) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.lookupLocked(p, bestPrio)
}

// lookupLocked scans the tables under the running bound.
func (c *Classifier) lookupLocked(p rules.Packet, bestPrio int32) int {
	best := rules.NoMatch
	for ti, bp := range c.prios {
		if bp >= bestPrio {
			break
		}
		t := c.tables[ti]
		h := tuplehash.HashPacket(p, t.lens)
		if t.occ&(1<<(h&63)) == 0 {
			continue // definite miss: skip the bucket probe
		}
		for _, ri := range t.buckets.get(h) {
			r := &c.rules[ri]
			if r.Priority >= bestPrio {
				break // bucket is priority-sorted
			}
			if r.Matches(p) {
				best = r.ID
				bestPrio = r.Priority
			}
		}
	}
	return best
}

// LookupBatchWithBound implements rules.BatchBoundedClassifier: one lock
// acquisition serves the whole batch, and consecutive packets walk the
// same (cache-hot) table list. Results equal per-packet LookupWithBound.
func (c *Classifier) LookupBatchWithBound(pkts []rules.Packet, bounds []int32, out []int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for i, p := range pkts {
		out[i] = c.lookupLocked(p, bounds[i])
	}
}

// MemoryFootprint implements rules.Classifier with the same accounting as
// the TSS baseline: fixed per-table overhead plus 16 bytes per entry.
func (c *Classifier) MemoryFootprint() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	total := 0
	for _, t := range c.tables {
		total += 64 + len(t.lens) + 16*t.entries
	}
	return total
}
