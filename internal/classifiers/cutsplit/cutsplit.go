// Package cutsplit implements the CutSplit baseline (Li et al., INFOCOM
// 2018) as evaluated in the paper: the rule-set is pre-partitioned by which
// IP fields are "small" (long prefixes), each group gets its own decision
// tree that first applies fixed equal-width cuts (FiCuts) on the small
// fields and then switches to balanced splitting (HyperSplit-style) when
// cutting stops paying off, with binth = 8 (§5.1).
package cutsplit

import (
	"math"

	"nuevomatch/internal/classifiers/dtree"
	"nuevomatch/internal/rules"
)

// Config tunes the construction.
type Config struct {
	// Binth is the leaf threshold; the paper's evaluation uses 8.
	Binth int
	// SmallPrefix is the prefix length at or above which an IP field is
	// considered "small" for pre-partitioning (CutSplit uses 16).
	SmallPrefix int
	// MaxCuts bounds the children of one FiCuts node.
	MaxCuts int
}

// DefaultConfig matches the paper's evaluation settings.
func DefaultConfig() Config {
	return Config{Binth: 8, SmallPrefix: 16, MaxCuts: 64}
}

// Classifier is a set of per-group CutSplit trees.
type Classifier struct {
	trees []*dtree.Tree
}

var _ rules.BoundedClassifier = (*Classifier)(nil)

// New builds a CutSplit classifier.
func New(rs *rules.RuleSet, cfg Config) *Classifier {
	if cfg.Binth <= 0 {
		cfg.Binth = 8
	}
	if cfg.SmallPrefix <= 0 {
		cfg.SmallPrefix = 16
	}
	if cfg.MaxCuts < 2 {
		cfg.MaxCuts = 64
	}
	c := &Classifier{}
	for _, g := range partitionBySmallFields(rs, cfg.SmallPrefix) {
		if g.set.Len() == 0 {
			continue
		}
		smallDims := g.smallDims
		policy := func(ruleIdx []int32, box []rules.Range, depth int) dtree.Action {
			return cutSplitPolicy(g.set, ruleIdx, box, depth, smallDims, cfg)
		}
		c.trees = append(c.trees, dtree.Build(g.set, dtree.Config{Binth: cfg.Binth, Policy: policy}))
	}
	return c
}

// Build adapts New (with defaults) to the rules.Builder signature.
func Build(rs *rules.RuleSet) (rules.Classifier, error) {
	return New(rs, DefaultConfig()), nil
}

// group is one pre-partition: the subset of rules that are small in exactly
// the dimensions of smallDims.
type group struct {
	set       *rules.RuleSet
	smallDims []int
}

// partitionBySmallFields implements CutSplit's pre-partitioning on the two
// IP dimensions (fields 0 and 1 when present): four groups keyed by the
// small/big status of each. Rule-sets with fewer than 2 fields use a single
// group keyed on field 0.
func partitionBySmallFields(rs *rules.RuleSet, smallPrefix int) []group {
	ipDims := []int{0}
	if rs.NumFields >= 2 {
		ipDims = []int{0, 1}
	}
	small := func(r *rules.Rule, d int) bool {
		return r.Fields[d].CommonPrefixLen() >= smallPrefix
	}
	groups := make(map[uint8]*group)
	for i := range rs.Rules {
		var key uint8
		var dims []int
		for bi, d := range ipDims {
			if small(&rs.Rules[i], d) {
				key |= 1 << bi
				dims = append(dims, d)
			}
		}
		g, ok := groups[key]
		if !ok {
			g = &group{set: rules.NewRuleSet(rs.NumFields), smallDims: dims}
			groups[key] = g
		}
		g.set.Add(rs.Rules[i])
	}
	out := make([]group, 0, len(groups))
	for key := uint8(0); key < 4; key++ { // deterministic order
		if g, ok := groups[key]; ok {
			out = append(out, *g)
		}
	}
	return out
}

// cutSplitPolicy: FiCuts on small dimensions while effective, then balanced
// splits on the most discriminating dimension.
func cutSplitPolicy(rs *rules.RuleSet, ruleIdx []int32, box []rules.Range, depth int, smallDims []int, cfg Config) dtree.Action {
	// Phase 1 — FiCuts: equal-width cuts on the small dimension with the
	// most distinct range starts, as long as the box is still wide.
	bestDim, bestDistinct := -1, 1
	for _, d := range smallDims {
		if box[d].Size() < 4 {
			continue
		}
		if n := distinctStarts(rs, ruleIdx, d, box[d]); n > bestDistinct {
			bestDim, bestDistinct = d, n
		}
	}
	if bestDim >= 0 {
		cuts := nextPow2(len(ruleIdx) / cfg.Binth)
		if cuts > cfg.MaxCuts {
			cuts = cfg.MaxCuts
		}
		if cuts >= 2 {
			return dtree.Action{Kind: dtree.KindCut, Dim: bestDim, NumCuts: cuts}
		}
	}
	// Phase 2 — splitting: over every dimension, the endpoint-median split
	// that best balances the two children wins.
	dim, at, ok := bestBalancedSplit(rs, ruleIdx, box)
	if !ok {
		return dtree.Action{Kind: dtree.KindLeaf}
	}
	return dtree.Action{Kind: dtree.KindSplit, Dim: dim, SplitAt: at}
}

// distinctStarts counts distinct range starts of the rules clipped to the
// box — a proxy for how much an equal cut can separate.
func distinctStarts(rs *rules.RuleSet, ruleIdx []int32, d int, box rules.Range) int {
	seen := make(map[uint32]struct{}, len(ruleIdx))
	for _, ri := range ruleIdx {
		lo := rs.Rules[ri].Fields[d].Lo
		if lo < box.Lo {
			lo = box.Lo
		}
		seen[lo] = struct{}{}
	}
	return len(seen)
}

// maxSplitCandidates caps the endpoints evaluated per dimension; scoring a
// candidate is O(rules), so an uncapped scan would be quadratic on large
// nodes.
const maxSplitCandidates = 48

// bestBalancedSplit scans each dimension's clipped endpoints and picks the
// split minimizing max(|left|, |right|) plus a replication penalty.
func bestBalancedSplit(rs *rules.RuleSet, ruleIdx []int32, box []rules.Range) (dim int, at uint32, ok bool) {
	bestCost := math.MaxFloat64
	for d := range box {
		if box[d].Size() < 2 {
			continue
		}
		// Candidate split points: rule range boundaries inside the box,
		// evenly subsampled on large nodes.
		cands := make([]uint32, 0, 2*len(ruleIdx))
		for _, ri := range ruleIdx {
			f := rs.Rules[ri].Fields[d]
			if f.Lo > box[d].Lo && f.Lo <= box[d].Hi {
				cands = append(cands, f.Lo-1)
			}
			if f.Hi >= box[d].Lo && f.Hi < box[d].Hi {
				cands = append(cands, f.Hi)
			}
		}
		if len(cands) > maxSplitCandidates {
			step := len(cands) / maxSplitCandidates
			thin := cands[:0]
			for i := 0; i < len(cands); i += step {
				thin = append(thin, cands[i])
			}
			cands = thin
		}
		for _, cand := range cands {
			var l, r int
			for _, ri := range ruleIdx {
				f := rs.Rules[ri].Fields[d]
				if f.Lo <= cand {
					l++
				}
				if f.Hi > cand {
					r++
				}
			}
			if l == len(ruleIdx) && r == len(ruleIdx) {
				continue // pure replication
			}
			bal := float64(max(l, r))
			repl := float64(l+r-len(ruleIdx)) * 0.5
			if cost := bal + repl; cost < bestCost {
				bestCost, dim, at, ok = cost, d, cand, true
			}
		}
	}
	return dim, at, ok
}

func nextPow2(n int) int {
	p := 2
	for p < n {
		p <<= 1
	}
	return p
}

// Name implements rules.Classifier.
func (c *Classifier) Name() string { return "cutsplit" }

// Lookup implements rules.Classifier: every group tree is probed and the
// best priority wins; trees are consulted with a tightening bound.
func (c *Classifier) Lookup(p rules.Packet) int {
	return c.LookupWithBound(p, math.MaxInt32)
}

// LookupWithBound implements rules.BoundedClassifier.
func (c *Classifier) LookupWithBound(p rules.Packet, bestPrio int32) int {
	best := rules.NoMatch
	for _, t := range c.trees {
		if id := t.LookupWithBound(p, bestPrio); id >= 0 {
			best = id
			bestPrio = t.PriorityOf(id)
		}
	}
	return best
}

// MemoryFootprint implements rules.Classifier.
func (c *Classifier) MemoryFootprint() int {
	total := 0
	for _, t := range c.trees {
		total += t.MemoryFootprint()
	}
	return total
}

// Stats aggregates the per-tree build statistics.
func (c *Classifier) Stats() []dtree.Stats {
	out := make([]dtree.Stats, len(c.trees))
	for i, t := range c.trees {
		out[i] = t.Stats()
	}
	return out
}
