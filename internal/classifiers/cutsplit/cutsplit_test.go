package cutsplit

import (
	"math/rand"
	"testing"

	"nuevomatch/internal/classifiers/conformance"
	"nuevomatch/internal/rules"
)

func TestConformance(t *testing.T) {
	conformance.Check(t, Build, 4, []int{1, 10, 100, 500}, 200)
}

func TestDegenerate(t *testing.T) {
	conformance.CheckDegenerate(t, Build)
}

func TestPartitionBySmallFields(t *testing.T) {
	rs := rules.NewRuleSet(2)
	rs.AddAuto(rules.PrefixRange(0x0a000000, 24), rules.PrefixRange(0x0b000000, 24)) // small/small
	rs.AddAuto(rules.PrefixRange(0x0a000000, 24), rules.PrefixRange(0, 0))           // small/big
	rs.AddAuto(rules.PrefixRange(0, 0), rules.PrefixRange(0x0b000000, 24))           // big/small
	rs.AddAuto(rules.PrefixRange(0, 0), rules.PrefixRange(0, 0))                     // big/big
	groups := partitionBySmallFields(rs, 16)
	if len(groups) != 4 {
		t.Fatalf("got %d groups, want 4", len(groups))
	}
	total := 0
	for _, g := range groups {
		total += g.set.Len()
	}
	if total != rs.Len() {
		t.Errorf("groups hold %d rules, want %d", total, rs.Len())
	}
}

func TestLeafBoundHonored(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rs := conformance.RandomRuleSet(rng, 400, 5)
	c := New(rs, Config{Binth: 4, SmallPrefix: 16, MaxCuts: 16})
	for _, st := range c.Stats() {
		if st.Leaves == 0 {
			t.Error("tree without leaves")
		}
		if st.MaxDepth > 48 {
			t.Errorf("depth %d exceeds the safety cap", st.MaxDepth)
		}
	}
}

func TestReplicationStaysBounded(t *testing.T) {
	// Structured 5-tuple rules: replication (leaf entries / rules) should
	// stay modest; runaway replication indicates broken cutting.
	rng := rand.New(rand.NewSource(6))
	rs := rules.NewRuleSet(5)
	for i := 0; i < 1000; i++ {
		rs.AddAuto(
			rules.PrefixRange(rng.Uint32(), 16+rng.Intn(17)),
			rules.PrefixRange(rng.Uint32(), 8+rng.Intn(25)),
			rules.FullRange(),
			rules.ExactRange(uint32(rng.Intn(2000))),
			rules.ExactRange(uint32(6)),
		)
	}
	c := New(rs, DefaultConfig())
	entries := 0
	for _, st := range c.Stats() {
		entries += st.LeafEntries
	}
	if f := float64(entries) / float64(rs.Len()); f > 4 {
		t.Errorf("replication factor %.2f > 4", f)
	}
	for i := 0; i < 500; i++ {
		p := conformance.RandomPacket(rng, rs)
		if got, want := c.Lookup(p), rs.MatchID(p); got != want {
			t.Fatalf("Lookup(%v) = %d, want %d", p, got, want)
		}
	}
}
