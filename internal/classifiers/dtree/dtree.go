// Package dtree is the decision-tree substrate shared by the CutSplit and
// NeuroCuts baselines: rules are hyper-cubes in field space, internal nodes
// either cut a dimension into equal-width children (HiCuts-style) or split
// it at a chosen point (HyperSplit-style), and leaves hold at most binth
// rules scanned linearly in priority order.
//
// Every node records the best (numerically smallest) priority in its
// subtree, enabling the early-termination optimization of §4 of the
// NuevoMatch paper: a tree-walk stops as soon as the current node cannot
// beat the best match already found.
package dtree

import (
	"math"

	"nuevomatch/internal/rules"
)

// Kind discriminates node types.
type Kind uint8

const (
	// KindLeaf holds rule positions scanned linearly.
	KindLeaf Kind = iota
	// KindCut divides [Lo, Lo+NumChildren·Width) into equal-width children.
	KindCut
	// KindSplit has two children divided at SplitAt (inclusive left).
	KindSplit
)

// Node is one tree node. Exactly the fields for its Kind are meaningful.
type Node struct {
	Kind     Kind
	Dim      int8
	BestPrio int32 // smallest priority value in the subtree

	// Leaf payload: positions into the tree's rule slice, priority-sorted.
	Rules []int32

	// Cut payload.
	Lo       uint32
	Width    uint64 // per-child width (≥ 1)
	Children []*Node

	// Split payload.
	SplitAt     uint32
	Left, Right *Node
}

// Action is a build-policy decision for one node.
type Action struct {
	Kind    Kind   // KindCut or KindSplit; KindLeaf forces a leaf
	Dim     int    // dimension to cut or split
	NumCuts int    // children count for KindCut (≥ 2)
	SplitAt uint32 // inclusive upper bound of the left child for KindSplit
}

// Policy chooses the action for a node given the rules it holds (positions
// into the build rule slice), the node's box, and its depth. Returning
// Action{Kind: KindLeaf} forces a leaf regardless of size.
type Policy func(ruleIdx []int32, box []rules.Range, depth int) Action

// Config controls Build.
type Config struct {
	// Binth is the leaf size threshold (the paper uses 8 for CutSplit).
	Binth int
	// MaxDepth forces a leaf beyond this depth as a safety valve.
	MaxDepth int
	// SpaceFactor rejects cuts whose children hold more than
	// SpaceFactor × the parent's rules in total — HiCuts' spfac guard
	// against replication blowup on wildcard-heavy nodes. Default 4.
	SpaceFactor int
	// MaxNodes is a global node budget; once exceeded every pending node
	// becomes a leaf. Default 32·rules + 4096.
	MaxNodes int
	// Policy drives the cut/split decisions; required.
	Policy Policy
}

// Stats summarizes a built tree.
type Stats struct {
	Nodes       int
	Leaves      int
	MaxDepth    int
	LeafEntries int // total rule references across leaves (≥ len(rules) with replication)
	// SumLeafDepth accumulates the depth of every leaf, so
	// SumLeafDepth/Leaves approximates the expected tree-walk length —
	// one of the two objectives NeuroCuts optimizes.
	SumLeafDepth int
}

// Tree is a built decision tree over a snapshot of a rule-set.
type Tree struct {
	rules    []rules.Rule
	prioByID map[int]int32
	root     *Node
	stats    Stats
}

// PriorityOf returns the priority of the rule with the given ID. It panics
// for unknown IDs, which indicate a caller bug.
func (t *Tree) PriorityOf(id int) int32 { return t.prioByID[id] }

// Build constructs a tree over rs with the given config. The tree snapshots
// the rules; later changes to rs are not observed.
func Build(rs *rules.RuleSet, cfg Config) *Tree {
	if cfg.Binth <= 0 {
		cfg.Binth = 8
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 48
	}
	if cfg.SpaceFactor <= 0 {
		cfg.SpaceFactor = 4
	}
	if cfg.MaxNodes <= 0 {
		cfg.MaxNodes = 32*rs.Len() + 4096
	}
	t := &Tree{
		rules:    append([]rules.Rule(nil), rs.Rules...),
		prioByID: make(map[int]int32, len(rs.Rules)),
	}
	all := make([]int32, len(t.rules))
	for i := range all {
		all[i] = int32(i)
		t.prioByID[t.rules[i].ID] = t.rules[i].Priority
	}
	box := make([]rules.Range, rs.NumFields)
	for d := range box {
		box[d] = rules.FullRange()
	}
	t.root = t.build(all, box, 0, cfg)
	return t
}

func (t *Tree) build(ruleIdx []int32, box []rules.Range, depth int, cfg Config) *Node {
	t.stats.Nodes++
	if depth > t.stats.MaxDepth {
		t.stats.MaxDepth = depth
	}
	n := &Node{BestPrio: t.bestPrio(ruleIdx)}
	if len(ruleIdx) <= cfg.Binth || depth >= cfg.MaxDepth || t.stats.Nodes >= cfg.MaxNodes {
		t.makeLeaf(n, ruleIdx, depth)
		return n
	}
	a := cfg.Policy(ruleIdx, box, depth)
	ok := false
	switch a.Kind {
	case KindCut:
		ok = a.NumCuts >= 2 && t.cut(n, ruleIdx, box, depth, cfg, a)
	case KindSplit:
		ok = t.split(n, ruleIdx, box, depth, cfg, a)
	default:
		t.makeLeaf(n, ruleIdx, depth)
		return n
	}
	if !ok {
		// The policy's action was degenerate (e.g. a cut vetoed by the
		// space factor). Before accepting an oversized leaf, try a simple
		// balanced split so the node still makes progress.
		if at, dim, found := t.fallbackSplit(ruleIdx, box); !found ||
			!t.split(n, ruleIdx, box, depth, cfg, Action{Kind: KindSplit, Dim: dim, SplitAt: at}) {
			t.makeLeaf(n, ruleIdx, depth)
		}
	}
	return n
}

// fallbackSplit finds any endpoint split that separates at least one rule,
// preferring the most balanced among a bounded sample.
func (t *Tree) fallbackSplit(ruleIdx []int32, box []rules.Range) (at uint32, dim int, ok bool) {
	step := 1
	if len(ruleIdx) > 32 {
		step = len(ruleIdx) / 32
	}
	bestCost := len(ruleIdx) + 1
	for d := range box {
		if box[d].Size() < 2 {
			continue
		}
		for i := 0; i < len(ruleIdx); i += step {
			cand := t.rules[ruleIdx[i]].Fields[d].Hi
			if cand < box[d].Lo || cand >= box[d].Hi {
				continue
			}
			l, r := 0, 0
			for _, rj := range ruleIdx {
				f := t.rules[rj].Fields[d]
				if f.Lo <= cand {
					l++
				}
				if f.Hi > cand {
					r++
				}
			}
			if l == len(ruleIdx) && r == len(ruleIdx) {
				continue
			}
			cost := l
			if r > cost {
				cost = r
			}
			if cost < bestCost {
				bestCost, at, dim, ok = cost, cand, d, true
			}
		}
	}
	return at, dim, ok
}

func (t *Tree) makeLeaf(n *Node, ruleIdx []int32, depth int) {
	n.Kind = KindLeaf
	n.Rules = append([]int32(nil), ruleIdx...)
	// Priority order lets the scan stop at the first match.
	sortByPriority(t.rules, n.Rules)
	t.stats.Leaves++
	t.stats.LeafEntries += len(n.Rules)
	t.stats.SumLeafDepth += depth
}

// cut partitions box[dim] into equal-width children; rules replicate into
// every child they overlap. Returns false when the cut is degenerate or
// fails to separate anything (every child would repeat the parent).
func (t *Tree) cut(n *Node, ruleIdx []int32, box []rules.Range, depth int, cfg Config, a Action) bool {
	dim := a.Dim
	span := box[dim].Size()
	num := uint64(a.NumCuts)
	if num > span {
		num = span
	}
	if num < 2 {
		return false
	}
	width := (span + num - 1) / num

	groups := make([][]int32, num)
	useful := false
	total := 0
	for ci := uint64(0); ci < num; ci++ {
		clo := uint64(box[dim].Lo) + ci*width
		chi := clo + width - 1
		if chi > uint64(box[dim].Hi) {
			chi = uint64(box[dim].Hi)
		}
		if clo > uint64(box[dim].Hi) {
			break
		}
		cr := rules.Range{Lo: uint32(clo), Hi: uint32(chi)}
		for _, ri := range ruleIdx {
			if t.rules[ri].Fields[dim].Overlaps(cr) {
				groups[ci] = append(groups[ci], ri)
			}
		}
		total += len(groups[ci])
		if len(groups[ci]) < len(ruleIdx) {
			useful = true
		}
	}
	// HiCuts spfac: wildcard-heavy rules replicate into every child; when
	// the children collectively hold far more rules than the parent, the
	// cut buys separation at an exponential space price — reject it.
	if !useful || total > cfg.SpaceFactor*len(ruleIdx) {
		return false
	}
	n.Kind = KindCut
	n.Dim = int8(dim)
	n.Lo = box[dim].Lo
	n.Width = width
	n.Children = make([]*Node, num)
	for ci := uint64(0); ci < num; ci++ {
		clo := uint64(box[dim].Lo) + ci*width
		if clo > uint64(box[dim].Hi) {
			// Covered by an earlier break above; keep an empty leaf so the
			// child index computed at lookup time is always valid.
			n.Children[ci] = &Node{Kind: KindLeaf, BestPrio: math.MaxInt32}
			t.stats.Nodes++
			t.stats.Leaves++
			continue
		}
		chi := clo + width - 1
		if chi > uint64(box[dim].Hi) {
			chi = uint64(box[dim].Hi)
		}
		child := append([]rules.Range(nil), box...)
		child[dim] = rules.Range{Lo: uint32(clo), Hi: uint32(chi)}
		n.Children[ci] = t.build(groups[ci], child, depth+1, cfg)
	}
	return true
}

// split divides box[dim] at a.SplitAt; rules spanning the split replicate.
// Returns false when the split is degenerate.
func (t *Tree) split(n *Node, ruleIdx []int32, box []rules.Range, depth int, cfg Config, a Action) bool {
	dim := a.Dim
	at := a.SplitAt
	if at < box[dim].Lo || at >= box[dim].Hi {
		return false
	}
	var left, right []int32
	for _, ri := range ruleIdx {
		f := t.rules[ri].Fields[dim]
		if f.Lo <= at {
			left = append(left, ri)
		}
		if f.Hi > at {
			right = append(right, ri)
		}
	}
	if len(left) == len(ruleIdx) && len(right) == len(ruleIdx) {
		return false
	}
	n.Kind = KindSplit
	n.Dim = int8(dim)
	n.SplitAt = at
	lbox := append([]rules.Range(nil), box...)
	lbox[dim].Hi = at
	rbox := append([]rules.Range(nil), box...)
	rbox[dim].Lo = at + 1
	n.Left = t.build(left, lbox, depth+1, cfg)
	n.Right = t.build(right, rbox, depth+1, cfg)
	return true
}

func (t *Tree) bestPrio(ruleIdx []int32) int32 {
	best := int32(math.MaxInt32)
	for _, ri := range ruleIdx {
		if p := t.rules[ri].Priority; p < best {
			best = p
		}
	}
	return best
}

func sortByPriority(rs []rules.Rule, idx []int32) {
	// Insertion sort: leaves are tiny (≤ binth except forced leaves).
	for i := 1; i < len(idx); i++ {
		x := idx[i]
		j := i - 1
		for j >= 0 && rs[idx[j]].Priority > rs[x].Priority {
			idx[j+1] = idx[j]
			j--
		}
		idx[j+1] = x
	}
}

// Stats returns build statistics.
func (t *Tree) Stats() Stats { return t.stats }

// Lookup descends the tree and returns the best matching rule ID, or -1.
func (t *Tree) Lookup(p rules.Packet) int {
	return t.LookupWithBound(p, math.MaxInt32)
}

// LookupWithBound is Lookup with the early-termination bound of §4.
func (t *Tree) LookupWithBound(p rules.Packet, bestPrio int32) int {
	n := t.root
	if n == nil {
		return rules.NoMatch
	}
	for {
		if n.BestPrio >= bestPrio {
			return rules.NoMatch
		}
		switch n.Kind {
		case KindLeaf:
			for _, ri := range n.Rules {
				r := &t.rules[ri]
				if r.Priority >= bestPrio {
					return rules.NoMatch
				}
				if r.Matches(p) {
					return r.ID
				}
			}
			return rules.NoMatch
		case KindCut:
			v := p[n.Dim]
			if v < n.Lo {
				return rules.NoMatch
			}
			ci := uint64(v-n.Lo) / n.Width
			if ci >= uint64(len(n.Children)) {
				return rules.NoMatch
			}
			n = n.Children[ci]
		case KindSplit:
			if p[n.Dim] <= n.SplitAt {
				n = n.Left
			} else {
				n = n.Right
			}
		}
	}
}

// MemoryFootprint models the index size in bytes: 16 bytes per node header,
// 8 bytes per child pointer, and 4 bytes per leaf rule reference — the same
// kind of accounting the paper applies to decision trees (§5.2.1).
func (t *Tree) MemoryFootprint() int {
	total := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		total += 16
		switch n.Kind {
		case KindLeaf:
			total += 4 * len(n.Rules)
		case KindCut:
			total += 8 * len(n.Children)
			for _, c := range n.Children {
				walk(c)
			}
		case KindSplit:
			total += 16
			walk(n.Left)
			walk(n.Right)
		}
	}
	if t.root != nil {
		walk(t.root)
	}
	return total
}
