package dtree

import (
	"math"
	"math/rand"
	"testing"

	"nuevomatch/internal/rules"
)

// naivePolicy cuts dimension (depth mod d) into 4, falling back to leaves.
func naivePolicy(ruleIdx []int32, box []rules.Range, depth int) Action {
	d := depth % len(box)
	if box[d].Size() < 4 {
		return Action{Kind: KindLeaf}
	}
	return Action{Kind: KindCut, Dim: d, NumCuts: 4}
}

func randomRules(rng *rand.Rand, n, dims int) *rules.RuleSet {
	rs := rules.NewRuleSet(dims)
	for i := 0; i < n; i++ {
		fields := make([]rules.Range, dims)
		for d := range fields {
			lo := rng.Uint32()
			span := rng.Uint32() % (1 << 24)
			hi := lo + span
			if hi < lo {
				hi = rules.MaxValue
			}
			fields[d] = rules.Range{Lo: lo, Hi: hi}
		}
		rs.AddAuto(fields...)
	}
	return rs
}

func TestLookupMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rs := randomRules(rng, 300, 3)
	tr := Build(rs, Config{Binth: 8, Policy: naivePolicy})
	for i := 0; i < 2000; i++ {
		p := rules.Packet{rng.Uint32(), rng.Uint32(), rng.Uint32()}
		if got, want := tr.Lookup(p), rs.MatchID(p); got != want {
			t.Fatalf("Lookup(%v) = %d, want %d", p, got, want)
		}
	}
}

func TestSplitPolicy(t *testing.T) {
	rs := rules.NewRuleSet(1)
	rs.AddAuto(rules.Range{Lo: 0, Hi: 99})
	rs.AddAuto(rules.Range{Lo: 100, Hi: 199})
	rs.AddAuto(rules.Range{Lo: 200, Hi: 299})
	tr := Build(rs, Config{
		Binth: 1,
		Policy: func(ruleIdx []int32, box []rules.Range, depth int) Action {
			// Split at the midpoint of the box each time.
			mid := box[0].Lo + uint32(box[0].Size()/2)
			return Action{Kind: KindSplit, Dim: 0, SplitAt: mid}
		},
	})
	for k := uint32(0); k < 300; k++ {
		want := int(k / 100)
		if got := tr.Lookup(rules.Packet{k}); got != want {
			t.Fatalf("Lookup(%d) = %d, want %d", k, got, want)
		}
	}
	if got := tr.Lookup(rules.Packet{301}); got != rules.NoMatch {
		t.Fatalf("Lookup(301) = %d, want no match", got)
	}
}

func TestEarlyTermination(t *testing.T) {
	rs := rules.NewRuleSet(1)
	rs.Add(rules.Rule{ID: 0, Priority: 10, Fields: []rules.Range{rules.FullRange()}})
	tr := Build(rs, Config{Binth: 8, Policy: naivePolicy})
	if got := tr.LookupWithBound(rules.Packet{5}, 10); got != rules.NoMatch {
		t.Errorf("bound equal to best priority must suppress the match, got %d", got)
	}
	if got := tr.LookupWithBound(rules.Packet{5}, 11); got != 0 {
		t.Errorf("bound above best priority must find the match, got %d", got)
	}
}

func TestDegenerateActionsFallBackToLeaf(t *testing.T) {
	rs := rules.NewRuleSet(1)
	for i := 0; i < 20; i++ {
		rs.AddAuto(rules.FullRange()) // identical wildcards: nothing separates
	}
	tr := Build(rs, Config{
		Binth: 2,
		Policy: func(ruleIdx []int32, box []rules.Range, depth int) Action {
			return Action{Kind: KindCut, Dim: 0, NumCuts: 8}
		},
	})
	st := tr.Stats()
	if st.Leaves != 1 || st.MaxDepth != 0 {
		t.Errorf("useless cuts must collapse to a single root leaf, got %+v", st)
	}
	if got := tr.Lookup(rules.Packet{42}); got != 0 {
		t.Errorf("Lookup = %d, want 0", got)
	}
}

func TestMaxDepthSafetyValve(t *testing.T) {
	rs := rules.NewRuleSet(1)
	for i := 0; i < 64; i++ {
		rs.AddAuto(rules.Range{Lo: 0, Hi: 1000}) // heavy overlap
	}
	tr := Build(rs, Config{
		Binth:    1,
		MaxDepth: 5,
		Policy: func(ruleIdx []int32, box []rules.Range, depth int) Action {
			mid := box[0].Lo + uint32(box[0].Size()/2)
			return Action{Kind: KindSplit, Dim: 0, SplitAt: mid}
		},
	})
	if st := tr.Stats(); st.MaxDepth > 5 {
		t.Errorf("MaxDepth = %d, want <= 5", st.MaxDepth)
	}
	if got := tr.Lookup(rules.Packet{500}); got != 0 {
		t.Errorf("Lookup = %d, want 0", got)
	}
}

func TestStatsAndMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rs := randomRules(rng, 200, 2)
	tr := Build(rs, Config{Binth: 8, Policy: naivePolicy})
	st := tr.Stats()
	if st.Nodes <= 0 || st.Leaves <= 0 || st.LeafEntries < rs.Len() {
		t.Errorf("implausible stats: %+v", st)
	}
	if tr.MemoryFootprint() <= 0 {
		t.Error("memory footprint must be positive")
	}
	if got := tr.PriorityOf(rs.Rules[7].ID); got != rs.Rules[7].Priority {
		t.Errorf("PriorityOf = %d, want %d", got, rs.Rules[7].Priority)
	}
}

func TestEmptyTree(t *testing.T) {
	rs := rules.NewRuleSet(2)
	tr := Build(rs, Config{Binth: 8, Policy: naivePolicy})
	if got := tr.Lookup(rules.Packet{1, 2}); got != rules.NoMatch {
		t.Errorf("Lookup on empty tree = %d", got)
	}
	if tr.root.BestPrio != math.MaxInt32 {
		t.Error("empty tree root must carry the sentinel priority")
	}
}
