package classbench

import (
	"bytes"
	"math/rand"
	"testing"

	"nuevomatch/internal/iset"
	"nuevomatch/internal/rules"
)

func TestProfiles(t *testing.T) {
	ps := Profiles()
	if len(ps) != 12 {
		t.Fatalf("got %d profiles, want 12", len(ps))
	}
	wantNames := []string{"acl1", "acl2", "acl3", "acl4", "acl5", "fw1", "fw2", "fw3", "fw4", "fw5", "ipc1", "ipc2"}
	for i, p := range ps {
		if p.Name != wantNames[i] {
			t.Errorf("profile %d name = %q, want %q", i, p.Name, wantNames[i])
		}
	}
	if _, err := ProfileByName("FW3"); err != nil {
		t.Error("ProfileByName should be case-insensitive")
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("unknown profile must error")
	}
}

func TestGenerateBasics(t *testing.T) {
	for _, p := range Profiles()[:3] {
		rs := Generate(p, 2000)
		if rs.Len() != 2000 {
			t.Fatalf("%s: got %d rules", p.Name, rs.Len())
		}
		if err := rs.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if rs.NumFields != rules.NumFiveTupleFields {
			t.Fatalf("%s: NumFields = %d", p.Name, rs.NumFields)
		}
		// IP fields must be prefixes (required for ClassBench I/O).
		for i := range rs.Rules {
			for _, d := range []int{rules.FieldSrcIP, rules.FieldDstIP} {
				if _, ok := rs.Rules[i].Fields[d].IsPrefix(); !ok {
					t.Fatalf("%s: rule %d field %d is not a prefix: %v", p.Name, i, d, rs.Rules[i].Fields[d])
				}
			}
			for _, d := range []int{rules.FieldSrcPort, rules.FieldDstPort} {
				if rs.Rules[i].Fields[d].Hi > 65535 {
					t.Fatalf("%s: rule %d port exceeds 16 bits", p.Name, i)
				}
			}
			pr := rs.Rules[i].Fields[rules.FieldProto]
			if !pr.IsFull() && (!pr.IsExact() || pr.Lo > 255) {
				t.Fatalf("%s: rule %d protocol is neither wildcard nor 8-bit exact", p.Name, i)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Profiles()[0]
	a := Generate(p, 500)
	b := Generate(p, 500)
	for i := range a.Rules {
		for d := range a.Rules[i].Fields {
			if a.Rules[i].Fields[d] != b.Rules[i].Fields[d] {
				t.Fatal("generation must be deterministic")
			}
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	// Different profiles must produce different rules. Core rules are
	// wildcard-heavy, so compare whole 5-tuples, where coincidences
	// between independent streams should be rare.
	a := Generate(Profiles()[0], 300)
	b := Generate(Profiles()[1], 300)
	same := 0
	for i := range a.Rules {
		equal := true
		for d := range a.Rules[i].Fields {
			if a.Rules[i].Fields[d] != b.Rules[i].Fields[d] {
				equal = false
				break
			}
		}
		if equal {
			same++
		}
	}
	if same > 30 {
		t.Errorf("%d/300 identical rules between different profiles", same)
	}
}

// TestCoverageImprovesWithScale is the Table 2 trend: 1-iSet coverage grows
// markedly from 1K to 100K rules.
func TestCoverageImprovesWithScale(t *testing.T) {
	p := Profiles()[0]
	covAt := func(n int) float64 {
		rs := Generate(p, n)
		part := iset.Build(rs, iset.Options{MaxISets: 1})
		return part.Coverage()
	}
	small, large := covAt(1000), covAt(50000)
	if large < small+0.15 {
		t.Errorf("1-iSet coverage: 1K=%.2f, 50K=%.2f; want clear growth with scale (Table 2)", small, large)
	}
	if large < 0.6 {
		t.Errorf("1-iSet coverage at 50K = %.2f, want >= 0.6 (Table 2 reports ~0.80 at 100K)", large)
	}
}

// TestTwoISetsNearSaturation mirrors Table 2's 100K row: two iSets reach
// high coverage.
func TestTwoISetsNearSaturation(t *testing.T) {
	rs := Generate(Profiles()[0], 50000)
	cov := iset.CumulativeCoverage(rs, 2)
	if cov[1] < 0.85 {
		t.Errorf("2-iSet coverage = %.3f, want >= 0.85 (Table 2 reports ~0.965 at 100K)", cov[1])
	}
}

func TestMatchingPacketAlwaysMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rs := Generate(Profiles()[5], 500)
	for i := 0; i < 2000; i++ {
		r := &rs.Rules[rng.Intn(rs.Len())]
		p := MatchingPacket(rng, r)
		if !r.Matches(p) {
			t.Fatalf("MatchingPacket(%+v) = %v does not match", r, p)
		}
	}
}

func TestClassBenchFormatRoundTrip(t *testing.T) {
	rs := Generate(Profiles()[3], 200)
	var buf bytes.Buffer
	if err := rules.WriteClassBench(&buf, rs); err != nil {
		t.Fatal(err)
	}
	back, err := rules.ReadClassBench(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != rs.Len() {
		t.Fatalf("round trip: %d != %d", back.Len(), rs.Len())
	}
}
