// Package classbench generates synthetic 5-field rule-sets with the
// structural properties of the ClassBench benchmark (Taylor & Turner, ToN
// 2007) used throughout the paper's evaluation: Access Control List (ACL),
// Firewall (FW) and IP Chain (IPC) application profiles, twelve seeds, and
// sizes from 1K to 500K rules.
//
// ClassBench itself expands vendor seed files that are not redistributable
// here; this generator is engineered to reproduce the properties the
// NuevoMatch evaluation depends on (see DESIGN.md):
//
//   - a small "core" of broad, overlap-heavy rules (short prefixes, port
//     wildcards) whose absolute size grows only slowly with the rule count,
//     so iSet coverage improves with scale exactly as in Table 2;
//   - a long tail of specific rules with near-unique long IP prefixes and
//     application-dependent port structure, giving the high field diversity
//     that lets 1–3 iSets cover ≳90% of large rule-sets;
//   - per-application mixes of exact ports, ranges, and wildcards matching
//     the published ClassBench characterizations (ACL: specific destination
//     ports; FW: wildcard-heavy sources and port ranges; IPC: mixed).
package classbench

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"nuevomatch/internal/rules"
)

// App enumerates the three ClassBench application families.
type App int

// Application families.
const (
	ACL App = iota
	FW
	IPC
)

func (a App) String() string {
	switch a {
	case ACL:
		return "acl"
	case FW:
		return "fw"
	case IPC:
		return "ipc"
	default:
		return fmt.Sprintf("app(%d)", int(a))
	}
}

// Profile parameterizes one synthetic application.
type Profile struct {
	Name string
	App  App
	Seed int64

	// CoreScale modulates the size of the broad-rule core. The core
	// fraction follows CoreScale·(1.55 − 0.3·log10(n)), clamped to
	// [0.03, 0.85]: small sets are dominated by broad overlap-heavy rules
	// and large sets by specific ones, which is what makes iSet coverage
	// improve with scale exactly as Table 2 reports.
	CoreScale float64

	// SrcSpecific / DstSpecific are the [min,max] prefix lengths of
	// specific rules.
	SrcSpecMin, SrcSpecMax int
	DstSpecMin, DstSpecMax int

	// Port class weights for specific rules (source, destination):
	// wildcard, exact well-known, exact ephemeral, high range
	// [1024,65535], narrow range.
	SrcPort, DstPort PortMix

	// ProtoWeights: TCP, UDP, any, ICMP, other.
	ProtoTCP, ProtoUDP, ProtoAny, ProtoICMP, ProtoOther int

	// NestFrac is the probability a specific rule nests under another
	// recently generated prefix instead of opening a fresh network.
	NestFrac float64
}

// PortMix weights the five port classes.
type PortMix struct {
	Wildcard, ExactWellKnown, ExactEphemeral, HighRange, NarrowRange int
}

func (m PortMix) total() int {
	return m.Wildcard + m.ExactWellKnown + m.ExactEphemeral + m.HighRange + m.NarrowRange
}

// Profiles returns the twelve synthetic applications used by the
// evaluation, in the paper's order: ACL1–5, FW1–5, IPC1–2 (Figure 8's
// rule-set name list).
func Profiles() []Profile {
	var out []Profile
	for i := 0; i < 5; i++ {
		out = append(out, aclProfile(i+1))
	}
	for i := 0; i < 5; i++ {
		out = append(out, fwProfile(i+1))
	}
	for i := 0; i < 2; i++ {
		out = append(out, ipcProfile(i+1))
	}
	return out
}

// ProfileByName returns the profile with the given name (e.g. "acl3").
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if strings.EqualFold(p.Name, name) {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("classbench: unknown profile %q", name)
}

func aclProfile(i int) Profile {
	return Profile{
		Name: fmt.Sprintf("acl%d", i), App: ACL, Seed: int64(1000 + i),
		CoreScale:  0.90 + 0.03*float64(i),
		SrcSpecMin: 16, SrcSpecMax: 32,
		DstSpecMin: 24, DstSpecMax: 32,
		SrcPort:  PortMix{Wildcard: 70, ExactWellKnown: 5, ExactEphemeral: 5, HighRange: 15, NarrowRange: 5},
		DstPort:  PortMix{Wildcard: 10, ExactWellKnown: 55, ExactEphemeral: 15, HighRange: 10, NarrowRange: 10},
		ProtoTCP: 60, ProtoUDP: 25, ProtoAny: 8, ProtoICMP: 5, ProtoOther: 2,
		NestFrac: 0.06 + 0.02*float64(i),
	}
}

func fwProfile(i int) Profile {
	return Profile{
		Name: fmt.Sprintf("fw%d", i), App: FW, Seed: int64(2000 + i),
		CoreScale:  1.05 + 0.04*float64(i),
		SrcSpecMin: 8, SrcSpecMax: 28,
		DstSpecMin: 16, DstSpecMax: 32,
		SrcPort:  PortMix{Wildcard: 55, ExactWellKnown: 5, ExactEphemeral: 5, HighRange: 25, NarrowRange: 10},
		DstPort:  PortMix{Wildcard: 25, ExactWellKnown: 30, ExactEphemeral: 10, HighRange: 20, NarrowRange: 15},
		ProtoTCP: 50, ProtoUDP: 25, ProtoAny: 15, ProtoICMP: 7, ProtoOther: 3,
		NestFrac: 0.12 + 0.02*float64(i),
	}
}

func ipcProfile(i int) Profile {
	return Profile{
		Name: fmt.Sprintf("ipc%d", i), App: IPC, Seed: int64(3000 + i),
		CoreScale:  0.98 + 0.04*float64(i),
		SrcSpecMin: 16, SrcSpecMax: 32,
		DstSpecMin: 20, DstSpecMax: 32,
		SrcPort:  PortMix{Wildcard: 50, ExactWellKnown: 15, ExactEphemeral: 10, HighRange: 15, NarrowRange: 10},
		DstPort:  PortMix{Wildcard: 20, ExactWellKnown: 40, ExactEphemeral: 15, HighRange: 15, NarrowRange: 10},
		ProtoTCP: 55, ProtoUDP: 30, ProtoAny: 8, ProtoICMP: 5, ProtoOther: 2,
		NestFrac: 0.08 + 0.03*float64(i),
	}
}

// wellKnownPorts is a representative set of service ports ClassBench seeds
// concentrate on.
var wellKnownPorts = []uint32{
	20, 21, 22, 23, 25, 53, 67, 68, 69, 80, 110, 119, 123, 135, 137, 138,
	139, 143, 161, 162, 179, 389, 443, 445, 465, 500, 514, 515, 587, 631,
	636, 993, 995, 1080, 1194, 1433, 1521, 1723, 1812, 2049, 2082, 2083,
	3128, 3306, 3389, 4500, 5060, 5222, 5432, 5900, 6379, 8080, 8443, 9090,
}

// Generate produces n rules for the profile. Rules get sequential IDs and
// priorities (earlier wins). The same (profile, n) always yields the same
// set.
func Generate(p Profile, n int) *rules.RuleSet {
	rng := rand.New(rand.NewSource(p.Seed*1_000_003 + int64(n)))
	rs := rules.NewRuleSet(rules.NumFiveTupleFields)

	core := coreCount(p, n)

	// Recent specific prefixes for nesting.
	var recentSrc, recentDst []rules.Range

	// Specific rules come first (best priorities), broad core rules last —
	// the standard ACL layout where catch-all rules close the list. This
	// ordering is what makes the early-termination optimization of §4
	// effective: most lookups match a specific rule early, and the broad
	// remainder tables or subtrees can be skipped.
	for i := 0; i < n; i++ {
		if i >= n-core {
			rs.AddAuto(coreRule(rng, p)...)
			continue
		}
		src := specificPrefix(rng, p.SrcSpecMin, p.SrcSpecMax, &recentSrc, p.NestFrac)
		dst := specificPrefix(rng, p.DstSpecMin, p.DstSpecMax, &recentDst, p.NestFrac)
		rs.AddAuto(src, dst, portRange(rng, p.SrcPort), portRange(rng, p.DstPort), proto(rng, p))
	}
	return rs
}

// coreCount sizes the broad-rule core (see Profile.CoreScale).
func coreCount(p Profile, n int) int {
	if n <= 0 {
		return 0
	}
	frac := p.CoreScale * (1.55 - 0.3*math.Log10(float64(n)))
	if frac < 0.03 {
		frac = 0.03
	}
	if frac > 0.85 {
		frac = 0.85
	}
	return int(frac * float64(n))
}

// coreRule emits one broad, overlap-heavy rule: short prefixes from a tiny
// pool, permissive ports.
func coreRule(rng *rand.Rand, p Profile) []rules.Range {
	pool := uint32(rng.Intn(16))
	var src, dst rules.Range
	switch rng.Intn(4) {
	case 0:
		src = rules.FullRange()
	default:
		src = rules.PrefixRange(pool<<28|rng.Uint32()>>8, 4+4*rng.Intn(4)) // /4../16
	}
	switch rng.Intn(4) {
	case 0, 1:
		dst = rules.PrefixRange(pool<<28|rng.Uint32()>>8, 8+4*rng.Intn(3)) // /8../16
	default:
		dst = rules.FullRange()
	}
	var sp, dp rules.Range
	if rng.Intn(3) == 0 {
		sp = rules.Range{Lo: 1024, Hi: 65535}
	} else {
		sp = rules.Range{Lo: 0, Hi: 65535}
	}
	if rng.Intn(3) == 0 {
		dp = rules.ExactRange(wellKnownPorts[rng.Intn(len(wellKnownPorts))])
	} else {
		dp = rules.Range{Lo: 0, Hi: 65535}
	}
	return []rules.Range{src, dst, sp, dp, proto(rng, p)}
}

// specificPrefix draws a long, near-unique prefix, occasionally nesting
// under a recently generated one to create realistic prefix containment.
func specificPrefix(rng *rand.Rand, minLen, maxLen int, recent *[]rules.Range, nestFrac float64) rules.Range {
	plen := minLen + rng.Intn(maxLen-minLen+1)
	var addr uint32
	parentLen := 32
	if len(*recent) > 0 && rng.Float64() < nestFrac {
		parent := (*recent)[rng.Intn(len(*recent))]
		parentLen = parent.CommonPrefixLen()
		addr = parent.Lo
	}
	if parentLen < 32 {
		// Nest strictly inside the parent: longer prefix, shared top bits.
		if plen <= parentLen {
			plen = parentLen + 1 + rng.Intn(32-parentLen)
		}
		addr |= rng.Uint32() & (^uint32(0) >> uint(parentLen))
	} else {
		addr = rng.Uint32()
	}
	pr := rules.PrefixRange(addr, plen)
	*recent = append(*recent, pr)
	if len(*recent) > 64 {
		*recent = (*recent)[1:]
	}
	return pr
}

func portRange(rng *rand.Rand, m PortMix) rules.Range {
	t := m.total()
	if t == 0 {
		return rules.Range{Lo: 0, Hi: 65535}
	}
	x := rng.Intn(t)
	switch {
	case x < m.Wildcard:
		return rules.Range{Lo: 0, Hi: 65535}
	case x < m.Wildcard+m.ExactWellKnown:
		return rules.ExactRange(wellKnownPorts[rng.Intn(len(wellKnownPorts))])
	case x < m.Wildcard+m.ExactWellKnown+m.ExactEphemeral:
		return rules.ExactRange(1024 + uint32(rng.Intn(64512)))
	case x < m.Wildcard+m.ExactWellKnown+m.ExactEphemeral+m.HighRange:
		return rules.Range{Lo: 1024, Hi: 65535}
	default:
		lo := uint32(rng.Intn(65000))
		return rules.Range{Lo: lo, Hi: lo + uint32(rng.Intn(500)) + 1}
	}
}

func proto(rng *rand.Rand, p Profile) rules.Range {
	t := p.ProtoTCP + p.ProtoUDP + p.ProtoAny + p.ProtoICMP + p.ProtoOther
	if t == 0 {
		return rules.FullRange()
	}
	x := rng.Intn(t)
	switch {
	case x < p.ProtoTCP:
		return rules.ExactRange(6)
	case x < p.ProtoTCP+p.ProtoUDP:
		return rules.ExactRange(17)
	case x < p.ProtoTCP+p.ProtoUDP+p.ProtoAny:
		return rules.FullRange()
	case x < p.ProtoTCP+p.ProtoUDP+p.ProtoAny+p.ProtoICMP:
		return rules.ExactRange(1)
	default:
		return rules.ExactRange(uint32([]int{47, 50, 51, 89, 132}[rng.Intn(5)]))
	}
}

// MatchingPacket draws a uniform point inside the rule's hyper-cube —
// the building block of every trace generator (§5.1.1).
func MatchingPacket(rng *rand.Rand, r *rules.Rule) rules.Packet {
	p := make(rules.Packet, len(r.Fields))
	FillMatchingPacket(rng, r, p)
	return p
}

// FillMatchingPacket is MatchingPacket into caller storage.
func FillMatchingPacket(rng *rand.Rand, r *rules.Rule, p rules.Packet) {
	for d, f := range r.Fields {
		p[d] = f.Lo + uint32(rng.Uint64()%f.Size())
	}
}
