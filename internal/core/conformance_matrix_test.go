package core

import (
	"testing"

	"nuevomatch/internal/classbench"
)

// TestConformanceMatrix sweeps every ClassBench application profile through
// every production remainder backend — tuplemerge, rvh, and the auto
// selector — in two lifecycle modes (freshly built, 20% churned), plus a
// churn-with-autopilot-retraining mode on the default backend. Each cell
// asserts that every lookup path (scalar, batch, parallel) agrees exactly
// with the linear reference, and that BuildStats records the backend that
// actually serves. Under -short the sweep is pruned to one profile per
// application family.
func TestConformanceMatrix(t *testing.T) {
	profiles := classbench.Profiles()
	backends := []string{"tuplemerge", "rvh", AutoRemainder}
	size, pool, probes := 240, 400, 300
	if testing.Short() {
		// One profile per family: acl1, fw1, ipc1.
		profiles = []classbench.Profile{profiles[0], profiles[5], profiles[10]}
		size, pool, probes = 150, 240, 150
	}
	for pi, prof := range profiles {
		for _, backend := range backends {
			for _, mode := range []string{"static", "churn"} {
				t.Run(prof.Name+"/"+backend+"/"+mode, func(t *testing.T) {
					opts := fastOpts()
					opts.RemainderName = backend
					d := newChurnDriver(t, prof, size, pool, opts, 100+int64(pi))
					st := d.e.Stats()
					if backend == AutoRemainder {
						if !st.RemainderAutoSelected || st.RemainderBackend == "" {
							t.Fatalf("auto-select not recorded: backend=%q auto=%v",
								st.RemainderBackend, st.RemainderAutoSelected)
						}
					} else if st.RemainderBackend != backend {
						t.Fatalf("BuildStats.RemainderBackend = %q, want %q", st.RemainderBackend, backend)
					}
					if mode == "churn" {
						// Churn 20% of the rule count in interleaved
						// inserts/deletes (lookups verified throughout).
						for d.inserts+d.deletes < 2*size/5 {
							d.step()
						}
					}
					d.verifySweep(probes)
				})
			}
		}

		// Churn with autopilot-driven retraining, on the default backend:
		// the retrain must preserve conformance across the hot swap and
		// keep absorbing updates afterwards.
		t.Run(prof.Name+"/churn+retrain", func(t *testing.T) {
			d := newChurnDriver(t, prof, size, pool, fastOpts(), 100+int64(pi))
			ap := NewAutopilot(d.e, AutopilotPolicy{
				MaxUpdates:   size / 5,
				MinLiveRules: 1,
			})
			for d.inserts+d.deletes < 2*size/5 {
				d.step()
				if d.ops%50 == 0 {
					if _, err := ap.Check(); err != nil {
						t.Fatalf("autopilot check: %v", err)
					}
				}
			}
			if _, err := ap.Check(); err != nil {
				t.Fatalf("final autopilot check: %v", err)
			}
			if st := ap.Stats(); st.Retrains < 1 {
				t.Fatalf("autopilot never retrained under 20%% churn: %+v", st)
			}
			// Keep churning after the swap: the retrained engine must
			// absorb further updates correctly.
			for n := d.inserts + d.deletes; d.inserts+d.deletes < n+size/10; {
				d.step()
			}
			d.verifySweep(probes)
		})
	}
}
