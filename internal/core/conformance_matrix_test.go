package core

import (
	"testing"

	"nuevomatch/internal/classbench"
)

// TestConformanceMatrix sweeps every ClassBench application profile through
// three lifecycle modes — freshly built, 20% churned, and churned with
// autopilot-driven retraining — asserting on each cell that every lookup
// path (scalar, batch, parallel) agrees exactly with the linear reference.
// Under -short the sweep is pruned to one profile per application family.
func TestConformanceMatrix(t *testing.T) {
	profiles := classbench.Profiles()
	size, pool, probes := 240, 400, 300
	if testing.Short() {
		// One profile per family: acl1, fw1, ipc1.
		profiles = []classbench.Profile{profiles[0], profiles[5], profiles[10]}
		size, pool, probes = 150, 240, 150
	}
	for pi, prof := range profiles {
		for _, mode := range []string{"static", "churn", "churn+retrain"} {
			t.Run(prof.Name+"/"+mode, func(t *testing.T) {
				d := newChurnDriver(t, prof, size, pool, fastOpts(), 100+int64(pi))
				switch mode {
				case "static":
					// build only
				case "churn":
					// Churn 20% of the rule count in interleaved
					// inserts/deletes (lookups verified throughout).
					for d.inserts+d.deletes < 2*size/5 {
						d.step()
					}
				case "churn+retrain":
					ap := NewAutopilot(d.e, AutopilotPolicy{
						MaxUpdates:   size / 5,
						MinLiveRules: 1,
					})
					for d.inserts+d.deletes < 2*size/5 {
						d.step()
						if d.ops%50 == 0 {
							if _, err := ap.Check(); err != nil {
								t.Fatalf("autopilot check: %v", err)
							}
						}
					}
					if _, err := ap.Check(); err != nil {
						t.Fatalf("final autopilot check: %v", err)
					}
					if st := ap.Stats(); st.Retrains < 1 {
						t.Fatalf("autopilot never retrained under 20%% churn: %+v", st)
					}
					// Keep churning after the swap: the retrained engine must
					// absorb further updates correctly.
					for n := d.inserts + d.deletes; d.inserts+d.deletes < n+size/10; {
						d.step()
					}
				}
				d.verifySweep(probes)
			})
		}
	}
}
