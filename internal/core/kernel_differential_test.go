package core

import (
	"math/rand"
	"testing"

	"nuevomatch/internal/classbench"
	"nuevomatch/internal/rqrmi"
	"nuevomatch/internal/rules"
)

// TestKernelDifferential builds one engine per ClassBench application
// profile and replays the same trace through the batched lookup path under
// every available inference kernel — the portable pure-Go float32 form and,
// where the build and host support it, the AVX2 assembly — asserting that
// each kernel reproduces the scalar path's verdict packet for packet. The
// kernels are designed bit-identical (kernel32.go), so any disagreement
// here is a kernel bug, not a tolerance issue. Under -short the sweep keeps
// one profile per application family.
func TestKernelDifferential(t *testing.T) {
	profiles := classbench.Profiles()
	size, probes := 300, 400
	if testing.Short() {
		profiles = []classbench.Profile{profiles[0], profiles[5], profiles[10]}
		size, probes = 150, 200
	}
	modes := []string{"go"}
	if rqrmi.HasAsmKernel() {
		modes = append(modes, "asm")
	} else {
		t.Log("assembly kernel unavailable: differential covers the Go kernel only")
	}
	defer func() {
		if err := rqrmi.SetKernelMode("auto"); err != nil {
			t.Fatalf("restoring kernel mode: %v", err)
		}
	}()
	for pi, prof := range profiles {
		t.Run(prof.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7000 + int64(pi)))
			rs := classbench.Generate(prof, size)
			e, err := Build(rs, fastOpts())
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			// Half targeted at random rules, half uniform: cover both the
			// matched and miss paths of every kernel.
			pkts := make([]rules.Packet, probes)
			for i := range pkts {
				if i%2 == 0 {
					r := &rs.Rules[rng.Intn(len(rs.Rules))]
					pkts[i] = classbench.MatchingPacket(rng, r)
				} else {
					p := make(rules.Packet, rs.NumFields)
					for d := range p {
						p[d] = rng.Uint32()
					}
					pkts[i] = p
				}
			}
			want := make([]int, probes)
			for i, p := range pkts {
				want[i] = e.Lookup(p)
			}
			out := make([]int, probes)
			for _, mode := range modes {
				if err := rqrmi.SetKernelMode(mode); err != nil {
					t.Fatalf("SetKernelMode(%q): %v", mode, err)
				}
				e.LookupBatch(pkts, out)
				for i := range out {
					if out[i] != want[i] {
						t.Fatalf("kernel %q: batch lookup %d = %d, scalar = %d (packet %v)",
							mode, i, out[i], want[i], pkts[i])
					}
				}
			}
		})
	}
}
