package core

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"testing"

	"nuevomatch/internal/classbench"
	"nuevomatch/internal/rqrmi"
	"nuevomatch/internal/rules"
)

func newSeedRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Differential fuzzing: byte inputs are decoded into rule-sets, packets, and
// update sequences, the engine is built with a fast training configuration,
// and every lookup path is compared against the linear reference. The seed
// corpus (testdata/fuzz, regenerable via TestRegenFuzzCorpus) is derived
// from the ClassBench profiles so the fuzzer starts from realistic
// ACL/FW/IPC structure instead of random noise.

// fuzzOpts is the cheapest training configuration that still exercises the
// full pipeline (iSets + remainder + overlay).
func fuzzOpts() Options {
	return Options{
		MaxISets:    2,
		MinCoverage: -1, // keep even tiny iSets: maximizes model-path coverage
		RQRMI: rqrmi.Config{
			StageWidths:    []int{1, 2},
			TargetError:    16,
			MaxRetrain:     1,
			MinSamples:     32,
			MaxSamples:     256,
			InternalEpochs: 40,
			LeafEpochs:     60,
			Seed:           7,
			Workers:        1,
		},
	}
}

// fuzzReader cursors over the fuzz input; exhausted input reads as zeros so
// every byte string decodes deterministically.
type fuzzReader struct {
	data []byte
	i    int
}

func (r *fuzzReader) byte() byte {
	if r.i < len(r.data) {
		b := r.data[r.i]
		r.i++
		return b
	}
	return 0
}

func (r *fuzzReader) u32() uint32 {
	return uint32(r.byte())<<24 | uint32(r.byte())<<16 | uint32(r.byte())<<8 | uint32(r.byte())
}

func (r *fuzzReader) rem() int { return len(r.data) - r.i }

// decodeField reads one 9-byte field spec. Class 1 (lo/hi) can express any
// range, so the codec is complete: every rule a ClassBench profile generates
// round-trips exactly through encodeField.
func decodeField(r *fuzzReader) rules.Range {
	cls := r.byte()
	v := r.u32()
	w := r.u32()
	switch cls % 5 {
	case 0:
		return rules.PrefixRange(v, int(w%33))
	case 1:
		if v > w {
			v, w = w, v
		}
		return rules.Range{Lo: v, Hi: w}
	case 2:
		return rules.FullRange()
	case 3:
		return rules.ExactRange(v)
	default: // low-diversity exact: forces overlap
		return rules.ExactRange(v % 4)
	}
}

// encodeField emits a spec decodeField reads back as exactly f.
func encodeField(out []byte, f rules.Range) []byte {
	putU32 := func(out []byte, v uint32) []byte {
		return append(out, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	switch {
	case f.IsFull():
		out = append(out, 2)
		out = putU32(out, 0)
		out = putU32(out, 0)
	case f.IsExact():
		out = append(out, 3)
		out = putU32(out, f.Lo)
		out = putU32(out, 0)
	default:
		out = append(out, 1)
		out = putU32(out, f.Lo)
		out = putU32(out, f.Hi)
	}
	return out
}

const fuzzNumFields = 5

// decodeRuleSet reads a bounded rule-set: count byte then 5 fields per rule.
// Priorities are sequential (unique), so the reference match is unambiguous.
func decodeRuleSet(r *fuzzReader, maxRules int) *rules.RuleSet {
	n := 1 + int(r.byte())%maxRules
	rs := rules.NewRuleSet(fuzzNumFields)
	for i := 0; i < n; i++ {
		fields := make([]rules.Range, fuzzNumFields)
		for d := range fields {
			fields[d] = decodeField(r)
		}
		rs.AddAuto(fields...)
	}
	return rs
}

// encodeRuleSet is decodeRuleSet's inverse for corpus generation (the caller
// guarantees len(rs.Rules) fits the count byte's range).
func encodeRuleSet(out []byte, rs *rules.RuleSet, maxRules int) []byte {
	out = append(out, byte((rs.Len()-1)%maxRules))
	for i := range rs.Rules {
		for _, f := range rs.Rules[i].Fields {
			out = encodeField(out, f)
		}
	}
	return out
}

// decodePacket reads one 20-byte packet.
func decodePacket(r *fuzzReader) rules.Packet {
	p := make(rules.Packet, fuzzNumFields)
	for d := range p {
		p[d] = r.u32()
	}
	return p
}

func encodePacket(out []byte, p rules.Packet) []byte {
	for _, v := range p {
		out = append(out, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	return out
}

// cornerProbes returns each rule's Lo and Hi corner packets — the boundary
// points where off-by-one validation bugs live.
func cornerProbes(rs *rules.RuleSet, cap int) []rules.Packet {
	var out []rules.Packet
	for i := range rs.Rules {
		if len(out)+2 > cap {
			break
		}
		lo := make(rules.Packet, fuzzNumFields)
		hi := make(rules.Packet, fuzzNumFields)
		for d, f := range rs.Rules[i].Fields {
			lo[d], hi[d] = f.Lo, f.Hi
		}
		out = append(out, lo, hi)
	}
	return out
}

// FuzzLookupVsReference decodes a rule-set and probe packets from the input,
// builds the engine, and asserts Lookup and LookupBatch agree with the
// linear reference on every probe — data-driven packets, rule corners, and
// the batched path over all of them.
func FuzzLookupVsReference(f *testing.F) {
	for _, seed := range lookupSeedCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &fuzzReader{data: data}
		rs := decodeRuleSet(r, 48)
		pkts := cornerProbes(rs, 64)
		for len(pkts) < 96 && r.rem() > 0 {
			pkts = append(pkts, decodePacket(r))
		}
		e, err := Build(rs, fuzzOpts())
		if err != nil {
			t.Fatalf("build on %d decoded rules: %v", rs.Len(), err)
		}
		for _, p := range pkts {
			if got, want := e.Lookup(p), rs.MatchID(p); got != want {
				t.Fatalf("Lookup(%v) = %d, want %d (rules %d)", p, got, want, rs.Len())
			}
		}
		out := make([]int, len(pkts))
		e.LookupBatch(pkts, out)
		for i, p := range pkts {
			if want := rs.MatchID(p); out[i] != want {
				t.Fatalf("LookupBatch[%d](%v) = %d, want %d", i, p, out[i], want)
			}
		}
	})
}

// FuzzUpdateChurn decodes a base rule-set plus an update/lookup op stream
// and asserts the engine tracks a linear mirror through inserts, deletes,
// modifies, overlay compactions, and in-place retrains. Inserted rules get
// priorities from two never-colliding counters (one beating every live
// rule, one losing to all), so results stay exact.
func FuzzUpdateChurn(f *testing.F) {
	for _, seed := range churnSeedCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &fuzzReader{data: data}
		base := decodeRuleSet(r, 24)
		// Shift priorities up so the "beats everything" insert counter has
		// room below them.
		for i := range base.Rules {
			base.Rules[i].Priority += 1 << 20
		}
		e, err := Build(base, fuzzOpts())
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		mirror := base.Clone()
		nextID := 1 << 24
		hiPrio := int32(1<<20 - 1) // descending: beats all live rules
		loPrio := int32(1 << 28)   // ascending: loses to all live rules
		var probes []rules.Packet
		retrains := 0

		verify := func(p rules.Packet) {
			if got, want := e.Lookup(p), mirror.MatchID(p); got != want {
				t.Fatalf("Lookup(%v) = %d, want %d (live %d)", p, got, want, mirror.Len())
			}
		}

		for ops := 0; r.rem() > 0 && ops < 96; ops++ {
			switch op := r.byte(); op % 8 {
			case 0, 1: // insert
				fields := make([]rules.Range, fuzzNumFields)
				for d := range fields {
					fields[d] = decodeField(r)
				}
				nr := rules.Rule{ID: nextID, Fields: fields}
				nextID++
				if op&0x10 != 0 {
					nr.Priority = hiPrio
					hiPrio--
				} else {
					nr.Priority = loPrio
					loPrio++
				}
				if err := e.Insert(nr); err != nil {
					t.Fatalf("insert %d: %v", nr.ID, err)
				}
				mirror.Add(nr)
			case 2: // delete
				if mirror.Len() == 0 {
					continue
				}
				i := int(r.byte()) % mirror.Len()
				if err := e.Delete(mirror.Rules[i].ID); err != nil {
					t.Fatalf("delete %d: %v", mirror.Rules[i].ID, err)
				}
				mirror.Rules[i] = mirror.Rules[mirror.Len()-1]
				mirror.Rules = mirror.Rules[:mirror.Len()-1]
			case 3: // modify: mutate one field, keep ID and (unique) priority
				if mirror.Len() == 0 {
					continue
				}
				i := int(r.byte()) % mirror.Len()
				mod := mirror.Rules[i]
				mod.Fields = append([]rules.Range(nil), mod.Fields...)
				mod.Fields[int(r.byte())%fuzzNumFields] = decodeField(r)
				if err := e.Modify(mod); err != nil {
					t.Fatalf("modify %d: %v", mod.ID, err)
				}
				mirror.Rules[i] = mod
			case 4, 5: // verified lookup
				p := decodePacket(r)
				if len(probes) < 64 {
					probes = append(probes, p)
				}
				verify(p)
			case 6: // verified lookups on live-rule corners
				for _, p := range cornerProbes(mirror, 8) {
					verify(p)
				}
			default: // in-place retrain (bounded: training dominates cost)
				if retrains < 2 && mirror.Len() > 0 {
					retrains++
					if _, err := e.Retrain(); err != nil {
						t.Fatalf("retrain: %v", err)
					}
				}
			}
		}

		if got := e.Updates().LiveRules; got != mirror.Len() {
			t.Fatalf("LiveRules = %d, mirror has %d", got, mirror.Len())
		}
		probes = append(probes, cornerProbes(mirror, 32)...)
		for _, p := range probes {
			verify(p)
		}
		if len(probes) > 0 {
			out := make([]int, len(probes))
			e.LookupBatch(probes, out)
			for i, p := range probes {
				if want := mirror.MatchID(p); out[i] != want {
					t.Fatalf("LookupBatch[%d] = %d, want %d", i, out[i], want)
				}
			}
		}
	})
}

// FuzzRemainderDifferential decodes a rule-set plus an update/lookup op
// stream and drives every registered Freezable remainder backend through it
// in lockstep, diffing the live lookups (unbounded, bounded, batched) and
// the periodically re-frozen forms (scalar, batch, skip-list) against the
// linear mirror. Any divergence between a backend and the reference — or
// between two backends, since both are held to the same mirror — fails.
func FuzzRemainderDifferential(f *testing.F) {
	for _, seed := range remainderSeedCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &fuzzReader{data: data}
		base := decodeRuleSet(r, 32)
		// Shift priorities up so the "beats everything" insert counter has
		// room below them.
		for i := range base.Rules {
			base.Rules[i].Priority += 1 << 20
		}

		type backend struct {
			name string
			fz   rules.Freezable
			up   rules.Updatable
			bb   rules.BatchBoundedClassifier
		}
		var backends []backend
		for _, name := range FreezableRemainders() {
			b, ok := remainderBuilder(name)
			if !ok {
				t.Fatalf("backend %q has no builder", name)
			}
			cls, err := b(base)
			if err != nil {
				t.Fatalf("backend %q: build on %d rules: %v", name, base.Len(), err)
			}
			backends = append(backends, backend{
				name: name,
				fz:   cls.(rules.Freezable),
				up:   cls.(rules.Updatable),
				bb:   cls.(rules.BatchBoundedClassifier),
			})
		}
		if len(backends) < 2 {
			t.Fatalf("differential fuzz needs >= 2 backends, got %d", len(backends))
		}
		mirror := base.Clone()

		// refBound is the linear reference for bounded lookups: the best
		// match with Priority strictly below bound.
		refBound := func(p rules.Packet, bound int32) int {
			best, bestPrio := rules.NoMatch, bound
			for i := range mirror.Rules {
				if mr := &mirror.Rules[i]; mr.Priority < bestPrio && mr.Matches(p) {
					best, bestPrio = mr.ID, mr.Priority
				}
			}
			return best
		}
		verify := func(p rules.Packet, bound int32) {
			want := refBound(p, bound)
			for _, b := range backends {
				if got := b.bb.LookupWithBound(p, bound); got != want {
					t.Fatalf("%s: LookupWithBound(%v, %d) = %d, want %d (live %d)",
						b.name, p, bound, got, want, mirror.Len())
				}
			}
		}
		var probes []rules.Packet
		frozenSweep := func() {
			pkts := append(append([]rules.Packet(nil), probes...), cornerProbes(mirror, 16)...)
			if len(pkts) == 0 {
				return
			}
			bounds := make([]int32, len(pkts))
			out := make([]int, len(pkts))
			for _, b := range backends {
				fr := b.fz.Freeze()
				for i, p := range pkts {
					if got, want := fr.Lookup(p, 1<<30, nil), refBound(p, 1<<30); got != want {
						t.Fatalf("%s: frozen Lookup[%d] = %d, want %d", b.name, i, got, want)
					}
					bounds[i] = 1 << 30
					out[i] = -7 // sentinel: untouched unless improved
				}
				fr.LookupBatch(pkts, bounds, nil, out)
				for i, p := range pkts {
					want := refBound(p, 1<<30)
					if want < 0 {
						if out[i] != -7 {
							t.Fatalf("%s: frozen batch wrote %d on a no-match packet", b.name, out[i])
						}
					} else if out[i] != want {
						t.Fatalf("%s: frozen batch[%d] = %d, want %d", b.name, i, out[i], want)
					}
				}
			}
		}

		nextID := 1 << 24
		hiPrio := int32(1<<20 - 1) // descending: beats all live rules
		loPrio := int32(1 << 28)   // ascending: loses to all live rules
		for ops := 0; r.rem() > 0 && ops < 64; ops++ {
			switch op := r.byte(); op % 8 {
			case 0, 1: // insert into every backend
				fields := make([]rules.Range, fuzzNumFields)
				for d := range fields {
					fields[d] = decodeField(r)
				}
				nr := rules.Rule{ID: nextID, Fields: fields}
				nextID++
				if op&0x10 != 0 {
					nr.Priority = hiPrio
					hiPrio--
				} else {
					nr.Priority = loPrio
					loPrio++
				}
				for _, b := range backends {
					if err := b.up.Insert(nr); err != nil {
						t.Fatalf("%s: insert %d: %v", b.name, nr.ID, err)
					}
				}
				mirror.Add(nr)
			case 2: // delete from every backend
				if mirror.Len() == 0 {
					continue
				}
				i := int(r.byte()) % mirror.Len()
				id := mirror.Rules[i].ID
				for _, b := range backends {
					if err := b.up.Delete(id); err != nil {
						t.Fatalf("%s: delete %d: %v", b.name, id, err)
					}
				}
				mirror.Rules[i] = mirror.Rules[mirror.Len()-1]
				mirror.Rules = mirror.Rules[:mirror.Len()-1]
			case 3, 4: // verified lookup, unbounded and bounded
				p := decodePacket(r)
				if len(probes) < 48 {
					probes = append(probes, p)
				}
				verify(p, 1<<30)
				if mirror.Len() > 0 {
					// Bound at a live rule's priority + 1: that rule can still
					// win, everything at or above it is pruned.
					j := int(r.byte()) % mirror.Len()
					verify(p, mirror.Rules[j].Priority+1)
				}
			case 5: // verified lookups on live-rule corners
				for _, p := range cornerProbes(mirror, 8) {
					verify(p, 1<<30)
				}
			case 6: // batched live differential over collected probes
				if len(probes) == 0 {
					continue
				}
				bounds := make([]int32, len(probes))
				for i := range bounds {
					bounds[i] = 1 << 30
				}
				out := make([]int, len(probes))
				for _, b := range backends {
					b.bb.LookupBatchWithBound(probes, bounds, out)
					for i, p := range probes {
						if want := refBound(p, 1<<30); out[i] != want {
							t.Fatalf("%s: live batch[%d] = %d, want %d", b.name, i, out[i], want)
						}
					}
				}
			default: // freeze every backend and sweep the frozen contracts
				frozenSweep()
			}
		}
		frozenSweep()

		// Skip-list differential: freeze, then delete a few live rules and
		// check the frozen forms answer like the post-delete mirror when the
		// deleted IDs ride in the sorted skip list.
		if mirror.Len() > 2 {
			frozen := make([]rules.FrozenClassifier, len(backends))
			for i, b := range backends {
				frozen[i] = b.fz.Freeze()
			}
			var skip []int
			for i := 0; i < 3 && mirror.Len() > 0; i++ {
				j := int(r.byte()) % mirror.Len()
				id := mirror.Rules[j].ID
				at := sort.SearchInts(skip, id)
				skip = append(skip, 0)
				copy(skip[at+1:], skip[at:])
				skip[at] = id
				mirror.Rules[j] = mirror.Rules[mirror.Len()-1]
				mirror.Rules = mirror.Rules[:mirror.Len()-1]
			}
			pkts := append(append([]rules.Packet(nil), probes...), cornerProbes(mirror, 16)...)
			for _, p := range pkts {
				want := refBound(p, 1<<30)
				for i, b := range backends {
					if got := frozen[i].Lookup(p, 1<<30, skip); got != want {
						t.Fatalf("%s: frozen+skip Lookup(%v) = %d, want %d", b.name, p, got, want)
					}
				}
			}
		}
	})
}

// --- ClassBench-derived seed corpus --------------------------------------

// lookupSeedCorpus encodes small slices of each ClassBench application
// family (plus degenerate shapes) into FuzzLookupVsReference inputs.
func lookupSeedCorpus() [][]byte {
	var seeds [][]byte
	for _, name := range []string{"acl1", "acl3", "fw1", "fw4", "ipc1", "ipc2"} {
		prof, err := classbench.ProfileByName(name)
		if err != nil {
			panic(err)
		}
		rs := classbench.Generate(prof, 24)
		var b []byte
		b = encodeRuleSet(b, rs, 48)
		for i := 0; i < 8; i++ {
			b = encodePacket(b, classbench.MatchingPacket(newSeedRand(int64(i)), &rs.Rules[i%rs.Len()]))
		}
		seeds = append(seeds, b)
	}
	// Degenerate: one wildcard rule, identical overlapping rules.
	wild := rules.NewRuleSet(fuzzNumFields)
	wild.AddAuto(rules.FullRange(), rules.FullRange(), rules.FullRange(), rules.FullRange(), rules.FullRange())
	seeds = append(seeds, encodeRuleSet(nil, wild, 48))
	same := rules.NewRuleSet(fuzzNumFields)
	for i := 0; i < 6; i++ {
		same.AddAuto(rules.ExactRange(5), rules.Range{Lo: 10, Hi: 20}, rules.FullRange(), rules.ExactRange(80), rules.ExactRange(6))
	}
	seeds = append(seeds, encodeRuleSet(nil, same, 48))
	return seeds
}

// churnSeedCorpus encodes a ClassBench base set followed by an op stream
// exercising insert/delete/modify/lookup/retrain against profile-shaped
// rules.
func churnSeedCorpus() [][]byte {
	var seeds [][]byte
	for _, name := range []string{"acl2", "fw2", "ipc1"} {
		prof, err := classbench.ProfileByName(name)
		if err != nil {
			panic(err)
		}
		rs := classbench.Generate(prof, 12)
		extra := classbench.Generate(prof, 20)
		var b []byte
		b = encodeRuleSet(b, rs, 24)
		rng := newSeedRand(prof.Seed)
		for i := 12; i < 20; i++ {
			switch i % 4 {
			case 0: // high-priority insert
				b = append(b, 0x10)
				for _, f := range extra.Rules[i].Fields {
					b = encodeField(b, f)
				}
			case 1: // delete
				b = append(b, 2, byte(i))
			case 2: // verified lookup on a matching packet
				b = append(b, 4)
				b = encodePacket(b, classbench.MatchingPacket(rng, &rs.Rules[i%rs.Len()]))
			default: // corner sweep, then retrain
				b = append(b, 6, 7)
			}
		}
		seeds = append(seeds, b)
	}
	return seeds
}

// remainderSeedCorpus encodes a ClassBench base set followed by an op
// stream that hits every FuzzRemainderDifferential op class: inserts at
// both priority extremes, deletes, bounded lookups, corner sweeps, live
// batch differentials, and re-freezes.
func remainderSeedCorpus() [][]byte {
	var seeds [][]byte
	for _, name := range []string{"acl1", "fw3", "ipc2"} {
		prof, err := classbench.ProfileByName(name)
		if err != nil {
			panic(err)
		}
		rs := classbench.Generate(prof, 16)
		extra := classbench.Generate(prof, 28)
		var b []byte
		b = encodeRuleSet(b, rs, 32)
		rng := newSeedRand(prof.Seed + 1)
		for i := 16; i < 28; i++ {
			switch i % 6 {
			case 0: // high-priority insert
				b = append(b, 0x10)
				for _, f := range extra.Rules[i].Fields {
					b = encodeField(b, f)
				}
			case 1: // low-priority insert
				b = append(b, 1)
				for _, f := range extra.Rules[i].Fields {
					b = encodeField(b, f)
				}
			case 2: // delete
				b = append(b, 2, byte(i))
			case 3: // bounded lookup on a matching packet
				b = append(b, 3)
				b = encodePacket(b, classbench.MatchingPacket(rng, &rs.Rules[i%rs.Len()]))
				b = append(b, byte(i)) // bound: a live rule's priority
			case 4: // corner sweep, then live batch differential
				b = append(b, 5, 6)
			default: // freeze + frozen sweep
				b = append(b, 7)
			}
		}
		seeds = append(seeds, b)
	}
	// Degenerate: a single wildcard rule plus deletes that empty the set.
	wild := rules.NewRuleSet(fuzzNumFields)
	wild.AddAuto(rules.FullRange(), rules.FullRange(), rules.FullRange(), rules.FullRange(), rules.FullRange())
	b := encodeRuleSet(nil, wild, 32)
	b = append(b, 5, 7, 2, 0, 7)
	seeds = append(seeds, b)
	return seeds
}

// TestRegenFuzzCorpus writes the ClassBench-derived seeds into
// testdata/fuzz in Go's corpus file format. It only runs when
// REGEN_FUZZ_CORPUS=1; the checked-in files are asserted present (and
// decodable) otherwise.
func TestRegenFuzzCorpus(t *testing.T) {
	targets := map[string][][]byte{
		"FuzzLookupVsReference":     lookupSeedCorpus(),
		"FuzzUpdateChurn":           churnSeedCorpus(),
		"FuzzRemainderDifferential": remainderSeedCorpus(),
	}
	if os.Getenv("REGEN_FUZZ_CORPUS") == "1" {
		for name, seeds := range targets {
			dir := filepath.Join("testdata", "fuzz", name)
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			for i, seed := range seeds {
				body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
				path := filepath.Join(dir, fmt.Sprintf("classbench-seed-%02d", i))
				if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			t.Logf("wrote %d seeds to %s", len(seeds), dir)
		}
		return
	}
	for name, seeds := range targets {
		dir := filepath.Join("testdata", "fuzz", name)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("seed corpus missing (run with REGEN_FUZZ_CORPUS=1 to regenerate): %v", err)
		}
		if len(entries) < len(seeds) {
			t.Errorf("%s: %d corpus files on disk, generator produces %d (regenerate)", name, len(entries), len(seeds))
		}
	}
}
