package core

import (
	"math"
	"time"

	"nuevomatch/internal/rules"
)

// Profile is the per-component runtime breakdown of Figure 14: RQ-RMI
// inference, secondary search, multi-field validation, and the remainder
// classifier, accumulated over a packet trace.
type Profile struct {
	Inference time.Duration
	Search    time.Duration
	Validate  time.Duration
	Remainder time.Duration
	Packets   int
}

// Total returns the summed component time.
func (p Profile) Total() time.Duration {
	return p.Inference + p.Search + p.Validate + p.Remainder
}

// PerPacket returns the per-packet duration of each component in the
// Figure 14 order (remainder, search, validation, inference).
func (p Profile) PerPacket() (remainder, search, validate, inference time.Duration) {
	if p.Packets == 0 {
		return
	}
	n := time.Duration(p.Packets)
	return p.Remainder / n, p.Search / n, p.Validate / n, p.Inference / n
}

// ProfileTrace classifies every packet while timing each pipeline phase
// separately. It is slower than Lookup (four clock reads per packet) and
// exists for the Figure 14 experiment; results match Lookup exactly. Like
// Lookup it runs against one atomically loaded snapshot, lock-free.
func (e *Engine) ProfileTrace(pkts []rules.Packet) (Profile, []int) {
	s := e.snapshot()
	var prof Profile
	out := make([]int, len(pkts))

	type pred struct {
		pred, err int
	}
	preds := make([]pred, len(s.isets))
	entries := make([]int, len(s.isets))

	for pi, p := range pkts {
		best, bestPrio := rules.NoMatch, int32(math.MaxInt32)

		t0 := time.Now()
		for i := range s.isets {
			is := &s.isets[i]
			pr, errB := is.model.Predict(p[is.field])
			preds[i] = pred{pr, errB}
		}
		t1 := time.Now()
		for i := range s.isets {
			is := &s.isets[i]
			if idx, ok := is.model.Search(p[is.field], preds[i].pred, preds[i].err); ok {
				entries[i] = idx
			} else {
				entries[i] = -1
			}
		}
		t2 := time.Now()
		for i := range s.isets {
			if entries[i] < 0 {
				continue
			}
			is := &s.isets[i]
			pos := is.model.Values()[entries[i]]
			if pos < 0 {
				continue
			}
			m := &s.meta[pos]
			if m.live && m.prio < bestPrio && s.matches(pos, p) {
				best, bestPrio = m.id, m.prio
			}
		}
		t3 := time.Now()
		if id := s.rem.lookupWithBound(p, bestPrio); id >= 0 {
			out[pi] = id
		} else {
			out[pi] = best
		}
		t4 := time.Now()

		prof.Inference += t1.Sub(t0)
		prof.Search += t2.Sub(t1)
		prof.Validate += t3.Sub(t2)
		prof.Remainder += t4.Sub(t3)
	}
	prof.Packets = len(pkts)
	return prof, out
}
