package core

import (
	"math"
	"time"

	"nuevomatch/internal/rules"
)

// Profile is the per-component runtime breakdown of Figure 14: RQ-RMI
// inference, secondary search, multi-field validation, and the remainder
// classifier, accumulated over a packet trace.
type Profile struct {
	Inference time.Duration
	Search    time.Duration
	Validate  time.Duration
	Remainder time.Duration
	Packets   int
}

// Total returns the summed component time.
func (p Profile) Total() time.Duration {
	return p.Inference + p.Search + p.Validate + p.Remainder
}

// PerPacket returns the per-packet duration of each component in the
// Figure 14 order (remainder, search, validation, inference).
func (p Profile) PerPacket() (remainder, search, validate, inference time.Duration) {
	if p.Packets == 0 {
		return
	}
	n := time.Duration(p.Packets)
	return p.Remainder / n, p.Search / n, p.Validate / n, p.Inference / n
}

// ProfileTrace classifies every packet while timing each pipeline phase
// separately. It is slower than Lookup (four clock reads per packet) and
// exists for the Figure 14 experiment; results match Lookup exactly.
func (e *Engine) ProfileTrace(pkts []rules.Packet) (Profile, []int) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var prof Profile
	out := make([]int, len(pkts))

	type pred struct {
		pred, err int
	}
	preds := make([]pred, len(e.isets))
	entries := make([]int, len(e.isets))

	for pi, p := range pkts {
		best, bestPrio := rules.NoMatch, int32(math.MaxInt32)

		t0 := time.Now()
		for i := range e.isets {
			is := &e.isets[i]
			pr, errB := is.model.Predict(p[is.field])
			preds[i] = pred{pr, errB}
		}
		t1 := time.Now()
		for i := range e.isets {
			is := &e.isets[i]
			if idx, ok := is.model.Search(p[is.field], preds[i].pred, preds[i].err); ok {
				entries[i] = idx
			} else {
				entries[i] = -1
			}
		}
		t2 := time.Now()
		for i := range e.isets {
			if entries[i] < 0 {
				continue
			}
			is := &e.isets[i]
			pos := is.model.Entries()[entries[i]].Value
			if pos < 0 {
				continue
			}
			r := &e.rs.Rules[pos]
			if r.Priority < bestPrio && r.Matches(p) {
				best, bestPrio = r.ID, r.Priority
			}
		}
		t3 := time.Now()
		out[pi] = e.queryRemainder(p, best, bestPrio)
		t4 := time.Now()

		prof.Inference += t1.Sub(t0)
		prof.Search += t2.Sub(t1)
		prof.Validate += t3.Sub(t2)
		prof.Remainder += t4.Sub(t3)
	}
	prof.Packets = len(pkts)
	return prof, out
}
