package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"nuevomatch/internal/classifiers/conformance"
	"nuevomatch/internal/classifiers/linear"
	"nuevomatch/internal/rules"
)

// withCompactThreshold runs fn with the overlay compaction threshold
// lowered so tests cross it many times.
func withCompactThreshold(n int, fn func()) {
	old := overlayCompactThreshold
	overlayCompactThreshold = n
	defer func() { overlayCompactThreshold = old }()
	fn()
}

// TestOverlayConformanceAgainstLinear drives the engine through interleaved
// inserts and deletes that repeatedly trip overlay compaction, checking
// scalar and batched lookups against the linear reference classifier built
// over the live rules after every burst.
func TestOverlayConformanceAgainstLinear(t *testing.T) {
	withCompactThreshold(8, func() {
		rng := rand.New(rand.NewSource(81))
		rs := structuredRuleSet(rng, 300)
		e, err := Build(rs, fastOpts())
		if err != nil {
			t.Fatal(err)
		}
		if e.remFrozen == nil {
			t.Fatal("default TupleMerge remainder must be frozen")
		}

		live := make(map[int]rules.Rule, rs.Len())
		for i := range rs.Rules {
			live[rs.Rules[i].ID] = rs.Rules[i]
		}
		nextID := 50000
		// Priorities are drawn unique so the engine and the reference can
		// never disagree by a tie.
		for step := 0; step < 40; step++ {
			for burst := 0; burst < 10; burst++ {
				if rng.Intn(2) == 0 || len(live) < 50 {
					f := make([]rules.Range, 5)
					for d := range f {
						lo := rng.Uint32() >> 1
						f[d] = rules.Range{Lo: lo, Hi: lo + rng.Uint32()>>8}
					}
					r := rules.Rule{ID: nextID, Priority: int32(10000 + nextID), Fields: f}
					nextID++
					if err := e.Insert(r); err != nil {
						t.Fatal(err)
					}
					live[r.ID] = r
				} else {
					for id := range live {
						if err := e.Delete(id); err != nil {
							t.Fatal(err)
						}
						delete(live, id)
						break
					}
				}
			}

			ref := rules.NewRuleSet(5)
			for _, r := range live {
				ref.Add(r)
			}
			lin, err := linear.Build(ref)
			if err != nil {
				t.Fatal(err)
			}
			pkts := make([]rules.Packet, 64)
			want := make([]int, len(pkts))
			for i := range pkts {
				pkts[i] = conformance.RandomPacket(rng, ref)
				want[i] = lin.Lookup(pkts[i])
			}
			out := make([]int, len(pkts))
			e.LookupBatch(pkts, out)
			for i, p := range pkts {
				if got := e.Lookup(p); got != want[i] {
					t.Fatalf("step %d: Lookup(%v) = %d, linear = %d", step, p, got, want[i])
				}
				if out[i] != want[i] {
					t.Fatalf("step %d: LookupBatch(%v) = %d, linear = %d", step, p, out[i], want[i])
				}
			}
		}
		if e.Updates().OverlayCompactions == 0 {
			t.Fatal("test never exercised overlay compaction")
		}
	})
}

// TestOverlayDeleteThenReuseID exercises the ID-reuse corner: deleting a
// frozen remainder rule puts its ID on the skip list, and re-inserting a
// different rule under the same ID must be served from the overlay while
// the stale frozen copy stays masked.
func TestOverlayDeleteThenReuseID(t *testing.T) {
	withCompactThreshold(1<<20, func() { // never compact: keep both delta sides live
		rng := rand.New(rand.NewSource(82))
		rs := structuredRuleSet(rng, 200)
		e, err := Build(rs, fastOpts())
		if err != nil {
			t.Fatal(err)
		}
		// Pick a rule the remainder serves (not in an iSet).
		victim := -1
		for i := range rs.Rules {
			if _, in := e.inISet[rs.Rules[i].ID]; !in {
				victim = i
				break
			}
		}
		if victim < 0 {
			t.Skip("no remainder rule in this draw")
		}
		old := rs.Rules[victim]
		p := make(rules.Packet, 5)
		for d, f := range old.Fields {
			p[d] = f.Lo
		}
		if err := e.Delete(old.ID); err != nil {
			t.Fatal(err)
		}
		// Same ID, disjoint matching set, top priority.
		repl := rules.Rule{ID: old.ID, Priority: -5, Fields: []rules.Range{
			rules.ExactRange(123), rules.ExactRange(456), rules.ExactRange(7),
			rules.ExactRange(8), rules.ExactRange(9),
		}}
		if err := e.Insert(repl); err != nil {
			t.Fatal(err)
		}
		ref := rules.NewRuleSet(5)
		for i := range rs.Rules {
			if i == victim {
				ref.Add(repl)
			} else {
				ref.Add(rs.Rules[i])
			}
		}
		if got, want := e.Lookup(p), ref.MatchID(p); got != want {
			t.Fatalf("old matching set: Lookup = %d, want %d (stale frozen copy resurfaced?)", got, want)
		}
		if got := e.Lookup(rules.Packet{123, 456, 7, 8, 9}); got != repl.ID {
			t.Fatalf("new matching set: Lookup = %d, want %d", got, repl.ID)
		}
	})
}

// TestConcurrentUpdatesVsFrozenLookups hammers Lookup/LookupBatch from
// reader goroutines while the writer churns the remainder hard enough to
// cross the compaction threshold repeatedly. Under -race this checks that
// freeze/overlay publication is data-race-free and readers always see a
// consistent (frozen, overlay) pair.
func TestConcurrentUpdatesVsFrozenLookups(t *testing.T) {
	withCompactThreshold(6, func() {
		rng := rand.New(rand.NewSource(83))
		rs := structuredRuleSet(rng, 250)
		e, err := Build(rs, fastOpts())
		if err != nil {
			t.Fatal(err)
		}
		everLive := make(map[int]bool, rs.Len())
		for i := range rs.Rules {
			everLive[rs.Rules[i].ID] = true
		}
		const churnIDs = 300
		for i := 0; i < churnIDs; i++ {
			everLive[90000+i] = true
		}
		pkts := make([]rules.Packet, 256)
		for i := range pkts {
			pkts[i] = conformance.RandomPacket(rng, rs)
		}

		var stop atomic.Bool
		var wg sync.WaitGroup
		errc := make(chan error, 8)
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				out := make([]int, 64)
				for !stop.Load() {
					if r.Intn(2) == 0 {
						p := pkts[r.Intn(len(pkts))]
						if id := e.Lookup(p); id >= 0 && !everLive[id] {
							select {
							case errc <- fmt.Errorf("Lookup returned unknown ID %d", id):
							default:
							}
							return
						}
					} else {
						off := r.Intn(len(pkts) - 64)
						e.LookupBatch(pkts[off:off+64], out)
						for _, id := range out {
							if id >= 0 && !everLive[id] {
								select {
								case errc <- fmt.Errorf("LookupBatch returned unknown ID %d", id):
								default:
								}
								return
							}
						}
					}
				}
			}(int64(800 + g))
		}

		wrng := rand.New(rand.NewSource(84))
		inserted := make([]int, 0, churnIDs)
		next := 0
		for step := 0; step < 600; step++ {
			if next < churnIDs && (len(inserted) == 0 || wrng.Intn(2) == 0) {
				id := 90000 + next
				next++
				f := make([]rules.Range, 5)
				for d := range f {
					lo := wrng.Uint32() >> 1
					f[d] = rules.Range{Lo: lo, Hi: lo + wrng.Uint32()>>10}
				}
				if err := e.Insert(rules.Rule{ID: id, Priority: int32(wrng.Intn(1000)), Fields: f}); err != nil {
					t.Fatal(err)
				}
				inserted = append(inserted, id)
			} else {
				i := wrng.Intn(len(inserted))
				if err := e.Delete(inserted[i]); err != nil {
					t.Fatal(err)
				}
				inserted[i] = inserted[len(inserted)-1]
				inserted = inserted[:len(inserted)-1]
			}
		}
		stop.Store(true)
		wg.Wait()
		select {
		case err := <-errc:
			t.Fatal(err)
		default:
		}
		if e.Updates().OverlayCompactions == 0 {
			t.Fatal("writer never crossed the compaction threshold")
		}
	})
}
