package core

import (
	"encoding/json"
	"math/bits"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"nuevomatch/internal/classbench"
	"nuevomatch/internal/classifiers/conformance"
	"nuevomatch/internal/rules"
)

// clusterDriver mirrors churnDriver for a Cluster: an interleaved
// insert/delete/lookup workload with an exact linear-reference mirror.
// Priorities are globally unique (built rules even, pool rules odd), so
// results must equal the mirror's MatchID exactly.
type clusterDriver struct {
	t      *testing.T
	c      *Cluster
	mirror *rules.RuleSet
	pool   []rules.Rule
	rng    *rand.Rand

	ops, lookups, inserts, deletes int
}

func newClusterDriver(t *testing.T, prof classbench.Profile, size, poolSize int, copts ClusterOptions, seed int64) *clusterDriver {
	t.Helper()
	all := classbench.Generate(prof, size+poolSize)
	base := rules.NewRuleSet(all.NumFields)
	for i := 0; i < size; i++ {
		r := all.Rules[i]
		r.Priority = int32(2 * (i + 1))
		base.Add(r)
	}
	pool := make([]rules.Rule, 0, poolSize)
	for i := size; i < size+poolSize; i++ {
		r := all.Rules[i]
		r.ID = 1_000_000 + i
		r.Priority = int32(2*(i-size) + 1)
		pool = append(pool, r)
	}
	c, err := BuildCluster(base, copts)
	if err != nil {
		t.Fatalf("%s: build cluster: %v", prof.Name, err)
	}
	return &clusterDriver{
		t: t, c: c, mirror: base.Clone(), pool: pool,
		rng: rand.New(rand.NewSource(seed)),
	}
}

func (d *clusterDriver) packet() rules.Packet {
	p := make(rules.Packet, d.mirror.NumFields)
	if d.mirror.Len() > 0 && d.rng.Intn(4) != 0 {
		classbench.FillMatchingPacket(d.rng, &d.mirror.Rules[d.rng.Intn(d.mirror.Len())], p)
		return p
	}
	for i := range p {
		p[i] = d.rng.Uint32()
	}
	return p
}

func (d *clusterDriver) step() {
	d.ops++
	switch x := d.rng.Float64(); {
	case x < 0.60:
		d.lookups++
		p := d.packet()
		if got, want := d.c.Lookup(p), d.mirror.MatchID(p); got != want {
			d.t.Fatalf("op %d: cluster Lookup(%v) = %d, want %d", d.ops, p, got, want)
		}
	case x < 0.80 && len(d.pool) > 0:
		r := d.pool[len(d.pool)-1]
		d.pool = d.pool[:len(d.pool)-1]
		if err := d.c.Insert(r); err != nil {
			d.t.Fatalf("op %d: cluster insert %d: %v", d.ops, r.ID, err)
		}
		d.mirror.Add(r)
		d.inserts++
	default:
		if d.mirror.Len() <= 16 {
			return
		}
		i := d.rng.Intn(d.mirror.Len())
		id := d.mirror.Rules[i].ID
		if err := d.c.Delete(id); err != nil {
			d.t.Fatalf("op %d: cluster delete %d: %v", d.ops, id, err)
		}
		d.mirror.Rules[i] = d.mirror.Rules[d.mirror.Len()-1]
		d.mirror.Rules = d.mirror.Rules[:d.mirror.Len()-1]
		d.deletes++
	}
}

// verifySweep checks the routed scalar path and the scatter/gather batch
// path against the mirror over n fresh probes.
func (d *clusterDriver) verifySweep(n int) {
	d.t.Helper()
	pkts := make([]rules.Packet, n)
	want := make([]int, n)
	for i := range pkts {
		pkts[i] = d.packet()
		want[i] = d.mirror.MatchID(pkts[i])
	}
	out := make([]int, n)
	d.c.LookupBatch(pkts, out)
	for i := range pkts {
		if got := d.c.Lookup(pkts[i]); got != want[i] {
			d.t.Fatalf("sweep: cluster Lookup(%v) = %d, want %d", pkts[i], got, want[i])
		}
		if out[i] != want[i] {
			d.t.Fatalf("sweep: cluster LookupBatch[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}

// clusterTestOpts requests width shards over the engine test options.
func clusterTestOpts(width int, kind PartitionKind) ClusterOptions {
	return ClusterOptions{
		Shards:         width,
		PartitionField: AutoPartitionField,
		Kind:           kind,
		Engine:         fastOpts(),
	}
}

// TestClusterSingleShardEquivalence: a 1-shard cluster must behave exactly
// like the unsharded engine — same winners on every path, every profile.
// This is the differential baseline the sharded configurations build on.
func TestClusterSingleShardEquivalence(t *testing.T) {
	profiles := classbench.Profiles()
	size := 200
	if testing.Short() {
		profiles = []classbench.Profile{profiles[0], profiles[5], profiles[10]}
	}
	for pi, prof := range profiles {
		t.Run(prof.Name, func(t *testing.T) {
			rs := classbench.Generate(prof, size)
			for i := range rs.Rules {
				rs.Rules[i].Priority = int32(i + 1)
			}
			e, err := Build(rs.Clone(), fastOpts())
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			c, err := BuildCluster(rs, clusterTestOpts(1, PartitionRange))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if c.NumShards() != 1 {
				t.Fatalf("NumShards = %d, want 1", c.NumShards())
			}
			rng := rand.New(rand.NewSource(300 + int64(pi)))
			pkts := make([]rules.Packet, 400)
			for i := range pkts {
				p := make(rules.Packet, rs.NumFields)
				if rng.Intn(4) != 0 {
					classbench.FillMatchingPacket(rng, &rs.Rules[rng.Intn(rs.Len())], p)
				} else {
					for d := range p {
						p[d] = rng.Uint32()
					}
				}
				pkts[i] = p
			}
			outE := make([]int, len(pkts))
			outC := make([]int, len(pkts))
			e.LookupBatch(pkts, outE)
			c.LookupBatch(pkts, outC)
			for i, p := range pkts {
				if ce, cc := e.Lookup(p), c.Lookup(p); ce != cc {
					t.Fatalf("Lookup(%v): engine %d, 1-shard cluster %d", p, ce, cc)
				}
				if outE[i] != outC[i] {
					t.Fatalf("LookupBatch[%d]: engine %d, 1-shard cluster %d", i, outE[i], outC[i])
				}
			}
		})
	}
}

// TestClusterConformanceMatrix sweeps every ClassBench profile through a
// multi-shard cluster in static and 20%-churned states, for both partition
// strategies, asserting the routed scalar path and the scatter/gather batch
// path agree exactly with the linear reference. This is the cluster
// acceptance criterion: N >= 2 shards, lookup-equivalent to a single table.
func TestClusterConformanceMatrix(t *testing.T) {
	profiles := classbench.Profiles()
	size, pool := 240, 200
	if testing.Short() {
		profiles = []classbench.Profile{profiles[0], profiles[5], profiles[10]}
		size, pool = 150, 120
	}
	for pi, prof := range profiles {
		for _, kind := range []PartitionKind{PartitionRange, PartitionHash} {
			for _, mode := range []string{"static", "churn"} {
				t.Run(prof.Name+"/"+kind.String()+"/"+mode, func(t *testing.T) {
					d := newClusterDriver(t, prof, size, pool, clusterTestOpts(3, kind), 500+int64(pi))
					defer d.c.Close()
					if kind == PartitionHash && d.c.NumShards() < 2 {
						t.Fatalf("hash cluster built %d shards, want 3", d.c.NumShards())
					}
					if mode == "churn" {
						for d.inserts+d.deletes < 2*size/5 {
							d.step()
						}
					}
					d.verifySweep(300)

					st := d.c.Stats()
					if st.LiveRules != d.mirror.Len() {
						t.Errorf("LiveRules = %d, mirror has %d", st.LiveRules, d.mirror.Len())
					}
					total := 0
					for _, n := range st.ShardRules {
						total += n
					}
					if want := st.LiveRules + replicaSurplus(d.c); total != want {
						t.Errorf("shard rule counts sum to %d, want %d (live %d + replica surplus)", total, want, st.LiveRules)
					}
				})
			}
		}
	}
}

// replicaSurplus counts the extra copies replication created (replicas
// beyond each rule's first).
func replicaSurplus(c *Cluster) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	surplus := 0
	for _, mask := range c.shardsOf {
		surplus += bits.OnesCount64(mask) - 1
	}
	return surplus
}

// TestClusterSpanningRules pins the replication invariant on handcrafted
// rules that straddle the range partitioner's cut points: a spanner must be
// present in every shard its range overlaps, win by priority from any of
// them, and vanish from all of them on delete.
func TestClusterSpanningRules(t *testing.T) {
	rs := rules.NewRuleSet(2)
	// Field 0 carries the partition; field 1 is a don't-care. Narrow rules
	// seed the cut distribution at 100k intervals.
	for i := 0; i < 40; i++ {
		lo := uint32(i * 100_000)
		rs.Add(rules.Rule{
			ID: i, Priority: int32(1000 + i),
			Fields: []rules.Range{{Lo: lo, Hi: lo + 50_000}, rules.FullRange()},
		})
	}
	// A global wildcard spanner with poor priority and a tight high-priority
	// spanner crossing the middle of the value space.
	wildID, tightID := 900, 901
	rs.Add(rules.Rule{ID: wildID, Priority: 5000,
		Fields: []rules.Range{rules.FullRange(), rules.FullRange()}})
	rs.Add(rules.Rule{ID: tightID, Priority: 1,
		Fields: []rules.Range{{Lo: 1_500_000, Hi: 2_500_000}, rules.FullRange()}})

	c, err := BuildCluster(rs, ClusterOptions{
		Shards: 4, PartitionField: 0, Kind: PartitionRange, Engine: fastOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.NumShards() < 2 {
		t.Fatalf("cluster degenerated to %d shards", c.NumShards())
	}

	c.mu.Lock()
	wildMask, tightMask := c.shardsOf[wildID], c.shardsOf[tightID]
	c.mu.Unlock()
	if want := c.part.allMask(); wildMask != want {
		t.Fatalf("wildcard spanner mask %#x, want every shard %#x", wildMask, want)
	}
	if bits.OnesCount64(tightMask) != int(bitsSpanned(c, 1_500_000, 2_500_000)) {
		t.Fatalf("tight spanner mask %#x does not match its value span", tightMask)
	}

	mirror := rs.Clone()
	probe := func() {
		t.Helper()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 2000; i++ {
			p := rules.Packet{rng.Uint32(), rng.Uint32()}
			if got, want := c.Lookup(p), mirror.MatchID(p); got != want {
				t.Fatalf("Lookup(%v) = %d, want %d", p, got, want)
			}
		}
		// Exact cut-point values are the off-by-one hot spots.
		for _, cut := range c.part.cuts {
			for _, v := range []uint32{cut - 1, cut, cut + 1} {
				p := rules.Packet{v, 0}
				if got, want := c.Lookup(p), mirror.MatchID(p); got != want {
					t.Fatalf("Lookup at cut value %d = %d, want %d", v, got, want)
				}
			}
		}
	}
	probe()

	// Deleting a spanner must remove every replica.
	if err := c.Delete(tightID); err != nil {
		t.Fatal(err)
	}
	for i := range mirror.Rules {
		if mirror.Rules[i].ID == tightID {
			mirror.Rules = append(mirror.Rules[:i], mirror.Rules[i+1:]...)
			break
		}
	}
	probe()

	// Reinserting with a different span re-replicates to the new shards.
	respan := rules.Rule{ID: tightID, Priority: 1,
		Fields: []rules.Range{{Lo: 0, Hi: 3_900_000}, rules.FullRange()}}
	if err := c.Insert(respan); err != nil {
		t.Fatal(err)
	}
	mirror.Add(respan)
	probe()
}

// bitsSpanned counts the shards the value range [lo, hi] overlaps.
func bitsSpanned(c *Cluster, lo, hi uint32) int {
	return c.part.shardOfValue(hi) - c.part.shardOfValue(lo) + 1
}

// TestClusterPerShardRetrainChurn drives sustained churn with a per-shard
// autopilot supervising every shard, concurrent lookers racing the swaps,
// and every driver lookup verified. Exercised under -race in CI: retrains
// hot-swap one shard while the other shards and the cluster's routing keep
// serving — the isolation property the sharded autopilot exists for.
func TestClusterPerShardRetrainChurn(t *testing.T) {
	prof, err := classbench.ProfileByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	size, pool, churn := 300, 600, 600
	if testing.Short() {
		size, pool, churn = 150, 300, 300
	}
	d := newClusterDriver(t, prof, size, pool, clusterTestOpts(3, PartitionRange), 99)
	defer d.c.Close()

	aps := make([]*Autopilot, d.c.NumShards())
	for s := range aps {
		aps[s] = NewAutopilot(d.c.ShardEngine(s), AutopilotPolicy{
			MaxUpdates:   size / 6,
			MinLiveRules: 1,
			Interval:     -1, // Check-driven for determinism
		})
	}

	// Concurrent lookers hammer the routed and batch paths while the driver
	// churns and triggers retrains.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var probes atomic.Int64
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			pkts := make([]rules.Packet, 64)
			out := make([]int, 64)
			for i := range pkts {
				pkts[i] = rules.Packet{rng.Uint32(), rng.Uint32(), rng.Uint32(), rng.Uint32(), rng.Uint32()}
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				d.c.LookupBatch(pkts, out)
				for _, p := range pkts {
					d.c.Lookup(p)
				}
				probes.Add(int64(len(pkts)))
			}
		}(int64(1000 + w))
	}

	for d.inserts+d.deletes < churn {
		d.step()
		if d.ops%25 == 0 {
			for _, ap := range aps {
				if _, err := ap.Check(); err != nil {
					t.Fatalf("autopilot check: %v", err)
				}
			}
		}
	}
	close(stop)
	wg.Wait()

	retrains := 0
	for s, ap := range aps {
		st := ap.Stats()
		retrains += st.Retrains
		if st.Failures > 0 {
			t.Errorf("shard %d autopilot failures: %+v", s, st)
		}
	}
	if retrains < 1 {
		t.Fatalf("no shard retrained under %d updates of churn", churn)
	}
	if probes.Load() == 0 {
		t.Fatal("concurrent lookers made no progress")
	}
	d.verifySweep(400)
}

// TestClusterSaveLoadRoundTrip proves SaveDir → LoadClusterDir equivalence
// on a drifted cluster, plus the loader's integrity handling: corrupt
// shard bytes quarantine the shard (served correctly from the rules
// artifact's fallback) while a tampered manifest or shard files swapped
// under the manifest must fail to load rather than misroute.
func TestClusterSaveLoadRoundTrip(t *testing.T) {
	prof, err := classbench.ProfileByName("fw3")
	if err != nil {
		t.Fatal(err)
	}
	d := newClusterDriver(t, prof, 200, 160, clusterTestOpts(3, PartitionRange), 41)
	defer d.c.Close()
	for d.inserts+d.deletes < 70 {
		d.step()
	}

	dir := t.TempDir()
	if err := d.c.SaveDir(dir); err != nil {
		t.Fatalf("SaveDir: %v", err)
	}
	loaded, err := LoadClusterDir(dir, nil)
	if err != nil {
		t.Fatalf("LoadClusterDir: %v", err)
	}
	defer loaded.Close()

	if got, want := loaded.NumShards(), d.c.NumShards(); got != want {
		t.Fatalf("loaded %d shards, saved %d", got, want)
	}
	so, sl := d.c.Stats(), loaded.Stats()
	if sl.LiveRules != so.LiveRules || sl.Replicated != so.Replicated {
		t.Errorf("stats drifted: saved %+v loaded %+v", so, sl)
	}
	pkts := make([]rules.Packet, 500)
	outS := make([]int, len(pkts))
	outL := make([]int, len(pkts))
	for i := range pkts {
		pkts[i] = d.packet()
	}
	d.c.LookupBatch(pkts, outS)
	loaded.LookupBatch(pkts, outL)
	for i, p := range pkts {
		want := d.mirror.MatchID(p)
		if outS[i] != want || outL[i] != want {
			t.Fatalf("batch[%d]: saved %d loaded %d want %d", i, outS[i], outL[i], want)
		}
		if got := loaded.Lookup(p); got != want {
			t.Fatalf("loaded.Lookup(%v) = %d, want %d", p, got, want)
		}
	}

	// The loaded cluster is live: it takes updates and per-shard retrains.
	if err := loaded.Insert(rules.Rule{ID: 42_000_000, Priority: 3,
		Fields: wildcardFields(d.mirror.NumFields)}); err != nil {
		t.Fatalf("insert into loaded cluster: %v", err)
	}
	if _, err := loaded.RetrainShard(0); err != nil {
		t.Fatalf("retrain shard 0 of loaded cluster: %v", err)
	}
	if got := loaded.Lookup(make(rules.Packet, d.mirror.NumFields)); got == rules.NoMatch {
		t.Fatalf("inserted wildcard invisible after retrain: got NoMatch")
	}

	// Tampering targets live inside the current generation directory.
	gdir, err := ClusterCurrentDir(dir)
	if err != nil {
		t.Fatalf("ClusterCurrentDir: %v", err)
	}

	// Corrupt one shard file: the engine codec's checksum rejects it, and
	// the loader quarantines the shard — serving it correctly from the
	// rules artifact's remainder-only fallback instead of failing the load.
	corrupt := filepath.Join(gdir, shardFileName(1))
	blob, err := os.ReadFile(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), blob...)
	mut[len(mut)/3] ^= 0x40
	if err := os.WriteFile(corrupt, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	qc, err := LoadClusterDir(dir, nil)
	if err != nil {
		t.Fatalf("load with one corrupt shard should quarantine, got error: %v", err)
	}
	if got := qc.QuarantinedShards(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("quarantined shards = %v, want [1]", got)
	}
	if h := qc.Health(); h.State != Degraded {
		t.Fatalf("health after quarantined load = %v, want Degraded", h)
	}
	for i, p := range pkts {
		if got := qc.Lookup(p); got != d.mirror.MatchID(p) {
			t.Fatalf("quarantined cluster Lookup[%d] = %d, want %d", i, got, d.mirror.MatchID(p))
		}
	}
	qc.Close()
	if err := os.WriteFile(corrupt, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	// Swap two shard files under the manifest: every rule still loads, but
	// replicas no longer sit where the partitioner routes them — the
	// invariant check must refuse.
	a, b := filepath.Join(gdir, shardFileName(0)), filepath.Join(gdir, shardFileName(1))
	blobA, _ := os.ReadFile(a)
	blobB, _ := os.ReadFile(b)
	if err := os.WriteFile(a, blobB, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, blobA, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadClusterDir(dir, nil); err == nil {
		t.Fatal("cluster with swapped shard files loaded without error")
	}
	if err := os.WriteFile(a, blobA, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, blobB, 0o644); err != nil {
		t.Fatal(err)
	}

	// Tamper with the manifest's routing: cuts that do not match the shard
	// contents must be rejected by the same invariant.
	mpath := filepath.Join(gdir, ClusterManifestName)
	mdata, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(mdata, &m); err != nil {
		t.Fatal(err)
	}
	if cuts, ok := m["cuts"].([]any); ok && len(cuts) >= 1 {
		cuts[0] = float64(1) // shift the first cut to value 1
		tampered, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(mpath, tampered, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadClusterDir(dir, nil); err == nil {
			t.Fatal("cluster with tampered manifest cuts loaded without error")
		}
	}
}

// wildcardFields builds an all-wildcard field list.
func wildcardFields(n int) []rules.Range {
	f := make([]rules.Range, n)
	for i := range f {
		f[i] = rules.FullRange()
	}
	return f
}

// TestClusterLookupPathsZeroAlloc extends the zero-alloc guard to the
// cluster: routing is arithmetic, the scatter/gather scratch is pooled, and
// the per-shard sub-batches run the engines' own zero-alloc paths.
func TestClusterLookupPathsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are only guaranteed without race instrumentation")
	}
	rng := rand.New(rand.NewSource(17))
	rs := structuredRuleSet(rng, 400)
	c, err := BuildCluster(rs, ClusterOptions{
		Shards: 3, PartitionField: AutoPartitionField, Kind: PartitionRange, Engine: fastOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	pkts := make([]rules.Packet, 256)
	for i := range pkts {
		pkts[i] = conformance.RandomPacket(rng, rs)
	}
	var i int
	if avg := testing.AllocsPerRun(200, func() {
		c.Lookup(pkts[i%len(pkts)])
		i++
	}); avg != 0 {
		t.Errorf("cluster Lookup allocates %.2f objects per call, want 0", avg)
	}
	out := make([]int, 128)
	// Warm the scratch pool and workers before measuring.
	for j := 0; j < 8; j++ {
		c.LookupBatch(pkts[:128], out)
		c.LookupBatch(pkts[128:], out)
	}
	var j int
	if avg := testing.AllocsPerRun(100, func() {
		off := (j % 2) * 128
		c.LookupBatch(pkts[off:off+128], out)
		j++
	}); avg != 0 {
		t.Errorf("cluster LookupBatch allocates %.2f objects per call, want 0", avg)
	}
}

// --- manifest codec -------------------------------------------------------

// validManifestJSON builds a well-formed manifest document for mutation.
func validManifestJSON(t *testing.T) []byte {
	t.Helper()
	m := clusterManifest{
		Format:  clusterManifestFormat,
		Version: clusterManifestVersion,
		Kind:    "range",
		Field:   0,
		Cuts:    []uint32{1000, 2000},
		Shards:  []string{"shard-00.nm", "shard-01.nm", "shard-02.nm"},
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestReadClusterManifestRejections table-tests the manifest validator.
func TestReadClusterManifestRejections(t *testing.T) {
	good := validManifestJSON(t)
	if _, err := readClusterManifest(good); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
	bad := []struct {
		name string
		mut  func(m map[string]any)
	}{
		{"wrong format", func(m map[string]any) { m["format"] = "tarball" }},
		{"future version", func(m map[string]any) { m["version"] = 99 }},
		{"unknown kind", func(m map[string]any) { m["partition_kind"] = "rendezvous" }},
		{"negative field", func(m map[string]any) { m["partition_field"] = -1 }},
		{"huge field", func(m map[string]any) { m["partition_field"] = 1000 }},
		{"no shards", func(m map[string]any) { m["shards"] = []any{} }},
		{"cut count mismatch", func(m map[string]any) { m["cuts"] = []any{float64(5)} }},
		{"non-increasing cuts", func(m map[string]any) { m["cuts"] = []any{float64(9), float64(9)} }},
		{"path traversal", func(m map[string]any) {
			m["shards"] = []any{"../evil.nm", "b.nm", "c.nm"}
		}},
		{"absolute path", func(m map[string]any) {
			m["shards"] = []any{"/etc/passwd", "b.nm", "c.nm"}
		}},
		{"duplicate shard file", func(m map[string]any) {
			m["shards"] = []any{"a.nm", "a.nm", "c.nm"}
		}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			var m map[string]any
			if err := json.Unmarshal(good, &m); err != nil {
				t.Fatal(err)
			}
			tc.mut(m)
			data, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := readClusterManifest(data); err == nil {
				t.Fatalf("manifest %s accepted", tc.name)
			}
		})
	}
	if _, err := readClusterManifest(append(append([]byte(nil), good...), []byte(`{"x":1}`)...)); err == nil {
		t.Fatal("manifest with trailing JSON accepted")
	}
}

// FuzzReadClusterManifest proves arbitrary bytes never panic the manifest
// reader, and that whatever it accepts re-validates after a marshal round
// trip (no accept-once-reject-later states).
func FuzzReadClusterManifest(f *testing.F) {
	for _, seed := range clusterManifestSeedCorpus(nil) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := readClusterManifest(data)
		if err != nil {
			return
		}
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("accepted manifest does not re-marshal: %v", err)
		}
		if _, err := readClusterManifest(out); err != nil {
			t.Fatalf("re-marshaled manifest no longer validates: %v", err)
		}
	})
}

// clusterManifestSeedCorpus generates fuzz seeds: valid range and hash
// manifests plus near-miss mutants.
func clusterManifestSeedCorpus(t *testing.T) [][]byte {
	marshal := func(m clusterManifest) []byte {
		data, err := json.Marshal(m)
		if err != nil {
			if t != nil {
				t.Fatal(err)
			}
			return nil
		}
		return data
	}
	seeds := [][]byte{
		marshal(clusterManifest{Format: clusterManifestFormat, Version: 1, Kind: "range",
			Field: 0, Cuts: []uint32{4096}, Shards: []string{"shard-00.nm", "shard-01.nm"}}),
		marshal(clusterManifest{Format: clusterManifestFormat, Version: 1, Kind: "hash",
			Field: 3, Shards: []string{"a.nm", "b.nm", "c.nm", "d.nm"}}),
		marshal(clusterManifest{Format: clusterManifestFormat, Version: 1, Kind: "range",
			Field: 1, Shards: []string{"solo.nm"}}),
		[]byte(`{"format":"nuevomatch-cluster","version":1,"partition_kind":"range","partition_field":0,"cuts":[1,2,3],"shards":["x.nm","../y.nm","z.nm","w.nm"]}`),
		[]byte(`{}`),
		[]byte(`not json at all`),
	}
	return seeds
}

// TestRegenClusterManifestFuzzCorpus writes the manifest seeds under
// REGEN_FUZZ_CORPUS=1 and otherwise asserts their presence, mirroring the
// other fuzz targets' corpora.
func TestRegenClusterManifestFuzzCorpus(t *testing.T) {
	seeds := clusterManifestSeedCorpus(t)
	dir := filepath.Join("testdata", "fuzz", "FuzzReadClusterManifest")
	if os.Getenv("REGEN_FUZZ_CORPUS") == "1" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
			path := filepath.Join(dir, "manifest-seed-"+strconv.Itoa(i))
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("wrote %d seeds to %s", len(seeds), dir)
		return
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("seed corpus missing (run with REGEN_FUZZ_CORPUS=1 to regenerate): %v", err)
	}
	if len(entries) < len(seeds) {
		t.Errorf("%d corpus files on disk, generator produces %d (regenerate)", len(entries), len(seeds))
	}
}
