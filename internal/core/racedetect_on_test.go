//go:build race

package core

// raceEnabled reports whether the race detector instruments this build; the
// zero-allocation guarantees are asserted only without it (instrumentation
// may allocate on paths the production build does not).
const raceEnabled = true
