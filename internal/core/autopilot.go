// Autopilot: drift-driven background retraining. The paper treats RQ-RMI
// retraining as a periodic offline step (§3.9); a long-running service
// accumulating updates drifts toward the remainder path as coverage decays.
// The Autopilot closes the loop: it owns a live engine, watches the
// UpdateStats drift signals (insert/delete counts, overlay compactions,
// remainder-fraction growth), and when the configured policy trips it runs
// an in-place Retrain on a background goroutine — lookups stay
// zero-lock/zero-alloc across the swap, and updates arriving during the
// retrain are journaled and replayed before publication (retrain.go).
package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// AutopilotPolicy configures when accumulated drift justifies a background
// retrain. Zero fields take the documented defaults; a negative value
// disables that trigger entirely.
type AutopilotPolicy struct {
	// MaxUpdates trips a retrain after this many updates (inserts plus
	// deletes) since the last (re)build. Zero means 4096; negative disables.
	MaxUpdates int
	// MaxRemainderFraction trips a retrain when the fraction of live rules
	// not served by the RQ-RMIs exceeds this — the coverage-decay signal the
	// paper retrains on. Zero means 0.40; negative disables.
	MaxRemainderFraction float64
	// MaxOverlayCompactions trips a retrain after this many remainder
	// overlay compactions, a proxy for sustained remainder churn. Zero means
	// 16; negative disables.
	MaxOverlayCompactions int
	// MinLiveRules suppresses retraining below this many live rules, where
	// a rebuild buys nothing. Zero means 64; negative disables the floor.
	MinLiveRules int
	// MinInterval is the minimum time between retrains, bounding training
	// load under adversarial churn. Zero means no minimum.
	MinInterval time.Duration
	// Interval is the drift-poll period of the background watcher started by
	// Start. Zero means 250ms; a negative value disables the watcher
	// entirely (Start becomes a no-op — drive Check manually).
	Interval time.Duration
	// AfterRetrain, when non-nil, runs after every successful retrain, on
	// the goroutine that ran it and outside the autopilot's lock — the
	// persistence hook: a supervised service saves the retrained engine
	// (Engine.WriteTo) so a restart warm-starts from the retrained state
	// instead of the stale artifact it booted from. A hook error does not
	// undo the retrain (the swap already published); it is retried up to
	// PersistRetries times with exponential backoff, then recorded in
	// AutopilotStats.PersistFailures/LastPersistError.
	AfterRetrain func(RetrainStats) error
	// AfterFailure, when non-nil, runs after every failed retrain attempt,
	// outside the autopilot's lock, with the retrain error. A cluster wires
	// this to its quarantine tracker so repeatedly failing shards are
	// isolated and rebuilt.
	AfterFailure func(error)
	// PersistRetries is how many times a failing AfterRetrain hook is
	// retried (with exponential backoff) before the failure is recorded.
	// Zero means 2; negative disables retries.
	PersistRetries int
}

// withDefaults resolves the zero values.
func (p AutopilotPolicy) withDefaults() AutopilotPolicy {
	if p.MaxUpdates == 0 {
		p.MaxUpdates = 4096
	}
	if p.MaxRemainderFraction == 0 {
		p.MaxRemainderFraction = 0.40
	}
	if p.MaxOverlayCompactions == 0 {
		p.MaxOverlayCompactions = 16
	}
	if p.MinLiveRules == 0 {
		p.MinLiveRules = 64
	}
	if p.Interval == 0 {
		p.Interval = 250 * time.Millisecond
	}
	if p.PersistRetries == 0 {
		p.PersistRetries = 2
	}
	if p.PersistRetries < 0 {
		p.PersistRetries = 0
	}
	return p
}

// fracHysteresis is the default margin the remainder fraction must decay
// past the best a (re)build achieved before the coverage trigger re-arms.
// Without a margin, a ceiling below what training can reach on the
// rule-set (possible on wildcard-heavy profiles) would trip on every poll
// and retrain in a loop. Once an autopilot has retrain history the margin
// adapts to the achieved-fraction variance (see hystMarginLocked); this
// constant is the cold-start value.
const fracHysteresis = 0.05

// The adaptive hysteresis margin is clamped to [fracMarginMin,
// fracMarginMax]: large stable rule-sets (low variance) trigger earlier,
// noisy wildcard-heavy ones (high variance) are damped harder, and neither
// extreme can disable the trigger or let build noise thrash it.
const (
	fracMarginMin   = 0.01
	fracMarginMax   = 0.10
	fracHistWindow  = 8 // retrains remembered for the variance estimate
	fracMarginSigma = 2 // margin = sigma × stddev of achieved fractions
)

// evaluate reports whether the drift in st trips the policy, and why.
// baseFrac is the remainder fraction right after the last (re)build — the
// best the current rule-set trains to — and margin is how far past it the
// fraction must decay before the coverage trigger re-arms.
func (p AutopilotPolicy) evaluate(st UpdateStats, baseFrac, margin float64) (string, bool) {
	if p.MinLiveRules > 0 && st.LiveRules < p.MinLiveRules {
		return "", false
	}
	updates := st.Inserted + st.DeletedFromISets + st.DeletedFromRemainder
	if p.MaxUpdates > 0 && updates >= p.MaxUpdates {
		return fmt.Sprintf("updates %d >= %d", updates, p.MaxUpdates), true
	}
	if p.MaxRemainderFraction > 0 && st.RemainderFraction > p.MaxRemainderFraction &&
		st.RemainderFraction >= baseFrac+margin {
		return fmt.Sprintf("remainder fraction %.2f > %.2f", st.RemainderFraction, p.MaxRemainderFraction), true
	}
	if p.MaxOverlayCompactions > 0 && st.OverlayCompactions >= p.MaxOverlayCompactions {
		return fmt.Sprintf("overlay compactions %d >= %d", st.OverlayCompactions, p.MaxOverlayCompactions), true
	}
	return "", false
}

// AutopilotStats is the supervisor's cumulative activity record.
type AutopilotStats struct {
	// Checks counts policy evaluations.
	Checks int
	// Retrains counts completed in-place retrains; Failures counts retrains
	// that errored (the engine keeps serving its pre-retrain state).
	Retrains int
	Failures int
	// Replayed is the total number of journaled updates replayed across all
	// swaps — updates that arrived while a retrain was training.
	Replayed int
	// LastTrigger describes the drift signal that tripped the last retrain.
	LastTrigger string
	// LastError is the message of the last failed retrain, if any.
	LastError string
	// PersistFailures counts AfterRetrain hook invocations that exhausted
	// their retries; LastPersistError is the most recent final error. The
	// retrains themselves still count as successes. PersistRetries counts
	// individual retry attempts (successful or not) beyond each first try.
	PersistFailures  int
	LastPersistError string
	PersistRetries   int
	// ConsecFailures is the current run of consecutive failed retrains
	// (reset to zero by a success); ConsecPersistFailures likewise for the
	// persistence hook. Both feed the health model: a nonzero run means
	// the component is degraded, a long run that it may be failed.
	ConsecFailures        int
	ConsecPersistFailures int
	// LastBackoff is the retry pause chosen after the most recent failed
	// retrain — exponential in ConsecFailures with ±20% jitter.
	LastBackoff time.Duration
	// LastTrain/LastSwap are the durations of the most recent retrain's
	// training and swap phases; MaxSwap and TotalTrain aggregate them.
	LastTrain  time.Duration
	LastSwap   time.Duration
	MaxSwap    time.Duration
	TotalTrain time.Duration
}

// Autopilot supervises a live engine: a background watcher polls the drift
// signals and retrains in place when the policy trips. Lookups and updates
// go to the supervised engine directly — the Autopilot adds no indirection
// to the hot path, because Retrain swaps behind the engine's own snapshot
// pointer.
type Autopilot struct {
	e      *Engine
	policy AutopilotPolicy

	mu       sync.Mutex
	stats    AutopilotStats
	lastSwap time.Time
	// backoffUntil suppresses watcher-driven retries after a failed
	// retrain: the drift counters stay tripped on failure, and without a
	// pause the watcher would relaunch a doomed full training run every
	// poll. The pause grows exponentially with consecutive failures and is
	// jittered so a fleet of shards does not retry in lockstep.
	backoffUntil time.Time
	// baseFrac is the remainder fraction right after the last (re)build,
	// the hysteresis floor of the coverage trigger.
	baseFrac float64
	// fracHist is a ring of the remainder fractions achieved by recent
	// (re)builds; its variance sets the adaptive hysteresis margin.
	fracHist []float64
	rng      *rand.Rand // jitter source, seeded deterministically per autopilot
	busy     bool       // a retrain is in flight (Check is re-entrant safe)
	stop     chan struct{}
	done     chan struct{}
}

// autopilotSeq decorrelates the jitter RNGs of autopilots created in one
// process while keeping each run of the process deterministic.
var autopilotSeq atomic.Int64

// NewAutopilot wraps a built engine with a drift supervisor. The watcher is
// not started; call Start, or drive Check manually for deterministic
// control.
func NewAutopilot(e *Engine, policy AutopilotPolicy) *Autopilot {
	base := e.Updates().RemainderFraction
	return &Autopilot{
		e:        e,
		policy:   policy.withDefaults(),
		baseFrac: base,
		fracHist: []float64{base},
		rng:      rand.New(rand.NewSource(0x9E3779B9*autopilotSeq.Add(1) + 1)),
	}
}

// Engine returns the supervised engine. The pointer is stable across
// retrains — swaps happen behind its snapshot pointer.
func (ap *Autopilot) Engine() *Engine { return ap.e }

// Policy returns the resolved policy.
func (ap *Autopilot) Policy() AutopilotPolicy { return ap.policy }

// Stats returns the supervisor's cumulative activity.
func (ap *Autopilot) Stats() AutopilotStats {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	return ap.stats
}

// Start launches the background watcher. It polls every policy Interval and
// retrains when the policy trips. Safe to call once; Stop ends it. A
// negative Interval means no watcher: Start is a no-op.
func (ap *Autopilot) Start() {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	if ap.policy.Interval < 0 || ap.stop != nil {
		return // watcher disabled, or already running
	}
	ap.stop = make(chan struct{})
	ap.done = make(chan struct{})
	go ap.watch(ap.stop, ap.done)
}

// Stop halts the background watcher and waits for any in-flight retrain to
// finish, so the engine is quiescent (no background training) on return.
// The engine itself remains live and serving. Safe to call multiple times.
func (ap *Autopilot) Stop() {
	ap.mu.Lock()
	stop, done := ap.stop, ap.done
	ap.stop, ap.done = nil, nil
	ap.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// failureBackoff is the pause before the next retrain attempt after the
// n-th consecutive failure: exponential from 4 poll intervals up to 240,
// floored by MinInterval and jittered ±20% so a fleet of shards does not
// relaunch doomed training runs in lockstep. With the watcher disabled
// (Interval < 0) there is no backoff — every Check is an explicit caller
// decision.
func (ap *Autopilot) failureBackoff(consec int) time.Duration {
	if ap.policy.Interval < 0 {
		return 0
	}
	b, max := 4*ap.policy.Interval, 240*ap.policy.Interval
	for i := 1; i < consec && b < max; i++ {
		b *= 2
	}
	if b > max {
		b = max
	}
	if ap.policy.MinInterval > b {
		b = ap.policy.MinInterval
	}
	return time.Duration(float64(b) * (0.8 + 0.4*ap.rng.Float64()))
}

// hystMarginLocked is the adaptive coverage-trigger hysteresis: the margin
// the remainder fraction must decay past baseFrac before a retrain trips.
// With fewer than two retrains of history it is the fracHysteresis
// cold-start default; after that it is fracMarginSigma standard deviations
// of the achieved fractions, clamped to [fracMarginMin, fracMarginMax] —
// stable rule-sets (low variance) trigger earlier, wildcard-heavy ones
// whose achievable coverage wanders (high variance) are damped harder.
func (ap *Autopilot) hystMarginLocked() float64 {
	n := len(ap.fracHist)
	if n < 2 {
		return fracHysteresis
	}
	var mean float64
	for _, f := range ap.fracHist {
		mean += f
	}
	mean /= float64(n)
	var v float64
	for _, f := range ap.fracHist {
		v += (f - mean) * (f - mean)
	}
	m := fracMarginSigma * math.Sqrt(v/float64(n))
	if m < fracMarginMin {
		m = fracMarginMin
	}
	if m > fracMarginMax {
		m = fracMarginMax
	}
	return m
}

// recordFracLocked appends a (re)build's achieved remainder fraction to
// the variance window.
func (ap *Autopilot) recordFracLocked(frac float64) {
	ap.fracHist = append(ap.fracHist, frac)
	if len(ap.fracHist) > fracHistWindow {
		ap.fracHist = ap.fracHist[len(ap.fracHist)-fracHistWindow:]
	}
}

// watch is the background drift loop.
func (ap *Autopilot) watch(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(ap.policy.Interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			ap.Check()
		}
	}
}

// Check evaluates the policy against the engine's current drift once and,
// if it trips, runs one in-place retrain synchronously. It returns whether
// a retrain ran and its error, if any. The background watcher calls Check
// on every poll; tests and experiment drivers call it directly for
// deterministic retrain points. Concurrent Checks never stack retrains: if
// one is already in flight the call returns immediately.
func (ap *Autopilot) Check() (bool, error) {
	st := ap.e.Updates()
	ap.mu.Lock()
	reason, trip := ap.policy.evaluate(st, ap.baseFrac, ap.hystMarginLocked())
	ap.stats.Checks++
	if !trip || ap.busy ||
		(ap.policy.MinInterval > 0 && !ap.lastSwap.IsZero() && time.Since(ap.lastSwap) < ap.policy.MinInterval) ||
		(!ap.backoffUntil.IsZero() && time.Now().Before(ap.backoffUntil)) {
		ap.mu.Unlock()
		return false, nil
	}
	ap.busy = true
	ap.mu.Unlock()

	rst, err := ap.e.Retrain()

	ap.mu.Lock()
	ap.busy = false
	if err != nil {
		ap.stats.Failures++
		ap.stats.ConsecFailures++
		ap.stats.LastError = err.Error()
		ap.stats.LastBackoff = ap.failureBackoff(ap.stats.ConsecFailures)
		if ap.stats.LastBackoff > 0 {
			ap.backoffUntil = time.Now().Add(ap.stats.LastBackoff)
		} else {
			ap.backoffUntil = time.Time{}
		}
		failHook := ap.policy.AfterFailure
		ap.mu.Unlock()
		if failHook != nil {
			failHook(err)
		}
		return false, err
	}
	ap.backoffUntil = time.Time{}
	ap.stats.ConsecFailures = 0
	ap.lastSwap = time.Now()
	ap.baseFrac = 1 - rst.CoverageAfter
	ap.recordFracLocked(ap.baseFrac)
	ap.stats.Retrains++
	ap.stats.Replayed += rst.Replayed
	ap.stats.LastTrigger = reason
	ap.stats.LastTrain = rst.TrainTime
	ap.stats.LastSwap = rst.SwapTime
	ap.stats.TotalTrain += rst.TrainTime
	if rst.SwapTime > ap.stats.MaxSwap {
		ap.stats.MaxSwap = rst.SwapTime
	}
	hook := ap.policy.AfterRetrain
	retries := ap.policy.PersistRetries
	ap.mu.Unlock()

	// The persistence hook runs outside the lock: it typically serializes
	// the whole engine, which must not block Stats() or a Stop() in flight.
	// Transient failures (a full disk, a torn NFS write) are retried with a
	// short exponential backoff before the failure is recorded.
	if hook != nil {
		herr := hook(rst)
		for attempt := 0; herr != nil && attempt < retries; attempt++ {
			ap.mu.Lock()
			ap.stats.PersistRetries++
			delay := time.Duration(float64(5*time.Millisecond<<uint(attempt)) * (0.8 + 0.4*ap.rng.Float64()))
			ap.mu.Unlock()
			time.Sleep(delay)
			herr = hook(rst)
		}
		ap.mu.Lock()
		if herr != nil {
			ap.stats.PersistFailures++
			ap.stats.ConsecPersistFailures++
			ap.stats.LastPersistError = herr.Error()
		} else {
			ap.stats.ConsecPersistFailures = 0
		}
		ap.mu.Unlock()
	}
	return true, nil
}
