package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// This file is the self-healing layer of the cluster: a machine-readable
// health model (Health/HealthState/HealthReason) and shard quarantine — a
// shard whose saved artifact fails to load, or whose retrains keep
// failing, is isolated behind a correct-but-slower fallback and rebuilt in
// the background while every other shard keeps serving. The fail-static
// guarantee holds throughout: a quarantined shard still answers from a
// complete rule replica (remainder-only fallback engine or its last
// published snapshot), so lookups are never wrong, only possibly slower or
// staler.

// HealthState classifies a component's ability to serve.
type HealthState uint8

const (
	// Healthy: serving normally, no degradation signals.
	Healthy HealthState = iota
	// Degraded: serving correct answers, but something needs attention — a
	// quarantined shard, failing retrains, or failing persistence.
	Degraded
	// Failed: not serving (closed, or no usable shards).
	Failed
)

// String names the state for logs and JSON artifacts.
func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("HealthState(%d)", uint8(s))
	}
}

// HealthReason is one machine-readable degradation signal.
type HealthReason struct {
	// Shard is the shard index the reason applies to, or -1 for
	// whole-component reasons.
	Shard int `json:"shard"`
	// Code is a stable machine-readable identifier: "closed",
	// "shard-quarantined", "retrain-failing", "persist-failing".
	Code string `json:"code"`
	// Detail is the human-readable specifics.
	Detail string `json:"detail"`
}

// Health is a point-in-time health summary: the overall state plus one
// reason per degradation signal (empty when Healthy).
type Health struct {
	State   HealthState    `json:"state"`
	Reasons []HealthReason `json:"reasons,omitempty"`
}

// String renders the summary on one line.
func (h Health) String() string {
	s := h.State.String()
	for _, r := range h.Reasons {
		if r.Shard >= 0 {
			s += fmt.Sprintf("; shard %d %s: %s", r.Shard, r.Code, r.Detail)
		} else {
			s += fmt.Sprintf("; %s: %s", r.Code, r.Detail)
		}
	}
	return s
}

// QuarantinePolicy configures when a cluster isolates a shard and how its
// background rebuilder paces retries.
type QuarantinePolicy struct {
	// FailureThreshold is how many consecutive retrain failures on one
	// shard trigger quarantine. Zero means 3; negative disables
	// retrain-failure quarantine (load-failure quarantine still applies).
	FailureThreshold int
	// BaseBackoff is the rebuilder's initial retry pause; it doubles per
	// failed rebuild up to MaxBackoff, with ±20% jitter. Zero means 50ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the rebuilder's pause. Zero means 5s.
	MaxBackoff time.Duration
}

func (p QuarantinePolicy) withDefaults() QuarantinePolicy {
	if p.FailureThreshold == 0 {
		p.FailureThreshold = 3
	}
	if p.BaseBackoff == 0 {
		p.BaseBackoff = 50 * time.Millisecond
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = 5 * time.Second
	}
	return p
}

// shardQuarantine tracks one isolated shard.
type shardQuarantine struct {
	reason   string
	since    time.Time
	rebuilds int    // failed rebuild attempts so far
	lastErr  string // most recent rebuild error
}

// SetQuarantinePolicy replaces the cluster's quarantine policy (zero
// fields take the documented defaults). It affects future quarantine
// decisions and rebuild pacing; already-running rebuilders keep their
// current pace.
func (c *Cluster) SetQuarantinePolicy(p QuarantinePolicy) {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	c.qpolicy = p.withDefaults()
}

// QuarantinedShards lists the currently quarantined shard indexes, sorted.
func (c *Cluster) QuarantinedShards() []int {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	out := make([]int, 0, len(c.quarantined))
	for s := range c.quarantined {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// NoteRetrainFailure records a failed retrain on shard s and quarantines
// the shard once the policy's consecutive-failure threshold is reached:
// the shard keeps serving its last published snapshot (correct, possibly
// stale) while a background rebuilder retries with exponential backoff.
// It reports whether this call initiated a quarantine. ErrRetrainInProgress
// is not a shard failure and is ignored.
func (c *Cluster) NoteRetrainFailure(s int, err error) bool {
	if err == nil || err == ErrRetrainInProgress || s < 0 || s >= len(c.engines) {
		return false
	}
	c.qmu.Lock()
	p := c.qpolicy
	if p.FailureThreshold < 0 {
		c.qmu.Unlock()
		return false
	}
	c.retrainFails[s]++
	n := c.retrainFails[s]
	c.qmu.Unlock()
	if n < p.FailureThreshold {
		return false
	}
	return c.quarantineShard(s,
		fmt.Sprintf("retrain failing (%d consecutive): %v", n, err),
		func() error {
			_, rerr := c.engines[s].Retrain()
			return rerr
		})
}

// NoteRetrainSuccess resets shard s's consecutive-failure count.
func (c *Cluster) NoteRetrainSuccess(s int) {
	if s < 0 || s >= len(c.engines) {
		return
	}
	c.qmu.Lock()
	c.retrainFails[s] = 0
	c.qmu.Unlock()
}

// quarantineShard isolates shard s and starts its background rebuilder.
// The shard's engine pointer is never replaced — lookups read it lock-free
// — so the rebuild lands through the engine's own RCU snapshot swap
// (Retrain/RetrainWith) and readers migrate atomically when it succeeds.
// Reports false if the shard was already quarantined.
func (c *Cluster) quarantineShard(s int, reason string, rebuild func() error) bool {
	c.qmu.Lock()
	if _, already := c.quarantined[s]; already {
		c.qmu.Unlock()
		return false
	}
	c.quarantined[s] = &shardQuarantine{reason: reason, since: time.Now()}
	c.qmu.Unlock()
	if c.closed.Load() {
		return true // quarantined, but no rebuilder on a closed cluster
	}
	c.qwg.Add(1)
	go c.rebuildLoop(s, rebuild)
	return true
}

// rebuildLoop retries a quarantined shard's rebuild with exponential
// backoff and jitter until it succeeds or the cluster closes. On success
// the shard leaves quarantine and its failure count resets.
func (c *Cluster) rebuildLoop(s int, rebuild func() error) {
	defer c.qwg.Done()
	c.qmu.Lock()
	p := c.qpolicy
	c.qmu.Unlock()
	backoff := p.BaseBackoff
	for {
		err := rebuild()
		if err == nil {
			c.qmu.Lock()
			delete(c.quarantined, s)
			c.retrainFails[s] = 0
			c.qmu.Unlock()
			return
		}
		c.qmu.Lock()
		if q := c.quarantined[s]; q != nil {
			q.rebuilds++
			q.lastErr = err.Error()
		}
		pause := time.Duration(float64(backoff) * (0.8 + 0.4*c.qrng.Float64()))
		c.qmu.Unlock()
		select {
		case <-c.qstop:
			return
		case <-time.After(pause):
		}
		if backoff *= 2; backoff > p.MaxBackoff {
			backoff = p.MaxBackoff
		}
	}
}

// Health reports the cluster's current health: Failed when closed,
// Degraded while any shard is quarantined or accumulating retrain
// failures, Healthy otherwise. Quarantined shards still serve correct
// (possibly stale or slower) answers — quarantine alone never reaches
// Failed, upholding the fail-static contract.
func (c *Cluster) Health() Health {
	if c.closed.Load() {
		return Health{State: Failed, Reasons: []HealthReason{{Shard: -1, Code: "closed", Detail: "cluster closed"}}}
	}
	h := Health{State: Healthy}
	c.qmu.Lock()
	shards := make([]int, 0, len(c.quarantined))
	for s := range c.quarantined {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	for _, s := range shards {
		q := c.quarantined[s]
		d := q.reason
		if q.rebuilds > 0 {
			d += fmt.Sprintf(" (rebuild attempts %d, last: %s)", q.rebuilds, q.lastErr)
		}
		h.Reasons = append(h.Reasons, HealthReason{Shard: s, Code: "shard-quarantined", Detail: d})
	}
	for s := 0; s < len(c.engines); s++ {
		if n := c.retrainFails[s]; n > 0 {
			if _, inQ := c.quarantined[s]; !inQ {
				h.Reasons = append(h.Reasons, HealthReason{Shard: s, Code: "retrain-failing",
					Detail: fmt.Sprintf("%d consecutive retrain failures", n)})
			}
		}
	}
	c.qmu.Unlock()
	if len(h.Reasons) > 0 {
		h.State = Degraded
	}
	return h
}

// EngineHealth summarizes a single supervised engine from its autopilot's
// stats: Degraded while retrains or persistence are failing, Healthy
// otherwise. (An engine has no Failed state of its own — it always serves
// its last published snapshot.)
func EngineHealth(st AutopilotStats) Health {
	h := Health{State: Healthy}
	if st.ConsecFailures > 0 {
		h.Reasons = append(h.Reasons, HealthReason{Shard: -1, Code: "retrain-failing",
			Detail: fmt.Sprintf("%d consecutive retrain failures: %s", st.ConsecFailures, st.LastError)})
	}
	if st.ConsecPersistFailures > 0 {
		h.Reasons = append(h.Reasons, HealthReason{Shard: -1, Code: "persist-failing",
			Detail: fmt.Sprintf("%d consecutive persist failures: %s", st.ConsecPersistFailures, st.LastPersistError)})
	}
	if len(h.Reasons) > 0 {
		h.State = Degraded
	}
	return h
}

// newQuarantineRNG decorrelates cluster jitter RNGs like autopilotSeq
// does for autopilots, while keeping each process run deterministic.
func newQuarantineRNG() *rand.Rand {
	return rand.New(rand.NewSource(0x6A09E667*autopilotSeq.Add(1) + 3))
}
