package core

import (
	"fmt"
	"math"
	"sort"

	"nuevomatch/internal/rules"
)

// This file implements the update model of §3.9 on the write side of the
// RCU split:
//
//   - rule deletions of iSet-indexed rules are served by publishing a
//     snapshot whose metadata marks the position dead (copy-on-write of the
//     flat meta array — the shared RQ-RMI value arrays are never mutated);
//   - rule additions and matching-set changes always go to the remainder,
//     which must support fast updates (TupleMerge does) and its own
//     concurrent lookups;
//   - the remainder therefore grows over time, degrading throughput, and
//     Rebuild retrains the models over the current live rules — the paper's
//     periodic retraining.
//
// Every update publishes a fresh snapshot with a single atomic store.
// Readers that loaded the previous snapshot finish against a consistent
// view; readers arriving after the store see the update. Updates serialize
// on e.mu, which lookups never touch.

// UpdateStats tracks the drift since the last (re)build.
type UpdateStats struct {
	// Inserted counts rules added to the remainder since build.
	Inserted int
	// DeletedFromISets counts iSet rules marked dead in the snapshot
	// metadata.
	DeletedFromISets int
	// DeletedFromRemainder counts deletions served by the remainder.
	DeletedFromRemainder int
	// OverlayCompactions counts how many times the remainder overlay was
	// folded back into a fresh frozen form.
	OverlayCompactions int
	// LiveRules is the current number of live rules.
	LiveRules int
	// RemainderFraction is the fraction of live rules not indexed by
	// RQ-RMIs; the paper retrains when it grows too large.
	RemainderFraction float64
}

// Updates returns the drift statistics since the last build.
func (e *Engine) Updates() UpdateStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.updateStatsLocked()
}

func (e *Engine) updateStatsLocked() UpdateStats {
	s := e.ustats
	s.LiveRules = len(e.prioID)
	// Every inISet entry is live: deletions remove the entry (Delete's iSet
	// branch), so the covered count is the map's size — O(1), which matters
	// because the autopilot polls Updates() under the write lock.
	if s.LiveRules > 0 {
		s.RemainderFraction = 1 - float64(len(e.inISet))/float64(s.LiveRules)
	}
	return s
}

// Insert adds a new rule. Per §3.9 additions always go to the remainder;
// the remainder classifier must implement rules.Updatable.
func (e *Engine) Insert(r rules.Rule) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(r.Fields) != e.rs.NumFields {
		return fmt.Errorf("core: rule has %d fields, engine expects %d", len(r.Fields), e.rs.NumFields)
	}
	for d, f := range r.Fields {
		// Reject what Build's Validate would: an invalid live rule
		// otherwise poisons every future Retrain while still being served.
		if !f.Valid() {
			return fmt.Errorf("core: rule %d field %d has Lo %d > Hi %d", r.ID, d, f.Lo, f.Hi)
		}
	}
	if _, dup := e.prioID[r.ID]; dup {
		return fmt.Errorf("core: duplicate rule ID %d", r.ID)
	}
	upd, ok := e.remainder.(rules.Updatable)
	if !ok {
		return fmt.Errorf("core: remainder classifier %q does not support updates", e.remainder.Name())
	}
	if err := upd.Insert(r); err != nil {
		return err
	}
	e.remainderRules.Add(r)
	e.insertRemainderEntryLocked(r.ID, r.Priority)
	if e.remOverlay != nil {
		e.remOverlay = e.remOverlay.withAdd(r)
		e.maybeCompactOverlayLocked()
	}
	e.prioID[r.ID] = r.Priority
	e.live[r.ID] = true
	e.ustats.Inserted++
	e.journalInsertLocked(r)
	e.publishLocked()
	return nil
}

// maybeCompactOverlayLocked re-freezes the remainder once the overlay delta
// outgrows the threshold, folding additions into the compiled tables and
// retiring the deletion skip list. Amortized cost per update is
// O(remainder/threshold); the copy-on-write discipline means snapshots
// published before the compaction stay valid.
func (e *Engine) maybeCompactOverlayLocked() {
	if e.remOverlay.size() > overlayCompactThreshold {
		e.refreezeRemainderLocked()
		e.ustats.OverlayCompactions++
	}
}

// insertRemainderEntryLocked adds (id, prio) to the sorted remainder table
// via copy-on-write: published snapshots keep referencing the old arrays.
func (e *Engine) insertRemainderEntryLocked(id int, prio int32) {
	i := sort.SearchInts(e.remIDs, id)
	ids := make([]int, len(e.remIDs)+1)
	copy(ids, e.remIDs[:i])
	ids[i] = id
	copy(ids[i+1:], e.remIDs[i:])
	prios := make([]int32, len(e.remPrios)+1)
	copy(prios, e.remPrios[:i])
	prios[i] = prio
	copy(prios[i+1:], e.remPrios[i:])
	e.remIDs, e.remPrios = ids, prios
}

// removeRemainderEntryLocked removes id from the sorted remainder table via
// copy-on-write.
func (e *Engine) removeRemainderEntryLocked(id int) {
	i := sort.SearchInts(e.remIDs, id)
	if i >= len(e.remIDs) || e.remIDs[i] != id {
		return
	}
	ids := make([]int, len(e.remIDs)-1)
	copy(ids, e.remIDs[:i])
	copy(ids[i:], e.remIDs[i+1:])
	prios := make([]int32, len(e.remPrios)-1)
	copy(prios, e.remPrios[:i])
	copy(prios[i:], e.remPrios[i+1:])
	e.remIDs, e.remPrios = ids, prios
}

// Delete removes a rule by ID. Rules indexed by an RQ-RMI are marked dead in
// a copy of the snapshot metadata — no retraining and no mutation of shared
// model arrays — and remainder rules are deleted from the external
// classifier directly.
func (e *Engine) Delete(id int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.live[id] {
		return fmt.Errorf("core: no live rule with ID %d", id)
	}
	if _, inModel := e.inISet[id]; inModel {
		e.deleteMetaLocked(e.posID[id])
		delete(e.inISet, id)
		e.ustats.DeletedFromISets++
	} else {
		upd, ok := e.remainder.(rules.Updatable)
		if !ok {
			return fmt.Errorf("core: remainder classifier %q does not support updates", e.remainder.Name())
		}
		if err := upd.Delete(id); err != nil {
			return err
		}
		e.removeRemainderRule(id)
		if e.remOverlay != nil {
			e.remOverlay = e.remOverlay.withDelete(id)
			e.maybeCompactOverlayLocked()
		}
		e.ustats.DeletedFromRemainder++
	}
	delete(e.prioID, id)
	delete(e.live, id)
	e.journalDeleteLocked(id)
	e.publishLocked()
	return nil
}

// deleteMetaLocked marks built rule pos dead via copy-on-write: published
// snapshots keep referencing the old array, so concurrent readers never
// observe a torn write.
func (e *Engine) deleteMetaLocked(pos int) {
	meta := make([]ruleMeta, len(e.meta))
	copy(meta, e.meta)
	meta[pos].live = false
	e.meta = meta
}

// Modify changes a rule's matching set or priority: per §3.9 this is a
// delete followed by an insert into the remainder.
func (e *Engine) Modify(r rules.Rule) error {
	if err := e.Delete(r.ID); err != nil {
		return err
	}
	return e.Insert(r)
}

func (e *Engine) removeRemainderRule(id int) {
	e.removeRemainderEntryLocked(id)
	rr := e.remainderRules
	for i := range rr.Rules {
		if rr.Rules[i].ID == id {
			rr.Rules = append(rr.Rules[:i], rr.Rules[i+1:]...)
			return
		}
	}
}

// LiveRuleSet snapshots the current live rules (build survivors plus
// inserts), the input Rebuild retrains on. The remainder's copy of a rule
// is authoritative: a built rule that was modified (delete + reinsert,
// §3.9) lives on in the remainder with its *new* matching set, and the
// stale build-time copy must not resurface.
func (e *Engine) LiveRuleSet() *rules.RuleSet {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.liveRuleSetLocked()
}

func (e *Engine) liveRuleSetLocked() *rules.RuleSet {
	out := rules.NewRuleSet(e.rs.NumFields)
	inRemainder := make(map[int]bool, e.remainderRules.Len())
	for i := range e.remainderRules.Rules {
		id := e.remainderRules.Rules[i].ID
		inRemainder[id] = true
		if e.live[id] {
			r := e.remainderRules.Rules[i]
			r.Fields = append([]rules.Range(nil), r.Fields...)
			out.Add(r)
		}
	}
	for i := range e.rs.Rules {
		id := e.rs.Rules[i].ID
		if e.live[id] && !inRemainder[id] {
			r := e.rs.Rules[i]
			r.Fields = append([]rules.Range(nil), r.Fields...)
			out.Add(r)
		}
	}
	return out
}

// Rebuild retrains the engine over the current live rules — the periodic
// retraining of Figure 7 — and returns the fresh engine. The receiver
// remains valid and serves lookups while the replacement trains; once
// traffic has moved over, Close the old engine to retire its pooled
// workers.
func (e *Engine) Rebuild() (*Engine, error) {
	return Build(e.LiveRuleSet(), e.opts)
}

// SustainedUpdateModel evaluates the analytic update model of §3.9: after u
// uniformly distributed updates against r rules, the expected fraction of
// rules still served by the RQ-RMIs is e^(-u/r), and throughput behaves as a
// weighted average between the accelerated and remainder-only rates.
func SustainedUpdateModel(r, u float64, acceleratedThroughput, remainderThroughput float64) float64 {
	if r <= 0 {
		return remainderThroughput
	}
	unmodified := math.Exp(-u / r)
	return unmodified*acceleratedThroughput + (1-unmodified)*remainderThroughput
}
