// Sharded serving: a Cluster partitions one rule-set across N independent
// engines and routes every packet to exactly one of them. The paper scales
// NuevoMatch by running independent RQ-RMI instances over rule-set
// partitions (§6); the cluster is that axis made a first-class subsystem —
// each shard is a complete Engine (its own iSets, frozen remainder, RCU
// snapshot, retrain machinery), so rule capacity grows N-fold, batches fan
// out across cores, and a retrain stalls the update side of 1/N of the
// table instead of all of it.
//
// Correctness rests on one invariant, enforced at build, on every update,
// and re-verified on load: a rule is replicated to every shard that some
// packet matching it can route to. Routing is a pure function of the
// packet's value in the partition field, so the shard a packet routes to
// holds every rule that could match it, and first-match (highest-priority)
// semantics are preserved without consulting any other shard. Rules whose
// partition-field range spans several shards ("spanners") are replicated to
// each; replicas share the rule's ID and priority, so whichever shard
// answers, the merge resolves to the same winner the unsharded table would
// pick.
package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"nuevomatch/internal/faultinject"
	"nuevomatch/internal/rules"
)

// PartitionKind selects how the cluster maps partition-field values to
// shards.
type PartitionKind uint8

const (
	// PartitionRange splits the field's value space at cut points chosen
	// from the rule distribution: shard s serves the s-th value interval.
	// Prefix- and range-heavy fields (IPs) shard well here because a narrow
	// rule overlaps few intervals.
	PartitionRange PartitionKind = iota + 1
	// PartitionHash maps each value through a fixed 32-bit mixer modulo the
	// shard count. Exact-match rules land on one shard; every non-exact rule
	// must be replicated to all shards (its values hash everywhere), so hash
	// partitioning suits exact-heavy fields (ports, protocol).
	PartitionHash
)

// String names the partition kind as the cluster manifest spells it.
func (k PartitionKind) String() string {
	switch k {
	case PartitionRange:
		return "range"
	case PartitionHash:
		return "hash"
	default:
		return fmt.Sprintf("PartitionKind(%d)", uint8(k))
	}
}

// partitionKindByName is String's inverse, used by the manifest reader.
func partitionKindByName(s string) (PartitionKind, bool) {
	switch s {
	case "range":
		return PartitionRange, true
	case "hash":
		return PartitionHash, true
	default:
		return 0, false
	}
}

// MaxClusterShards caps the cluster width: shard membership is tracked as a
// 64-bit replica mask.
const MaxClusterShards = 64

// AutoPartitionField selects the partition field automatically (the field
// with the highest rule-set diversity, §3.7's signal for a field that
// separates rules well).
const AutoPartitionField = -1

// ClusterOptions configures BuildCluster.
type ClusterOptions struct {
	// Shards is the number of engine shards. Zero means 2; one shard is a
	// degenerate but valid cluster (useful as a differential baseline). The
	// range partitioner may produce fewer shards than requested when the
	// partition field lacks enough distinct values to cut.
	Shards int
	// PartitionField is the field routing is keyed on. AutoPartitionField
	// (negative) picks the most diverse field.
	PartitionField int
	// Kind is the partitioning strategy; zero means PartitionRange.
	Kind PartitionKind
	// Engine configures each shard's engine build (Options.withDefaults
	// applies per shard).
	Engine Options
}

func (o ClusterOptions) withDefaults() ClusterOptions {
	if o.Shards == 0 {
		o.Shards = 2
	}
	if o.Kind == 0 {
		o.Kind = PartitionRange
	}
	return o
}

// mix32 is the fixed 32-bit finalizer behind PartitionHash. It must stay
// byte-for-byte stable forever: hash routing is persisted via the cluster
// manifest, and a mixer change would silently re-route packets away from
// the shards their rules were saved into.
func mix32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

// partitioner is the pure routing function shared by build, lookup, update,
// save, and load.
type partitioner struct {
	kind   PartitionKind
	field  int
	shards int
	// cuts are the range partitioner's split points, strictly increasing:
	// shardOfValue(v) is the number of cuts <= v, so shard 0 serves
	// [0, cuts[0]-1] and the last shard serves [cuts[len-1], MaxValue].
	// Empty for PartitionHash.
	cuts []uint32
}

// shardOfValue routes one partition-field value to its shard.
func (pt *partitioner) shardOfValue(v uint32) int {
	if pt.shards <= 1 {
		return 0
	}
	if pt.kind == PartitionHash {
		return int(mix32(v) % uint32(pt.shards))
	}
	return sort.Search(len(pt.cuts), func(i int) bool { return v < pt.cuts[i] })
}

// shardMaskOfRange returns the replica mask of a rule whose partition-field
// range is r: one bit per shard some packet in r can route to.
func (pt *partitioner) shardMaskOfRange(r rules.Range) uint64 {
	if pt.shards <= 1 {
		return 1
	}
	if pt.kind == PartitionHash {
		if r.IsExact() {
			return 1 << pt.shardOfValue(r.Lo)
		}
		return pt.allMask()
	}
	lo, hi := pt.shardOfValue(r.Lo), pt.shardOfValue(r.Hi)
	return maskRange(lo, hi)
}

// allMask has every shard's bit set.
func (pt *partitioner) allMask() uint64 { return maskRange(0, pt.shards-1) }

// maskRange sets bits lo..hi inclusive.
func maskRange(lo, hi int) uint64 {
	width := uint(hi - lo + 1)
	if width >= 64 {
		return ^uint64(0)
	}
	return ((uint64(1) << width) - 1) << uint(lo)
}

// balancedCuts picks up to shards-1 strictly increasing cut points from the
// distribution of rule range starts in the partition field, so each value
// interval begins with roughly the same number of rules. Wildcards and other
// spanners contribute nothing useful (they replicate regardless) but are
// harmless to include; what matters is that cuts come from values rules
// actually start at, which tracks where packets that match them route.
func balancedCuts(rs *rules.RuleSet, field, shards int) []uint32 {
	vals := make([]uint32, 0, rs.Len())
	for i := range rs.Rules {
		f := rs.Rules[i].Fields[field]
		if !f.IsFull() {
			vals = append(vals, f.Lo)
		}
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
	// Dedupe in place: cuts must be strictly increasing.
	uniq := vals[:0]
	for i, v := range vals {
		if i == 0 || v != uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	if len(uniq) < 2 {
		return nil
	}
	cuts := make([]uint32, 0, shards-1)
	for s := 1; s < shards; s++ {
		c := uniq[s*len(uniq)/shards]
		if c == 0 || (len(cuts) > 0 && c <= cuts[len(cuts)-1]) {
			continue // quantiles collided; accept fewer shards
		}
		cuts = append(cuts, c)
	}
	return cuts
}

// autoPartitionField picks the most diverse field (§3.7): the one whose
// unique-range count is the largest fraction of the rule count, and so
// spreads rules across the most shards.
func autoPartitionField(rs *rules.RuleSet) int {
	best, bestDiv := 0, -1.0
	for d := 0; d < rs.NumFields; d++ {
		if div := rs.FieldDiversity(d); div > bestDiv {
			best, bestDiv = d, div
		}
	}
	return best
}

// Cluster serves one logical rule-set from N independent engine shards.
// Lookups are lock-free end to end: routing is pure arithmetic and each
// shard lookup is the engine's usual one-atomic-load snapshot walk. Batches
// scatter across shards and run them on parallel workers, merging per-shard
// winners back into the caller's order with pooled scratch (zero-alloc in
// steady state). Updates serialize on the cluster's own mutex (they touch
// the replica-mask table) and then on each target shard's write lock.
type Cluster struct {
	part    partitioner
	engines []*Engine

	// mu guards the update side: the replica-mask table and the replicated
	// counter. Lookups never take it.
	//
	//nm:lockscope
	mu sync.Mutex
	// shardsOf maps every live rule ID to the mask of shards holding a
	// replica — the delete path's routing table (a rule's range is unknown
	// at Delete(id) time).
	shardsOf   map[int]uint64
	replicated int // live rules with more than one replica
	// ruleByID is the cluster's authoritative replica table: one deep copy
	// of every distinct live rule. It is what SaveDir persists as the rules
	// artifact and what quarantine rebuilds a lost shard from.
	ruleByID map[int]rules.Rule

	// saveMu serializes whole-directory saves with each other (they write
	// outside c.mu so updates are not stalled for the disk I/O). It is
	// deliberately NOT //nm:lockscope: its whole purpose is to be held
	// across disk I/O, away from the update lock.
	saveMu sync.Mutex

	// qmu guards the quarantine state; see health.go.
	qmu          sync.Mutex
	qpolicy      QuarantinePolicy
	quarantined  map[int]*shardQuarantine
	retrainFails map[int]int
	qrng         *rand.Rand
	qstop        chan struct{}
	qwg          sync.WaitGroup

	wpool   chan *clusterWorker
	scratch sync.Pool
	closed  atomic.Bool
}

// BuildCluster partitions rs across opts.Shards engine shards and trains
// them (in parallel — shard training is embarrassingly parallel and
// dominated by RQ-RMI epochs). The rule-set is cloned per shard; the
// caller's copy is not retained.
func BuildCluster(rs *rules.RuleSet, opts ClusterOptions) (*Cluster, error) {
	opts = opts.withDefaults()
	if err := rs.Validate(); err != nil {
		return nil, err
	}
	if opts.Shards < 0 || opts.Shards > MaxClusterShards {
		return nil, fmt.Errorf("core: %d shards out of range [1, %d]", opts.Shards, MaxClusterShards)
	}
	if rs.NumFields == 0 {
		return nil, fmt.Errorf("core: cannot cluster a zero-field rule-set")
	}
	field := opts.PartitionField
	if field < 0 {
		field = autoPartitionField(rs)
	}
	if field >= rs.NumFields {
		return nil, fmt.Errorf("core: partition field %d out of range (%d fields)", field, rs.NumFields)
	}

	pt := partitioner{kind: opts.Kind, field: field, shards: opts.Shards}
	if pt.kind == PartitionRange && pt.shards > 1 {
		pt.cuts = balancedCuts(rs, field, pt.shards)
		pt.shards = len(pt.cuts) + 1 // the field may not support the full width
	}

	c := &Cluster{
		part:     pt,
		shardsOf: make(map[int]uint64, rs.Len()),
		ruleByID: make(map[int]rules.Rule, rs.Len()),
	}
	shardRules := make([]*rules.RuleSet, pt.shards)
	for s := range shardRules {
		shardRules[s] = rules.NewRuleSet(rs.NumFields)
	}
	for i := range rs.Rules {
		r := &rs.Rules[i]
		mask := pt.shardMaskOfRange(r.Fields[field])
		c.shardsOf[r.ID] = mask
		c.ruleByID[r.ID] = cloneRule(*r)
		if mask&(mask-1) != 0 {
			c.replicated++
		}
		for s := 0; s < pt.shards; s++ {
			if mask&(1<<s) != 0 {
				shardRules[s].Add(cloneRule(*r))
			}
		}
	}

	c.engines = make([]*Engine, pt.shards)
	errs := make([]error, pt.shards)
	var wg sync.WaitGroup
	for s := 0; s < pt.shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			c.engines[s], errs[s] = Build(shardRules[s], opts.Engine)
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			for _, e := range c.engines {
				if e != nil {
					e.Close()
				}
			}
			return nil, fmt.Errorf("core: building shard %d: %w", s, err)
		}
	}
	c.finish()
	return c, nil
}

// finish wires the runtime machinery shared by BuildCluster and the loader.
func (c *Cluster) finish() {
	c.wpool = make(chan *clusterWorker, len(c.engines))
	c.scratch.New = func() any { return newClusterScratch(len(c.engines)) }
	c.qpolicy = QuarantinePolicy{}.withDefaults()
	c.quarantined = make(map[int]*shardQuarantine)
	c.retrainFails = make(map[int]int)
	c.qrng = newQuarantineRNG()
	c.qstop = make(chan struct{})
}

// NumShards returns the number of engine shards actually serving (the range
// partitioner may have produced fewer than requested).
func (c *Cluster) NumShards() int { return len(c.engines) }

// ShardEngine exposes shard s's engine — each shard retrains, saves, and
// reports stats independently, and per-shard supervision (Autopilot)
// attaches here.
func (c *Cluster) ShardEngine(s int) *Engine { return c.engines[s] }

// PartitionField returns the field routing is keyed on.
func (c *Cluster) PartitionField() int { return c.part.field }

// Kind returns the partitioning strategy.
func (c *Cluster) Kind() PartitionKind { return c.part.kind }

// NumFields returns the dimensionality of the served rule-set.
func (c *Cluster) NumFields() int { return c.engines[0].rs.NumFields }

// shardOf routes a packet: the shard whose engine holds every rule that can
// match it. Packets too short to carry the partition field route nowhere.
func (c *Cluster) shardOf(p rules.Packet) int {
	if c.part.field >= len(p) {
		return -1
	}
	return c.part.shardOfValue(p[c.part.field])
}

// RouteShard exposes the routing decision for one packet (-1 when the
// packet is too short to carry the partition field) — for tooling that
// groups traffic by serving shard.
func (c *Cluster) RouteShard(p rules.Packet) int { return c.shardOf(p) }

// Name implements rules.Classifier.
func (c *Cluster) Name() string { return "nuevomatch-cluster" }

// Lookup returns the ID of the highest-priority rule matching the packet,
// or rules.NoMatch. One shard is consulted — the replication invariant
// guarantees it holds every candidate — so the cost is a lookup in an
// engine 1/N the size of the unsharded table.
func (c *Cluster) Lookup(p rules.Packet) int {
	s := c.shardOf(p)
	if s < 0 {
		return rules.NoMatch
	}
	return c.engines[s].Lookup(p)
}

// clusterWorker is a pooled goroutine serving one shard's sub-batch per
// job, mirroring the engine's parWorker discipline so steady-state batches
// spawn nothing.
type clusterWorker struct {
	job  chan clusterJob
	done chan struct{}
}

type clusterJob struct {
	v    ShardView
	pkts []rules.Packet
	out  []int
}

func (w *clusterWorker) loop() {
	for j := range w.job {
		j.v.LookupBatch(j.pkts, j.out)
		// Drop references before parking: an idle worker must not pin a
		// retired snapshot or the scratch buffers.
		j.v, j.pkts, j.out = ShardView{}, nil, nil
		w.done <- struct{}{}
	}
}

func (c *Cluster) grabWorker() *clusterWorker {
	select {
	case w := <-c.wpool:
		return w
	default:
		w := &clusterWorker{job: make(chan clusterJob), done: make(chan struct{})}
		go w.loop()
		return w
	}
}

func (c *Cluster) releaseWorker(w *clusterWorker) {
	if c.closed.Load() {
		close(w.job)
		return
	}
	select {
	case c.wpool <- w:
		// Close may have raced the send; both sides drain after the flag
		// flip, so one of them always sees this worker.
		if c.closed.Load() {
			c.drainWorkers()
		}
	default:
		close(w.job)
	}
}

func (c *Cluster) drainWorkers() {
	for {
		select {
		case w := <-c.wpool:
			close(w.job)
		default:
			return
		}
	}
}

// clusterScratch is the pooled scatter/gather state of one LookupBatch call.
type clusterScratch struct {
	idx     [][]int32        // per shard: original packet positions
	pkts    [][]rules.Packet // per shard: routed packets (headers only)
	res     [][]int          // per shard: that shard's winners
	order   []int            // shards with work this batch
	workers []*clusterWorker
}

func newClusterScratch(shards int) *clusterScratch {
	return &clusterScratch{
		idx:     make([][]int32, shards),
		pkts:    make([][]rules.Packet, shards),
		res:     make([][]int, shards),
		order:   make([]int, 0, shards),
		workers: make([]*clusterWorker, 0, shards),
	}
}

// LookupBatch classifies len(pkts) packets into out (which must have at
// least len(pkts) entries): packets scatter to their shards, each nonempty
// shard's sub-batch runs the engine's batched inference against a snapshot
// pinned once for the whole batch (ShardView), and per-shard winners merge
// back into the caller's order. With more than one busy shard and more than
// one CPU the sub-batches run concurrently on pooled workers — this is the
// multi-core fan-out the cluster exists for. Scratch is pooled; the path
// allocates nothing in steady state.
func (c *Cluster) LookupBatch(pkts []rules.Packet, out []int) {
	if len(c.engines) == 1 {
		c.engines[0].LookupBatch(pkts, out)
		return
	}
	scr := c.scratch.Get().(*clusterScratch)
	for s := range scr.idx {
		scr.idx[s] = scr.idx[s][:0]
		scr.pkts[s] = scr.pkts[s][:0]
	}
	scr.order = scr.order[:0]
	scr.workers = scr.workers[:0]

	for i, p := range pkts {
		s := c.shardOf(p)
		if s < 0 {
			out[i] = rules.NoMatch
			continue
		}
		if len(scr.idx[s]) == 0 {
			scr.order = append(scr.order, s)
		}
		scr.idx[s] = append(scr.idx[s], int32(i))
		scr.pkts[s] = append(scr.pkts[s], p)
	}

	for _, s := range scr.order {
		n := len(scr.pkts[s])
		if cap(scr.res[s]) < n {
			scr.res[s] = make([]int, n)
		}
		scr.res[s] = scr.res[s][:n]
	}
	// Slow-shard fault point: one atomic load when disarmed; when armed it
	// delays this batch's dispatch, modeling a shard that answers late (a
	// paging host, a contended core). Answers stay correct — latency faults
	// never violate fail-static.
	faultinject.Sleep(faultinject.PointClusterShardSlow)
	if len(scr.order) >= 2 && runtime.GOMAXPROCS(0) >= 2 {
		// Fan the tail shards out to workers; serve the first inline so the
		// calling goroutine contributes a core instead of blocking.
		for _, s := range scr.order[1:] {
			w := c.grabWorker()
			w.job <- clusterJob{v: c.engines[s].View(), pkts: scr.pkts[s], out: scr.res[s]}
			scr.workers = append(scr.workers, w)
		}
		s0 := scr.order[0]
		c.engines[s0].View().LookupBatch(scr.pkts[s0], scr.res[s0])
		for _, w := range scr.workers {
			<-w.done
			c.releaseWorker(w)
		}
	} else {
		for _, s := range scr.order {
			c.engines[s].View().LookupBatch(scr.pkts[s], scr.res[s])
		}
	}

	// Gather: each packet has exactly one shard's winner — the merge is a
	// permutation write-back. Priority resolution already happened inside
	// the shard (replicas carry identical priorities, so the routed shard's
	// winner is the global winner).
	for _, s := range scr.order {
		res := scr.res[s]
		for j, pi := range scr.idx[s] {
			out[pi] = res[j]
		}
	}
	// Drop the packet headers before pooling: an idle scratch must not pin
	// the caller's packet backing arrays (same discipline as the workers).
	for _, s := range scr.order {
		clear(scr.pkts[s])
		scr.pkts[s] = scr.pkts[s][:0]
	}
	scr.workers = scr.workers[:0]
	c.scratch.Put(scr)
}

// Insert adds a rule online, replicating it to every shard its
// partition-field range spans. Replicas are cloned per shard (engines
// retain the rule they are handed).
func (c *Cluster) Insert(r rules.Rule) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.insertLocked(r)
}

func (c *Cluster) insertLocked(r rules.Rule) error {
	if len(r.Fields) != c.NumFields() {
		return fmt.Errorf("core: rule has %d fields, cluster expects %d", len(r.Fields), c.NumFields())
	}
	for d, f := range r.Fields {
		if !f.Valid() {
			return fmt.Errorf("core: rule %d field %d has Lo %d > Hi %d", r.ID, d, f.Lo, f.Hi)
		}
	}
	if _, dup := c.shardsOf[r.ID]; dup {
		return fmt.Errorf("core: duplicate rule ID %d", r.ID)
	}
	mask := c.part.shardMaskOfRange(r.Fields[c.part.field])
	for s := 0; s < len(c.engines); s++ {
		if mask&(1<<s) == 0 {
			continue
		}
		if err := c.engines[s].Insert(cloneRule(r)); err != nil {
			// Roll the partial insert back so the replication invariant
			// holds even on failure.
			for p := 0; p < s; p++ {
				if mask&(1<<p) != 0 {
					c.engines[p].Delete(r.ID)
				}
			}
			return fmt.Errorf("core: inserting rule %d into shard %d: %w", r.ID, s, err)
		}
	}
	c.shardsOf[r.ID] = mask
	c.ruleByID[r.ID] = cloneRule(r)
	if mask&(mask-1) != 0 {
		c.replicated++
	}
	return nil
}

// Delete removes a rule by ID from every shard holding a replica.
func (c *Cluster) Delete(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.deleteLocked(id)
}

func (c *Cluster) deleteLocked(id int) error {
	mask, ok := c.shardsOf[id]
	if !ok {
		return fmt.Errorf("core: no live rule with ID %d", id)
	}
	// A mid-iteration failure can only mean cluster bookkeeping is broken;
	// keep deleting from the remaining shards so the replicas do not
	// diverge, then report the first error.
	var firstErr error
	for s := 0; s < len(c.engines); s++ {
		if mask&(1<<s) == 0 {
			continue
		}
		if err := c.engines[s].Delete(id); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("core: deleting rule %d from shard %d: %w", id, s, err)
		}
	}
	delete(c.shardsOf, id)
	delete(c.ruleByID, id)
	if mask&(mask-1) != 0 {
		c.replicated--
	}
	return firstErr
}

// Modify replaces a rule's matching set or priority: delete plus reinsert
// (§3.9), re-routing the rule if its partition-field range moved.
func (c *Cluster) Modify(r rules.Rule) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.deleteLocked(r.ID); err != nil {
		return err
	}
	return c.insertLocked(r)
}

// RetrainShard retrains one shard in place (Engine.Retrain): the other
// shards keep serving and taking updates unaffected — the isolation that
// motivates sharding the autopilot. Outcomes feed the quarantine tracker:
// repeated failures on one shard eventually isolate it (health.go).
func (c *Cluster) RetrainShard(s int) (RetrainStats, error) {
	st, err := c.engines[s].Retrain()
	if err != nil {
		c.NoteRetrainFailure(s, err)
	} else {
		c.NoteRetrainSuccess(s)
	}
	return st, err
}

// LiveRuleSet snapshots the distinct live rules across all shards, with
// replicas deduplicated by ID — the logical rule-set the cluster serves.
func (c *Cluster) LiveRuleSet() *rules.RuleSet {
	out := rules.NewRuleSet(c.NumFields())
	seen := make(map[int]bool)
	for _, e := range c.engines {
		live := e.LiveRuleSet()
		for i := range live.Rules {
			if id := live.Rules[i].ID; !seen[id] {
				seen[id] = true
				out.Add(live.Rules[i])
			}
		}
	}
	return out
}

// ClusterStats is a point-in-time structural summary.
type ClusterStats struct {
	// Shards is the serving shard count.
	Shards int
	// Kind and PartitionField identify the routing function; Cuts are the
	// range partitioner's split points.
	Kind           PartitionKind
	PartitionField int
	Cuts           []uint32
	// ShardRules counts live rules per shard, replicas included.
	ShardRules []int
	// LiveRules counts distinct live rules; Replicated of those, the ones
	// present in more than one shard.
	LiveRules  int
	Replicated int
}

// Stats reports the cluster's current shape.
func (c *Cluster) Stats() ClusterStats {
	c.mu.Lock()
	live, repl := len(c.shardsOf), c.replicated
	c.mu.Unlock()
	st := ClusterStats{
		Shards:         len(c.engines),
		Kind:           c.part.kind,
		PartitionField: c.part.field,
		Cuts:           append([]uint32(nil), c.part.cuts...),
		ShardRules:     make([]int, len(c.engines)),
		LiveRules:      live,
		Replicated:     repl,
	}
	for s, e := range c.engines {
		st.ShardRules[s] = e.Updates().LiveRules
	}
	return st
}

// MemoryFootprint sums the shards' model and remainder-index bytes.
func (c *Cluster) MemoryFootprint() int {
	total := 0
	for _, e := range c.engines {
		total += e.MemoryFootprint()
	}
	return total
}

var _ rules.Classifier = (*Cluster)(nil)

// Close retires the cluster's pooled batch workers, stops any background
// quarantine rebuilders (waiting for an in-flight rebuild attempt to
// finish), and closes every shard engine. Lookups remain safe after Close
// (each shard's published snapshot is immutable); updates on closed shard
// engines are the caller's to fence, as with Engine.Close. Close is
// idempotent.
func (c *Cluster) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	close(c.qstop)
	c.qwg.Wait()
	c.drainWorkers()
	for _, e := range c.engines {
		e.Close()
	}
}

// --- cluster persistence ---------------------------------------------------

// ClusterManifestName is the manifest file a saved cluster directory is
// identified by.
const ClusterManifestName = "cluster.json"

// clusterManifestFormat and clusterManifestVersion gate the manifest codec
// the way tableMagic/tableFormatVersion gate the engine codec.
const (
	clusterManifestFormat  = "nuevomatch-cluster"
	clusterManifestVersion = 1
)

// clusterManifest is the JSON document tying a saved cluster together: the
// routing function and the per-shard table files. Shard state itself lives
// in the engine codec's .nm artifacts (one per shard, each carrying its own
// CRC32-C trailer); the manifest only has to reproduce routing, and is
// written last so a torn SaveDir leaves no valid manifest behind.
type clusterManifest struct {
	Format  string   `json:"format"`
	Version int      `json:"version"`
	Kind    string   `json:"partition_kind"`
	Field   int      `json:"partition_field"`
	Cuts    []uint32 `json:"cuts,omitempty"`
	Shards  []string `json:"shards"`
	// Rules names the cluster rules artifact (the authoritative replica
	// table, see clusterRulesName) saved alongside the shards. Optional:
	// directories saved before the artifact existed load without it, they
	// just cannot quarantine-and-rebuild a corrupt shard.
	Rules string `json:"rules,omitempty"`
}

// readClusterManifest parses and strictly validates a manifest document.
// Arbitrary bytes must produce an error, never a panic and never a manifest
// that could route packets or filesystem access anywhere surprising
// (FuzzReadClusterManifest).
func readClusterManifest(data []byte) (clusterManifest, error) {
	var m clusterManifest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return m, fmt.Errorf("core: parsing cluster manifest: %w", err)
	}
	if dec.More() {
		return m, fmt.Errorf("core: trailing garbage after cluster manifest")
	}
	if m.Format != clusterManifestFormat {
		return m, fmt.Errorf("core: not a cluster manifest (format %q)", m.Format)
	}
	if m.Version != clusterManifestVersion {
		return m, fmt.Errorf("core: unsupported cluster manifest version %d (have %d)", m.Version, clusterManifestVersion)
	}
	kind, ok := partitionKindByName(m.Kind)
	if !ok {
		return m, fmt.Errorf("core: unknown partition kind %q", m.Kind)
	}
	if m.Field < 0 || m.Field >= maxCodecFields {
		return m, fmt.Errorf("core: partition field %d out of range", m.Field)
	}
	if len(m.Shards) < 1 || len(m.Shards) > MaxClusterShards {
		return m, fmt.Errorf("core: %d shards out of range [1, %d]", len(m.Shards), MaxClusterShards)
	}
	switch kind {
	case PartitionRange:
		if len(m.Cuts) != len(m.Shards)-1 {
			return m, fmt.Errorf("core: %d cuts do not split %d shards", len(m.Cuts), len(m.Shards))
		}
		for i := 1; i < len(m.Cuts); i++ {
			if m.Cuts[i] <= m.Cuts[i-1] {
				return m, fmt.Errorf("core: cuts not strictly increasing at %d", i)
			}
		}
	case PartitionHash:
		if len(m.Cuts) != 0 {
			return m, fmt.Errorf("core: hash partitioning takes no cuts")
		}
	}
	seen := make(map[string]bool, len(m.Shards))
	for i, name := range m.Shards {
		// Shard files must be plain names next to the manifest: no path
		// separators, no traversal, nothing a hostile manifest could use to
		// read outside its directory.
		if name == "" || name == "." || name == ".." || filepath.Base(name) != name {
			return m, fmt.Errorf("core: illegal shard file name %q", name)
		}
		if seen[name] {
			return m, fmt.Errorf("core: duplicate shard file %q (shard %d)", name, i)
		}
		seen[name] = true
	}
	if m.Rules != "" {
		if m.Rules == "." || m.Rules == ".." || filepath.Base(m.Rules) != m.Rules {
			return m, fmt.Errorf("core: illegal rules file name %q", m.Rules)
		}
		if seen[m.Rules] {
			return m, fmt.Errorf("core: rules file %q collides with a shard file", m.Rules)
		}
	}
	return m, nil
}

// writeFileAtomic writes data via a temp file and rename, so readers never
// observe a torn file.
func writeFileAtomic(path string, write func(*os.File) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// shardFileName names shard s's table artifact inside a cluster directory.
func shardFileName(s int) string { return fmt.Sprintf("shard-%02d.nm", s) }

// syncDir fsyncs a directory, making completed renames inside it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return err
	}
	return nil
}

// rebuildReplicaTable reconstructs shardsOf from the loaded shards and
// verifies the replication invariant: every live rule is present in exactly
// the shards its partition-field range routes to, with a consistent
// priority and partition range at each replica.
func (c *Cluster) rebuildReplicaTable() error {
	nf := c.engines[0].rs.NumFields
	if c.part.field >= nf {
		return fmt.Errorf("core: partition field %d out of range (%d fields)", c.part.field, nf)
	}
	type replica struct {
		mask uint64
		prio int32
		rng  rules.Range
	}
	seen := make(map[int]*replica)
	for s, e := range c.engines {
		if e.rs.NumFields != nf {
			return fmt.Errorf("core: shard %d has %d fields, shard 0 has %d", s, e.rs.NumFields, nf)
		}
		live := e.LiveRuleSet()
		for i := range live.Rules {
			r := &live.Rules[i]
			f := r.Fields[c.part.field]
			if rep, ok := seen[r.ID]; ok {
				if rep.prio != r.Priority || rep.rng != f {
					return fmt.Errorf("core: rule %d differs between replicas (shard %d)", r.ID, s)
				}
				rep.mask |= 1 << s
			} else {
				seen[r.ID] = &replica{mask: 1 << s, prio: r.Priority, rng: f}
				c.ruleByID[r.ID] = cloneRule(*r)
			}
		}
	}
	for id, rep := range seen {
		want := c.part.shardMaskOfRange(rep.rng)
		if rep.mask != want {
			return fmt.Errorf("core: rule %d lives in shard mask %#x but routes to %#x — manifest and shards disagree", id, rep.mask, want)
		}
		c.shardsOf[id] = rep.mask
		if rep.mask&(rep.mask-1) != 0 {
			c.replicated++
		}
	}
	return nil
}
