package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"nuevomatch/internal/classifiers/conformance"
	"nuevomatch/internal/classifiers/linear"
	"nuevomatch/internal/rules"
)

// This file is the backend-differential matrix: every proof suite in it
// iterates over FreezableRemainders(), so a remainder backend registered
// with RegisterFreezableRemainder is swept automatically — the frozen-form
// contracts (live equivalence, skip-list masking, detachment, batch
// semantics) and the engine-level overlay machinery are proven per backend,
// not once for TupleMerge and assumed for the rest.

// buildFreezableBackend resolves a registered Freezable backend by name and
// asserts the full contract the engine relies on: Freezable for snapshot
// compilation, Updatable for the online path, BatchBoundedClassifier for
// the batched remainder probe.
func buildFreezableBackend(t *testing.T, name string, rs *rules.RuleSet) (rules.Freezable, rules.Updatable, rules.BatchBoundedClassifier) {
	t.Helper()
	b, ok := RemainderBuilderFor(name)
	if !ok {
		t.Fatalf("backend %q marked Freezable but has no registered builder", name)
	}
	cls, err := b(rs)
	if err != nil {
		t.Fatalf("backend %q: build: %v", name, err)
	}
	if cls.Name() != name {
		t.Fatalf("backend registered as %q reports Name() = %q", name, cls.Name())
	}
	fz, ok := cls.(rules.Freezable)
	if !ok {
		t.Fatalf("backend %q does not implement rules.Freezable", name)
	}
	up, ok := cls.(rules.Updatable)
	if !ok {
		t.Fatalf("backend %q does not implement rules.Updatable", name)
	}
	bb, ok := cls.(rules.BatchBoundedClassifier)
	if !ok {
		t.Fatalf("backend %q does not implement rules.BatchBoundedClassifier", name)
	}
	return fz, up, bb
}

// forEachBackend runs fn once per registered Freezable backend as a subtest.
func forEachBackend(t *testing.T, fn func(t *testing.T, name string)) {
	names := FreezableRemainders()
	if len(names) < 2 {
		t.Fatalf("expected at least tuplemerge and rvh registered, got %v", names)
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) { fn(t, name) })
	}
}

// TestBackendRegistryLists pins the registry contents: the two production
// backends are present, sorted, and resolvable.
func TestBackendRegistryLists(t *testing.T) {
	names := FreezableRemainders()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("FreezableRemainders() not sorted: %v", names)
	}
	want := map[string]bool{"rvh": false, "tuplemerge": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("production backend %q missing from FreezableRemainders() = %v", n, names)
		}
	}
}

// TestBackendFrozenAgreesWithLive is the parameterized form of the
// per-TupleMerge frozen-vs-live equivalence suite: the compiled form must
// answer exactly like the live classifier across random early-termination
// bounds, for every registered backend.
func TestBackendFrozenAgreesWithLive(t *testing.T) {
	forEachBackend(t, func(t *testing.T, name string) {
		rng := rand.New(rand.NewSource(171))
		rs := structuredRuleSet(rng, 800)
		fz, _, bb := buildFreezableBackend(t, name, rs)
		f := fz.Freeze()
		if f.Len() != rs.Len() {
			t.Fatalf("frozen Len = %d, rules = %d", f.Len(), rs.Len())
		}
		if f.MemoryFootprint() <= 0 {
			t.Fatal("frozen MemoryFootprint must be positive")
		}
		for i := 0; i < 4000; i++ {
			p := conformance.RandomPacket(rng, rs)
			bound := int32(math.MaxInt32)
			if rng.Intn(3) == 0 {
				bound = int32(rng.Intn(rs.Len() + 1))
			}
			got := f.Lookup(p, bound, nil)
			want := bb.LookupWithBound(p, bound)
			if got != want {
				t.Fatalf("packet %v bound %d: frozen %d, live %d", p, bound, got, want)
			}
		}
	})
}

// TestBackendFrozenSkipMasksDeletedRules checks per backend that the sorted
// skip list makes the frozen form answer exactly like a live classifier
// with those rules actually deleted — including surfacing buried
// lower-priority matches.
func TestBackendFrozenSkipMasksDeletedRules(t *testing.T) {
	forEachBackend(t, func(t *testing.T, name string) {
		rng := rand.New(rand.NewSource(172))
		rs := structuredRuleSet(rng, 600)
		fz, up, _ := buildFreezableBackend(t, name, rs)
		f := fz.Freeze()

		skip := make([]int, 0, 60)
		for i := 0; i < 60; i++ {
			id := rs.Rules[rng.Intn(rs.Len())].ID
			at := sort.SearchInts(skip, id)
			if at < len(skip) && skip[at] == id {
				continue
			}
			skip = append(skip, 0)
			copy(skip[at+1:], skip[at:])
			skip[at] = id
			if err := up.Delete(id); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 4000; i++ {
			p := conformance.RandomPacket(rng, rs)
			got := f.Lookup(p, math.MaxInt32, skip)
			want := fz.Lookup(p)
			if got != want {
				t.Fatalf("packet %v: frozen+skip %d, live-after-delete %d", p, got, want)
			}
		}
	})
}

// TestBackendFrozenIsDetached verifies per backend that Freeze snapshots
// the contents: updates to the live classifier after the freeze must not
// leak into the frozen form.
func TestBackendFrozenIsDetached(t *testing.T) {
	forEachBackend(t, func(t *testing.T, name string) {
		rng := rand.New(rand.NewSource(173))
		rs := structuredRuleSet(rng, 200)
		fz, up, _ := buildFreezableBackend(t, name, rs)
		f := fz.Freeze()

		pkts := make([]rules.Packet, 500)
		want := make([]int, len(pkts))
		for i := range pkts {
			pkts[i] = conformance.RandomPacket(rng, rs)
			want[i] = fz.Lookup(pkts[i])
		}
		for i := 0; i < 100; i++ {
			_ = up.Delete(rs.Rules[i].ID)
		}
		wild := rules.Rule{ID: 999999, Priority: -1, Fields: []rules.Range{
			rules.FullRange(), rules.FullRange(), rules.FullRange(),
			rules.FullRange(), rules.FullRange(),
		}}
		if err := up.Insert(wild); err != nil {
			t.Fatal(err)
		}
		for i, p := range pkts {
			if got := f.Lookup(p, math.MaxInt32, nil); got != want[i] {
				t.Fatalf("frozen answer changed after live churn: %d != %d", got, want[i])
			}
		}
	})
}

// TestBackendFrozenBatchAgreesWithScalar cross-checks each backend's batch
// walk against per-packet frozen lookups, including the in-place bounds
// tightening and untouched-entry contract (-7 sentinel).
func TestBackendFrozenBatchAgreesWithScalar(t *testing.T) {
	forEachBackend(t, func(t *testing.T, name string) {
		rng := rand.New(rand.NewSource(174))
		rs := structuredRuleSet(rng, 700)
		fz, _, _ := buildFreezableBackend(t, name, rs)
		f := fz.Freeze()

		var skip []int
		for i := 0; i < 20; i++ {
			id := rs.Rules[rng.Intn(rs.Len())].ID
			at := sort.SearchInts(skip, id)
			if at < len(skip) && skip[at] == id {
				continue
			}
			skip = append(skip, 0)
			copy(skip[at+1:], skip[at:])
			skip[at] = id
		}

		const batch = 128
		pkts := make([]rules.Packet, batch)
		bounds := make([]int32, batch)
		scalarBounds := make([]int32, batch)
		out := make([]int, batch)
		for round := 0; round < 30; round++ {
			for i := range pkts {
				pkts[i] = conformance.RandomPacket(rng, rs)
				bounds[i] = int32(math.MaxInt32)
				if rng.Intn(4) == 0 {
					bounds[i] = int32(rng.Intn(rs.Len() + 1))
				}
				scalarBounds[i] = bounds[i]
				out[i] = -7 // sentinel: untouched unless improved
			}
			f.LookupBatch(pkts, bounds, skip, out)
			for i, p := range pkts {
				want := f.Lookup(p, scalarBounds[i], skip)
				if want < 0 {
					if out[i] != -7 {
						t.Fatalf("round %d pkt %d: batch wrote %d where scalar found nothing", round, i, out[i])
					}
					if bounds[i] != scalarBounds[i] {
						t.Fatalf("round %d pkt %d: bounds changed without a match", round, i)
					}
				} else if out[i] != want {
					t.Fatalf("round %d pkt %d: batch %d, scalar %d", round, i, out[i], want)
				}
			}
		}
	})
}

// TestBackendFrozenEmpty covers each backend's degenerate frozen forms:
// freezing an empty classifier and freezing after deleting everything.
func TestBackendFrozenEmpty(t *testing.T) {
	forEachBackend(t, func(t *testing.T, name string) {
		fz, _, _ := buildFreezableBackend(t, name, rules.NewRuleSet(5))
		f := fz.Freeze()
		if f.Len() != 0 {
			t.Fatalf("empty frozen Len = %d", f.Len())
		}
		p := rules.Packet{1, 2, 3, 4, 5}
		if got := f.Lookup(p, math.MaxInt32, nil); got != rules.NoMatch {
			t.Fatalf("empty frozen Lookup = %d", got)
		}
		out := []int{-7}
		bounds := []int32{math.MaxInt32}
		f.LookupBatch([]rules.Packet{p}, bounds, nil, out)
		if out[0] != -7 {
			t.Fatalf("empty frozen LookupBatch wrote %d", out[0])
		}

		rng := rand.New(rand.NewSource(175))
		rs := structuredRuleSet(rng, 50)
		fz2, up2, _ := buildFreezableBackend(t, name, rs)
		for i := range rs.Rules {
			if err := up2.Delete(rs.Rules[i].ID); err != nil {
				t.Fatal(err)
			}
		}
		f2 := fz2.Freeze()
		if f2.Len() != 0 {
			t.Fatalf("emptied frozen Len = %d", f2.Len())
		}
		if got := f2.Lookup(p, math.MaxInt32, nil); got != rules.NoMatch {
			t.Fatalf("emptied frozen Lookup = %d", got)
		}
	})
}

// TestBackendOverlayConformance is the engine-level overlay-compaction
// suite parameterized by backend: interleaved inserts and deletes that
// repeatedly trip overlay compaction, with scalar and batched lookups
// checked against the linear reference after every burst. Each backend
// serves as the engine's remainder via Options.RemainderName.
func TestBackendOverlayConformance(t *testing.T) {
	forEachBackend(t, func(t *testing.T, name string) {
		withCompactThreshold(8, func() {
			rng := rand.New(rand.NewSource(181))
			rs := structuredRuleSet(rng, 300)
			opts := fastOpts()
			opts.RemainderName = name
			e, err := Build(rs, opts)
			if err != nil {
				t.Fatal(err)
			}
			if e.remFrozen == nil {
				t.Fatalf("%s remainder must be frozen into the snapshot", name)
			}
			if got := e.Stats().RemainderBackend; got != name {
				t.Fatalf("BuildStats.RemainderBackend = %q, want %q", got, name)
			}

			live := make(map[int]rules.Rule, rs.Len())
			for i := range rs.Rules {
				live[rs.Rules[i].ID] = rs.Rules[i]
			}
			nextID := 50000
			for step := 0; step < 25; step++ {
				for burst := 0; burst < 10; burst++ {
					if rng.Intn(2) == 0 || len(live) < 50 {
						f := make([]rules.Range, 5)
						for d := range f {
							lo := rng.Uint32() >> 1
							f[d] = rules.Range{Lo: lo, Hi: lo + rng.Uint32()>>8}
						}
						r := rules.Rule{ID: nextID, Priority: int32(10000 + nextID), Fields: f}
						nextID++
						if err := e.Insert(r); err != nil {
							t.Fatal(err)
						}
						live[r.ID] = r
					} else {
						for id := range live {
							if err := e.Delete(id); err != nil {
								t.Fatal(err)
							}
							delete(live, id)
							break
						}
					}
				}

				ref := rules.NewRuleSet(5)
				for _, r := range live {
					ref.Add(r)
				}
				lin, err := linear.Build(ref)
				if err != nil {
					t.Fatal(err)
				}
				pkts := make([]rules.Packet, 64)
				want := make([]int, len(pkts))
				for i := range pkts {
					pkts[i] = conformance.RandomPacket(rng, ref)
					want[i] = lin.Lookup(pkts[i])
				}
				out := make([]int, len(pkts))
				e.LookupBatch(pkts, out)
				for i, p := range pkts {
					if got := e.Lookup(p); got != want[i] {
						t.Fatalf("step %d: Lookup(%v) = %d, linear = %d", step, p, got, want[i])
					}
					if out[i] != want[i] {
						t.Fatalf("step %d: LookupBatch(%v) = %d, linear = %d", step, p, out[i], want[i])
					}
				}
			}
			if e.Updates().OverlayCompactions == 0 {
				t.Fatal("test never exercised overlay compaction")
			}
		})
	})
}
