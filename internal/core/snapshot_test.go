package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"nuevomatch/internal/classbench"
	"nuevomatch/internal/classifiers/conformance"
	"nuevomatch/internal/rules"
)

// TestLookupBatchMatchesLookup asserts the batched path agrees with
// per-packet Lookup on a ClassBench-style rule-set, including batch sizes
// that do not divide the chunk width.
func TestLookupBatchMatchesLookup(t *testing.T) {
	p, err := classbench.ProfileByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	rs := classbench.Generate(p, 2000)
	e, err := Build(rs, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{1, 63, 64, 65, 1000} {
		pkts := make([]rules.Packet, n)
		for i := range pkts {
			if i%2 == 0 {
				pkts[i] = classbench.MatchingPacket(rng, &rs.Rules[rng.Intn(rs.Len())])
			} else {
				pkts[i] = conformance.RandomPacket(rng, rs)
			}
		}
		out := make([]int, n)
		e.LookupBatch(pkts, out)
		for i, pkt := range pkts {
			if want := e.Lookup(pkt); out[i] != want {
				t.Fatalf("n=%d: batch[%d] = %d, Lookup = %d", n, i, out[i], want)
			}
		}
		// Ground truth as well, not just self-agreement (equal-priority
		// ties may resolve differently between engine and reference).
		for i, pkt := range pkts {
			want := rs.MatchID(pkt)
			if out[i] == want {
				continue
			}
			gp, gok := prioIn(rs, out[i])
			wp, wok := prioIn(rs, want)
			if !gok || !wok || gp != wp {
				t.Fatalf("n=%d: batch[%d] = %d, reference = %d", n, i, out[i], want)
			}
		}
	}
}

// TestLookupBatchAfterUpdates asserts batch/scalar agreement on a drifted
// engine (inserts into the remainder plus iSet deletions).
func TestLookupBatchAfterUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	rs := structuredRuleSet(rng, 300)
	e, err := Build(rs, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		f := make([]rules.Range, 5)
		for d := range f {
			lo := rng.Uint32() >> 1
			f[d] = rules.Range{Lo: lo, Hi: lo + rng.Uint32()>>8}
		}
		if err := e.Insert(rules.Rule{ID: 50000 + i, Priority: int32(rng.Intn(500)), Fields: f}); err != nil {
			t.Fatal(err)
		}
	}
	deleted := 0
	for id := range e.inISet {
		if err := e.Delete(id); err != nil {
			t.Fatal(err)
		}
		if deleted++; deleted == 20 {
			break
		}
	}
	pkts := make([]rules.Packet, 777)
	for i := range pkts {
		pkts[i] = conformance.RandomPacket(rng, rs)
	}
	out := make([]int, len(pkts))
	e.LookupBatch(pkts, out)
	for i, pkt := range pkts {
		if want := e.Lookup(pkt); out[i] != want {
			t.Fatalf("batch[%d] = %d, Lookup = %d", i, out[i], want)
		}
	}
}

// TestConcurrentLookupsRacingUpdates hammers the lock-free read path from
// several goroutines while a writer inserts, deletes and re-inserts rules.
// Run under -race this checks the RCU publication discipline: readers must
// never observe torn state, and every answer must be a rule that was live at
// some point during the run (or -1).
func TestConcurrentLookupsRacingUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	rs := structuredRuleSet(rng, 300)
	e, err := Build(rs, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Any ID ever live during the test: built rules plus the writer's range.
	everLive := make(map[int]bool, rs.Len())
	for i := range rs.Rules {
		everLive[rs.Rules[i].ID] = true
	}
	const writerIDs = 200
	for i := 0; i < writerIDs; i++ {
		everLive[70000+i] = true
	}

	pkts := make([]rules.Packet, 256)
	for i := range pkts {
		pkts[i] = conformance.RandomPacket(rng, rs)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			out := make([]int, 64)
			for !stop.Load() {
				if r.Intn(2) == 0 {
					p := pkts[r.Intn(len(pkts))]
					if id := e.Lookup(p); id >= 0 && !everLive[id] {
						select {
						case errc <- fmt.Errorf("Lookup returned unknown ID %d", id):
						default:
						}
						return
					}
				} else {
					off := r.Intn(len(pkts) - 64)
					e.LookupBatch(pkts[off:off+64], out)
					for _, id := range out {
						if id >= 0 && !everLive[id] {
							select {
							case errc <- fmt.Errorf("LookupBatch returned unknown ID %d", id):
							default:
							}
							return
						}
					}
				}
			}
		}(int64(100 + g))
	}

	// Writer: churn inserted rules and delete some built iSet rules.
	wrng := rand.New(rand.NewSource(34))
	inserted := make([]int, 0, writerIDs)
	nextID := 0
	for step := 0; step < 400; step++ {
		switch {
		case nextID < writerIDs && wrng.Intn(2) == 0:
			id := 70000 + nextID
			nextID++
			f := make([]rules.Range, 5)
			for d := range f {
				lo := wrng.Uint32() >> 1
				f[d] = rules.Range{Lo: lo, Hi: lo + wrng.Uint32()>>10}
			}
			if err := e.Insert(rules.Rule{ID: id, Priority: int32(wrng.Intn(1000)), Fields: f}); err != nil {
				t.Fatal(err)
			}
			inserted = append(inserted, id)
		case len(inserted) > 0:
			i := wrng.Intn(len(inserted))
			if err := e.Delete(inserted[i]); err != nil {
				t.Fatal(err)
			}
			inserted = append(inserted[:i], inserted[i+1:]...)
		}
		if step%40 == 7 {
			// Delete one still-live iSet rule (copy-on-write meta path).
			e.mu.Lock()
			var victim = -1
			for id := range e.inISet {
				victim = id
				break
			}
			e.mu.Unlock()
			if victim >= 0 {
				if err := e.Delete(victim); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// Quiesced: the engine must agree with the reference over the live set.
	ref := e.LiveRuleSet()
	for i := 0; i < 1000; i++ {
		p := conformance.RandomPacket(rng, ref)
		got, want := e.Lookup(p), ref.MatchID(p)
		if got != want {
			gp, gok := prioIn(ref, got)
			wp, wok := prioIn(ref, want)
			if !gok || !wok || gp != wp { // equal-priority ties allowed
				t.Fatalf("quiesced Lookup = %d, reference = %d", got, want)
			}
		}
	}
}

func prioIn(rs *rules.RuleSet, id int) (int32, bool) {
	for i := range rs.Rules {
		if rs.Rules[i].ID == id {
			return rs.Rules[i].Priority, true
		}
	}
	return 0, false
}

// TestOptionsSentinels covers the explicit negative sentinels: MaxISets < 0
// disables iSets, MinCoverage < 0 disables coverage filtering.
func TestOptionsSentinels(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	rs := structuredRuleSet(rng, 120)

	opts := fastOpts()
	opts.MaxISets = -1
	e, err := Build(rs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if e.NumISets() != 0 {
		t.Fatalf("MaxISets = -1: NumISets = %d, want 0", e.NumISets())
	}
	if e.Stats().RemainderSize != rs.Len() {
		t.Fatalf("MaxISets = -1: RemainderSize = %d, want %d", e.Stats().RemainderSize, rs.Len())
	}
	for i := 0; i < 500; i++ {
		p := conformance.RandomPacket(rng, rs)
		if got, want := e.Lookup(p), rs.MatchID(p); got != want {
			t.Fatalf("remainder-only Lookup = %d, want %d", got, want)
		}
	}

	// Rebuild must preserve the sentinel (withDefaults must not turn the
	// resolved value back into a default).
	e2, err := e.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	if e2.NumISets() != 0 {
		t.Fatalf("rebuilt with MaxISets = -1: NumISets = %d, want 0", e2.NumISets())
	}

	// MinCoverage < 0 keeps even tiny iSets that the low-diversity set
	// would otherwise discard under a 25% threshold.
	low := rules.NewRuleSet(2)
	for i := 0; i < 40; i++ {
		low.AddAuto(rules.ExactRange(uint32(i%2)), rules.FullRange())
	}
	lopts := fastOpts()
	lopts.MinCoverage = -1
	le, err := Build(low, lopts)
	if err != nil {
		t.Fatal(err)
	}
	if le.NumISets() == 0 {
		t.Fatal("MinCoverage = -1 must keep small iSets")
	}
	for i := 0; i < 500; i++ {
		p := conformance.RandomPacket(rng, low)
		if got, want := le.Lookup(p), low.MatchID(p); got != want {
			t.Fatalf("MinCoverage = -1 Lookup = %d, want %d", got, want)
		}
	}
}
