package core

import (
	"math"

	"nuevomatch/internal/rules"
)

// ShardView is a pinned read view of one engine: the immutable snapshot that
// was current when View was called. It exists for multi-engine merge paths —
// the cluster's scatter/gather fans one batch out to several engines, and
// pinning each engine's snapshot once per batch means the whole sub-batch is
// answered against a single consistent state with a single atomic load,
// instead of re-loading the snapshot pointer (and potentially observing a
// concurrent publish) per packet. A view stays valid indefinitely — the
// snapshot it pins is immutable and lookups against it are lock-free — it
// just stops reflecting updates published after View returned.
type ShardView struct {
	s *snapshot
}

// View pins the engine's current snapshot. O(1): one atomic pointer load.
func (e *Engine) View() ShardView { return ShardView{s: e.snapshot()} }

// Valid reports whether the view carries a snapshot (the zero ShardView does
// not).
func (v ShardView) Valid() bool { return v.s != nil }

// Lookup runs the single-packet early-termination flow of §4 against the
// pinned snapshot. Same results as Engine.Lookup at the moment the view was
// taken.
func (v ShardView) Lookup(p rules.Packet) int {
	return v.s.lookup(p, math.MaxInt32)
}

// LookupWithBound is Lookup under an externally known best priority.
func (v ShardView) LookupWithBound(p rules.Packet, bestPrio int32) int {
	return v.s.lookup(p, bestPrio)
}

// LookupBatch classifies len(pkts) packets into out (which must have at
// least len(pkts) entries) with batched RQ-RMI inference against the pinned
// snapshot. Zero-alloc in steady state, like Engine.LookupBatch.
func (v ShardView) LookupBatch(pkts []rules.Packet, out []int) {
	v.s.lookupBatch(pkts, out)
}
