package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nuevomatch/internal/classbench"
	"nuevomatch/internal/faultinject"
	"nuevomatch/internal/rules"
)

// driftedCluster builds a cluster over prof, churns it past minUpdates
// updates, and returns the driver.
func driftedCluster(t *testing.T, prof classbench.Profile, shards, minUpdates int, seed int64) *clusterDriver {
	t.Helper()
	d := newClusterDriver(t, prof, 150, 200, clusterTestOpts(shards, PartitionRange), seed)
	t.Cleanup(func() { d.c.Close() })
	for d.inserts+d.deletes < minUpdates {
		d.step()
	}
	return d
}

// snapshotMismatches loads the cluster saved in dir and counts lookup
// disagreements against a mirror snapshot over the given probes.
func snapshotMismatches(t *testing.T, dir string, mirror *rules.RuleSet, pkts []rules.Packet) int {
	t.Helper()
	c, err := LoadClusterDir(dir, nil)
	if err != nil {
		t.Fatalf("LoadClusterDir(%s): %v", dir, err)
	}
	defer c.Close()
	if h := c.Health(); h.State == Failed {
		t.Fatalf("loaded cluster reports Failed: %v", h)
	}
	mm := 0
	for _, p := range pkts {
		if c.Lookup(p) != mirror.MatchID(p) {
			mm++
		}
	}
	return mm
}

// TestClusterGenerationLayout: successive saves append generations, CURRENT
// tracks the newest, and pruning keeps exactly the serving generation plus
// its rollback predecessor.
func TestClusterGenerationLayout(t *testing.T) {
	prof, err := classbench.ProfileByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	d := driftedCluster(t, prof, 2, 20, 3)
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		if err := d.c.SaveDir(dir); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
		for d.inserts+d.deletes < 20+10*(i+1) {
			d.step()
		}
	}
	gens, debris, err := listGenerations(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(debris) != 0 {
		t.Fatalf("clean saves left debris: %v", debris)
	}
	if len(gens) != 2 || gens[0] != 2 || gens[1] != 3 {
		t.Fatalf("generations after 3 saves = %v, want [2 3] (current + predecessor)", gens)
	}
	gdir, err := ClusterCurrentDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := filepath.Base(gdir); got != genDirName(3) {
		t.Fatalf("CURRENT resolves to %s, want %s", got, genDirName(3))
	}
	// The generation carries all three artifact kinds.
	for _, name := range []string{ClusterManifestName, clusterRulesName, shardFileName(0)} {
		if _, err := os.Stat(filepath.Join(gdir, name)); err != nil {
			t.Fatalf("generation missing %s: %v", name, err)
		}
	}
	if rep, err := FsckClusterDir(dir, false); err != nil || !rep.Healthy() {
		t.Fatalf("fresh save unhealthy: %+v, err %v", rep, err)
	}
}

// TestClusterLegacyFlatLayout: a directory holding cluster.json directly
// (the pre-generation layout) still loads and passes fsck in place.
func TestClusterLegacyFlatLayout(t *testing.T) {
	prof, err := classbench.ProfileByName("ipc1")
	if err != nil {
		t.Fatal(err)
	}
	d := driftedCluster(t, prof, 2, 20, 5)
	dir := t.TempDir()
	if err := d.c.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	// Flatten: move the generation's contents into dir and drop CURRENT,
	// reconstructing what an old save looked like.
	gdir, err := ClusterCurrentDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(gdir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		if err := os.Rename(filepath.Join(gdir, ent.Name()), filepath.Join(dir, ent.Name())); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Remove(gdir); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, ClusterCurrentName)); err != nil {
		t.Fatal(err)
	}

	pkts := make([]rules.Packet, 300)
	for i := range pkts {
		pkts[i] = d.packet()
	}
	if mm := snapshotMismatches(t, dir, d.mirror, pkts); mm != 0 {
		t.Fatalf("legacy flat load: %d mismatches", mm)
	}
	rep, err := FsckClusterDir(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() {
		t.Fatalf("legacy flat layout reported unhealthy: %+v", rep)
	}
	if len(rep.Generations) != 1 || rep.Generations[0].Name != "." {
		t.Fatalf("legacy verification shape: %+v", rep.Generations)
	}
}

// TestClusterRulesArtifactCodec: the replica-table artifact round-trips,
// and every corruption mode is detected rather than decoded.
func TestClusterRulesArtifactCodec(t *testing.T) {
	byID := map[int]rules.Rule{
		1: {ID: 1, Priority: 2, Fields: []rules.Range{{Lo: 0, Hi: 100}, {Lo: 5, Hi: 5}}},
		7: {ID: 7, Priority: 1, Fields: []rules.Range{{Lo: 50, Hi: 60}, rules.FullRange()}},
	}
	blob, err := encodeClusterRules(2, byID)
	if err != nil {
		t.Fatal(err)
	}
	nf, rs, err := readClusterRules(blob)
	if err != nil {
		t.Fatal(err)
	}
	if nf != 2 || len(rs) != 2 || rs[0].ID != 1 || rs[1].ID != 7 {
		t.Fatalf("round trip: fields %d rules %+v", nf, rs)
	}

	flip := func(i int) []byte {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x10
		return mut
	}
	if _, _, err := readClusterRules(flip(len(blob) / 2)); err == nil {
		t.Fatal("payload corruption not detected")
	}
	if _, _, err := readClusterRules(flip(len(blob) - 2)); err == nil {
		t.Fatal("trailer corruption not detected")
	}
	if _, _, err := readClusterRules(blob[:len(blob)-3]); err == nil {
		t.Fatal("truncation not detected")
	}
	if _, _, err := readClusterRules(nil); err == nil {
		t.Fatal("empty artifact not rejected")
	}
}

// TestClusterSaveKillPointSweep kills a save at every write step via fault
// injection and proves the crash-safety contract at each: the directory
// still loads (landing on a complete generation with zero lookup
// mismatches against its snapshot), fsck repairs it to a healthy state,
// and a subsequent save succeeds over the debris.
func TestClusterSaveKillPointSweep(t *testing.T) {
	prof, err := classbench.ProfileByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		point faultinject.Point
		skip  int
	}{
		{faultinject.PointClusterSaveShard, 0},
		{faultinject.PointClusterSaveShard, 1},
		{faultinject.PointClusterSaveShard, 2},
		{faultinject.PointClusterSaveRules, 0},
		{faultinject.PointClusterSaveManifest, 0},
		{faultinject.PointClusterSaveSync, 0},
		{faultinject.PointClusterSaveRename, 0},
		{faultinject.PointClusterSaveCurrent, 0},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s@%d", strings.TrimPrefix(string(tc.point), "core.cluster.save."), tc.skip), func(t *testing.T) {
			defer faultinject.Reset()
			d := driftedCluster(t, prof, 3, 30, 11)
			if d.c.NumShards() <= tc.skip {
				t.Skipf("only %d shards", d.c.NumShards())
			}
			dir := t.TempDir()
			if err := d.c.SaveDir(dir); err != nil {
				t.Fatalf("baseline save: %v", err)
			}
			mirror1 := d.mirror.Clone()
			for d.inserts+d.deletes < 60 {
				d.step()
			}
			mirror2 := d.mirror.Clone()
			pkts := make([]rules.Packet, 400)
			for i := range pkts {
				pkts[i] = d.packet()
			}

			faultinject.Enable(tc.point, faultinject.Rule{SkipFirst: tc.skip, FailCount: 1})
			err := d.c.SaveDir(dir)
			fired := faultinject.Triggered(tc.point)
			faultinject.Disable(tc.point)
			if err == nil {
				t.Fatalf("save survived kill at %s", tc.point)
			}
			if fired == 0 {
				t.Fatalf("kill point %s never fired", tc.point)
			}

			// The torn directory must load onto a complete snapshot: the
			// last-good generation, or — when the kill struck after the new
			// generation's rename — possibly the new one. Either way, zero
			// mismatches against that snapshot.
			mm1 := snapshotMismatches(t, dir, mirror1, pkts)
			mm2 := snapshotMismatches(t, dir, mirror2, pkts)
			if mm1 != 0 && mm2 != 0 {
				t.Fatalf("torn dir loads a state matching neither snapshot (%d/%d mismatches)", mm1, mm2)
			}

			// fsck repair must leave a verified-healthy directory that still
			// loads one of the snapshots cleanly.
			if _, err := FsckClusterDir(dir, true); err != nil {
				t.Fatalf("fsck repair: %v", err)
			}
			rep, err := FsckClusterDir(dir, false)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Healthy() {
				t.Fatalf("directory unhealthy after repair: %+v", rep)
			}
			mm1 = snapshotMismatches(t, dir, mirror1, pkts)
			mm2 = snapshotMismatches(t, dir, mirror2, pkts)
			if mm1 != 0 && mm2 != 0 {
				t.Fatalf("repaired dir matches neither snapshot (%d/%d mismatches)", mm1, mm2)
			}

			// Life goes on: the next save over the repaired directory
			// succeeds and serves the current state.
			if err := d.c.SaveDir(dir); err != nil {
				t.Fatalf("save after repair: %v", err)
			}
			if mm := snapshotMismatches(t, dir, mirror2, pkts); mm != 0 {
				t.Fatalf("post-repair save: %d mismatches", mm)
			}
		})
	}
}

// TestFsckRepairScenarios covers corruption fsck must handle beyond torn
// saves: a dangling CURRENT, a malformed CURRENT, and a corrupted shard
// inside the newest generation (roll back to the predecessor).
func TestFsckRepairScenarios(t *testing.T) {
	prof, err := classbench.ProfileByName("fw1")
	if err != nil {
		t.Fatal(err)
	}
	d := driftedCluster(t, prof, 2, 20, 19)
	dir := t.TempDir()
	if err := d.c.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	mirror1 := d.mirror.Clone()
	for d.inserts+d.deletes < 40 {
		d.step()
	}
	if err := d.c.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	pkts := make([]rules.Packet, 300)
	for i := range pkts {
		pkts[i] = d.packet()
	}

	cur := filepath.Join(dir, ClusterCurrentName)

	// Malformed CURRENT: load refuses, repair restores the newest intact.
	if err := os.WriteFile(cur, []byte("../../etc\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadClusterDir(dir, nil); err == nil {
		t.Fatal("malformed CURRENT loaded")
	}
	if _, err := FsckClusterDir(dir, true); err != nil {
		t.Fatalf("repairing malformed CURRENT: %v", err)
	}
	if mm := snapshotMismatches(t, dir, d.mirror, pkts); mm != 0 {
		t.Fatalf("after malformed-CURRENT repair: %d mismatches", mm)
	}

	// Corrupt every shard of the newest generation: repair must roll back
	// to the predecessor (mirror1's snapshot).
	gdir, err := ClusterCurrentDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < d.c.NumShards(); s++ {
		p := filepath.Join(gdir, shardFileName(s))
		blob, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		blob[len(blob)/2] ^= 0xFF
		if err := os.WriteFile(p, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := FsckClusterDir(dir, true)
	if err != nil {
		t.Fatalf("rollback repair: %v", err)
	}
	if !rep.RepairedCurrent {
		t.Fatalf("repair did not move CURRENT: %+v", rep)
	}
	if mm := snapshotMismatches(t, dir, mirror1, pkts); mm != 0 {
		t.Fatalf("after rollback repair: %d mismatches against predecessor snapshot", mm)
	}

	// Dangling CURRENT (generation directory gone): repair points at what
	// remains.
	gdir, err = ClusterCurrentDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cur, []byte(genDirName(99999999)+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadClusterDir(dir, nil); err == nil {
		t.Fatal("dangling CURRENT loaded")
	}
	if _, err := FsckClusterDir(dir, true); err != nil {
		t.Fatalf("repairing dangling CURRENT: %v", err)
	}
	if got, err := ClusterCurrentDir(dir); err != nil || got != gdir {
		t.Fatalf("dangling-CURRENT repair resolved %q (err %v), want %q", got, err, gdir)
	}

	// A directory with no intact generation at all cannot be repaired, and
	// says so instead of fabricating state.
	broken := t.TempDir()
	if err := os.Mkdir(filepath.Join(broken, genDirName(1)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(broken, ClusterCurrentName), []byte(genDirName(1)+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := FsckClusterDir(broken, true); err == nil {
		t.Fatal("repair fabricated a cluster from nothing")
	}
}

// TestClusterLoadQuarantinesTornShard: a save killed mid-shard-write
// followed by a manual CURRENT flip (simulating the worst operator move)
// still serves every packet correctly — the torn shard comes up
// quarantined on its rules-artifact fallback, and the background rebuild
// returns the cluster to Healthy.
func TestClusterLoadQuarantinesTornShard(t *testing.T) {
	defer faultinject.Reset()
	prof, err := classbench.ProfileByName("acl2")
	if err != nil {
		t.Fatal(err)
	}
	d := driftedCluster(t, prof, 3, 30, 23)
	dir := t.TempDir()
	if err := d.c.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	gdir, err := ClusterCurrentDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one shard artifact of the serving generation in place.
	target := filepath.Join(gdir, shardFileName(1))
	blob, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0x01 // break the CRC trailer
	if err := os.WriteFile(target, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	c, err := LoadClusterDir(dir, nil)
	if err != nil {
		t.Fatalf("quarantine load: %v", err)
	}
	defer c.Close()
	if got := c.QuarantinedShards(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("quarantined = %v, want [1]", got)
	}
	h := c.Health()
	if h.State != Degraded {
		t.Fatalf("health = %v, want Degraded", h)
	}
	if len(h.Reasons) == 0 || h.Reasons[0].Code != "shard-quarantined" {
		t.Fatalf("reasons = %+v", h.Reasons)
	}
	// Fail-static while degraded: every answer correct.
	for i := 0; i < 400; i++ {
		p := d.packet()
		if got, want := c.Lookup(p), d.mirror.MatchID(p); got != want {
			t.Fatalf("degraded Lookup(%v) = %d, want %d", p, got, want)
		}
	}
	// The background rebuild retrains the fallback and clears quarantine.
	waitHealthy(t, c)
}
