package core

import (
	"math/rand"
	"testing"

	"nuevomatch/internal/classifiers/conformance"
)

func TestLookupNoEarlyTerminationMatchesLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	rs := structuredRuleSet(rng, 400)
	e, err := Build(rs, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		p := conformance.RandomPacket(rng, rs)
		if got, want := e.LookupNoEarlyTermination(p), e.Lookup(p); got != want {
			t.Fatalf("ablation path diverged on %v: %d vs %d", p, got, want)
		}
	}
}
