package core

import (
	"sort"

	"nuevomatch/internal/rules"
)

// This file implements the remainder delta overlay: the small mutable edge
// of the otherwise-frozen remainder. The published snapshot owns a compiled
// rules.FrozenClassifier (built by the remainder's Freeze) plus one
// immutable *remOverlay describing every update since that freeze — rules
// added (scanned lock-free in priority order) and frozen rules deleted
// (masked out of the frozen scan via a sorted skip list). The write side
// maintains the overlay copy-on-write and, when the delta outgrows
// overlayCompactThreshold, compacts it back into a fresh frozen form, so
// the read path's overlay work stays O(threshold) while updates stay cheap.

// overlayCompactThreshold is the delta size (additions plus deletions) past
// which the write side re-freezes the remainder and resets the overlay. A
// var, not a const, so tests can force frequent compactions.
var overlayCompactThreshold = 64

// remOverlay is an immutable delta over the frozen remainder. Added rules
// are stored struct-of-arrays sorted by ascending priority, so a scan can
// stop at the bound and the first match is the best. del holds the IDs of
// frozen rules deleted since the freeze, sorted ascending for the frozen
// scan's binary-search mask; rules that were added and then deleted are
// removed from the add arrays instead.
//
//nm:immutable
type remOverlay struct {
	numFields int
	addID     []int
	addPrio   []int32  // ascending
	addLo     []uint32 // stride numFields
	addHi     []uint32
	del       []int // sorted ascending
}

// size is the delta's entry count, compared against the compaction
// threshold.
func (ov *remOverlay) size() int { return len(ov.addID) + len(ov.del) }

// scan returns the best added rule beating bestPrio that matches p, or -1.
// Additions are priority-sorted, so the first match wins.
//
//nm:hotpath
func (ov *remOverlay) scan(p rules.Packet, bestPrio int32) (int, int32) {
	nf := ov.numFields
	if len(p) < nf {
		return rules.NoMatch, bestPrio
	}
	for i := range ov.addPrio {
		if ov.addPrio[i] >= bestPrio {
			break
		}
		base := i * nf
		in := uint32(1)
		for d := 0; d < nf; d++ {
			lo := ov.addLo[base+d]
			hi := ov.addHi[base+d]
			in &= b32(p[d]-lo <= hi-lo)
		}
		if in != 0 {
			return ov.addID[i], ov.addPrio[i]
		}
	}
	return rules.NoMatch, bestPrio
}

// scanBatch applies scan to a chunk, tightening bounds and recording
// winners in place (entries it cannot improve are left untouched).
//
//nm:hotpath
func (ov *remOverlay) scanBatch(pkts []rules.Packet, bounds []int32, out []int) {
	if len(ov.addPrio) == 0 {
		return
	}
	for c, p := range pkts {
		if id, prio := ov.scan(p, bounds[c]); id >= 0 {
			out[c] = id
			bounds[c] = prio
		}
	}
}

//
//nm:hotpath
func b32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// withAdd returns a new overlay with r inserted into the priority-sorted
// add arrays. The receiver is never mutated: published snapshots keep
// referencing it.
//
//nm:builder remOverlay
func (ov *remOverlay) withAdd(r rules.Rule) *remOverlay {
	nf := ov.numFields
	i := sort.Search(len(ov.addPrio), func(i int) bool { return ov.addPrio[i] > r.Priority })
	n := len(ov.addID)
	next := &remOverlay{
		numFields: nf,
		addID:     make([]int, n+1),
		addPrio:   make([]int32, n+1),
		addLo:     make([]uint32, (n+1)*nf),
		addHi:     make([]uint32, (n+1)*nf),
		del:       ov.del,
	}
	copy(next.addID, ov.addID[:i])
	copy(next.addPrio, ov.addPrio[:i])
	copy(next.addLo, ov.addLo[:i*nf])
	copy(next.addHi, ov.addHi[:i*nf])
	next.addID[i] = r.ID
	next.addPrio[i] = r.Priority
	for d, f := range r.Fields {
		next.addLo[i*nf+d] = f.Lo
		next.addHi[i*nf+d] = f.Hi
	}
	copy(next.addID[i+1:], ov.addID[i:])
	copy(next.addPrio[i+1:], ov.addPrio[i:])
	copy(next.addLo[(i+1)*nf:], ov.addLo[i*nf:])
	copy(next.addHi[(i+1)*nf:], ov.addHi[i*nf:])
	return next
}

// withDelete returns a new overlay reflecting the deletion of id: an added
// rule is dropped from the add arrays, a frozen rule joins the sorted skip
// list.
//
//nm:builder remOverlay
func (ov *remOverlay) withDelete(id int) *remOverlay {
	nf := ov.numFields
	for i, aid := range ov.addID {
		if aid != id {
			continue
		}
		n := len(ov.addID)
		next := &remOverlay{
			numFields: nf,
			addID:     make([]int, n-1),
			addPrio:   make([]int32, n-1),
			addLo:     make([]uint32, (n-1)*nf),
			addHi:     make([]uint32, (n-1)*nf),
			del:       ov.del,
		}
		copy(next.addID, ov.addID[:i])
		copy(next.addID[i:], ov.addID[i+1:])
		copy(next.addPrio, ov.addPrio[:i])
		copy(next.addPrio[i:], ov.addPrio[i+1:])
		copy(next.addLo, ov.addLo[:i*nf])
		copy(next.addLo[i*nf:], ov.addLo[(i+1)*nf:])
		copy(next.addHi, ov.addHi[:i*nf])
		copy(next.addHi[i*nf:], ov.addHi[(i+1)*nf:])
		return next
	}
	i := sort.SearchInts(ov.del, id)
	if i < len(ov.del) && ov.del[i] == id {
		return ov // already masked
	}
	del := make([]int, len(ov.del)+1)
	copy(del, ov.del[:i])
	del[i] = id
	copy(del[i+1:], ov.del[i:])
	next := *ov
	next.del = del
	return &next
}
