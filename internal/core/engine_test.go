package core

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"nuevomatch/internal/classifiers/conformance"
	"nuevomatch/internal/classifiers/cutsplit"
	"nuevomatch/internal/classifiers/linear"
	"nuevomatch/internal/rqrmi"
	"nuevomatch/internal/rules"
)

// fastOpts keeps training cheap in tests.
func fastOpts() Options {
	return Options{
		MaxISets:    4,
		MinCoverage: 0.05,
		RQRMI: rqrmi.Config{
			StageWidths:    []int{1, 4},
			TargetError:    32,
			MaxRetrain:     2,
			MinSamples:     64,
			MaxSamples:     1024,
			InternalEpochs: 120,
			LeafEpochs:     200,
			Seed:           1,
			Workers:        2,
		},
	}
}

// structuredRuleSet has enough field diversity for good iSet coverage.
func structuredRuleSet(rng *rand.Rand, n int) *rules.RuleSet {
	rs := rules.NewRuleSet(5)
	for i := 0; i < n; i++ {
		rs.AddAuto(
			rules.PrefixRange(rng.Uint32(), 16+rng.Intn(17)),
			rules.PrefixRange(rng.Uint32(), 8+rng.Intn(25)),
			rules.Range{Lo: 0, Hi: 65535},
			rules.ExactRange(uint32(rng.Intn(60000))),
			rules.ExactRange(uint32([]int{6, 17}[rng.Intn(2)])),
		)
	}
	return rs
}

func TestBuildAndLookupAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rs := structuredRuleSet(rng, 600)
	e, err := Build(rs, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if e.NumISets() == 0 {
		t.Fatal("expected at least one iSet on a high-diversity rule-set")
	}
	st := e.Stats()
	if st.Coverage < 0.5 {
		t.Errorf("coverage = %.2f, want >= 0.5 on structured rules", st.Coverage)
	}
	for i := 0; i < 3000; i++ {
		p := conformance.RandomPacket(rng, rs)
		if got, want := e.Lookup(p), rs.MatchID(p); got != want {
			t.Fatalf("Lookup(%v) = %d, want %d", p, got, want)
		}
	}
}

func TestConformanceRandomSets(t *testing.T) {
	build := func(rs *rules.RuleSet) (rules.Classifier, error) {
		return Build(rs, fastOpts())
	}
	conformance.Check(t, build, 77, []int{1, 10, 100, 300}, 120)
	conformance.CheckDegenerate(t, build)
}

func TestCutSplitRemainder(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rs := structuredRuleSet(rng, 300)
	opts := fastOpts()
	opts.MinCoverage = 0.25
	opts.MaxISets = 2
	opts.Remainder = cutsplit.Build
	e, err := Build(rs, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		p := conformance.RandomPacket(rng, rs)
		if got, want := e.Lookup(p), rs.MatchID(p); got != want {
			t.Fatalf("Lookup(%v) = %d, want %d", p, got, want)
		}
	}
}

func TestLookupBatchParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rs := structuredRuleSet(rng, 400)
	e, err := Build(rs, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	pkts := make([]rules.Packet, 512)
	for i := range pkts {
		pkts[i] = conformance.RandomPacket(rng, rs)
	}
	// Exercise both implementations regardless of the host's CPU count:
	// GOMAXPROCS(1) takes the serial-batch fallback, GOMAXPROCS(2) the
	// two-worker split with pooled workers (valid even on one core — Go
	// time-slices). Repeated calls reuse the pooled worker.
	for _, procs := range []int{1, 2} {
		old := runtime.GOMAXPROCS(procs)
		for round := 0; round < 3; round++ {
			out := make([]int, len(pkts))
			e.LookupBatchParallel(pkts, out)
			for i, p := range pkts {
				if want := e.Lookup(p); out[i] != want {
					t.Fatalf("procs=%d round %d: parallel[%d] = %d, sequential = %d",
						procs, round, i, out[i], want)
				}
			}
		}
		// Concurrent callers must each get a worker (pool + spawn-on-empty).
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				out := make([]int, len(pkts))
				e.LookupBatchParallel(pkts, out)
			}()
		}
		wg.Wait()
		runtime.GOMAXPROCS(old)
	}

	// Close retires the pooled workers; the engine must stay usable and
	// Close must be idempotent.
	e.Close()
	e.Close()
	old := runtime.GOMAXPROCS(2)
	out := make([]int, len(pkts))
	e.LookupBatchParallel(pkts, out)
	runtime.GOMAXPROCS(old)
	for i, p := range pkts {
		if want := e.Lookup(p); out[i] != want {
			t.Fatalf("after Close: parallel[%d] = %d, sequential = %d", i, out[i], want)
		}
	}
	e.Close()
}

func TestProfileTraceMatchesLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rs := structuredRuleSet(rng, 300)
	e, err := Build(rs, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	pkts := make([]rules.Packet, 256)
	for i := range pkts {
		pkts[i] = conformance.RandomPacket(rng, rs)
	}
	prof, out := e.ProfileTrace(pkts)
	for i, p := range pkts {
		if want := e.Lookup(p); out[i] != want {
			t.Fatalf("profile[%d] = %d, lookup = %d", i, out[i], want)
		}
	}
	if prof.Packets != len(pkts) || prof.Total() <= 0 {
		t.Errorf("implausible profile: %+v", prof)
	}
}

func TestLowDiversityFallsBackToRemainder(t *testing.T) {
	// All rules share the same values in every field: no useful iSets at
	// 25% minimum coverage; the engine must degrade to remainder-only and
	// stay correct (the paper's fallback behaviour, §5.2).
	rs := rules.NewRuleSet(2)
	for i := 0; i < 40; i++ {
		rs.AddAuto(rules.ExactRange(uint32(i%2)), rules.FullRange())
	}
	opts := fastOpts()
	opts.MinCoverage = 0.25
	e, err := Build(rs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if e.NumISets() != 0 {
		t.Fatalf("NumISets = %d, want 0 below the coverage threshold", e.NumISets())
	}
	if got := e.Lookup(rules.Packet{0, 5}); got != 0 {
		t.Errorf("Lookup = %d, want 0", got)
	}
	if got, want := e.Stats().RemainderSize, 40; got != want {
		t.Errorf("RemainderSize = %d, want %d", got, want)
	}
}

func TestMemoryAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rs := structuredRuleSet(rng, 300)
	e, err := Build(rs, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if e.MemoryFootprint() != e.RQRMIBytes()+e.RemainderBytes() {
		t.Error("MemoryFootprint must equal RQRMIBytes + RemainderBytes")
	}
	if e.RQRMIBytes() <= 0 {
		t.Error("RQRMIBytes must be positive with trained iSets")
	}
}

func TestBuildRejectsInvalidRuleSet(t *testing.T) {
	rs := rules.NewRuleSet(2)
	rs.Add(rules.Rule{ID: 0, Fields: []rules.Range{{Lo: 5, Hi: 1}, rules.FullRange()}})
	if _, err := Build(rs, fastOpts()); err == nil {
		t.Error("invalid rule-set must be rejected")
	}
}

func TestLinearRemainderUnboundedPath(t *testing.T) {
	// Exercise queryRemainder's non-bounded path via a wrapper that hides
	// LookupWithBound.
	rng := rand.New(rand.NewSource(6))
	rs := structuredRuleSet(rng, 200)
	opts := fastOpts()
	opts.Remainder = func(sub *rules.RuleSet) (rules.Classifier, error) {
		return plainOnly{linear.New(sub)}, nil
	}
	e, err := Build(rs, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 800; i++ {
		p := conformance.RandomPacket(rng, rs)
		if got, want := e.Lookup(p), rs.MatchID(p); got != want {
			t.Fatalf("Lookup(%v) = %d, want %d", p, got, want)
		}
	}
}

// plainOnly strips the BoundedClassifier interface from a classifier.
type plainOnly struct{ c rules.Classifier }

func (p plainOnly) Name() string               { return p.c.Name() }
func (p plainOnly) Lookup(pk rules.Packet) int { return p.c.Lookup(pk) }
func (p plainOnly) MemoryFootprint() int       { return p.c.MemoryFootprint() }
