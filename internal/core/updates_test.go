package core

import (
	"math"
	"math/rand"
	"testing"

	"nuevomatch/internal/classifiers/conformance"
	"nuevomatch/internal/rules"
)

func TestDeleteFromISetTombstones(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rs := structuredRuleSet(rng, 200)
	e, err := Build(rs, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Find a rule indexed by an iSet and a packet that matches it.
	var victim int = -1
	var pkt rules.Packet
	for id, loc := range e.inISet {
		_ = loc
		pos := e.posID[id]
		r := &rs.Rules[pos]
		p := make(rules.Packet, 5)
		for d, f := range r.Fields {
			p[d] = f.Lo
		}
		if rs.MatchID(p) == id {
			victim, pkt = id, p
			break
		}
	}
	if victim < 0 {
		t.Skip("no directly-hittable iSet rule in this draw")
	}
	if got := e.Lookup(pkt); got != victim {
		t.Fatalf("pre-delete Lookup = %d, want %d", got, victim)
	}
	if err := e.Delete(victim); err != nil {
		t.Fatal(err)
	}
	// The victim no longer matches; result must equal the reference
	// without the victim.
	ref := rules.NewRuleSet(5)
	for i := range rs.Rules {
		if rs.Rules[i].ID != victim {
			ref.Add(rs.Rules[i])
		}
	}
	if got, want := e.Lookup(pkt), ref.MatchID(pkt); got != want {
		t.Fatalf("post-delete Lookup = %d, want %d", got, want)
	}
	if e.Updates().DeletedFromISets != 1 {
		t.Errorf("DeletedFromISets = %d, want 1", e.Updates().DeletedFromISets)
	}
	if err := e.Delete(victim); err == nil {
		t.Error("double delete must fail")
	}
}

func TestInsertGoesToRemainder(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	rs := structuredRuleSet(rng, 150)
	e, err := Build(rs, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := rules.Rule{
		ID:       100000,
		Priority: 0, // beats everything
		Fields: []rules.Range{
			rules.FullRange(), rules.FullRange(), rules.FullRange(),
			rules.FullRange(), rules.FullRange(),
		},
	}
	if err := e.Insert(r); err != nil {
		t.Fatal(err)
	}
	p := conformance.RandomPacket(rng, rs)
	if got := e.Lookup(p); got != 100000 {
		t.Fatalf("Lookup after inserting top-priority wildcard = %d, want 100000", got)
	}
	if err := e.Insert(r); err == nil {
		t.Error("duplicate insert must fail")
	}
	st := e.Updates()
	if st.Inserted != 1 {
		t.Errorf("Inserted = %d, want 1", st.Inserted)
	}
	if st.RemainderFraction <= 0 {
		t.Errorf("RemainderFraction = %v, want > 0 after insert", st.RemainderFraction)
	}
}

func TestModifyMovesRuleToRemainder(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rs := structuredRuleSet(rng, 150)
	e, err := Build(rs, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	victim := rs.Rules[7]
	mod := victim
	mod.Fields = append([]rules.Range(nil), victim.Fields...)
	mod.Fields[2] = rules.ExactRange(4242)
	if err := e.Modify(mod); err != nil {
		t.Fatal(err)
	}
	p := make(rules.Packet, 5)
	for d, f := range mod.Fields {
		p[d] = f.Lo
	}
	ref := rules.NewRuleSet(5)
	for i := range rs.Rules {
		if rs.Rules[i].ID == mod.ID {
			ref.Add(mod)
		} else {
			ref.Add(rs.Rules[i])
		}
	}
	if got, want := e.Lookup(p), ref.MatchID(p); got != want {
		t.Fatalf("post-modify Lookup = %d, want %d", got, want)
	}
}

func TestUpdateBurstAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	rs := structuredRuleSet(rng, 250)
	e, err := Build(rs, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	live := make(map[int]rules.Rule, rs.Len())
	for i := range rs.Rules {
		live[rs.Rules[i].ID] = rs.Rules[i]
	}
	nextID := 10000
	for step := 0; step < 300; step++ {
		switch rng.Intn(3) {
		case 0: // insert
			f := make([]rules.Range, 5)
			for d := range f {
				lo := rng.Uint32()
				f[d] = rules.Range{Lo: lo >> 1, Hi: lo>>1 + rng.Uint32()>>10}
			}
			r := rules.Rule{ID: nextID, Priority: int32(rng.Intn(1000)), Fields: f}
			nextID++
			if err := e.Insert(r); err != nil {
				t.Fatal(err)
			}
			live[r.ID] = r
		case 1: // delete a random live rule
			for id := range live {
				if err := e.Delete(id); err != nil {
					t.Fatal(err)
				}
				delete(live, id)
				break
			}
		default: // verify
			ref := rules.NewRuleSet(5)
			for _, r := range live {
				ref.Add(r)
			}
			p := conformance.RandomPacket(rng, ref)
			got, want := e.Lookup(p), ref.MatchID(p)
			if got != want {
				// Ties allowed: equal priority.
				if got < 0 || want < 0 || live[got].Priority != live[want].Priority {
					t.Fatalf("step %d: Lookup = %d, want %d", step, got, want)
				}
			}
		}
	}

	// Rebuild and re-verify: the retrained engine serves the same set.
	e2, err := e.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	ref := rules.NewRuleSet(5)
	for _, r := range live {
		ref.Add(r)
	}
	for i := 0; i < 500; i++ {
		p := conformance.RandomPacket(rng, ref)
		got, want := e2.Lookup(p), ref.MatchID(p)
		if got != want {
			if got < 0 || want < 0 || live[got].Priority != live[want].Priority {
				t.Fatalf("rebuilt: Lookup = %d, want %d", got, want)
			}
		}
	}
	if f := e2.Updates().RemainderFraction; f < 0 || f > 1 {
		t.Errorf("rebuilt remainder fraction = %v", f)
	}
}

func TestSustainedUpdateModel(t *testing.T) {
	// No updates: full accelerated throughput.
	if got := SustainedUpdateModel(500000, 0, 10, 4); got != 10 {
		t.Errorf("u=0: %v, want 10", got)
	}
	// Infinite updates: converges to the remainder throughput.
	if got := SustainedUpdateModel(500000, 1e12, 10, 4); math.Abs(got-4) > 1e-6 {
		t.Errorf("u→∞: %v, want 4", got)
	}
	// Monotone decreasing in u.
	prev := math.Inf(1)
	for _, u := range []float64{0, 1000, 10000, 100000, 1e6} {
		cur := SustainedUpdateModel(500000, u, 10, 4)
		if cur > prev {
			t.Errorf("model not monotone at u=%v", u)
		}
		prev = cur
	}
	// Degenerate rule count.
	if got := SustainedUpdateModel(0, 10, 10, 4); got != 4 {
		t.Errorf("r=0: %v, want 4", got)
	}
}

func TestLiveRuleSetUsesModifiedFields(t *testing.T) {
	// Regression: a built rule modified via §3.9 (delete + reinsert into
	// the remainder) must appear in LiveRuleSet with its NEW matching set,
	// or Rebuild resurrects the stale one.
	rng := rand.New(rand.NewSource(16))
	rs := structuredRuleSet(rng, 120)
	e, err := Build(rs, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	victim := rs.Rules[11]
	mod := victim
	mod.Fields = append([]rules.Range(nil), victim.Fields...)
	mod.Fields[3] = rules.ExactRange(31337)
	if err := e.Modify(mod); err != nil {
		t.Fatal(err)
	}
	live := e.LiveRuleSet()
	if live.Len() != 120 {
		t.Fatalf("live size = %d, want 120", live.Len())
	}
	found := false
	for i := range live.Rules {
		if live.Rules[i].ID == mod.ID {
			found = true
			if live.Rules[i].Fields[3] != rules.ExactRange(31337) {
				t.Fatalf("LiveRuleSet kept stale fields: %v", live.Rules[i].Fields[3])
			}
		}
	}
	if !found {
		t.Fatal("modified rule missing from LiveRuleSet")
	}
	// The rebuilt engine must agree with the drifted one everywhere.
	fresh, err := e.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		p := conformance.RandomPacket(rng, live)
		if a, b := e.Lookup(p), fresh.Lookup(p); a != b {
			t.Fatalf("drifted %d != rebuilt %d on %v", a, b, p)
		}
	}
}

func TestLiveRuleSetReflectsUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	rs := structuredRuleSet(rng, 100)
	e, err := Build(rs, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(rs.Rules[0].ID); err != nil {
		t.Fatal(err)
	}
	newRule := rules.Rule{ID: 555555, Priority: 1, Fields: make([]rules.Range, 5)}
	for d := range newRule.Fields {
		newRule.Fields[d] = rules.FullRange()
	}
	if err := e.Insert(newRule); err != nil {
		t.Fatal(err)
	}
	lrs := e.LiveRuleSet()
	if lrs.Len() != 100 { // -1 +1
		t.Fatalf("LiveRuleSet size = %d, want 100", lrs.Len())
	}
	ids := lrs.IndexByID()
	if _, has := ids[rs.Rules[0].ID]; has {
		t.Error("deleted rule still in LiveRuleSet")
	}
	if _, has := ids[555555]; !has {
		t.Error("inserted rule missing from LiveRuleSet")
	}
}
