// Package core assembles the complete NuevoMatch classifier of the paper:
// the rule-set is partitioned into iSets (§3.6) indexed by RQ-RMI models,
// the remainder is indexed by an external classifier (§3.7), and lookups
// combine model inference, bounded secondary search, multi-field validation,
// and highest-priority selection (Figure 1), with the early-termination
// optimization of §4 querying the remainder last under the best priority
// found in the iSets.
package core

import (
	"fmt"
	"math"
	"sync"
	"time"

	"nuevomatch/internal/classifiers/tuplemerge"
	"nuevomatch/internal/iset"
	"nuevomatch/internal/rqrmi"
	"nuevomatch/internal/rules"
)

// Options configures Build. The zero value reproduces the paper's default
// evaluation setup against TupleMerge: up to 4 iSets, 5% minimum coverage,
// RQ-RMI error threshold 64, TupleMerge remainder.
type Options struct {
	// MaxISets caps the number of RQ-RMI models. The paper finds 1–2 best
	// with CutSplit/NeuroCuts remainders and 4 with TupleMerge (§5.3.2).
	MaxISets int
	// MinCoverage discards iSets below this fraction of the rule-set:
	// 0.25 against cs/nc, 0.05 against tm in the paper's evaluation.
	MinCoverage float64
	// RQRMI is the per-iSet training configuration; zero fields default
	// per rqrmi.DefaultConfig for the iSet's size. The Seed is offset per
	// iSet to decorrelate models.
	RQRMI rqrmi.Config
	// Remainder builds the external classifier; nil means TupleMerge with
	// the paper's settings.
	Remainder rules.Builder
	// ISetFields optionally restricts which fields may carry iSets.
	ISetFields []int
}

func (o Options) withDefaults() Options {
	if o.MaxISets == 0 {
		o.MaxISets = 4
	}
	if o.MinCoverage == 0 {
		o.MinCoverage = 0.05
	}
	if o.Remainder == nil {
		o.Remainder = tuplemerge.Build
	}
	return o
}

// isetIndex is one trained iSet: an RQ-RMI over one field whose entry
// payloads are positions into the engine's rule slice.
type isetIndex struct {
	field int
	model *rqrmi.Model
}

// BuildStats reports what Build produced.
type BuildStats struct {
	// Coverage is the fraction of rules indexed by iSets.
	Coverage float64
	// ISetSizes lists the rule count of each trained iSet.
	ISetSizes []int
	// ISetFields lists the field each iSet indexes.
	ISetFields []int
	// RemainderSize is the number of rules left to the external classifier.
	RemainderSize int
	// TrainingTime is the total RQ-RMI training wall time.
	TrainingTime time.Duration
	// MaxSearchDistance is the largest guaranteed secondary search bound.
	MaxSearchDistance int
	// Train carries the per-iSet training statistics.
	Train []rqrmi.TrainStats
}

// Engine is a built NuevoMatch classifier. Lookups are safe for concurrent
// use; updates serialize internally (§3.9).
type Engine struct {
	opts Options

	mu     sync.RWMutex
	rs     *rules.RuleSet // snapshot; positions are stable
	posID  map[int]int    // built rule ID -> position
	prioID map[int]int32  // every live rule ID (built + inserted) -> priority
	live   map[int]bool   // rule ID -> not deleted
	isets  []isetIndex
	inISet map[int]isetEntry // rule ID -> tombstone location

	remainder      rules.Classifier
	remainderRules *rules.RuleSet // current remainder content (for rebuild/stats)

	stats  BuildStats
	ustats UpdateStats
}

type isetEntry struct {
	iset  int
	entry int
}

var _ rules.BoundedClassifier = (*Engine)(nil)

// Build trains a NuevoMatch engine over rs.
func Build(rs *rules.RuleSet, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	if err := rs.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		opts:   opts,
		rs:     rs.Clone(),
		posID:  rs.IndexByID(),
		prioID: make(map[int]int32, rs.Len()),
		live:   make(map[int]bool, rs.Len()),
		inISet: make(map[int]isetEntry, rs.Len()),
	}
	for i := range e.rs.Rules {
		e.live[e.rs.Rules[i].ID] = true
		e.prioID[e.rs.Rules[i].ID] = e.rs.Rules[i].Priority
	}

	part := iset.Build(e.rs, iset.Options{
		MaxISets:    opts.MaxISets,
		MinCoverage: opts.MinCoverage,
		Fields:      opts.ISetFields,
	})

	t0 := time.Now()
	for i, is := range part.ISets {
		entries := make([]rqrmi.Entry, len(is.Positions))
		for j, pos := range is.Positions {
			entries[j] = rqrmi.Entry{Range: e.rs.Rules[pos].Fields[is.Field], Value: pos}
		}
		cfg := opts.RQRMI
		if cfg.Seed == 0 {
			cfg.Seed = 42
		}
		cfg.Seed += int64(i) * 7919
		model, ts, err := rqrmi.Train(entries, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: training iSet %d (field %d): %w", i, is.Field, err)
		}
		e.isets = append(e.isets, isetIndex{field: is.Field, model: model})
		e.stats.Train = append(e.stats.Train, *ts)
		e.stats.ISetSizes = append(e.stats.ISetSizes, len(is.Positions))
		e.stats.ISetFields = append(e.stats.ISetFields, is.Field)
		if ts.MaxError > e.stats.MaxSearchDistance {
			e.stats.MaxSearchDistance = ts.MaxError
		}
		for j := range entries {
			e.inISet[e.rs.Rules[entries[j].Value].ID] = isetEntry{iset: i, entry: j}
		}
	}
	e.stats.TrainingTime = time.Since(t0)
	e.stats.Coverage = part.Coverage()
	e.stats.RemainderSize = len(part.Remainder)

	e.remainderRules = e.rs.Subset(part.Remainder)
	rem, err := opts.Remainder(e.remainderRules)
	if err != nil {
		return nil, fmt.Errorf("core: building remainder: %w", err)
	}
	e.remainder = rem
	return e, nil
}

// Name implements rules.Classifier.
func (e *Engine) Name() string { return "nuevomatch" }

// Stats returns build statistics.
func (e *Engine) Stats() BuildStats { return e.stats }

// NumISets returns the number of trained RQ-RMI models.
func (e *Engine) NumISets() int { return len(e.isets) }

// Remainder exposes the external classifier (for tests and tooling).
func (e *Engine) Remainder() rules.Classifier { return e.remainder }

// Lookup implements rules.Classifier: query all RQ-RMIs, validate the (at
// most one) candidate per iSet, then query the remainder under the best
// priority found — the single-core early-termination flow of §4.
func (e *Engine) Lookup(p rules.Packet) int {
	return e.LookupWithBound(p, math.MaxInt32)
}

// LookupWithBound implements rules.BoundedClassifier.
func (e *Engine) LookupWithBound(p rules.Packet, bestPrio int32) int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	best := rules.NoMatch
	for i := range e.isets {
		is := &e.isets[i]
		if id, prio, ok := e.isetCandidate(is, p); ok && prio < bestPrio {
			best, bestPrio = id, prio
		}
	}
	return e.queryRemainder(p, best, bestPrio)
}

// isetCandidate returns the validated candidate of one iSet: the RQ-RMI
// yields at most one rule whose range contains the packet's field value;
// the rule matches the packet only if all other fields validate (§3.6).
func (e *Engine) isetCandidate(is *isetIndex, p rules.Packet) (id int, prio int32, ok bool) {
	entry, found := is.model.LookupEntry(p[is.field])
	if !found {
		return 0, 0, false
	}
	pos := is.model.Entries()[entry].Value
	if pos < 0 {
		return 0, 0, false // tombstoned by Delete
	}
	r := &e.rs.Rules[pos]
	if !r.Matches(p) {
		return 0, 0, false
	}
	return r.ID, r.Priority, true
}

// queryRemainder folds the remainder's answer into the running best.
func (e *Engine) queryRemainder(p rules.Packet, best int, bestPrio int32) int {
	if bc, ok := e.remainder.(rules.BoundedClassifier); ok {
		if id := bc.LookupWithBound(p, bestPrio); id >= 0 {
			return id
		}
		return best
	}
	if id := e.remainder.Lookup(p); id >= 0 {
		if prio, ok := e.prioID[id]; ok && prio < bestPrio {
			return id
		}
	}
	return best
}

// LookupNoEarlyTermination is the ablation of the §4 early-termination
// optimization: the remainder is always queried in full, ignoring the best
// priority found in the iSets. Results are identical to Lookup; only the
// work differs. Exists for the ablation benchmarks.
func (e *Engine) LookupNoEarlyTermination(p rules.Packet) int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	best := rules.NoMatch
	bestPrio := int32(math.MaxInt32)
	for i := range e.isets {
		if id, prio, ok := e.isetCandidate(&e.isets[i], p); ok && prio < bestPrio {
			best, bestPrio = id, prio
		}
	}
	if id := e.remainder.Lookup(p); id >= 0 {
		if prio, ok := e.prioID[id]; ok && prio < bestPrio {
			return id
		}
	}
	return best
}

// LookupBatchParallel classifies a batch with the two-worker split of the
// paper's multi-core configuration (§5.1): one worker runs all RQ-RMI iSets,
// the other runs the remainder classifier, and results merge by priority.
// Early termination does not apply — the workers race (§4 "Parallelization").
// out must have len(pkts) entries.
func (e *Engine) LookupBatchParallel(pkts []rules.Packet, out []int) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	type cand struct {
		id   int
		prio int32
	}
	isetRes := make([]cand, len(pkts))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for pi, p := range pkts {
			best, bestPrio := rules.NoMatch, int32(math.MaxInt32)
			for i := range e.isets {
				if id, prio, ok := e.isetCandidate(&e.isets[i], p); ok && prio < bestPrio {
					best, bestPrio = id, prio
				}
			}
			isetRes[pi] = cand{best, bestPrio}
		}
	}()
	for pi, p := range pkts {
		out[pi] = e.remainder.Lookup(p)
	}
	wg.Wait()
	for pi := range pkts {
		remID := out[pi]
		ir := isetRes[pi]
		switch {
		case remID < 0:
			out[pi] = ir.id
		case ir.id < 0:
			// keep remainder result
		default:
			if prio, ok := e.prioID[remID]; !ok || prio >= ir.prio {
				out[pi] = ir.id
			}
		}
	}
}

// MemoryFootprint implements rules.Classifier: RQ-RMI model bytes plus the
// remainder's own index (§5.2.1 accounting).
func (e *Engine) MemoryFootprint() int {
	return e.RQRMIBytes() + e.remainder.MemoryFootprint()
}

// RQRMIBytes returns the total size of the trained models alone — the part
// that must fit in L1/L2 for inference speed (Figure 13's "iSets" bars).
func (e *Engine) RQRMIBytes() int {
	b := 0
	for i := range e.isets {
		b += e.isets[i].model.MemoryFootprint()
	}
	return b
}

// RemainderBytes returns the external classifier's index size (Figure 13's
// "Remainder" bars).
func (e *Engine) RemainderBytes() int { return e.remainder.MemoryFootprint() }
