// Package core assembles the complete NuevoMatch classifier of the paper:
// the rule-set is partitioned into iSets (§3.6) indexed by RQ-RMI models,
// the remainder is indexed by an external classifier (§3.7), and lookups
// combine model inference, bounded secondary search, multi-field validation,
// and highest-priority selection (Figure 1), with the early-termination
// optimization of §4 querying the remainder last under the best priority
// found in the iSets.
//
// The engine is split RCU-style: the read side is an immutable snapshot
// (snapshot.go) published through an atomic pointer, so Lookup and
// LookupBatch run without locks or map accesses; the write side
// (updates.go) mutates state under a mutex and publishes fresh snapshots.
package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nuevomatch/internal/classifiers/tuplemerge"
	"nuevomatch/internal/iset"
	"nuevomatch/internal/rqrmi"
	"nuevomatch/internal/rules"
)

// Options configures Build. The zero value reproduces the paper's default
// evaluation setup against TupleMerge: up to 4 iSets, 5% minimum coverage,
// RQ-RMI error threshold 64, TupleMerge remainder.
type Options struct {
	// MaxISets caps the number of RQ-RMI models. The paper finds 1–2 best
	// with CutSplit/NeuroCuts remainders and 4 with TupleMerge (§5.3.2).
	// Zero means the default of 4; a negative value disables iSets entirely
	// and the engine degrades to the remainder classifier alone.
	MaxISets int
	// MinCoverage discards iSets below this fraction of the rule-set:
	// 0.25 against cs/nc, 0.05 against tm in the paper's evaluation.
	// Zero means the default of 0.05; a negative value disables coverage
	// filtering so even tiny iSets are kept.
	MinCoverage float64
	// RQRMI is the per-iSet training configuration; zero fields default
	// per rqrmi.DefaultConfig for the iSet's size. The Seed is offset per
	// iSet to decorrelate models.
	RQRMI rqrmi.Config
	// Remainder builds the external classifier; nil means TupleMerge with
	// the paper's settings. A rules.Freezable classifier (TupleMerge is) is
	// compiled into each published snapshot and served lock-free with a
	// delta overlay for online updates. A non-freezable classifier is
	// called live instead; if the engine then serves lookups concurrently
	// with Insert/Delete, it must support its own concurrent Lookup racing
	// its own updates.
	Remainder rules.Builder
	// RemainderName selects the remainder by registry name instead of by
	// builder, taking precedence over Remainder when non-empty. The special
	// name AutoRemainder ("auto") builds every registered Freezable backend
	// over the actual remainder rule distribution, scores them (build time,
	// frozen-lookup microbenchmark on a sampled trace, memory footprint),
	// and keeps the winner — recording the choice and the per-candidate
	// scores in BuildStats. Because Retrain re-applies the stored options,
	// an auto-selected engine re-runs the selection at every retrain, so
	// the backend tracks the workload as the rule distribution drifts.
	RemainderName string
	// ISetFields optionally restricts which fields may carry iSets.
	ISetFields []int
}

// withDefaults fills zero values. Negative sentinels are preserved so that
// Rebuild (which re-applies defaults to the stored options) keeps their
// meaning; Build resolves them at the point of use.
func (o Options) withDefaults() Options {
	if o.MaxISets == 0 {
		o.MaxISets = 4
	}
	if o.MinCoverage == 0 {
		o.MinCoverage = 0.05
	}
	if o.Remainder == nil {
		o.Remainder = tuplemerge.Build
	}
	return o
}

// maxISets resolves the MaxISets sentinel: negative disables iSets.
func (o Options) maxISets() int {
	if o.MaxISets < 0 {
		return 0
	}
	return o.MaxISets
}

// minCoverage resolves the MinCoverage sentinel: negative disables coverage
// filtering.
func (o Options) minCoverage() float64 {
	if o.MinCoverage < 0 {
		return 0
	}
	return o.MinCoverage
}

// isetIndex is one trained iSet: an RQ-RMI over one field whose entry
// payloads are positions into the engine's built rule order.
type isetIndex struct {
	field int
	model *rqrmi.Model
}

// BuildStats reports what Build produced.
type BuildStats struct {
	// Coverage is the fraction of rules indexed by iSets.
	Coverage float64
	// ISetSizes lists the rule count of each trained iSet.
	ISetSizes []int
	// ISetFields lists the field each iSet indexes.
	ISetFields []int
	// RemainderSize is the number of rules left to the external classifier.
	RemainderSize int
	// TrainingTime is the total RQ-RMI training wall time.
	TrainingTime time.Duration
	// MaxSearchDistance is the largest guaranteed secondary search bound.
	MaxSearchDistance int
	// Train carries the per-iSet training statistics.
	Train []rqrmi.TrainStats
	// RemainderBackend is the Name() of the remainder classifier actually
	// serving: the configured builder's product, or the auto-select winner.
	RemainderBackend string
	// RemainderAutoSelected reports whether RemainderBackend was chosen by
	// the "auto" workload scoring rather than configured explicitly.
	RemainderAutoSelected bool
	// RemainderScores holds the per-candidate measurements of the auto
	// selection (nil unless Options.RemainderName was AutoRemainder). The
	// scores are diagnostics of this build — they are not serialized; a
	// loaded engine keeps only the recorded RemainderBackend.
	RemainderScores []RemainderScore
}

// Engine is a built NuevoMatch classifier. Lookups are lock-free: they load
// the current snapshot atomically and never touch the write-side state.
// Updates serialize on the write mutex and publish new snapshots (§3.9).
type Engine struct {
	opts Options

	// snap is the RCU-published read state; Lookup/LookupBatch load it once
	// per call.
	snap atomic.Pointer[snapshot]

	// mu guards everything below — the write-side state. It is never taken
	// by lookups.
	//
	//nm:lockscope
	mu     sync.Mutex
	rs     *rules.RuleSet // built rules; positions are stable
	posID  map[int]int    // built rule ID -> position
	prioID map[int]int32  // every live rule ID (built + inserted) -> priority
	live   map[int]bool   // rule ID -> not deleted
	isets  []isetIndex
	inISet map[int]isetEntry // rule ID -> iSet membership
	// meta is the master copy of the per-position metadata; it is cloned
	// before mutation once published (see deleteMetaLocked).
	meta []ruleMeta
	// fieldLo/fieldHi are the flat field bounds shared by all snapshots.
	fieldLo, fieldHi []uint32

	remainder      rules.Classifier
	remainderRules *rules.RuleSet // current remainder content (for rebuild/stats)
	// remFrozen is the compiled form of the remainder (nil when the
	// classifier is not rules.Freezable) and remOverlay the immutable delta
	// of updates since that freeze; published snapshots share both, so they
	// are maintained copy-on-write and re-frozen past the compaction
	// threshold (overlay.go).
	remFrozen  rules.FrozenClassifier
	remOverlay *remOverlay
	// remIDs/remPrios are the remainder's (id, priority) table sorted by
	// ID, shared with published snapshots and therefore maintained
	// copy-on-write (updates.go).
	remIDs   []int
	remPrios []int32

	// parPool holds reusable iSet-inference workers for LookupBatchParallel
	// so repeated calls reuse goroutines and buffers instead of spawning.
	parPool chan *parWorker
	// closed is set by Close: released workers terminate instead of pooling,
	// so lookups after Close stay correct without leaking goroutines.
	closed atomic.Bool

	// retraining is set while a background Retrain is training a replacement
	// engine off-lock; while it is set, every applied update is also appended
	// to journal so it can be replayed onto the retrained state before the
	// swap (retrain.go).
	retraining bool
	journal    []journalOp

	stats  BuildStats
	ustats UpdateStats
	// publishes counts snapshot publications (write-side bookkeeping; tests
	// assert the batch journal replay publishes once, not once per op).
	publishes int
}

type isetEntry struct {
	iset  int
	entry int
}

var _ rules.BoundedClassifier = (*Engine)(nil)

// Build trains a NuevoMatch engine over rs.
func Build(rs *rules.RuleSet, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	if err := rs.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		opts:   opts,
		rs:     rs.Clone(),
		posID:  rs.IndexByID(),
		prioID: make(map[int]int32, rs.Len()),
		live:   make(map[int]bool, rs.Len()),
		inISet: make(map[int]isetEntry, rs.Len()),
	}
	for i := range e.rs.Rules {
		e.live[e.rs.Rules[i].ID] = true
		e.prioID[e.rs.Rules[i].ID] = e.rs.Rules[i].Priority
	}
	e.flattenRules()

	var part *iset.Partition
	if opts.maxISets() == 0 {
		// The sentinel means "no iSets at all" (iset.Build would treat a
		// zero MaxISets as unlimited); skip partitioning entirely.
		part = &iset.Partition{Remainder: allPositions(e.rs.Len())}
	} else {
		part = iset.Build(e.rs, iset.Options{
			MaxISets:    opts.maxISets(),
			MinCoverage: opts.minCoverage(),
			Fields:      opts.ISetFields,
		})
	}

	t0 := time.Now()
	for i, is := range part.ISets {
		entries := make([]rqrmi.Entry, len(is.Positions))
		for j, pos := range is.Positions {
			entries[j] = rqrmi.Entry{Range: e.rs.Rules[pos].Fields[is.Field], Value: pos}
		}
		cfg := opts.RQRMI
		if cfg.Seed == 0 {
			cfg.Seed = 42
		}
		cfg.Seed += int64(i) * 7919
		model, ts, err := rqrmi.Train(entries, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: training iSet %d (field %d): %w", i, is.Field, err)
		}
		e.isets = append(e.isets, isetIndex{field: is.Field, model: model})
		e.stats.Train = append(e.stats.Train, *ts)
		e.stats.ISetSizes = append(e.stats.ISetSizes, len(is.Positions))
		e.stats.ISetFields = append(e.stats.ISetFields, is.Field)
		if ts.MaxError > e.stats.MaxSearchDistance {
			e.stats.MaxSearchDistance = ts.MaxError
		}
		for j := range entries {
			e.inISet[e.rs.Rules[entries[j].Value].ID] = isetEntry{iset: i, entry: j}
		}
	}
	e.stats.TrainingTime = time.Since(t0)
	e.stats.Coverage = part.Coverage()
	e.stats.RemainderSize = len(part.Remainder)

	e.remainderRules = e.rs.Subset(part.Remainder)
	rem, sel, err := buildRemainder(opts, e.remainderRules)
	if err != nil {
		return nil, fmt.Errorf("core: building remainder: %w", err)
	}
	e.remainder = rem
	e.stats.RemainderBackend = sel.backend
	e.stats.RemainderAutoSelected = sel.auto
	e.stats.RemainderScores = sel.scores
	e.remIDs, e.remPrios = sortedRemainderTable(e.remainderRules)
	e.refreezeRemainderLocked()
	e.parPool = make(chan *parWorker, 2)
	e.publishLocked()
	return e, nil
}

// refreezeRemainderLocked compiles the remainder's current contents into a
// fresh frozen form and resets the overlay to empty. Called at build time
// and whenever the overlay outgrows the compaction threshold. Non-freezable
// remainders leave both nil and the snapshot falls back to calling the live
// classifier.
func (e *Engine) refreezeRemainderLocked() {
	if fz, ok := e.remainder.(rules.Freezable); ok {
		e.remFrozen = fz.Freeze()
		e.remOverlay = &remOverlay{numFields: e.rs.NumFields}
	} else {
		e.remFrozen, e.remOverlay = nil, nil
	}
}

// flattenRules packs the built rules' metadata and field bounds into the
// flat arrays the snapshots share.
func (e *Engine) flattenRules() {
	n := e.rs.Len()
	nf := e.rs.NumFields
	e.meta = make([]ruleMeta, n)
	e.fieldLo = make([]uint32, n*nf)
	e.fieldHi = make([]uint32, n*nf)
	for pos := range e.rs.Rules {
		r := &e.rs.Rules[pos]
		e.meta[pos] = ruleMeta{id: r.ID, prio: r.Priority, live: true}
		base := pos * nf
		for d, f := range r.Fields {
			e.fieldLo[base+d] = f.Lo
			e.fieldHi[base+d] = f.Hi
		}
	}
}

func allPositions(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// publishLocked builds a fresh snapshot from the write-side state and
// publishes it atomically. Callers hold e.mu (or are still inside Build,
// before the engine escapes).
func (e *Engine) publishLocked() {
	s := &snapshot{
		numFields: e.rs.NumFields,
		meta:      e.meta,
		fieldLo:   e.fieldLo,
		fieldHi:   e.fieldHi,
		isets:     e.isets,
		rem:       newRemainderAdapter(e.remainder, e.remFrozen, e.remOverlay, e.remIDs, e.remPrios),
	}
	e.publishes++
	e.snap.Store(s)
}

// snapshot returns the current read state.
//
//nm:hotpath
func (e *Engine) snapshot() *snapshot { return e.snap.Load() }

// Name implements rules.Classifier.
func (e *Engine) Name() string { return "nuevomatch" }

// Stats returns build statistics — of the most recent (re)build: Retrain
// replaces them along with the trained state, so the accessor takes the
// write lock (it is not a hot-path call).
func (e *Engine) Stats() BuildStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// NumISets returns the number of trained RQ-RMI models.
func (e *Engine) NumISets() int { return len(e.snapshot().isets) }

// Remainder exposes the external classifier (for tests and tooling). Like
// Stats, it reads write-side state that Retrain replaces, so it locks.
func (e *Engine) Remainder() rules.Classifier {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.remainder
}

// Lookup implements rules.Classifier: query all RQ-RMIs, validate the (at
// most one) candidate per iSet, then query the remainder under the best
// priority found — the single-core early-termination flow of §4. The hot
// path is one atomic snapshot load followed by flat-array reads only: no
// locks, no maps, no type assertions.
//
//nm:hotpath
func (e *Engine) Lookup(p rules.Packet) int {
	return e.snapshot().lookup(p, math.MaxInt32)
}

// LookupWithBound implements rules.BoundedClassifier.
//
//nm:hotpath
func (e *Engine) LookupWithBound(p rules.Packet, bestPrio int32) int {
	return e.snapshot().lookup(p, bestPrio)
}

// LookupBatch classifies len(pkts) packets into out, which must have at
// least len(pkts) entries. It is the engine's primary high-throughput entry
// point: RQ-RMI inference runs stage-by-stage across packet chunks
// (amortizing per-stage overhead the way the paper's vectorized kernels do),
// candidates validate against flat metadata, and the remainder is queried
// per packet under the §4 early-termination bound. Results are identical to
// calling Lookup per packet against the same snapshot.
//
//nm:hotpath
func (e *Engine) LookupBatch(pkts []rules.Packet, out []int) {
	e.snapshot().lookupBatch(pkts, out)
}

// LookupNoEarlyTermination is the ablation of the §4 early-termination
// optimization: the remainder is always queried in full, ignoring the best
// priority found in the iSets. Results are identical to Lookup; only the
// work differs. Exists for the ablation benchmarks.
func (e *Engine) LookupNoEarlyTermination(p rules.Packet) int {
	s := e.snapshot()
	best := rules.NoMatch
	bestPrio := int32(math.MaxInt32)
	for i := range s.isets {
		if id, prio, ok := s.isetCandidate(&s.isets[i], p, bestPrio); ok {
			best, bestPrio = id, prio
		}
	}
	if id, prio, ok := s.rem.lookupUnbounded(p); ok && prio < bestPrio {
		return id
	}
	return best
}

// parWorker is a reusable iSet-inference worker: one long-lived goroutine
// fed jobs through job, signalling completion on done, with persistent
// result buffers so steady-state LookupBatchParallel calls spawn no
// goroutines and allocate nothing.
type parWorker struct {
	job  chan parJob
	done chan struct{}
	// best/prio hold the last job's per-packet iSet candidates.
	best []int
	prio []int32
}

type parJob struct {
	s    *snapshot
	pkts []rules.Packet
}

func (w *parWorker) loop() {
	for j := range w.job {
		w.serve(j)
		// Drop the snapshot and packet references before parking: an idle
		// pooled worker must not pin a retired snapshot (models, frozen
		// remainder) or the caller's packet slice.
		j.s, j.pkts = nil, nil
		w.done <- struct{}{}
	}
}

// serve runs the iSet half of the §5.1 split over the job's packets using
// the shared chunked inference of snapshot.isetChunk.
//
//nm:hotpath
func (w *parWorker) serve(j parJob) {
	if cap(w.best) < len(j.pkts) {
		//nm:allow hotpath: one-time buffer growth; steady-state batches reuse the worker's persistent buffers
		w.best = make([]int, len(j.pkts))
		//nm:allow hotpath: one-time buffer growth; steady-state batches reuse the worker's persistent buffers
		w.prio = make([]int32, len(j.pkts))
	}
	w.best = w.best[:len(j.pkts)]
	w.prio = w.prio[:len(j.pkts)]
	var keys [rqrmi.BatchChunk]uint32
	var ents [rqrmi.BatchChunk]int32
	for off := 0; off < len(j.pkts); off += rqrmi.BatchChunk {
		n := len(j.pkts) - off
		if n > rqrmi.BatchChunk {
			n = rqrmi.BatchChunk
		}
		j.s.isetChunk(j.pkts[off:off+n], &keys, &ents, w.best[off:off+n], w.prio[off:off+n])
	}
}

// grabParWorker takes a pooled worker or starts a fresh one when the pool
// is empty (concurrent callers each get their own).
func (e *Engine) grabParWorker() *parWorker {
	select {
	case w := <-e.parPool:
		return w
	default:
		w := &parWorker{job: make(chan parJob), done: make(chan struct{})}
		go w.loop()
		return w
	}
}

// releaseParWorker returns a worker to the pool; surplus workers beyond the
// pool's capacity — and every worker once the engine is closed — exit
// instead of lingering.
func (e *Engine) releaseParWorker(w *parWorker) {
	if e.closed.Load() {
		close(w.job)
		return
	}
	select {
	case e.parPool <- w:
		// If Close ran between the check above and the send landing, its
		// drain may have missed this worker; both sides drain after the flag
		// flip (sequentially consistent), so one of them always sees it.
		if e.closed.Load() {
			e.drainParPool()
		}
	default:
		close(w.job)
	}
}

// drainParPool terminates every idle pooled worker.
func (e *Engine) drainParPool() {
	for {
		select {
		case w := <-e.parPool:
			close(w.job)
		default:
			return
		}
	}
}

// NumFields returns the dimensionality of the served rule-set. It is fixed
// at build time; retrains never change it.
func (e *Engine) NumFields() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rs.NumFields
}

// Close releases the engine's pooled background workers and stops the pool
// from re-filling: lookups on any path remain safe after Close (the
// published snapshot is immutable and LookupBatchParallel spawns transient
// workers that exit when released), so a retired engine cannot leak
// goroutines no matter which calls race its retirement. Safe to call any
// number of times.
func (e *Engine) Close() {
	e.closed.Store(true)
	e.drainParPool()
}

// LookupBatchParallel classifies a batch with the two-worker split of the
// paper's multi-core configuration (§5.1): a pooled worker goroutine runs
// all RQ-RMI iSets (batched) while the calling goroutine runs the remainder
// (lock-free against the frozen form), and results merge by priority. Early
// termination does not apply — the workers race (§4 "Parallelization"). On
// a single-CPU process (GOMAXPROCS < 2) the split cannot help — the two
// workers would time-slice one core and pay the handoff on top — so the
// call degrades to the serial batched path. out must have len(pkts)
// entries.
func (e *Engine) LookupBatchParallel(pkts []rules.Packet, out []int) {
	s := e.snapshot()
	if runtime.GOMAXPROCS(0) < 2 {
		s.lookupBatch(pkts, out)
		return
	}
	w := e.grabParWorker()
	w.job <- parJob{s: s, pkts: pkts}
	// Remainder half, chunked through the frozen table-major walk (pooled
	// scratch carries the unbounded per-packet bounds).
	scr := batchScratchPool.Get().(*batchScratch)
	for off := 0; off < len(pkts); off += rqrmi.BatchChunk {
		n := len(pkts) - off
		if n > rqrmi.BatchChunk {
			n = rqrmi.BatchChunk
		}
		s.rem.lookupUnboundedBatch(pkts[off:off+n], scr.bestPrio[:n], out[off:off+n])
	}
	batchScratchPool.Put(scr)
	<-w.done
	for pi := range pkts {
		remID := out[pi]
		isetID := w.best[pi]
		switch {
		case remID < 0:
			out[pi] = isetID
		case isetID < 0:
			// keep remainder result
		default:
			if prio, ok := s.rem.prioOf(remID); !ok || prio >= w.prio[pi] {
				out[pi] = isetID
			}
		}
	}
	e.releaseParWorker(w)
}

// MemoryFootprint implements rules.Classifier: RQ-RMI model bytes plus the
// remainder's own index (§5.2.1 accounting).
func (e *Engine) MemoryFootprint() int {
	return e.RQRMIBytes() + e.Remainder().MemoryFootprint()
}

// RQRMIBytes returns the total size of the trained models alone — the part
// that must fit in L1/L2 for inference speed (Figure 13's "iSets" bars).
func (e *Engine) RQRMIBytes() int {
	s := e.snapshot()
	b := 0
	for i := range s.isets {
		b += s.isets[i].model.MemoryFootprint()
	}
	return b
}

// RemainderBytes returns the external classifier's index size (Figure 13's
// "Remainder" bars).
func (e *Engine) RemainderBytes() int { return e.Remainder().MemoryFootprint() }
