package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"nuevomatch/internal/faultinject"
	"nuevomatch/internal/rules"
)

// Crash-safe cluster persistence: saves are whole generations. SaveDir
// writes every artifact of one consistent cut (shard tables, the rules
// replica artifact, the manifest) into a temp directory, fsyncs it, and
// atomically renames it to gen-NNNNNNNN; only then does the CURRENT
// pointer file flip to the new generation (atomic rename + directory
// fsync). A crash at ANY step leaves CURRENT naming a complete, durable
// generation — the previous one until the very last flip — so a restart
// always loads a consistent cluster: the fail-static guarantee extended
// across crashes (answers may be stale by one generation, never wrong).
// The previous generation is retained for rollback; FsckClusterDir
// (fsck.go) verifies directories and cleans torn-save debris.
//
// Layout:
//
//	dir/CURRENT            ← "gen-00000007\n"
//	dir/gen-00000006/      ← last-good (kept for rollback)
//	dir/gen-00000007/      ← cluster.json, shard-NN.nm, rules.nmr
//
// Directories saved by older versions (cluster.json directly in dir) still
// load; SaveDir always writes the generation layout.

// ClusterCurrentName is the pointer file naming the serving generation
// inside a saved cluster directory.
const ClusterCurrentName = "CURRENT"

// clusterRulesName is the rules artifact inside a generation: the
// cluster's authoritative replica table (every distinct live rule), CRC32-C
// trailed like the shard tables. Quarantine rebuilds a corrupt shard from
// it.
const clusterRulesName = "rules.nmr"

const genDirPrefix = "gen-"

// genDirName formats generation n's directory name.
func genDirName(n uint64) string { return fmt.Sprintf("%s%08d", genDirPrefix, n) }

// parseGenName parses a generation directory name, strictly: "gen-" plus
// exactly eight digits, so a hostile CURRENT cannot point outside dir.
func parseGenName(name string) (uint64, bool) {
	if len(name) != len(genDirPrefix)+8 || !strings.HasPrefix(name, genDirPrefix) {
		return 0, false
	}
	var n uint64
	for _, c := range name[len(genDirPrefix):] {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + uint64(c-'0')
	}
	return n, true
}

// ClusterCurrentDir resolves the directory a cluster actually loads from:
// the generation CURRENT points to, or dir itself for the legacy flat
// layout (cluster.json directly inside dir). It errors when dir holds
// neither, when CURRENT is malformed, or when CURRENT dangles — states
// FsckClusterDir can repair.
func ClusterCurrentDir(dir string) (string, error) {
	b, err := os.ReadFile(filepath.Join(dir, ClusterCurrentName))
	switch {
	case err == nil:
		name := strings.TrimSpace(string(b))
		if _, ok := parseGenName(name); !ok {
			return "", fmt.Errorf("core: malformed CURRENT %q in %s", name, dir)
		}
		gdir := filepath.Join(dir, name)
		if st, serr := os.Stat(gdir); serr != nil || !st.IsDir() {
			return "", fmt.Errorf("core: CURRENT names missing generation %q in %s", name, dir)
		}
		return gdir, nil
	case os.IsNotExist(err):
		if _, serr := os.Stat(filepath.Join(dir, ClusterManifestName)); serr == nil {
			return dir, nil // legacy flat layout
		}
		return "", fmt.Errorf("core: %s holds neither a CURRENT pointer nor a %s manifest", dir, ClusterManifestName)
	default:
		return "", err
	}
}

// listGenerations returns the generation numbers present in dir (complete
// directories only, sorted ascending) and the names of torn-save debris:
// *.tmp staging directories left by a crashed SaveDir.
func listGenerations(dir string) (gens []uint64, debris []string, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, ent := range ents {
		name := ent.Name()
		if !ent.IsDir() {
			continue
		}
		if n, ok := parseGenName(name); ok {
			gens = append(gens, n)
			continue
		}
		if trimmed, found := strings.CutSuffix(name, ".tmp"); found {
			if _, ok := parseGenName(trimmed); ok {
				debris = append(debris, name)
			}
		}
	}
	sort.Slice(gens, func(a, b int) bool { return gens[a] < gens[b] })
	return gens, debris, nil
}

// nextGenNumber picks the generation number a new save should use: one
// past everything present, including torn staging dirs, so a crashed save
// never collides with a complete one.
func nextGenNumber(dir string) (uint64, error) {
	gens, debris, err := listGenerations(dir)
	if err != nil {
		return 0, err
	}
	var max uint64
	for _, n := range gens {
		if n > max {
			max = n
		}
	}
	for _, name := range debris {
		if n, ok := parseGenName(strings.TrimSuffix(name, ".tmp")); ok && n > max {
			max = n
		}
	}
	return max + 1, nil
}

// writeGenFile writes one artifact inside a staging generation directory:
// plain create (the whole directory is renamed atomically later), full
// write, fsync. faultName is the injection point guarding it; a triggered
// fault strikes mid-write, leaving a genuinely torn file behind exactly as
// a crash would — the kill-point sweep's raw material.
func writeGenFile(path string, data []byte, faultName faultinject.Point) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	half := len(data) / 2
	if _, err := f.Write(data[:half]); err != nil {
		f.Close()
		return err
	}
	if err := faultinject.Hit(faultName); err != nil {
		f.Close() // no cleanup: mimic a crash, leave the torn file on disk
		return err
	}
	if _, err := f.Write(data[half:]); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// serializeLocked captures one consistent cut of the whole cluster under
// the update lock: the manifest, every shard's table blob, and the rules
// artifact blob.
func (c *Cluster) serializeLocked() (clusterManifest, [][]byte, []byte, error) {
	m := clusterManifest{
		Format:  clusterManifestFormat,
		Version: clusterManifestVersion,
		Kind:    c.part.kind.String(),
		Field:   c.part.field,
		Cuts:    c.part.cuts,
		Shards:  make([]string, len(c.engines)),
		Rules:   clusterRulesName,
	}
	blobs := make([][]byte, len(c.engines))
	for s, e := range c.engines {
		m.Shards[s] = shardFileName(s)
		var buf bytes.Buffer
		if _, err := e.WriteTo(&buf); err != nil {
			return m, nil, nil, fmt.Errorf("core: serializing shard %d: %w", s, err)
		}
		blobs[s] = buf.Bytes()
	}
	rulesBlob, err := encodeClusterRules(c.NumFields(), c.ruleByID)
	if err != nil {
		return m, nil, nil, err
	}
	return m, blobs, rulesBlob, nil
}

// SaveDir persists the whole cluster into dir as a new generation: every
// artifact is staged in a temp directory (each file fully written and
// fsynced), the staging directory is fsynced and atomically renamed to
// gen-N, the rename is made durable (parent directory fsync), and only
// then does the CURRENT pointer flip — atomically, fsynced. A crash at any
// step leaves CURRENT naming the previous complete generation; no cleanup
// runs on the failure path (debris mimics crash state and is swept by the
// next save or by FsckClusterDir). The artifacts are one consistent cut:
// every shard plus the rules replica table serialize to memory under the
// update lock, but disk I/O happens outside it, so a save (the autopilot
// persist hook especially) does not stall updates. Lookups are unaffected
// throughout. The previous generation is retained for rollback; older ones
// are pruned best-effort.
func (c *Cluster) SaveDir(dir string) error {
	// Concurrent saves (two shards' persist hooks firing close together)
	// must not interleave: generations are whole consistent cuts.
	c.saveMu.Lock()
	defer c.saveMu.Unlock()

	c.mu.Lock()
	m, blobs, rulesBlob, err := c.serializeLocked()
	c.mu.Unlock()
	if err != nil {
		return err
	}

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	gen, err := nextGenNumber(dir)
	if err != nil {
		return err
	}
	genName := genDirName(gen)
	stage := filepath.Join(dir, genName+".tmp")
	if err := os.RemoveAll(stage); err != nil {
		return err
	}
	if err := os.Mkdir(stage, 0o755); err != nil {
		return err
	}
	for s, blob := range blobs {
		if err := writeGenFile(filepath.Join(stage, m.Shards[s]), blob, faultinject.PointClusterSaveShard); err != nil {
			return fmt.Errorf("core: saving shard %d: %w", s, err)
		}
	}
	if err := writeGenFile(filepath.Join(stage, m.Rules), rulesBlob, faultinject.PointClusterSaveRules); err != nil {
		return fmt.Errorf("core: saving cluster rules: %w", err)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := writeGenFile(filepath.Join(stage, ClusterManifestName), data, faultinject.PointClusterSaveManifest); err != nil {
		return fmt.Errorf("core: saving cluster manifest: %w", err)
	}
	// The staged files' contents must be durable before the directory
	// rename that makes them reachable, and the rename itself must be
	// durable (parent fsync) before CURRENT can reference it.
	if err := faultinject.Hit(faultinject.PointClusterSaveSync); err != nil {
		return err
	}
	if err := syncDir(stage); err != nil {
		return err
	}
	if err := faultinject.Hit(faultinject.PointClusterSaveRename); err != nil {
		return err
	}
	if err := os.Rename(stage, filepath.Join(dir, genName)); err != nil {
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	if err := faultinject.Hit(faultinject.PointClusterSaveCurrent); err != nil {
		return err
	}
	err = writeFileAtomic(filepath.Join(dir, ClusterCurrentName), func(f *os.File) error {
		_, werr := f.WriteString(genName + "\n")
		return werr
	})
	if err != nil {
		return fmt.Errorf("core: updating %s: %w", ClusterCurrentName, err)
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	c.pruneGenerations(dir, gen)
	return nil
}

// pruneGenerations removes torn staging directories and every generation
// older than the one before cur — the serving generation and its
// predecessor (the rollback target) are always kept. Best-effort: pruning
// failures never fail a completed save.
func (c *Cluster) pruneGenerations(dir string, cur uint64) {
	gens, debris, err := listGenerations(dir)
	if err != nil {
		return
	}
	var keepPrev uint64
	for _, n := range gens {
		if n < cur && n > keepPrev {
			keepPrev = n
		}
	}
	for _, n := range gens {
		if n != cur && n != keepPrev {
			os.RemoveAll(filepath.Join(dir, genDirName(n)))
		}
	}
	for _, name := range debris {
		if strings.TrimSuffix(name, ".tmp") != genDirName(cur) {
			os.RemoveAll(filepath.Join(dir, name))
		}
	}
}

// --- rules artifact codec ---------------------------------------------------

// rulesMagic opens the cluster rules artifact.
var rulesMagic = [4]byte{'N', 'M', 'R', 'S'}

const rulesFormatVersion = 1

// encodeClusterRules serializes the replica table: magic, version, field
// count, the rules (putRules framing, shared with the engine codec), and
// the standard CRC32-C trailer.
func encodeClusterRules(numFields int, byID map[int]rules.Rule) ([]byte, error) {
	ids := make([]int, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	ordered := make([]rules.Rule, 0, len(ids))
	for _, id := range ids {
		ordered = append(ordered, byID[id])
	}

	var buf bytes.Buffer
	cw := &countWriter{w: &buf}
	put := func(v any) error { return binary.Write(cw, binary.LittleEndian, v) }
	if err := put(rulesMagic); err != nil {
		return nil, err
	}
	if err := put(uint32(rulesFormatVersion)); err != nil {
		return nil, err
	}
	if err := put(uint16(numFields)); err != nil {
		return nil, err
	}
	if err := putRules(put, ordered); err != nil {
		return nil, err
	}
	var trailer [tableTrailerLen]byte
	copy(trailer[:4], tableTrailerMagic[:])
	binary.LittleEndian.PutUint32(trailer[4:], cw.crc)
	if err := put(trailer); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// readClusterRules decodes and strictly validates a rules artifact. The
// CRC trailer is mandatory — a torn artifact must read as absent, never as
// a truncated rule list.
func readClusterRules(data []byte) (int, []rules.Rule, error) {
	n := len(data)
	if n < tableTrailerLen || [4]byte(data[n-tableTrailerLen:n-4]) != tableTrailerMagic {
		return 0, nil, fmt.Errorf("core: rules artifact missing integrity trailer")
	}
	want := binary.LittleEndian.Uint32(data[n-4:])
	payload := data[:n-tableTrailerLen]
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return 0, nil, fmt.Errorf("core: rules artifact checksum mismatch (stored %08x, computed %08x)", want, got)
	}
	br := bufio.NewReader(bytes.NewReader(payload))
	get := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }
	var magic [4]byte
	if err := get(&magic); err != nil {
		return 0, nil, err
	}
	if magic != rulesMagic {
		return 0, nil, fmt.Errorf("core: bad rules artifact magic %q", magic[:])
	}
	var version uint32
	if err := get(&version); err != nil {
		return 0, nil, err
	}
	if version != rulesFormatVersion {
		return 0, nil, fmt.Errorf("core: unsupported rules artifact version %d", version)
	}
	var numFields uint16
	if err := get(&numFields); err != nil {
		return 0, nil, err
	}
	if numFields == 0 || numFields > maxCodecFields {
		return 0, nil, fmt.Errorf("core: implausible rules artifact field count %d", numFields)
	}
	rs, err := getRules(br, int(numFields))
	if err != nil {
		return 0, nil, err
	}
	if _, err := br.ReadByte(); err == nil {
		return 0, nil, fmt.Errorf("core: trailing garbage in rules artifact")
	}
	seen := make(map[int]bool, len(rs))
	for i := range rs {
		if seen[rs[i].ID] {
			return 0, nil, fmt.Errorf("core: duplicate rule ID %d in rules artifact", rs[i].ID)
		}
		seen[rs[i].ID] = true
	}
	return int(numFields), rs, nil
}

// --- loading ----------------------------------------------------------------

// LoadClusterDir reconstructs a cluster saved by SaveDir. The CURRENT
// pointer selects the serving generation (legacy flat directories load
// in place); the manifest restores the routing function, each shard loads
// through ReadEngine (no retraining, checksums verified), and the
// replica-mask table is rebuilt from the shards' live rules — re-verifying
// on the way that every rule actually lives in exactly the shards the
// partitioner routes it to, so a mismatched manifest/shard combination is
// rejected instead of silently misrouting packets.
//
// Self-healing: when a shard's artifact is corrupt or unreadable AND the
// generation carries the rules artifact, the shard is not fatal — it comes
// up quarantined on a remainder-only fallback engine built from its slice
// of the replica table (fully correct answers, just slower), and a
// background rebuilder retrains it to full strength and RCU-swaps the
// trained state in. Health() reports Degraded until then. Without the
// rules artifact (legacy saves) any shard error fails the load, as before.
//
// remainder overrides the shards' recorded remainder builder as in
// ReadEngine; nil uses the registry.
//
// A load can race a concurrent SaveDir in the serving process (the
// autopilot persist hook especially): by the time the loader opens the
// generation CURRENT named, a newer save may have pruned it. Files
// vanishing mid-load then used to surface as quarantined-fallback shards —
// a freshly loaded cluster reporting Degraded health (and serving slow
// remainder-only fallbacks with a background rebuild) for what is really a
// retryable race, not corruption. LoadClusterDir now detects the window —
// an artifact missing from disk while CURRENT has moved to a different
// generation — and retries against the new generation, so readiness
// derived from Health() never lies about a cleanly saved cluster.
func LoadClusterDir(dir string, remainder rules.Builder) (*Cluster, error) {
	const maxStaleRetries = 3
	for attempt := 0; ; attempt++ {
		c, err := loadClusterGen(dir, remainder)
		if err == nil || !errors.Is(err, errStaleGeneration) || attempt >= maxStaleRetries {
			return c, err
		}
	}
}

// errStaleGeneration reports that the generation being loaded disappeared
// mid-load because a concurrent SaveDir pruned it; CURRENT names a newer
// generation and the load should be retried against it.
var errStaleGeneration = errors.New("core: generation pruned during load")

// loadClusterGen is one load attempt against whatever generation CURRENT
// names right now. Artifacts missing from disk are classified: if CURRENT
// still names the generation they belong to, the absence is real damage
// (quarantine or failure, as documented on LoadClusterDir); if CURRENT has
// moved on, the attempt fails with errStaleGeneration so the caller
// retries.
func loadClusterGen(dir string, remainder rules.Builder) (*Cluster, error) {
	gdir, err := ClusterCurrentDir(dir)
	if err != nil {
		return nil, err
	}
	// superseded reports whether a missing-file error is the pruning race:
	// the artifact's generation is gone AND the CURRENT pointer already
	// names a different one.
	superseded := func(err error) bool {
		if !errors.Is(err, fs.ErrNotExist) {
			return false
		}
		cur, cerr := ClusterCurrentDir(dir)
		return cerr == nil && cur != gdir
	}
	data, err := os.ReadFile(filepath.Join(gdir, ClusterManifestName))
	if err != nil {
		if superseded(err) {
			return nil, fmt.Errorf("%w (manifest %s)", errStaleGeneration, gdir)
		}
		return nil, err
	}
	m, err := readClusterManifest(data)
	if err != nil {
		return nil, err
	}

	// The rules artifact is optional (legacy saves) and quarantine-grade
	// only: if it is itself unreadable the load proceeds strict.
	var artRules []rules.Rule
	artFields := 0
	if m.Rules != "" {
		blob, rerr := os.ReadFile(filepath.Join(gdir, m.Rules))
		if rerr != nil && superseded(rerr) {
			return nil, fmt.Errorf("%w (rules artifact %s)", errStaleGeneration, gdir)
		}
		if rerr == nil {
			if nf, rs, derr := readClusterRules(blob); derr == nil {
				artFields, artRules = nf, rs
			}
		}
	}

	kind, _ := partitionKindByName(m.Kind)
	c := &Cluster{
		part: partitioner{
			kind:   kind,
			field:  m.Field,
			shards: len(m.Shards),
			cuts:   m.Cuts,
		},
		shardsOf: make(map[int]uint64),
		ruleByID: make(map[int]rules.Rule),
	}
	c.engines = make([]*Engine, len(m.Shards))
	closeAll := func() {
		for _, e := range c.engines {
			if e != nil {
				e.Close()
			}
		}
	}
	type loadFailure struct {
		shard int
		err   error
	}
	var failures []loadFailure
	for s, name := range m.Shards {
		eng, lerr := readShardFile(filepath.Join(gdir, name), remainder)
		if lerr != nil {
			if superseded(lerr) {
				closeAll()
				return nil, fmt.Errorf("%w (shard %d of %s)", errStaleGeneration, s, gdir)
			}
			if artRules == nil {
				closeAll()
				return nil, fmt.Errorf("core: loading shard %d (%s): %w", s, name, lerr)
			}
			failures = append(failures, loadFailure{shard: s, err: lerr})
			continue
		}
		c.engines[s] = eng
	}
	if len(failures) == len(m.Shards) {
		closeAll()
		return nil, fmt.Errorf("core: no loadable shard in %s: shard 0: %w", gdir, failures[0].err)
	}

	// Stand quarantined shards up on remainder-only fallbacks built from
	// the replica table: complete rule coverage, so answers are correct
	// from the first packet, only without trained models. Field-count or
	// routing inconsistencies between artifact and shards surface in
	// rebuildReplicaTable below.
	var fullOpts Options
	for _, e := range c.engines {
		if e != nil {
			fullOpts = e.opts
			break
		}
	}
	for _, f := range failures {
		fb, berr := buildFallbackShard(&c.part, f.shard, artFields, artRules, fullOpts)
		if berr != nil {
			closeAll()
			return nil, fmt.Errorf("core: rebuilding shard %d from rules artifact: %w (original load error: %v)", f.shard, berr, f.err)
		}
		c.engines[f.shard] = fb
	}
	if err := c.rebuildReplicaTable(); err != nil {
		closeAll()
		return nil, err
	}
	c.finish()
	for _, f := range failures {
		s := f.shard
		opts := fullOpts
		c.quarantineShard(s,
			fmt.Sprintf("load failed, serving remainder-only fallback: %v", f.err),
			func() error {
				_, rerr := c.engines[s].RetrainWith(opts)
				return rerr
			})
	}
	return c, nil
}

// readShardFile loads one shard table, with a fault point ahead of the
// open so chaos schedules can fail shard loads without touching the disk.
func readShardFile(path string, remainder rules.Builder) (*Engine, error) {
	if err := faultinject.Hit(faultinject.PointClusterLoadShard); err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEngine(f, remainder)
}

// buildFallbackShard builds shard s's remainder-only stand-in from the
// replica table: the rules whose partition range routes to s, built with
// MaxISets disabled — no training, fast to stand up, fully correct.
func buildFallbackShard(pt *partitioner, s, numFields int, all []rules.Rule, opts Options) (*Engine, error) {
	if pt.field >= numFields {
		return nil, fmt.Errorf("core: partition field %d out of range (%d fields in rules artifact)", pt.field, numFields)
	}
	rs := rules.NewRuleSet(numFields)
	for i := range all {
		if pt.shardMaskOfRange(all[i].Fields[pt.field])&(1<<s) != 0 {
			rs.Add(cloneRule(all[i]))
		}
	}
	opts.MaxISets = -1 // remainder-only: correctness without training time
	return Build(rs, opts)
}
