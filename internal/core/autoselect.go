package core

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"nuevomatch/internal/rules"
)

// Remainder auto-selection. The paper treats the remainder classifier as a
// pluggable component (§3.7) and shows the best choice is workload-dependent
// (§5.3.2: 1–2 iSets suit tree remainders, 4 suit TupleMerge). With more
// than one production-grade Freezable backend registered, Build can measure
// instead of guess: every candidate is trained on the actual remainder rule
// distribution, its frozen form is microbenchmarked on a trace sampled from
// that same distribution, and the weighted score below picks the winner.
// The winner's already-built classifier is adopted directly — selection
// never builds the serving backend twice.

// AutoRemainder is the Options.RemainderName / WithRemainder value that
// enables remainder auto-selection.
const AutoRemainder = "auto"

// RemainderScore is one auto-select candidate's measurements. Score is the
// weighted sum of the lookup, memory, and build-time components, each
// normalized to the best candidate's value — lower is better, and the
// lookup component dominates (serving latency is what the remainder is on
// the hook for; memory and build time are tie-breakers).
type RemainderScore struct {
	// Name is the candidate's registry name.
	Name string `json:"name"`
	// BuildTime is how long the candidate took to build over the remainder
	// rules.
	BuildTime time.Duration `json:"build_ns"`
	// LookupNs is the measured mean frozen-lookup latency on the sampled
	// trace, in nanoseconds.
	LookupNs float64 `json:"lookup_ns"`
	// MemoryBytes is the frozen form's memory footprint.
	MemoryBytes int `json:"memory_bytes"`
	// Score is the weighted normalized total; the minimum wins.
	Score float64 `json:"score"`
	// Selected marks the winner.
	Selected bool `json:"selected,omitempty"`
	// Err records a candidate that failed to build (it scores out of the
	// running without failing the engine build, as long as one candidate
	// survives).
	Err string `json:"err,omitempty"`
}

// Score weights: lookup latency dominates, memory and build time nudge
// near-ties. Each component is the candidate's value divided by the best
// candidate's, so a backend that is 2x slower on lookups needs to be
// roughly 13x smaller before it can win on memory.
const (
	autoWeightLookup = 1.0
	autoWeightMemory = 0.15
	autoWeightBuild  = 0.05
)

// autoTraceLen caps the sampled microbenchmark trace.
const autoTraceLen = 256

// autoBenchMinDuration is how long the per-candidate microbenchmark runs at
// minimum: passes over the trace repeat until this much time accumulates,
// so the per-lookup estimate is not a single timer-resolution artifact.
const autoBenchMinDuration = 200 * time.Microsecond

// remainderSelection is what buildRemainder reports alongside the built
// classifier.
type remainderSelection struct {
	backend string
	auto    bool
	scores  []RemainderScore
}

// buildRemainder constructs the engine's remainder classifier per the
// options: RemainderName takes precedence when set ("auto" runs the
// selection, any other name resolves through the registry), otherwise the
// Remainder builder runs as-is.
func buildRemainder(opts Options, rs *rules.RuleSet) (rules.Classifier, remainderSelection, error) {
	switch name := opts.RemainderName; {
	case name == AutoRemainder:
		return selectRemainder(rs)
	case name != "":
		b, ok := remainderBuilder(name)
		if !ok {
			return nil, remainderSelection{}, fmt.Errorf("unknown remainder classifier %q (register it with RegisterRemainder)", name)
		}
		rem, err := b(rs)
		if err != nil {
			return nil, remainderSelection{}, err
		}
		return rem, remainderSelection{backend: rem.Name()}, nil
	default:
		rem, err := opts.Remainder(rs)
		if err != nil {
			return nil, remainderSelection{}, err
		}
		return rem, remainderSelection{backend: rem.Name()}, nil
	}
}

// selectRemainder trains every registered Freezable backend over rs, scores
// them, and returns the winner's classifier. Candidates that fail to build
// (or whose product turns out not to be Freezable) are recorded with an Err
// and skipped; the selection fails only if nothing survives. Ties on score
// break toward the lexicographically first name (the candidate list is
// sorted), so equal measurements give a deterministic choice.
func selectRemainder(rs *rules.RuleSet) (rules.Classifier, remainderSelection, error) {
	names := FreezableRemainders()
	if len(names) == 0 {
		return nil, remainderSelection{}, fmt.Errorf("remainder auto-select: no Freezable backends registered")
	}
	trace := autoTrace(rs)

	type candidate struct {
		cls    rules.Classifier
		frozen rules.FrozenClassifier
	}
	cands := make([]candidate, len(names))
	scores := make([]RemainderScore, len(names))
	for i, name := range names {
		scores[i] = RemainderScore{Name: name}
		b, ok := remainderBuilder(name)
		if !ok {
			// Registered as Freezable but the builder entry vanished; only
			// possible through a racing re-registration.
			scores[i].Err = "builder not registered"
			continue
		}
		t0 := time.Now()
		cls, err := b(rs)
		scores[i].BuildTime = time.Since(t0)
		if err != nil {
			scores[i].Err = err.Error()
			continue
		}
		fz, ok := cls.(rules.Freezable)
		if !ok {
			scores[i].Err = fmt.Sprintf("classifier %q is not Freezable", cls.Name())
			continue
		}
		frozen := fz.Freeze()
		scores[i].LookupNs = benchFrozenLookup(frozen, trace)
		scores[i].MemoryBytes = frozen.MemoryFootprint()
		cands[i] = candidate{cls: cls, frozen: frozen}
	}

	// Normalize each component to the best viable candidate's value. Floors
	// of 1 keep degenerate measurements (empty remainder: zero bytes, ~zero
	// ns) from dividing by zero.
	minLookup, minMem, minBuild := math.MaxFloat64, math.MaxFloat64, math.MaxFloat64
	viable := 0
	for i := range scores {
		if scores[i].Err != "" {
			continue
		}
		viable++
		minLookup = math.Min(minLookup, math.Max(scores[i].LookupNs, 1))
		minMem = math.Min(minMem, math.Max(float64(scores[i].MemoryBytes), 1))
		minBuild = math.Min(minBuild, math.Max(float64(scores[i].BuildTime), 1))
	}
	if viable == 0 {
		return nil, remainderSelection{}, fmt.Errorf("remainder auto-select: every candidate failed (first: %s: %s)", scores[0].Name, scores[0].Err)
	}
	best := -1
	for i := range scores {
		if scores[i].Err != "" {
			continue
		}
		scores[i].Score = autoWeightLookup*math.Max(scores[i].LookupNs, 1)/minLookup +
			autoWeightMemory*math.Max(float64(scores[i].MemoryBytes), 1)/minMem +
			autoWeightBuild*math.Max(float64(scores[i].BuildTime), 1)/minBuild
		if best < 0 || scores[i].Score < scores[best].Score {
			best = i
		}
	}
	scores[best].Selected = true
	return cands[best].cls, remainderSelection{
		backend: cands[best].cls.Name(),
		auto:    true,
		scores:  scores,
	}, nil
}

// autoTraceSeed makes the sampled trace deterministic for a given rule
// distribution, so repeated builds over the same rules score the same
// packets (the measurements still carry timing noise; the trace does not
// add more).
const autoTraceSeed = 0x52564831

// autoTrace samples a lookup trace from the remainder rule distribution:
// packets drawn from inside randomly chosen rules' boxes (the matching-heavy
// case hash-based backends differ most on), with a uniform draw mixed in
// for the miss path. An empty remainder gets a single zero packet so the
// microbenchmark still exercises the call.
func autoTrace(rs *rules.RuleSet) []rules.Packet {
	if rs.Len() == 0 || rs.NumFields == 0 {
		return []rules.Packet{make(rules.Packet, rs.NumFields)}
	}
	n := autoTraceLen
	if n > 4*rs.Len() {
		n = 4 * rs.Len()
	}
	rng := rand.New(rand.NewSource(autoTraceSeed + int64(rs.Len())))
	trace := make([]rules.Packet, n)
	for i := range trace {
		p := make(rules.Packet, rs.NumFields)
		if rng.Intn(4) != 0 {
			r := &rs.Rules[rng.Intn(rs.Len())]
			for d, f := range r.Fields {
				p[d] = f.Lo + uint32(rng.Uint64()%f.Size())
			}
		} else {
			for d := range p {
				p[d] = rng.Uint32()
			}
		}
		trace[i] = p
	}
	return trace
}

// benchFrozenLookup measures the mean unbounded frozen-lookup latency over
// the trace, repeating passes until autoBenchMinDuration accumulates.
func benchFrozenLookup(f rules.FrozenClassifier, trace []rules.Packet) float64 {
	lookups := 0
	var elapsed time.Duration
	for elapsed < autoBenchMinDuration {
		t0 := time.Now()
		for _, p := range trace {
			_ = f.Lookup(p, math.MaxInt32, nil)
		}
		elapsed += time.Since(t0)
		lookups += len(trace)
	}
	return float64(elapsed.Nanoseconds()) / float64(lookups)
}
