package core

import (
	"errors"
	"fmt"
	"time"

	"nuevomatch/internal/rules"
)

// This file implements in-place retraining: the §3.9 periodic retrain as a
// hot swap on a live engine instead of the build-a-new-engine-and-repoint
// dance of Rebuild. Retrain trains a replacement engine on a background
// goroutine-friendly path (no locks held during training), journals every
// update that arrives while training runs, replays the journal onto the
// replacement, and publishes the retrained state through the engine's
// existing RCU snapshot pointer — so callers keep their *Engine, lookups
// stay zero-lock/zero-alloc throughout, and no reader ever observes a torn
// or stale state: before the single atomic store they see the drifted
// engine with all updates applied, after it the retrained engine with the
// same updates replayed.

// journalOp records one applied update for replay onto a retrained engine.
type journalOp struct {
	del  bool
	id   int // delete target
	rule rules.Rule
}

// journalInsertLocked records an applied insert for replay while a
// background retrain is in flight; no work (and no clone allocation)
// otherwise.
func (e *Engine) journalInsertLocked(r rules.Rule) {
	if e.retraining {
		e.journal = append(e.journal, journalOp{rule: cloneRule(r)})
	}
}

// journalDeleteLocked records an applied delete for replay while a
// background retrain is in flight.
func (e *Engine) journalDeleteLocked(id int) {
	if e.retraining {
		e.journal = append(e.journal, journalOp{del: true, id: id})
	}
}

// cloneRule deep-copies a rule so the journal does not alias caller-owned
// field slices.
func cloneRule(r rules.Rule) rules.Rule {
	r.Fields = append([]rules.Range(nil), r.Fields...)
	return r
}

// ErrRetrainInProgress is returned by Retrain when another retrain on the
// same engine has not finished yet.
var ErrRetrainInProgress = errors.New("core: retrain already in progress")

// RetrainStats reports one in-place retrain.
type RetrainStats struct {
	// TrainTime is the wall time of the background Build — lookups and
	// updates proceed normally for its whole duration.
	TrainTime time.Duration
	// SwapTime is the time the write lock was held to replay the journal and
	// publish the retrained snapshot. Lookups are lock-free and never blocked
	// even during the swap; SwapTime bounds only the update-side stall.
	SwapTime time.Duration
	// Replayed is the number of journaled updates applied to the retrained
	// state before publication.
	Replayed int
	// RulesBefore/RulesAfter are the live rule counts around the retrain.
	RulesBefore, RulesAfter int
	// CoverageBefore is the fraction of live rules the RQ-RMIs served when
	// the retrain started; CoverageAfter the fraction after the swap.
	CoverageBefore, CoverageAfter float64
}

// Retrain retrains the engine in place over its current live rules — the
// paper's periodic retraining (§3.9, Figure 7) as a hot swap. Training runs
// without holding the write lock: concurrent Insert/Delete/Modify keep
// landing on the serving state and are journaled; once the replacement is
// trained the journal is replayed onto it under the write lock and the
// result is published with one atomic snapshot store. Concurrent lookups
// never stall and always observe either the pre-swap state (with every
// update applied) or the post-swap state (with the same updates replayed).
// At most one Retrain may be in flight per engine; concurrent calls fail
// with ErrRetrainInProgress.
func (e *Engine) Retrain() (RetrainStats, error) {
	var st RetrainStats
	e.mu.Lock()
	if e.retraining {
		e.mu.Unlock()
		return st, ErrRetrainInProgress
	}
	e.retraining = true
	live := e.liveRuleSetLocked()
	st.RulesBefore = len(e.prioID)
	st.CoverageBefore = 1 - e.updateStatsLocked().RemainderFraction
	e.mu.Unlock()

	t0 := time.Now()
	fresh, err := Build(live, e.opts)
	st.TrainTime = time.Since(t0)

	e.mu.Lock()
	defer e.mu.Unlock()
	journal := e.journal
	e.journal, e.retraining = nil, false
	if err != nil {
		return st, fmt.Errorf("core: retrain build: %w", err)
	}
	t1 := time.Now()
	for _, op := range journal {
		// Every journaled op was a valid transition on the serving engine
		// and the replacement was built from the exact rule set the journal
		// starts at, so replay cannot fail unless the engine's own
		// bookkeeping is broken; in that case keep serving the old state.
		if op.del {
			err = fresh.Delete(op.id)
		} else {
			err = fresh.Insert(op.rule)
		}
		if err != nil {
			return st, fmt.Errorf("core: retrain replay: %w", err)
		}
	}
	st.Replayed = len(journal)
	e.adoptLocked(fresh)
	st.SwapTime = time.Since(t1)
	st.RulesAfter = len(e.prioID)
	st.CoverageAfter = 1 - e.updateStatsLocked().RemainderFraction
	return st, nil
}

// adoptLocked moves the retrained engine's entire state — write side and
// read side — into e and publishes it. f is private to the caller (it never
// escaped Build/replay), so its fields can be adopted without locking it.
// e keeps its own parPool: pooled workers carry no engine state between
// jobs, only scratch buffers.
func (e *Engine) adoptLocked(f *Engine) {
	e.rs = f.rs
	e.posID = f.posID
	e.prioID = f.prioID
	e.live = f.live
	e.isets = f.isets
	e.inISet = f.inISet
	e.meta = f.meta
	e.fieldLo, e.fieldHi = f.fieldLo, f.fieldHi
	e.remainder = f.remainder
	e.remainderRules = f.remainderRules
	e.remFrozen, e.remOverlay = f.remFrozen, f.remOverlay
	e.remIDs, e.remPrios = f.remIDs, f.remPrios
	e.stats = f.stats
	// The replacement's counters are exactly the replayed journal: those
	// updates are real post-build drift (they live in the new remainder),
	// so they must keep counting toward the next retrain trigger.
	e.ustats = f.ustats
	f.Close() // retire any pooled workers the replacement spawned
	e.publishLocked()
}
