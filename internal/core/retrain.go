package core

import (
	"errors"
	"fmt"
	"time"

	"nuevomatch/internal/faultinject"
	"nuevomatch/internal/rules"
)

// This file implements in-place retraining: the §3.9 periodic retrain as a
// hot swap on a live engine instead of the build-a-new-engine-and-repoint
// dance of Rebuild. Retrain trains a replacement engine on a background
// goroutine-friendly path (no locks held during training), journals every
// update that arrives while training runs, replays the journal onto the
// replacement, and publishes the retrained state through the engine's
// existing RCU snapshot pointer — so callers keep their *Engine, lookups
// stay zero-lock/zero-alloc throughout, and no reader ever observes a torn
// or stale state: before the single atomic store they see the drifted
// engine with all updates applied, after it the retrained engine with the
// same updates replayed.

// journalOp records one applied update for replay onto a retrained engine.
type journalOp struct {
	del  bool
	id   int // delete target
	rule rules.Rule
}

// journalInsertLocked records an applied insert for replay while a
// background retrain is in flight; no work (and no clone allocation)
// otherwise.
func (e *Engine) journalInsertLocked(r rules.Rule) {
	if e.retraining {
		e.journal = append(e.journal, journalOp{rule: cloneRule(r)})
	}
}

// journalDeleteLocked records an applied delete for replay while a
// background retrain is in flight.
func (e *Engine) journalDeleteLocked(id int) {
	if e.retraining {
		e.journal = append(e.journal, journalOp{del: true, id: id})
	}
}

// cloneRule deep-copies a rule so the journal does not alias caller-owned
// field slices.
func cloneRule(r rules.Rule) rules.Rule {
	r.Fields = append([]rules.Range(nil), r.Fields...)
	return r
}

// ErrRetrainInProgress is returned by Retrain when another retrain on the
// same engine has not finished yet.
var ErrRetrainInProgress = errors.New("core: retrain already in progress")

// RetrainStats reports one in-place retrain.
type RetrainStats struct {
	// TrainTime is the wall time of the background Build — lookups and
	// updates proceed normally for its whole duration.
	TrainTime time.Duration
	// SwapTime is the time the write lock was held to replay the journal and
	// publish the retrained snapshot. Lookups are lock-free and never blocked
	// even during the swap; SwapTime bounds only the update-side stall.
	SwapTime time.Duration
	// Replayed is the number of journaled updates applied to the retrained
	// state before publication.
	Replayed int
	// RulesBefore/RulesAfter are the live rule counts around the retrain.
	RulesBefore, RulesAfter int
	// CoverageBefore is the fraction of live rules the RQ-RMIs served when
	// the retrain started; CoverageAfter the fraction after the swap.
	CoverageBefore, CoverageAfter float64
}

// Retrain retrains the engine in place over its current live rules — the
// paper's periodic retraining (§3.9, Figure 7) as a hot swap. Training runs
// without holding the write lock: concurrent Insert/Delete/Modify keep
// landing on the serving state and are journaled; once the replacement is
// trained the journal is replayed onto it under the write lock and the
// result is published with one atomic snapshot store. Concurrent lookups
// never stall and always observe either the pre-swap state (with every
// update applied) or the post-swap state (with the same updates replayed).
// At most one Retrain may be in flight per engine; concurrent calls fail
// with ErrRetrainInProgress.
func (e *Engine) Retrain() (RetrainStats, error) {
	return e.retrain(nil)
}

// RetrainWith retrains the engine in place like Retrain, but builds the
// replacement with the given options instead of the options the engine was
// built with. On success the engine adopts the new options for future
// retrains. The cluster's quarantine rebuilder uses this to upgrade a
// remainder-only fallback engine (Options{MaxISets: -1}) to a fully
// trained one without disturbing concurrent lookups.
func (e *Engine) RetrainWith(opts Options) (RetrainStats, error) {
	return e.retrain(&opts)
}

func (e *Engine) retrain(opts *Options) (RetrainStats, error) {
	var st RetrainStats
	e.mu.Lock()
	if e.retraining {
		e.mu.Unlock()
		return st, ErrRetrainInProgress
	}
	e.retraining = true
	live := e.liveRuleSetLocked()
	st.RulesBefore = len(e.prioID)
	st.CoverageBefore = 1 - e.updateStatsLocked().RemainderFraction
	if opts == nil {
		o := e.opts
		opts = &o
	}
	e.mu.Unlock()

	t0 := time.Now()
	var fresh *Engine
	err := faultinject.Hit(faultinject.PointRetrainBuild)
	if err == nil {
		fresh, err = Build(live, *opts)
	}
	st.TrainTime = time.Since(t0)

	e.mu.Lock()
	defer e.mu.Unlock()
	journal := e.journal
	e.journal, e.retraining = nil, false
	if err != nil {
		return st, fmt.Errorf("core: retrain build: %w", err)
	}
	t1 := time.Now()
	// Every journaled op was a valid transition on the serving engine and
	// the replacement was built from the exact rule set the journal starts
	// at, so replay cannot fail unless the engine's own bookkeeping is
	// broken; in that case keep serving the old state. The whole journal is
	// folded in as one bulk pass — O(journal + remainder), not O(journal ×
	// remainder) of per-op copy-on-write — because fresh is still private:
	// no snapshot of it is ever observed until adoptLocked publishes.
	if err := faultinject.Hit(faultinject.PointRetrainReplay); err != nil {
		fresh.Close()
		return st, fmt.Errorf("core: retrain replay: %w", err)
	}
	if err := replayJournal(fresh, journal); err != nil {
		return st, fmt.Errorf("core: retrain replay: %w", err)
	}
	st.Replayed = len(journal)
	e.adoptLocked(fresh)
	st.SwapTime = time.Since(t1)
	st.RulesAfter = len(e.prioID)
	st.CoverageAfter = 1 - e.updateStatsLocked().RemainderFraction
	return st, nil
}

// netJournalEntry is the folded effect of every journaled op touching one
// rule ID: at most one deletion of a rule that pre-exists in the replacement
// build, and at most one surviving insert (later ops on the same ID collapse
// earlier ones — an insert followed by a delete vanishes, a delete followed
// by an insert is the §3.9 modify).
type netJournalEntry struct {
	id       int
	delBuilt bool
	insert   bool
	rule     rules.Rule
}

// replayJournal folds the journal into the freshly built replacement engine
// as one bulk pass instead of one public update per op. fresh is private to
// the retrain (it never escaped Build), so its state is edited directly and
// exactly one snapshot publication happens — in adoptLocked, after the
// journal is in. The drift counters count gross journal ops, matching what
// per-op replay recorded: every replayed op is real post-build drift and
// keeps counting toward the next retrain trigger.
func replayJournal(fresh *Engine, journal []journalOp) error {
	if len(journal) == 0 {
		return nil
	}

	// Pass 1: net effect per rule ID, in first-touch order.
	net := make(map[int]*netJournalEntry, len(journal))
	order := make([]*netJournalEntry, 0, len(journal))
	touch := func(id int) *netJournalEntry {
		n := net[id]
		if n == nil {
			n = &netJournalEntry{id: id}
			net[id] = n
			order = append(order, n)
		}
		return n
	}
	var grossIns, grossDelISet, grossDelRem int
	for _, op := range journal {
		if !op.del {
			n := touch(op.rule.ID)
			if n.insert {
				return fmt.Errorf("journal inserts rule %d twice", op.rule.ID)
			}
			n.insert = true
			n.rule = op.rule
			grossIns++
			continue
		}
		n := touch(op.id)
		switch {
		case n.insert:
			// Deleting a journal-inserted rule: both ops vanish. The insert
			// would have landed in the remainder, so that is where the
			// serving engine counted the delete.
			n.insert = false
			n.rule = rules.Rule{}
			grossDelRem++
		case n.delBuilt:
			return fmt.Errorf("journal deletes rule %d twice", op.id)
		default:
			n.delBuilt = true
			if _, inModel := fresh.inISet[op.id]; inModel {
				grossDelISet++
			} else {
				grossDelRem++
			}
		}
	}

	// Pass 2: deletions of pre-existing rules. iSet deletions mark the
	// metadata dead — in place, legal only because no snapshot of fresh is
	// live — and remainder deletions drop out of the classifier and the
	// remainder rule list in one filter.
	remDel := make(map[int]bool)
	for _, n := range order {
		if !n.delBuilt {
			continue
		}
		if !fresh.live[n.id] {
			return fmt.Errorf("journal deletes unknown rule %d", n.id)
		}
		if _, inModel := fresh.inISet[n.id]; inModel {
			fresh.meta[fresh.posID[n.id]].live = false
			delete(fresh.inISet, n.id)
		} else {
			remDel[n.id] = true
		}
		delete(fresh.prioID, n.id)
		delete(fresh.live, n.id)
	}
	var upd rules.Updatable
	if len(remDel) > 0 || grossIns > 0 {
		var ok bool
		if upd, ok = fresh.remainder.(rules.Updatable); !ok {
			return fmt.Errorf("remainder classifier %q does not support updates", fresh.remainder.Name())
		}
	}
	if len(remDel) > 0 {
		for id := range remDel {
			if err := upd.Delete(id); err != nil {
				return err
			}
		}
		kept := fresh.remainderRules.Rules[:0]
		for i := range fresh.remainderRules.Rules {
			if !remDel[fresh.remainderRules.Rules[i].ID] {
				kept = append(kept, fresh.remainderRules.Rules[i])
			}
		}
		fresh.remainderRules.Rules = kept
	}

	// Pass 3: surviving inserts, in journal order. Rules were cloned when
	// journaled, so they are safe to retain.
	for _, n := range order {
		if !n.insert {
			continue
		}
		r := n.rule
		if len(r.Fields) != fresh.rs.NumFields {
			return fmt.Errorf("journaled rule %d has %d fields, engine expects %d", r.ID, len(r.Fields), fresh.rs.NumFields)
		}
		if _, dup := fresh.prioID[r.ID]; dup {
			return fmt.Errorf("journaled rule %d duplicates a live ID", r.ID)
		}
		if err := upd.Insert(r); err != nil {
			return err
		}
		fresh.remainderRules.Add(r)
		fresh.prioID[r.ID] = r.Priority
		fresh.live[r.ID] = true
	}

	// One bookkeeping rebuild instead of per-op copy-on-write: the sorted
	// (id, priority) table and the frozen remainder are reconstructed once.
	fresh.remIDs, fresh.remPrios = sortedRemainderTable(fresh.remainderRules)
	fresh.refreezeRemainderLocked()
	fresh.ustats.Inserted += grossIns
	fresh.ustats.DeletedFromISets += grossDelISet
	fresh.ustats.DeletedFromRemainder += grossDelRem
	return nil
}

// adoptLocked moves the retrained engine's entire state — write side and
// read side — into e and publishes it. f is private to the caller (it never
// escaped Build/replay), so its fields can be adopted without locking it.
// e keeps its own parPool: pooled workers carry no engine state between
// jobs, only scratch buffers.
func (e *Engine) adoptLocked(f *Engine) {
	e.opts = f.opts
	e.rs = f.rs
	e.posID = f.posID
	e.prioID = f.prioID
	e.live = f.live
	e.isets = f.isets
	e.inISet = f.inISet
	e.meta = f.meta
	e.fieldLo, e.fieldHi = f.fieldLo, f.fieldHi
	e.remainder = f.remainder
	e.remainderRules = f.remainderRules
	e.remFrozen, e.remOverlay = f.remFrozen, f.remOverlay
	e.remIDs, e.remPrios = f.remIDs, f.remPrios
	e.stats = f.stats
	// The replacement's counters are exactly the replayed journal: those
	// updates are real post-build drift (they live in the new remainder),
	// so they must keep counting toward the next retrain trigger.
	e.ustats = f.ustats
	f.Close() // retire any pooled workers the replacement spawned
	e.publishLocked()
}
