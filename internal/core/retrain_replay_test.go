package core

import (
	"math/rand"
	"runtime"
	"testing"

	"nuevomatch/internal/classbench"
	"nuevomatch/internal/rules"
)

// churnJournal synthesizes a retrain journal with the churn workload's op
// mix — fresh inserts, deletes of built and journal-inserted rules, and
// delete+reinsert (modify) sequences — mirroring every op onto the linear
// reference.
func churnJournal(rng *rand.Rand, base *rules.RuleSet, mirror *rules.RuleSet, n int) []journalOp {
	journal := make([]journalOp, 0, n)
	nextID := 2_000_000
	liveAt := func(i int) *rules.Rule { return &mirror.Rules[i] }
	for len(journal) < n {
		switch x := rng.Float64(); {
		case x < 0.45: // insert a mutation of a live rule under a fresh ID
			src := *liveAt(rng.Intn(mirror.Len()))
			r := src
			r.ID = nextID
			nextID++
			r.Priority = int32(2*nextID + 1)
			r.Fields = append([]rules.Range(nil), src.Fields...)
			journal = append(journal, journalOp{rule: cloneRule(r)})
			mirror.Add(r)
		case x < 0.80: // delete a random live rule (built or journal-inserted)
			if mirror.Len() <= 32 {
				continue
			}
			i := rng.Intn(mirror.Len())
			id := liveAt(i).ID
			journal = append(journal, journalOp{del: true, id: id})
			mirror.Rules[i] = mirror.Rules[mirror.Len()-1]
			mirror.Rules = mirror.Rules[:mirror.Len()-1]
		default: // modify: delete + reinsert the same ID with new fields
			if mirror.Len() <= 32 {
				continue
			}
			i := rng.Intn(mirror.Len())
			r := *liveAt(i)
			journal = append(journal, journalOp{del: true, id: r.ID})
			r.Fields = append([]rules.Range(nil), r.Fields...)
			r.Fields[0] = rules.PrefixRange(rng.Uint32(), 24)
			journal = append(journal, journalOp{rule: cloneRule(r)})
			mirror.Rules[i] = r
		}
	}
	return journal
}

// TestBatchReplayEquivalence proves the bulk journal replay leaves the
// replacement engine in exactly the state per-op replay would have: every
// lookup agrees with a linear reference that absorbed the same ops, the
// drift counters count gross journal ops, and — the ROADMAP improvement —
// the whole replay publishes no intermediate snapshots and allocates
// O(journal + remainder), not the O(journal × remainder) of per-op
// copy-on-write.
func TestBatchReplayEquivalence(t *testing.T) {
	prof, err := classbench.ProfileByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	size, journalLen := 1500, 1200
	if testing.Short() {
		size, journalLen = 400, 300
	}
	all := classbench.Generate(prof, size)
	base := rules.NewRuleSet(all.NumFields)
	for i := 0; i < size; i++ {
		r := all.Rules[i]
		r.Priority = int32(2 * (i + 1))
		base.Add(r)
	}
	e, err := Build(base.Clone(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	rng := rand.New(rand.NewSource(55))
	mirror := base.Clone()
	journal := churnJournal(rng, base, mirror, journalLen)

	publishesBefore := e.publishes

	// Measure the replay's allocation footprint. Per-op replay re-copied the
	// sorted remainder table and the overlay per op — O(journal × remainder)
	// bytes; the bulk pass must stay well under that.
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	if err := replayJournal(e, journal); err != nil {
		t.Fatalf("replayJournal: %v", err)
	}
	runtime.ReadMemStats(&m1)
	e.mu.Lock()
	e.publishLocked() // what adoptLocked would do after a real retrain
	e.mu.Unlock()

	if got := e.publishes - publishesBefore; got != 1 {
		t.Errorf("replay published %d snapshots, want 1 (the post-replay adopt)", got)
	}
	allocated := m1.TotalAlloc - m0.TotalAlloc
	// Generous linear budget: ~32 KB per journaled op covers the remainder
	// classifier's own insert cost plus the final re-freeze, while the old
	// quadratic path at this size burned an order of magnitude more.
	if budget := uint64(journalLen)*32*1024 + 16<<20; allocated > budget {
		t.Errorf("replay allocated %d MB, budget %d MB — replay is no longer O(journal + remainder)",
			allocated>>20, budget>>20)
	}

	// Equivalence against the reference that absorbed the same journal.
	for i := 0; i < 600; i++ {
		p := make(rules.Packet, mirror.NumFields)
		if rng.Intn(4) != 0 && mirror.Len() > 0 {
			classbench.FillMatchingPacket(rng, &mirror.Rules[rng.Intn(mirror.Len())], p)
		} else {
			for d := range p {
				p[d] = rng.Uint32()
			}
		}
		if got, want := e.Lookup(p), mirror.MatchID(p); got != want {
			t.Fatalf("after replay: Lookup(%v) = %d, want %d", p, got, want)
		}
	}

	// Gross-op drift counters, as the serving engine recorded them.
	var wantIns, wantDel int
	for _, op := range journal {
		if op.del {
			wantDel++
		} else {
			wantIns++
		}
	}
	us := e.Updates()
	if us.Inserted != wantIns || us.DeletedFromISets+us.DeletedFromRemainder != wantDel {
		t.Errorf("drift counters = %+v, want %d inserts / %d deletes (gross journal ops)", us, wantIns, wantDel)
	}
}

// TestBatchReplayRejectsCorruptJournal covers the defensive error paths: a
// journal that references unknown rules or double-applies an ID must fail
// without corrupting the replacement.
func TestBatchReplayRejectsCorruptJournal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rs := structuredRuleSet(rng, 300)
	e, err := Build(rs.Clone(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	r := rs.Rules[0]
	r.Fields = append([]rules.Range(nil), r.Fields...)

	for name, journal := range map[string][]journalOp{
		"delete unknown":   {{del: true, id: 999_999}},
		"double delete":    {{del: true, id: rs.Rules[1].ID}, {del: true, id: rs.Rules[1].ID}},
		"duplicate insert": {{rule: cloneRule(r)}},
	} {
		if err := replayJournal(e, journal); err == nil {
			t.Errorf("%s: replay succeeded, want error", name)
		}
	}
}
