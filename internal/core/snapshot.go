package core

import (
	"math"
	"sort"
	"sync"

	"nuevomatch/internal/rqrmi"
	"nuevomatch/internal/rules"
)

// This file holds the read side of the engine: an immutable snapshot
// published through an atomic pointer (RCU-style). Lookups load the current
// snapshot once and then touch only flat slices — no mutexes, no Go maps, no
// per-call type assertions — which keeps the paper's compute-bound pipeline
// (§4) free of synchronization and pointer-chasing costs. Updates construct
// a replacement snapshot under the engine's write lock and publish it with a
// single atomic store; readers holding the old snapshot finish against a
// consistent view.

// ruleMeta is the per-position metadata of one built rule, kept in a flat
// array indexed by the rule's position in the build-time rule order. It
// replaces the posID/prioID/live maps on the read path.
type ruleMeta struct {
	id   int
	prio int32
	live bool
}

// snapshot is one immutable engine state. Everything reachable from it is
// either never mutated after publication (fieldLo/fieldHi, isets, the
// frozen remainder and its overlay, adapter tables) or copied before
// mutation (meta). The §3.9 online-update remainder is served by the
// compiled frozen form plus the update overlay, so steady-state lookups
// never touch the live classifier's synchronization.
//
//nm:immutable
type snapshot struct {
	numFields int
	// meta[pos] is the metadata of built rule pos; deletions publish a copy
	// with live=false instead of tombstoning the shared model arrays.
	meta []ruleMeta
	// fieldLo/fieldHi are the rules' field bounds flattened with stride
	// numFields: rule pos's range in dimension d is
	// [fieldLo[pos*numFields+d], fieldHi[pos*numFields+d]]. Built once and
	// shared by every snapshot (build-time matching sets never change; §3.9
	// modifications move the rule to the remainder).
	fieldLo []uint32
	fieldHi []uint32
	// isets are the trained RQ-RMI indexes; their payloads are positions
	// into meta and are never rewritten.
	isets []isetIndex
	// rem is the precomputed remainder adapter (no per-lookup type
	// assertion).
	rem remainderAdapter
}

// matches reports whether the packet falls inside built rule pos, reading
// the flat bound arrays directly.
//
//nm:hotpath
func (s *snapshot) matches(pos int, p rules.Packet) bool {
	base := pos * s.numFields
	if len(p) < s.numFields {
		return false
	}
	for d := 0; d < s.numFields; d++ {
		v := p[d]
		if v < s.fieldLo[base+d] || v > s.fieldHi[base+d] {
			return false
		}
	}
	return true
}

// isetCandidate returns the validated candidate of one iSet under the
// running priority bound.
//
//nm:hotpath
func (s *snapshot) isetCandidate(is *isetIndex, p rules.Packet, bestPrio int32) (id int, prio int32, ok bool) {
	entry, found := is.model.LookupEntry(p[is.field])
	if !found {
		return 0, 0, false
	}
	pos := is.model.Values()[entry]
	if pos < 0 {
		return 0, 0, false
	}
	m := &s.meta[pos]
	if !m.live || m.prio >= bestPrio {
		return 0, 0, false
	}
	if !s.matches(pos, p) {
		return 0, 0, false
	}
	return m.id, m.prio, true
}

// lookup runs the single-core early-termination flow of §4 against this
// snapshot.
//
//nm:hotpath
func (s *snapshot) lookup(p rules.Packet, bestPrio int32) int {
	best := rules.NoMatch
	for i := range s.isets {
		if id, prio, ok := s.isetCandidate(&s.isets[i], p, bestPrio); ok {
			best, bestPrio = id, prio
		}
	}
	if id := s.rem.lookupWithBound(p, bestPrio); id >= 0 {
		return id
	}
	return best
}

// batchScratch is the fixed-size per-chunk scratch of lookupBatch. It is
// pooled rather than stack-allocated because slices of it cross the
// rules.FrozenClassifier interface boundary, which makes escape analysis
// heap-move a stack array and cost one allocation per call; a pool hit
// costs nothing after warm-up, keeping the batch path zero-alloc.
type batchScratch struct {
	keys     [rqrmi.BatchChunk]uint32
	ents     [rqrmi.BatchChunk]int32
	best     [rqrmi.BatchChunk]int
	bestPrio [rqrmi.BatchChunk]int32
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// isetChunk runs every iSet's batched RQ-RMI inference over one chunk of at
// most rqrmi.BatchChunk packets, writing each packet's best validated
// candidate into best/bestPrio (len(block) entries each). It is the shared
// iSet half of lookupBatch and the §5.1 parallel split.
//
//nm:hotpath
func (s *snapshot) isetChunk(block []rules.Packet, keys *[rqrmi.BatchChunk]uint32, ents *[rqrmi.BatchChunk]int32, best []int, bestPrio []int32) {
	n := len(block)
	for c := range block {
		best[c], bestPrio[c] = rules.NoMatch, math.MaxInt32
	}
	for i := range s.isets {
		is := &s.isets[i]
		for c, p := range block {
			keys[c] = p[is.field]
		}
		is.model.LookupEntryBatch(keys[:n], ents[:n])
		vals := is.model.Values()
		for c := range block {
			ei := ents[c]
			if ei < 0 {
				continue
			}
			pos := vals[ei]
			if pos < 0 {
				continue
			}
			m := &s.meta[pos]
			if !m.live || m.prio >= bestPrio[c] {
				continue
			}
			if !s.matches(pos, block[c]) {
				continue
			}
			best[c], bestPrio[c] = m.id, m.prio
		}
	}
}

// lookupBatch classifies pkts into out using batched RQ-RMI inference: each
// iSet's model runs stage-by-stage across a whole chunk of packets
// (rqrmi.LookupEntryBatch), then candidates are validated against the flat
// metadata, and finally the remainder is queried per chunk under the best
// priorities found. Scratch comes from a pool, so the batch path allocates
// nothing in steady state.
//
//nm:hotpath
func (s *snapshot) lookupBatch(pkts []rules.Packet, out []int) {
	const chunk = rqrmi.BatchChunk
	scr := batchScratchPool.Get().(*batchScratch)
	keys := &scr.keys
	ents := &scr.ents
	best := &scr.best
	bestPrio := &scr.bestPrio
	for off := 0; off < len(pkts); off += chunk {
		n := len(pkts) - off
		if n > chunk {
			n = chunk
		}
		block := pkts[off : off+n]
		if s.rem.prefetch != nil {
			// Warm the frozen remainder's directory lines for this chunk
			// while the RQ-RMI stages below keep the core busy: by the time
			// the frozen LookupBatch probes run, their cache misses have
			// already been in flight for the whole inference.
			s.rem.prefetch.PrefetchBatch(block)
		}
		s.isetChunk(block, keys, ents, best[:n], bestPrio[:n])
		if s.rem.frozen != nil {
			// Frozen path: pre-fill with the iSet winners, then let the
			// overlay scan and the compiled table-major batch walk improve
			// them in place. No locks, no allocation.
			for c := range block {
				out[off+c] = best[c]
			}
			s.rem.overlay.scanBatch(block, bestPrio[:n], out[off:off+n])
			s.rem.frozen.LookupBatch(block, bestPrio[:n], s.rem.overlay.del, out[off:off+n])
		} else if s.rem.batch != nil {
			// One remainder call per chunk: a single lock acquisition and
			// cache-hot tables serve all n packets.
			//nm:allow hotpath: non-freezable remainder fallback; the classifier may lock internally, which is why freezable remainders are the default
			s.rem.batch.LookupBatchWithBound(block, bestPrio[:n], out[off:off+n])
			for c := range block {
				if out[off+c] < 0 {
					out[off+c] = best[c]
				}
			}
		} else {
			for c, p := range block {
				if id := s.rem.lookupWithBound(p, bestPrio[c]); id >= 0 {
					out[off+c] = id
				} else {
					out[off+c] = best[c]
				}
			}
		}
	}
	batchScratchPool.Put(scr)
}

// --- remainder adapter ----------------------------------------------------

// remainderAdapter binds the external remainder classifier into the
// snapshot. When the classifier is rules.Freezable (TupleMerge is), the
// adapter carries the compiled frozen form plus the immutable update
// overlay, and the whole remainder query runs lock-free against flat
// arrays: overlay additions are scanned in priority order, frozen tables
// are walked with deleted rules masked by the overlay's sorted skip list.
// Otherwise it falls back to calling the live classifier with its
// bound-support resolved once at publish time instead of by a per-call type
// assertion. It also carries a sorted (id, priority) table of the current
// remainder rules, so the priority comparisons of the merge paths are
// binary searches over flat slices instead of map accesses.
//
//nm:immutable
type remainderAdapter struct {
	frozen   rules.FrozenClassifier       // non-nil: compiled lock-free path
	overlay  *remOverlay                  // updates since the freeze; non-nil iff frozen is
	prefetch rules.BatchPrefetcher        // non-nil when frozen can pre-warm its probes
	bounded  rules.BoundedClassifier      // nil when the classifier lacks bounds
	batch    rules.BatchBoundedClassifier // nil when batched queries are unsupported
	plain    rules.Classifier
	ids      []int   // sorted remainder rule IDs
	prios    []int32 // prios[i] is the priority of ids[i]
}

// newRemainderAdapter resolves the classifier's capabilities once at
// publish time. frozen/overlay are the write side's current compiled
// remainder and its delta (nil for non-freezable classifiers); ids/prios
// are the engine's current (sorted, immutable) remainder table. All are
// maintained copy-on-write by the write side so building an adapter is
// O(1).
//
//nm:builder remainderAdapter
func newRemainderAdapter(c rules.Classifier, frozen rules.FrozenClassifier, overlay *remOverlay, ids []int, prios []int32) remainderAdapter {
	ra := remainderAdapter{plain: c, frozen: frozen, overlay: overlay, ids: ids, prios: prios}
	if pf, ok := frozen.(rules.BatchPrefetcher); ok {
		ra.prefetch = pf
	}
	if bc, ok := c.(rules.BoundedClassifier); ok {
		ra.bounded = bc
	}
	if bb, ok := c.(rules.BatchBoundedClassifier); ok {
		ra.batch = bb
	}
	return ra
}

// sortedRemainderTable builds the initial (id, priority) table, sorted by
// ID, from the remainder rule-set.
func sortedRemainderTable(rr *rules.RuleSet) ([]int, []int32) {
	order := make([]int, rr.Len())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return rr.Rules[order[a]].ID < rr.Rules[order[b]].ID
	})
	ids := make([]int, len(order))
	prios := make([]int32, len(order))
	for i, j := range order {
		ids[i] = rr.Rules[j].ID
		prios[i] = rr.Rules[j].Priority
	}
	return ids, prios
}

// prioOf returns the priority of remainder rule id via binary search.
//
//nm:hotpath
func (ra *remainderAdapter) prioOf(id int) (int32, bool) {
	lo, hi := 0, len(ra.ids)-1
	for lo <= hi {
		mid := int(uint(lo+hi) >> 1)
		switch {
		case ra.ids[mid] < id:
			lo = mid + 1
		case ra.ids[mid] > id:
			hi = mid - 1
		default:
			return ra.prios[mid], true
		}
	}
	return 0, false
}

// lookupWithBound queries the remainder under the caller's best priority,
// returning the winning remainder rule ID or -1 when the remainder cannot
// beat the bound.
//
//nm:hotpath
func (ra *remainderAdapter) lookupWithBound(p rules.Packet, bestPrio int32) int {
	if ra.frozen != nil {
		// Lock-free path: the overlay's priority-sorted additions tighten
		// the bound before the compiled table walk, so a high-priority
		// insert short-circuits most of the frozen scan.
		best := rules.NoMatch
		if id, prio := ra.overlay.scan(p, bestPrio); id >= 0 {
			best, bestPrio = id, prio
		}
		if id := ra.frozen.Lookup(p, bestPrio, ra.overlay.del); id >= 0 {
			best = id
		}
		return best
	}
	if ra.bounded != nil {
		//nm:allow hotpath: non-freezable remainder fallback; bounded classifier may lock internally
		return ra.bounded.LookupWithBound(p, bestPrio)
	}
	//nm:allow hotpath: non-freezable remainder fallback; plain classifier may lock internally
	id := ra.plain.Lookup(p)
	if id < 0 {
		return rules.NoMatch
	}
	if prio, ok := ra.prioOf(id); ok && prio < bestPrio {
		return id
	}
	return rules.NoMatch
}

// lookupUnboundedID returns the remainder's unbounded winner ID, lock-free
// on the frozen path.
//
//nm:hotpath
func (ra *remainderAdapter) lookupUnboundedID(p rules.Packet) int {
	if ra.frozen != nil {
		return ra.lookupWithBound(p, math.MaxInt32)
	}
	//nm:allow hotpath: non-freezable remainder fallback; plain classifier may lock internally
	return ra.plain.Lookup(p)
}

// lookupUnboundedBatch fills out[i] with the remainder's unbounded winner
// (or -1) for pkts[i], using the table-major frozen walk when available so
// each table's tuple and directory stay cache-hot across the chunk. bounds
// is caller-owned scratch of at least len(pkts) entries.
//
//nm:hotpath
func (ra *remainderAdapter) lookupUnboundedBatch(pkts []rules.Packet, bounds []int32, out []int) {
	if ra.frozen == nil {
		for i, p := range pkts {
			//nm:allow hotpath: non-freezable remainder fallback; plain classifier may lock internally
			out[i] = ra.plain.Lookup(p)
		}
		return
	}
	for i := range pkts {
		out[i] = rules.NoMatch
		bounds[i] = math.MaxInt32
	}
	ra.overlay.scanBatch(pkts, bounds, out)
	ra.frozen.LookupBatch(pkts, bounds, ra.overlay.del, out)
}

// lookupUnbounded queries the remainder in full (the §4 ablation and the
// two-core merge), returning the match and its priority.
//
//nm:hotpath
func (ra *remainderAdapter) lookupUnbounded(p rules.Packet) (id int, prio int32, ok bool) {
	id = ra.lookupUnboundedID(p)
	if id < 0 {
		return rules.NoMatch, 0, false
	}
	prio, ok = ra.prioOf(id)
	return id, prio, ok
}
