package core

import (
	"math"
	"sort"

	"nuevomatch/internal/rqrmi"
	"nuevomatch/internal/rules"
)

// This file holds the read side of the engine: an immutable snapshot
// published through an atomic pointer (RCU-style). Lookups load the current
// snapshot once and then touch only flat slices — no mutexes, no Go maps, no
// per-call type assertions — which keeps the paper's compute-bound pipeline
// (§4) free of synchronization and pointer-chasing costs. Updates construct
// a replacement snapshot under the engine's write lock and publish it with a
// single atomic store; readers holding the old snapshot finish against a
// consistent view.

// ruleMeta is the per-position metadata of one built rule, kept in a flat
// array indexed by the rule's position in the build-time rule order. It
// replaces the posID/prioID/live maps on the read path.
type ruleMeta struct {
	id   int
	prio int32
	live bool
}

// snapshot is one immutable engine state. Everything reachable from it is
// either never mutated after publication (fieldLo/fieldHi, isets, adapter
// tables) or copied before mutation (meta). The remainder classifier is the
// §3.9 online-update component and keeps its own internal synchronization.
type snapshot struct {
	numFields int
	// meta[pos] is the metadata of built rule pos; deletions publish a copy
	// with live=false instead of tombstoning the shared model arrays.
	meta []ruleMeta
	// fieldLo/fieldHi are the rules' field bounds flattened with stride
	// numFields: rule pos's range in dimension d is
	// [fieldLo[pos*numFields+d], fieldHi[pos*numFields+d]]. Built once and
	// shared by every snapshot (build-time matching sets never change; §3.9
	// modifications move the rule to the remainder).
	fieldLo []uint32
	fieldHi []uint32
	// isets are the trained RQ-RMI indexes; their payloads are positions
	// into meta and are never rewritten.
	isets []isetIndex
	// rem is the precomputed remainder adapter (no per-lookup type
	// assertion).
	rem remainderAdapter
}

// matches reports whether the packet falls inside built rule pos, reading
// the flat bound arrays directly.
func (s *snapshot) matches(pos int, p rules.Packet) bool {
	base := pos * s.numFields
	if len(p) < s.numFields {
		return false
	}
	for d := 0; d < s.numFields; d++ {
		v := p[d]
		if v < s.fieldLo[base+d] || v > s.fieldHi[base+d] {
			return false
		}
	}
	return true
}

// isetCandidate returns the validated candidate of one iSet under the
// running priority bound.
func (s *snapshot) isetCandidate(is *isetIndex, p rules.Packet, bestPrio int32) (id int, prio int32, ok bool) {
	entry, found := is.model.LookupEntry(p[is.field])
	if !found {
		return 0, 0, false
	}
	pos := is.model.Values()[entry]
	if pos < 0 {
		return 0, 0, false
	}
	m := &s.meta[pos]
	if !m.live || m.prio >= bestPrio {
		return 0, 0, false
	}
	if !s.matches(pos, p) {
		return 0, 0, false
	}
	return m.id, m.prio, true
}

// lookup runs the single-core early-termination flow of §4 against this
// snapshot.
func (s *snapshot) lookup(p rules.Packet, bestPrio int32) int {
	best := rules.NoMatch
	for i := range s.isets {
		if id, prio, ok := s.isetCandidate(&s.isets[i], p, bestPrio); ok {
			best, bestPrio = id, prio
		}
	}
	if id := s.rem.lookupWithBound(p, bestPrio); id >= 0 {
		return id
	}
	return best
}

// lookupBatch classifies pkts into out using batched RQ-RMI inference: each
// iSet's model runs stage-by-stage across a whole chunk of packets
// (rqrmi.LookupEntryBatch), then candidates are validated against the flat
// metadata, and finally the remainder is queried per packet under the best
// priority found. Scratch lives in fixed-size stack arrays, so the batch
// path allocates nothing.
func (s *snapshot) lookupBatch(pkts []rules.Packet, out []int) {
	const chunk = rqrmi.BatchChunk
	var keys [chunk]uint32
	var ents [chunk]int32
	var best [chunk]int
	var bestPrio [chunk]int32
	for off := 0; off < len(pkts); off += chunk {
		n := len(pkts) - off
		if n > chunk {
			n = chunk
		}
		block := pkts[off : off+n]
		for c := range block {
			best[c], bestPrio[c] = rules.NoMatch, math.MaxInt32
		}
		for i := range s.isets {
			is := &s.isets[i]
			for c, p := range block {
				keys[c] = p[is.field]
			}
			is.model.LookupEntryBatch(keys[:n], ents[:n])
			vals := is.model.Values()
			for c := range block {
				ei := ents[c]
				if ei < 0 {
					continue
				}
				pos := vals[ei]
				if pos < 0 {
					continue
				}
				m := &s.meta[pos]
				if !m.live || m.prio >= bestPrio[c] {
					continue
				}
				if !s.matches(pos, block[c]) {
					continue
				}
				best[c], bestPrio[c] = m.id, m.prio
			}
		}
		if s.rem.batch != nil {
			// One remainder call per chunk: a single lock acquisition and
			// cache-hot tables serve all n packets.
			s.rem.batch.LookupBatchWithBound(block, bestPrio[:n], out[off:off+n])
			for c := range block {
				if out[off+c] < 0 {
					out[off+c] = best[c]
				}
			}
		} else {
			for c, p := range block {
				if id := s.rem.lookupWithBound(p, bestPrio[c]); id >= 0 {
					out[off+c] = id
				} else {
					out[off+c] = best[c]
				}
			}
		}
	}
}

// --- remainder adapter ----------------------------------------------------

// remainderAdapter binds the external remainder classifier into the
// snapshot with its bound-support resolved once at publish time instead of
// by a per-call type assertion. It also carries a sorted (id, priority)
// table of the current remainder rules, so the priority comparisons of the
// merge paths are binary searches over flat slices instead of map accesses.
type remainderAdapter struct {
	bounded rules.BoundedClassifier      // nil when the classifier lacks bounds
	batch   rules.BatchBoundedClassifier // nil when batched queries are unsupported
	plain   rules.Classifier
	ids     []int   // sorted remainder rule IDs
	prios   []int32 // prios[i] is the priority of ids[i]
}

// newRemainderAdapter resolves the classifier's capabilities once at
// publish time. ids/prios are the engine's current (sorted, immutable)
// remainder table; the write side maintains them copy-on-write so building
// an adapter is O(1).
func newRemainderAdapter(c rules.Classifier, ids []int, prios []int32) remainderAdapter {
	ra := remainderAdapter{plain: c, ids: ids, prios: prios}
	if bc, ok := c.(rules.BoundedClassifier); ok {
		ra.bounded = bc
	}
	if bb, ok := c.(rules.BatchBoundedClassifier); ok {
		ra.batch = bb
	}
	return ra
}

// sortedRemainderTable builds the initial (id, priority) table, sorted by
// ID, from the remainder rule-set.
func sortedRemainderTable(rr *rules.RuleSet) ([]int, []int32) {
	order := make([]int, rr.Len())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return rr.Rules[order[a]].ID < rr.Rules[order[b]].ID
	})
	ids := make([]int, len(order))
	prios := make([]int32, len(order))
	for i, j := range order {
		ids[i] = rr.Rules[j].ID
		prios[i] = rr.Rules[j].Priority
	}
	return ids, prios
}

// prioOf returns the priority of remainder rule id via binary search.
func (ra *remainderAdapter) prioOf(id int) (int32, bool) {
	lo, hi := 0, len(ra.ids)-1
	for lo <= hi {
		mid := int(uint(lo+hi) >> 1)
		switch {
		case ra.ids[mid] < id:
			lo = mid + 1
		case ra.ids[mid] > id:
			hi = mid - 1
		default:
			return ra.prios[mid], true
		}
	}
	return 0, false
}

// lookupWithBound queries the remainder under the caller's best priority,
// returning the winning remainder rule ID or -1 when the remainder cannot
// beat the bound.
func (ra *remainderAdapter) lookupWithBound(p rules.Packet, bestPrio int32) int {
	if ra.bounded != nil {
		return ra.bounded.LookupWithBound(p, bestPrio)
	}
	id := ra.plain.Lookup(p)
	if id < 0 {
		return rules.NoMatch
	}
	if prio, ok := ra.prioOf(id); ok && prio < bestPrio {
		return id
	}
	return rules.NoMatch
}

// lookupUnbounded queries the remainder in full (the §4 ablation and the
// two-core merge), returning the match and its priority.
func (ra *remainderAdapter) lookupUnbounded(p rules.Packet) (id int, prio int32, ok bool) {
	id = ra.plain.Lookup(p)
	if id < 0 {
		return rules.NoMatch, 0, false
	}
	prio, ok = ra.prioOf(id)
	return id, prio, ok
}
