package core

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"nuevomatch/internal/rules"
)

// waitGoroutinesAtMost polls until the goroutine count drops to the target
// (workers exit asynchronously after their job channel closes).
func waitGoroutinesAtMost(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if runtime.NumGoroutine() <= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("still %d goroutines, want <= %d (leaked pooled workers?)", runtime.NumGoroutine(), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCloseLifecycle is the regression test for the Table lifecycle
// contract: double-Close is a no-op, every lookup path stays correct after
// Close, and a post-Close LookupBatchParallel must not re-leak workers into
// the drained pool.
func TestCloseLifecycle(t *testing.T) {
	prev := runtime.GOMAXPROCS(2) // the parallel split engages only at >= 2
	defer runtime.GOMAXPROCS(prev)

	rng := rand.New(rand.NewSource(17))
	rs := structuredRuleSet(rng, 400)
	e, err := Build(rs.Clone(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}

	pkts := make([]rules.Packet, 256)
	for i := range pkts {
		p := make(rules.Packet, rs.NumFields)
		for d := range p {
			p[d] = rng.Uint32()
		}
		pkts[i] = p
	}
	want := make([]int, len(pkts))
	for i, p := range pkts {
		want[i] = rs.MatchID(p)
	}
	out := make([]int, len(pkts))

	// Warm the pool so Close has workers to retire.
	e.LookupBatchParallel(pkts, out)
	baseline := runtime.NumGoroutine()

	e.Close()
	e.Close() // double-Close must be a no-op
	waitGoroutinesAtMost(t, baseline-1)
	quiesced := runtime.NumGoroutine()

	// Lookups after Close: correct on every path, and the transient workers
	// the parallel path spawns must exit on release instead of repopulating
	// the pool of a closed engine.
	for round := 0; round < 5; round++ {
		for i, p := range pkts[:32] {
			if got := e.Lookup(p); got != want[i] {
				t.Fatalf("post-Close Lookup(%v) = %d, want %d", p, got, want[i])
			}
		}
		e.LookupBatch(pkts, out)
		for i := range pkts {
			if out[i] != want[i] {
				t.Fatalf("post-Close LookupBatch[%d] = %d, want %d", i, out[i], want[i])
			}
		}
		e.LookupBatchParallel(pkts, out)
		for i := range pkts {
			if out[i] != want[i] {
				t.Fatalf("post-Close LookupBatchParallel[%d] = %d, want %d", i, out[i], want[i])
			}
		}
	}
	waitGoroutinesAtMost(t, quiesced)
	select {
	case <-e.parPool:
		t.Fatal("closed engine re-pooled a worker")
	default:
	}
	e.Close() // still a no-op after post-Close traffic
}

// TestCloseRacingParallelLookups hammers Close against concurrent parallel
// lookups: no panic, no send-on-closed-channel, and no leaked workers once
// everything settles.
func TestCloseRacingParallelLookups(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)

	rng := rand.New(rand.NewSource(23))
	rs := structuredRuleSet(rng, 200)
	pkts := make([]rules.Packet, 128)
	for i := range pkts {
		p := make(rules.Packet, rs.NumFields)
		for d := range p {
			p[d] = rng.Uint32()
		}
		pkts[i] = p
	}

	base := runtime.NumGoroutine()
	for iter := 0; iter < 20; iter++ {
		e, err := Build(rs.Clone(), fastOpts())
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			out := make([]int, len(pkts))
			for i := 0; i < 10; i++ {
				e.LookupBatchParallel(pkts, out)
			}
		}()
		e.Close()
		<-done
		e.Close()
	}
	// Every worker of all 20 closed engines must be gone (small slack for
	// runtime goroutines that may have started meanwhile).
	waitGoroutinesAtMost(t, base+1)
}
