package core

import (
	"sync"
	"testing"
	"time"

	"nuevomatch/internal/classbench"
	"nuevomatch/internal/faultinject"
)

// TestLoadClusterDirRacingPrune pins the load-vs-prune coherence window:
// a LoadClusterDir stalled mid-load while two concurrent SaveDirs prune its
// generation must NOT stand up quarantined fallback shards (a Degraded
// readiness lie over a perfectly healthy directory) — it must retry against
// the new CURRENT and come up Healthy with correct lookups.
func TestLoadClusterDirRacingPrune(t *testing.T) {
	defer faultinject.Reset()
	prof, err := classbench.ProfileByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	d := driftedCluster(t, prof, 2, 20, 41)
	dir := t.TempDir()
	if err := d.c.SaveDir(dir); err != nil {
		t.Fatal(err) // gen-1: the generation the racing load will start on
	}

	// Stall the loader inside its first shard read until the generation it
	// is reading has been pruned out from under it.
	entered := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	faultinject.Enable(faultinject.PointClusterLoadShard, faultinject.Rule{
		Delay: time.Microsecond,
		OnTrigger: func(faultinject.Point) {
			once.Do(func() {
				close(entered)
				<-gate
			})
		},
	})

	type loadResult struct {
		c   *Cluster
		err error
	}
	resCh := make(chan loadResult, 1)
	go func() {
		c, lerr := LoadClusterDir(dir, nil)
		resCh <- loadResult{c, lerr}
	}()
	<-entered

	// Two more saves: pruning keeps current + predecessor, so gen-1 — the
	// generation the stalled load is reading — is deleted.
	for i := 0; i < 2; i++ {
		for j := 0; j < 5; j++ {
			d.step()
		}
		if err := d.c.SaveDir(dir); err != nil {
			t.Fatalf("racing save %d: %v", i, err)
		}
	}
	if gens, _, err := listGenerations(dir); err != nil || len(gens) != 2 || gens[0] != 2 {
		t.Fatalf("prune did not run as expected: gens %v, err %v", gens, err)
	}
	close(gate)

	res := <-resCh
	if res.err != nil {
		t.Fatalf("LoadClusterDir racing prune = %v, want a clean retried load", res.err)
	}
	defer res.c.Close()
	if h := res.c.Health(); h.State != Healthy {
		t.Fatalf("health after racing load = %v, want Healthy — readiness must not lie", h)
	}
	if q := res.c.QuarantinedShards(); len(q) != 0 {
		t.Fatalf("racing load quarantined shards %v over an intact directory", q)
	}

	// The retried load picked up the latest generation: lookups must agree
	// with the mirror that produced it.
	mm := 0
	for i := 0; i < 300; i++ {
		p := d.packet()
		if res.c.Lookup(p) != d.mirror.MatchID(p) {
			mm++
		}
	}
	if mm != 0 {
		t.Fatalf("%d lookup mismatches against the post-save mirror", mm)
	}
}
