package core

import (
	"math/rand"
	"testing"

	"nuevomatch/internal/classifiers/conformance"
	"nuevomatch/internal/rules"
)

// TestLookupPathsZeroAlloc is the enforcement of the frozen-remainder
// design goal: after warm-up, neither the scalar nor the batched lookup
// path allocates — the whole pipeline (iSet inference, validation, frozen
// remainder, overlay scan) runs on snapshot-owned flat arrays and stack
// scratch. The guard runs once per registered Freezable backend (each
// serving as the engine's remainder), so every backend's frozen lookup
// paths are held to the same zero-alloc contract as TupleMerge's. The
// engine is churned first so the overlay path (additions, deletion skip
// list, and a compaction) is exercised, not just the freshly built state.
// CI runs this without -race as the benchmark smoke's alloc guard.
func TestLookupPathsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are only guaranteed without race instrumentation")
	}
	for _, backend := range FreezableRemainders() {
		t.Run(backend, func(t *testing.T) { lookupPathsZeroAlloc(t, backend) })
	}
}

func lookupPathsZeroAlloc(t *testing.T, backend string) {
	rng := rand.New(rand.NewSource(91))
	rs := structuredRuleSet(rng, 400)
	opts := fastOpts()
	opts.RemainderName = backend
	e, err := Build(rs, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Drift the engine: deletions land on the skip list, insertions in the
	// overlay, and enough of both to trip one compaction.
	for i := 0; i < 30; i++ {
		if err := e.Delete(rs.Rules[i*2].ID); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		f := make([]rules.Range, 5)
		for d := range f {
			lo := rng.Uint32() >> 1
			f[d] = rules.Range{Lo: lo, Hi: lo + rng.Uint32()>>10}
		}
		if err := e.Insert(rules.Rule{ID: 30000 + i, Priority: int32(rng.Intn(500)), Fields: f}); err != nil {
			t.Fatal(err)
		}
	}

	pkts := make([]rules.Packet, 256)
	for i := range pkts {
		pkts[i] = conformance.RandomPacket(rng, rs)
	}

	var i int
	if avg := testing.AllocsPerRun(200, func() {
		e.Lookup(pkts[i%len(pkts)])
		i++
	}); avg != 0 {
		t.Errorf("Lookup allocates %.2f objects per call, want 0", avg)
	}

	out := make([]int, 128)
	var j int
	if avg := testing.AllocsPerRun(100, func() {
		off := (j % 2) * 128 // alternate between both halves of the trace
		e.LookupBatch(pkts[off:off+128], out)
		j++
	}); avg != 0 {
		t.Errorf("LookupBatch allocates %.2f objects per call, want 0", avg)
	}
}
