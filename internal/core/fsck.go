package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nuevomatch/internal/rules"
)

// FsckGeneration is one generation's verification result.
type FsckGeneration struct {
	// Name is the generation directory name (or "." for a legacy flat
	// layout verified in place).
	Name string
	// Intact reports whether the generation loads completely: manifest
	// valid, every shard table passing its CRC and full decode, the rules
	// artifact (when referenced) valid, and the replication invariant
	// holding.
	Intact bool
	// Shards is the manifest's shard count (0 when the manifest itself is
	// unreadable).
	Shards int
	// Problems lists what verification found, empty when Intact.
	Problems []string
}

// FsckReport is the result of FsckClusterDir.
type FsckReport struct {
	// Dir is the cluster directory checked.
	Dir string
	// CurrentBefore is what CURRENT named when fsck started ("" when
	// absent); CurrentAfter what it names when fsck finished. They differ
	// only in repair mode.
	CurrentBefore, CurrentAfter string
	// Generations holds one entry per generation found, oldest first.
	Generations []FsckGeneration
	// Removed lists debris deleted in repair mode: torn staging
	// directories and broken generations.
	Removed []string
	// RepairedCurrent reports that repair rewrote the CURRENT pointer.
	RepairedCurrent bool

	hasDebris bool // torn staging dirs observed (before any repair)
}

// Healthy reports whether the directory needs no repair: CURRENT names an
// intact generation and no debris is present.
func (r *FsckReport) Healthy() bool {
	if r.CurrentBefore == "" {
		// Legacy flat layout: healthy iff the in-place check passed.
		return len(r.Generations) == 1 && r.Generations[0].Name == "." && r.Generations[0].Intact
	}
	for _, g := range r.Generations {
		if g.Name == r.CurrentBefore {
			return g.Intact && len(r.Removed) == 0 && !r.hasDebris
		}
	}
	return false
}

// verifyClusterGen fully verifies one generation directory by loading it
// strictly: every shard through ReadEngine (CRC + full decode), the rules
// artifact when referenced, and the replication invariant. The loaded
// cluster is closed again; fsck only wants the verdict.
func verifyClusterGen(gdir string) FsckGeneration {
	g := FsckGeneration{Name: filepath.Base(gdir)}
	data, err := os.ReadFile(filepath.Join(gdir, ClusterManifestName))
	if err != nil {
		g.Problems = append(g.Problems, fmt.Sprintf("manifest: %v", err))
		return g
	}
	m, err := readClusterManifest(data)
	if err != nil {
		g.Problems = append(g.Problems, fmt.Sprintf("manifest: %v", err))
		return g
	}
	g.Shards = len(m.Shards)
	for s, name := range m.Shards {
		f, err := os.Open(filepath.Join(gdir, name))
		if err != nil {
			g.Problems = append(g.Problems, fmt.Sprintf("shard %d: %v", s, err))
			continue
		}
		eng, err := ReadEngine(f, nil)
		f.Close()
		if err != nil {
			g.Problems = append(g.Problems, fmt.Sprintf("shard %d (%s): %v", s, name, err))
			continue
		}
		eng.Close()
	}
	if m.Rules != "" {
		blob, err := os.ReadFile(filepath.Join(gdir, m.Rules))
		if err != nil {
			g.Problems = append(g.Problems, fmt.Sprintf("rules artifact: %v", err))
		} else if _, _, err := readClusterRules(blob); err != nil {
			g.Problems = append(g.Problems, fmt.Sprintf("rules artifact: %v", err))
		}
	}
	if len(g.Problems) > 0 {
		return g
	}
	// Shape checks passed; now the expensive cross-shard one: a strict
	// in-memory load re-verifies the replication invariant (a swapped or
	// stale shard file passes its own CRC but breaks routing).
	c, err := loadClusterGenStrict(gdir)
	if err != nil {
		g.Problems = append(g.Problems, err.Error())
		return g
	}
	c.Close()
	g.Intact = true
	return g
}

// loadClusterGenStrict loads one generation directory with no quarantine
// fallback: any shard problem is an error. Used by fsck, which must judge
// the generation exactly as saved.
func loadClusterGenStrict(gdir string) (*Cluster, error) {
	data, err := os.ReadFile(filepath.Join(gdir, ClusterManifestName))
	if err != nil {
		return nil, err
	}
	m, err := readClusterManifest(data)
	if err != nil {
		return nil, err
	}
	kind, _ := partitionKindByName(m.Kind)
	c := &Cluster{
		part:     partitioner{kind: kind, field: m.Field, shards: len(m.Shards), cuts: m.Cuts},
		shardsOf: make(map[int]uint64),
		ruleByID: make(map[int]rules.Rule),
	}
	c.engines = make([]*Engine, len(m.Shards))
	closeAll := func() {
		for _, e := range c.engines {
			if e != nil {
				e.Close()
			}
		}
	}
	for s, name := range m.Shards {
		f, err := os.Open(filepath.Join(gdir, name))
		if err != nil {
			closeAll()
			return nil, err
		}
		eng, err := ReadEngine(f, nil)
		f.Close()
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("core: loading shard %d (%s): %w", s, name, err)
		}
		c.engines[s] = eng
	}
	if err := c.rebuildReplicaTable(); err != nil {
		closeAll()
		return nil, err
	}
	c.finish()
	return c, nil
}

// FsckClusterDir verifies a saved cluster directory and, in repair mode,
// restores it to a state LoadClusterDir accepts: CURRENT pointing at the
// newest intact generation (rolling forward to a complete save whose
// CURRENT flip was lost, or back to the last-good generation when the
// newest is torn), with torn staging directories and broken generations
// removed. Verification is thorough — manifest validity, every shard
// table's CRC trailer and full decode, the rules artifact, and the
// cross-shard replication invariant. Legacy flat directories (cluster.json
// at top level, no CURRENT) are verified in place; there is nothing to
// roll back to, so repair never deletes them.
func FsckClusterDir(dir string, repair bool) (*FsckReport, error) {
	r := &FsckReport{Dir: dir}
	if b, err := os.ReadFile(filepath.Join(dir, ClusterCurrentName)); err == nil {
		r.CurrentBefore = strings.TrimSpace(string(b))
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	r.CurrentAfter = r.CurrentBefore

	gens, debris, err := listGenerations(dir)
	if err != nil {
		return nil, err
	}
	r.hasDebris = len(debris) > 0
	if len(gens) == 0 && r.CurrentBefore == "" {
		// Legacy flat layout, or not a cluster directory at all.
		if _, err := os.Stat(filepath.Join(dir, ClusterManifestName)); err != nil {
			return nil, fmt.Errorf("core: %s holds no generations and no %s manifest", dir, ClusterManifestName)
		}
		g := verifyClusterGen(dir)
		g.Name = "."
		r.Generations = append(r.Generations, g)
		return r, nil
	}

	intactByName := make(map[string]bool, len(gens))
	for _, n := range gens {
		g := verifyClusterGen(filepath.Join(dir, genDirName(n)))
		r.Generations = append(r.Generations, g)
		intactByName[g.Name] = g.Intact
	}
	// The newest intact generation is the repair target: a save whose
	// generation landed completely is authoritative even if the CURRENT
	// flip was lost (roll forward); a torn newest generation falls back to
	// the one CURRENT still names (roll back).
	best := ""
	for i := len(r.Generations) - 1; i >= 0; i-- {
		if r.Generations[i].Intact {
			best = r.Generations[i].Name
			break
		}
	}
	if !repair {
		return r, nil
	}
	if best == "" {
		return r, fmt.Errorf("core: %s has no intact generation to repair onto", dir)
	}
	if r.CurrentBefore != best {
		err := writeFileAtomic(filepath.Join(dir, ClusterCurrentName), func(f *os.File) error {
			_, werr := f.WriteString(best + "\n")
			return werr
		})
		if err != nil {
			return r, fmt.Errorf("core: repairing %s: %w", ClusterCurrentName, err)
		}
		if err := syncDir(dir); err != nil {
			return r, err
		}
		r.RepairedCurrent = true
		r.CurrentAfter = best
	}
	// Sweep debris: staging directories and generations that failed
	// verification. Intact generations older than best are kept only as
	// the immediate rollback predecessor, matching SaveDir's pruning.
	for _, name := range debris {
		if err := os.RemoveAll(filepath.Join(dir, name)); err == nil {
			r.Removed = append(r.Removed, name)
		}
	}
	keptPrev := false
	for i := len(r.Generations) - 1; i >= 0; i-- {
		g := r.Generations[i]
		if g.Name == best {
			continue
		}
		keep := g.Intact && g.Name < best && !keptPrev
		if keep {
			keptPrev = true
			continue
		}
		if err := os.RemoveAll(filepath.Join(dir, g.Name)); err == nil {
			r.Removed = append(r.Removed, g.Name)
		}
	}
	return r, nil
}
