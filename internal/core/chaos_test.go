package core

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"nuevomatch/internal/classbench"
	"nuevomatch/internal/faultinject"
	"nuevomatch/internal/rules"
)

// waitHealthy polls the cluster until every quarantine clears or the
// deadline passes.
func waitHealthy(t *testing.T, c *Cluster) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if h := c.Health(); h.State == Healthy {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("cluster never returned to Healthy: %v", c.Health())
}

// chaosPolicy keeps quarantine rebuild pacing fast enough for tests.
func chaosPolicy() QuarantinePolicy {
	return QuarantinePolicy{FailureThreshold: 3, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 50 * time.Millisecond}
}

// TestClusterChaosFailStatic is the chaos harness: across ClassBench
// profiles, a randomized fault schedule (failing retrains, failing and
// torn saves, shard-load faults, injected shard latency) runs under a
// churn workload in which EVERY lookup is verified against the linear
// mirror. The fail-static invariant must hold throughout — answers are
// never wrong, only possibly stale — the cluster may reach Degraded but
// never Failed, and once the faults lift it must return to Healthy and
// serve a clean save/load round trip.
func TestClusterChaosFailStatic(t *testing.T) {
	profiles := []string{"acl1", "fw3", "ipc1"}
	ops := 1500
	if testing.Short() {
		ops = 400
	}
	for pi, name := range profiles {
		t.Run(name, func(t *testing.T) {
			defer faultinject.Reset()
			prof, err := classbench.ProfileByName(name)
			if err != nil {
				t.Fatal(err)
			}
			d := newClusterDriver(t, prof, 150, ops, clusterTestOpts(3, PartitionRange), 100+int64(pi))
			defer d.c.Close()
			d.c.SetQuarantinePolicy(chaosPolicy())
			dir := t.TempDir()
			if err := d.c.SaveDir(dir); err != nil {
				t.Fatal(err)
			}

			// The randomized schedule: every fault deterministic per profile.
			seed := int64(7_000 + pi)
			faultinject.Enable(faultinject.PointRetrainBuild, faultinject.Rule{Probability: 0.5, Seed: seed})
			faultinject.Enable(faultinject.PointClusterSaveShard, faultinject.Rule{Probability: 0.3, Seed: seed + 1})
			faultinject.Enable(faultinject.PointClusterSaveCurrent, faultinject.Rule{Probability: 0.2, Seed: seed + 2})
			faultinject.Enable(faultinject.PointClusterShardSlow, faultinject.Rule{Probability: 0.02, Seed: seed + 3, Delay: 200 * time.Microsecond})

			rng := rand.New(rand.NewSource(seed))
			saves, saveFails, retrains, retrainFails := 0, 0, 0, 0
			for i := 0; i < ops; i++ {
				d.step() // every lookup inside verifies against the mirror
				if i%40 == 20 {
					retrains++
					if _, err := d.c.RetrainShard(rng.Intn(d.c.NumShards())); err != nil && !errors.Is(err, ErrRetrainInProgress) {
						retrainFails++
					}
				}
				if i%100 == 50 {
					saves++
					if err := d.c.SaveDir(dir); err != nil {
						saveFails++
					}
				}
				if i%50 == 0 {
					if h := d.c.Health(); h.State == Failed {
						t.Fatalf("op %d: cluster reached Failed under faults: %v", i, h)
					}
				}
			}
			d.verifySweep(300)
			if retrainFails == 0 && saveFails == 0 {
				t.Fatalf("chaos schedule injected nothing (%d retrains, %d saves) — dead harness", retrains, saves)
			}
			t.Logf("%s: %d ops, %d/%d retrains failed, %d/%d saves failed, health %v",
				name, ops, retrainFails, retrains, saveFails, saves, d.c.Health())

			// Faults lift: the cluster must heal and serve a clean round trip.
			// Sub-threshold failure streaks clear on the next successful
			// retrain (in production the autopilot's), so drive one per shard.
			faultinject.Reset()
			for s := 0; s < d.c.NumShards(); s++ {
				for {
					if _, err := d.c.RetrainShard(s); err == nil || !errors.Is(err, ErrRetrainInProgress) {
						break
					}
					time.Sleep(2 * time.Millisecond)
				}
			}
			waitHealthy(t, d.c)
			if err := d.c.SaveDir(dir); err != nil {
				t.Fatalf("post-chaos save: %v", err)
			}
			if _, err := FsckClusterDir(dir, true); err != nil {
				t.Fatalf("post-chaos fsck: %v", err)
			}
			pkts := make([]rules.Packet, 300)
			for i := range pkts {
				pkts[i] = d.packet()
			}
			if mm := snapshotMismatches(t, dir, d.mirror, pkts); mm != 0 {
				t.Fatalf("post-chaos reload: %d mismatches", mm)
			}
		})
	}
}

// TestClusterQuarantineLifecycle drives the full deterministic cycle on
// one shard: consecutive retrain failures cross the threshold, the shard
// quarantines (Degraded, correct answers throughout), the background
// rebuilder retries through more failures, and the first successful
// rebuild returns the cluster to Healthy.
func TestClusterQuarantineLifecycle(t *testing.T) {
	defer faultinject.Reset()
	prof, err := classbench.ProfileByName("fw2")
	if err != nil {
		t.Fatal(err)
	}
	d := newClusterDriver(t, prof, 150, 100, clusterTestOpts(3, PartitionRange), 31)
	defer d.c.Close()
	d.c.SetQuarantinePolicy(QuarantinePolicy{FailureThreshold: 2, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 20 * time.Millisecond})
	for d.inserts+d.deletes < 30 {
		d.step()
	}

	// 2 foreground failures trip quarantine; the rebuilder eats 2 more
	// before its third attempt succeeds.
	faultinject.Enable(faultinject.PointRetrainBuild, faultinject.Rule{FailCount: 4})
	for i := 0; i < 2; i++ {
		if _, err := d.c.RetrainShard(1); err == nil {
			t.Fatalf("retrain %d survived an armed build fault", i)
		}
	}
	if got := d.c.QuarantinedShards(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("quarantined = %v, want [1]", got)
	}
	h := d.c.Health()
	if h.State != Degraded {
		t.Fatalf("health = %v, want Degraded", h)
	}
	// Fail-static while quarantined: the shard serves its last snapshot.
	for i := 0; i < 200; i++ {
		p := d.packet()
		if got, want := d.c.Lookup(p), d.mirror.MatchID(p); got != want {
			t.Fatalf("quarantined Lookup(%v) = %d, want %d", p, got, want)
		}
	}
	waitHealthy(t, d.c)
	if got := d.c.QuarantinedShards(); len(got) != 0 {
		t.Fatalf("still quarantined after heal: %v", got)
	}
	d.verifySweep(200)
}

// TestClusterQuarantineNotes covers the tracker's edges: successes reset
// the consecutive count, ErrRetrainInProgress is not a failure, a negative
// threshold disables retrain-failure quarantine, and Health attributes
// sub-threshold failures without quarantining.
func TestClusterQuarantineNotes(t *testing.T) {
	prof, err := classbench.ProfileByName("acl3")
	if err != nil {
		t.Fatal(err)
	}
	d := newClusterDriver(t, prof, 100, 20, clusterTestOpts(2, PartitionRange), 37)
	defer d.c.Close()
	boom := errors.New("boom")

	// Sub-threshold failures: Degraded with retrain-failing, no quarantine.
	d.c.NoteRetrainFailure(0, boom)
	d.c.NoteRetrainFailure(0, boom)
	h := d.c.Health()
	if h.State != Degraded || len(h.Reasons) != 1 || h.Reasons[0].Code != "retrain-failing" || h.Reasons[0].Shard != 0 {
		t.Fatalf("sub-threshold health = %+v", h)
	}
	if len(d.c.QuarantinedShards()) != 0 {
		t.Fatalf("quarantined below threshold")
	}
	// A success resets the streak.
	d.c.NoteRetrainSuccess(0)
	if h := d.c.Health(); h.State != Healthy {
		t.Fatalf("health after success = %v, want Healthy", h)
	}
	// Non-failures are ignored.
	d.c.NoteRetrainFailure(0, nil)
	d.c.NoteRetrainFailure(0, ErrRetrainInProgress)
	d.c.NoteRetrainFailure(-1, boom)
	d.c.NoteRetrainFailure(99, boom)
	if h := d.c.Health(); h.State != Healthy {
		t.Fatalf("health after ignorable notes = %v", h)
	}
	// Negative threshold disables retrain-failure quarantine entirely.
	d.c.SetQuarantinePolicy(QuarantinePolicy{FailureThreshold: -1})
	for i := 0; i < 10; i++ {
		d.c.NoteRetrainFailure(1, boom)
	}
	if len(d.c.QuarantinedShards()) != 0 {
		t.Fatalf("disabled threshold still quarantined")
	}
}

// TestEngineHealth maps autopilot stats to engine health states.
func TestEngineHealth(t *testing.T) {
	if h := EngineHealth(AutopilotStats{}); h.State != Healthy || len(h.Reasons) != 0 {
		t.Fatalf("zero stats: %+v", h)
	}
	h := EngineHealth(AutopilotStats{ConsecFailures: 2, LastError: "x"})
	if h.State != Degraded || h.Reasons[0].Code != "retrain-failing" {
		t.Fatalf("retrain failures: %+v", h)
	}
	h = EngineHealth(AutopilotStats{ConsecPersistFailures: 1, LastPersistError: "y"})
	if h.State != Degraded || h.Reasons[0].Code != "persist-failing" {
		t.Fatalf("persist failures: %+v", h)
	}
	h = EngineHealth(AutopilotStats{ConsecFailures: 1, ConsecPersistFailures: 1})
	if h.State != Degraded || len(h.Reasons) != 2 {
		t.Fatalf("both: %+v", h)
	}
}

// TestHealthStrings pins the wire-visible names.
func TestHealthStrings(t *testing.T) {
	if Healthy.String() != "healthy" || Degraded.String() != "degraded" || Failed.String() != "failed" {
		t.Fatalf("state names changed: %v %v %v", Healthy, Degraded, Failed)
	}
	h := Health{State: Degraded, Reasons: []HealthReason{
		{Shard: 1, Code: "shard-quarantined", Detail: "d"},
		{Shard: -1, Code: "persist-failing", Detail: "p"},
	}}
	want := "degraded; shard 1 shard-quarantined: d; persist-failing: p"
	if got := h.String(); got != want {
		t.Fatalf("Health.String() = %q, want %q", got, want)
	}
}

// fuzzFaultPoints is the schedule surface FuzzFaultSchedule draws from.
var fuzzFaultPoints = []faultinject.Point{
	faultinject.PointClusterSaveShard,
	faultinject.PointClusterSaveRules,
	faultinject.PointClusterSaveManifest,
	faultinject.PointClusterSaveSync,
	faultinject.PointClusterSaveRename,
	faultinject.PointClusterSaveCurrent,
	faultinject.PointClusterLoadShard,
	faultinject.PointRetrainBuild,
	faultinject.PointRetrainReplay,
	faultinject.PointCodecWrite,
	faultinject.PointCodecRead,
}

// FuzzFaultSchedule fuzzes the fault schedule itself: an arbitrary
// (point, skip, count, probability) schedule is armed over a full
// save → kill → load → fsck → serve cycle on a small cluster. Whatever the
// schedule, the invariants must hold: no panic, loads either fail cleanly
// or serve zero wrong answers, health never reads Failed on a live
// cluster, and a repaired directory always loads.
func FuzzFaultSchedule(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0), uint8(1), uint8(0))
	f.Add(int64(2), uint8(3), uint8(1), uint8(2), uint8(128))
	f.Add(int64(3), uint8(6), uint8(0), uint8(3), uint8(255))
	f.Add(int64(4), uint8(7), uint8(2), uint8(1), uint8(64))
	f.Add(int64(5), uint8(9), uint8(0), uint8(255), uint8(32))
	f.Add(int64(6), uint8(5), uint8(4), uint8(1), uint8(0))

	prof, err := classbench.ProfileByName("acl1")
	if err != nil {
		f.Fatal(err)
	}
	base := classbench.Generate(prof, 60)
	for i := range base.Rules {
		base.Rules[i].Priority = int32(i + 1)
	}
	// Remainder-only engines: no training cost per fuzz iteration, and
	// retrains still exercise the full journal/replay/swap machinery.
	opts := fastOpts()
	opts.MaxISets = -1

	f.Fuzz(func(t *testing.T, seed int64, pointSel, skip, count, prob uint8) {
		defer faultinject.Reset()
		point := fuzzFaultPoints[int(pointSel)%len(fuzzFaultPoints)]
		rule := faultinject.Rule{
			SkipFirst: int(skip % 8),
			FailCount: int(count % 8),
			Seed:      seed,
		}
		if prob > 0 {
			rule.Probability = float64(prob) / 255
		}

		c, err := BuildCluster(base.Clone(), ClusterOptions{
			Shards: 2, PartitionField: AutoPartitionField, Kind: PartitionRange, Engine: opts,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.SetQuarantinePolicy(chaosPolicy())
		dir := t.TempDir()
		if err := c.SaveDir(dir); err != nil {
			t.Fatal(err) // no faults armed yet
		}

		faultinject.Enable(point, rule)
		c.SaveDir(dir)    // may tear; crash semantics on purpose
		c.RetrainShard(0) // may fail or quarantine
		c.RetrainShard(1) // may fail or quarantine
		if lc, err := LoadClusterDir(dir, nil); err == nil {
			for i := 0; i < 50; i++ {
				p := make(rules.Packet, base.NumFields)
				for j := range p {
					p[j] = rand.New(rand.NewSource(seed + int64(i*7+j))).Uint32()
				}
				if got, want := lc.Lookup(p), base.MatchID(p); got != want {
					t.Fatalf("fault %s: loaded cluster Lookup = %d, want %d", point, got, want)
				}
			}
			if lc.Health().State == Failed {
				t.Fatalf("fault %s: live loaded cluster reports Failed", point)
			}
			lc.Close()
		}
		faultinject.Reset()

		if h := c.Health(); h.State == Failed {
			t.Fatalf("fault %s: live cluster reports Failed", point)
		}
		if _, err := FsckClusterDir(dir, true); err != nil {
			t.Fatalf("fault %s: fsck repair: %v", point, err)
		}
		lc, err := LoadClusterDir(dir, nil)
		if err != nil {
			t.Fatalf("fault %s: repaired directory did not load: %v", point, err)
		}
		lc.Close()
	})
}
