package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
	"sync"
	"time"

	"nuevomatch/internal/classifiers/rvh"
	"nuevomatch/internal/classifiers/tuplemerge"
	"nuevomatch/internal/faultinject"
	"nuevomatch/internal/rqrmi"
	"nuevomatch/internal/rules"
)

// Binary engine serialization. Training is the expensive half of NuevoMatch
// — the paper accepts minutes of RQ-RMI training because lookups amortize it
// (§3.9) — so a production deployment builds a table offline, ships the
// artifact, and loads it at startup in milliseconds. The codec captures the
// engine's complete logical state: build options, the built rule-set with
// per-position liveness, every trained RQ-RMI model (rqrmi.WriteTo), and the
// current remainder rules (including online inserts and minus deletes). The
// remainder classifier itself is NOT serialized: it is rebuilt
// deterministically from the remainder rules on load — external-classifier
// construction is cheap; only model training is not — and then re-frozen
// into a fresh snapshot, so the loaded engine is lookup-identical to the
// saved one and zero-lock from the first packet, with zero retraining.
//
// Format (little-endian), version 1:
//
//	magic "NMTBL\x01" | version u32 |
//	options: maxISets i32, minCoverage f64, nISetFields u16 + i32...,
//	         remainder name (u16 len + bytes),
//	         rqrmi config: nWidths u16 + u32..., hidden/targetError/
//	         maxRetrain/minSamples/maxSamples/internalEpochs/leafEpochs i32,
//	         lr f64, seed i64, safetySlack i32 |
//	built rules: numFields u16, nRules u32,
//	             per rule: id i64, prio i32, (lo u32, hi u32) × numFields |
//	live bitmap: ceil(nRules/8) bytes (bit pos%8 of byte pos/8) |
//	iSets: count u16, per iSet: field u16, model blob (u32 len + rqrmi bytes) |
//	remainder rules: nRules u32, per rule as above (numFields implied) |
//	update stats: inserted/deletedISets/deletedRemainder/compactions i64 |
//	build stats: coverage f64, remainderSize i64, maxSearchDistance i32,
//	             trainingTime i64 (ns)
//
// Load-time validation is strict: every structural invariant a lookup relies
// on (sorted model entries, in-bounds positions, disjoint partitions, unique
// IDs, valid ranges) is checked, so arbitrary bytes produce an error, never
// a panic (FuzzReadTable).

var tableMagic = [6]byte{'N', 'M', 'T', 'B', 'L', 1}

// tableFormatVersion is bumped on any incompatible codec change; readers
// reject versions they do not know.
const tableFormatVersion = 1

// The codec appends a fixed-size integrity trailer after the version-1
// payload: 4 magic bytes followed by the little-endian CRC32-C checksum of
// every preceding byte. The trailer is v1-compatible in both directions —
// pre-trailer readers never look past the fields they decode, and ReadEngine
// accepts trailer-less artifacts written before the trailer existed — but
// when the trailer is present the checksum MUST verify, and it is checked
// before any payload decoding, so a torn or bit-flipped write is rejected
// up front instead of surfacing as a confusing model-decode error (or, worse,
// loading into a silently wrong table).
var tableTrailerMagic = [4]byte{'N', 'M', 'K', '1'}

// tableTrailerLen is the trailer's size: magic plus CRC32-C.
const tableTrailerLen = 8

// castagnoli is the CRC32-C polynomial table shared by writer and reader
// (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Plausibility caps enforced while reading, sized far above anything the
// engine produces so they only reject corrupt or adversarial input.
const (
	maxCodecFields    = 64      // engines here are 5-field; long fields split into 32-bit chunks
	maxCodecISets     = 256     // Options.MaxISets is single-digit in practice
	maxCodecNameLen   = 256     // remainder classifier name
	maxCodecWidths    = 64      // RQ-RMI stage count
	maxCodecModelBlob = 1 << 28 // one serialized model (8 MB at 500k entries)
)

// --- remainder builder registry -------------------------------------------

var (
	remainderRegMu    sync.RWMutex
	remainderByName   = map[string]rules.Builder{}
	freezableRemNames = map[string]bool{}
)

// RegisterRemainder makes a remainder builder loadable by name: Engine.WriteTo
// records the remainder classifier's Name(), and ReadEngine resolves it back
// to a builder through this registry to reconstruct the classifier from the
// serialized remainder rules. The core package registers "tuplemerge" and
// "rvh" (the production Freezable backends); the public nuevomatch package
// registers the other bundled classifiers. Registering an existing name
// replaces it.
func RegisterRemainder(name string, b rules.Builder) {
	remainderRegMu.Lock()
	defer remainderRegMu.Unlock()
	remainderByName[name] = b
	delete(freezableRemNames, name)
}

// RegisterFreezableRemainder registers b like RegisterRemainder and
// additionally marks it as a production Freezable backend: its classifiers
// compile into lock-free frozen forms, so the name is a candidate for the
// "auto" remainder selection and a subject of the backend-parameterized
// proof suites. The builder's product must implement rules.Freezable.
func RegisterFreezableRemainder(name string, b rules.Builder) {
	remainderRegMu.Lock()
	defer remainderRegMu.Unlock()
	remainderByName[name] = b
	freezableRemNames[name] = true
}

// FreezableRemainders returns the sorted names of the registered Freezable
// backends — the auto-select candidate set.
func FreezableRemainders() []string {
	remainderRegMu.RLock()
	defer remainderRegMu.RUnlock()
	names := make([]string, 0, len(freezableRemNames))
	for name := range freezableRemNames {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// RemainderBuilderFor returns the registered builder for name. Load paths
// use it to resolve an explicitly requested backend up front instead of
// failing inside the engine build.
func RemainderBuilderFor(name string) (rules.Builder, bool) {
	return remainderBuilder(name)
}

func remainderBuilder(name string) (rules.Builder, bool) {
	remainderRegMu.RLock()
	defer remainderRegMu.RUnlock()
	b, ok := remainderByName[name]
	return b, ok
}

func init() {
	RegisterFreezableRemainder("tuplemerge", tuplemerge.Build)
	RegisterFreezableRemainder("rvh", rvh.Build)
}

// --- writing ---------------------------------------------------------------

// WriteTo serializes the engine's complete logical state — options, built
// rules with liveness, trained models, iSet membership, and the current
// remainder rules — so ReadEngine can reconstruct a lookup-identical engine
// without retraining. It implements io.WriterTo. The image is captured into
// memory under the write lock (one consistent state) and copied to w after
// unlocking, so a slow destination never stalls updates; lookups are
// unaffected either way (they never take the lock).
func (e *Engine) WriteTo(w io.Writer) (int64, error) {
	if err := faultinject.Hit(faultinject.PointCodecWrite); err != nil {
		return 0, err
	}
	var buf bytes.Buffer
	if err := e.serializeTo(&buf); err != nil {
		return 0, err
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// serializeTo captures one consistent engine image under the write lock.
// It writes only to the in-memory buffer — the lock is never held across
// real I/O (WriteTo copies the image out after unlocking).
func (e *Engine) serializeTo(buf *bytes.Buffer) error {
	e.mu.Lock()
	defer e.mu.Unlock()

	cw := &countWriter{w: buf}
	put := func(v any) error { return binary.Write(cw, binary.LittleEndian, v) }

	if err := put(tableMagic); err != nil {
		return err
	}
	if err := put(uint32(tableFormatVersion)); err != nil {
		return err
	}

	// Options. The remainder builder is a function and cannot be encoded;
	// its classifier name is recorded for the registry lookup on load.
	if err := put(int32(e.opts.MaxISets)); err != nil {
		return err
	}
	if err := put(e.opts.MinCoverage); err != nil {
		return err
	}
	if err := putIntSlice(put, e.opts.ISetFields); err != nil {
		return err
	}
	if err := putString(put, e.remainder.Name()); err != nil {
		return err
	}
	cfg := e.opts.RQRMI
	if len(cfg.StageWidths) > maxCodecWidths {
		return fmt.Errorf("core: %d RQ-RMI stage widths exceed codec cap %d", len(cfg.StageWidths), maxCodecWidths)
	}
	if err := put(uint16(len(cfg.StageWidths))); err != nil {
		return err
	}
	for _, wd := range cfg.StageWidths {
		if err := put(uint32(wd)); err != nil {
			return err
		}
	}
	for _, v := range []int{cfg.Hidden, cfg.TargetError, cfg.MaxRetrain, cfg.MinSamples,
		cfg.MaxSamples, cfg.InternalEpochs, cfg.LeafEpochs} {
		if err := put(int32(v)); err != nil {
			return err
		}
	}
	if err := put(cfg.LR); err != nil {
		return err
	}
	if err := put(cfg.Seed); err != nil {
		return err
	}
	if err := put(int32(cfg.SafetySlack)); err != nil {
		return err
	}

	// Built rule-set and per-position liveness.
	if e.rs.NumFields > maxCodecFields {
		return fmt.Errorf("core: %d fields exceed codec cap %d", e.rs.NumFields, maxCodecFields)
	}
	if err := put(uint16(e.rs.NumFields)); err != nil {
		return err
	}
	if err := putRules(put, e.rs.Rules); err != nil {
		return err
	}
	bitmap := make([]byte, (len(e.meta)+7)/8)
	for pos := range e.meta {
		if e.meta[pos].live {
			bitmap[pos/8] |= 1 << (pos % 8)
		}
	}
	if err := put(bitmap); err != nil {
		return err
	}

	// Trained iSets. Each model is framed as a length-prefixed blob so the
	// reader can hand rqrmi.ReadModel an exact byte range (its internal
	// buffering must not consume bytes of the enclosing stream).
	if len(e.isets) > maxCodecISets {
		return fmt.Errorf("core: %d iSets exceed codec cap %d", len(e.isets), maxCodecISets)
	}
	if err := put(uint16(len(e.isets))); err != nil {
		return err
	}
	var blob bytes.Buffer
	for i := range e.isets {
		if err := put(uint16(e.isets[i].field)); err != nil {
			return err
		}
		blob.Reset()
		if _, err := e.isets[i].model.WriteTo(&blob); err != nil {
			return fmt.Errorf("core: serializing iSet %d model: %w", i, err)
		}
		if err := put(uint32(blob.Len())); err != nil {
			return err
		}
		if err := put(blob.Bytes()); err != nil {
			return err
		}
	}

	// Current remainder rules: the build-time remainder partition plus every
	// online insert, minus online deletes — the authoritative copies of
	// modified rules (§3.9).
	if err := putRules(put, e.remainderRules.Rules); err != nil {
		return err
	}

	// Drift counters survive the round trip so a loaded table retrains on
	// the same schedule the saved one would have.
	for _, v := range []int{e.ustats.Inserted, e.ustats.DeletedFromISets,
		e.ustats.DeletedFromRemainder, e.ustats.OverlayCompactions} {
		if err := put(int64(v)); err != nil {
			return err
		}
	}
	if err := put(e.stats.Coverage); err != nil {
		return err
	}
	if err := put(int64(e.stats.RemainderSize)); err != nil {
		return err
	}
	if err := put(int32(e.stats.MaxSearchDistance)); err != nil {
		return err
	}
	if err := put(int64(e.stats.TrainingTime)); err != nil {
		return err
	}
	var trailer [tableTrailerLen]byte
	copy(trailer[:4], tableTrailerMagic[:])
	binary.LittleEndian.PutUint32(trailer[4:], cw.crc)
	if err := put(trailer); err != nil {
		return err
	}
	return nil
}

func putString(put func(any) error, s string) error {
	if len(s) > maxCodecNameLen {
		return fmt.Errorf("core: name %q exceeds codec cap %d", s[:16]+"...", maxCodecNameLen)
	}
	if err := put(uint16(len(s))); err != nil {
		return err
	}
	return put([]byte(s))
}

func putIntSlice(put func(any) error, xs []int) error {
	if len(xs) > maxCodecFields {
		return fmt.Errorf("core: %d iSet fields exceed codec cap %d", len(xs), maxCodecFields)
	}
	if err := put(uint16(len(xs))); err != nil {
		return err
	}
	for _, x := range xs {
		if err := put(int32(x)); err != nil {
			return err
		}
	}
	return nil
}

func putRules(put func(any) error, rs []rules.Rule) error {
	if err := put(uint32(len(rs))); err != nil {
		return err
	}
	for i := range rs {
		r := &rs[i]
		if err := put(int64(r.ID)); err != nil {
			return err
		}
		if err := put(r.Priority); err != nil {
			return err
		}
		for _, f := range r.Fields {
			if err := put(f.Lo); err != nil {
				return err
			}
			if err := put(f.Hi); err != nil {
				return err
			}
		}
	}
	return nil
}

// countWriter mirrors the rqrmi serializer's byte accounting and maintains
// the running CRC32-C of everything written, so WriteTo can emit the
// integrity trailer without buffering the payload.
type countWriter struct {
	w   io.Writer
	n   int64
	crc uint32
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	return n, err
}

// --- reading ---------------------------------------------------------------

// ReadEngine reconstructs an engine serialized by WriteTo. No training runs:
// the models deserialize, the remainder classifier is rebuilt from the
// serialized remainder rules (remainder resolves the builder: pass nil to
// use the registry entry for the recorded classifier name, or a non-nil
// builder to override it), the remainder is re-frozen, and one snapshot is
// published — so the loaded engine answers lookups identically to the saved
// one, zero-lock from the first packet. Malformed input returns an error;
// it never panics.
//
// When the artifact carries the CRC32-C integrity trailer (everything
// written since the trailer was introduced does), the checksum is verified
// before any payload decoding, so torn writes are caught up front.
// Trailer-less version-1 artifacts are still accepted.
func ReadEngine(r io.Reader, remainder rules.Builder) (*Engine, error) {
	if err := faultinject.Hit(faultinject.PointCodecRead); err != nil {
		return nil, err
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("core: reading table: %w", err)
	}
	if n := len(data); n >= tableTrailerLen && [4]byte(data[n-tableTrailerLen:n-4]) == tableTrailerMagic {
		want := binary.LittleEndian.Uint32(data[n-4:])
		payload := data[:n-tableTrailerLen]
		if got := crc32.Checksum(payload, castagnoli); got != want {
			return nil, fmt.Errorf("core: table checksum mismatch (stored %08x, computed %08x) — torn or corrupted write", want, got)
		}
		data = payload
	}
	return readEngineBody(data, remainder)
}

// readEngineBody decodes one version-1 payload (integrity trailer already
// stripped and verified by ReadEngine, when present).
func readEngineBody(data []byte, remainder rules.Builder) (*Engine, error) {
	br := bufio.NewReader(bytes.NewReader(data))
	get := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }

	var got [6]byte
	if err := get(&got); err != nil {
		return nil, fmt.Errorf("core: reading table magic: %w", err)
	}
	if got != tableMagic {
		return nil, fmt.Errorf("core: bad table magic %q", got[:])
	}
	var version uint32
	if err := get(&version); err != nil {
		return nil, err
	}
	if version != tableFormatVersion {
		return nil, fmt.Errorf("core: unsupported table format version %d (have %d)", version, tableFormatVersion)
	}

	var opts Options
	var maxISets int32
	if err := get(&maxISets); err != nil {
		return nil, err
	}
	opts.MaxISets = int(maxISets)
	if err := get(&opts.MinCoverage); err != nil {
		return nil, err
	}
	if math.IsNaN(opts.MinCoverage) {
		return nil, fmt.Errorf("core: NaN MinCoverage")
	}
	isetFields, err := getIntSlice(get, maxCodecFields)
	if err != nil {
		return nil, err
	}
	opts.ISetFields = isetFields
	remName, err := getString(br)
	if err != nil {
		return nil, err
	}
	cfg, err := readRQRMIConfig(get)
	if err != nil {
		return nil, err
	}
	opts.RQRMI = cfg

	if remainder == nil {
		b, ok := remainderBuilder(remName)
		if !ok {
			return nil, fmt.Errorf("core: unknown remainder classifier %q (register it with RegisterRemainder or pass a builder override)", remName)
		}
		remainder = b
	}
	opts.Remainder = remainder

	var numFields uint16
	if err := get(&numFields); err != nil {
		return nil, err
	}
	if numFields == 0 || numFields > maxCodecFields {
		return nil, fmt.Errorf("core: implausible field count %d", numFields)
	}
	builtRules, err := getRules(br, int(numFields))
	if err != nil {
		return nil, fmt.Errorf("core: reading built rules: %w", err)
	}
	rs := &rules.RuleSet{NumFields: int(numFields), Rules: builtRules}
	if err := rs.Validate(); err != nil {
		return nil, fmt.Errorf("core: built rules invalid: %w", err)
	}

	bitmap := make([]byte, (len(builtRules)+7)/8)
	if _, err := io.ReadFull(br, bitmap); err != nil {
		return nil, fmt.Errorf("core: reading live bitmap: %w", err)
	}

	var nISets uint16
	if err := get(&nISets); err != nil {
		return nil, err
	}
	if int(nISets) > maxCodecISets {
		return nil, fmt.Errorf("core: implausible iSet count %d", nISets)
	}
	isets := make([]isetIndex, 0, nISets)
	for i := 0; i < int(nISets); i++ {
		var field uint16
		if err := get(&field); err != nil {
			return nil, err
		}
		if int(field) >= int(numFields) {
			return nil, fmt.Errorf("core: iSet %d field %d out of range (engine has %d)", i, field, numFields)
		}
		var blobLen uint32
		if err := get(&blobLen); err != nil {
			return nil, err
		}
		if blobLen > maxCodecModelBlob {
			return nil, fmt.Errorf("core: iSet %d model blob of %d bytes exceeds cap", i, blobLen)
		}
		// CopyN grows the buffer as bytes actually arrive, so a huge claimed
		// length with a short stream fails at EOF without the allocation.
		var blob bytes.Buffer
		if _, err := io.CopyN(&blob, br, int64(blobLen)); err != nil {
			return nil, fmt.Errorf("core: reading iSet %d model: %w", i, err)
		}
		model, err := rqrmi.ReadModel(&blob)
		if err != nil {
			return nil, fmt.Errorf("core: iSet %d model: %w", i, err)
		}
		isets = append(isets, isetIndex{field: int(field), model: model})
	}

	remRules, err := getRules(br, int(numFields))
	if err != nil {
		return nil, fmt.Errorf("core: reading remainder rules: %w", err)
	}
	remainderRules := &rules.RuleSet{NumFields: int(numFields), Rules: remRules}
	if err := remainderRules.Validate(); err != nil {
		return nil, fmt.Errorf("core: remainder rules invalid: %w", err)
	}

	var ustats UpdateStats
	for _, dst := range []*int{&ustats.Inserted, &ustats.DeletedFromISets,
		&ustats.DeletedFromRemainder, &ustats.OverlayCompactions} {
		var v int64
		if err := get(&v); err != nil {
			return nil, err
		}
		if v < 0 || v > math.MaxInt32 {
			return nil, fmt.Errorf("core: implausible drift counter %d", v)
		}
		*dst = int(v)
	}
	var stats BuildStats
	if err := get(&stats.Coverage); err != nil {
		return nil, err
	}
	if math.IsNaN(stats.Coverage) || stats.Coverage < 0 || stats.Coverage > 1 {
		return nil, fmt.Errorf("core: implausible coverage %v", stats.Coverage)
	}
	var remSize int64
	if err := get(&remSize); err != nil {
		return nil, err
	}
	if remSize < 0 || remSize > int64(len(builtRules)) {
		return nil, fmt.Errorf("core: implausible remainder size %d", remSize)
	}
	stats.RemainderSize = int(remSize)
	var msd int32
	if err := get(&msd); err != nil {
		return nil, err
	}
	if msd < 0 {
		return nil, fmt.Errorf("core: negative max search distance %d", msd)
	}
	stats.MaxSearchDistance = int(msd)
	var tt int64
	if err := get(&tt); err != nil {
		return nil, err
	}
	if tt < 0 {
		return nil, fmt.Errorf("core: negative training time %d", tt)
	}
	stats.TrainingTime = time.Duration(tt)

	// The payload must end exactly here: leftover bytes mean a corrupt
	// length field upstream or a mangled trailer, both worth rejecting.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("core: trailing garbage after table payload")
	}

	return assembleEngine(opts, rs, bitmap, isets, remainderRules, ustats, stats)
}

// assembleEngine rebuilds the full write-side and read-side state from the
// decoded parts, mirroring what Build leaves behind after training — with
// the training itself already done. Every cross-reference a lookup will
// follow is validated here.
func assembleEngine(opts Options, rs *rules.RuleSet, liveBitmap []byte, isets []isetIndex,
	remainderRules *rules.RuleSet, ustats UpdateStats, stats BuildStats) (*Engine, error) {

	e := &Engine{
		opts:   opts,
		rs:     rs,
		posID:  rs.IndexByID(),
		prioID: make(map[int]int32, rs.Len()),
		live:   make(map[int]bool, rs.Len()),
		inISet: make(map[int]isetEntry, rs.Len()),
		isets:  isets,
		stats:  stats,
		ustats: ustats,
	}
	e.flattenRules()
	for pos := range e.meta {
		e.meta[pos].live = liveBitmap[pos/8]&(1<<(pos%8)) != 0
	}

	// Reconstruct iSet membership from the models: entry j of iSet i carries
	// the built position it indexes (negative values are unindexed gaps);
	// only live positions are members — a deleted iSet rule stays in the
	// immutable model arrays but is masked by the metadata (§3.9).
	claimed := make(map[int]bool, rs.Len())
	for i := range isets {
		vals := isets[i].model.Values()
		size := 0
		for j, pos := range vals {
			if pos < 0 {
				continue
			}
			if pos >= len(rs.Rules) {
				return nil, fmt.Errorf("core: iSet %d entry %d position %d out of range (%d built rules)", i, j, pos, len(rs.Rules))
			}
			if claimed[pos] {
				return nil, fmt.Errorf("core: built rule position %d indexed by two iSets", pos)
			}
			claimed[pos] = true
			size++
			if e.meta[pos].live {
				e.inISet[rs.Rules[pos].ID] = isetEntry{iset: i, entry: j}
			}
		}
		e.stats.ISetSizes = append(e.stats.ISetSizes, size)
		e.stats.ISetFields = append(e.stats.ISetFields, isets[i].field)
	}

	// Live rules are exactly the iSet members plus the remainder rules; the
	// partitions must be disjoint.
	for id := range e.inISet {
		e.prioID[id] = e.meta[e.posID[id]].prio
		e.live[id] = true
	}
	for i := range remainderRules.Rules {
		r := &remainderRules.Rules[i]
		if _, inModel := e.inISet[r.ID]; inModel {
			return nil, fmt.Errorf("core: rule %d is in both an iSet and the remainder", r.ID)
		}
		e.prioID[r.ID] = r.Priority
		e.live[r.ID] = true
	}

	e.remainderRules = remainderRules
	rem, err := opts.Remainder(remainderRules)
	if err != nil {
		return nil, fmt.Errorf("core: rebuilding remainder: %w", err)
	}
	e.remainder = rem
	// The artifact records which backend served (including an auto-select
	// winner); the per-candidate scores are build diagnostics and are not
	// serialized.
	e.stats.RemainderBackend = rem.Name()
	e.remIDs, e.remPrios = sortedRemainderTable(remainderRules)
	e.refreezeRemainderLocked()
	e.parPool = make(chan *parWorker, 2)
	e.publishLocked()
	return e, nil
}

func getString(br *bufio.Reader) (string, error) {
	var n uint16
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > maxCodecNameLen {
		return "", fmt.Errorf("core: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func getIntSlice(get func(any) error, cap16 int) ([]int, error) {
	var n uint16
	if err := get(&n); err != nil {
		return nil, err
	}
	if int(n) > cap16 {
		return nil, fmt.Errorf("core: implausible slice length %d", n)
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]int, n)
	for i := range out {
		var v int32
		if err := get(&v); err != nil {
			return nil, err
		}
		out[i] = int(v)
	}
	return out, nil
}

func readRQRMIConfig(get func(any) error) (rqrmi.Config, error) {
	var cfg rqrmi.Config
	var nWidths uint16
	if err := get(&nWidths); err != nil {
		return cfg, err
	}
	if int(nWidths) > maxCodecWidths {
		return cfg, fmt.Errorf("core: implausible stage-width count %d", nWidths)
	}
	for i := 0; i < int(nWidths); i++ {
		var w uint32
		if err := get(&w); err != nil {
			return cfg, err
		}
		if w > 1<<20 {
			return cfg, fmt.Errorf("core: implausible stage width %d", w)
		}
		cfg.StageWidths = append(cfg.StageWidths, int(w))
	}
	for _, dst := range []*int{&cfg.Hidden, &cfg.TargetError, &cfg.MaxRetrain,
		&cfg.MinSamples, &cfg.MaxSamples, &cfg.InternalEpochs, &cfg.LeafEpochs} {
		var v int32
		if err := get(&v); err != nil {
			return cfg, err
		}
		*dst = int(v)
	}
	if err := get(&cfg.LR); err != nil {
		return cfg, err
	}
	if math.IsNaN(cfg.LR) {
		return cfg, fmt.Errorf("core: NaN learning rate")
	}
	if err := get(&cfg.Seed); err != nil {
		return cfg, err
	}
	var slack int32
	if err := get(&slack); err != nil {
		return cfg, err
	}
	cfg.SafetySlack = int(slack)
	return cfg, nil
}

// getRules reads a length-prefixed rule list. Allocation grows with the
// bytes actually present, so a corrupt count cannot force a giant up-front
// allocation (the next read fails at EOF first).
func getRules(br *bufio.Reader, numFields int) ([]rules.Rule, error) {
	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	initial := int(n)
	if initial > 4096 {
		initial = 4096
	}
	out := make([]rules.Rule, 0, initial)
	// One contiguous lo/hi read per rule keeps decode cost linear.
	buf := make([]uint32, 2*numFields)
	for i := 0; i < int(n); i++ {
		var id int64
		var prio int32
		if err := binary.Read(br, binary.LittleEndian, &id); err != nil {
			return nil, fmt.Errorf("rule %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &prio); err != nil {
			return nil, fmt.Errorf("rule %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, buf); err != nil {
			return nil, fmt.Errorf("rule %d fields: %w", i, err)
		}
		fields := make([]rules.Range, numFields)
		for d := 0; d < numFields; d++ {
			fields[d] = rules.Range{Lo: buf[2*d], Hi: buf[2*d+1]}
			if !fields[d].Valid() {
				return nil, fmt.Errorf("rule %d field %d inverted [%d,%d]", i, d, fields[d].Lo, fields[d].Hi)
			}
		}
		out = append(out, rules.Rule{ID: int(id), Priority: prio, Fields: fields})
	}
	return out, nil
}
