package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"nuevomatch/internal/classbench"
	"nuevomatch/internal/rules"
)

// saveEngine serializes e and sanity-checks the byte count.
func saveEngine(t *testing.T, e *Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := e.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

// verifyLoadedEquivalence probes the loaded engine against both the original
// engine and the linear-reference mirror on matching-biased and uniform
// packets, across the scalar and batched paths.
func verifyLoadedEquivalence(t *testing.T, orig, loaded *Engine, mirror *rules.RuleSet, rng *rand.Rand, probes int) {
	t.Helper()
	pkts := make([]rules.Packet, probes)
	for i := range pkts {
		p := make(rules.Packet, mirror.NumFields)
		if mirror.Len() > 0 && rng.Intn(4) != 0 {
			classbench.FillMatchingPacket(rng, &mirror.Rules[rng.Intn(mirror.Len())], p)
		} else {
			for d := range p {
				p[d] = rng.Uint32()
			}
		}
		pkts[i] = p
	}
	outOrig := make([]int, probes)
	outLoaded := make([]int, probes)
	orig.LookupBatch(pkts, outOrig)
	loaded.LookupBatch(pkts, outLoaded)
	for i, p := range pkts {
		want := mirror.MatchID(p)
		if got := loaded.Lookup(p); got != want {
			t.Fatalf("loaded.Lookup(%v) = %d, want %d (reference)", p, got, want)
		}
		if got := orig.Lookup(p); got != want {
			t.Fatalf("orig.Lookup(%v) = %d, want %d (reference)", p, got, want)
		}
		if outLoaded[i] != want {
			t.Fatalf("loaded.LookupBatch[%d] = %d, want %d", i, outLoaded[i], want)
		}
		if outOrig[i] != outLoaded[i] {
			t.Fatalf("batch disagreement at %d: orig %d, loaded %d", i, outOrig[i], outLoaded[i])
		}
	}
}

// TestTableRoundTripProfiles proves Save→Load equivalence on every ClassBench
// application profile, in both a freshly built state and a drifted one
// (online inserts in the overlay, deletes of both iSet and remainder rules,
// a delete skip-list present at save time). The loaded engine must answer
// every lookup exactly like the original and the linear reference, with zero
// retraining.
func TestTableRoundTripProfiles(t *testing.T) {
	profiles := classbench.Profiles()
	size, pool := 240, 200
	if testing.Short() {
		profiles = []classbench.Profile{profiles[0], profiles[5], profiles[10]}
		size, pool = 150, 120
	}
	for pi, prof := range profiles {
		for _, mode := range []string{"fresh", "drifted"} {
			t.Run(prof.Name+"/"+mode, func(t *testing.T) {
				d := newChurnDriver(t, prof, size, pool, fastOpts(), 7000+int64(pi))
				if mode == "drifted" {
					// Churn ~35% of the rule count so the saved image carries
					// overlay additions, masked deletions, and dead iSet
					// metadata.
					for d.inserts+d.deletes < size/3 {
						d.step()
					}
				}
				blob := saveEngine(t, d.e)
				loaded, err := ReadEngine(bytes.NewReader(blob), nil)
				if err != nil {
					t.Fatalf("ReadEngine: %v", err)
				}
				defer loaded.Close()

				verifyLoadedEquivalence(t, d.e, loaded, d.mirror, d.rng, 400)

				// Bookkeeping must survive the trip: the loaded engine sees
				// the same live set, drift counters, and structure.
				uo, ul := d.e.Updates(), loaded.Updates()
				if uo != ul {
					t.Errorf("UpdateStats drifted across save/load:\n  saved  %+v\n  loaded %+v", uo, ul)
				}
				if d.e.NumISets() != loaded.NumISets() {
					t.Errorf("NumISets %d -> %d", d.e.NumISets(), loaded.NumISets())
				}
				so, sl := d.e.Stats(), loaded.Stats()
				if so.Coverage != sl.Coverage || so.RemainderSize != sl.RemainderSize ||
					so.MaxSearchDistance != sl.MaxSearchDistance {
					t.Errorf("BuildStats drifted:\n  saved  %+v\n  loaded %+v", so, sl)
				}
				if got, want := fmt.Sprint(sl.ISetSizes), fmt.Sprint(so.ISetSizes); got != want {
					t.Errorf("ISetSizes %s -> %s", want, got)
				}

				// The loaded engine is a full citizen: it takes updates and
				// a second round trip re-saves identically.
				blob2 := saveEngine(t, loaded)
				if !bytes.Equal(blob, blob2) {
					t.Errorf("second save differs from first (%d vs %d bytes)", len(blob), len(blob2))
				}
			})
		}
	}
}

// TestLoadedEngineStaysLive drives updates and a retrain through a loaded
// engine: persistence must not demote it to read-only.
func TestLoadedEngineStaysLive(t *testing.T) {
	prof, err := classbench.ProfileByName("fw2")
	if err != nil {
		t.Fatal(err)
	}
	d := newChurnDriver(t, prof, 200, 300, fastOpts(), 81)
	for d.inserts+d.deletes < 60 {
		d.step()
	}
	blob := saveEngine(t, d.e)
	loaded, err := ReadEngine(bytes.NewReader(blob), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()

	// Swap the driver onto the loaded engine and keep churning with
	// verified lookups, then retrain in place.
	d.e.Close()
	d.e = loaded
	for i := 0; i < 400; i++ {
		d.step()
	}
	if _, err := loaded.Retrain(); err != nil {
		t.Fatalf("retrain on loaded engine: %v", err)
	}
	d.verifySweep(300)
}

// TestReadEngineTruncationAndCorruption feeds every truncation prefix of a
// valid table, plus systematic single-byte corruptions, through ReadEngine:
// each must fail with an error (or, for corruptions, either error or load —
// but never panic).
func TestReadEngineTruncationAndCorruption(t *testing.T) {
	prof, err := classbench.ProfileByName("acl2")
	if err != nil {
		t.Fatal(err)
	}
	d := newChurnDriver(t, prof, 120, 80, fastOpts(), 9)
	for d.inserts+d.deletes < 30 {
		d.step()
	}
	blob := saveEngine(t, d.e)

	for n := 0; n < len(blob); n++ {
		loaded, err := ReadEngine(bytes.NewReader(blob[:n]), nil)
		if err == nil {
			// The one admissible truncation point: cutting exactly the
			// integrity trailer leaves a well-formed trailer-less artifact,
			// which back-compat with pre-trailer files requires accepting.
			if n != len(blob)-tableTrailerLen {
				t.Fatalf("truncation at %d/%d bytes loaded without error", n, len(blob))
			}
			loaded.Close()
		}
	}
	// With the CRC32-C trailer, every byte flip — payload or trailer — must
	// be rejected, and rejected without panicking.
	for off := 0; off < len(blob); off += 7 {
		mut := append([]byte(nil), blob...)
		mut[off] ^= 0xff
		if e2, err := ReadEngine(bytes.NewReader(mut), nil); err == nil {
			e2.Close()
			t.Fatalf("bit flip at offset %d loaded without error (checksum not enforced)", off)
		}
	}
}

// TestCodecTrailer pins the CRC32-C integrity trailer's contract: new
// artifacts end with it, corruption anywhere is rejected before model decode,
// a stripped trailer degrades to the accepted v1 form, and garbage past the
// trailer cannot smuggle itself in.
func TestCodecTrailer(t *testing.T) {
	prof, err := classbench.ProfileByName("acl3")
	if err != nil {
		t.Fatal(err)
	}
	d := newChurnDriver(t, prof, 120, 60, fastOpts(), 33)
	for d.inserts+d.deletes < 25 {
		d.step()
	}
	blob := saveEngine(t, d.e)

	if len(blob) < tableTrailerLen {
		t.Fatalf("implausibly small table: %d bytes", len(blob))
	}
	trailer := blob[len(blob)-tableTrailerLen:]
	if [4]byte(trailer[:4]) != tableTrailerMagic {
		t.Fatalf("saved table does not end with the trailer magic: % x", trailer)
	}

	// Payload corruption must be caught by the checksum, as a checksum error
	// (not a decode error deep inside a model blob).
	mut := append([]byte(nil), blob...)
	mut[len(mut)/2] ^= 0x01
	if _, err := ReadEngine(bytes.NewReader(mut), nil); err == nil {
		t.Fatal("corrupted payload loaded without error")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupted payload rejected, but not by the checksum: %v", err)
	}

	// A corrupted stored checksum is equally fatal.
	mut = append([]byte(nil), blob...)
	mut[len(mut)-1] ^= 0xff
	if _, err := ReadEngine(bytes.NewReader(mut), nil); err == nil {
		t.Fatal("corrupted trailer checksum loaded without error")
	}

	// Stripping the trailer yields a valid pre-trailer v1 artifact: it must
	// load and answer identically (backward compatibility).
	stripped, err := ReadEngine(bytes.NewReader(blob[:len(blob)-tableTrailerLen]), nil)
	if err != nil {
		t.Fatalf("trailer-less v1 artifact rejected: %v", err)
	}
	defer stripped.Close()
	verifyLoadedEquivalence(t, d.e, stripped, d.mirror, d.rng, 200)

	// Bytes after the trailer make the whole input untrustworthy.
	if _, err := ReadEngine(bytes.NewReader(append(append([]byte(nil), blob...), 0xde, 0xad)), nil); err == nil {
		t.Fatal("trailing garbage after the trailer loaded without error")
	}
}

// TestReadEngineUnknownRemainder exercises the registry miss path and the
// builder override.
func TestReadEngineUnknownRemainder(t *testing.T) {
	prof, err := classbench.ProfileByName("ipc2")
	if err != nil {
		t.Fatal(err)
	}
	d := newChurnDriver(t, prof, 120, 40, fastOpts(), 12)
	named := func(rs *rules.RuleSet) (rules.Classifier, error) {
		c, err := fastOpts().withDefaults().Remainder(rs)
		if err != nil {
			return nil, err
		}
		return renamed{c, "custom-remainder"}, nil
	}
	opts := fastOpts()
	opts.Remainder = named
	e, err := Build(d.mirror.Clone(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	blob := saveEngine(t, e)

	if _, err := ReadEngine(bytes.NewReader(blob), nil); err == nil {
		t.Fatal("load with unregistered remainder name must error")
	}
	loaded, err := ReadEngine(bytes.NewReader(blob), named)
	if err != nil {
		t.Fatalf("load with builder override: %v", err)
	}
	defer loaded.Close()
	verifyLoadedEquivalence(t, e, loaded, d.mirror, d.rng, 200)
}

// renamed wraps a classifier under a different Name.
type renamed struct {
	rules.Classifier
	name string
}

func (r renamed) Name() string { return r.name }

// goldenTablePath is the checked-in serialized table CI round-trips to catch
// codec format drift: if the encoder changes shape without a version bump,
// the golden load (or its lookups) breaks.
const goldenTablePath = "testdata/tables/fw1_240_v1.nm"

func goldenEngine(t *testing.T) (*Engine, *rules.RuleSet) {
	t.Helper()
	prof, err := classbench.ProfileByName("fw1")
	if err != nil {
		t.Fatal(err)
	}
	d := newChurnDriver(t, prof, 240, 120, fastOpts(), 4242)
	for d.inserts+d.deletes < 80 {
		d.step()
	}
	return d.e, d.mirror
}

// TestEngineCodecGolden loads the checked-in table and verifies it against
// the deterministically rebuilt original. REGEN_TABLE_GOLDEN=1 regenerates
// the file after an intentional format change (bump tableFormatVersion and
// the file suffix).
func TestEngineCodecGolden(t *testing.T) {
	e, mirror := goldenEngine(t)
	defer e.Close()
	if os.Getenv("REGEN_TABLE_GOLDEN") == "1" {
		if err := os.MkdirAll(filepath.Dir(goldenTablePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenTablePath, saveEngine(t, e), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", goldenTablePath)
	}
	blob, err := os.ReadFile(goldenTablePath)
	if err != nil {
		t.Fatalf("golden table missing (run with REGEN_TABLE_GOLDEN=1 to regenerate): %v", err)
	}
	loaded, err := ReadEngine(bytes.NewReader(blob), nil)
	if err != nil {
		t.Fatalf("golden table no longer loads — codec format drift? %v", err)
	}
	defer loaded.Close()
	rng := rand.New(rand.NewSource(99))
	verifyLoadedEquivalence(t, e, loaded, mirror, rng, 400)
}

// FuzzReadTable proves arbitrary bytes never panic the table loader. When a
// mutation happens to load, the engine must survive lookups and a re-save.
func FuzzReadTable(f *testing.F) {
	for _, seed := range tableSeedCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := ReadEngine(bytes.NewReader(data), nil)
		if err != nil {
			return
		}
		defer e.Close()
		p := make(rules.Packet, e.rs.NumFields)
		e.Lookup(p)
		out := make([]int, 4)
		e.LookupBatch([]rules.Packet{p, p, p, p}, out)
		var buf bytes.Buffer
		if _, err := e.WriteTo(&buf); err != nil {
			t.Fatalf("re-save of loaded table failed: %v", err)
		}
	})
}

// tableSeedCorpus generates valid serialized tables (fresh and drifted,
// several profiles, with and without iSets) as fuzz seeds.
func tableSeedCorpus() [][]byte {
	seeds := make([][]byte, 0, 8)
	add := func(e *Engine) {
		var buf bytes.Buffer
		if _, err := e.WriteTo(&buf); err == nil {
			seeds = append(seeds, buf.Bytes())
		}
		e.Close()
	}
	for _, name := range []string{"acl1", "fw1", "ipc1"} {
		prof, err := classbench.ProfileByName(name)
		if err != nil {
			continue
		}
		rs := classbench.Generate(prof, 60)
		for i := range rs.Rules {
			rs.Rules[i].Priority = int32(2 * (i + 1))
		}
		e, err := Build(rs, fastOpts())
		if err != nil {
			continue
		}
		// Drift a little so seeds carry dead metadata and remainder inserts.
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 10; i++ {
			e.Delete(rs.Rules[rng.Intn(rs.Len())].ID)
		}
		for i := 0; i < 10; i++ {
			r := rs.Rules[rng.Intn(rs.Len())]
			r.ID = 10_000 + i
			r.Priority = int32(2*i + 1)
			r.Fields = append([]rules.Range(nil), r.Fields...)
			e.Insert(r)
		}
		add(e)
	}
	// A remainder-only engine (no iSets) and a tiny two-field table.
	rs := classbench.Generate(classbench.Profiles()[0], 40)
	opts := fastOpts()
	opts.MaxISets = -1
	if e, err := Build(rs, opts); err == nil {
		add(e)
	}
	tiny := rules.NewRuleSet(2)
	tiny.AddAuto(rules.PrefixRange(0x0a0a0000, 16), rules.Range{Lo: 10, Hi: 18})
	tiny.AddAuto(rules.FullRange(), rules.ExactRange(80))
	if e, err := Build(tiny, fastOpts()); err == nil {
		add(e)
	}
	// A trailer-less v1 seed: the pre-trailer form stays load-bearing for
	// backward compatibility, so the fuzzer must keep exploring it too.
	if len(seeds) > 0 && len(seeds[0]) > tableTrailerLen {
		seeds = append(seeds, seeds[0][:len(seeds[0])-tableTrailerLen])
	}
	return seeds
}

// TestRegenTableFuzzCorpus mirrors TestRegenFuzzCorpus for the table codec
// seeds: REGEN_FUZZ_CORPUS=1 writes them, otherwise their presence is
// asserted.
func TestRegenTableFuzzCorpus(t *testing.T) {
	seeds := tableSeedCorpus()
	dir := filepath.Join("testdata", "fuzz", "FuzzReadTable")
	if os.Getenv("REGEN_FUZZ_CORPUS") == "1" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
			path := filepath.Join(dir, fmt.Sprintf("table-seed-%02d", i))
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("wrote %d seeds to %s", len(seeds), dir)
		return
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("seed corpus missing (run with REGEN_FUZZ_CORPUS=1 to regenerate): %v", err)
	}
	if len(entries) < len(seeds) {
		t.Errorf("%d corpus files on disk, generator produces %d (regenerate)", len(entries), len(seeds))
	}
}
