package core

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"nuevomatch/internal/classbench"
	"nuevomatch/internal/classifiers/tuplemerge"
	"nuevomatch/internal/rules"
)

// churnDriver runs an interleaved insert/delete/lookup workload against an
// engine while maintaining an exact linear-reference mirror. All rules ever
// live carry unique priorities, so engine results must equal the mirror's
// MatchID exactly — no tie ambiguity.
type churnDriver struct {
	t      *testing.T
	e      *Engine
	mirror *rules.RuleSet
	pool   []rules.Rule // insert pool, unique IDs and priorities pre-assigned
	rng    *rand.Rand

	ops, lookups, inserts, deletes int
	verifyStride                   int // verify every Nth lookup (1 = all)
}

// newChurnDriver builds a ClassBench rule-set of the profile, re-maps its
// priorities onto the even numbers, and prepares an insert pool on the odd
// numbers, so churned-in rules interleave with (and can beat) built rules
// while priorities stay globally unique.
func newChurnDriver(t *testing.T, prof classbench.Profile, size, poolSize int, opts Options, seed int64) *churnDriver {
	t.Helper()
	all := classbench.Generate(prof, size+poolSize)
	base := rules.NewRuleSet(all.NumFields)
	for i := 0; i < size; i++ {
		r := all.Rules[i]
		r.Priority = int32(2 * (i + 1))
		base.Add(r)
	}
	pool := make([]rules.Rule, 0, poolSize)
	for i := size; i < size+poolSize; i++ {
		r := all.Rules[i]
		r.ID = 1_000_000 + i
		r.Priority = int32(2*(i-size) + 1) // odd: interleaves with the even built priorities
		pool = append(pool, r)
	}
	e, err := Build(base, opts)
	if err != nil {
		t.Fatalf("%s: build: %v", prof.Name, err)
	}
	return &churnDriver{
		t: t, e: e, mirror: base.Clone(), pool: pool,
		rng: rand.New(rand.NewSource(seed)), verifyStride: 1,
	}
}

// step performs one workload operation. Lookups are verified against the
// mirror (every verifyStride-th); inserts draw from the pool; deletes pick a
// random live rule.
func (d *churnDriver) step() {
	d.ops++
	switch x := d.rng.Float64(); {
	case x < 0.60:
		d.lookups++
		p := d.packet()
		got := d.e.Lookup(p)
		if d.verifyStride > 0 && d.lookups%d.verifyStride == 0 {
			if want := d.mirror.MatchID(p); got != want {
				d.t.Fatalf("op %d: Lookup(%v) = %d, want %d", d.ops, p, got, want)
			}
		}
	case x < 0.80 && len(d.pool) > 0:
		r := d.pool[len(d.pool)-1]
		d.pool = d.pool[:len(d.pool)-1]
		if err := d.e.Insert(r); err != nil {
			d.t.Fatalf("op %d: insert %d: %v", d.ops, r.ID, err)
		}
		d.mirror.Add(r)
		d.inserts++
	default:
		if d.mirror.Len() <= 16 {
			return
		}
		i := d.rng.Intn(d.mirror.Len())
		id := d.mirror.Rules[i].ID
		if err := d.e.Delete(id); err != nil {
			d.t.Fatalf("op %d: delete %d: %v", d.ops, id, err)
		}
		d.mirror.Rules[i] = d.mirror.Rules[d.mirror.Len()-1]
		d.mirror.Rules = d.mirror.Rules[:d.mirror.Len()-1]
		d.deletes++
	}
}

// packet draws a probe biased toward matching a live rule.
func (d *churnDriver) packet() rules.Packet {
	p := make(rules.Packet, d.mirror.NumFields)
	if d.mirror.Len() > 0 && d.rng.Intn(4) != 0 {
		classbench.FillMatchingPacket(d.rng, &d.mirror.Rules[d.rng.Intn(d.mirror.Len())], p)
		return p
	}
	for i := range p {
		p[i] = d.rng.Uint32()
	}
	return p
}

// verifySweep checks scalar, batched, and parallel lookups against the
// mirror over n fresh probes.
func (d *churnDriver) verifySweep(n int) {
	d.t.Helper()
	pkts := make([]rules.Packet, n)
	want := make([]int, n)
	for i := range pkts {
		pkts[i] = d.packet()
		want[i] = d.mirror.MatchID(pkts[i])
	}
	out := make([]int, n)
	d.e.LookupBatch(pkts, out)
	for i := range pkts {
		if got := d.e.Lookup(pkts[i]); got != want[i] {
			d.t.Fatalf("sweep: Lookup(%v) = %d, want %d", pkts[i], got, want[i])
		}
		if out[i] != want[i] {
			d.t.Fatalf("sweep: LookupBatch[%d] = %d, want %d", i, out[i], want[i])
		}
	}
	d.e.LookupBatchParallel(pkts, out)
	for i := range pkts {
		if out[i] != want[i] {
			d.t.Fatalf("sweep: LookupBatchParallel[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}

func TestRetrainInPlaceRestoresCoverage(t *testing.T) {
	prof, err := classbench.ProfileByName("acl1")
	if err != nil {
		t.Fatal(err)
	}
	d := newChurnDriver(t, prof, 500, 400, fastOpts(), 21)
	for i := 0; i < 2500; i++ {
		d.step()
	}
	before := d.e.Updates()
	if before.Inserted == 0 || before.DeletedFromISets+before.DeletedFromRemainder == 0 {
		t.Fatalf("churn applied no updates: %+v", before)
	}
	st, err := d.e.Retrain()
	if err != nil {
		t.Fatal(err)
	}
	if st.Replayed != 0 {
		t.Errorf("Replayed = %d, want 0 without concurrent updates", st.Replayed)
	}
	if st.RulesBefore != st.RulesAfter {
		t.Errorf("rule count changed across retrain: %d -> %d", st.RulesBefore, st.RulesAfter)
	}
	after := d.e.Updates()
	if after.Inserted != 0 || after.DeletedFromISets != 0 || after.DeletedFromRemainder != 0 {
		t.Errorf("drift counters not reset after retrain: %+v", after)
	}
	if after.RemainderFraction > before.RemainderFraction {
		t.Errorf("retrain did not improve remainder fraction: %.3f -> %.3f",
			before.RemainderFraction, after.RemainderFraction)
	}
	d.verifySweep(600)
	// The engine must remain updatable and correct after the swap.
	for i := 0; i < 1000; i++ {
		d.step()
	}
	d.verifySweep(300)
}

// gatedBuilder wraps TupleMerge so a test can hold a retrain's Build open
// (to inject concurrent updates into the journal) or fail it on demand.
type gatedBuilder struct {
	armed   atomic.Bool
	fail    atomic.Bool
	entered chan struct{}
	release chan struct{}
}

func newGatedBuilder() *gatedBuilder {
	return &gatedBuilder{entered: make(chan struct{}), release: make(chan struct{})}
}

func (g *gatedBuilder) build(rs *rules.RuleSet) (rules.Classifier, error) {
	if g.fail.Load() {
		return nil, errors.New("gated: forced remainder failure")
	}
	if g.armed.Load() {
		g.entered <- struct{}{}
		<-g.release
	}
	return tuplemerge.Build(rs)
}

func TestRetrainJournalsAndReplaysConcurrentUpdates(t *testing.T) {
	prof, err := classbench.ProfileByName("fw1")
	if err != nil {
		t.Fatal(err)
	}
	g := newGatedBuilder()
	opts := fastOpts()
	opts.Remainder = g.build
	d := newChurnDriver(t, prof, 400, 600, opts, 31)
	for i := 0; i < 800; i++ {
		d.step()
	}

	g.armed.Store(true)
	type result struct {
		st  RetrainStats
		err error
	}
	res := make(chan result, 1)
	go func() {
		st, err := d.e.Retrain()
		res <- result{st, err}
	}()
	<-g.entered // background Build is now mid-training, journal armed

	// A second retrain must refuse while one is in flight.
	if _, err := d.e.Retrain(); !errors.Is(err, ErrRetrainInProgress) {
		t.Errorf("concurrent Retrain error = %v, want ErrRetrainInProgress", err)
	}

	// Updates and lookups keep flowing against the serving state.
	insertsBefore, deletesBefore := d.inserts, d.deletes
	for i := 0; i < 400; i++ {
		d.step()
	}
	journaled := (d.inserts - insertsBefore) + (d.deletes - deletesBefore)
	if journaled == 0 {
		t.Fatal("churn produced no updates to journal")
	}

	g.armed.Store(false)
	close(g.release)
	r := <-res
	if r.err != nil {
		t.Fatalf("retrain: %v", r.err)
	}
	if r.st.Replayed != journaled {
		t.Errorf("Replayed = %d, want %d", r.st.Replayed, journaled)
	}
	// Replayed updates are real post-swap drift: the counters must carry
	// them (not reset to zero) so the next retrain trigger fires on time.
	us := d.e.Updates()
	if got := us.Inserted + us.DeletedFromISets + us.DeletedFromRemainder; got != journaled {
		t.Errorf("post-swap drift counters = %d, want %d (the replayed journal)", got, journaled)
	}
	d.verifySweep(500)
	for i := 0; i < 500; i++ {
		d.step()
	}
	d.verifySweep(300)
}

func TestRetrainFailureKeepsServingState(t *testing.T) {
	prof, err := classbench.ProfileByName("ipc1")
	if err != nil {
		t.Fatal(err)
	}
	g := newGatedBuilder()
	opts := fastOpts()
	opts.Remainder = g.build
	d := newChurnDriver(t, prof, 300, 300, opts, 41)
	for i := 0; i < 600; i++ {
		d.step()
	}
	g.fail.Store(true)
	if _, err := d.e.Retrain(); err == nil {
		t.Fatal("retrain with failing remainder builder must error")
	}
	// The drifted state keeps serving, updates still apply, and a later
	// retrain succeeds (journal and retraining flag were cleaned up).
	d.verifySweep(300)
	for i := 0; i < 300; i++ {
		d.step()
	}
	g.fail.Store(false)
	if _, err := d.e.Retrain(); err != nil {
		t.Fatalf("retrain after failure: %v", err)
	}
	d.verifySweep(300)
}

func TestAutopilotBacksOffAfterFailedRetrain(t *testing.T) {
	prof, err := classbench.ProfileByName("acl3")
	if err != nil {
		t.Fatal(err)
	}
	g := newGatedBuilder()
	opts := fastOpts()
	opts.Remainder = g.build
	d := newChurnDriver(t, prof, 200, 300, opts, 91)
	for d.inserts+d.deletes < 60 {
		d.step()
	}
	g.fail.Store(true)
	ap := NewAutopilot(d.e, AutopilotPolicy{MaxUpdates: 50, MinLiveRules: 1, Interval: time.Hour})
	if _, err := ap.Check(); err == nil {
		t.Fatal("first tripped check must surface the retrain failure")
	}
	// The drift is still tripped, but the exponential failure backoff
	// must suppress watcher-style re-attempts instead of relaunching a
	// doomed training run on every poll.
	for i := 0; i < 5; i++ {
		if retrained, err := ap.Check(); err != nil || retrained {
			t.Fatalf("backoff check %d: (%v, %v), want suppressed", i, retrained, err)
		}
	}
	if st := ap.Stats(); st.Failures != 1 {
		t.Fatalf("Failures = %d, want 1 (backoff must prevent retry storms)", st.Failures)
	}
	// Watcher-disabled mode has no backoff: every manual Check is an
	// explicit caller decision and retries immediately.
	manual := NewAutopilot(d.e, AutopilotPolicy{MaxUpdates: 50, MinLiveRules: 1, Interval: -1})
	for i := 0; i < 2; i++ {
		if _, err := manual.Check(); err == nil {
			t.Fatalf("manual check %d: want retrain failure", i)
		}
	}
	if st := manual.Stats(); st.Failures != 2 {
		t.Fatalf("manual Failures = %d, want 2", st.Failures)
	}
	// Once the builder recovers, the backed-off autopilot... still sits in
	// its backoff window (Interval=1h), but a fresh supervisor retrains and
	// the engine swaps cleanly.
	g.fail.Store(false)
	ok := NewAutopilot(d.e, AutopilotPolicy{MaxUpdates: 50, MinLiveRules: 1})
	if retrained, err := ok.Check(); err != nil || !retrained {
		t.Fatalf("recovered check: (%v, %v), want retrain", retrained, err)
	}
	d.verifySweep(300)
}

func TestInsertRejectsInvalidRange(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	rs := structuredRuleSet(rng, 120)
	e, err := Build(rs, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	bad := rules.Rule{ID: 99999, Priority: 1, Fields: []rules.Range{
		{Lo: 10, Hi: 5}, rules.FullRange(), rules.FullRange(), rules.FullRange(), rules.FullRange(),
	}}
	if err := e.Insert(bad); err == nil {
		t.Fatal("Insert must reject Lo > Hi: an invalid live rule would poison every future Retrain")
	}
	// The engine stays consistent and retrainable.
	if _, err := e.Retrain(); err != nil {
		t.Fatalf("retrain after rejected insert: %v", err)
	}
}

func TestAutopilotPolicyEvaluate(t *testing.T) {
	p := AutopilotPolicy{}.withDefaults()
	if reason, trip := p.evaluate(UpdateStats{LiveRules: 10, Inserted: 1 << 20}, 0, fracHysteresis); trip {
		t.Errorf("tripped below MinLiveRules: %s", reason)
	}
	if _, trip := p.evaluate(UpdateStats{LiveRules: 1000, Inserted: p.MaxUpdates}, 0, fracHysteresis); !trip {
		t.Error("MaxUpdates must trip")
	}
	if _, trip := p.evaluate(UpdateStats{LiveRules: 1000, RemainderFraction: 0.9}, 0, fracHysteresis); !trip {
		t.Error("MaxRemainderFraction must trip")
	}
	if _, trip := p.evaluate(UpdateStats{LiveRules: 1000, OverlayCompactions: 99}, 0, fracHysteresis); !trip {
		t.Error("MaxOverlayCompactions must trip")
	}
	if _, trip := p.evaluate(UpdateStats{LiveRules: 1000, Inserted: p.MaxUpdates - 1}, 0, fracHysteresis); trip {
		t.Error("must not trip below every threshold")
	}
	// Hysteresis: a fraction above the ceiling but within fracHysteresis of
	// what the last build achieved must NOT trip — retraining cannot improve
	// it and would loop.
	if reason, trip := p.evaluate(UpdateStats{LiveRules: 1000, RemainderFraction: 0.55}, 0.52, fracHysteresis); trip {
		t.Errorf("fraction within hysteresis of the build floor tripped: %s", reason)
	}
	if _, trip := p.evaluate(UpdateStats{LiveRules: 1000, RemainderFraction: 0.58}, 0.52, fracHysteresis); !trip {
		t.Error("fraction decayed past hysteresis must trip")
	}
	off := AutopilotPolicy{MaxUpdates: -1, MaxRemainderFraction: -1, MaxOverlayCompactions: -1, MinLiveRules: -1}.withDefaults()
	if reason, trip := off.evaluate(UpdateStats{LiveRules: 1000, Inserted: 1 << 20, RemainderFraction: 1, OverlayCompactions: 1 << 20}, 0, fracHysteresis); trip {
		t.Errorf("disabled policy tripped: %s", reason)
	}
}

// TestAutopilotNoThrashOnUnreachableCeiling is the regression for the
// default-policy thrash hazard: when a fresh build already sits above the
// MaxRemainderFraction ceiling (wildcard-heavy rule-sets train that way),
// the coverage trigger must not fire at all — retraining cannot help — and
// after a genuine retrain it must not re-fire until real decay accumulates.
func TestAutopilotNoThrashOnUnreachableCeiling(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	// Low-diversity rules: coverage is poor, remainder fraction high.
	rs := rules.NewRuleSet(5)
	for i := 0; i < 200; i++ {
		rs.AddAuto(
			rules.ExactRange(uint32(i%4)),
			rules.FullRange(),
			rules.Range{Lo: 0, Hi: 65535},
			rules.ExactRange(uint32(rng.Intn(50))),
			rules.ExactRange(6),
		)
	}
	opts := fastOpts()
	opts.MinCoverage = 0.25
	e, err := Build(rs, opts)
	if err != nil {
		t.Fatal(err)
	}
	frac := e.Updates().RemainderFraction
	ap := NewAutopilot(e, AutopilotPolicy{
		MaxUpdates:            -1,
		MaxOverlayCompactions: -1,
		MaxRemainderFraction:  frac / 2, // ceiling the rule-set cannot reach
		MinLiveRules:          1,
	})
	for i := 0; i < 5; i++ {
		if retrained, err := ap.Check(); err != nil || retrained {
			t.Fatalf("check %d: (%v, %v) — unreachable ceiling must not retrain", i, retrained, err)
		}
	}
	if st := ap.Stats(); st.Retrains != 0 {
		t.Fatalf("autopilot thrashed: %+v", st)
	}
}

func TestAutopilotCheckRetrainsOnDrift(t *testing.T) {
	prof, err := classbench.ProfileByName("acl2")
	if err != nil {
		t.Fatal(err)
	}
	d := newChurnDriver(t, prof, 400, 600, fastOpts(), 51)
	ap := NewAutopilot(d.e, AutopilotPolicy{MaxUpdates: 200, MinLiveRules: 1})
	if retrained, err := ap.Check(); err != nil || retrained {
		t.Fatalf("fresh engine Check = (%v, %v), want no retrain", retrained, err)
	}
	for d.inserts+d.deletes < 200 {
		d.step()
	}
	retrained, err := ap.Check()
	if err != nil || !retrained {
		t.Fatalf("drifted Check = (%v, %v), want retrain", retrained, err)
	}
	st := ap.Stats()
	if st.Retrains != 1 || st.Failures != 0 || st.LastTrigger == "" {
		t.Errorf("stats after retrain: %+v", st)
	}
	d.verifySweep(400)
	// Drift is resolved: an immediate re-check must not retrain again.
	if retrained, _ := ap.Check(); retrained {
		t.Error("Check retrained twice without new drift")
	}
	// MinInterval suppresses even real drift.
	apSlow := NewAutopilot(d.e, AutopilotPolicy{MaxUpdates: 50, MinLiveRules: 1, MinInterval: time.Hour})
	if retrained, _ := apSlow.Check(); retrained {
		t.Error("no drift yet")
	}
	for d.inserts+d.deletes < 300 {
		d.step()
	}
	if retrained, _ := apSlow.Check(); !retrained {
		t.Error("first trip must retrain")
	}
	for n := d.inserts + d.deletes; d.inserts+d.deletes < n+60; {
		d.step()
	}
	if retrained, _ := apSlow.Check(); retrained {
		t.Error("MinInterval must suppress the second retrain")
	}
}

// TestAutopilotSustainedChurn is the acceptance workload: a sustained
// interleaved insert/delete/lookup stream (>=50k operations across three
// ClassBench profiles) with the autopilot's background watcher running. The
// autopilot must trigger at least one automatic retrain per profile, and
// every verified lookup — issued before, during, and after the hot swaps —
// must agree with the linear reference.
func TestAutopilotSustainedChurn(t *testing.T) {
	profiles := []string{"acl1", "fw1", "ipc1"}
	ops := 17000
	size, pool := 600, 6000
	if testing.Short() {
		profiles = profiles[:1]
		ops, size, pool = 4000, 300, 1500
	}
	for pi, name := range profiles {
		t.Run(name, func(t *testing.T) {
			prof, err := classbench.ProfileByName(name)
			if err != nil {
				t.Fatal(err)
			}
			d := newChurnDriver(t, prof, size, pool, fastOpts(), 61+int64(pi))
			if raceEnabled {
				// Race instrumentation makes the linear reference ~10x
				// slower; sample the verification instead of thinning the
				// workload so the op count stays at acceptance scale.
				d.verifyStride = 8
			}
			ap := NewAutopilot(d.e, AutopilotPolicy{
				MaxUpdates:   1200,
				MinLiveRules: 1,
				Interval:     2 * time.Millisecond,
			})
			ap.Start()
			defer ap.Stop()

			// An unverified prober hammers the batched paths concurrently so
			// the swap is exercised against parallel readers (checked by the
			// race detector; correctness is asserted by the driver's
			// verified lookups and the final sweeps).
			probeStop := make(chan struct{})
			probeDone := make(chan struct{})
			go func() {
				defer close(probeDone)
				rng := rand.New(rand.NewSource(999))
				pkts := make([]rules.Packet, 128)
				for i := range pkts {
					pkts[i] = make(rules.Packet, 5)
					for j := range pkts[i] {
						pkts[i][j] = rng.Uint32()
					}
				}
				out := make([]int, len(pkts))
				for i := 0; ; i++ {
					select {
					case <-probeStop:
						return
					default:
						d.e.LookupBatch(pkts, out)
						d.e.Lookup(pkts[rng.Intn(len(pkts))])
						if i%64 == 0 {
							// Introspection accessors must be safe against a
							// concurrent retrain swap (they lock).
							d.e.Stats()
							d.e.MemoryFootprint()
						}
					}
				}
			}()

			for i := 0; i < ops; i++ {
				d.step()
				if i%4096 == 0 {
					d.verifySweep(64)
				}
			}
			// The watcher is asynchronous; if the final drift tranche has
			// not been polled yet, force one synchronous check so the
			// assertion below is deterministic.
			if ap.Stats().Retrains == 0 {
				if _, err := ap.Check(); err != nil {
					t.Fatalf("final check: %v", err)
				}
			}
			close(probeStop)
			<-probeDone
			ap.Stop()

			st := ap.Stats()
			if st.Retrains < 1 {
				t.Fatalf("autopilot never retrained under %d ops (%d updates): %+v",
					d.ops, d.inserts+d.deletes, st)
			}
			if st.Failures > 0 {
				t.Fatalf("autopilot retrain failures: %+v", st)
			}
			// Backstop for the batched journal replay: with thousands of
			// journaled updates per swap, a regression to per-op
			// O(journal × remainder) replay pushes the write-side stall
			// into the hundreds of milliseconds even on a quiet host. The
			// precise structural bound (single publish, linear allocation)
			// is asserted in TestBatchReplayEquivalence; this catches a
			// quadratic stall at acceptance scale.
			if st.MaxSwap > time.Second {
				t.Errorf("max swap stall %v with %d replayed updates — journal replay no longer batched?",
					st.MaxSwap, st.Replayed)
			}
			d.verifySweep(800)
			t.Logf("%s: %d ops (%d lookups, %d inserts, %d deletes), %d retrains, last trigger %q, max swap %v, total train %v, replayed %d",
				name, d.ops, d.lookups, d.inserts, d.deletes,
				st.Retrains, st.LastTrigger, st.MaxSwap, st.TotalTrain, st.Replayed)
		})
	}
}

func TestAutopilotStartStopIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	rs := structuredRuleSet(rng, 120)
	e, err := Build(rs, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	ap := NewAutopilot(e, AutopilotPolicy{Interval: time.Millisecond})
	ap.Stop() // stop before start: no-op
	ap.Start()
	ap.Start() // double start: no second watcher
	time.Sleep(5 * time.Millisecond)
	ap.Stop()
	ap.Stop()
	if st := ap.Stats(); st.Checks == 0 {
		t.Error("watcher never polled")
	}

	// Negative Interval disables the watcher: Start must be a no-op (not a
	// NewTicker panic) and Check stays available for manual driving.
	off := NewAutopilot(e, AutopilotPolicy{Interval: -1})
	off.Start()
	off.Stop()
	if _, err := off.Check(); err != nil {
		t.Errorf("manual Check with disabled watcher: %v", err)
	}
	if st := off.Stats(); st.Checks != 1 {
		t.Errorf("Checks = %d, want 1 (only the manual one)", st.Checks)
	}
}
