package core

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nuevomatch/internal/classbench"
	"nuevomatch/internal/rules"
)

// Serialization proofs for the rvh backend and the auto selector: the codec
// records the remainder by Name() and Load resolves it through the
// registry, so every backend (and the auto winner) must round-trip with the
// backend choice intact.

// TestTableRoundTripRVH proves Save→Load equivalence with rvh serving as
// the remainder, fresh and drifted, and that the loaded engine reports the
// backend it actually rebuilt.
func TestTableRoundTripRVH(t *testing.T) {
	profiles := []string{"acl1", "fw1", "ipc1"}
	for pi, name := range profiles {
		for _, mode := range []string{"fresh", "drifted"} {
			t.Run(name+"/"+mode, func(t *testing.T) {
				prof, err := classbench.ProfileByName(name)
				if err != nil {
					t.Fatal(err)
				}
				opts := fastOpts()
				opts.RemainderName = "rvh"
				d := newChurnDriver(t, prof, 200, 160, opts, 8300+int64(pi))
				if got := d.e.Stats().RemainderBackend; got != "rvh" {
					t.Fatalf("built RemainderBackend = %q, want rvh", got)
				}
				if mode == "drifted" {
					// Churn ~35% so the saved image carries overlay additions
					// and a deletion skip list over the frozen rvh form.
					for d.inserts+d.deletes < 70 {
						d.step()
					}
				}
				blob := saveEngine(t, d.e)
				loaded, err := ReadEngine(bytes.NewReader(blob), nil)
				if err != nil {
					t.Fatalf("ReadEngine: %v", err)
				}
				defer loaded.Close()
				if got := loaded.Stats().RemainderBackend; got != "rvh" {
					t.Fatalf("loaded RemainderBackend = %q, want rvh", got)
				}
				if got := loaded.remainder.Name(); got != "rvh" {
					t.Fatalf("loaded remainder Name() = %q, want rvh", got)
				}
				verifyLoadedEquivalence(t, d.e, loaded, d.mirror, d.rng, 400)

				// A second round trip re-saves identically.
				blob2 := saveEngine(t, loaded)
				if !bytes.Equal(blob, blob2) {
					t.Errorf("second save differs from first (%d vs %d bytes)", len(blob), len(blob2))
				}
			})
		}
	}
}

// TestTableRoundTripAutoSelect proves the auto-select decision survives
// persistence: Save records the winner's name, and Load rebuilds exactly
// that backend (no re-selection, no scores).
func TestTableRoundTripAutoSelect(t *testing.T) {
	prof, err := classbench.ProfileByName("fw2")
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOpts()
	opts.RemainderName = AutoRemainder
	d := newChurnDriver(t, prof, 200, 120, opts, 8400)

	st := d.e.Stats()
	if !st.RemainderAutoSelected {
		t.Fatal("BuildStats.RemainderAutoSelected = false under RemainderName auto")
	}
	if st.RemainderBackend != d.e.remainder.Name() {
		t.Fatalf("recorded backend %q != active remainder %q", st.RemainderBackend, d.e.remainder.Name())
	}
	want := FreezableRemainders()
	if len(st.RemainderScores) != len(want) {
		t.Fatalf("got %d candidate scores, want %d (%v)", len(st.RemainderScores), len(want), want)
	}
	selected := 0
	for i, s := range st.RemainderScores {
		if s.Name != want[i] {
			t.Fatalf("score[%d].Name = %q, want %q (sorted candidate order)", i, s.Name, want[i])
		}
		if s.Err != "" {
			t.Fatalf("candidate %q failed: %s", s.Name, s.Err)
		}
		if s.Score <= 0 || s.LookupNs <= 0 {
			t.Fatalf("candidate %q has unmeasured score: %+v", s.Name, s)
		}
		if s.Selected {
			selected++
			if s.Name != st.RemainderBackend {
				t.Fatalf("selected candidate %q != recorded backend %q", s.Name, st.RemainderBackend)
			}
		}
	}
	if selected != 1 {
		t.Fatalf("want exactly one selected candidate, got %d", selected)
	}

	// Drift a little, save, load: the winner's name rides the codec; the
	// selection itself (scores) is a build-time diagnostic and does not.
	for d.inserts+d.deletes < 40 {
		d.step()
	}
	blob := saveEngine(t, d.e)
	loaded, err := ReadEngine(bytes.NewReader(blob), nil)
	if err != nil {
		t.Fatalf("ReadEngine: %v", err)
	}
	defer loaded.Close()
	ls := loaded.Stats()
	if ls.RemainderBackend != st.RemainderBackend {
		t.Fatalf("loaded backend %q != saved winner %q", ls.RemainderBackend, st.RemainderBackend)
	}
	if ls.RemainderAutoSelected {
		t.Fatal("loaded engine claims auto-selection ran (it must not on Load)")
	}
	if len(ls.RemainderScores) != 0 {
		t.Fatalf("scores survived serialization: %+v", ls.RemainderScores)
	}
	verifyLoadedEquivalence(t, d.e, loaded, d.mirror, d.rng, 300)
}

// TestReadEngineUnknownRVHName exercises the registry-miss error path with
// an rvh-backed table: a wrapper renames the classifier at save time, so
// the plain load must fail naming the unknown backend, and a builder
// override must recover it.
func TestReadEngineUnknownRVHName(t *testing.T) {
	prof, err := classbench.ProfileByName("acl3")
	if err != nil {
		t.Fatal(err)
	}
	d := newChurnDriver(t, prof, 120, 40, fastOpts(), 8500)
	rvhBuild, ok := RemainderBuilderFor("rvh")
	if !ok {
		t.Fatal("rvh not registered")
	}
	named := func(rs *rules.RuleSet) (rules.Classifier, error) {
		c, err := rvhBuild(rs)
		if err != nil {
			return nil, err
		}
		return renamed{c, "rvh-experimental"}, nil
	}
	opts := fastOpts()
	opts.Remainder = named
	e, err := Build(d.mirror.Clone(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	blob := saveEngine(t, e)

	if _, err := ReadEngine(bytes.NewReader(blob), nil); err == nil {
		t.Fatal("load with unregistered remainder name must error")
	} else if !strings.Contains(err.Error(), "rvh-experimental") {
		t.Fatalf("registry-miss error does not name the backend: %v", err)
	}
	loaded, err := ReadEngine(bytes.NewReader(blob), named)
	if err != nil {
		t.Fatalf("load with builder override: %v", err)
	}
	defer loaded.Close()
	verifyLoadedEquivalence(t, e, loaded, d.mirror, d.rng, 200)
}

// goldenRVHTablePath is the checked-in rvh-backed table: codec drift that
// breaks rvh's frozen payload (boundary vectors, groups, directory) fails
// here even if the TupleMerge golden still loads.
const goldenRVHTablePath = "testdata/tables/fw1_240_rvh_v1.nm"

// TestEngineCodecGoldenRVH mirrors TestEngineCodecGolden for the rvh
// backend. REGEN_TABLE_GOLDEN=1 regenerates the file after an intentional
// format change.
func TestEngineCodecGoldenRVH(t *testing.T) {
	prof, err := classbench.ProfileByName("fw1")
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOpts()
	opts.RemainderName = "rvh"
	d := newChurnDriver(t, prof, 240, 120, opts, 4242)
	for d.inserts+d.deletes < 80 {
		d.step()
	}
	defer d.e.Close()
	if os.Getenv("REGEN_TABLE_GOLDEN") == "1" {
		if err := os.MkdirAll(filepath.Dir(goldenRVHTablePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenRVHTablePath, saveEngine(t, d.e), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", goldenRVHTablePath)
	}
	blob, err := os.ReadFile(goldenRVHTablePath)
	if err != nil {
		t.Fatalf("golden table missing (run with REGEN_TABLE_GOLDEN=1 to regenerate): %v", err)
	}
	loaded, err := ReadEngine(bytes.NewReader(blob), nil)
	if err != nil {
		t.Fatalf("golden rvh table no longer loads — codec format drift? %v", err)
	}
	defer loaded.Close()
	if got := loaded.Stats().RemainderBackend; got != "rvh" {
		t.Fatalf("golden table loaded with backend %q, want rvh", got)
	}
	rng := rand.New(rand.NewSource(99))
	verifyLoadedEquivalence(t, d.e, loaded, d.mirror, rng, 400)
}
