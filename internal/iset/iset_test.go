package iset

import (
	"math/rand"
	"testing"

	"nuevomatch/internal/rules"
)

func fig2RuleSet(t *testing.T) *rules.RuleSet {
	t.Helper()
	ip := func(s string) uint32 {
		v, err := rules.ParseIPv4(s)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	rs := rules.NewRuleSet(2)
	rs.AddAuto(rules.PrefixRange(ip("10.10.0.0"), 16), rules.Range{Lo: 10, Hi: 18}) // R0
	rs.AddAuto(rules.PrefixRange(ip("10.10.1.0"), 24), rules.Range{Lo: 15, Hi: 25}) // R1
	rs.AddAuto(rules.PrefixRange(ip("10.0.0.0"), 8), rules.Range{Lo: 5, Hi: 8})     // R2
	rs.AddAuto(rules.PrefixRange(ip("10.10.3.0"), 24), rules.Range{Lo: 7, Hi: 20})  // R3
	rs.AddAuto(rules.ExactRange(ip("10.10.3.100")), rules.ExactRange(19))           // R4
	return rs
}

func positionsSet(ps []int) map[int]bool {
	m := make(map[int]bool, len(ps))
	for _, p := range ps {
		m[p] = true
	}
	return m
}

// TestFigure6 reproduces the paper's Figure 6: the five rules of Figure 2
// split into two iSets covering everything, leaving an empty remainder.
func TestFigure6(t *testing.T) {
	rs := fig2RuleSet(t)
	p := Build(rs, Options{})
	if len(p.ISets) != 2 {
		t.Fatalf("got %d iSets, want 2 (Figure 6)", len(p.ISets))
	}
	if len(p.Remainder) != 0 {
		t.Fatalf("remainder = %v, want empty", p.Remainder)
	}
	// Figure 6: {R0, R2, R4} by port and {R1, R3} by IP. Our greedy must
	// find a size-3 first iSet and a size-2 second one.
	if len(p.ISets[0].Positions) != 3 || len(p.ISets[1].Positions) != 2 {
		t.Fatalf("iSet sizes = %d, %d; want 3, 2", len(p.ISets[0].Positions), len(p.ISets[1].Positions))
	}
	if got := p.Coverage(); got != 1.0 {
		t.Errorf("coverage = %v, want 1", got)
	}
}

// TestISetsAreIndependent checks the defining invariant: within an iSet no
// two rules overlap in the iSet's field.
func TestISetsAreIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		rs := rules.NewRuleSet(2)
		n := 5 + rng.Intn(60)
		for i := 0; i < n; i++ {
			lo0 := rng.Uint32() % 1000
			lo1 := rng.Uint32() % 1000
			rs.AddAuto(
				rules.Range{Lo: lo0, Hi: lo0 + rng.Uint32()%200},
				rules.Range{Lo: lo1, Hi: lo1 + rng.Uint32()%200},
			)
		}
		p := Build(rs, Options{})
		seen := make(map[int]bool)
		for _, is := range p.ISets {
			for i, a := range is.Positions {
				if seen[a] {
					t.Fatalf("trial %d: rule %d in two partitions", trial, a)
				}
				seen[a] = true
				for _, b := range is.Positions[i+1:] {
					if rs.Rules[a].Fields[is.Field].Overlaps(rs.Rules[b].Fields[is.Field]) {
						t.Fatalf("trial %d: rules %d,%d overlap in field %d", trial, a, b, is.Field)
					}
				}
			}
		}
		for _, r := range p.Remainder {
			if seen[r] {
				t.Fatalf("trial %d: rule %d in both iSet and remainder", trial, r)
			}
			seen[r] = true
		}
		if len(seen) != n {
			t.Fatalf("trial %d: partition covers %d of %d rules", trial, len(seen), n)
		}
	}
}

// TestLargestIndependentIsOptimal compares the interval scheduling result
// against brute force over all subsets for small inputs.
func TestLargestIndependentIsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		rs := rules.NewRuleSet(1)
		n := 1 + rng.Intn(12)
		for i := 0; i < n; i++ {
			lo := rng.Uint32() % 60
			rs.AddAuto(rules.Range{Lo: lo, Hi: lo + rng.Uint32()%20})
		}
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		got := largestIndependent(rs, all, 0)

		best := 0
		for mask := 0; mask < 1<<n; mask++ {
			ok := true
			var members []int
			for i := 0; i < n && ok; i++ {
				if mask&(1<<i) == 0 {
					continue
				}
				for _, j := range members {
					if rs.Rules[i].Fields[0].Overlaps(rs.Rules[j].Fields[0]) {
						ok = false
						break
					}
				}
				if ok {
					members = append(members, i)
				}
			}
			if ok && len(members) > best {
				best = len(members)
			}
		}
		if len(got) != best {
			t.Fatalf("trial %d: greedy = %d, optimum = %d (rules %v)", trial, len(got), best, rs.Rules)
		}
		// Verify independence and sortedness of the result.
		for i := 1; i < len(got); i++ {
			prev := rs.Rules[got[i-1]].Fields[0]
			cur := rs.Rules[got[i]].Fields[0]
			if prev.Overlaps(cur) {
				t.Fatalf("trial %d: result not independent", trial)
			}
			if cur.Lo <= prev.Lo {
				t.Fatalf("trial %d: result not sorted by Lo", trial)
			}
		}
	}
}

func TestMaxISetsLimit(t *testing.T) {
	rs := rules.NewRuleSet(1)
	// All rules overlap pairwise: every iSet has exactly one rule.
	for i := 0; i < 6; i++ {
		rs.AddAuto(rules.Range{Lo: 0, Hi: 100})
	}
	p := Build(rs, Options{MaxISets: 2})
	if len(p.ISets) != 2 {
		t.Fatalf("got %d iSets, want 2", len(p.ISets))
	}
	if len(p.Remainder) != 4 {
		t.Fatalf("remainder size = %d, want 4", len(p.Remainder))
	}
}

func TestMinCoverageDiscardsSmallISets(t *testing.T) {
	rs := rules.NewRuleSet(1)
	// 8 disjoint rules (one big iSet) + 4 duplicates of one value that can
	// only be covered one-per-iSet.
	for i := 0; i < 8; i++ {
		rs.AddAuto(rules.ExactRange(uint32(1000 + i*10)))
	}
	for i := 0; i < 4; i++ {
		rs.AddAuto(rules.ExactRange(7))
	}
	p := Build(rs, Options{MinCoverage: 0.25})
	if len(p.ISets) != 1 {
		t.Fatalf("got %d iSets, want 1 (singleton iSets fall below 25%%)", len(p.ISets))
	}
	// The first iSet grabs the 8 disjoint plus one of the duplicates.
	if len(p.ISets[0].Positions) != 9 {
		t.Errorf("first iSet size = %d, want 9", len(p.ISets[0].Positions))
	}
	if len(p.Remainder) != 3 {
		t.Errorf("remainder = %d rules, want 3", len(p.Remainder))
	}
}

func TestFieldsRestriction(t *testing.T) {
	rs := fig2RuleSet(t)
	p := Build(rs, Options{Fields: []int{0}})
	for _, is := range p.ISets {
		if is.Field != 0 {
			t.Fatalf("iSet built on field %d despite restriction", is.Field)
		}
	}
}

func TestEmptyRuleSet(t *testing.T) {
	rs := rules.NewRuleSet(2)
	p := Build(rs, Options{})
	if len(p.ISets) != 0 || len(p.Remainder) != 0 {
		t.Error("empty input must produce empty partition")
	}
	if p.Coverage() != 0 {
		t.Error("coverage of empty partition must be 0")
	}
}

func TestCumulativeCoverage(t *testing.T) {
	rs := fig2RuleSet(t)
	cov := CumulativeCoverage(rs, 4)
	if len(cov) != 4 {
		t.Fatalf("len = %d, want 4", len(cov))
	}
	if cov[0] != 0.6 {
		t.Errorf("coverage with 1 iSet = %v, want 0.6", cov[0])
	}
	if cov[1] != 1.0 || cov[3] != 1.0 {
		t.Errorf("cumulative coverage = %v, want saturation at 1.0", cov)
	}
	for i := 1; i < len(cov); i++ {
		if cov[i] < cov[i-1] {
			t.Fatal("cumulative coverage must be nondecreasing")
		}
	}
}

// TestHighDiversityOneISet: rules with unique exact values in a field fit in
// a single iSet (diversity 1 → full coverage, §3.7).
func TestHighDiversityOneISet(t *testing.T) {
	rs := rules.NewRuleSet(2)
	for i := 0; i < 100; i++ {
		rs.AddAuto(rules.ExactRange(uint32(i)), rules.FullRange())
	}
	p := Build(rs, Options{})
	if len(p.ISets) != 1 || len(p.ISets[0].Positions) != 100 {
		t.Fatalf("want a single full-coverage iSet, got %d iSets", len(p.ISets))
	}
	if p.ISets[0].Field != 0 {
		t.Errorf("iSet field = %d, want 0", p.ISets[0].Field)
	}
}
