// Package iset implements the independent-set partitioning of §3.6: the
// rule-set is greedily split into iSets — groups of rules whose ranges do
// not overlap in one chosen field — plus a remainder. Each iSet can then be
// indexed by one RQ-RMI over that field; the remainder goes to an external
// classifier.
//
// The largest iSet within one field is found with the classical interval
// scheduling maximization algorithm (sort by upper bound, repeatedly pick
// the range with the smallest upper bound that does not overlap the
// previously selected one), which is optimal per field. The cross-field
// greedy choice of §3.6.1 is the paper's heuristic and is not globally
// optimal.
package iset

import (
	"sort"

	"nuevomatch/internal/rules"
)

// ISet is one independent set: rule positions (into the source rule-set)
// whose ranges are pairwise disjoint in Field.
type ISet struct {
	// Field is the dimension on which the rules do not overlap.
	Field int
	// Positions are indexes into the source rule-set's Rules slice, sorted
	// by the field's range start.
	Positions []int
	// Coverage is len(Positions) divided by the size of the original
	// rule-set (the paper's coverage metric).
	Coverage float64
}

// Partition is the outcome of the greedy decomposition.
type Partition struct {
	// ISets are ordered largest-first.
	ISets []ISet
	// Remainder holds the positions of rules not covered by any iSet.
	Remainder []int
}

// Coverage returns the fraction of rules covered by the iSets.
func (p *Partition) Coverage() float64 {
	if len(p.ISets) == 0 {
		return 0
	}
	c := 0.0
	for i := range p.ISets {
		c += p.ISets[i].Coverage
	}
	return c
}

// Options tunes Build. The zero value builds iSets until the rules are
// exhausted, discarding nothing.
type Options struct {
	// MaxISets bounds the number of iSets; 0 means unlimited. The paper
	// finds 1–2 iSets best with CutSplit/NeuroCuts remainders and 4 with
	// TupleMerge (§5.3.2).
	MaxISets int
	// MinCoverage discards candidate iSets covering less than this
	// fraction of the original rule-set; their rules join the remainder.
	// The paper uses 0.25 against CutSplit/NeuroCuts and 0.05 against
	// TupleMerge (§5.1).
	MinCoverage float64
	// Fields restricts partitioning to the given dimensions; nil means all.
	Fields []int
}

// Build runs the greedy iSet construction of §3.6.1 over the rule-set.
func Build(rs *rules.RuleSet, opt Options) *Partition {
	fields := opt.Fields
	if fields == nil {
		fields = make([]int, rs.NumFields)
		for d := range fields {
			fields[d] = d
		}
	}
	remaining := make([]int, rs.Len())
	for i := range remaining {
		remaining[i] = i
	}
	orig := float64(rs.Len())
	p := &Partition{}

	for len(remaining) > 0 {
		if opt.MaxISets > 0 && len(p.ISets) >= opt.MaxISets {
			break
		}
		bestField := -1
		var best []int
		for _, d := range fields {
			cand := largestIndependent(rs, remaining, d)
			if len(cand) > len(best) {
				best, bestField = cand, d
			}
		}
		if len(best) == 0 {
			break
		}
		cov := float64(len(best)) / orig
		if cov < opt.MinCoverage {
			break // smaller iSets would follow; merge the rest (§3.7)
		}
		p.ISets = append(p.ISets, ISet{Field: bestField, Positions: best, Coverage: cov})
		remaining = subtract(remaining, best)
	}
	p.Remainder = remaining
	return p
}

// largestIndependent returns the positions (subset of candidates) forming
// the largest set of ranges in field d that are pairwise non-overlapping,
// via interval scheduling maximization, sorted by range start.
func largestIndependent(rs *rules.RuleSet, candidates []int, d int) []int {
	if len(candidates) == 0 {
		return nil
	}
	byHi := append([]int(nil), candidates...)
	sort.Slice(byHi, func(i, j int) bool {
		a := rs.Rules[byHi[i]].Fields[d]
		b := rs.Rules[byHi[j]].Fields[d]
		if a.Hi != b.Hi {
			return a.Hi < b.Hi
		}
		if a.Lo != b.Lo {
			return a.Lo > b.Lo // narrower first: frees more room, same end
		}
		return byHi[i] < byHi[j]
	})
	out := make([]int, 0, len(byHi))
	haveLast := false
	var lastHi uint32
	for _, pos := range byHi {
		f := rs.Rules[pos].Fields[d]
		if !haveLast || f.Lo > lastHi {
			out = append(out, pos)
			lastHi = f.Hi
			haveLast = true
		}
	}
	// Already ordered by Hi and non-overlapping, hence ordered by Lo too.
	return out
}

// subtract removes the sorted-set b from a (both hold unique positions).
func subtract(a, b []int) []int {
	drop := make(map[int]struct{}, len(b))
	for _, x := range b {
		drop[x] = struct{}{}
	}
	out := a[:0]
	for _, x := range a {
		if _, gone := drop[x]; !gone {
			out = append(out, x)
		}
	}
	return out
}

// CumulativeCoverage reproduces one row of Table 2: the coverage achieved by
// the first k iSets for k = 1..maxISets, with no discarding.
func CumulativeCoverage(rs *rules.RuleSet, maxISets int) []float64 {
	p := Build(rs, Options{MaxISets: maxISets})
	out := make([]float64, maxISets)
	c := 0.0
	for k := 0; k < maxISets; k++ {
		if k < len(p.ISets) {
			c += p.ISets[k].Coverage
		}
		out[k] = c
	}
	return out
}
