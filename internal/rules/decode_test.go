package rules

import (
	"testing"
	"testing/quick"
)

func TestDecodeFiveTupleRoundTrip(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, protoRaw uint8) bool {
		proto := []uint8{protoTCP, protoUDP, protoSCTP}[protoRaw%3]
		in := FiveTuple{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: proto}
		got, err := DecodeFiveTuple(EncodeFiveTuple(in))
		return err == nil && got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodePortlessProtocol(t *testing.T) {
	in := FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 99, DstPort: 99, Proto: 1} // ICMP
	b := EncodeFiveTuple(in)
	got, err := DecodeFiveTuple(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 0 || got.DstPort != 0 {
		t.Errorf("ICMP ports = %d/%d, want 0/0", got.SrcPort, got.DstPort)
	}
	if got.Proto != 1 || got.SrcIP != 1 || got.DstIP != 2 {
		t.Errorf("decoded %+v", got)
	}
}

func TestDecodeFragmentSkipsPorts(t *testing.T) {
	b := EncodeFiveTuple(FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 80, DstPort: 443, Proto: protoTCP})
	b[7] = 5 // fragment offset 5
	got, err := DecodeFiveTuple(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 0 || got.DstPort != 0 {
		t.Error("non-first fragment must not carry ports")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"short", make([]byte, 10)},
		{"version6", append([]byte{0x65}, make([]byte, 30)...)},
		{"badIHL", append([]byte{0x41}, make([]byte, 30)...)},
		{"truncatedOptions", append([]byte{0x4f}, make([]byte, 20)...)},
	}
	for _, c := range cases {
		if _, err := DecodeFiveTuple(c.b); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	short := EncodeFiveTuple(FiveTuple{Proto: protoTCP})
	short[3] = 10 // total length < header length
	if _, err := DecodeFiveTuple(short); err == nil {
		t.Error("bad total length accepted")
	}
}

func TestDecodeEthernet(t *testing.T) {
	in := FiveTuple{SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 1234, DstPort: 80, Proto: protoTCP}
	frame := make([]byte, etherHeaderLen)
	frame[12], frame[13] = 0x08, 0x00
	frame = append(frame, EncodeFiveTuple(in)...)
	got, err := DecodeEthernetFiveTuple(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got != in {
		t.Errorf("decoded %+v, want %+v", got, in)
	}
	frame[12] = 0x86 // IPv6 EtherType
	if _, err := DecodeEthernetFiveTuple(frame); err == nil {
		t.Error("non-IPv4 EtherType accepted")
	}
	if _, err := DecodeEthernetFiveTuple(frame[:5]); err == nil {
		t.Error("short frame accepted")
	}
}

func TestSplitPrefix64(t *testing.T) {
	mac := uint64(0x0011223344556677)
	// /0: both chunks wild.
	r := SplitPrefix64(mac, 0)
	if !r[0].IsFull() || !r[1].IsFull() {
		t.Errorf("/0 = %v", r)
	}
	// /24: high chunk prefixed, low wild.
	r = SplitPrefix64(mac, 24)
	if got := PrefixRange(0x00112233, 24); r[0] != got || !r[1].IsFull() {
		t.Errorf("/24 = %v", r)
	}
	// /48 (MAC OUI+NIC): high exact, low /16.
	r = SplitPrefix64(mac, 48)
	if r[0] != ExactRange(0x00112233) || r[1] != PrefixRange(0x44556677, 16) {
		t.Errorf("/48 = %v", r)
	}
	// /64: both exact; clamping beyond 64.
	r = SplitPrefix64(mac, 99)
	if r[0] != ExactRange(0x00112233) || r[1] != ExactRange(0x44556677) {
		t.Errorf("/64 = %v", r)
	}
	// Membership property: v' matches the split ranges iff it shares the
	// prefix.
	for _, plen := range []int{0, 13, 32, 40, 64} {
		ranges := SplitPrefix64(mac, plen)
		probe := func(v uint64) bool {
			c := SplitField64(v)
			return ranges[0].Contains(c[0]) && ranges[1].Contains(c[1])
		}
		if !probe(mac) {
			t.Errorf("/%d: value does not match its own prefix", plen)
		}
		if plen > 0 {
			flipped := mac ^ (1 << (64 - uint(plen))) // flip the last prefix bit
			if probe(flipped) {
				t.Errorf("/%d: flipped prefix bit still matches", plen)
			}
		}
	}
}

func TestSplitPrefix128(t *testing.T) {
	words := [4]uint32{0x20010db8, 0x85a30000, 0x00008a2e, 0x03707334}
	r := SplitPrefix128(words, 0)
	for i := range r {
		if !r[i].IsFull() {
			t.Errorf("/0 chunk %d = %v", i, r[i])
		}
	}
	r = SplitPrefix128(words, 48) // typical IPv6 site prefix
	if r[0] != ExactRange(words[0]) || r[1] != PrefixRange(words[1], 16) ||
		!r[2].IsFull() || !r[3].IsFull() {
		t.Errorf("/48 = %v", r)
	}
	r = SplitPrefix128(words, 200) // clamped to /128
	for i := range r {
		if r[i] != ExactRange(words[i]) {
			t.Errorf("/128 chunk %d = %v", i, r[i])
		}
	}
	if SplitField128(words) != words {
		t.Error("SplitField128 must be the identity on words")
	}
}
