package rules

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseFormatIPv4(t *testing.T) {
	tests := []struct {
		s string
		v uint32
	}{
		{"0.0.0.0", 0},
		{"255.255.255.255", 0xffffffff},
		{"10.10.3.100", 0x0a0a0364},
		{"192.168.1.1", 0xc0a80101},
	}
	for _, tc := range tests {
		got, err := ParseIPv4(tc.s)
		if err != nil {
			t.Fatalf("ParseIPv4(%q): %v", tc.s, err)
		}
		if got != tc.v {
			t.Errorf("ParseIPv4(%q) = %#x, want %#x", tc.s, got, tc.v)
		}
		if back := FormatIPv4(tc.v); back != tc.s {
			t.Errorf("FormatIPv4(%#x) = %q, want %q", tc.v, back, tc.s)
		}
	}
	for _, bad := range []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1..2.3"} {
		if _, err := ParseIPv4(bad); err == nil {
			t.Errorf("ParseIPv4(%q) should fail", bad)
		}
	}
}

func TestFiveTuplePacket(t *testing.T) {
	ft := FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 5}
	want := Packet{1, 2, 3, 4, 5}
	got := ft.Packet()
	if len(got) != len(want) {
		t.Fatalf("Packet length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Packet[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	buf := make(Packet, 0, 5)
	got2 := ft.AppendTo(buf)
	for i := range want {
		if got2[i] != want[i] {
			t.Errorf("AppendTo[%d] = %d, want %d", i, got2[i], want[i])
		}
	}
}

func TestClassBenchRoundTrip(t *testing.T) {
	rs := NewRuleSet(NumFiveTupleFields)
	rs.AddAuto(PrefixRange(0x0a0a0000, 16), PrefixRange(0, 0), Range{0, 65535}, Range{80, 80}, ExactRange(6))
	rs.AddAuto(PrefixRange(0x0a0a0100, 24), PrefixRange(0xc0a80000, 16), Range{1024, 65535}, Range{53, 53}, ExactRange(17))
	rs.AddAuto(ExactRange(0x0a0a0364), PrefixRange(0, 0), Range{19, 19}, Range{0, 65535}, FullRange())

	var buf bytes.Buffer
	if err := WriteClassBench(&buf, rs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadClassBench(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != rs.Len() {
		t.Fatalf("round-trip length %d, want %d", back.Len(), rs.Len())
	}
	for i := range rs.Rules {
		for d := 0; d < NumFiveTupleFields; d++ {
			if rs.Rules[i].Fields[d] != back.Rules[i].Fields[d] {
				t.Errorf("rule %d field %d: %v != %v", i, d, rs.Rules[i].Fields[d], back.Rules[i].Fields[d])
			}
		}
	}
}

func TestReadClassBenchRejectsGarbage(t *testing.T) {
	cases := []string{
		"no-at-sign 1 2 3",
		"@1.2.3.4/33 0.0.0.0/0 0 : 0 0 : 0 0x06/0xff",
		"@1.2.3.4/8 0.0.0.0/0 5 : 1 0 : 0 0x06/0xff", // inverted port range
		"@1.2.3.4/8 0.0.0.0/0 0 x 1 0 : 0 0x06/0xff", // bad separator
		"@1.2.3.4/8 0.0.0.0/0 0 : 1 0 : 0 0x06/0x0f", // unsupported mask
		"@1.2.3.4/8 0.0.0.0/0 0 : 1 0 : 0",           // too few tokens
	}
	for _, c := range cases {
		if _, err := ReadClassBench(strings.NewReader(c)); err == nil {
			t.Errorf("ReadClassBench(%q) should fail", c)
		}
	}
}

func TestReadClassBenchSkipsCommentsAndBlank(t *testing.T) {
	in := "# comment\n\n@1.2.3.4/32\t0.0.0.0/0\t0 : 65535\t80 : 80\t0x06/0xff\n"
	rs, err := ReadClassBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 {
		t.Fatalf("got %d rules, want 1", rs.Len())
	}
	if rs.Rules[0].Fields[FieldDstPort] != (Range{80, 80}) {
		t.Errorf("dst port = %v, want 80-80", rs.Rules[0].Fields[FieldDstPort])
	}
}

func TestWriteClassBenchRejectsNonPrefix(t *testing.T) {
	rs := NewRuleSet(NumFiveTupleFields)
	rs.AddAuto(Range{1, 6}, FullRange(), FullRange(), FullRange(), FullRange())
	var buf bytes.Buffer
	if err := WriteClassBench(&buf, rs); err == nil {
		t.Error("WriteClassBench should reject non-prefix IP ranges")
	}
	rs2 := NewRuleSet(3)
	if err := WriteClassBench(&buf, rs2); err == nil {
		t.Error("WriteClassBench should reject non-5-field sets")
	}
}
