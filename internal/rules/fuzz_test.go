package rules

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadClassBench feeds arbitrary text to the rule-file parser: it must
// never panic, and every accepted rule-set must survive a write/read round
// trip unchanged.
func FuzzReadClassBench(f *testing.F) {
	f.Add("@1.2.3.4/32\t0.0.0.0/0\t0 : 65535\t80 : 80\t0x06/0xff")
	f.Add("# comment\n\n@10.0.0.0/8 10.0.0.0/8 0 : 0 1 : 2 0x11/0xff extra tokens")
	f.Add("@256.0.0.0/8 0.0.0.0/0 0 : 0 0 : 0 0x00/0x00")
	f.Add("@1.2.3.4/32")
	f.Add(strings.Repeat("@1.1.1.1/32 2.2.2.2/32 1 : 1 2 : 2 0x06/0xff\n", 5))
	f.Fuzz(func(t *testing.T, input string) {
		rs, err := ReadClassBench(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := rs.Validate(); err != nil {
			t.Fatalf("parser accepted an invalid rule-set: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteClassBench(&buf, rs); err != nil {
			t.Fatalf("accepted rule-set failed to serialize: %v", err)
		}
		back, err := ReadClassBench(&buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if back.Len() != rs.Len() {
			t.Fatalf("round trip changed rule count: %d != %d", back.Len(), rs.Len())
		}
		for i := range rs.Rules {
			for d := range rs.Rules[i].Fields {
				if rs.Rules[i].Fields[d] != back.Rules[i].Fields[d] {
					t.Fatalf("round trip changed rule %d field %d", i, d)
				}
			}
		}
	})
}

// FuzzDecodeFiveTuple throws arbitrary bytes at the packet decoder: no
// panics, and any accepted tuple must re-encode to something the decoder
// accepts identically.
func FuzzDecodeFiveTuple(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeFiveTuple(FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}))
	long := append(EncodeFiveTuple(FiveTuple{Proto: 17}), make([]byte, 64)...)
	f.Add(long)
	f.Fuzz(func(t *testing.T, data []byte) {
		ft, err := DecodeFiveTuple(data)
		if err != nil {
			return
		}
		again, err := DecodeFiveTuple(EncodeFiveTuple(ft))
		if err != nil {
			t.Fatalf("re-encode of accepted tuple rejected: %v", err)
		}
		// Ports survive only for port-carrying protocols; IPs and proto
		// always survive.
		if again.SrcIP != ft.SrcIP || again.DstIP != ft.DstIP || again.Proto != ft.Proto {
			t.Fatalf("re-decode changed tuple: %+v != %+v", again, ft)
		}
	})
}

// FuzzParseIPv4 checks parser robustness and print/parse agreement.
func FuzzParseIPv4(f *testing.F) {
	f.Add("1.2.3.4")
	f.Add("255.255.255.255")
	f.Add("")
	f.Add("999.1.1.1")
	f.Add("1.2.3.4.5")
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseIPv4(s)
		if err != nil {
			return
		}
		back, err := ParseIPv4(FormatIPv4(v))
		if err != nil || back != v {
			t.Fatalf("format/parse disagree for %q: %v", s, err)
		}
	})
}
