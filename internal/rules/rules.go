// Package rules defines the rule, packet, and rule-set model shared by every
// classifier in this repository, together with the classifier interfaces.
//
// The model follows §2.1 of the paper: a rule is a hyper-cube in a
// d-dimensional space of non-negative integers, a packet is a point, and a
// packet matches a rule when every coordinate falls inside the rule's range
// in that dimension. When several rules match, the one with the numerically
// smallest Priority wins (the paper's "priority 1 (highest)" convention).
//
// Fields are 32-bit values. Longer fields (IPv6, MAC) are split into 32-bit
// chunks, the solution adopted by the paper in §4 "Handling long fields".
package rules

import (
	"fmt"
	"math"
	"sort"
)

// MaxValue is the largest value a field can take.
const MaxValue = math.MaxUint32

// Range is an inclusive interval [Lo, Hi] over a 32-bit field.
// A wildcard is Range{0, MaxValue}; an exact match has Lo == Hi.
type Range struct {
	Lo, Hi uint32
}

// FullRange matches every value of a field.
func FullRange() Range { return Range{0, MaxValue} }

// ExactRange matches a single value.
func ExactRange(v uint32) Range { return Range{v, v} }

// PrefixRange returns the range covered by value/prefixLen, e.g.
// PrefixRange(0x0a0a0000, 16) is [10.10.0.0, 10.10.255.255].
// prefixLen must be in [0, 32].
func PrefixRange(value uint32, prefixLen int) Range {
	if prefixLen <= 0 {
		return FullRange()
	}
	if prefixLen >= 32 {
		return ExactRange(value)
	}
	mask := uint32(math.MaxUint32) << (32 - uint(prefixLen))
	lo := value & mask
	return Range{lo, lo | ^mask}
}

// Contains reports whether v falls inside the range.
func (r Range) Contains(v uint32) bool { return r.Lo <= v && v <= r.Hi }

// Overlaps reports whether the two ranges share at least one value.
func (r Range) Overlaps(o Range) bool { return r.Lo <= o.Hi && o.Lo <= r.Hi }

// Covers reports whether r fully contains o.
func (r Range) Covers(o Range) bool { return r.Lo <= o.Lo && o.Hi <= r.Hi }

// IsFull reports whether the range is a full wildcard.
func (r Range) IsFull() bool { return r.Lo == 0 && r.Hi == MaxValue }

// IsExact reports whether the range matches exactly one value.
func (r Range) IsExact() bool { return r.Lo == r.Hi }

// Size returns the number of values in the range (up to 2^32).
func (r Range) Size() uint64 { return uint64(r.Hi) - uint64(r.Lo) + 1 }

// Valid reports whether Lo <= Hi.
func (r Range) Valid() bool { return r.Lo <= r.Hi }

// CommonPrefixLen returns the length of the longest prefix that covers the
// whole range. It is the number of leading bits shared by Lo and Hi. The
// covering prefix may be strictly larger than the range unless IsPrefix.
func (r Range) CommonPrefixLen() int {
	x := r.Lo ^ r.Hi
	n := 0
	for n < 32 && x&0x80000000 == 0 {
		n++
		x <<= 1
	}
	return n
}

// IsPrefix reports whether the range is exactly a prefix, returning the
// prefix length when it is. A full wildcard is the /0 prefix.
func (r Range) IsPrefix() (int, bool) {
	n := r.CommonPrefixLen()
	if PrefixRange(r.Lo, n) == r {
		return n, true
	}
	return 0, false
}

func (r Range) String() string {
	if r.IsFull() {
		return "*"
	}
	if r.IsExact() {
		return fmt.Sprintf("%d", r.Lo)
	}
	return fmt.Sprintf("%d-%d", r.Lo, r.Hi)
}

// Packet is a point in the d-dimensional field space; Packet[i] is the value
// of field i. Classifiers must not retain or mutate the slice.
type Packet []uint32

// Rule is a multi-field matching rule.
type Rule struct {
	// ID uniquely identifies the rule within its RuleSet. It is preserved
	// across partitioning, so classifiers built on a subset can report
	// matches in terms of the original set.
	ID int
	// Priority breaks ties between overlapping rules: the numerically
	// smallest priority wins, as in Figure 2 of the paper.
	Priority int32
	// Fields holds one range per dimension.
	Fields []Range
}

// Matches reports whether the packet falls inside the rule's hyper-cube.
func (r *Rule) Matches(p Packet) bool {
	if len(p) < len(r.Fields) {
		return false
	}
	for i, f := range r.Fields {
		v := p[i]
		if v < f.Lo || v > f.Hi {
			return false
		}
	}
	return true
}

// Overlaps reports whether two rules overlap in every dimension, i.e. some
// packet could match both.
func (r *Rule) Overlaps(o *Rule) bool {
	if len(r.Fields) != len(o.Fields) {
		return false
	}
	for i := range r.Fields {
		if !r.Fields[i].Overlaps(o.Fields[i]) {
			return false
		}
	}
	return true
}

// RuleSet is an ordered collection of rules over a fixed number of fields.
type RuleSet struct {
	NumFields int
	Rules     []Rule
}

// NewRuleSet returns an empty rule-set with the given dimensionality.
func NewRuleSet(numFields int) *RuleSet {
	return &RuleSet{NumFields: numFields}
}

// Add appends a rule, assigning ID and Priority from its position when they
// are unset (ID < 0 is not allowed; zero values are auto-filled only through
// AddAuto).
func (rs *RuleSet) Add(r Rule) {
	rs.Rules = append(rs.Rules, r)
}

// AddAuto appends a rule assigning the next sequential ID and priority
// (earlier rules win, mirroring typical ACL semantics).
func (rs *RuleSet) AddAuto(fields ...Range) *Rule {
	r := Rule{ID: len(rs.Rules), Priority: int32(len(rs.Rules) + 1), Fields: fields}
	rs.Rules = append(rs.Rules, r)
	return &rs.Rules[len(rs.Rules)-1]
}

// Len returns the number of rules.
func (rs *RuleSet) Len() int { return len(rs.Rules) }

// Validate checks structural invariants: every rule has NumFields valid
// ranges and IDs are unique.
func (rs *RuleSet) Validate() error {
	seen := make(map[int]struct{}, len(rs.Rules))
	for i := range rs.Rules {
		r := &rs.Rules[i]
		if len(r.Fields) != rs.NumFields {
			return fmt.Errorf("rules: rule %d has %d fields, want %d", r.ID, len(r.Fields), rs.NumFields)
		}
		for d, f := range r.Fields {
			if !f.Valid() {
				return fmt.Errorf("rules: rule %d field %d has Lo %d > Hi %d", r.ID, d, f.Lo, f.Hi)
			}
		}
		if _, dup := seen[r.ID]; dup {
			return fmt.Errorf("rules: duplicate rule ID %d", r.ID)
		}
		seen[r.ID] = struct{}{}
	}
	return nil
}

// MatchLinear is the reference classifier: a full scan returning the index
// (position in rs.Rules) of the highest-priority matching rule, or -1.
// Every other classifier in the repository is tested against it.
func (rs *RuleSet) MatchLinear(p Packet) int {
	best := -1
	var bestPrio int32 = math.MaxInt32
	for i := range rs.Rules {
		r := &rs.Rules[i]
		if r.Priority < bestPrio && r.Matches(p) {
			best = i
			bestPrio = r.Priority
		}
	}
	return best
}

// MatchID is like MatchLinear but returns the winning rule's ID instead of
// its position, matching the Classifier contract. It is the ground truth
// every classifier is tested against.
func (rs *RuleSet) MatchID(p Packet) int {
	if i := rs.MatchLinear(p); i >= 0 {
		return rs.Rules[i].ID
	}
	return -1
}

// IndexByID returns a map from rule ID to position in rs.Rules.
func (rs *RuleSet) IndexByID() map[int]int {
	m := make(map[int]int, len(rs.Rules))
	for i := range rs.Rules {
		m[rs.Rules[i].ID] = i
	}
	return m
}

// Subset returns a new rule-set containing the rules at the given positions.
// IDs and priorities are preserved.
func (rs *RuleSet) Subset(positions []int) *RuleSet {
	out := NewRuleSet(rs.NumFields)
	out.Rules = make([]Rule, 0, len(positions))
	for _, i := range positions {
		out.Rules = append(out.Rules, rs.Rules[i])
	}
	return out
}

// Clone returns a deep copy of the rule-set.
func (rs *RuleSet) Clone() *RuleSet {
	out := NewRuleSet(rs.NumFields)
	out.Rules = make([]Rule, len(rs.Rules))
	for i := range rs.Rules {
		out.Rules[i] = rs.Rules[i]
		out.Rules[i].Fields = append([]Range(nil), rs.Rules[i].Fields...)
	}
	return out
}

// SortByPriority orders rules by ascending priority value (highest priority
// first); ties broken by ID for determinism.
func (rs *RuleSet) SortByPriority() {
	sort.SliceStable(rs.Rules, func(i, j int) bool {
		if rs.Rules[i].Priority != rs.Rules[j].Priority {
			return rs.Rules[i].Priority < rs.Rules[j].Priority
		}
		return rs.Rules[i].ID < rs.Rules[j].ID
	})
}

// MaxPriorityValue returns the largest priority value present, or 0 for an
// empty set. Useful for sizing early-termination sentinels.
func (rs *RuleSet) MaxPriorityValue() int32 {
	var m int32
	for i := range rs.Rules {
		if rs.Rules[i].Priority > m {
			m = rs.Rules[i].Priority
		}
	}
	return m
}

// FieldDiversity computes the rule-set diversity of field d (§3.7): the
// number of unique values (for exact-match fields) or unique ranges in the
// field, divided by the number of rules. High diversity means the field can
// carry a large iSet.
func (rs *RuleSet) FieldDiversity(d int) float64 {
	if len(rs.Rules) == 0 {
		return 0
	}
	uniq := make(map[Range]struct{}, len(rs.Rules))
	for i := range rs.Rules {
		uniq[rs.Rules[i].Fields[d]] = struct{}{}
	}
	return float64(len(uniq)) / float64(len(rs.Rules))
}

// FieldStabbing computes, for field d, the maximum number of rule ranges
// that cover a single point. It upper-bounds the number of iSets needed when
// partitioning on this field alone and lower-bounds rule-set centrality.
func (rs *RuleSet) FieldStabbing(d int) int {
	type ev struct {
		x     uint64
		delta int
	}
	events := make([]ev, 0, 2*len(rs.Rules))
	for i := range rs.Rules {
		f := rs.Rules[i].Fields[d]
		events = append(events, ev{uint64(f.Lo), +1}, ev{uint64(f.Hi) + 1, -1})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].x != events[j].x {
			return events[i].x < events[j].x
		}
		return events[i].delta < events[j].delta // close before open at same x
	})
	cur, max := 0, 0
	for _, e := range events {
		cur += e.delta
		if cur > max {
			max = cur
		}
	}
	return max
}

// Centrality lower-bounds the rule-set centrality of §3.7 — the maximal
// number of pairwise-overlapping rules (all sharing a common point, since
// axis-aligned boxes pairwise intersecting in each dimension have a common
// point per-dimension by Helly's theorem in 1D). It is computed exactly by a
// sweep for 1-dimensional sets and bounded by the minimum per-field stabbing
// number otherwise.
func (rs *RuleSet) Centrality() int {
	if rs.NumFields == 0 || len(rs.Rules) == 0 {
		return 0
	}
	if rs.NumFields == 1 {
		return rs.FieldStabbing(0)
	}
	best := len(rs.Rules)
	for d := 0; d < rs.NumFields; d++ {
		if s := rs.FieldStabbing(d); s < best {
			best = s
		}
	}
	return best
}
