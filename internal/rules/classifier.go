package rules

// Classifier is the minimal lookup contract shared by every packet
// classification algorithm in the repository.
//
// Lookup returns the ID of the highest-priority matching rule, or -1 when no
// rule matches. IDs — not positions — are returned because they remain
// stable when a rule-set is partitioned into subsets (iSets, remainder) and
// under online updates. Implementations must be safe for concurrent Lookup
// calls once built.
type Classifier interface {
	// Name identifies the algorithm, e.g. "tuplemerge".
	Name() string
	// Lookup classifies one packet.
	Lookup(p Packet) int
	// MemoryFootprint returns the size in bytes of the lookup index
	// structures — models, trees, hash tables — excluding the rules
	// themselves, matching the accounting of §5.2.1 of the paper.
	MemoryFootprint() int
}

// BoundedClassifier supports the early-termination optimization of §4: the
// caller passes the best (numerically smallest) priority found so far and
// the classifier may prune any part of its index that cannot beat it.
type BoundedClassifier interface {
	Classifier
	// LookupWithBound behaves like Lookup but may return -1 early when no
	// rule with Priority < bestPrio can match.
	LookupWithBound(p Packet, bestPrio int32) int
}

// BatchBoundedClassifier is implemented by classifiers that can serve a
// whole batch of bounded lookups in one call, amortizing per-lookup costs
// (lock acquisition, dispatch) across the batch. NuevoMatch's batched hot
// path uses it to query the remainder once per chunk instead of once per
// packet.
type BatchBoundedClassifier interface {
	BoundedClassifier
	// LookupBatchWithBound classifies pkts[i] under bounds[i], writing the
	// winning rule ID (or -1) into out[i]. out and bounds must have at
	// least len(pkts) entries; bounds is read-only input. Results equal
	// calling LookupWithBound per packet against the same classifier state.
	LookupBatchWithBound(pkts []Packet, bounds []int32, out []int)
}

// Stringer-free sentinel returned by Lookup when nothing matches.
const NoMatch = -1

// FrozenClassifier is a compiled, immutable classifier: a snapshot of an
// updatable classifier's contents flattened into contiguous arrays. All
// methods are safe for unsynchronized concurrent use — the structure is
// never mutated after Freeze returns — and perform no allocation, which is
// what lets an RCU-published engine snapshot own one and serve lookups with
// zero locks on the hot path.
//
// Online updates that happened after the freeze are layered on by the
// caller: skip (sorted ascending rule IDs) masks rules that were deleted
// from the frozen contents, and rules added since are matched by a separate
// overlay scan outside the frozen structure.
type FrozenClassifier interface {
	// Len returns the number of rules compiled into the frozen form.
	Len() int
	// MemoryFootprint mirrors Classifier.MemoryFootprint for the compiled
	// arrays.
	MemoryFootprint() int
	// Lookup returns the highest-priority rule with Priority < bestPrio
	// matching p, ignoring rules whose IDs appear in skip, or -1.
	//
	//nm:hotpath
	Lookup(p Packet, bestPrio int32, skip []int) int
	// LookupBatch classifies pkts[i] under bounds[i]: wherever some rule
	// beats bounds[i] it writes the winner into out[i] and lowers bounds[i]
	// to the winner's priority; entries it cannot improve are left
	// untouched (callers pre-fill out with their current best). bounds is
	// caller-owned scratch. Results equal per-packet Lookup.
	//
	//nm:hotpath
	LookupBatch(pkts []Packet, bounds []int32, skip []int, out []int)
}

// BatchPrefetcher is optionally implemented by a FrozenClassifier whose
// probe path is dominated by cache misses on large hash arrays. The batched
// engine calls PrefetchBatch for a chunk of packets BEFORE running RQ-RMI
// inference on that chunk, so the memory system pulls the classifier's
// bucket lines toward L1 underneath the inference arithmetic and the
// subsequent LookupBatch probes hit warm cache. Implementations must not
// allocate, must be safe for unsynchronized concurrent use, and must treat
// the call as a pure hint (correctness never depends on it) — the same
// hot-path contract as the frozen lookups, so nmlint trusts calls through
// it (//nm:hotpath) and the runtime zero-alloc guards hold implementations
// to it.
//
//nm:hotpath
type BatchPrefetcher interface {
	PrefetchBatch(pkts []Packet)
}

// Freezable is implemented by updatable classifiers that can compile their
// current contents into a FrozenClassifier. NuevoMatch freezes its
// remainder into each published snapshot so the steady-state lookup path
// never takes the remainder's write-side lock.
type Freezable interface {
	Classifier
	// Freeze compiles the current contents. The result is immutable and
	// detached: later Insert/Delete calls on the receiver do not affect it.
	Freeze() FrozenClassifier
}

// Updatable is implemented by classifiers that support online rule updates
// (§3.9). Among the baselines only TupleMerge is designed for fast updates;
// the linear classifier implements it trivially.
type Updatable interface {
	Classifier
	// Insert adds a rule. The rule's ID must be unique in the classifier.
	Insert(r Rule) error
	// Delete removes the rule with the given ID.
	Delete(id int) error
}

// Builder constructs a classifier over a rule-set. The returned classifier
// reports matches as positions in rs.Rules.
type Builder func(rs *RuleSet) (Classifier, error)
