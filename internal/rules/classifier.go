package rules

// Classifier is the minimal lookup contract shared by every packet
// classification algorithm in the repository.
//
// Lookup returns the ID of the highest-priority matching rule, or -1 when no
// rule matches. IDs — not positions — are returned because they remain
// stable when a rule-set is partitioned into subsets (iSets, remainder) and
// under online updates. Implementations must be safe for concurrent Lookup
// calls once built.
type Classifier interface {
	// Name identifies the algorithm, e.g. "tuplemerge".
	Name() string
	// Lookup classifies one packet.
	Lookup(p Packet) int
	// MemoryFootprint returns the size in bytes of the lookup index
	// structures — models, trees, hash tables — excluding the rules
	// themselves, matching the accounting of §5.2.1 of the paper.
	MemoryFootprint() int
}

// BoundedClassifier supports the early-termination optimization of §4: the
// caller passes the best (numerically smallest) priority found so far and
// the classifier may prune any part of its index that cannot beat it.
type BoundedClassifier interface {
	Classifier
	// LookupWithBound behaves like Lookup but may return -1 early when no
	// rule with Priority < bestPrio can match.
	LookupWithBound(p Packet, bestPrio int32) int
}

// BatchBoundedClassifier is implemented by classifiers that can serve a
// whole batch of bounded lookups in one call, amortizing per-lookup costs
// (lock acquisition, dispatch) across the batch. NuevoMatch's batched hot
// path uses it to query the remainder once per chunk instead of once per
// packet.
type BatchBoundedClassifier interface {
	BoundedClassifier
	// LookupBatchWithBound classifies pkts[i] under bounds[i], writing the
	// winning rule ID (or -1) into out[i]. out and bounds must have at
	// least len(pkts) entries; bounds is read-only input. Results equal
	// calling LookupWithBound per packet against the same classifier state.
	LookupBatchWithBound(pkts []Packet, bounds []int32, out []int)
}

// Stringer-free sentinel returned by Lookup when nothing matches.
const NoMatch = -1

// Updatable is implemented by classifiers that support online rule updates
// (§3.9). Among the baselines only TupleMerge is designed for fast updates;
// the linear classifier implements it trivially.
type Updatable interface {
	Classifier
	// Insert adds a rule. The rule's ID must be unique in the classifier.
	Insert(r Rule) error
	// Delete removes the rule with the given ID.
	Delete(id int) error
}

// Builder constructs a classifier over a rule-set. The returned classifier
// reports matches as positions in rs.Rules.
type Builder func(rs *RuleSet) (Classifier, error)
