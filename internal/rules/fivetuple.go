package rules

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Field indices for the classic 5-tuple layout used by ClassBench and by the
// paper's evaluation (§5.1.1): source/destination IPv4 address,
// source/destination transport port, protocol.
const (
	FieldSrcIP = iota
	FieldDstIP
	FieldSrcPort
	FieldDstPort
	FieldProto
	NumFiveTupleFields
)

// FiveTuple is the metadata of one packet in a 5-field classifier.
type FiveTuple struct {
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
	Proto            uint8
}

// Packet converts the tuple to the generic packet representation.
func (t FiveTuple) Packet() Packet {
	return Packet{t.SrcIP, t.DstIP, uint32(t.SrcPort), uint32(t.DstPort), uint32(t.Proto)}
}

// AppendTo appends the tuple's field values to dst, reusing its storage.
// It is the allocation-free alternative to Packet for hot loops.
func (t FiveTuple) AppendTo(dst Packet) Packet {
	return append(dst, t.SrcIP, t.DstIP, uint32(t.SrcPort), uint32(t.DstPort), uint32(t.Proto))
}

// ParseIPv4 parses dotted-quad notation into a big-endian uint32.
func ParseIPv4(s string) (uint32, error) {
	var parts [4]uint32
	n := 0
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '.' {
			if n == 4 {
				return 0, fmt.Errorf("rules: invalid IPv4 %q", s)
			}
			v, err := strconv.ParseUint(s[start:i], 10, 8)
			if err != nil {
				return 0, fmt.Errorf("rules: invalid IPv4 %q: %v", s, err)
			}
			parts[n] = uint32(v)
			n++
			start = i + 1
		}
	}
	if n != 4 {
		return 0, fmt.Errorf("rules: invalid IPv4 %q", s)
	}
	return parts[0]<<24 | parts[1]<<16 | parts[2]<<8 | parts[3], nil
}

// FormatIPv4 renders a big-endian uint32 in dotted-quad notation.
func FormatIPv4(v uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", v>>24&0xff, v>>16&0xff, v>>8&0xff, v&0xff)
}

// WriteClassBench writes a 5-field rule-set in the classic ClassBench filter
// format, one rule per line:
//
//	@sip/plen dip/plen sport_lo : sport_hi dport_lo : dport_hi proto/mask
//
// Non-prefix IP ranges cannot be represented in this format and cause an
// error; the generators in this repository only emit prefix IP fields.
func WriteClassBench(w io.Writer, rs *RuleSet) error {
	if rs.NumFields != NumFiveTupleFields {
		return fmt.Errorf("rules: ClassBench format requires 5 fields, got %d", rs.NumFields)
	}
	bw := bufio.NewWriter(w)
	for i := range rs.Rules {
		r := &rs.Rules[i]
		sipLen, ok := r.Fields[FieldSrcIP].IsPrefix()
		if !ok {
			return fmt.Errorf("rules: rule %d: source IP range %v is not a prefix", r.ID, r.Fields[FieldSrcIP])
		}
		dipLen, ok := r.Fields[FieldDstIP].IsPrefix()
		if !ok {
			return fmt.Errorf("rules: rule %d: destination IP range %v is not a prefix", r.ID, r.Fields[FieldDstIP])
		}
		proto := r.Fields[FieldProto]
		protoMask := 0xff
		if proto.IsFull() {
			protoMask = 0
		} else if !proto.IsExact() {
			return fmt.Errorf("rules: rule %d: protocol range %v is neither exact nor wildcard", r.ID, proto)
		}
		_, err := fmt.Fprintf(bw, "@%s/%d\t%s/%d\t%d : %d\t%d : %d\t0x%02x/0x%02x\n",
			FormatIPv4(r.Fields[FieldSrcIP].Lo), sipLen,
			FormatIPv4(r.Fields[FieldDstIP].Lo), dipLen,
			r.Fields[FieldSrcPort].Lo, r.Fields[FieldSrcPort].Hi,
			r.Fields[FieldDstPort].Lo, r.Fields[FieldDstPort].Hi,
			proto.Lo, protoMask)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadClassBench parses the ClassBench filter format written by
// WriteClassBench. Rules are assigned sequential IDs and priorities in file
// order (first rule wins), the convention used by ClassBench consumers.
func ReadClassBench(r io.Reader) (*RuleSet, error) {
	rs := NewRuleSet(NumFiveTupleFields)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "@") {
			return nil, fmt.Errorf("rules: line %d: missing leading '@'", lineNo)
		}
		fields := strings.Fields(line[1:])
		// Expected: sip/len dip/len slo : shi dlo : dhi proto/mask [extra...]
		if len(fields) < 9 {
			return nil, fmt.Errorf("rules: line %d: want at least 9 tokens, got %d", lineNo, len(fields))
		}
		sip, err := parsePrefix(fields[0])
		if err != nil {
			return nil, fmt.Errorf("rules: line %d: %v", lineNo, err)
		}
		dip, err := parsePrefix(fields[1])
		if err != nil {
			return nil, fmt.Errorf("rules: line %d: %v", lineNo, err)
		}
		sport, err := parsePortRange(fields[2], fields[3], fields[4])
		if err != nil {
			return nil, fmt.Errorf("rules: line %d: %v", lineNo, err)
		}
		dport, err := parsePortRange(fields[5], fields[6], fields[7])
		if err != nil {
			return nil, fmt.Errorf("rules: line %d: %v", lineNo, err)
		}
		proto, err := parseProto(fields[8])
		if err != nil {
			return nil, fmt.Errorf("rules: line %d: %v", lineNo, err)
		}
		rs.AddAuto(sip, dip, sport, dport, proto)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rs, nil
}

func parsePrefix(s string) (Range, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Range{}, fmt.Errorf("invalid prefix %q", s)
	}
	ip, err := ParseIPv4(s[:slash])
	if err != nil {
		return Range{}, err
	}
	plen, err := strconv.Atoi(s[slash+1:])
	if err != nil || plen < 0 || plen > 32 {
		return Range{}, fmt.Errorf("invalid prefix length in %q", s)
	}
	return PrefixRange(ip, plen), nil
}

func parsePortRange(lo, colon, hi string) (Range, error) {
	if colon != ":" {
		return Range{}, fmt.Errorf("invalid port range separator %q", colon)
	}
	l, err := strconv.ParseUint(lo, 10, 16)
	if err != nil {
		return Range{}, fmt.Errorf("invalid port %q", lo)
	}
	h, err := strconv.ParseUint(hi, 10, 16)
	if err != nil {
		return Range{}, fmt.Errorf("invalid port %q", hi)
	}
	if l > h {
		return Range{}, fmt.Errorf("port range %s:%s inverted", lo, hi)
	}
	return Range{uint32(l), uint32(h)}, nil
}

func parseProto(s string) (Range, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Range{}, fmt.Errorf("invalid protocol %q", s)
	}
	val, err := strconv.ParseUint(strings.TrimPrefix(s[:slash], "0x"), 16, 8)
	if err != nil {
		return Range{}, fmt.Errorf("invalid protocol value %q", s)
	}
	mask, err := strconv.ParseUint(strings.TrimPrefix(s[slash+1:], "0x"), 16, 8)
	if err != nil {
		return Range{}, fmt.Errorf("invalid protocol mask %q", s)
	}
	if mask == 0 {
		return FullRange(), nil
	}
	if mask != 0xff {
		return Range{}, fmt.Errorf("unsupported protocol mask 0x%02x", mask)
	}
	return ExactRange(uint32(val)), nil
}
