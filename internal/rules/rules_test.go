package rules

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPrefixRange(t *testing.T) {
	tests := []struct {
		value uint32
		plen  int
		want  Range
	}{
		{0, 0, Range{0, math.MaxUint32}},
		{0xffffffff, 0, Range{0, math.MaxUint32}},
		{0x0a0a0000, 16, Range{0x0a0a0000, 0x0a0affff}},
		{0x0a0a0100, 24, Range{0x0a0a0100, 0x0a0a01ff}},
		{0x0a0a0364, 32, Range{0x0a0a0364, 0x0a0a0364}},
		{0x0a0a03ff, 24, Range{0x0a0a0300, 0x0a0a03ff}},
		{0x80000000, 1, Range{0x80000000, 0xffffffff}},
	}
	for _, tc := range tests {
		if got := PrefixRange(tc.value, tc.plen); got != tc.want {
			t.Errorf("PrefixRange(%#x, %d) = %v, want %v", tc.value, tc.plen, got, tc.want)
		}
	}
}

func TestRangePredicates(t *testing.T) {
	r := Range{10, 20}
	if !r.Contains(10) || !r.Contains(20) || !r.Contains(15) {
		t.Error("Contains should include boundaries and interior")
	}
	if r.Contains(9) || r.Contains(21) {
		t.Error("Contains should exclude values outside")
	}
	if !r.Overlaps(Range{20, 30}) || !r.Overlaps(Range{0, 10}) || !r.Overlaps(Range{12, 13}) {
		t.Error("Overlaps should detect boundary touch and containment")
	}
	if r.Overlaps(Range{21, 30}) || r.Overlaps(Range{0, 9}) {
		t.Error("Overlaps should reject disjoint ranges")
	}
	if !r.Covers(Range{10, 20}) || !r.Covers(Range{11, 19}) {
		t.Error("Covers should accept equal and nested ranges")
	}
	if r.Covers(Range{9, 20}) || r.Covers(Range{10, 21}) {
		t.Error("Covers should reject partial overlap")
	}
	if got := r.Size(); got != 11 {
		t.Errorf("Size() = %d, want 11", got)
	}
	if FullRange().Size() != 1<<32 {
		t.Errorf("FullRange().Size() = %d, want 2^32", FullRange().Size())
	}
}

func TestIsPrefix(t *testing.T) {
	tests := []struct {
		r        Range
		wantLen  int
		wantBool bool
	}{
		{FullRange(), 0, true},
		{Range{0x0a0a0000, 0x0a0affff}, 16, true},
		{ExactRange(42), 32, true},
		{Range{10, 20}, 0, false},
		{Range{0, 2}, 0, false},
		{Range{0x0a0a0000, 0x0a0afffe}, 0, false},
	}
	for _, tc := range tests {
		gotLen, gotOK := tc.r.IsPrefix()
		if gotOK != tc.wantBool || (gotOK && gotLen != tc.wantLen) {
			t.Errorf("%v.IsPrefix() = (%d, %v), want (%d, %v)", tc.r, gotLen, gotOK, tc.wantLen, tc.wantBool)
		}
	}
}

func TestIsPrefixRoundTrip(t *testing.T) {
	// Property: every prefix range round-trips through IsPrefix.
	f := func(value uint32, plenRaw uint8) bool {
		plen := int(plenRaw % 33)
		r := PrefixRange(value, plen)
		got, ok := r.IsPrefix()
		return ok && got == plen
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRuleMatches(t *testing.T) {
	// The paper's Figure 2 example: 5 rules over (IPv4 address, port).
	rs := NewRuleSet(2)
	rs.AddAuto(PrefixRange(mustIP(t, "10.10.0.0"), 16), Range{10, 18}) // R0
	rs.AddAuto(PrefixRange(mustIP(t, "10.10.1.0"), 24), Range{15, 25}) // R1
	rs.AddAuto(PrefixRange(mustIP(t, "10.0.0.0"), 8), Range{5, 8})     // R2
	rs.AddAuto(PrefixRange(mustIP(t, "10.10.3.0"), 24), Range{7, 20})  // R3
	rs.AddAuto(ExactRange(mustIP(t, "10.10.3.100")), ExactRange(19))   // R4
	if err := rs.Validate(); err != nil {
		t.Fatal(err)
	}
	pkt := Packet{mustIP(t, "10.10.3.100"), 19}
	// The packet matches R3 and R4; R3 has higher priority (smaller value).
	if got := rs.MatchLinear(pkt); got != 3 {
		t.Errorf("MatchLinear = rule %d, want 3 (paper Figure 2)", got)
	}
	if !rs.Rules[3].Matches(pkt) || !rs.Rules[4].Matches(pkt) {
		t.Error("both R3 and R4 should match the packet")
	}
	if rs.Rules[0].Matches(pkt) || rs.Rules[1].Matches(pkt) || rs.Rules[2].Matches(pkt) {
		t.Error("R0-R2 should not match the packet")
	}
}

func TestRuleOverlaps(t *testing.T) {
	a := Rule{Fields: []Range{{0, 10}, {5, 5}}}
	b := Rule{Fields: []Range{{10, 20}, {0, 9}}}
	c := Rule{Fields: []Range{{11, 20}, {0, 9}}}
	if !a.Overlaps(&b) {
		t.Error("a and b overlap (share point (10,5))")
	}
	if a.Overlaps(&c) {
		t.Error("a and c are disjoint in field 0")
	}
}

func TestValidateErrors(t *testing.T) {
	rs := NewRuleSet(2)
	rs.Add(Rule{ID: 0, Fields: []Range{{0, 1}}})
	if err := rs.Validate(); err == nil {
		t.Error("Validate should reject wrong field count")
	}
	rs = NewRuleSet(1)
	rs.Add(Rule{ID: 0, Fields: []Range{{5, 1}}})
	if err := rs.Validate(); err == nil {
		t.Error("Validate should reject inverted range")
	}
	rs = NewRuleSet(1)
	rs.Add(Rule{ID: 7, Fields: []Range{{0, 1}}})
	rs.Add(Rule{ID: 7, Fields: []Range{{0, 1}}})
	if err := rs.Validate(); err == nil {
		t.Error("Validate should reject duplicate IDs")
	}
}

func TestSubsetClone(t *testing.T) {
	rs := NewRuleSet(1)
	for i := 0; i < 5; i++ {
		rs.AddAuto(ExactRange(uint32(i)))
	}
	sub := rs.Subset([]int{4, 0})
	if sub.Len() != 2 || sub.Rules[0].ID != 4 || sub.Rules[1].ID != 0 {
		t.Errorf("Subset mismatch: %+v", sub.Rules)
	}
	cl := rs.Clone()
	cl.Rules[0].Fields[0] = ExactRange(99)
	if rs.Rules[0].Fields[0] == cl.Rules[0].Fields[0] {
		t.Error("Clone must deep-copy field slices")
	}
}

func TestSortByPriority(t *testing.T) {
	rs := NewRuleSet(1)
	rs.Add(Rule{ID: 0, Priority: 3, Fields: []Range{FullRange()}})
	rs.Add(Rule{ID: 1, Priority: 1, Fields: []Range{FullRange()}})
	rs.Add(Rule{ID: 2, Priority: 2, Fields: []Range{FullRange()}})
	rs.SortByPriority()
	want := []int{1, 2, 0}
	for i, id := range want {
		if rs.Rules[i].ID != id {
			t.Fatalf("after sort position %d has ID %d, want %d", i, rs.Rules[i].ID, id)
		}
	}
}

func TestFieldDiversity(t *testing.T) {
	rs := NewRuleSet(2)
	rs.AddAuto(ExactRange(1), ExactRange(7))
	rs.AddAuto(ExactRange(2), ExactRange(7))
	rs.AddAuto(ExactRange(3), ExactRange(7))
	rs.AddAuto(ExactRange(4), ExactRange(7))
	if got := rs.FieldDiversity(0); got != 1.0 {
		t.Errorf("diversity(0) = %v, want 1", got)
	}
	if got := rs.FieldDiversity(1); got != 0.25 {
		t.Errorf("diversity(1) = %v, want 0.25", got)
	}
}

func TestFieldStabbingAndCentrality(t *testing.T) {
	rs := NewRuleSet(1)
	rs.AddAuto(Range{0, 100})
	rs.AddAuto(Range{50, 150})
	rs.AddAuto(Range{90, 95})
	rs.AddAuto(Range{200, 300})
	// Point 90..95 is covered by three ranges.
	if got := rs.FieldStabbing(0); got != 3 {
		t.Errorf("FieldStabbing = %d, want 3", got)
	}
	if got := rs.Centrality(); got != 3 {
		t.Errorf("Centrality = %d, want 3", got)
	}
	// Touching endpoints do overlap (inclusive ranges).
	rs2 := NewRuleSet(1)
	rs2.AddAuto(Range{0, 10})
	rs2.AddAuto(Range{10, 20})
	if got := rs2.FieldStabbing(0); got != 2 {
		t.Errorf("FieldStabbing with touching ranges = %d, want 2", got)
	}
}

func TestStabbingMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		rs := NewRuleSet(1)
		n := 1 + rng.Intn(12)
		for i := 0; i < n; i++ {
			lo := uint32(rng.Intn(40))
			hi := lo + uint32(rng.Intn(10))
			rs.AddAuto(Range{lo, hi})
		}
		want := 0
		for v := uint32(0); v < 64; v++ {
			c := 0
			for i := range rs.Rules {
				if rs.Rules[i].Fields[0].Contains(v) {
					c++
				}
			}
			if c > want {
				want = c
			}
		}
		if got := rs.FieldStabbing(0); got != want {
			t.Fatalf("trial %d: FieldStabbing = %d, brute force = %d (%v)", trial, got, want, rs.Rules)
		}
	}
}

func TestMatchLinearPriorityTieBreak(t *testing.T) {
	rs := NewRuleSet(1)
	rs.Add(Rule{ID: 0, Priority: 5, Fields: []Range{FullRange()}})
	rs.Add(Rule{ID: 1, Priority: 5, Fields: []Range{FullRange()}})
	// Equal priorities: the first scanned (position 0) wins deterministically.
	if got := rs.MatchLinear(Packet{0}); got != 0 {
		t.Errorf("tie-break position = %d, want 0", got)
	}
}

func mustIP(t *testing.T, s string) uint32 {
	t.Helper()
	v, err := ParseIPv4(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}
