package rules

// Long-field handling (§4 of the paper): iSet partitioning and RQ-RMI map
// inputs to scalar keys, which works directly for 32-bit fields. 64-bit
// (MAC) and 128-bit (IPv6) fields are split into 32-bit chunks, each
// treated as a distinct classification dimension — the alternative the
// paper found superior for IPv6. The secondary search and validation are
// unaffected because rules store the split chunks directly.

// SplitField64 splits a 64-bit value into two 32-bit dimension values,
// most-significant first.
func SplitField64(v uint64) [2]uint32 {
	return [2]uint32{uint32(v >> 32), uint32(v)}
}

// SplitPrefix64 converts value/prefixLen over a 64-bit field into the two
// 32-bit ranges of its chunk dimensions. prefixLen is clamped to [0, 64].
func SplitPrefix64(v uint64, prefixLen int) [2]Range {
	if prefixLen < 0 {
		prefixLen = 0
	}
	if prefixLen > 64 {
		prefixLen = 64
	}
	hi, lo := uint32(v>>32), uint32(v)
	switch {
	case prefixLen <= 32:
		// The low chunk is fully wild; the high chunk carries the prefix.
		return [2]Range{PrefixRange(hi, prefixLen), FullRange()}
	default:
		return [2]Range{ExactRange(hi), PrefixRange(lo, prefixLen-32)}
	}
}

// SplitField128 splits a 128-bit value (as four big-endian 32-bit words)
// into dimension values; it exists for symmetry and IPv6 call sites that
// already carry words.
func SplitField128(words [4]uint32) [4]uint32 { return words }

// SplitPrefix128 converts a 128-bit prefix over big-endian words into four
// 32-bit ranges. prefixLen is clamped to [0, 128].
func SplitPrefix128(words [4]uint32, prefixLen int) [4]Range {
	if prefixLen < 0 {
		prefixLen = 0
	}
	if prefixLen > 128 {
		prefixLen = 128
	}
	var out [4]Range
	for i := 0; i < 4; i++ {
		remaining := prefixLen - 32*i
		switch {
		case remaining >= 32:
			out[i] = ExactRange(words[i])
		case remaining > 0:
			out[i] = PrefixRange(words[i], remaining)
		default:
			out[i] = FullRange()
		}
	}
	return out
}
