package rules

import (
	"encoding/binary"
	"fmt"
)

// Raw-packet decoding: classifiers in a virtual network function receive
// wire-format frames, not pre-parsed tuples. DecodeFiveTuple extracts the
// classification 5-tuple from an IPv4 packet (optionally preceded by an
// Ethernet II header), the hot-path subset of a full decoder: no
// allocations, no layer objects.

// Ethernet/IP constants used by the decoder.
const (
	etherTypeIPv4   = 0x0800
	etherHeaderLen  = 14
	ipv4MinHeader   = 20
	protoTCP        = 6
	protoUDP        = 17
	protoSCTP       = 132
	fragOffsetMask  = 0x1fff
	minTransportLen = 4 // src+dst ports
)

// DecodeFiveTuple parses an IPv4 packet starting at the IP header and
// returns its classification tuple. Ports are zero for protocols without
// ports and for non-first fragments (which carry no transport header).
func DecodeFiveTuple(b []byte) (FiveTuple, error) {
	var t FiveTuple
	if len(b) < ipv4MinHeader {
		return t, fmt.Errorf("rules: packet too short for IPv4 header: %d bytes", len(b))
	}
	if version := b[0] >> 4; version != 4 {
		return t, fmt.Errorf("rules: not IPv4 (version %d)", version)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < ipv4MinHeader {
		return t, fmt.Errorf("rules: invalid IHL %d", ihl)
	}
	if len(b) < ihl {
		return t, fmt.Errorf("rules: truncated IPv4 options: have %d, need %d", len(b), ihl)
	}
	totalLen := int(binary.BigEndian.Uint16(b[2:4]))
	if totalLen < ihl {
		return t, fmt.Errorf("rules: total length %d < header length %d", totalLen, ihl)
	}
	t.Proto = b[9]
	t.SrcIP = binary.BigEndian.Uint32(b[12:16])
	t.DstIP = binary.BigEndian.Uint32(b[16:20])

	fragOffset := binary.BigEndian.Uint16(b[6:8]) & fragOffsetMask
	if fragOffset != 0 {
		return t, nil // non-first fragment: no L4 header
	}
	switch t.Proto {
	case protoTCP, protoUDP, protoSCTP:
		if len(b) >= ihl+minTransportLen {
			t.SrcPort = binary.BigEndian.Uint16(b[ihl : ihl+2])
			t.DstPort = binary.BigEndian.Uint16(b[ihl+2 : ihl+4])
		}
	}
	return t, nil
}

// DecodeEthernetFiveTuple parses an Ethernet II frame carrying IPv4.
func DecodeEthernetFiveTuple(b []byte) (FiveTuple, error) {
	if len(b) < etherHeaderLen {
		return FiveTuple{}, fmt.Errorf("rules: frame too short for Ethernet header: %d bytes", len(b))
	}
	if et := binary.BigEndian.Uint16(b[12:14]); et != etherTypeIPv4 {
		return FiveTuple{}, fmt.Errorf("rules: unsupported EtherType %#04x", et)
	}
	return DecodeFiveTuple(b[etherHeaderLen:])
}

// EncodeFiveTuple builds a minimal valid IPv4+transport packet carrying the
// tuple — the inverse of DecodeFiveTuple, used by trace tooling and tests.
func EncodeFiveTuple(t FiveTuple) []byte {
	b := make([]byte, ipv4MinHeader+8)
	b[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(b[2:4], uint16(len(b)))
	b[8] = 64 // TTL
	b[9] = t.Proto
	binary.BigEndian.PutUint32(b[12:16], t.SrcIP)
	binary.BigEndian.PutUint32(b[16:20], t.DstIP)
	binary.BigEndian.PutUint16(b[20:22], t.SrcPort)
	binary.BigEndian.PutUint16(b[22:24], t.DstPort)
	return b
}
