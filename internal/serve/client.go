package serve

import (
	"bufio"
	"encoding/binary"
	"io"
	"net"

	"nuevomatch/internal/rules"
)

// Client is a minimal data-plane client for the nmserve protocol. It
// supports pipelining: Send any number of requests (buffered), Flush, then
// Recv the responses; or use Classify for one-at-a-time convenience.
// A Client is not safe for concurrent use — run one per goroutine.
type Client struct {
	nc        net.Conn
	br        *bufio.Reader
	bw        *bufio.Writer
	numFields int
	reqBuf    []byte
}

// Dial connects to a server's data-plane address and consumes the
// handshake.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		nc: nc,
		br: bufio.NewReaderSize(nc, 16<<10),
		bw: bufio.NewWriterSize(nc, 16<<10),
	}
	nf, err := readHandshake(c.br)
	if err != nil {
		nc.Close()
		return nil, err
	}
	c.numFields = nf
	c.reqBuf = make([]byte, reqFrameLen(nf))
	return c, nil
}

// NumFields is the packet dimensionality the server expects.
func (c *Client) NumFields() int { return c.numFields }

// Send buffers one request frame. seq is echoed back by the server; pkt
// must carry exactly NumFields values.
func (c *Client) Send(seq uint32, pkt rules.Packet) error {
	binary.LittleEndian.PutUint32(c.reqBuf[0:4], seq)
	for i := 0; i < c.numFields; i++ {
		binary.LittleEndian.PutUint32(c.reqBuf[4+4*i:], pkt[i])
	}
	_, err := c.bw.Write(c.reqBuf)
	return err
}

// Flush pushes buffered requests to the wire.
func (c *Client) Flush() error { return c.bw.Flush() }

// Recv reads one response frame, returning the echoed sequence number and
// the matched rule ID (rules.NoMatch when nothing matched).
func (c *Client) Recv() (seq uint32, id int, err error) {
	var b [respFrameLen]byte
	if _, err = io.ReadFull(c.br, b[:]); err != nil {
		return 0, 0, err
	}
	seq = binary.LittleEndian.Uint32(b[0:4])
	id = int(int32(binary.LittleEndian.Uint32(b[4:8])))
	return seq, id, nil
}

// Classify sends one packet and waits for its answer — the synchronous,
// non-pipelined convenience path.
func (c *Client) Classify(pkt rules.Packet) (int, error) {
	if err := c.Send(0, pkt); err != nil {
		return 0, err
	}
	if err := c.Flush(); err != nil {
		return 0, err
	}
	_, id, err := c.Recv()
	return id, err
}

// Close tears the connection down.
func (c *Client) Close() error { return c.nc.Close() }
