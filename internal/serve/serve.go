package serve

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"nuevomatch/internal/core"
	"nuevomatch/internal/rules"
)

// Backend is what the serving tier classifies against. Both public engine
// types satisfy it — *nuevomatch.Table and *nuevomatch.Cluster — because the
// root package re-exports core/rules types as aliases. LookupBatch and
// Health must be safe for concurrent use (they are: RCU snapshots).
type Backend interface {
	// NumFields is the packet dimensionality; fixed for a backend's life.
	NumFields() int
	// LookupBatch classifies pkts[i] into out[i] (rule ID or rules.NoMatch).
	// It is the dispatcher's per-batch hot call: implementations serve it
	// from an RCU snapshot without locks or allocation.
	//
	//nm:hotpath
	LookupBatch(pkts []rules.Packet, out []int)
	// Health reports the backend's current serving health.
	Health() core.Health
}

// Config tunes a Server. Zero values select the defaults shown.
type Config struct {
	// Listen is the data-plane TCP address ("127.0.0.1:9090"; ":0" for
	// an ephemeral port).
	Listen string
	// Admin is the HTTP admin address for /healthz, /readyz, /metrics and
	// /reload. Empty disables the admin plane.
	Admin string
	// BatchSize caps how many requests one inference batch carries.
	// Default 128 — the engine's native wide-batch size.
	BatchSize int
	// MaxDelay bounds how long the dispatcher waits to top up a partial
	// batch before flushing it. Default 50µs.
	MaxDelay time.Duration
	// QueueDepth bounds the ingress MPSC queue. Default 4096.
	QueueDepth int
	// Reload, when set, produces a fresh Backend for hot table reloads
	// (admin POST /reload, or SIGHUP in cmd/nmserve). The new backend must
	// have the same NumFields; the old one is Closed after the swap.
	Reload func() (Backend, error)
}

func (c *Config) fill() {
	if c.BatchSize <= 0 {
		c.BatchSize = 128
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 50 * time.Microsecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4096
	}
}

// backendBox wraps the Backend interface in a concrete type so it can live
// in an atomic.Pointer.
type backendBox struct{ b Backend }

// request is one in-flight classification, pooled to keep the steady-state
// ingress allocation-free.
type request struct {
	c   *conn
	seq uint32
	pkt rules.Packet
	enq time.Time
}

// conn is one accepted data-plane connection.
type conn struct {
	nc net.Conn
	// wmu serializes response writes; the dispatcher and (rarely) an error
	// path both write.
	wmu sync.Mutex
	bw  *bufio.Writer
	// dead marks a connection whose writer failed; further responses to it
	// are dropped rather than written.
	dead atomic.Bool
	// touch is dispatcher-private: the batch sequence number that last
	// queued a response to this conn, used to flush each touched conn once
	// per batch without a set allocation.
	touch uint64
}

// writeResult appends one response frame to the connection's buffer.
func (c *conn) writeResult(seq uint32, id int) error {
	if c.dead.Load() {
		return net.ErrClosed
	}
	var b [respFrameLen]byte
	binary.LittleEndian.PutUint32(b[0:4], seq)
	binary.LittleEndian.PutUint32(b[4:8], uint32(int32(id)))
	c.wmu.Lock()
	_, err := c.bw.Write(b[:])
	c.wmu.Unlock()
	if err != nil {
		c.dead.Store(true)
	}
	return err
}

func (c *conn) flush() error {
	if c.dead.Load() {
		return net.ErrClosed
	}
	c.wmu.Lock()
	err := c.bw.Flush()
	c.wmu.Unlock()
	if err != nil {
		c.dead.Store(true)
	}
	return err
}

// Server is the batch-coalescing classification service. Create with New,
// then Start; Shutdown drains in-flight work before returning.
type Server struct {
	cfg       Config
	backend   atomic.Pointer[backendBox]
	numFields int
	metrics   Metrics

	reqCh chan *request
	pool  sync.Pool

	ln       net.Listener
	admin    *http.Server
	adminLn  net.Listener
	quit     chan struct{}
	draining atomic.Bool
	started  bool

	connMu sync.Mutex
	conns  map[*conn]struct{}

	connWG sync.WaitGroup
	dispWG sync.WaitGroup

	// reloadMu serializes Reload calls so concurrent swaps cannot close a
	// backend that another reload just installed.
	reloadMu sync.Mutex
}

// New builds a Server around b. Call Start to begin accepting.
func New(b Backend, cfg Config) *Server {
	cfg.fill()
	s := &Server{
		cfg:       cfg,
		numFields: b.NumFields(),
		reqCh:     make(chan *request, cfg.QueueDepth),
		quit:      make(chan struct{}),
		conns:     make(map[*conn]struct{}),
	}
	s.backend.Store(&backendBox{b})
	s.pool.New = func() any {
		return &request{pkt: make(rules.Packet, s.numFields)}
	}
	return s
}

// Backend returns the currently served backend.
func (s *Server) Backend() Backend { return s.backend.Load().b }

// SetBackend atomically swaps the served backend and returns the previous
// one. The caller owns closing the old backend; in-flight batches pinned
// the old handle and remain valid (lookups survive Close by design).
func (s *Server) SetBackend(b Backend) Backend {
	old := s.backend.Swap(&backendBox{b})
	return old.b
}

// Reload invokes the configured Reload hook, validates the replacement,
// swaps it in, and closes the previous backend. Safe to call concurrently;
// calls are serialized.
func (s *Server) Reload() error {
	if s.cfg.Reload == nil {
		s.metrics.ReloadFailures.Add(1)
		return errors.New("serve: no reload hook configured")
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	nb, err := s.cfg.Reload()
	if err != nil {
		s.metrics.ReloadFailures.Add(1)
		return fmt.Errorf("serve: reload: %w", err)
	}
	if nf := nb.NumFields(); nf != s.numFields {
		s.metrics.ReloadFailures.Add(1)
		if cl, ok := nb.(interface{ Close() error }); ok {
			cl.Close()
		}
		return fmt.Errorf("serve: reload rejected: new backend has %d fields, serving %d", nf, s.numFields)
	}
	old := s.SetBackend(nb)
	s.metrics.Reloads.Add(1)
	// Closing immediately is safe: batches that pinned the old handle keep
	// working because lookups remain valid after Close.
	if cl, ok := old.(interface{ Close() error }); ok {
		cl.Close()
	}
	return nil
}

// Start binds the data-plane listener (and admin server, if configured) and
// launches the acceptor and dispatcher goroutines.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Listen)
	if err != nil {
		return err
	}
	s.ln = ln
	if s.cfg.Admin != "" {
		aln, err := net.Listen("tcp", s.cfg.Admin)
		if err != nil {
			ln.Close()
			return err
		}
		s.adminLn = aln
		s.admin = &http.Server{Handler: s.adminMux()}
		go s.admin.Serve(aln)
	}
	s.started = true
	s.dispWG.Add(1)
	go s.dispatch()
	go s.acceptLoop()
	return nil
}

// Addr is the bound data-plane address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// AdminAddr is the bound admin address, or nil when disabled.
func (s *Server) AdminAddr() net.Addr {
	if s.adminLn == nil {
		return nil
	}
	return s.adminLn.Addr()
}

// MetricsSnapshot returns a point-in-time copy of the serving metrics.
func (s *Server) MetricsSnapshot() MetricsSnapshot { return s.metrics.snapshot() }

func (s *Server) acceptLoop() {
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			// Listener closed during shutdown, or transient accept error.
			select {
			case <-s.quit:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		if s.draining.Load() {
			nc.Close()
			continue
		}
		c := &conn{nc: nc, bw: bufio.NewWriterSize(nc, 16<<10)}
		s.connMu.Lock()
		s.conns[c] = struct{}{}
		s.connMu.Unlock()
		s.metrics.ConnectionsTotal.Add(1)
		s.metrics.ActiveConns.Add(1)
		s.connWG.Add(1)
		go s.readLoop(c)
	}
}

// readLoop is the per-connection ingress: handshake, then decode fixed
// frames and push them into the coalescing queue until EOF or shutdown.
func (s *Server) readLoop(c *conn) {
	defer func() {
		s.metrics.ActiveConns.Add(-1)
		if !s.draining.Load() {
			// Normal client departure: EOF means the client read everything
			// it asked for, so the socket can go. During a drain the conn
			// stays registered — Shutdown flushes the dispatcher's final
			// responses into it before closing.
			s.connMu.Lock()
			delete(s.conns, c)
			s.connMu.Unlock()
			c.nc.Close()
		}
		s.connWG.Done()
	}()
	if err := writeHandshake(c.nc, s.numFields); err != nil {
		return
	}
	frame := make([]byte, reqFrameLen(s.numFields))
	br := bufio.NewReaderSize(c.nc, 16<<10)
	for {
		if _, err := io.ReadFull(br, frame); err != nil {
			// Clean EOF at a frame boundary is a normal client departure.
			if !errors.Is(err, io.EOF) && !s.draining.Load() {
				s.metrics.ReadErrors.Add(1)
			}
			// The connection stays open (and in s.conns) until shutdown or
			// client close so late responses from in-flight batches can
			// still be written; closing the socket here would race them.
			return
		}
		req := s.pool.Get().(*request)
		req.c = c
		req.seq = binary.LittleEndian.Uint32(frame[0:4])
		for i := 0; i < s.numFields; i++ {
			req.pkt[i] = binary.LittleEndian.Uint32(frame[4+4*i:])
		}
		req.enq = time.Now()
		s.metrics.RequestsTotal.Add(1)
		s.metrics.Inflight.Add(1)
		select {
		case s.reqCh <- req:
		case <-s.quit:
			s.metrics.Inflight.Add(-1)
			s.pool.Put(req)
			return
		}
	}
}

// Shutdown drains the server: stop accepting, unblock the readers, let the
// dispatcher answer everything already queued, flush and close every
// connection, then stop the admin plane. ctx bounds the wait; on expiry
// connections are force-closed.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.started {
		return nil
	}
	if !s.draining.CompareAndSwap(false, true) {
		return nil // already shut down (or shutting down concurrently)
	}
	close(s.quit)
	s.ln.Close()

	// Unblock readers parked in ReadFull so connWG can drain.
	now := time.Now()
	s.connMu.Lock()
	for c := range s.conns {
		c.nc.SetReadDeadline(now)
	}
	s.connMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(s.reqCh) // dispatcher drains buffered requests, then exits
		s.dispWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}

	// Flush whatever the dispatcher wrote, then tear the sockets down.
	s.connMu.Lock()
	for c := range s.conns {
		c.flush()
		c.nc.Close()
		delete(s.conns, c)
	}
	s.connMu.Unlock()

	if s.admin != nil {
		actx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		s.admin.Shutdown(actx)
	}
	return err
}
