package serve

import (
	"fmt"
	"net/http"

	"nuevomatch/internal/core"
)

// adminMux wires the admin plane:
//
//	GET  /healthz — liveness: 200 while the process serves at all.
//	GET  /readyz  — readiness: 503 when draining or the backend is Failed;
//	                200 otherwise, with degradation reasons in the body so
//	                a Degraded backend is ready-but-flagged, never lied
//	                about.
//	GET  /metrics — Prometheus text exposition (see metrics.go).
//	POST /reload  — hot table reload via the configured Reload hook.
func (s *Server) adminMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		h := s.Backend().Health()
		switch h.State {
		case core.Failed:
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "failed")
			for _, reason := range h.Reasons {
				fmt.Fprintf(w, "shard=%d code=%s %s\n", reason.Shard, reason.Code, reason.Detail)
			}
		case core.Degraded:
			fmt.Fprintln(w, "ready (degraded)")
			for _, reason := range h.Reasons {
				fmt.Fprintf(w, "shard=%d code=%s %s\n", reason.Shard, reason.Code, reason.Detail)
			}
		default:
			fmt.Fprintln(w, "ready")
		}
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.writePrometheus(w)
	})
	mux.HandleFunc("POST /reload", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Reload(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintln(w, "reloaded")
	})
	return mux
}
