package serve_test

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nuevomatch/internal/core"
	"nuevomatch/internal/rules"
	"nuevomatch/internal/serve"
)

// fakeBackend classifies by formula (sum of fields) so tests can verify
// responses without a trained engine, and exposes a settable health state.
type fakeBackend struct {
	fields int
	state  atomic.Int32
	reason atomic.Pointer[core.HealthReason]
	closed atomic.Bool
}

func newFake(fields int) *fakeBackend { return &fakeBackend{fields: fields} }

func (f *fakeBackend) NumFields() int { return f.fields }

func (f *fakeBackend) LookupBatch(pkts []rules.Packet, out []int) {
	for i, p := range pkts {
		sum := 0
		for _, v := range p {
			sum += int(v)
		}
		out[i] = sum
	}
}

func (f *fakeBackend) Health() core.Health {
	h := core.Health{State: core.HealthState(f.state.Load())}
	if r := f.reason.Load(); r != nil {
		h.Reasons = append(h.Reasons, *r)
	}
	return h
}

func (f *fakeBackend) Close() error {
	f.closed.Store(true)
	return nil
}

// startServer runs a server over b on ephemeral ports and returns it with a
// cleanup-registered shutdown.
func startServer(t *testing.T, b serve.Backend, cfg serve.Config) *serve.Server {
	t.Helper()
	cfg.Listen = "127.0.0.1:0"
	if cfg.Admin == "" {
		cfg.Admin = "127.0.0.1:0"
	}
	s := serve.New(b, cfg)
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

func TestProtoRoundTrip(t *testing.T) {
	s := startServer(t, newFake(3), serve.Config{})
	c, err := serve.Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if c.NumFields() != 3 {
		t.Fatalf("NumFields = %d, want 3", c.NumFields())
	}
	for i := 0; i < 32; i++ {
		pkt := rules.Packet{uint32(i), uint32(2 * i), 7}
		id, err := c.Classify(pkt)
		if err != nil {
			t.Fatalf("Classify: %v", err)
		}
		if want := 3*i + 7; id != want {
			t.Fatalf("Classify(%v) = %d, want %d", pkt, id, want)
		}
	}
}

func TestDialRejectsBadHandshake(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		nc.Write([]byte("HTTP/1.1 400 Bad Request\r\n"))
		nc.Close()
	}()
	if _, err := serve.Dial(ln.Addr().String()); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("Dial on bad magic = %v, want magic error", err)
	}
}

// TestDeadlineFlush: a lone trickling request must be answered within the
// coalescing deadline, not held hostage for a full batch.
func TestDeadlineFlush(t *testing.T) {
	s := startServer(t, newFake(2), serve.Config{BatchSize: 128, MaxDelay: time.Millisecond})
	c, err := serve.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	id, err := c.Classify(rules.Packet{40, 2})
	if err != nil || id != 42 {
		t.Fatalf("Classify = %d, %v; want 42", id, err)
	}
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("lone request took %v — deadline flush broken", e)
	}
	snap := s.MetricsSnapshot()
	if snap.BatchesTotal == 0 || snap.BatchFillSum != snap.BatchesTotal {
		t.Fatalf("expected singleton batches, got fill %d over %d batches", snap.BatchFillSum, snap.BatchesTotal)
	}
}

func TestReloadSwapAndReject(t *testing.T) {
	old := newFake(2)
	var next serve.Backend = newFake(2)
	s := startServer(t, old, serve.Config{
		Reload: func() (serve.Backend, error) { return next, nil },
	})
	c, err := serve.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Classify(rules.Packet{1, 2}); err != nil {
		t.Fatal(err)
	}

	if err := s.Reload(); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	if !old.closed.Load() {
		t.Fatal("old backend not closed after swap")
	}
	if got := s.Backend(); got != next {
		t.Fatalf("Backend() = %v, want the reloaded one", got)
	}
	// Lookups keep flowing across the swap.
	if id, err := c.Classify(rules.Packet{20, 22}); err != nil || id != 42 {
		t.Fatalf("post-reload Classify = %d, %v", id, err)
	}

	// A reload that changes dimensionality must be rejected and the
	// rejected backend closed.
	wrong := newFake(5)
	next = wrong
	if err := s.Reload(); err == nil || !strings.Contains(err.Error(), "fields") {
		t.Fatalf("Reload with wrong NumFields = %v, want rejection", err)
	}
	if !wrong.closed.Load() {
		t.Fatal("rejected backend not closed")
	}
	snap := s.MetricsSnapshot()
	if snap.Reloads != 1 || snap.ReloadFailures != 1 {
		t.Fatalf("reload counters = %d/%d, want 1/1", snap.Reloads, snap.ReloadFailures)
	}
}

// TestShutdownDrains: every request the server accepted before Shutdown
// must be answered before the connection closes.
func TestShutdownDrains(t *testing.T) {
	const n = 100
	s := startServer(t, newFake(2), serve.Config{BatchSize: 8, MaxDelay: 50 * time.Microsecond})
	c, err := serve.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < n; i++ {
		if err := c.Send(uint32(i), rules.Packet{uint32(i), 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// Wait until the server has ingested everything, so the drain guarantee
	// (not a read race) is what the test exercises.
	deadline := time.Now().Add(5 * time.Second)
	for s.MetricsSnapshot().RequestsTotal < n {
		if time.Now().After(deadline) {
			t.Fatalf("server ingested only %d/%d requests", s.MetricsSnapshot().RequestsTotal, n)
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	got := 0
	for {
		seq, id, err := c.Recv()
		if err != nil {
			break // server closed the conn after the drain
		}
		if want := int(seq) + 1; id != want {
			t.Fatalf("resp seq %d = %d, want %d", seq, id, want)
		}
		got++
	}
	if got != n {
		t.Fatalf("drained %d/%d responses", got, n)
	}
	if snap := s.MetricsSnapshot(); snap.ResponsesTotal != n || snap.Inflight != 0 {
		t.Fatalf("post-drain metrics: responses %d inflight %d", snap.ResponsesTotal, snap.Inflight)
	}
}

func adminGet(t *testing.T, s *serve.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s%s", s.AdminAddr(), path))
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	b := newFake(2)
	s := startServer(t, b, serve.Config{})

	if code, body := adminGet(t, s, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := adminGet(t, s, "/readyz"); code != 200 || !strings.Contains(body, "ready") {
		t.Fatalf("/readyz healthy = %d %q", code, body)
	}

	// Degraded: still ready, but flagged with the reason.
	b.state.Store(int32(core.Degraded))
	b.reason.Store(&core.HealthReason{Shard: 1, Code: "retrain-failing", Detail: "x"})
	if code, body := adminGet(t, s, "/readyz"); code != 200 || !strings.Contains(body, "degraded") || !strings.Contains(body, "retrain-failing") {
		t.Fatalf("/readyz degraded = %d %q", code, body)
	}

	// Failed: not ready.
	b.state.Store(int32(core.Failed))
	if code, _ := adminGet(t, s, "/readyz"); code != 503 {
		t.Fatalf("/readyz failed = %d, want 503", code)
	}
	b.state.Store(int32(core.Healthy))
	b.reason.Store(nil)

	// Metrics exposition includes serving counters and health state.
	c, err := serve.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Classify(rules.Packet{1, 1}); err != nil {
		t.Fatal(err)
	}
	code, body := adminGet(t, s, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"nmserve_requests_total 1",
		"nmserve_responses_total 1",
		"nmserve_batches_total",
		"nmserve_health_state 0",
		"nmserve_request_duration_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
}

// TestCoalescingUnderLoad: many concurrent clients must coalesce into
// multi-request batches, and every response must route back to the right
// connection.
func TestCoalescingUnderLoad(t *testing.T) {
	const clients, per = 16, 200
	s := startServer(t, newFake(2), serve.Config{BatchSize: 64, MaxDelay: 200 * time.Microsecond})
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := serve.Dial(s.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			const window = 32
			next, inflight := 0, 0
			for next < per || inflight > 0 {
				for next < per && inflight < window {
					// Client identity baked into the payload: a misrouted
					// response would fail the check below.
					if err := c.Send(uint32(next), rules.Packet{uint32(ci * 1000), uint32(next)}); err != nil {
						errs <- err
						return
					}
					next++
					inflight++
				}
				if err := c.Flush(); err != nil {
					errs <- err
					return
				}
				seq, id, err := c.Recv()
				if err != nil {
					errs <- err
					return
				}
				if want := ci*1000 + int(seq); id != want {
					errs <- fmt.Errorf("client %d seq %d: got %d, want %d", ci, seq, id, want)
					return
				}
				inflight--
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	snap := s.MetricsSnapshot()
	if snap.ResponsesTotal != clients*per {
		t.Fatalf("responses %d, want %d", snap.ResponsesTotal, clients*per)
	}
	t.Logf("batches %d, avg fill %.1f", snap.BatchesTotal, snap.AvgBatchFill())
}
