package serve_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"nuevomatch"
	"nuevomatch/internal/classbench"
	"nuevomatch/internal/faultinject"
	"nuevomatch/internal/rqrmi"
	"nuevomatch/internal/rules"
	"nuevomatch/internal/serve"
)

// fastOpts trains small RQ-RMIs quickly — e2e tests exercise the serving
// path, not model quality.
func fastOpts() []nuevomatch.Option {
	return []nuevomatch.Option{
		nuevomatch.WithRQRMI(rqrmi.Config{
			StageWidths:    []int{1, 4},
			TargetError:    32,
			MaxRetrain:     2,
			MinSamples:     64,
			MaxSamples:     1024,
			InternalEpochs: 120,
			LeafEpochs:     200,
			Seed:           1,
			Workers:        2,
		}),
	}
}

// genRules builds a ClassBench rule-set with unique priorities so the
// linear reference and the engine agree exactly, not just by priority.
func genRules(t *testing.T, profile string, n int) *rules.RuleSet {
	t.Helper()
	prof, err := classbench.ProfileByName(profile)
	if err != nil {
		t.Fatal(err)
	}
	rs := classbench.Generate(prof, n)
	for i := range rs.Rules {
		rs.Rules[i].Priority = int32(i + 1)
	}
	return rs
}

// streamClient pipelines match-biased probe packets through one connection
// with the given window, verifying every response against the linear
// reference mirror. Returns the mismatch count.
func streamClient(addr string, mirror *rules.RuleSet, seed int64, count, window int) (int, error) {
	c, err := serve.Dial(addr)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	rng := rand.New(rand.NewSource(seed))
	pkts := make([]rules.Packet, count)
	for i := range pkts {
		p := make(rules.Packet, mirror.NumFields)
		if rng.Intn(4) != 0 {
			classbench.FillMatchingPacket(rng, &mirror.Rules[rng.Intn(mirror.Len())], p)
		} else {
			for d := range p {
				p[d] = rng.Uint32()
			}
		}
		pkts[i] = p
	}
	mismatches := 0
	next, inflight := 0, 0
	for next < len(pkts) || inflight > 0 {
		for next < len(pkts) && inflight < window {
			if err := c.Send(uint32(next), pkts[next]); err != nil {
				return mismatches, err
			}
			next++
			inflight++
		}
		if err := c.Flush(); err != nil {
			return mismatches, err
		}
		for inflight > 0 {
			seq, got, err := c.Recv()
			if err != nil {
				return mismatches, err
			}
			if want := mirror.MatchID(pkts[seq]); got != want {
				mismatches++
			}
			inflight--
			if next < len(pkts) && inflight < window/2 {
				break
			}
		}
	}
	return mismatches, nil
}

// TestServeE2EConformance is the acceptance gate: 64 concurrent clients
// stream 20k+ ClassBench packets through a served 2-shard cluster; every
// response must match the linear reference, batches must actually coalesce
// (average fill > 8), and readiness must hold throughout.
func TestServeE2EConformance(t *testing.T) {
	const (
		clients   = 64
		perClient = 320 // 64×320 = 20480 total requests
		window    = 32
	)
	size := 600
	if testing.Short() {
		size = 200
	}
	rs := genRules(t, "acl1", size)
	cluster, err := nuevomatch.OpenCluster(rs.Clone(),
		nuevomatch.WithShards(2), nuevomatch.WithShardOptions(fastOpts()...))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	s := startServer(t, cluster, serve.Config{BatchSize: 128, MaxDelay: 200 * time.Microsecond})

	if code, body := adminGet(t, s, "/readyz"); code != 200 || !strings.Contains(body, "ready") {
		t.Fatalf("/readyz before load = %d %q", code, body)
	}

	var wg sync.WaitGroup
	type result struct {
		mismatches int
		err        error
	}
	results := make([]result, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			m, err := streamClient(s.Addr().String(), rs, int64(1000+ci), perClient, window)
			results[ci] = result{m, err}
		}(ci)
	}
	wg.Wait()

	total := 0
	for ci, r := range results {
		if r.err != nil {
			t.Fatalf("client %d: %v", ci, r.err)
		}
		total += r.mismatches
	}
	if total != 0 {
		t.Fatalf("%d mismatches over %d streamed packets", total, clients*perClient)
	}

	snap := s.MetricsSnapshot()
	if snap.ResponsesTotal != clients*perClient {
		t.Fatalf("responses %d, want %d", snap.ResponsesTotal, clients*perClient)
	}
	if fill := snap.AvgBatchFill(); fill <= 8 {
		t.Fatalf("avg batch fill %.1f — coalescing is not happening (batches %d)", fill, snap.BatchesTotal)
	}
	t.Logf("served %d requests in %d batches (avg fill %.1f, p50 %.0fµs p99 %.0fµs)",
		snap.ResponsesTotal, snap.BatchesTotal, snap.AvgBatchFill(), snap.LatencyP50US, snap.LatencyP99US)

	if code, body := adminGet(t, s, "/readyz"); code != 200 || strings.Contains(body, "degraded") {
		t.Fatalf("/readyz after load = %d %q, want plain ready", code, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestServeDegradedUnderFaults walks readiness through the full health
// lifecycle while traffic flows and is verified at every phase: healthy →
// retrain-failing (injected build fault) → persist-failing (injected save
// fault) → recovered → closed. Inserted rules are strictly-worse-priority
// duplicates, so the linear reference never shifts and every response is
// checkable throughout.
func TestServeDegradedUnderFaults(t *testing.T) {
	defer faultinject.Reset()
	rs := genRules(t, "acl1", 300)
	maxPrio := int32(rs.Len() + 1)
	persistPath := filepath.Join(t.TempDir(), "table.nm")

	opts := append(fastOpts(),
		nuevomatch.WithAutopilot(nuevomatch.AutopilotPolicy{
			MaxUpdates:     1,
			Interval:       -1, // no watcher: Check() drives retrains deterministically
			PersistRetries: -1,
		}),
		nuevomatch.WithAutopilotPersist(persistPath))
	table, err := nuevomatch.Open(rs.Clone(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	s := startServer(t, table, serve.Config{BatchSize: 64, MaxDelay: 100 * time.Microsecond})

	burst := func(stage string) {
		t.Helper()
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for ci := 0; ci < 8; ci++ {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				m, err := streamClient(s.Addr().String(), rs, int64(77+ci), 200, 16)
				if err != nil {
					errs <- fmt.Errorf("%s client %d: %v", stage, ci, err)
				} else if m != 0 {
					errs <- fmt.Errorf("%s client %d: %d mismatches", stage, ci, m)
				}
			}(ci)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
	readyz := func(wantCode int, wantSub string) {
		t.Helper()
		code, body := adminGet(t, s, "/readyz")
		if code != wantCode || !strings.Contains(body, wantSub) {
			t.Fatalf("/readyz = %d %q, want %d with %q", code, body, wantCode, wantSub)
		}
	}
	// insertDup adds a duplicate of rule i under a fresh ID with strictly
	// worse priority — a real update for the drift counters that can never
	// change a lookup result.
	nextID := 1 << 20
	insertDup := func(i int) {
		t.Helper()
		r := rs.Rules[i]
		r.ID = nextID
		nextID++
		r.Priority = maxPrio + int32(nextID)
		r.Fields = append([]rules.Range(nil), r.Fields...)
		if err := table.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	ap := table.Autopilot()

	readyz(200, "ready")
	burst("healthy")

	// Phase 1: retrains fail — degraded but still ready and correct.
	faultinject.Enable(faultinject.PointRetrainBuild, faultinject.Rule{})
	insertDup(0)
	if _, err := ap.Check(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Check under build fault = %v, want injected error", err)
	}
	readyz(200, "retrain-failing")
	burst("retrain-failing")

	// Phase 2: retrains recover but persistence fails — still ready,
	// flagged with the persist reason.
	faultinject.Reset()
	faultinject.Enable(faultinject.PointTableSave, faultinject.Rule{})
	insertDup(1)
	if _, err := ap.Check(); err != nil {
		t.Fatalf("Check under save fault = %v, want retrain success", err)
	}
	readyz(200, "persist-failing")
	burst("persist-failing")

	// Phase 3: faults lift — one good retrain+persist clears every flag.
	faultinject.Reset()
	insertDup(2)
	if ran, err := ap.Check(); err != nil || !ran {
		t.Fatalf("recovery Check = %v, %v; want a clean retrain", ran, err)
	}
	code, body := adminGet(t, s, "/readyz")
	if code != 200 || strings.Contains(body, "degraded") {
		t.Fatalf("/readyz after recovery = %d %q, want plain ready", code, body)
	}
	burst("recovered")

	// Phase 4: a closed backend must flip readiness to 503. The data plane
	// stays correct for anything in flight (lookups survive Close).
	if err := table.Close(); err != nil {
		t.Fatal(err)
	}
	readyz(503, "closed")
	burst("closed")

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	http.DefaultClient.CloseIdleConnections()
}
