package serve

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// ShutdownContext returns a context cancelled on SIGINT or SIGTERM — the
// shared drain trigger for cmd/nmserve and cmd/nmctl. The CancelFunc also
// unregisters the handler, so a second signal after cancellation kills the
// process the default way (an escape hatch from a stuck drain).
func ShutdownContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}
