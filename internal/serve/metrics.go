package serve

import (
	"fmt"
	"io"
	"sync/atomic"

	"nuevomatch/internal/core"
)

// latencyBounds are the coalesce-latency histogram bucket upper bounds in
// microseconds: the interesting band runs from "well under one coalescing
// deadline" to "something is badly stalled".
var latencyBounds = [...]float64{10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 100000}

// Metrics is the serving tier's hand-rolled metric set. All fields are
// plain atomics — no dependencies — and are exported as Prometheus text
// format by WritePrometheus. Counters only ever increase; gauges are
// snapshots.
type Metrics struct {
	ConnectionsTotal atomic.Uint64 // accepted connections, lifetime
	ActiveConns      atomic.Int64  // currently open connections
	RequestsTotal    atomic.Uint64 // request frames decoded
	ResponsesTotal   atomic.Uint64 // response frames written
	ReadErrors       atomic.Uint64 // reader-loop failures (excl. clean EOF)
	WriteErrors      atomic.Uint64 // response write/flush failures
	BatchesTotal     atomic.Uint64 // LookupBatch calls issued
	BatchFillSum     atomic.Uint64 // sum of batch sizes; fill = sum/batches
	Inflight         atomic.Int64  // requests enqueued but not yet answered
	Reloads          atomic.Uint64 // successful backend swaps
	ReloadFailures   atomic.Uint64 // rejected/failed reload attempts

	// Coalesce latency histogram: enqueue→response-written, microseconds.
	latCount   atomic.Uint64
	latSumUS   atomic.Uint64
	latBuckets [len(latencyBounds)]atomic.Uint64
}

// observeLatency records one end-to-end request latency in microseconds.
func (m *Metrics) observeLatency(us float64) {
	m.latCount.Add(1)
	m.latSumUS.Add(uint64(us))
	for i, b := range latencyBounds {
		if us <= b {
			m.latBuckets[i].Add(1)
			break
		}
	}
}

// MetricsSnapshot is a consistent-enough point-in-time copy of the serving
// metrics, for tests and the bench harness. Latency quantiles are
// interpolated from the histogram.
type MetricsSnapshot struct {
	ConnectionsTotal uint64
	ActiveConns      int64
	RequestsTotal    uint64
	ResponsesTotal   uint64
	ReadErrors       uint64
	WriteErrors      uint64
	BatchesTotal     uint64
	BatchFillSum     uint64
	Inflight         int64
	Reloads          uint64
	ReloadFailures   uint64
	LatencyCount     uint64
	LatencyMeanUS    float64
	LatencyP50US     float64
	LatencyP99US     float64
}

// AvgBatchFill is the mean number of requests per issued batch.
func (s MetricsSnapshot) AvgBatchFill() float64 {
	if s.BatchesTotal == 0 {
		return 0
	}
	return float64(s.BatchFillSum) / float64(s.BatchesTotal)
}

// quantile interpolates quantile q (0..1) from the bucket counts, assuming
// uniform mass inside each bucket. Overflow mass is pinned at the last bound.
func (m *Metrics) quantile(q float64) float64 {
	total := m.latCount.Load()
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var cum float64
	lo := 0.0
	for i := range latencyBounds {
		n := float64(m.latBuckets[i].Load())
		if cum+n >= target && n > 0 {
			frac := (target - cum) / n
			return lo + frac*(latencyBounds[i]-lo)
		}
		cum += n
		lo = latencyBounds[i]
	}
	return latencyBounds[len(latencyBounds)-1]
}

func (m *Metrics) snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		ConnectionsTotal: m.ConnectionsTotal.Load(),
		ActiveConns:      m.ActiveConns.Load(),
		RequestsTotal:    m.RequestsTotal.Load(),
		ResponsesTotal:   m.ResponsesTotal.Load(),
		ReadErrors:       m.ReadErrors.Load(),
		WriteErrors:      m.WriteErrors.Load(),
		BatchesTotal:     m.BatchesTotal.Load(),
		BatchFillSum:     m.BatchFillSum.Load(),
		Inflight:         m.Inflight.Load(),
		Reloads:          m.Reloads.Load(),
		ReloadFailures:   m.ReloadFailures.Load(),
		LatencyCount:     m.latCount.Load(),
		LatencyP50US:     m.quantile(0.50),
		LatencyP99US:     m.quantile(0.99),
	}
	if s.LatencyCount > 0 {
		s.LatencyMeanUS = float64(m.latSumUS.Load()) / float64(s.LatencyCount)
	}
	return s
}

// Optional backend capabilities surfaced in /metrics when present. The
// public nuevomatch.Cluster satisfies all three; nuevomatch.Table the first
// (its Stats() returns build stats, not core.ClusterStats, so the cluster
// assertion cleanly fails).
type autopilotStatser interface {
	AutopilotStats() core.AutopilotStats
}
type clusterStatser interface {
	Stats() core.ClusterStats
}
type quarantineLister interface {
	QuarantinedShards() []int
}

// writePrometheus renders the full exposition: serving metrics, health
// state/reasons, and whatever autopilot/cluster stats the backend offers.
func (s *Server) writePrometheus(w io.Writer) {
	m := &s.metrics
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	counter := func(name, help string, v uint64) {
		p("# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		p("# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	counter("nmserve_connections_total", "Accepted data-plane connections.", m.ConnectionsTotal.Load())
	gauge("nmserve_active_connections", "Currently open data-plane connections.", m.ActiveConns.Load())
	counter("nmserve_requests_total", "Classification requests received.", m.RequestsTotal.Load())
	counter("nmserve_responses_total", "Classification responses written.", m.ResponsesTotal.Load())
	counter("nmserve_read_errors_total", "Connection read failures.", m.ReadErrors.Load())
	counter("nmserve_write_errors_total", "Response write failures.", m.WriteErrors.Load())
	counter("nmserve_batches_total", "Coalesced inference batches issued.", m.BatchesTotal.Load())
	counter("nmserve_batch_fill_sum", "Sum of requests across issued batches.", m.BatchFillSum.Load())
	gauge("nmserve_inflight_requests", "Requests enqueued but not yet answered.", m.Inflight.Load())
	gauge("nmserve_queue_depth", "Requests sitting in the ingress queue.", int64(len(s.reqCh)))
	counter("nmserve_reloads_total", "Successful backend hot reloads.", m.Reloads.Load())
	counter("nmserve_reload_failures_total", "Failed or rejected reload attempts.", m.ReloadFailures.Load())

	if b := m.BatchesTotal.Load(); b > 0 {
		p("# HELP nmserve_batch_fill_ratio Mean batch fill over the configured batch size.\n# TYPE nmserve_batch_fill_ratio gauge\nnmserve_batch_fill_ratio %g\n",
			float64(m.BatchFillSum.Load())/float64(b)/float64(s.cfg.BatchSize))
	}

	// Latency histogram, Prometheus-cumulative, in seconds.
	p("# HELP nmserve_request_duration_seconds Enqueue-to-response latency.\n# TYPE nmserve_request_duration_seconds histogram\n")
	var cum uint64
	for i, b := range latencyBounds {
		cum += m.latBuckets[i].Load()
		p("nmserve_request_duration_seconds_bucket{le=\"%g\"} %d\n", b/1e6, cum)
	}
	p("nmserve_request_duration_seconds_bucket{le=\"+Inf\"} %d\n", m.latCount.Load())
	p("nmserve_request_duration_seconds_sum %g\n", float64(m.latSumUS.Load())/1e6)
	p("nmserve_request_duration_seconds_count %d\n", m.latCount.Load())

	// Health over the wire: numeric state plus one labelled count per
	// distinct reason code.
	backend := s.Backend()
	h := backend.Health()
	p("# HELP nmserve_health_state Backend health (0 healthy, 1 degraded, 2 failed).\n# TYPE nmserve_health_state gauge\nnmserve_health_state %d\n", int(h.State))
	if len(h.Reasons) > 0 {
		p("# HELP nmserve_health_reasons Current health reasons by code.\n# TYPE nmserve_health_reasons gauge\n")
		byCode := map[string]int{}
		for _, r := range h.Reasons {
			byCode[r.Code]++
		}
		for code, n := range byCode {
			p("nmserve_health_reasons{code=%q} %d\n", code, n)
		}
	}

	if ap, ok := backend.(autopilotStatser); ok {
		st := ap.AutopilotStats()
		counter("nmserve_autopilot_checks_total", "Autopilot drift checks.", uint64(st.Checks))
		counter("nmserve_autopilot_retrains_total", "Autopilot retrains completed.", uint64(st.Retrains))
		counter("nmserve_autopilot_failures_total", "Autopilot retrain failures.", uint64(st.Failures))
		counter("nmserve_autopilot_persist_failures_total", "Autopilot persist failures.", uint64(st.PersistFailures))
		gauge("nmserve_autopilot_consec_failures", "Consecutive retrain failures.", int64(st.ConsecFailures))
	}
	if cs, ok := backend.(clusterStatser); ok {
		st := cs.Stats()
		gauge("nmserve_cluster_shards", "Shards in the served cluster.", int64(st.Shards))
		gauge("nmserve_cluster_live_rules", "Live rules across all shards.", int64(st.LiveRules))
		gauge("nmserve_cluster_replicated_rules", "Rules replicated to multiple shards.", int64(st.Replicated))
	}
	if ql, ok := backend.(quarantineLister); ok {
		gauge("nmserve_cluster_quarantined_shards", "Shards currently serving quarantined fallbacks.", int64(len(ql.QuarantinedShards())))
	}
}
