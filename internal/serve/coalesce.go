package serve

import (
	"time"

	"nuevomatch/internal/rules"
)

// dispatch is the single consumer of the ingress queue. It blocks for the
// first request of a batch, then tops the batch up until it is full or the
// coalescing deadline (MaxDelay) expires, issues one LookupBatch against a
// backend handle pinned for the whole batch, and fans the results back —
// one buffered write per response, one flush per touched connection.
//
// When Shutdown closes the queue the `ok` receive drains every buffered
// request first (closed-channel semantics), so the drain guarantee falls
// out of the normal loop: everything enqueued before the close is answered.
// classifyBatch is the classification core of one coalesced batch: copy the
// packets out of the requests and issue one LookupBatch against a backend
// handle pinned for the whole batch — a concurrent Reload swap never tears a
// batch, and the old handle stays valid even after its Close (fail-static
// lookup guarantee). It sits between coalescing and fan-out on the
// latency-critical path and holds the hot-path contract: one atomic load,
// no locks, no allocation.
//
//nm:hotpath
func (s *Server) classifyBatch(reqs []*request, pkts []rules.Packet, out []int) int {
	n := len(reqs)
	for i, r := range reqs {
		pkts[i] = r.pkt
	}
	backend := s.backend.Load().b
	backend.LookupBatch(pkts[:n], out[:n])
	return n
}

func (s *Server) dispatch() {
	defer s.dispWG.Done()

	B := s.cfg.BatchSize
	reqs := make([]*request, 0, B)
	pkts := make([]rules.Packet, B)
	out := make([]int, B)
	touched := make([]*conn, 0, B)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	var batchSeq uint64

	for {
		r, ok := <-s.reqCh
		if !ok {
			return
		}
		reqs = append(reqs, r)
		timer.Reset(s.cfg.MaxDelay)
	fill:
		for len(reqs) < B {
			select {
			case r, ok := <-s.reqCh:
				if !ok {
					break fill
				}
				reqs = append(reqs, r)
			case <-timer.C:
				break fill
			}
		}
		// Standard timer hygiene: if the fill loop exited without the timer
		// firing, stop it and drain any concurrent expiry.
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}

		n := s.classifyBatch(reqs, pkts, out)

		batchSeq++
		touched = touched[:0]
		now := time.Now()
		for i, r := range reqs {
			if err := r.c.writeResult(r.seq, out[i]); err != nil {
				s.metrics.WriteErrors.Add(1)
			} else {
				s.metrics.ResponsesTotal.Add(1)
			}
			if r.c.touch != batchSeq {
				r.c.touch = batchSeq
				touched = append(touched, r.c)
			}
			s.metrics.observeLatency(float64(now.Sub(r.enq)) / float64(time.Microsecond))
			s.metrics.Inflight.Add(-1)
			r.c = nil
			s.pool.Put(r)
		}
		for _, c := range touched {
			if err := c.flush(); err != nil {
				s.metrics.WriteErrors.Add(1)
			}
		}
		s.metrics.BatchesTotal.Add(1)
		s.metrics.BatchFillSum.Add(uint64(n))
		reqs = reqs[:0]
	}
}
