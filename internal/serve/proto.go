// Package serve is the network-facing serving tier: a long-lived TCP
// classification service whose ingress coalesces requests arriving on many
// connections into the engine's native 128-wide inference batches, plus an
// HTTP admin plane (/healthz, /readyz, /metrics, /reload).
//
// The data-plane protocol is deliberately minimal — fixed-size binary
// frames after an 8-byte handshake — because the interesting machinery is
// behind it: per-connection readers push classify requests into a bounded
// MPSC queue, a single dispatcher drains the queue into batches (flushing
// on batch size or a ~50µs coalescing deadline), runs one LookupBatch per
// batch against a per-batch pinned backend handle, and fans the results
// back to the waiting connections with one write-flush per touched
// connection. A million trickling clients therefore get batched inference
// throughput, not scalar; see docs/SERVING.md for the full design.
package serve

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Wire protocol, little-endian throughout.
//
// On accept the server sends one 8-byte handshake:
//
//	magic "NMSV" | version uint16 | numFields uint16
//
// after which frames are fixed-size. Client request frames carry an opaque
// sequence number echoed back in the response, so clients may pipeline any
// number of requests before reading:
//
//	request:  seq uint32 | field values numFields × uint32
//	response: seq uint32 | rule ID int32 (NoMatch = -1)
const (
	protoMagic   = "NMSV"
	protoVersion = 1
	// handshakeLen is the on-wire handshake size.
	handshakeLen = 8
	// maxProtoFields bounds the handshake's field count: a packet frame is
	// 4+4*numFields bytes and both sides allocate buffers from it.
	maxProtoFields = 256
)

// reqFrameLen is the fixed request frame size for nf-field packets.
func reqFrameLen(nf int) int { return 4 + 4*nf }

// respFrameLen is the fixed response frame size.
const respFrameLen = 8

// writeHandshake emits the server hello.
func writeHandshake(w io.Writer, numFields int) error {
	var b [handshakeLen]byte
	copy(b[:4], protoMagic)
	binary.LittleEndian.PutUint16(b[4:6], protoVersion)
	binary.LittleEndian.PutUint16(b[6:8], uint16(numFields))
	_, err := w.Write(b[:])
	return err
}

// readHandshake consumes and validates the server hello, returning the
// stream's field count.
func readHandshake(r io.Reader) (int, error) {
	var b [handshakeLen]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	if string(b[:4]) != protoMagic {
		return 0, fmt.Errorf("serve: bad protocol magic %q", b[:4])
	}
	if v := binary.LittleEndian.Uint16(b[4:6]); v != protoVersion {
		return 0, fmt.Errorf("serve: unsupported protocol version %d", v)
	}
	nf := int(binary.LittleEndian.Uint16(b[6:8]))
	if nf == 0 || nf > maxProtoFields {
		return 0, fmt.Errorf("serve: implausible field count %d in handshake", nf)
	}
	return nf, nil
}
