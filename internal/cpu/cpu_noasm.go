//go:build !amd64 || noasm

package cpu

import "unsafe"

// HasPrefetch is false on portable builds: Prefetch is a no-op, and callers
// should skip the address-computation work feeding it.
const HasPrefetch = false

// Prefetch is a no-op on portable builds.
//
//nm:hotpath
func Prefetch(p unsafe.Pointer) { _ = p }
