//go:build amd64 && !noasm

package cpu

// HasPrefetch is true when Prefetch issues a real PREFETCHT0; callers use
// it to skip the address-computation loop entirely on builds where Prefetch
// is a no-op.
const HasPrefetch = true

// cpuid executes CPUID with the given leaf/subleaf. Implemented in
// cpu_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (OS-enabled extended state). Only valid when CPUID
// reports OSXSAVE. Implemented in cpu_amd64.s.
func xgetbv() (eax, edx uint32)

func init() {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 1 {
		return
	}
	_, _, ecx1, _ := cpuid(1, 0)
	X86.HasSSE42 = ecx1&(1<<20) != 0
	X86.HasFMA = ecx1&(1<<12) != 0
	osxsave := ecx1&(1<<27) != 0
	avx := ecx1&(1<<28) != 0
	if !osxsave || !avx {
		return
	}
	// The OS must save both the XMM (bit 1) and YMM (bit 2) state across
	// context switches, or 256-bit registers are silently corrupted.
	xcr0, _ := xgetbv()
	if xcr0&0x6 != 0x6 {
		return
	}
	X86.HasAVX = true
	if maxLeaf >= 7 {
		_, ebx7, _, _ := cpuid(7, 0)
		X86.HasAVX2 = ebx7&(1<<5) != 0
	}
}
