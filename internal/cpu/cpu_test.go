package cpu

import "testing"

// TestFeaturesStable asserts detection ran (amd64) and Features is
// consistent with the flags; on noasm builds everything must be false.
func TestFeaturesStable(t *testing.T) {
	fs := Features()
	t.Logf("features=%v avx2=%v prefetch=%v", fs, X86.HasAVX2, HasPrefetch)
	if X86.HasAVX2 && !X86.HasAVX {
		t.Fatal("AVX2 implies AVX")
	}
	if !HasPrefetch && len(fs) != 0 {
		t.Fatal("noasm build must report no features")
	}
}
