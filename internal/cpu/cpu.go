// Package cpu detects the SIMD capabilities of the host processor and
// provides the software-prefetch primitive used by the batched lookup path.
//
// The paper's inference kernels are AVX float32 code (§4: eight lanes per
// instruction); this package decides at startup whether the hand-written
// AVX2 kernel in internal/rqrmi may run. Detection is a direct CPUID/XGETBV
// probe (no external dependencies): AVX2 requires the CPUID feature bit AND
// OS support for saving the YMM state (OSXSAVE + XCR0 bits 1-2), exactly the
// check the Go runtime itself performs.
//
// Building with the `noasm` tag (or on any non-amd64 GOARCH) compiles the
// pure-Go fallbacks only: every feature reports false and Prefetch is a
// no-op, which is also how the portable kernel path is forced in tests.
package cpu

// X86 reports the detected processor features. On non-amd64 builds, and
// under the noasm build tag, every field is false.
var X86 struct {
	// HasAVX2 is true when the 8-wide float32 kernel may run: the CPU
	// supports AVX2 and the OS saves the YMM register state.
	HasAVX2 bool
	// HasAVX is true when 256-bit vector state is usable (implied by AVX2).
	HasAVX bool
	// HasFMA reports fused multiply-add support. The kernels deliberately
	// do NOT use FMA (separate mul/add keeps the assembly bit-identical to
	// the pure-Go fallback); the bit is recorded for bench artifacts.
	HasFMA bool
	// HasSSE42 is part of the amd64 baseline but recorded explicitly so
	// artifacts from exotic environments are self-describing.
	HasSSE42 bool
}

// Features returns the detected SIMD feature names in a stable order, for
// machine metadata in BENCH_*.json artifacts. Empty on noasm/non-amd64
// builds.
func Features() []string {
	var fs []string
	if X86.HasSSE42 {
		fs = append(fs, "sse4.2")
	}
	if X86.HasAVX {
		fs = append(fs, "avx")
	}
	if X86.HasAVX2 {
		fs = append(fs, "avx2")
	}
	if X86.HasFMA {
		fs = append(fs, "fma")
	}
	return fs
}
