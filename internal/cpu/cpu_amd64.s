//go:build amd64 && !noasm

#include "textflag.h"

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func Prefetch(p unsafe.Pointer)
//
// PREFETCHT0 is a hint, never a fault: prefetching an invalid address is
// architecturally a no-op, so callers may pass addresses computed from
// unvalidated hashes.
TEXT ·Prefetch(SB), NOSPLIT, $0-8
	MOVQ p+0(FP), AX
	PREFETCHT0 (AX)
	RET
