//go:build amd64 && !noasm

package cpu

import "unsafe"

// Prefetch hints the CPU to pull the cache line containing p into L1
// (PREFETCHT0). It never faults, even on wild addresses. Implemented in
// cpu_amd64.s.
//
//nm:hotpath
//go:noescape
func Prefetch(p unsafe.Pointer)
