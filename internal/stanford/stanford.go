// Package stanford generates forwarding rule-sets with the structure of the
// Stanford backbone dataset used in §5.2 (Figure 10): four IP forwarding
// tables of roughly 180K single-field rules (destination IP prefixes).
//
// The real dataset (Zeng et al., CoNEXT 2012) is a large enterprise
// network's FIB; what the NuevoMatch evaluation depends on is (a) a single
// matching field, which gives the iSet partitioner only one dimension to
// work with, and (b) substantial prefix nesting, so that one iSet covers
// only ~58% and 2–3 iSets are needed for 90–95% (Table 2, last row). The
// generator reproduces exactly that nesting profile: prefixes are emitted
// in "sites" of nested chains whose depth distribution is tuned to the
// published coverage row.
package stanford

import (
	"math/rand"

	"nuevomatch/internal/rules"
)

// DefaultSize approximates the per-rule-set size of the Stanford dataset.
const DefaultSize = 183376

// Generate produces one forwarding rule-set with n single-field rules.
// set selects one of the four backbone tables (0..3); the four differ only
// by seed, as the paper reports their coverage differs within 1%.
func Generate(set int, n int) *rules.RuleSet {
	rng := rand.New(rand.NewSource(int64(set)*7919 + 17))
	rs := rules.NewRuleSet(1)

	// Chain-depth distribution derived from Table 2's Stanford row
	// (57.8 / 91.6 / 96.5 / 98.2 cumulative coverage for 1..4 iSets):
	// chains are mutually disjoint, nesting happens only inside a chain,
	// so k iSets cover min(depth, k) rules of each chain. Solving the
	// resulting linear system for the depth weights gives the numbers
	// below (per mille of chains).
	depthDist := []struct {
		depth  int
		weight int
	}{
		{1, 415}, // standalone prefixes
		{2, 500}, // parent + child
		{3, 55},
		{4, 9},
		{5, 11},
		{6, 10},
	}
	totalW := 0
	for _, d := range depthDist {
		totalW += d.weight
	}

	// Backbone-like prefix lengths per chain level: aggregates above,
	// customer routes below. Lengths start at /16 so that independently
	// placed chains essentially never collide in the 32-bit space.
	levelLens := [][]int{
		{16, 18, 20}, // level 0
		{22, 24},     // level 1
		{25, 26},     // level 2
		{27, 28},     // level 3
		{29, 30},     // level 4
		{31, 32},     // level 5
	}

	for rs.Len() < n {
		x := rng.Intn(totalW)
		depth := 1
		for _, d := range depthDist {
			if x < d.weight {
				depth = d.depth
				break
			}
			x -= d.weight
		}
		base := rng.Uint32()
		prevLen := 0
		for level := 0; level < depth && rs.Len() < n; level++ {
			lens := levelLens[level]
			plen := lens[rng.Intn(len(lens))]
			if plen <= prevLen {
				plen = prevLen + 1
			}
			if plen > 32 {
				break
			}
			// Deeper levels randomize the bits below the parent prefix,
			// staying nested inside it.
			addr := base
			if prevLen > 0 && prevLen < 32 {
				addr = base | rng.Uint32()&(^uint32(0)>>uint(prevLen))
			}
			rs.AddAuto(rules.PrefixRange(addr, plen))
			base = rules.PrefixRange(addr, plen).Lo
			prevLen = plen
		}
	}
	return rs
}

// GenerateAll returns the four backbone rule-sets at the given size.
func GenerateAll(n int) []*rules.RuleSet {
	out := make([]*rules.RuleSet, 4)
	for i := range out {
		out[i] = Generate(i, n)
	}
	return out
}
