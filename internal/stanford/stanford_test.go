package stanford

import (
	"testing"

	"nuevomatch/internal/iset"
)

func TestGenerateBasics(t *testing.T) {
	rs := Generate(0, 5000)
	if rs.Len() != 5000 {
		t.Fatalf("got %d rules", rs.Len())
	}
	if rs.NumFields != 1 {
		t.Fatalf("NumFields = %d, want 1 (forwarding rules)", rs.NumFields)
	}
	if err := rs.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range rs.Rules {
		if _, ok := rs.Rules[i].Fields[0].IsPrefix(); !ok {
			t.Fatalf("rule %d is not a prefix: %v", i, rs.Rules[i].Fields[0])
		}
	}
}

func TestDeterministicPerSet(t *testing.T) {
	a, b := Generate(1, 1000), Generate(1, 1000)
	for i := range a.Rules {
		if a.Rules[i].Fields[0] != b.Rules[i].Fields[0] {
			t.Fatal("generation must be deterministic")
		}
	}
	c := Generate(2, 1000)
	diff := 0
	for i := range a.Rules {
		if a.Rules[i].Fields[0] != c.Rules[i].Fields[0] {
			diff++
		}
	}
	if diff < 900 {
		t.Errorf("sets 1 and 2 share %d/1000 rules; seeds too correlated", 1000-diff)
	}
}

// TestCoverageMatchesTable2Row reproduces the last row of Table 2:
// cumulative coverage ≈ 57.8 / 91.6 / 96.5 / 98.2 (±1% across the four
// sets). The synthetic generator is tuned to this profile; allow a modest
// tolerance.
func TestCoverageMatchesTable2Row(t *testing.T) {
	rs := Generate(0, 40000)
	cov := iset.CumulativeCoverage(rs, 4)
	want := []float64{0.578, 0.916, 0.965, 0.982}
	tol := []float64{0.08, 0.05, 0.04, 0.04}
	for k := range want {
		if diff := cov[k] - want[k]; diff > tol[k] || diff < -tol[k] {
			t.Errorf("coverage with %d iSets = %.3f, want %.3f ± %.2f", k+1, cov[k], want[k], tol[k])
		}
	}
}

func TestGenerateAll(t *testing.T) {
	sets := GenerateAll(2000)
	if len(sets) != 4 {
		t.Fatalf("got %d sets", len(sets))
	}
	for i, rs := range sets {
		if rs.Len() != 2000 {
			t.Errorf("set %d has %d rules", i, rs.Len())
		}
	}
}
