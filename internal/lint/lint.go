// Package lint is nuevomatch's repo-specific static-analysis suite: a small
// go/analysis-style framework plus four analyzers that prove, at lint time,
// the invariants the runtime tests can only spot-check on exercised paths —
// the zero-alloc/zero-lock lookup path (hotpath), RCU snapshot immutability
// (rcusnapshot), the fault-point registry (faultpoint), and no blocking
// work under the engine write mutex (lockscope).
//
// The framework is built on the standard library only (go/ast, go/types,
// and `go list -export` for dependency export data) because this module
// carries no third-party dependencies; the API deliberately mirrors
// golang.org/x/tools/go/analysis so the analyzers would port to a
// multichecker mechanically if the dependency ever becomes available.
//
// Analyzers are driven by comment directives (written like //go:directives,
// no space after //):
//
//	//nm:hotpath            on a func: zero-alloc/zero-lock contract
//	//nm:hotpath            on an interface type or interface method:
//	                        calls through it are trusted hot-path contracts
//	//nm:immutable          on a struct type: fields write-once via builders
//	//nm:builder T[,U...]   on a func: may assign fields of T (same package)
//	//nm:lockscope          on a sync.Mutex/RWMutex struct field: no
//	                        blocking calls while held
//	//nm:allow <analyzer>: <reason>   suppress one diagnostic, with the
//	                        justification required (same line or own line
//	                        immediately above the flagged one)
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. Run is invoked once per loaded
// package; Finish, if non-nil, runs once after every package's Run, for
// whole-program cross-checks (Pass.ProgramState carries state between the
// two).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
	// Finish runs after all packages have been visited. It reports through
	// the same diagnostic sink.
	Finish func(*Program, func(Diagnostic)) error
}

// A Pass is one analyzer's view of one loaded package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Prog is the whole loaded program: the annotation index and every
	// other package, for cross-package checks.
	Prog *Program
	// report is the raw sink; use Reportf.
	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Analyzer: p.Analyzer.Name, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ProgramState returns the analyzer's whole-program scratch state, creating
// it with init on first use. Passes run sequentially, so no locking.
func (p *Pass) ProgramState(init func() any) any {
	st, ok := p.Prog.state[p.Analyzer.Name]
	if !ok {
		st = init()
		p.Prog.state[p.Analyzer.Name] = st
	}
	return st
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// All returns the full nmlint analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		HotpathAnalyzer,
		RcusnapshotAnalyzer,
		FaultpointAnalyzer,
		LockscopeAnalyzer,
	}
}

// Run executes the analyzers over every analysis-target package of prog and
// returns the surviving diagnostics (suppressed ones removed) sorted by
// position. Suppressions lacking a justification become diagnostics
// themselves.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	sink := func(d Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		for _, pkg := range prog.Targets {
			pass := &Pass{
				Analyzer:  a,
				Fset:      prog.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Prog:      prog,
				report:    sink,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ID, err)
			}
		}
		if a.Finish != nil {
			if err := a.Finish(prog, sink); err != nil {
				return nil, fmt.Errorf("%s (finish): %w", a.Name, err)
			}
		}
	}
	diags = append(diags, prog.Ann.Malformed...)
	diags = prog.filterSuppressed(diags)
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	diags = append(diags, prog.badAllows(ran)...)
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Message < diags[j].Message
	})
	return dedupe(diags), nil
}

// dedupe drops exact duplicates: a package and its test-augmented variant
// share non-test files, so file-scoped findings would otherwise double up.
func dedupe(diags []Diagnostic) []Diagnostic {
	seen := make(map[string]bool, len(diags))
	out := diags[:0]
	for _, d := range diags {
		k := fmt.Sprintf("%s|%d|%s", d.Analyzer, d.Pos, d.Message)
		if !seen[k] {
			seen[k] = true
			out = append(out, d)
		}
	}
	return out
}

// --- annotation directives -------------------------------------------------

const directivePrefix = "//nm:"

// directive is one parsed //nm: comment.
type directive struct {
	pos  token.Pos
	verb string // "hotpath", "immutable", "builder", "lockscope", "allow"
	args string // raw text after the verb
}

func parseDirectives(cg *ast.CommentGroup) []directive {
	if cg == nil {
		return nil
	}
	var out []directive
	for _, c := range cg.List {
		if d, ok := parseDirective(c); ok {
			out = append(out, d)
		}
	}
	return out
}

func parseDirective(c *ast.Comment) (directive, bool) {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return directive{}, false
	}
	rest := c.Text[len(directivePrefix):]
	verb, args, _ := strings.Cut(rest, " ")
	return directive{pos: c.Pos(), verb: strings.TrimSpace(verb), args: strings.TrimSpace(args)}, true
}

// allowSite is one //nm:allow suppression.
type allowSite struct {
	file     *token.File
	line     int // diagnostics on this line are suppressed
	analyzer string
	reason   string
	pos      token.Pos
	used     bool
}

// hasDirective reports whether the group carries the named verb.
func hasDirective(cg *ast.CommentGroup, verb string) bool {
	for _, d := range parseDirectives(cg) {
		if d.verb == verb {
			return true
		}
	}
	return false
}
