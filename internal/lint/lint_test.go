package lint_test

import (
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"nuevomatch/internal/lint"
)

// The analyzer suites load each fixture tree from testdata/src/<name> into a
// throwaway module named `nuevomatch` (the analyzers key on in-module import
// paths like nuevomatch/internal/faultinject) and compare the diagnostics
// against `// want "regex"` comments in the fixtures:
//
//	code() // want "re1" "re2"    diagnostics expected on this line
//	// want-above "re"            diagnostic expected on the previous line
//	                              (for findings reported at a comment, where
//	                              a trailing want cannot share the line)
//
// Matching is exact in both directions: every want must be matched by a
// distinct diagnostic on its line, and every diagnostic must be matched by a
// want.

func runFixture(t *testing.T, fixture string, analyzers []*lint.Analyzer) (*lint.Program, []lint.Diagnostic, string) {
	t.Helper()
	dir, err := filepath.EvalSymlinks(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	copyTree(t, filepath.Join("testdata", "src", fixture), dir)
	gomod := "module nuevomatch\n\ngo 1.24\n"
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}
	prog, err := lint.Load(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("Load(%s): %v", fixture, err)
	}
	diags, err := lint.Run(prog, analyzers)
	if err != nil {
		t.Fatalf("Run(%s): %v", fixture, err)
	}
	return prog, diags, dir
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, p)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		b, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		return os.WriteFile(target, b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

var (
	wantRe    = regexp.MustCompile(`// want(-above)? (.+)$`)
	wantArgRe = regexp.MustCompile(`"([^"]*)"`)
)

// checkWants verifies diags against the want comments of every fixture file
// under dir, in both directions.
func checkWants(t *testing.T, prog *lint.Program, diags []lint.Diagnostic, dir string) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]string)
	err := filepath.WalkDir(dir, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		b, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(b), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			ln := i + 1
			if m[1] == "-above" {
				ln--
			}
			args := wantArgRe.FindAllStringSubmatch(m[2], -1)
			if len(args) == 0 {
				t.Errorf("%s:%d: malformed want comment (no quoted regex)", p, i+1)
			}
			for _, am := range args {
				wants[key{p, ln}] = append(wants[key{p, ln}], am[1])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	remaining := make(map[key][]lint.Diagnostic)
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		remaining[k] = append(remaining[k], d)
	}
	for k, res := range wants {
		for _, re := range res {
			rx, err := regexp.Compile(re)
			if err != nil {
				t.Errorf("%s:%d: bad want regex %q: %v", k.file, k.line, re, err)
				continue
			}
			found := -1
			for i, d := range remaining[k] {
				if rx.MatchString(d.Message) {
					found = i
					break
				}
			}
			if found < 0 {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, re)
				continue
			}
			remaining[k] = append(remaining[k][:found], remaining[k][found+1:]...)
		}
	}
	for k, ds := range remaining {
		for _, d := range ds {
			t.Errorf("%s:%d: unexpected %s diagnostic: %s", k.file, k.line, d.Analyzer, d.Message)
		}
	}
}

func TestHotpathAnalyzer(t *testing.T) {
	prog, diags, dir := runFixture(t, "hotpath", []*lint.Analyzer{lint.HotpathAnalyzer})
	checkWants(t, prog, diags, dir)
}

func TestRcusnapshotAnalyzer(t *testing.T) {
	prog, diags, dir := runFixture(t, "rcusnapshot", []*lint.Analyzer{lint.RcusnapshotAnalyzer})
	checkWants(t, prog, diags, dir)
}

func TestFaultpointAnalyzer(t *testing.T) {
	prog, diags, dir := runFixture(t, "faultpoint", []*lint.Analyzer{lint.FaultpointAnalyzer})
	checkWants(t, prog, diags, dir)
}

func TestLockscopeAnalyzer(t *testing.T) {
	prog, diags, dir := runFixture(t, "lockscope", []*lint.Analyzer{lint.LockscopeAnalyzer})
	checkWants(t, prog, diags, dir)
}

// TestFaultpointNarrowedLoad pins the Complete gate: under a narrowed load
// (a non-recursive pattern), the dead-registry-point scan must not fire —
// "unreferenced" could just mean "referenced from a package not loaded" —
// while the per-site constant-origin rule still applies.
func TestFaultpointNarrowedLoad(t *testing.T) {
	dir, err := filepath.EvalSymlinks(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	copyTree(t, filepath.Join("testdata", "src", "faultpoint"), dir)
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module nuevomatch\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	prog, err := lint.Load(dir, []string{"./faultpoint"})
	if err != nil {
		t.Fatal(err)
	}
	if prog.Complete {
		t.Error("narrowed load reported Complete")
	}
	diags, err := lint.Run(prog, []*lint.Analyzer{lint.FaultpointAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	sawOrigin := false
	for _, d := range diags {
		if strings.Contains(d.Message, "never referenced") {
			t.Errorf("liveness scan fired on a narrowed load: %s", d.Message)
		}
		if strings.Contains(d.Message, "is not a constant from") {
			sawOrigin = true
		}
	}
	if !sawOrigin {
		t.Error("constant-origin diagnostics missing under narrowed load")
	}
}

func TestAllowSuppression(t *testing.T) {
	prog, diags, dir := runFixture(t, "allow", []*lint.Analyzer{lint.HotpathAnalyzer})
	checkWants(t, prog, diags, dir)
}

func TestMalformedAnnotations(t *testing.T) {
	// No analyzers: malformed-directive findings come from the annotation
	// index itself and are reported on every Run.
	prog, diags, dir := runFixture(t, "annotation", nil)
	checkWants(t, prog, diags, dir)
}

// TestRepoClean is the gate the CI lint job enforces: the full suite over
// the real repository must report nothing. Any intentional exception in the
// tree carries a justified //nm:allow, so a finding here is either a real
// regression or a new exception that needs writing down.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lint.Load(root, []string{"./..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	diags, err := lint.Run(prog, lint.All())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s: %s", prog.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}

// TestCmdNmlint smoke-tests the CLI end to end: `go run ./cmd/nmlint ./...`
// over the repo must exit 0 and print nothing.
func TestCmdNmlint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the nmlint command")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./cmd/nmlint", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("nmlint failed: %v\n%s", err, out)
	}
	if len(strings.TrimSpace(string(out))) != 0 {
		t.Fatalf("nmlint produced output on a clean tree:\n%s", out)
	}
}
