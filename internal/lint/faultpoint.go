package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// faultinjectPath is the in-module package owning the Point registry.
const faultinjectPath = "nuevomatch/internal/faultinject"

// FaultpointAnalyzer closes the silent-no-op bug class around fault
// injection: arming or hitting a point name that no Hit/Sleep site ever
// checks compiles fine and simply never fires. The rule is type-driven:
// every *constant* expression of type faultinject.Point — a Hit/Sleep/
// Enable/Disable argument, a Point("...") conversion, a table entry — must
// be a direct reference to a constant declared in the faultinject package
// itself (the points.go registry). Raw string literals, local aliases, and
// concatenations are all diagnostics. Non-constant Point expressions
// (forwarded parameters) pass: their originating call sites are checked.
//
// A Finish pass then cross-checks the registry against use: a declared
// point never referenced from non-test code is dead — no Hit/Sleep site can
// reach it (directly or via a forwarded parameter), so tests arming it would
// silently test nothing.
var FaultpointAnalyzer = &Analyzer{
	Name:   "faultpoint",
	Doc:    "fault-point names must reference constants from the internal/faultinject registry",
	Run:    runFaultpoint,
	Finish: finishFaultpoint,
}

type faultpointState struct {
	// livePoints holds the names of registry constants referenced from
	// non-test code anywhere in the program (direct Hit/Sleep arguments or
	// forwarded through a Point-typed parameter).
	livePoints map[string]bool
}

func runFaultpoint(pass *Pass) error {
	st := pass.ProgramState(func() any {
		return &faultpointState{livePoints: make(map[string]bool)}
	}).(*faultpointState)

	// The registry package itself (and its own tests) is exempt: it declares
	// the constants and its unit tests exercise the machinery with
	// throwaway names.
	if pass.Pkg.Path() == faultinjectPath {
		return nil
	}

	for _, f := range pass.Files {
		isTestFile := strings.HasSuffix(pass.Fset.File(f.Pos()).Name(), "_test.go")
		ast.Inspect(f, func(n ast.Node) bool {
			expr, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[expr]
			if !ok || tv.Value == nil || !isPointType(tv.Type) {
				return true
			}
			// A constant-valued Point expression: fine iff it is a direct
			// reference to a registry constant. Prune children either way —
			// the operands of a flagged expression shouldn't re-flag.
			if c := registryConstOf(pass.TypesInfo, expr); c != nil {
				if !isTestFile {
					st.livePoints[c.Name()] = true
				}
			} else {
				pass.Reportf(expr.Pos(), "fault point %s is not a constant from %s/points.go (typo'd names silently never fire)",
					tv.Value, faultinjectPath)
			}
			return false
		})
	}
	return nil
}

// finishFaultpoint flags registry constants that no Hit/Sleep site in the
// program references: arming such a point is a guaranteed no-op. Skipped
// when the faultinject package wasn't part of the load (analyzer unit
// fixtures without a registry).
func finishFaultpoint(prog *Program, report func(Diagnostic)) error {
	// The liveness scan is only sound over the whole module: on a narrowed
	// load, a point's Hit/Sleep sites may simply live in packages that were
	// not loaded.
	if !prog.Complete {
		return nil
	}
	pkg := prog.ByID[faultinjectPath]
	if pkg == nil {
		return nil
	}
	st, ok := prog.state["faultpoint"].(*faultpointState)
	if !ok {
		return nil
	}
	pointType := pkg.Types.Scope().Lookup("Point")
	if pointType == nil {
		return nil
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj, ok := pkg.Info.Defs[name].(*types.Const)
					if !ok || !isPointType(obj.Type()) || !obj.Exported() {
						continue
					}
					if !st.livePoints[obj.Name()] {
						report(Diagnostic{
							Analyzer: "faultpoint",
							Pos:      name.Pos(),
							Message:  "registry point " + obj.Name() + " is never referenced from non-test code; no Hit/Sleep site can fire it, so arming it is a silent no-op",
						})
					}
				}
			}
		}
	}
	return nil
}

// isPointType reports whether t is the faultinject.Point named type (from
// any build variant of the package).
func isPointType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Point" && obj.Pkg() != nil &&
		strings.HasPrefix(obj.Pkg().Path(), faultinjectPath)
}

// registryConstOf returns the faultinject-declared constant that expr
// directly references, or nil.
func registryConstOf(info *types.Info, expr ast.Expr) *types.Const {
	var obj types.Object
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	default:
		return nil
	}
	c, ok := obj.(*types.Const)
	if !ok || c.Pkg() == nil || !strings.HasPrefix(c.Pkg().Path(), faultinjectPath) {
		return nil
	}
	return c
}

// calleeFunc resolves a call's static callee, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}
