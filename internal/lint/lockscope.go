package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockscopeAnalyzer guards the update side's known stall vector: blocking
// while holding a //nm:lockscope mutex (the engine/cluster write mutex)
// stalls every writer — and during publish, the retrain pipeline — behind
// disk or timer latency. Within each function body it tracks, lexically,
// which annotated mutex fields are held (Lock/Unlock calls, with
// defer-Unlock holding to function end) and flags calls into blocking
// stdlib surface (file/dir I/O, time.Sleep, faultinject.Sleep, net,
// os/exec, syscall) made while a lock is held. Functions named *Locked are
// analyzed as if an annotated lock were already held at entry, and
// acquiring one inside them is a double-lock diagnostic.
//
// The tracking is lexical, not path- or call-graph-sensitive: a helper
// that does I/O, called under the lock, is only caught if the helper is
// named *Locked. That convention is load-bearing — keep it.
var LockscopeAnalyzer = &Analyzer{
	Name: "lockscope",
	Doc:  "no blocking calls while holding a //nm:lockscope mutex",
	Run:  runLockscope,
}

func runLockscope(pass *Pass) error {
	if len(pass.Prog.Ann.LockFields) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockScopes(pass, fd)
		}
	}
	return nil
}

// lockEvent is one occurrence relevant to lock tracking, replayed in source
// order.
type lockEvent struct {
	pos  token.Pos
	kind int // evLock, evUnlock, evDeferUnlock, evBlocking
	fld  types.Object
	what string // description of the blocking call
}

const (
	evLock = iota
	evUnlock
	evDeferUnlock
	evBlocking
)

func checkLockScopes(pass *Pass, fd *ast.FuncDecl) {
	assumed := strings.HasSuffix(fd.Name.Name, "Locked")
	var events []lockEvent

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure body runs whenever the closure runs — goroutines
			// don't inherit the lock, and deferred closures are beyond the
			// lexical model. Skip.
			return false
		case *ast.DeferStmt:
			if fld, op := lockFieldOp(pass, n.Call); fld != nil && op == "Unlock" {
				events = append(events, lockEvent{pos: n.Pos(), kind: evDeferUnlock, fld: fld})
				return false
			}
			return true
		case *ast.CallExpr:
			if fld, op := lockFieldOp(pass, n); fld != nil {
				switch op {
				case "Lock":
					events = append(events, lockEvent{pos: n.Pos(), kind: evLock, fld: fld})
				case "Unlock":
					events = append(events, lockEvent{pos: n.Pos(), kind: evUnlock, fld: fld})
				}
				// RLock/RUnlock (read side) deliberately untracked: readers
				// are lock-free by design and the write mutex is the stall
				// vector.
				return true
			}
			if what := blockingCall(pass, n); what != "" {
				events = append(events, lockEvent{pos: n.Pos(), kind: evBlocking, what: what})
			}
		}
		return true
	})

	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := make(map[types.Object]bool)
	for _, ev := range events {
		switch ev.kind {
		case evLock:
			if held[ev.fld] {
				pass.Reportf(ev.pos, "%s locked while already held (double lock deadlocks)", fieldDisplay(ev.fld))
			} else if assumed {
				pass.Reportf(ev.pos, "%s acquires %s, but *Locked functions run with the lock already held", fd.Name.Name, fieldDisplay(ev.fld))
			}
			held[ev.fld] = true
		case evUnlock:
			delete(held, ev.fld)
		case evDeferUnlock:
			held[ev.fld] = true // held to end of function
		case evBlocking:
			if len(held) > 0 || assumed {
				pass.Reportf(ev.pos, "%s while holding %s (stalls all writers)", ev.what, heldDisplay(held, assumed))
			}
		}
	}
}

// lockFieldOp reports whether call is <expr>.<field>.Lock/Unlock/... on a
// //nm:lockscope field, returning the field object and method name.
func lockFieldOp(pass *Pass, call *ast.CallExpr) (types.Object, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, ""
	}
	recv, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	s := pass.TypesInfo.Selections[recv]
	if s == nil || s.Kind() != types.FieldVal {
		return nil, ""
	}
	fld := s.Obj()
	if !pass.Prog.Ann.LockFields[fld] {
		return nil, ""
	}
	return fld, fn.Name()
}

// blockingCall returns a description if call reaches blocking stdlib
// surface, else "".
func blockingCall(pass *Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch path {
	case "time":
		if name == "Sleep" {
			return "time.Sleep"
		}
		// timer/ticker construction is fine; waiting on them needs a channel
		// op, which closures/selects sit outside this lexical model anyway.
		return ""
	case "os", "net", "os/exec", "syscall", "io/ioutil":
		return path + "." + name + " (I/O)"
	case "io":
		switch name {
		case "Copy", "CopyN", "CopyBuffer", "ReadAll", "ReadFull", "WriteString":
			return "io." + name + " (I/O)"
		}
		return ""
	case faultinjectPath:
		if name == "Sleep" {
			return "faultinject.Sleep"
		}
		return ""
	case "bufio":
		if name == "Flush" {
			return "bufio.Flush (I/O)"
		}
		return ""
	}
	// Methods on os.File, net.Conn etc.: receiver package check above
	// already covers them (fn.Pkg() is "os"/"net").
	return ""
}

func fieldDisplay(fld types.Object) string {
	v, ok := fld.(*types.Var)
	if !ok {
		return fld.Name()
	}
	return v.Pkg().Name() + " mutex ." + v.Name()
}

func heldDisplay(held map[types.Object]bool, assumed bool) string {
	var names []string
	for f := range held {
		names = append(names, "."+f.Name())
	}
	sort.Strings(names)
	if len(names) == 0 && assumed {
		return "the caller's lock (*Locked function)"
	}
	return "mutex " + strings.Join(names, ", ")
}
