package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotpathAnalyzer proves the static half of the repo's zero-alloc/zero-lock
// lookup contract. A function annotated //nm:hotpath must not contain
// allocating constructs (make/new/append, slice or map literals, closures,
// string building, boxing of non-pointer-shaped values into interfaces),
// must not touch sync primitives or channels, and may only call other
// //nm:hotpath functions, methods of //nm:hotpath interfaces (trusted
// contracts — the runtime zero-alloc guards cover concrete implementations),
// or a small allowlist (sync/atomic, math, math/bits, unsafe,
// (*sync.Pool).Get/Put, faultinject.Hit/Sleep, builtins that never
// allocate). It is the static dual of TestLookupPathsZeroAlloc: the runtime
// guard proves exercised paths allocate zero bytes, this analyzer proves the
// same for branches the tests never take.
var HotpathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "//nm:hotpath functions must be zero-alloc, zero-lock, and only call other hotpath functions",
	Run:  runHotpath,
}

func runHotpath(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, "hotpath") {
				continue
			}
			checkHotpathBody(pass, fd)
		}
	}
	return nil
}

func checkHotpathBody(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	// Funs of call expressions, so bare method/func selectors can be told
	// apart from method values (which allocate a closure).
	callFuns := make(map[ast.Expr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			callFuns[ast.Unparen(c.Fun)] = true
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "hot path spawns a goroutine")
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "hot path uses defer")
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "hot path uses select")
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "hot path sends on a channel")
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "hot path creates a closure (allocates)")
			return false // body belongs to the closure, not this function
		case *ast.UnaryExpr:
			switch n.Op {
			case token.ARROW:
				pass.Reportf(n.Pos(), "hot path receives from a channel")
			case token.AND:
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "hot path takes address of composite literal (allocates)")
				}
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "hot path builds a slice literal (allocates)")
			case *types.Map:
				pass.Reportf(n.Pos(), "hot path builds a map literal (allocates)")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n)) {
				pass.Reportf(n.Pos(), "hot path concatenates strings (allocates)")
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					pass.Reportf(n.Pos(), "hot path ranges over a channel")
				}
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Reportf(n.Pos(), "hot path ranges over a map (unordered, hashing)")
				}
			}
		case *ast.SelectorExpr:
			// A method used as a value (not called) allocates a bound-method
			// closure.
			if !callFuns[n] {
				if fn, ok := info.Uses[n.Sel].(*types.Func); ok && fn.Type().(*types.Signature).Recv() != nil {
					pass.Reportf(n.Pos(), "hot path takes method value %s (allocates a closure)", fn.Name())
				}
			}
		case *ast.IndexExpr:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Reportf(n.Pos(), "hot path indexes a map (hashing; the frozen structures are slices for a reason)")
				}
			}
		case *ast.CallExpr:
			checkHotpathCall(pass, fd, n)
		}
		return true
	})

	checkHotpathBoxing(pass, fd)
}

func checkHotpathCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.TypesInfo
	fun := ast.Unparen(call.Fun)

	// Conversion?
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		to := info.TypeOf(call)
		from := info.TypeOf(call.Args[0])
		if to != nil && from != nil && stringBytesConversion(from, to) {
			pass.Reportf(call.Pos(), "hot path converts between string and byte/rune slice (allocates)")
		}
		return
	}

	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[f]
	case *ast.SelectorExpr:
		obj = info.Uses[f.Sel]
	case *ast.FuncLit:
		return // the closure-creation diagnostic already covers this
	}

	switch o := obj.(type) {
	case *types.Builtin:
		switch o.Name() {
		case "make", "new":
			pass.Reportf(call.Pos(), "hot path calls %s (allocates)", o.Name())
		case "append":
			pass.Reportf(call.Pos(), "hot path calls append (may grow and allocate)")
		case "close":
			pass.Reportf(call.Pos(), "hot path closes a channel")
		case "delete":
			pass.Reportf(call.Pos(), "hot path mutates a map")
		case "print", "println":
			pass.Reportf(call.Pos(), "hot path calls %s", o.Name())
		}
		// len/cap/copy/min/max/panic/real/imag/complex are fine.
		return
	case *types.Func:
		self := info.Defs[fd.Name]
		if o == self || pass.Prog.Ann.Hotpath[o] || hotpathAllowlisted(o) {
			return
		}
		pass.Reportf(call.Pos(), "hot path calls %s, which is neither //nm:hotpath nor allowlisted", funcDisplayName(o))
		return
	case *types.Var, nil:
		// Calling through a func-typed value: target unknown, contract
		// unprovable.
		if obj == nil {
			// T(x) conversions through locally-aliased types land here with
			// IsType above; anything else is a dynamic call.
			pass.Reportf(call.Pos(), "hot path calls through a function value (target not statically known)")
			return
		}
		pass.Reportf(call.Pos(), "hot path calls through function variable %s (target not statically known)", obj.Name())
	}
}

// hotpathAllowlisted reports whether calls to fn are always permitted in hot
// paths: non-allocating, non-blocking stdlib leaves, plus the two in-module
// escape hatches whose disarmed fast path is a single atomic load.
func hotpathAllowlisted(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		// Universe-scope methods: error.Error etc. Treat as unknown.
		return false
	}
	switch pkg.Path() {
	case "sync/atomic", "math", "math/bits", "unsafe":
		return true
	case "sync":
		// The batch scratch pool is hot by design; Get/Put are allocation-free
		// in steady state (the runtime guard proves it).
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			if named := namedOf(recv.Type()); named != nil && named.Obj().Name() == "Pool" {
				return fn.Name() == "Get" || fn.Name() == "Put"
			}
		}
		return false
	case "nuevomatch/internal/faultinject":
		// Hit and Sleep are one atomic load when no fault is armed.
		return fn.Name() == "Hit" || fn.Name() == "Sleep"
	}
	return false
}

// checkHotpathBoxing flags conversions of non-pointer-shaped concrete values
// to interface types: in call arguments, assignments, and returns. Boxing a
// pointer-shaped value (pointer, chan, map, func, unsafe.Pointer) reuses the
// value as the interface data word and does not allocate.
func checkHotpathBoxing(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	flag := func(e ast.Expr, to types.Type) {
		from := info.TypeOf(e)
		if from == nil || to == nil {
			return
		}
		if !types.IsInterface(to) || types.IsInterface(from) {
			return
		}
		if isPointerShaped(from) {
			return
		}
		pass.Reportf(e.Pos(), "hot path boxes %s into %s (allocates)", from, to)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			tv, isConv := info.Types[ast.Unparen(n.Fun)]
			if isConv && tv.IsType() {
				flag(n.Args[0], info.TypeOf(n))
				return true
			}
			sig, ok := info.TypeOf(n.Fun).(*types.Signature)
			if !ok {
				return true
			}
			for i, arg := range n.Args {
				if i >= sig.Params().Len() {
					break // variadic tail handled via slice literal checks
				}
				p := sig.Params().At(i)
				if sig.Variadic() && i == sig.Params().Len()-1 && !n.Ellipsis.IsValid() {
					if s, ok := p.Type().(*types.Slice); ok {
						flag(arg, s.Elem())
					}
					continue
				}
				flag(arg, p.Type())
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Rhs {
					flag(n.Rhs[i], info.TypeOf(n.Lhs[i]))
				}
			}
		case *ast.ReturnStmt:
			sig, _ := info.Defs[fd.Name].Type().(*types.Signature)
			if sig != nil && len(n.Results) == sig.Results().Len() {
				for i, r := range n.Results {
					flag(r, sig.Results().At(i).Type())
				}
			}
		}
		return true
	})
}

// isPointerShaped reports whether values of t occupy a single pointer word,
// so converting them to an interface does not allocate.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// stringBytesConversion reports whether from->to is a string<->[]byte or
// string<->[]rune conversion (both directions copy).
func stringBytesConversion(from, to types.Type) bool {
	return (isStringType(from) && isByteOrRuneSlice(to)) ||
		(isStringType(to) && isByteOrRuneSlice(from))
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// namedOf strips pointers and returns the named type, or nil.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// funcDisplayName renders a callee for diagnostics: pkg.Func or
// (pkg.Type).Method.
func funcDisplayName(fn *types.Func) string {
	return fn.FullName()
}
