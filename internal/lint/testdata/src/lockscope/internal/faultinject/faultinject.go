// Package faultinject is a fixture stand-in so the lockscope analyzer's
// faultinject.Sleep blocking rule resolves the real import path.
package faultinject

type Point string

const PointSlow Point = "fixture.slow"

func Sleep(p Point) { _ = p }
