// Package lockscope exercises blocking-under-lock tracking: Lock/Unlock
// pairs, defer-Unlock, the *Locked naming convention, double locks, and the
// closure escape hatch.
package lockscope

import (
	"os"
	"sync"
	"time"

	"nuevomatch/internal/faultinject"
)

type engine struct {
	// mu guards the write side.
	//
	//nm:lockscope
	mu sync.Mutex

	other sync.Mutex
	n     int
}

func (e *engine) cleanUpdate() {
	e.mu.Lock()
	e.n++
	e.mu.Unlock()
	time.Sleep(time.Millisecond) // ok: lock released
}

func (e *engine) sleepsUnderLock() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.n++
	time.Sleep(time.Millisecond) // want "time.Sleep while holding mutex .mu"
}

func (e *engine) ioUnderLock() {
	e.mu.Lock()
	_ = os.Remove("x") // want "os.Remove .I/O. while holding mutex .mu"
	e.mu.Unlock()
}

func (e *engine) faultSleepUnderLock() {
	e.mu.Lock()
	faultinject.Sleep(faultinject.PointSlow) // want "faultinject.Sleep while holding mutex .mu"
	e.mu.Unlock()
}

func (e *engine) doubleLock() {
	e.mu.Lock()
	e.mu.Lock() // want "locked while already held"
	e.mu.Unlock()
	e.mu.Unlock()
}

func (e *engine) otherMutex() {
	e.other.Lock()
	time.Sleep(time.Millisecond) // ok: .other is not //nm:lockscope
	e.other.Unlock()
}

func (e *engine) flushLocked() {
	time.Sleep(time.Millisecond) // want "time.Sleep while holding the caller.s lock"
}

func (e *engine) acquireLocked() {
	e.mu.Lock() // want "acquireLocked acquires lockscope mutex .mu, but .Locked functions run with the lock already held"
	e.n++
	e.mu.Unlock()
}

func (e *engine) closureEscapes() {
	e.mu.Lock()
	f := func() { time.Sleep(time.Millisecond) } // ok: closures sit outside the lexical model
	f()
	e.mu.Unlock()
}
