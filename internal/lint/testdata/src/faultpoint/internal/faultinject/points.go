// Package faultinject is a fixture registry for the faultpoint analyzer:
// constant Point expressions elsewhere must reference these declarations,
// and exported points no non-test code references are flagged dead.
package faultinject

type Point string

const (
	PointGood     Point = "fixture.good"
	PointTestOnly Point = "fixture.testonly" // want "registry point PointTestOnly is never referenced from non-test code"

	// pointUnexported is exempt from the liveness cross-check.
	pointUnexported Point = "fixture.unexported"
)

func Hit(p Point) error { _ = p; return nil }

func Sleep(p Point) { _ = p }

func Enable(p Point, times int) { _, _ = p, times }

func Disable(p Point) { _ = p }

func usePrivate() { _ = pointUnexported }
