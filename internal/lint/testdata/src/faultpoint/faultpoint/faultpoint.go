// Package faultpoint exercises the constant-origin rule: every constant
// Point expression must reference the registry directly.
package faultpoint

import "nuevomatch/internal/faultinject"

func hits() {
	_ = faultinject.Hit(faultinject.PointGood)        // ok: registry constant
	_ = faultinject.Hit("raw.name")                   // want "fault point .raw.name. is not a constant from"
	faultinject.Sleep(faultinject.Point("converted")) // want "fault point .converted. is not a constant from"
	const local faultinject.Point = "local.alias"     // want "fault point .local.alias. is not a constant from"
	_ = faultinject.Hit(local)                        // want "fault point .local.alias. is not a constant from"
	forwarded(faultinject.PointGood)
}

// forwarded passes a non-constant Point through: the parameter itself is
// fine, its call sites are where the rule bites.
func forwarded(p faultinject.Point) {
	_ = faultinject.Hit(p)
}
