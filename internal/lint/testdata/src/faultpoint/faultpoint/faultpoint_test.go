package faultpoint

import "nuevomatch/internal/faultinject"

// armInTest exercises the test side: Enable/Disable must also name declared
// points, and a point referenced only here stays dead in the registry.
func armInTest() {
	faultinject.Enable(faultinject.PointGood, 1)
	faultinject.Enable("bogus.point", 1) // want "fault point .bogus.point. is not a constant from"
	faultinject.Disable(faultinject.PointTestOnly)
}
