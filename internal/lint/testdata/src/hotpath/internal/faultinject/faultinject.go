// Package faultinject is a minimal stand-in for the real registry: the
// hotpath analyzer allowlists Hit/Sleep by this exact import path, so the
// fixture module declares it under the same module name.
package faultinject

type Point string

// PointHot is referenced by the hotpath fixture's clean function.
const PointHot Point = "fixture.hot"

func Hit(p Point) error { _ = p; return nil }

func Sleep(p Point) { _ = p }
