// Package hotpath exercises every diagnostic of the hotpath analyzer, plus
// the allowlist and trusted-interface negative cases.
package hotpath

import (
	"sync"
	"sync/atomic"

	"nuevomatch/internal/faultinject"
)

type box struct {
	vals []int
	m    map[int]int
	ctr  atomic.Int64
	pool sync.Pool
	mu   sync.Mutex
}

func (b *box) method() int { return len(b.vals) }

//nm:hotpath
func helper(x int) int { return x + 1 }

func cold() int { return 0 }

// frozenIface is a trusted contract: calls through it are hot by fiat.
//
//nm:hotpath
type frozenIface interface {
	Lookup(x int) int
}

type mixedIface interface {
	// Hot carries the contract individually.
	//
	//nm:hotpath
	Hot() int
	Cold() int
}

//nm:hotpath
func clean(b *box, f frozenIface, skip []int) int {
	s := helper(len(skip))
	for _, v := range b.vals {
		s += v
	}
	b.ctr.Add(1)
	if err := faultinject.Hit(faultinject.PointHot); err != nil {
		return -1
	}
	scr := b.pool.Get()
	b.pool.Put(scr)
	s += f.Lookup(s)
	return s
}

//nm:hotpath
func viaMixed(m mixedIface) int {
	return m.Hot() + m.Cold() // want "hot path calls .nuevomatch/hotpath.mixedIface..Cold, which is neither"
}

//nm:hotpath
func boxesReturn(x int) any {
	return x // want "hot path boxes int into"
}

//nm:hotpath
func bad(b *box, ch chan int, s1, s2 string) {
	go helper(1)    // want "hot path spawns a goroutine"
	defer helper(2) // want "hot path uses defer"
	ch <- 1         // want "hot path sends on a channel"
	<-ch            // want "hot path receives from a channel"
	for range ch {  // want "hot path ranges over a channel"
	}
	select { // want "hot path uses select"
	default:
	}
	close(ch)                  // want "hot path closes a channel"
	_ = make([]int, 4)         // want "hot path calls make"
	_ = new(box)               // want "hot path calls new"
	b.vals = append(b.vals, 1) // want "hot path calls append"
	_ = []int{1, 2}            // want "hot path builds a slice literal"
	_ = map[int]int{}          // want "hot path builds a map literal"
	_ = &box{}                 // want "hot path takes address of composite literal"
	_ = b.m[3]                 // want "hot path indexes a map"
	for range b.m {            // want "hot path ranges over a map"
	}
	delete(b.m, 1) // want "hot path mutates a map"
	println(0)     // want "hot path calls println"
	_ = cold()     // want "hot path calls nuevomatch/hotpath.cold, which is neither"
	b.mu.Lock()    // want "hot path calls ..sync.Mutex..Lock, which is neither"
	_ = s1 + s2    // want "hot path concatenates strings"
	_ = []byte(s1) // want "hot path converts between string and byte/rune slice"
	_ = b.method   // want "hot path takes method value method"
	_ = func() {}  // want "hot path creates a closure"
	fv := cold
	_ = fv() // want "hot path calls through function variable fv"
	var i any
	i = 42 // want "hot path boxes int into"
	_ = i
}
