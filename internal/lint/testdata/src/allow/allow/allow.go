// Package allow exercises the //nm:allow suppression grammar: justified
// allows suppress (same line or the line above), unjustified allows do not
// and are flagged, stale and malformed allows are flagged.
package allow

//nm:hotpath
func suppressedOK() {
	//nm:allow hotpath: fixture exercises line-above suppression
	_ = make([]int, 1)
	_ = make([]int, 2) //nm:allow hotpath: fixture exercises same-line suppression
}

//nm:hotpath
func unjustified() {
	//nm:allow hotpath
	// want-above "//nm:allow hotpath without a justification"
	_ = make([]int, 3) // want "hot path calls make"
}

//nm:hotpath
func malformed() {
	//nm:allow
	// want-above "malformed //nm:allow"
	_ = make([]int, 4) // want "hot path calls make"
}

func stale() {
	//nm:allow hotpath: justified but nothing here is flagged
	// want-above "stale //nm:allow hotpath"
}

func unknownAnalyzer() {
	//nm:allow gofmt: not an nmlint analyzer
	// want-above "names unknown analyzer"
}

// notStaleWhenSkipped is justified and matches nothing, but it names an
// analyzer the TestAllowSuppression run does not include — under a partial
// run (-only) that is unexercised, not stale.
func notStaleWhenSkipped() {
	//nm:allow lockscope: exercises the partial-run staleness gate
}
