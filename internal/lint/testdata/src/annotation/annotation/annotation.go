// Package annotation exercises the malformed-directive diagnostics of the
// annotation index itself. The want-above comments trail the declaration
// line because the diagnostic lands on the directive comment itself, one
// line up.
package annotation

import "sync"

//nm:immutable
func notAType() {} // want-above "//nm:immutable does not apply to a func declaration"

//nm:builder
func noTarget() {} // want-above "//nm:builder needs one or more type names"

//nm:builder missing
func badTarget() {} // want-above "is not a type in package"

//nm:hotpath
type notIface struct { // want-above "//nm:hotpath on a type applies only to interfaces"
	//nm:lockscope
	n int // want-above "//nm:lockscope applies only to sync.Mutex or sync.RWMutex fields"

	mu sync.Mutex //nm:lockscope
}

//nm:lockscope
type wrongVerb struct{} // want-above "//nm:lockscope does not apply to a type declaration"

//nm:immutable
type notAStruct int // want-above "//nm:immutable applies only to struct types"
