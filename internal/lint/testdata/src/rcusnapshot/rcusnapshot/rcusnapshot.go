// Package rcusnapshot exercises the immutable-struct write rules: builder
// exemption, private value copies, and every shared-memory write shape.
package rcusnapshot

//nm:immutable
type frozen struct {
	n    int
	vals []int
}

type holder struct {
	f frozen
	p *frozen
}

var global holder

//nm:builder frozen
func build(vals []int) *frozen {
	f := &frozen{}
	f.vals = vals // ok: builder
	f.n = len(vals)
	return f
}

func fresh() *frozen {
	return &frozen{n: 8} // ok: composite literals produce fresh values
}

func mutatePtr(f *frozen) {
	f.n = 1       // want "write to field n of //nm:immutable frozen outside a //nm:builder frozen function"
	f.vals[0] = 2 // want "write to field vals of //nm:immutable frozen"
}

func incDec(f *frozen) {
	f.n++ // want "write to field n of //nm:immutable frozen"
}

func copyInto(f *frozen, src []int) {
	copy(f.vals, src) // want "write to field vals of //nm:immutable frozen"
}

func privateCopy(h holder) {
	c := h.f
	c.n = 4   // ok: private value copy
	h.f.n = 5 // ok: h is a by-value parameter, this writes the copy
	h.p.n = 6 // want "write to field n of //nm:immutable frozen"
	_ = c
}

func sharedValue(h *holder) {
	h.f.n = 9 // want "write to field n of //nm:immutable frozen"
}

func globalValue() {
	global.f.n = 7 // want "write to field n of //nm:immutable frozen"
}
