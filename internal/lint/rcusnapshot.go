package lint

import (
	"go/ast"
	"go/types"
)

// RcusnapshotAnalyzer proves the write-side half of the RCU discipline: a
// struct annotated //nm:immutable may only have its fields assigned inside
// functions annotated //nm:builder for that type. Everywhere else, a write
// that can reach shared memory — through a pointer, or through a slice
// element hanging off an immutable value — is a diagnostic, because the
// value may already have been published through an atomic.Pointer and
// concurrent readers see it without synchronization.
//
// Composite literals are always permitted (they produce fresh values), and
// so are field writes on a plain value-typed local (a private copy): only
// writes that can alias published memory are flagged.
var RcusnapshotAnalyzer = &Analyzer{
	Name: "rcusnapshot",
	Doc:  "//nm:immutable struct fields may only be assigned in //nm:builder functions",
	Run:  runRcusnapshot,
}

func runRcusnapshot(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fnObj := pass.TypesInfo.Defs[fd.Name]
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						checkImmutableWrite(pass, fnObj, lhs)
					}
				case *ast.IncDecStmt:
					checkImmutableWrite(pass, fnObj, n.X)
				case *ast.CallExpr:
					// copy(dst, src) mutates dst's backing array.
					if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
						if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "copy" && len(n.Args) == 2 {
							checkImmutableWrite(pass, fnObj, n.Args[0])
						}
					}
				}
				return true
			})
		}
	}
	return nil
}

// checkImmutableWrite reports a diagnostic if lhs writes (or exposes for
// writing) a field owned by an //nm:immutable struct and the enclosing
// function is not a builder for that struct.
func checkImmutableWrite(pass *Pass, fnObj types.Object, lhs ast.Expr) {
	owner, fieldName := immutableFieldOwner(pass, lhs)
	if owner == nil {
		return
	}
	if fnObj != nil && pass.Prog.Ann.IsBuilderFor(fnObj, owner) {
		return
	}
	pass.Reportf(lhs.Pos(), "write to field %s of //nm:immutable %s outside a //nm:builder %s function",
		fieldName, owner.Name(), owner.Name())
}

// immutableFieldOwner walks an lvalue chain and returns the //nm:immutable
// type whose field the write lands in, if the write can reach shared memory.
// It returns nil when the chain roots in a plain value-typed local with no
// pointer or slice traversal below the field access (a private copy).
func immutableFieldOwner(pass *Pass, lhs ast.Expr) (owner types.Object, field string) {
	info := pass.TypesInfo
	ann := pass.Prog.Ann
	for {
		lhs = ast.Unparen(lhs)
		switch e := lhs.(type) {
		case *ast.SelectorExpr:
			sel := info.Selections[e]
			if sel == nil || sel.Kind() != types.FieldVal {
				// Qualified identifier (pkg.Var) or method: not a field write
				// we track.
				return nil, ""
			}
			if named := namedOf(sel.Recv()); named != nil && ann.Immutable[named.Obj()] {
				// Writing a field of an immutable type. Allowed only when
				// the receiver chain is provably a private value copy — which
				// a pointer receiver never is: the deref at this selection
				// already reaches shared memory.
				if _, viaPtr := sel.Recv().(*types.Pointer); !viaPtr && valueCopyRoot(pass, e.X) {
					return nil, ""
				}
				return named.Obj(), e.Sel.Name
			}
			// Not (directly) an immutable owner; the write might still land
			// inside an immutable value further down, e.g. snap.inner.f where
			// inner is an immutable-typed value field of a mutable struct —
			// keep walking toward the root.
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		default:
			return nil, ""
		}
	}
}

// valueCopyRoot reports whether expr denotes memory private to the enclosing
// function: a chain of value-typed selections/array indexes rooted at a
// non-pointer local variable. Any pointer deref, slice element, call result,
// or pointer-typed variable on the way means the memory may be shared.
func valueCopyRoot(pass *Pass, expr ast.Expr) bool {
	info := pass.TypesInfo
	for {
		expr = ast.Unparen(expr)
		switch e := expr.(type) {
		case *ast.Ident:
			v, ok := info.Uses[e].(*types.Var)
			if !ok {
				return false
			}
			if v.IsField() {
				return false
			}
			if _, isPtr := v.Type().Underlying().(*types.Pointer); isPtr {
				return false
			}
			// A plain value-typed local (or parameter): a private copy.
			// Package-level vars are shared even when value-typed.
			return v.Parent() != v.Pkg().Scope()
		case *ast.SelectorExpr:
			sel := info.Selections[e]
			if sel == nil || sel.Kind() != types.FieldVal || sel.Indirect() {
				return false
			}
			expr = e.X
		case *ast.IndexExpr:
			if t := info.TypeOf(e.X); t != nil {
				if _, isArray := t.Underlying().(*types.Array); isArray {
					expr = e.X // array element lives inside the value
					continue
				}
			}
			return false // slice element: shared backing array
		default:
			return false
		}
	}
}
