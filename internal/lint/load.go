package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// The loader typechecks every main-module package (including test variants)
// from source and imports everything else — the standard library — from the
// compiler export data that `go list -export` produces in the build cache.
// That keeps the whole pipeline offline and dependency-free: the stdlib gc
// importer reads the export files directly, and in-module imports resolve
// to the source-checked packages so object identities line up across the
// program.

// Package is one source-typechecked package of the loaded program.
type Package struct {
	// ID is go list's ImportPath, which for test variants carries the
	// " [pkg.test]" suffix that distinguishes them from the plain package.
	ID string
	// PkgPath is the plain import path (ForTest for augmented variants).
	PkgPath string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// TestVariant marks the test-augmented build of a package ("p [p.test]")
	// and external test packages ("p_test").
	TestVariant bool
}

// Program is a loaded, typechecked module ready for analysis.
type Program struct {
	Fset *token.FileSet
	// Targets are the packages analyzers visit: each compiled file of the
	// module exactly once (the test-augmented variant supersedes the plain
	// package, which is kept only for import resolution).
	Targets []*Package
	// ByID indexes every source-checked package, including non-target ones.
	ByID map[string]*Package
	// Ann is the program-wide annotation index.
	Ann *Annotations
	// Complete reports that the load covered the whole main module (a
	// recursive pattern rooted at the module directory). Whole-program
	// cross-checks — the dead-registry-point scan — are only sound when it
	// is set: on a narrowed load, "unreferenced" may just mean "referenced
	// from a package we did not load".
	Complete bool

	state  map[string]any
	allows []*allowSite
}

// listPkg mirrors the `go list -json` fields the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	ForTest    string
	DepOnly    bool
	Module     *struct {
		Path string
		Dir  string
		Main bool
	}
	Error *struct {
		Err string
	}
	Incomplete bool
}

// Load runs `go list` in dir over patterns and typechecks the main-module
// packages (test variants included) from source.
func Load(dir string, patterns []string) (*Program, error) {
	args := append([]string{
		"list", "-e", "-test", "-deps", "-export",
		"-json=Dir,ImportPath,Name,Export,GoFiles,Imports,ImportMap,Standard,ForTest,DepOnly,Module,Error,Incomplete",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}

	ld := &loader{
		fset:    token.NewFileSet(),
		exports: make(map[string]string),
		srcList: make(map[string]*listPkg),
		srcPkgs: make(map[string]*Package),
	}
	for _, lp := range pkgs {
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			ld.exports[lp.ImportPath] = lp.Export
		}
		if lp.Module != nil && lp.Module.Main && !lp.Standard &&
			lp.Name != "" && !strings.HasSuffix(lp.ImportPath, ".test") {
			ld.srcList[lp.ImportPath] = lp
		}
	}
	ld.gc = importer.ForCompiler(ld.fset, "gc", ld.lookupExport)

	// Typecheck every source package (ensure recurses through in-module
	// imports first).
	ids := make([]string, 0, len(ld.srcList))
	for id := range ld.srcList {
		ids = append(ids, id)
	}
	// Deterministic order keeps error output stable.
	sortStrings(ids)
	for _, id := range ids {
		if _, err := ld.ensure(id); err != nil {
			return nil, err
		}
	}

	prog := &Program{
		Fset:  ld.fset,
		ByID:  ld.srcPkgs,
		state: make(map[string]any),
	}
	// A package whose test-augmented variant was loaded contributes its
	// files through that variant; analyzing both would just duplicate work.
	augmented := make(map[string]bool)
	for id, lp := range ld.srcList {
		if lp.ForTest != "" && packageVariantIsAugmented(lp) {
			augmented[lp.ForTest] = true
			_ = id
		}
	}
	for _, id := range ids {
		lp := ld.srcList[id]
		if lp.ForTest == "" && augmented[lp.ImportPath] {
			continue
		}
		prog.Targets = append(prog.Targets, ld.srcPkgs[id])
	}
	prog.Ann = indexAnnotations(prog)
	prog.allows = collectAllows(prog)
	prog.Complete = loadIsComplete(dir, patterns, pkgs)
	return prog, nil
}

// loadIsComplete reports whether the load covered the entire main module:
// a recursive pattern, evaluated from the module root itself.
func loadIsComplete(dir string, patterns []string, pkgs []*listPkg) bool {
	recursive := false
	for _, p := range patterns {
		if p == "./..." || p == "all" {
			recursive = true
			break
		}
	}
	if !recursive {
		return false
	}
	moduleDir := ""
	for _, lp := range pkgs {
		if lp.Module != nil && lp.Module.Main && lp.Module.Dir != "" {
			moduleDir = lp.Module.Dir
			break
		}
	}
	if moduleDir == "" {
		return false
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return false
	}
	real, err1 := filepath.EvalSymlinks(abs)
	realMod, err2 := filepath.EvalSymlinks(moduleDir)
	return err1 == nil && err2 == nil && real == realMod
}

// packageVariantIsAugmented distinguishes "p [p.test]" (augmented in-package
// variant, same package name) from "p_test [p.test]" (external test
// package).
func packageVariantIsAugmented(lp *listPkg) bool {
	return !strings.HasSuffix(lp.Name, "_test")
}

type loader struct {
	fset    *token.FileSet
	exports map[string]string   // import path -> export data file
	srcList map[string]*listPkg // go list records of source-checked packages
	srcPkgs map[string]*Package // completed packages
	gc      types.Importer
	pending []string // ensure stack, for cycle reporting
}

func (l *loader) lookupExport(path string) (io.ReadCloser, error) {
	f, ok := l.exports[path]
	if !ok {
		return nil, fmt.Errorf("lint: no export data for %q (not in go list -deps closure)", path)
	}
	return os.Open(f)
}

// ensure returns the typechecked package for id, building it (and its
// in-module dependencies) on demand.
func (l *loader) ensure(id string) (*Package, error) {
	if p, ok := l.srcPkgs[id]; ok {
		if p == nil {
			return nil, fmt.Errorf("lint: import cycle through %s (%v)", id, l.pending)
		}
		return p, nil
	}
	lp := l.srcList[id]
	if lp == nil {
		return nil, fmt.Errorf("lint: internal error: %s not in source set", id)
	}
	l.srcPkgs[id] = nil // cycle marker
	l.pending = append(l.pending, id)
	defer func() { l.pending = l.pending[:len(l.pending)-1] }()

	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %v", path, err)
		}
		files = append(files, f)
	}

	pkgPath := lp.ImportPath
	if lp.ForTest != "" && packageVariantIsAugmented(lp) {
		pkgPath = lp.ForTest
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := &types.Config{
		Importer: &pkgImporter{l: l, lp: lp},
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(pkgPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: typecheck %s: %v", id, typeErrs[0])
	}
	p := &Package{
		ID:          id,
		PkgPath:     pkgPath,
		Files:       files,
		Types:       tpkg,
		Info:        info,
		TestVariant: lp.ForTest != "",
	}
	l.srcPkgs[id] = p
	return p, nil
}

// pkgImporter resolves one package's imports: in-module source packages by
// identity, everything else through gc export data. ImportMap rewires test
// imports ("p" -> "p [p.test]") and vendoring.
type pkgImporter struct {
	l  *loader
	lp *listPkg
}

func (pi *pkgImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	resolved := path
	if r, ok := pi.lp.ImportMap[path]; ok {
		resolved = r
	}
	if _, ok := pi.l.srcList[resolved]; ok {
		p, err := pi.l.ensure(resolved)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return pi.l.gc.Import(resolved)
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// --- suppression handling --------------------------------------------------

// collectAllows scans every target file for //nm:allow comments.
func collectAllows(prog *Program) []*allowSite {
	var out []*allowSite
	seen := make(map[token.Pos]bool)
	for _, pkg := range prog.Targets {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					d, ok := parseDirective(c)
					if !ok || d.verb != "allow" || seen[c.Pos()] {
						continue
					}
					seen[c.Pos()] = true
					name, reason, found := strings.Cut(d.args, ":")
					tf := prog.Fset.File(c.Pos())
					site := &allowSite{
						file:     tf,
						line:     tf.Line(c.Pos()),
						analyzer: strings.TrimSpace(name),
						reason:   strings.TrimSpace(reason),
						pos:      c.Pos(),
					}
					if !found {
						site.reason = ""
					}
					out = append(out, site)
				}
			}
		}
	}
	return out
}

// filterSuppressed removes diagnostics covered by a justified //nm:allow on
// the same line or the line immediately above.
func (prog *Program) filterSuppressed(diags []Diagnostic) []Diagnostic {
	if len(prog.allows) == 0 {
		return diags
	}
	out := diags[:0]
	for _, d := range diags {
		tf := prog.Fset.File(d.Pos)
		line := tf.Line(d.Pos)
		suppressed := false
		for _, a := range prog.allows {
			if a.file != tf || a.analyzer != d.Analyzer || a.reason == "" {
				continue
			}
			if a.line == line || a.line == line-1 {
				a.used = true
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	return out
}

// badAllows flags suppressions without a justification, suppressions naming
// an analyzer that does not exist, and suppressions that matched nothing
// (stale allows hide future regressions). Staleness is only judged against
// analyzers that actually ran (ran): under -only, an allow for a skipped
// analyzer is not stale, just unexercised.
func (prog *Program) badAllows(ran map[string]bool) []Diagnostic {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, a := range prog.allows {
		switch {
		case a.analyzer == "":
			out = append(out, Diagnostic{Analyzer: "allow", Pos: a.pos,
				Message: "malformed //nm:allow: want //nm:allow <analyzer>: <reason>"})
		case !known[a.analyzer]:
			out = append(out, Diagnostic{Analyzer: "allow", Pos: a.pos,
				Message: fmt.Sprintf("//nm:allow %s names unknown analyzer %q (have %s)", a.analyzer, a.analyzer, knownAnalyzerList())})
		case a.reason == "":
			out = append(out, Diagnostic{Analyzer: "allow", Pos: a.pos,
				Message: fmt.Sprintf("//nm:allow %s without a justification (want //nm:allow %s: <reason>)", a.analyzer, a.analyzer)})
		case !a.used && ran[a.analyzer]:
			out = append(out, Diagnostic{Analyzer: "allow", Pos: a.pos,
				Message: fmt.Sprintf("stale //nm:allow %s: no %s diagnostic on this or the next line", a.analyzer, a.analyzer)})
		}
	}
	return out
}

func knownAnalyzerList() string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}
