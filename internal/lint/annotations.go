package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Annotations is the program-wide index of //nm: directives, keyed by
// types.Object so lookups work across packages and across test variants
// (every variant is indexed, and a use always resolves to an object from a
// source-checked package of the same build).
type Annotations struct {
	// Hotpath holds funcs and methods carrying //nm:hotpath, plus every
	// method of an annotated interface (trusted contracts).
	Hotpath map[types.Object]bool
	// Immutable holds the *types.TypeName of each //nm:immutable struct.
	Immutable map[types.Object]bool
	// Builders maps a builder func to the set of immutable types whose
	// fields it may assign.
	Builders map[types.Object]map[types.Object]bool
	// LockFields holds the struct fields (sync.Mutex / sync.RWMutex)
	// carrying //nm:lockscope.
	LockFields map[types.Object]bool

	// Malformed collects bad annotations (unknown builder target,
	// //nm:immutable on a non-struct, //nm:lockscope on a non-mutex).
	// Reported under the "annotation" pseudo-analyzer.
	Malformed []Diagnostic
}

func indexAnnotations(prog *Program) *Annotations {
	ann := &Annotations{
		Hotpath:    make(map[types.Object]bool),
		Immutable:  make(map[types.Object]bool),
		Builders:   make(map[types.Object]map[types.Object]bool),
		LockFields: make(map[types.Object]bool),
	}
	targets := make(map[*Package]bool, len(prog.Targets))
	for _, p := range prog.Targets {
		targets[p] = true
	}
	for _, pkg := range prog.ByID {
		// Malformed-annotation diagnostics come only from analysis targets:
		// a package and its test variant parse the same files, and reporting
		// both copies would duplicate every finding.
		ann.indexPackage(pkg, targets[pkg])
	}
	return ann
}

func (ann *Annotations) indexPackage(pkg *Package, reportMalformed bool) {
	report := func(pos token.Pos, format string, args ...any) {
		if reportMalformed {
			ann.Malformed = append(ann.Malformed, Diagnostic{
				Analyzer: "annotation", Pos: pos, Message: fmt.Sprintf(format, args...),
			})
		}
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				ann.indexFunc(pkg, d, report)
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts := spec.(*ast.TypeSpec)
					doc := ts.Doc
					if doc == nil && len(d.Specs) == 1 {
						doc = d.Doc
					}
					ann.indexType(pkg, ts, doc, report)
				}
			}
		}
	}
}

func (ann *Annotations) indexFunc(pkg *Package, d *ast.FuncDecl, report func(token.Pos, string, ...any)) {
	obj := pkg.Info.Defs[d.Name]
	if obj == nil {
		return
	}
	for _, dir := range parseDirectives(d.Doc) {
		switch dir.verb {
		case "hotpath":
			ann.Hotpath[obj] = true
		case "builder":
			if dir.args == "" {
				report(dir.pos, "//nm:builder needs one or more type names")
				continue
			}
			set := ann.Builders[obj]
			if set == nil {
				set = make(map[types.Object]bool)
				ann.Builders[obj] = set
			}
			for _, name := range strings.Split(dir.args, ",") {
				name = strings.TrimSpace(name)
				tobj, ok := pkg.Types.Scope().Lookup(name).(*types.TypeName)
				if !ok {
					report(dir.pos, "//nm:builder: %q is not a type in package %s", name, pkg.PkgPath)
					continue
				}
				set[tobj] = true
			}
		case "immutable", "lockscope":
			report(dir.pos, "//nm:%s does not apply to a func declaration", dir.verb)
		}
	}
}

func (ann *Annotations) indexType(pkg *Package, ts *ast.TypeSpec, doc *ast.CommentGroup, report func(token.Pos, string, ...any)) {
	obj := pkg.Info.Defs[ts.Name]
	if obj == nil {
		return
	}
	iface, isIface := ts.Type.(*ast.InterfaceType)
	st, isStruct := ts.Type.(*ast.StructType)
	for _, dir := range parseDirectives(doc) {
		switch dir.verb {
		case "immutable":
			if !isStruct {
				report(dir.pos, "//nm:immutable applies only to struct types")
				continue
			}
			ann.Immutable[obj] = true
		case "hotpath":
			if !isIface {
				report(dir.pos, "//nm:hotpath on a type applies only to interfaces (annotate funcs individually)")
				continue
			}
			for _, m := range iface.Methods.List {
				for _, name := range m.Names {
					if mobj := pkg.Info.Defs[name]; mobj != nil {
						ann.Hotpath[mobj] = true
					}
				}
			}
		case "builder", "lockscope":
			report(dir.pos, "//nm:%s does not apply to a type declaration", dir.verb)
		}
	}
	// Per-method //nm:hotpath inside an interface.
	if isIface {
		for _, m := range iface.Methods.List {
			if hasDirective(m.Doc, "hotpath") || hasDirective(m.Comment, "hotpath") {
				for _, name := range m.Names {
					if mobj := pkg.Info.Defs[name]; mobj != nil {
						ann.Hotpath[mobj] = true
					}
				}
			}
		}
	}
	// //nm:lockscope on struct fields.
	if isStruct && st.Fields != nil {
		for _, fld := range st.Fields.List {
			dirs := append(parseDirectives(fld.Doc), parseDirectives(fld.Comment)...)
			for _, dir := range dirs {
				if dir.verb != "lockscope" {
					continue
				}
				for _, name := range fld.Names {
					fobj := pkg.Info.Defs[name]
					if fobj == nil {
						continue
					}
					if !isMutexType(fobj.Type()) {
						report(dir.pos, "//nm:lockscope applies only to sync.Mutex or sync.RWMutex fields")
						continue
					}
					ann.LockFields[fobj] = true
				}
			}
		}
	}
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (or a pointer
// to one).
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// IsBuilderFor reports whether fn may assign fields of the immutable type.
func (ann *Annotations) IsBuilderFor(fn, typ types.Object) bool {
	return ann.Builders[fn][typ]
}
