//go:build amd64 && !noasm

package rqrmi

import "nuevomatch/internal/cpu"

// asmKernelAvailable is decided at startup from CPUID: the assembly kernel
// needs AVX2 (VBROADCASTSS from register, VPBROADCASTD) plus OS-enabled YMM
// state. internal/cpu's init runs first by package dependency order.
var asmKernelAvailable = cpu.X86.HasAVX2

// evalBlockAVX2 evaluates one submodel over n keys (n > 0, n%8 == 0,
// h > 0). tri points at the submodel's h interleaved (w1, b1, w2) triplets,
// hdr at its {inLo, invSpan, b2} header. Bit-identical to
// flatStages32.evalBlockGo by construction; see kernel_amd64.s.
//
//nm:hotpath
//go:noescape
func evalBlockAVX2(tri *float32, h int64, hdr *float32, x *float32, y *float32, n int64)
