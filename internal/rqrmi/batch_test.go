package rqrmi

import (
	"bytes"
	"math/rand"
	"testing"

	"nuevomatch/internal/rules"
)

// randomEntries builds n non-overlapping ranges with gaps so both hit and
// miss paths are exercised.
func randomEntries(rng *rand.Rand, n int) []Entry {
	entries := make([]Entry, 0, n)
	lo := uint32(rng.Intn(1000))
	for i := 0; i < n; i++ {
		hi := lo + uint32(rng.Intn(1<<16))
		entries = append(entries, Entry{Range: rules.Range{Lo: lo, Hi: hi}, Value: i})
		lo = hi + 2 + uint32(rng.Intn(5000))
	}
	return entries
}

func TestLookupEntryBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 7, 100, 2000} {
		entries := randomEntries(rng, n)
		cfg := DefaultConfig(n)
		cfg.InternalEpochs = 100
		cfg.LeafEpochs = 150
		m, _, err := Train(entries, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if m.flat == nil {
			t.Fatalf("n=%d: trained model must have flattened parameters", n)
		}
		// Keys: uniform random plus exact boundaries (worst case for the
		// secondary search window).
		keys := make([]uint32, 0, 4096)
		for i := 0; i < 2048; i++ {
			keys = append(keys, rng.Uint32())
		}
		for _, e := range entries {
			keys = append(keys, e.Range.Lo, e.Range.Hi)
		}
		out := make([]int32, len(keys))
		m.LookupEntryBatch(keys, out)
		for i, k := range keys {
			idx, ok := m.LookupEntry(k)
			want := int32(-1)
			if ok {
				want = int32(idx)
			}
			if out[i] != want {
				t.Fatalf("n=%d key %d: batch %d, scalar %d", n, k, out[i], want)
			}
		}
	}
}

func TestLookupEntryBatchAfterSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	entries := randomEntries(rng, 300)
	cfg := DefaultConfig(len(entries))
	cfg.InternalEpochs = 100
	cfg.LeafEpochs = 150
	m, _, err := Train(entries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.flat == nil {
		t.Fatal("deserialized model must have flattened parameters")
	}
	keys := make([]uint32, 1000)
	for i := range keys {
		keys[i] = rng.Uint32()
	}
	a := make([]int32, len(keys))
	b := make([]int32, len(keys))
	m.LookupEntryBatch(keys, a)
	m2.LookupEntryBatch(keys, b)
	for i := range keys {
		if a[i] != b[i] {
			t.Fatalf("key %d: original %d, round-trip %d", keys[i], a[i], b[i])
		}
	}
}

func TestLookupEntryBatchEmptyModel(t *testing.T) {
	m, _, err := Train(nil, DefaultConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int32, 3)
	m.LookupEntryBatch([]uint32{1, 2, 3}, out)
	for i, v := range out {
		if v != -1 {
			t.Fatalf("out[%d] = %d, want -1", i, v)
		}
	}
}
