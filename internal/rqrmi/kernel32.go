package rqrmi

import (
	"fmt"
	"math"
	"sync/atomic"

	"nuevomatch/internal/cpu"
)

// This file is the float32 inference path of §4: the paper evaluates
// submodels in single precision so that AVX processes 8 lanes per
// instruction. flatStages32 mirrors flatStages in float32 with the
// per-submodel parameters interleaved for broadcast-friendly streaming, and
// evalBlock dispatches between the hand-written AVX2 kernel
// (kernel_amd64.s) and the portable pure-Go form below.
//
// Numeric contract: the assembly kernel and evalBlockGo are BIT-IDENTICAL.
// Both compute, per lane,
//
//	u = (x - inLo) * invSpan            // sub, then mul (no division)
//	z = u*w + b; z = (z > 0) ? z : +0   // mul, add, max — never fused
//	y += v*z                            // mul, add — never fused
//	y = min(max(y, +0), clampHi32)
//
// with round-to-nearest float32 at every step. The Go form wraps each
// product in an explicit float32 conversion, which the language spec defines
// as a rounding barrier, so compilers that auto-fuse mul+add (arm64, ppc64)
// cannot change the result; the assembly uses separate VMULPS/VADDPS for the
// same reason. The max/min comparisons use the asymmetric IEEE select
// semantics of VMAXPS/VMINPS (second source wins on equal or NaN), matched
// in Go by `if !(y > 0) { y = 0 }` style negated comparisons — except that
// the Go hidden-unit loop skips inactive units outright, which is proven
// equivalent in evalBlockGo's comment.
//
// Because float32 arithmetic differs from the float64 arithmetic the error
// bounds were proven under, the float32 path re-validates the bounds at
// finalize time (revalidateF32) and — decisively — detects at lookup time
// when a prediction escaped its search window and falls back to the exact
// scalar path for that key (see lookupEntryBatchF32). Correctness therefore
// never rests on the float32 bounds; they are purely a performance
// parameter.

// scale32 maps a uint32 key into [0,1) in float32. The conversion
// float32(key) rounds the key to 24 significant bits first; the subsequent
// power-of-two scaling is exact.
const scale32 = float32(1.0 / (1 << 32))

// clampHi32 is the largest float32 below 1.0 (= 1 - 2^-24), the float32
// analogue of clampHi.
const clampHi32 = float32(1) - 1.0/(1<<24)

// flatStages32 packs every submodel's parameters in float32. The hidden
// coefficients of global submodel g are interleaved as (w1, b1, w2)
// triplets at tri[g*3h : (g+1)*3h] so the kernel's inner loop streams one
// cache-line sequence per submodel; the three per-submodel scalars live at
// hdr[3g : 3g+3] = {inLo, invSpan, b2}.
//
//nm:immutable
type flatStages32 struct {
	h   int
	off []int32 // off[s] is the global index of stage s's first submodel
	tri []float32
	hdr []float32
}

// flatten32 derives the float32 parameter form from the float64 flat form.
// It returns nil when f is nil (non-uniform hidden width), when a
// submodel's input span collapses under float32, or when any parameter is
// non-finite (both possible only for hand-crafted or legacy serialized
// models), in which case batched lookups stay on the float64 path. The
// finiteness requirement lets evalBlockGo skip inactive hidden units (see
// the note there) while staying bit-identical to the assembly.
//
//nm:builder flatStages32
func flatten32(f *flatStages) *flatStages32 {
	if f == nil {
		return nil
	}
	total := len(f.b2)
	h := f.h
	f32 := &flatStages32{
		h:   h,
		off: make([]int32, len(f.off)),
		tri: make([]float32, total*3*h),
		hdr: make([]float32, total*3),
	}
	for s, o := range f.off {
		f32.off[s] = int32(o)
	}
	for g := 0; g < total; g++ {
		base := g * h
		tb := g * 3 * h
		for k := 0; k < h; k++ {
			f32.tri[tb+3*k] = float32(f.w1[base+k])
			f32.tri[tb+3*k+1] = float32(f.b1[base+k])
			f32.tri[tb+3*k+2] = float32(f.w2[base+k])
		}
		for _, v := range f32.tri[tb : tb+3*h] {
			if math.IsInf(float64(v), 0) || v != v {
				return nil
			}
		}
		span := float32(f.inSp[g])
		if !(span > 0) {
			return nil
		}
		inv := 1 / span
		if math.IsInf(float64(inv), 0) {
			return nil // denormal span: reciprocal overflows, keep float64 path
		}
		lo32 := float32(f.inLo[g])
		b232 := float32(f.b2[g])
		if math.IsInf(float64(lo32), 0) || math.IsInf(float64(b232), 0) || lo32 != lo32 || b232 != b232 {
			return nil
		}
		f32.hdr[3*g] = lo32
		f32.hdr[3*g+1] = inv
		f32.hdr[3*g+2] = b232
	}
	return f32
}

// evalBlock evaluates submodel g over x into y (len(y) >= len(x)) with the
// active kernel: the AVX2 assembly when asm is true (multiples of 8 lanes;
// the tail runs through the bit-identical Go form), the pure-Go form
// otherwise.
//
//nm:hotpath
func (f *flatStages32) evalBlock(g int, x, y []float32, asm bool) {
	if asm && f.h > 0 {
		nw := len(x) &^ 7
		if nw > 0 {
			evalBlockAVX2(&f.tri[g*3*f.h], int64(f.h), &f.hdr[3*g], &x[0], &y[0], int64(nw))
		}
		r := len(x) - nw
		if r == 0 {
			return
		}
		// A big-enough tail is cheaper as one more 8-wide block overlapping
		// the last vector's lanes than as r scalar passes: the overlapped
		// lanes recompute the same parameters on the same inputs, so they
		// rewrite y with bit-identical values. Needs len(x) >= 8 so the
		// window stays inside this group's slice.
		if r >= 3 && nw > 0 {
			t := len(x) - 8
			evalBlockAVX2(&f.tri[g*3*f.h], int64(f.h), &f.hdr[3*g], &x[t], &y[t], 8)
			return
		}
		x, y = x[nw:], y[nw:]
	}
	f.evalBlockGo(g, x, y)
}

// evalBlockGo is the portable kernel: four keys per pass in named locals
// (Go's register allocator scalarizes named variables but not arrays — the
// Table 1 lesson), every operation mirroring one vector instruction of the
// assembly kernel — modulo the inactive-unit skip argued below — so results
// are bit-identical lane for lane.
//
//nm:hotpath
func (f *flatStages32) evalBlockGo(g int, x, y []float32) {
	h := f.h
	tri := f.tri[g*3*h : g*3*h+3*h]
	inLo, invSp, b2 := f.hdr[3*g], f.hdr[3*g+1], f.hdr[3*g+2]
	// Inactive hidden units (z <= 0 or z NaN) are skipped instead of
	// accumulating the assembly's v*ReLU(z) = v*(+0) = ±0 term. With every
	// parameter finite (flatten32 guarantees it), the two accumulator
	// evolutions can differ only while both sit in {+0, -0} — adding ±0 to
	// any non-zero, Inf, or NaN value is the identity, and the first such
	// term moves both accumulators to the same value. A sum that ends in
	// the ±0 state is mapped to +0 by the final max(y, +0) clamp either
	// way, so the stored outputs stay bit-identical while the skip saves a
	// dependent multiply-add per inactive unit.
	c := 0
	for ; c+4 <= len(x); c += 4 {
		u0 := (x[c] - inLo) * invSp
		u1 := (x[c+1] - inLo) * invSp
		u2 := (x[c+2] - inLo) * invSp
		u3 := (x[c+3] - inLo) * invSp
		y0, y1, y2, y3 := b2, b2, b2, b2
		for k := 0; k+3 <= len(tri); k += 3 {
			w, b, v := tri[k], tri[k+1], tri[k+2]
			if z0 := float32(u0*w) + b; z0 > 0 {
				y0 += float32(v * z0)
			}
			if z1 := float32(u1*w) + b; z1 > 0 {
				y1 += float32(v * z1)
			}
			if z2 := float32(u2*w) + b; z2 > 0 {
				y2 += float32(v * z2)
			}
			if z3 := float32(u3*w) + b; z3 > 0 {
				y3 += float32(v * z3)
			}
		}
		y[c] = clamp01f32(y0)
		y[c+1] = clamp01f32(y1)
		y[c+2] = clamp01f32(y2)
		y[c+3] = clamp01f32(y3)
	}
	for ; c < len(x); c++ {
		u := (x[c] - inLo) * invSp
		yy := b2
		for k := 0; k+3 <= len(tri); k += 3 {
			if z := float32(u*tri[k]) + tri[k+1]; z > 0 {
				yy += float32(tri[k+2] * z)
			}
		}
		y[c] = clamp01f32(yy)
	}
}

// clamp01f32 matches the assembly's VMAXPS(·, +0) then VMINPS(·, clampHi32)
// exactly, including the ±0 and NaN select direction (second source wins).
//
//nm:hotpath
func clamp01f32(y float32) float32 {
	if !(y > 0) {
		y = 0
	}
	if !(y < clampHi32) {
		y = clampHi32
	}
	return y
}

// quantize32 mirrors quantize under float32 products.
//
//nm:hotpath
func quantize32(y, fw float32, outW int32) int32 {
	b := int32(y * fw)
	if b < 0 {
		b = 0
	} else if b >= outW {
		b = outW - 1
	}
	return b
}

// route evaluates the full staged pipeline for one key under float32
// arithmetic (scalar lanes of the batch kernel are bit-identical to vector
// lanes, so this reproduces exactly what lookupEntryBatchF32 computes).
// Used by the finalize-time bound re-validation.
func (f *flatStages32) route(key uint32, widths []int, nEntries int) (leaf, pred int32) {
	var xa, ya [1]float32
	xa[0] = float32(key) * scale32
	j := int32(0)
	last := len(widths) - 1
	for s := 0; s <= last; s++ {
		outW := nEntries
		if s < last {
			outW = widths[s+1]
		}
		f.evalBlockGo(int(f.off[s]+j), xa[:], ya[:])
		q := quantize32(ya[0], float32(outW), int32(outW))
		if s == last {
			return j, q
		}
		j = q
	}
	return 0, 0
}

// --- kernel selection -----------------------------------------------------

// Kernel mode names accepted by SetKernelMode.
const (
	KernelAuto = "auto" // AVX2 assembly when the host supports it, else pure Go
	KernelGo   = "go"   // portable pure-Go float32 kernel
	KernelAsm  = "asm"  // AVX2 assembly; SetKernelMode errors if unsupported
)

// kernelUseAsm is read once per LookupEntryBatch call. It is atomic so
// tests and tools may switch kernels while lookups run (both kernels
// produce bit-identical results, so a racing switch is benign).
var kernelUseAsm atomic.Bool

func init() {
	kernelUseAsm.Store(asmKernelAvailable)
}

// SetKernelMode selects the batched inference kernel: KernelAuto,
// KernelGo, or KernelAsm. KernelAsm errors when the assembly kernel is not
// available (non-amd64, noasm build, or no AVX2 on the host).
func SetKernelMode(mode string) error {
	switch mode {
	case KernelAuto:
		kernelUseAsm.Store(asmKernelAvailable)
	case KernelGo:
		kernelUseAsm.Store(false)
	case KernelAsm:
		if !asmKernelAvailable {
			return fmt.Errorf("rqrmi: asm kernel unavailable (GOARCH, noasm build tag, or missing AVX2; host features %v)", cpu.Features())
		}
		kernelUseAsm.Store(true)
	default:
		return fmt.Errorf("rqrmi: unknown kernel mode %q (want %s, %s or %s)", mode, KernelAuto, KernelGo, KernelAsm)
	}
	return nil
}

// HasAsmKernel reports whether the AVX2 assembly kernel can run on this
// build and host.
func HasAsmKernel() bool { return asmKernelAvailable }

// KernelName identifies the active batched-inference kernel for bench
// artifacts: "avx2" or "go-f32".
func KernelName() string {
	if kernelUseAsm.Load() {
		return "avx2"
	}
	return "go-f32"
}
