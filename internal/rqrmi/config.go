package rqrmi

import "runtime"

// Config controls RQ-RMI training. Zero fields take defaults from
// DefaultConfig.
type Config struct {
	// StageWidths is the number of submodels per stage (Table 4 of the
	// paper). The first width must be 1. Widths are clamped to the number
	// of entries during training.
	StageWidths []int
	// Hidden is the number of hidden neurons per submodel (the paper
	// fixes 8, which affords a vectorizable inference kernel).
	Hidden int
	// TargetError is the desired worst-case search distance (§3.5.6). A
	// leaf exceeding it is retrained with twice the samples, up to
	// MaxRetrain attempts; afterwards the measured bound is accepted as-is
	// — lookups stay correct, only the secondary search gets longer.
	TargetError int
	// MaxRetrain is the number of sample-doubling retrain attempts.
	MaxRetrain int
	// MinSamples/MaxSamples bound the per-submodel training-set size.
	MinSamples, MaxSamples int
	// InternalEpochs/LeafEpochs are the Adam epochs per submodel.
	InternalEpochs, LeafEpochs int
	// LR is the Adam step size.
	LR float64
	// Seed makes training deterministic, including under parallelism.
	Seed int64
	// Workers is the number of goroutines training submodels of one stage
	// concurrently. 0 means GOMAXPROCS.
	Workers int
	// SafetySlack widens every stored leaf error bound; the default of 1
	// costs one extra binary-search step and absorbs the error-bound
	// boundary case where the predicted index sits exactly on the window
	// edge. Set to a negative value to store exactly the measured bound.
	SafetySlack int
}

// StageWidthsForSize returns the stage configuration of Table 4 for a given
// number of indexed ranges.
func StageWidthsForSize(n int) []int {
	switch {
	case n < 1_000:
		return []int{1, 4}
	case n < 10_000:
		return []int{1, 4, 16}
	case n < 100_000:
		return []int{1, 4, 128}
	case n <= 250_000:
		return []int{1, 8, 256}
	default:
		return []int{1, 8, 512}
	}
}

// DefaultConfig returns the training configuration used throughout the
// paper's evaluation for a model over n ranges: Table 4 stage widths, 8
// hidden neurons, and a maximum error threshold of 64 (§5.1). Dense key
// clusters can leave individual leaves above the threshold after the
// retrain loop exhausts its attempts; as §3.5.6 prescribes, the measured
// bound is then accepted (the operator's "increase the target" escape
// hatch), which lengthens that leaf's secondary search by a few binary
// steps but never compromises correctness.
func DefaultConfig(n int) Config {
	return Config{
		StageWidths:    StageWidthsForSize(n),
		Hidden:         8,
		TargetError:    64,
		MaxRetrain:     5,
		MinSamples:     128,
		MaxSamples:     1 << 15,
		InternalEpochs: 400,
		LeafEpochs:     600,
		LR:             0.03,
		Seed:           42,
		Workers:        runtime.GOMAXPROCS(0),
		SafetySlack:    1,
	}
}

func (c Config) withDefaults(n int) Config {
	d := DefaultConfig(n)
	if len(c.StageWidths) == 0 {
		c.StageWidths = d.StageWidths
	}
	if c.Hidden <= 0 {
		c.Hidden = d.Hidden
	}
	if c.TargetError <= 0 {
		c.TargetError = d.TargetError
	}
	if c.MaxRetrain <= 0 {
		c.MaxRetrain = d.MaxRetrain
	}
	if c.MinSamples <= 0 {
		c.MinSamples = d.MinSamples
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = d.MaxSamples
	}
	if c.InternalEpochs <= 0 {
		c.InternalEpochs = d.InternalEpochs
	}
	if c.LeafEpochs <= 0 {
		c.LeafEpochs = d.LeafEpochs
	}
	if c.LR <= 0 {
		c.LR = d.LR
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.Workers <= 0 {
		c.Workers = d.Workers
	}
	if c.SafetySlack == 0 {
		c.SafetySlack = d.SafetySlack
	} else if c.SafetySlack < 0 {
		c.SafetySlack = 0 // negative requests exactly the measured bound
	}
	return c
}
