package rqrmi

import (
	"math/rand"
	"testing"

	"nuevomatch/internal/nn"
)

// randomSubmodel builds a submodel with randomized weights normalized over
// [lo, hi] in key space, mimicking an arbitrarily (mis)trained network.
func randomSubmodel(rng *rand.Rand, lo, hi uint64) submodel {
	net := nn.New(8, rng)
	for k := range net.W1 {
		net.W1[k] += rng.NormFloat64() * 2
		net.B1[k] += rng.NormFloat64()
		net.W2[k] += rng.NormFloat64()
	}
	net.B2 += rng.NormFloat64() * 0.3
	inLo := float64(lo) * scale
	inSpan := (float64(hi) - float64(lo)) * scale
	if inSpan <= 0 {
		inSpan = scale
	}
	return submodel{w1: net.W1, b1: net.B1, w2: net.W2, b2: net.B2, inLo: inLo, inSpan: inSpan}
}

// TestPartitionMatchesBruteForce is the keystone property test: partition's
// segments must be exactly the maximal constant-bucket runs found by
// enumerating every key.
func TestPartitionMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		lo := uint64(rng.Intn(1000))
		hi := lo + uint64(rng.Intn(30000)) + 1
		w := 1 + rng.Intn(64)
		s := randomSubmodel(rng, lo, hi)

		starts := s.partition(lo, hi, w)
		if len(starts) == 0 || starts[0] != lo {
			t.Fatalf("trial %d: partition must start at lo: %v", trial, starts)
		}
		// Brute force: walk every key and record bucket flips.
		var want []uint64
		prev := -1
		for k := lo; k <= hi; k++ {
			b := s.bucket(k, w)
			if b != prev {
				want = append(want, k)
				prev = b
			}
		}
		// Every brute-force flip must be a partition start (partition may
		// contain extra starts at kink keys, which is harmless), and every
		// partition segment must be constant.
		si := make(map[uint64]bool, len(starts))
		for _, k := range starts {
			si[k] = true
		}
		for _, k := range want {
			if !si[k] {
				t.Fatalf("trial %d (w=%d): brute-force flip at key %d missing from partition %v", trial, w, k, starts)
			}
		}
		for i, start := range starts {
			end := hi
			if i+1 < len(starts) {
				end = starts[i+1] - 1
			}
			b0 := s.bucket(start, w)
			for k := start; k <= end; k++ {
				if s.bucket(k, w) != b0 {
					t.Fatalf("trial %d: segment [%d,%d] not constant at key %d", trial, start, end, k)
				}
			}
		}
	}
}

func TestPartitionSingleton(t *testing.T) {
	s := randomSubmodel(rand.New(rand.NewSource(1)), 5, 5)
	starts := s.partition(5, 5, 10)
	if len(starts) != 1 || starts[0] != 5 {
		t.Errorf("partition of a singleton = %v, want [5]", starts)
	}
}

// TestPropagateCoversDomain verifies that responsibilities of the next stage
// are disjoint and cover every key (Definition A.3: responsibilities of
// submodels in the same stage are disjoint).
func TestPropagateCoversDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		lo := uint64(0)
		hi := uint64(20000 + rng.Intn(20000))
		w := 2 + rng.Intn(14)
		s := randomSubmodel(rng, lo, hi)

		into := newRespSet(w)
		s.propagate([]kinterval{{lo, hi}}, w, into)

		// Rebuild a key->bucket map from the responsibilities.
		covered := make(map[uint64]int)
		for b, ivs := range into.ivs {
			for _, iv := range ivs {
				for k := iv.lo; k <= iv.hi; k++ {
					if prev, dup := covered[k]; dup {
						t.Fatalf("trial %d: key %d assigned to buckets %d and %d", trial, k, prev, b)
					}
					covered[k] = b
				}
			}
		}
		for k := lo; k <= hi; k++ {
			b, ok := covered[k]
			if !ok {
				t.Fatalf("trial %d: key %d not covered by any responsibility", trial, k)
			}
			if want := s.bucket(k, w); b != want {
				t.Fatalf("trial %d: key %d in responsibility %d but routes to %d", trial, k, b, want)
			}
		}
	}
}

func TestRespSetMerging(t *testing.T) {
	rs := newRespSet(2)
	rs.add(0, 0, 10)
	rs.add(0, 11, 20) // contiguous: must merge
	rs.add(0, 30, 40) // gap: stays separate
	rs.add(1, 5, 5)
	if len(rs.ivs[0]) != 2 || rs.ivs[0][0] != (kinterval{0, 20}) || rs.ivs[0][1] != (kinterval{30, 40}) {
		t.Errorf("bucket 0 intervals = %v", rs.ivs[0])
	}
	if len(rs.ivs[1]) != 1 || rs.ivs[1][0] != (kinterval{5, 5}) {
		t.Errorf("bucket 1 intervals = %v", rs.ivs[1])
	}
}

func TestTotalKeysAndHull(t *testing.T) {
	resp := []kinterval{{0, 9}, {20, 20}, {30, 39}}
	if got := totalKeys(resp); got != 21 {
		t.Errorf("totalKeys = %d, want 21", got)
	}
	h, ok := hull(resp)
	if !ok || h != (kinterval{0, 39}) {
		t.Errorf("hull = %v, %v", h, ok)
	}
	if _, ok := hull(nil); ok {
		t.Error("hull of empty responsibility must report !ok")
	}
}

func TestLeafMaxErrorMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		// A small universe of entries within [0, 4000].
		var los, his []uint32
		cur := uint32(rng.Intn(50))
		for cur < 4000 {
			w := uint32(rng.Intn(80))
			los = append(los, cur)
			his = append(his, cur+w)
			cur += w + 1 + uint32(rng.Intn(100))
		}
		n := len(los)
		s := randomSubmodel(rng, 0, 4200)
		resp := []kinterval{{0, 1500}, {1600, 4200}}

		got := s.leafMaxError(resp, los, his)

		var want int32
		for _, iv := range resp {
			for k := iv.lo; k <= iv.hi; k++ {
				ti := -1
				for j := 0; j < n; j++ {
					if uint32(k) >= los[j] && uint32(k) <= his[j] {
						ti = j
						break
					}
				}
				if ti < 0 {
					continue
				}
				d := int32(s.bucket(k, n) - ti)
				if d < 0 {
					d = -d
				}
				if d > want {
					want = d
				}
			}
		}
		if got != want {
			t.Fatalf("trial %d: leafMaxError = %d, brute force = %d", trial, got, want)
		}
	}
}

func TestKinkKeysWithinBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 50; trial++ {
		lo := uint64(rng.Intn(1000))
		hi := lo + 1 + uint64(rng.Intn(100000))
		s := randomSubmodel(rng, lo, hi)
		for _, k := range s.kinkKeys(lo, hi) {
			if k < lo || k > hi {
				t.Fatalf("kink key %d outside [%d,%d]", k, lo, hi)
			}
		}
	}
}

func TestDedupKeys(t *testing.T) {
	got := dedupKeys([]uint64{1, 1, 2, 3, 3, 3, 9})
	want := []uint64{1, 2, 3, 9}
	if len(got) != len(want) {
		t.Fatalf("dedupKeys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dedupKeys = %v, want %v", got, want)
		}
	}
	if out := dedupKeys(nil); len(out) != 0 {
		t.Errorf("dedupKeys(nil) = %v", out)
	}
}

func TestBucketClamping(t *testing.T) {
	// A submodel whose raw output exceeds [0,1): bucket must stay in range.
	s := submodel{
		w1: []float64{10}, b1: []float64{0},
		w2: []float64{10}, b2: -5,
		inLo: 0, inSpan: 1,
	}
	for _, k := range []uint64{0, 1 << 16, 1 << 31, maxKey} {
		b := s.bucket(k, 7)
		if b < 0 || b > 6 {
			t.Errorf("bucket(%d) = %d out of [0,6]", k, b)
		}
	}
}
