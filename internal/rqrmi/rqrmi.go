// Package rqrmi implements the Range-Query Recursive Model Index of the
// paper (§3.3–§3.5): a staged hierarchy of tiny neural networks that learns
// the mapping from 32-bit keys to the index of the matching range in a
// sorted array of non-overlapping ranges.
//
// The model guarantees correct lookups for every key covered by a range:
// training computes a per-leaf worst-case prediction error (Theorem A.13)
// and Lookup searches the value array within that bound. Keys that fall in a
// gap between ranges return "not found".
//
// Exactness. The paper computes trigger and transition inputs analytically
// over the reals and argues correctness in exact arithmetic. In floating
// point, solved roots can be off by ulps, so this implementation grounds the
// analysis on the integer key lattice, where every query lives: keys are
// scaled by 2^-32 (exact in float64), ReLU kinks isolate at most one
// ambiguous lattice key each, and quantization transitions are located by
// monotone binary search on the lattice with the same eval used at lookup
// time. The resulting responsibilities and error bounds are exact for every
// possible query, not merely with high probability. This strengthens the
// float32 implementation the paper describes in §4.
package rqrmi

import (
	"fmt"
	"math/bits"
	"sort"

	"nuevomatch/internal/rules"
)

// scale maps a uint32 key into [0,1). Multiplication by a power of two is
// exact in IEEE-754, so distinct keys map to distinct x values.
const scale = 1.0 / (1 << 32)

// clampHi is the largest float64 below 1.0; the output trimming function H
// of Definition 3.1 maps into [0, clampHi].
const clampHi = 1 - 1.0/(1<<53)

// Entry associates one range with an opaque payload (for NuevoMatch: the
// rule's position in the original rule-set). Ranges must be pairwise
// non-overlapping within one model.
type Entry struct {
	Range rules.Range
	Value int
}

// submodel is one node of the RQ-RMI: the 3-layer network of Definition 3.1
// preceded by an affine input normalization u = (x-inLo)/inSpan mapping the
// submodel's responsibility hull to [0,1]. The composition remains piecewise
// linear in x, so the paper's analytic machinery applies unchanged; the
// normalization only improves trainability of leaves whose responsibility is
// a sliver of the domain.
type submodel struct {
	w1, b1 []float64
	w2     []float64
	b2     float64
	inLo   float64
	inSpan float64 // > 0
}

// evalX computes M(x) = H(N(u(x))) ∈ [0, 1) for a scaled input.
//
//nm:hotpath
func (s *submodel) evalX(x float64) float64 {
	u := (x - s.inLo) / s.inSpan
	y := s.b2
	for k, w := range s.w1 {
		z := u*w + s.b1[k]
		if z > 0 {
			y += s.w2[k] * z
		}
	}
	if y < 0 {
		return 0
	}
	if y >= 1 {
		return clampHi
	}
	return y
}

// bucket quantizes the submodel output at key k into w buckets:
// ⌊M(k·2^-32)·w⌋ clamped to [0, w-1]. This is fi of Definition A.2 and is
// the exact operation performed during inference.
//
//nm:hotpath
func (s *submodel) bucket(k uint64, w int) int {
	b := int(s.evalX(float64(k)*scale) * float64(w))
	if b < 0 {
		return 0
	}
	if b >= w {
		return w - 1
	}
	return b
}

// sizeBytes is the serialized footprint of one submodel using the float32
// weight accounting of the paper's implementation (§4): 3h+1 weights plus
// the two normalization scalars.
func (s *submodel) sizeBytes() int { return (3*len(s.w1) + 1 + 2) * 4 }

// Model is a trained RQ-RMI over a set of non-overlapping ranges.
type Model struct {
	stages [][]submodel
	widths []int // widths[i] == len(stages[i])

	entries []Entry
	// los/his are the inclusive range boundaries of entries, kept in flat
	// slices for cache-friendly binary search (the paper packs field values
	// from different rules into the same cache lines, §4).
	los, his []uint32
	// errs[j] is the guaranteed worst-case index prediction error of leaf
	// submodel j over its responsibility, plus the configured safety slack.
	errs   []int32
	maxErr int32

	// flat mirrors the staged submodels in contiguous parameter slices for
	// batched inference; nil when the hidden width is not uniform (batched
	// lookups then fall back to the scalar path).
	flat *flatStages
	// flat32 is the single-precision parameter form of §4 consumed by the
	// SIMD kernel; nil when flat is nil or a submodel's input span collapses
	// under float32 (batched lookups then stay on the float64 path).
	flat32 *flatStages32
	// errs32[j] is the float32-path search bound for leaf j: the float64
	// bound re-validated under float32 arithmetic at finalize time and
	// widened where measurement demanded. Correctness does not rest on it —
	// the batched search detects window overflow and falls back to the
	// exact scalar path — so it is purely a performance parameter.
	errs32 []int32
	// vals mirrors the entry payloads in a flat slice so lookups touch 8
	// bytes per candidate instead of a 24-byte Entry. SetValue keeps it in
	// sync.
	vals []int
	// coarse is a presence bitmap over the top 16 bits of the key space
	// (1024 words, 8KB): bit b is set iff some entry's range intersects
	// bucket b. A key whose bucket bit is clear lies in a gap between
	// ranges, so lookups skip inference and search entirely. It
	// over-approximates coverage, never the reverse.
	coarse []uint64
}

// coarseHit reports whether key's bucket may be covered by an entry.
//
//nm:hotpath
func (m *Model) coarseHit(key uint32) bool {
	b := key >> 16
	return m.coarse[b>>6]&(1<<(b&63)) != 0
}

// finalize precomputes the flattened parameter mirror and the flat payload
// array; Train and ReadModel call it once the staged submodels and entries
// are in place.
func (m *Model) finalize() {
	m.flat = flattenStages(m.stages)
	m.flat32 = flatten32(m.flat)
	if m.flat32 != nil && len(m.entries) > 0 {
		m.revalidateF32()
	}
	m.vals = make([]int, len(m.entries))
	for i := range m.entries {
		m.vals[i] = m.entries[i].Value
	}
	m.coarse = make([]uint64, 1024)
	for i := range m.entries {
		b0, b1 := m.los[i]>>16, m.his[i]>>16
		w0, w1 := b0>>6, b1>>6
		if w0 == w1 {
			for b := b0; b <= b1; b++ {
				m.coarse[w0] |= 1 << (b & 63)
			}
			continue
		}
		for b := b0; b>>6 == w0; b++ {
			m.coarse[w0] |= 1 << (b & 63)
		}
		for w := w0 + 1; w < w1; w++ {
			m.coarse[w] = ^uint64(0)
		}
		for b := w1 << 6; b <= b1; b++ {
			m.coarse[w1] |= 1 << (b & 63)
		}
	}
}

// revalidateF32 re-measures the per-leaf prediction error under float32
// arithmetic. The trained bounds in errs are exact theorems about the
// float64 pipeline; the float32 pipeline rounds differently, so its
// predictions can land farther out. Probing every entry's boundary keys and
// midpoint through the float32 router measures the drift where it is
// largest (predictions are piecewise monotone between boundaries) and
// widens any leaf whose measured error reaches its float64 bound. Residual
// escapes — possible in principle for unprobed interior keys — are caught
// at lookup time by the window-overflow check, which reroutes the key to
// the exact scalar path, so the bounds here tune the fast path rather than
// carry correctness.
func (m *Model) revalidateF32() {
	f := m.flat32
	n := len(m.entries)
	m.errs32 = make([]int32, len(m.errs))
	copy(m.errs32, m.errs)
	probe := func(key uint32, want int32) {
		leaf, pred := f.route(key, m.widths, n)
		d := pred - want
		if d < 0 {
			d = -d
		}
		// Widen with one entry of slack once measurement touches the bound:
		// nearby unprobed keys can only be marginally worse, and the
		// overflow fallback covers anything beyond.
		if d >= m.errs32[leaf] {
			m.errs32[leaf] = d + 1
		}
	}
	for i := range m.entries {
		lo, hi := m.los[i], m.his[i]
		probe(lo, int32(i))
		probe(hi, int32(i))
		if mid := uint32((uint64(lo) + uint64(hi)) / 2); mid != lo && mid != hi {
			probe(mid, int32(i))
		}
	}
}

// Values returns the flat payload array, indexed like Entries. The slice is
// shared; callers must not modify it directly (use SetValue).
//
//nm:hotpath
func (m *Model) Values() []int { return m.vals }

// Len returns the number of indexed ranges.
func (m *Model) Len() int { return len(m.entries) }

// Entries returns the model's sorted entries. The slice is shared; callers
// must not modify the ranges (SetValue may rewrite payloads).
func (m *Model) Entries() []Entry { return m.entries }

// MaxError returns the largest per-leaf guaranteed search distance.
func (m *Model) MaxError() int { return int(m.maxErr) }

// NumStages returns the number of model stages.
func (m *Model) NumStages() int { return len(m.stages) }

// NumSubmodels returns the total number of submodels across stages.
func (m *Model) NumSubmodels() int {
	n := 0
	for _, st := range m.stages {
		n += len(st)
	}
	return n
}

// MemoryFootprint returns the byte size of the model itself — submodel
// weights and per-leaf error bounds — which is what must stay cache-resident
// for fast inference (§5.2.1). The sorted range array walked by the
// secondary search is accounted separately by ValueArrayBytes.
func (m *Model) MemoryFootprint() int {
	b := 8 // stage-width bookkeeping
	for _, st := range m.stages {
		for i := range st {
			b += st[i].sizeBytes()
		}
	}
	return b + 4*len(m.errs)
}

// ValueArrayBytes returns the byte size of the sorted per-field boundary
// array scanned by the secondary search plus the payload indices and the
// coarse gap bitmap.
func (m *Model) ValueArrayBytes() int { return 12*len(m.entries) + 8*len(m.coarse) }

// route runs the staged inference of §3.1: each stage's prediction selects
// the submodel of the next stage; the leaf predicts the entry index.
//
//nm:hotpath
func (m *Model) route(k uint64) (leaf, pred int) {
	j := 0
	last := len(m.stages) - 1
	for i := 0; i < last; i++ {
		j = m.stages[i][j].bucket(k, m.widths[i+1])
	}
	return j, m.stages[last][j].bucket(k, len(m.entries))
}

// Lookup returns the payload of the range containing key; ok is false when
// no range contains it. The cost is NumStages submodel inferences plus a
// binary search over at most 2·err+1 entries.
func (m *Model) Lookup(key uint32) (value int, ok bool) {
	i, ok := m.LookupEntry(key)
	if !ok {
		return 0, false
	}
	return m.entries[i].Value, true
}

// LookupEntry is like Lookup but returns the matched entry position.
//
//nm:hotpath
func (m *Model) LookupEntry(key uint32) (index int, ok bool) {
	if len(m.entries) == 0 {
		return 0, false
	}
	if m.coarse != nil && !m.coarseHit(key) {
		return 0, false // provably in a gap between ranges
	}
	leaf, pred := m.route(uint64(key))
	e := int(m.errs[leaf])
	lo, hi := pred-e, pred+e
	if lo < 0 {
		lo = 0
	}
	if n := len(m.entries) - 1; hi > n {
		hi = n
	}
	// Binary search for the last entry with Lo <= key within [lo, hi]; the
	// error bound guarantees the true entry, if any, is inside the window.
	for lo < hi {
		mid := int(uint(lo+hi+1) >> 1)
		if m.los[mid] <= key {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if m.los[lo] <= key && key <= m.his[lo] {
		return lo, true
	}
	return 0, false
}

// BatchChunk is the block size used by LookupEntryBatch: large enough to
// amortize per-stage overhead and keep many independent loads in flight
// during the lockstep search, small enough that the per-chunk scratch stays
// on the stack and the keys stay in L1 across stages.
const BatchChunk = 128

// quantize mirrors submodel.bucket's clamped floor.
//
//nm:hotpath
func quantize(y, fw float64, outW int) int32 {
	b := int(y * fw)
	if b < 0 {
		b = 0
	} else if b >= outW {
		b = outW - 1
	}
	return int32(b)
}

// maxGroupWidth bounds the stage width for which the batched path groups
// keys by submodel; wider stages (possible only in hand-built serialized
// models) fall back to scattered per-key evaluation.
const maxGroupWidth = 512

// LookupEntryBatch resolves a batch of keys at once, writing the matched
// entry position (or -1) for keys[i] into out[i]. Unlike per-key LookupEntry,
// it runs each RQ-RMI stage across the whole chunk before advancing to the
// next, grouping the chunk's keys by the submodel that owns them (a counting
// sort over the previous stage's predictions): every submodel then evaluates
// its keys with coefficients hoisted out of the key loop, which is the same
// data-parallel amortization the paper's SIMD kernels exploit (Table 1).
// When the model carries a float32 parameter form, stages run through the
// single-precision kernel of §4 (AVX2 assembly where available, see
// batch32.go); otherwise this float64 form runs. Either way results are
// bit-identical to LookupEntry. out must have at least len(keys) entries.
//
//nm:hotpath
func (m *Model) LookupEntryBatch(keys []uint32, out []int32) {
	if len(m.entries) == 0 {
		for i := range keys {
			out[i] = -1
		}
		return
	}
	if m.flat32 != nil {
		m.lookupEntryBatchF32(keys, out, kernelUseAsm.Load())
		return
	}
	if m.flat == nil {
		for i, k := range keys {
			if idx, ok := m.LookupEntry(k); ok {
				out[i] = int32(idx)
			} else {
				out[i] = -1
			}
		}
		return
	}
	var x, y, xg, yg [BatchChunk]float64
	var js, preds, order, act [BatchChunk]int32
	var akeys [BatchChunk]uint32
	var cnt [maxGroupWidth + 1]int32
	f := m.flat
	last := len(m.stages) - 1
	for off := 0; off < len(keys); off += BatchChunk {
		nIn := len(keys) - off
		if nIn > BatchChunk {
			nIn = BatchChunk
		}
		block := keys[off : off+nIn]
		// Compact away keys the coarse bitmap proves to be in a gap: the
		// stages and the search then run only over live lanes.
		n := 0
		for c, k := range block {
			if !m.coarseHit(k) {
				out[off+c] = -1
				continue
			}
			act[n] = int32(c)
			akeys[n] = k
			x[n] = float64(k) * scale
			js[n] = 0
			n++
		}
		if n == 0 {
			continue
		}
		for s := 0; s <= last; s++ {
			outW := len(m.entries)
			if s < last {
				outW = m.widths[s+1]
			}
			width := m.widths[s]
			fw := float64(outW)
			isLeaf := s == last
			switch {
			case width == 1:
				// Single submodel (always true for stage 0): one hoisted
				// pass over the whole chunk, quantized like
				// submodel.bucket.
				f.evalWide(f.off[s], x[:n], y[:n])
				if isLeaf {
					for c := 0; c < n; c++ {
						preds[c] = quantize(y[c], fw, outW)
					}
				} else {
					for c := 0; c < n; c++ {
						js[c] = quantize(y[c], fw, outW)
					}
				}
			case width <= maxGroupWidth:
				// Counting-sort the keys by owning submodel, run the
				// hoisted kernel per group, scatter the quantized results
				// back through the permutation.
				for j := 0; j <= width; j++ {
					cnt[j] = 0
				}
				for c := 0; c < n; c++ {
					cnt[js[c]+1]++
				}
				for j := 0; j < width; j++ {
					cnt[j+1] += cnt[j]
				}
				for c := 0; c < n; c++ {
					pos := cnt[js[c]]
					cnt[js[c]] = pos + 1
					order[pos] = int32(c)
					xg[pos] = x[c]
				}
				start := 0
				for j := 0; j < width && start < n; j++ {
					end := int(cnt[j])
					if end > start {
						f.evalWide(f.off[s]+j, xg[start:end], yg[start:end])
						start = end
					}
				}
				if isLeaf {
					for c := 0; c < n; c++ {
						preds[order[c]] = quantize(yg[c], fw, outW)
					}
				} else {
					for c := 0; c < n; c++ {
						js[order[c]] = quantize(yg[c], fw, outW)
					}
				}
			default:
				if isLeaf {
					for c := 0; c < n; c++ {
						preds[c] = quantize(f.evalX(f.off[s]+int(js[c]), x[c]), fw, outW)
					}
				} else {
					for c := 0; c < n; c++ {
						js[c] = quantize(f.evalX(f.off[s]+int(js[c]), x[c]), fw, outW)
					}
				}
			}
		}
		// Secondary search, lockstep and branchless: every round advances
		// all n searches one binary-search step, so the chunk keeps n
		// independent loads of the boundary array in flight instead of
		// walking one dependent chain at a time, and the step itself is a
		// comparison-to-select with no data-dependent branch. The update is
		// idempotent once a lane converges (mid collapses to lo), so all
		// lanes simply run the round count of the widest window. The
		// lo/hi evolution equals Search's exactly.
		var lo, hi [BatchChunk]int32
		maxIdx := int32(len(m.entries) - 1)
		rounds := 0
		for c := 0; c < n; c++ {
			e := m.errs[js[c]]
			l, h := preds[c]-e, preds[c]+e
			if l < 0 {
				l = 0
			}
			if h > maxIdx {
				h = maxIdx
			}
			lo[c], hi[c] = l, h
			if w := int(h - l); w > 0 {
				if r := bits.Len(uint(w)); r > rounds {
					rounds = r
				}
			}
		}
		for ; rounds > 0; rounds-- {
			for c := 0; c < n; c++ {
				l, h := lo[c], hi[c]
				mid := int32(uint32(l+h+1) >> 1)
				var ge int32
				if m.los[mid] <= akeys[c] {
					ge = 1
				}
				lo[c] = l + ge*(mid-l)
				hi[c] = h - (1-ge)*(h-mid+1)
			}
		}
		for c := 0; c < n; c++ {
			l, k := lo[c], akeys[c]
			if m.los[l] <= k && k <= m.his[l] {
				out[off+int(act[c])] = l
			} else {
				out[off+int(act[c])] = -1
			}
		}
	}
}

// SetValue rewrites the payload at entry position i, keeping the flat
// payload mirror in sync. Not safe against concurrent lookups; NuevoMatch's
// snapshot engine tracks liveness outside the model instead.
func (m *Model) SetValue(i, value int) {
	m.entries[i].Value = value
	if m.vals != nil {
		m.vals[i] = value
	}
}

// Predict runs only the model inference: the staged routing plus the leaf's
// index prediction and its guaranteed error bound. Together with Search it
// splits Lookup into its two phases so callers can profile them separately
// (the Figure 14 breakdown).
func (m *Model) Predict(key uint32) (pred, errBound int) {
	if len(m.entries) == 0 {
		return 0, 0
	}
	leaf, pred := m.route(uint64(key))
	return pred, int(m.errs[leaf])
}

// Search performs the secondary search around a prediction obtained from
// Predict, returning the matching entry position.
func (m *Model) Search(key uint32, pred, errBound int) (index int, ok bool) {
	if len(m.entries) == 0 {
		return 0, false
	}
	lo, hi := pred-errBound, pred+errBound
	if lo < 0 {
		lo = 0
	}
	if n := len(m.entries) - 1; hi > n {
		hi = n
	}
	for lo < hi {
		mid := int(uint(lo+hi+1) >> 1)
		if m.los[mid] <= key {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if m.los[lo] <= key && key <= m.his[lo] {
		return lo, true
	}
	return 0, false
}

// validateEntries sorts entries by range start and rejects overlap.
func validateEntries(entries []Entry) ([]Entry, error) {
	es := append([]Entry(nil), entries...)
	sort.Slice(es, func(i, j int) bool { return es[i].Range.Lo < es[j].Range.Lo })
	for i := range es {
		if !es[i].Range.Valid() {
			return nil, fmt.Errorf("rqrmi: entry %d has invalid range %v", i, es[i].Range)
		}
		if i > 0 && es[i-1].Range.Hi >= es[i].Range.Lo {
			return nil, fmt.Errorf("rqrmi: ranges %v and %v overlap", es[i-1].Range, es[i].Range)
		}
	}
	return es, nil
}
