package rqrmi

import "math/rand"

// This file provides the standalone inference micro-kernels behind the
// Table 1 reproduction. The paper accelerates submodel inference with SIMD
// (SSE processes 4 floats per instruction, AVX 8). Go has no vector
// intrinsics, so the experiment is reproduced with batched kernels that
// evaluate 4 or 8 keys per pass with the per-unit coefficients hoisted out
// of the inner loop — exposing the same data parallelism to the CPU's
// out-of-order core and amortizing loop overhead, which is the effect the
// table demonstrates (see DESIGN.md, substitutions).

// Kernel is one submodel evaluated outside a model, for benchmarking.
type Kernel struct {
	s   submodel
	f32 *flatStages32 // single-submodel float32 form for the SIMD rows
}

// NewKernel returns a kernel with randomized weights and h hidden units
// (the paper uses 8).
func NewKernel(h int, seed int64) *Kernel {
	rng := rand.New(rand.NewSource(seed))
	s := submodel{
		w1:     make([]float64, h),
		b1:     make([]float64, h),
		w2:     make([]float64, h),
		b2:     rng.NormFloat64(),
		inLo:   0,
		inSpan: 1,
	}
	for k := 0; k < h; k++ {
		s.w1[k] = rng.NormFloat64()
		s.b1[k] = rng.NormFloat64()
		s.w2[k] = rng.NormFloat64()
	}
	return &Kernel{s: s, f32: flatten32(flattenStages([][]submodel{{s}}))}
}

// Eval1 evaluates one key (the "Serial(1)" row of Table 1).
func (k *Kernel) Eval1(key uint32) float64 {
	return k.s.evalX(float64(key) * scale)
}

// Eval4 evaluates four keys per pass (the "SSE(4)" analogue).
func (k *Kernel) Eval4(keys *[4]uint32, out *[4]float64) {
	var x0, x1, x2, x3 float64
	x0 = float64(keys[0]) * scale
	x1 = float64(keys[1]) * scale
	x2 = float64(keys[2]) * scale
	x3 = float64(keys[3]) * scale
	s := &k.s
	y0, y1, y2, y3 := s.b2, s.b2, s.b2, s.b2
	for u, w := range s.w1 {
		b := s.b1[u]
		v := s.w2[u]
		if z := x0*w + b; z > 0 {
			y0 += v * z
		}
		if z := x1*w + b; z > 0 {
			y1 += v * z
		}
		if z := x2*w + b; z > 0 {
			y2 += v * z
		}
		if z := x3*w + b; z > 0 {
			y3 += v * z
		}
	}
	out[0] = clamp01(y0)
	out[1] = clamp01(y1)
	out[2] = clamp01(y2)
	out[3] = clamp01(y3)
}

// Eval8 evaluates eight keys per pass (the "AVX(8)" analogue). Like Eval4,
// the lanes live in named locals: Go's register allocator scalarizes named
// variables but keeps arrays on the stack, so an array-based formulation
// spills every lane to memory on each hidden unit and forfeits the batching
// win the row is meant to measure.
func (k *Kernel) Eval8(keys *[8]uint32, out *[8]float64) {
	x0 := float64(keys[0]) * scale
	x1 := float64(keys[1]) * scale
	x2 := float64(keys[2]) * scale
	x3 := float64(keys[3]) * scale
	x4 := float64(keys[4]) * scale
	x5 := float64(keys[5]) * scale
	x6 := float64(keys[6]) * scale
	x7 := float64(keys[7]) * scale
	s := &k.s
	y0, y1, y2, y3 := s.b2, s.b2, s.b2, s.b2
	y4, y5, y6, y7 := s.b2, s.b2, s.b2, s.b2
	for u, w := range s.w1 {
		b := s.b1[u]
		v := s.w2[u]
		if z := x0*w + b; z > 0 {
			y0 += v * z
		}
		if z := x1*w + b; z > 0 {
			y1 += v * z
		}
		if z := x2*w + b; z > 0 {
			y2 += v * z
		}
		if z := x3*w + b; z > 0 {
			y3 += v * z
		}
		if z := x4*w + b; z > 0 {
			y4 += v * z
		}
		if z := x5*w + b; z > 0 {
			y5 += v * z
		}
		if z := x6*w + b; z > 0 {
			y6 += v * z
		}
		if z := x7*w + b; z > 0 {
			y7 += v * z
		}
	}
	out[0] = clamp01(y0)
	out[1] = clamp01(y1)
	out[2] = clamp01(y2)
	out[3] = clamp01(y3)
	out[4] = clamp01(y4)
	out[5] = clamp01(y5)
	out[6] = clamp01(y6)
	out[7] = clamp01(y7)
}

// Eval8F32 evaluates eight keys per pass through the single-precision
// kernel: the AVX2 assembly when useAsm is set and the build/host support
// it, the bit-identical pure-Go float32 form otherwise. This is the row
// closest to the paper's AVX measurement — true 8-lane SIMD over float32.
func (k *Kernel) Eval8F32(keys *[8]uint32, out *[8]float32, useAsm bool) {
	var x [8]float32
	for i := range keys {
		x[i] = float32(keys[i]) * scale32
	}
	k.f32.evalBlock(0, x[:], out[:], useAsm && asmKernelAvailable)
}

//
//nm:hotpath
func clamp01(y float64) float64 {
	if y < 0 {
		return 0
	}
	if y >= 1 {
		return clampHi
	}
	return y
}

// --- flattened model parameters ------------------------------------------
//
// flatStages mirrors a model's [][]submodel in contiguous slices so batched
// inference walks linear memory instead of chasing per-submodel slice
// headers. Submodel j of stage s lives at global index off[s]+j; its hidden
// coefficients occupy w1/b1/w2[g*h : (g+1)*h]. The arithmetic of evalX is
// reproduced operation-for-operation, so flattened and scalar inference are
// bit-identical and the trained error bounds remain valid.

//
//nm:immutable
type flatStages struct {
	h    int   // hidden units, uniform across every submodel
	off  []int // off[s] is the global index of stage s's first submodel
	w1   []float64
	b1   []float64
	w2   []float64
	b2   []float64
	inLo []float64
	inSp []float64
}

// flattenStages packs the staged submodels into contiguous slices. It
// returns nil when the model has no stages or the hidden width is not
// uniform (possible for hand-crafted serialized models); callers fall back
// to the scalar path.
//
//nm:builder flatStages
func flattenStages(stages [][]submodel) *flatStages {
	if len(stages) == 0 || len(stages[0]) == 0 {
		return nil
	}
	h := len(stages[0][0].w1)
	total := 0
	off := make([]int, len(stages))
	for s, st := range stages {
		off[s] = total
		for i := range st {
			if len(st[i].w1) != h {
				return nil
			}
		}
		total += len(st)
	}
	f := &flatStages{
		h:    h,
		off:  off,
		w1:   make([]float64, total*h),
		b1:   make([]float64, total*h),
		w2:   make([]float64, total*h),
		b2:   make([]float64, total),
		inLo: make([]float64, total),
		inSp: make([]float64, total),
	}
	g := 0
	for _, st := range stages {
		for i := range st {
			copy(f.w1[g*h:], st[i].w1)
			copy(f.b1[g*h:], st[i].b1)
			copy(f.w2[g*h:], st[i].w2)
			f.b2[g] = st[i].b2
			f.inLo[g] = st[i].inLo
			f.inSp[g] = st[i].inSpan
			g++
		}
	}
	return f
}

// evalX evaluates global submodel g on a scaled input, matching
// submodel.evalX exactly (same operations, same order).
//
//nm:hotpath
func (f *flatStages) evalX(g int, x float64) float64 {
	u := (x - f.inLo[g]) / f.inSp[g]
	y := f.b2[g]
	base := g * f.h
	for k := 0; k < f.h; k++ {
		if z := u*f.w1[base+k] + f.b1[base+k]; z > 0 {
			y += f.w2[base+k] * z
		}
	}
	return clamp01(y)
}

// evalWide evaluates ONE submodel over a block of inputs with each hidden
// unit's coefficients hoisted out of the key loop — the Table 1 batching
// applied to real model stages. Blocks of four keys accumulate in named
// locals (the Eval4 pattern: Go's register allocator scalarizes named
// variables but not arrays, and the Table 1 measurements show the ~3x win
// belongs to the named form). Per-key accumulation order equals evalX, so
// results are bit-identical.
//
//nm:hotpath
func (f *flatStages) evalWide(g int, x, y []float64) {
	inLo, inSp, b2 := f.inLo[g], f.inSp[g], f.b2[g]
	h := f.h
	base := g * h
	w1 := f.w1[base : base+h]
	b1 := f.b1[base : base+h]
	w2 := f.w2[base : base+h]
	c := 0
	for ; c+4 <= len(x); c += 4 {
		u0 := (x[c] - inLo) / inSp
		u1 := (x[c+1] - inLo) / inSp
		u2 := (x[c+2] - inLo) / inSp
		u3 := (x[c+3] - inLo) / inSp
		y0, y1, y2, y3 := b2, b2, b2, b2
		for k, w := range w1 {
			b := b1[k]
			v := w2[k]
			if z := u0*w + b; z > 0 {
				y0 += v * z
			}
			if z := u1*w + b; z > 0 {
				y1 += v * z
			}
			if z := u2*w + b; z > 0 {
				y2 += v * z
			}
			if z := u3*w + b; z > 0 {
				y3 += v * z
			}
		}
		y[c] = clamp01(y0)
		y[c+1] = clamp01(y1)
		y[c+2] = clamp01(y2)
		y[c+3] = clamp01(y3)
	}
	for ; c < len(x); c++ {
		u := (x[c] - inLo) / inSp
		yy := b2
		for k, w := range w1 {
			if z := u*w + b1[k]; z > 0 {
				yy += w2[k] * z
			}
		}
		y[c] = clamp01(yy)
	}
}
