package rqrmi

import "math/rand"

// This file provides the standalone inference micro-kernels behind the
// Table 1 reproduction. The paper accelerates submodel inference with SIMD
// (SSE processes 4 floats per instruction, AVX 8). Go has no vector
// intrinsics, so the experiment is reproduced with batched kernels that
// evaluate 4 or 8 keys per pass with the per-unit coefficients hoisted out
// of the inner loop — exposing the same data parallelism to the CPU's
// out-of-order core and amortizing loop overhead, which is the effect the
// table demonstrates (see DESIGN.md, substitutions).

// Kernel is one submodel evaluated outside a model, for benchmarking.
type Kernel struct {
	s submodel
}

// NewKernel returns a kernel with randomized weights and h hidden units
// (the paper uses 8).
func NewKernel(h int, seed int64) *Kernel {
	rng := rand.New(rand.NewSource(seed))
	s := submodel{
		w1:     make([]float64, h),
		b1:     make([]float64, h),
		w2:     make([]float64, h),
		b2:     rng.NormFloat64(),
		inLo:   0,
		inSpan: 1,
	}
	for k := 0; k < h; k++ {
		s.w1[k] = rng.NormFloat64()
		s.b1[k] = rng.NormFloat64()
		s.w2[k] = rng.NormFloat64()
	}
	return &Kernel{s: s}
}

// Eval1 evaluates one key (the "Serial(1)" row of Table 1).
func (k *Kernel) Eval1(key uint32) float64 {
	return k.s.evalX(float64(key) * scale)
}

// Eval4 evaluates four keys per pass (the "SSE(4)" analogue).
func (k *Kernel) Eval4(keys *[4]uint32, out *[4]float64) {
	var x0, x1, x2, x3 float64
	x0 = float64(keys[0]) * scale
	x1 = float64(keys[1]) * scale
	x2 = float64(keys[2]) * scale
	x3 = float64(keys[3]) * scale
	s := &k.s
	y0, y1, y2, y3 := s.b2, s.b2, s.b2, s.b2
	for u, w := range s.w1 {
		b := s.b1[u]
		v := s.w2[u]
		if z := x0*w + b; z > 0 {
			y0 += v * z
		}
		if z := x1*w + b; z > 0 {
			y1 += v * z
		}
		if z := x2*w + b; z > 0 {
			y2 += v * z
		}
		if z := x3*w + b; z > 0 {
			y3 += v * z
		}
	}
	out[0] = clamp01(y0)
	out[1] = clamp01(y1)
	out[2] = clamp01(y2)
	out[3] = clamp01(y3)
}

// Eval8 evaluates eight keys per pass (the "AVX(8)" analogue).
func (k *Kernel) Eval8(keys *[8]uint32, out *[8]float64) {
	var x [8]float64
	for i := range keys {
		x[i] = float64(keys[i]) * scale
	}
	s := &k.s
	var y [8]float64
	for i := range y {
		y[i] = s.b2
	}
	for u, w := range s.w1 {
		b := s.b1[u]
		v := s.w2[u]
		for i := 0; i < 8; i++ {
			if z := x[i]*w + b; z > 0 {
				y[i] += v * z
			}
		}
	}
	for i := range y {
		out[i] = clamp01(y[i])
	}
}

func clamp01(y float64) float64 {
	if y < 0 {
		return 0
	}
	if y >= 1 {
		return clampHi
	}
	return y
}
