//go:build !amd64 || noasm

package rqrmi

// asmKernelAvailable is false on portable builds: evalBlock always takes
// the pure-Go kernel and SetKernelMode(KernelAsm) errors.
const asmKernelAvailable = false

// evalBlockAVX2 is unreachable on portable builds (evalBlock only calls it
// behind the asm flag, which SetKernelMode refuses to raise here).
//
//nm:hotpath
func evalBlockAVX2(tri *float32, h int64, hdr *float32, x *float32, y *float32, n int64) {
	panic("rqrmi: assembly kernel invoked on a build without it")
}
