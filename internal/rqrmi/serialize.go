package rqrmi

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"nuevomatch/internal/rules"
)

// Binary model serialization. Training can take minutes at 500K rules
// (Figure 15), so production deployments persist trained models and load
// them at startup; this codec is also the honest way to measure "model
// size" (MemoryFootprint agrees with the encoded weight payload).
//
// Format (little-endian):
//
//	magic "RQRMI\x01" | nStages u32 | widths u32... |
//	per submodel: hidden u32, inLo f64, inSpan f64, w1/b1/w2 f64..., b2 f64 |
//	nEntries u32 | per entry: lo u32, hi u32, value i64 |
//	errs i32...
//
// Version 2 ("RQRMI\x02") is identical except every submodel parameter is
// stored as float32 — the paper's single-precision weight format (§4), and
// lossless for models trained by this package because training rounds every
// parameter to a float32-representable value before the bounds are proven.
// WriteTo emits v2 exactly when that losslessness holds; legacy float64
// models (deserialized v1 files with non-representable weights) keep the v1
// encoding so their proven bounds survive the round-trip. ReadModel accepts
// both.

var magic = [6]byte{'R', 'Q', 'R', 'M', 'I', 1}
var magicV2 = [6]byte{'R', 'Q', 'R', 'M', 'I', 2}

// f32Exact reports whether v survives a float32 round-trip unchanged.
func f32Exact(v float64) bool { return float64(float32(v)) == v }

// paramsF32Exact reports whether every submodel parameter is exactly
// float32-representable, i.e. whether the v2 encoding is lossless.
func (m *Model) paramsF32Exact() bool {
	for _, st := range m.stages {
		for i := range st {
			s := &st[i]
			if !f32Exact(s.inLo) || !f32Exact(s.inSpan) || !f32Exact(s.b2) {
				return false
			}
			for k := range s.w1 {
				if !f32Exact(s.w1[k]) || !f32Exact(s.b1[k]) || !f32Exact(s.w2[k]) {
					return false
				}
			}
		}
	}
	return true
}

// WriteTo serializes the model. It implements io.WriterTo.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}
	write := func(v any) error { return binary.Write(cw, binary.LittleEndian, v) }

	f32 := m.paramsF32Exact()
	mg := magic
	if f32 {
		mg = magicV2
	}
	if err := write(mg); err != nil {
		return cw.n, err
	}
	if err := write(uint32(len(m.stages))); err != nil {
		return cw.n, err
	}
	for _, wd := range m.widths {
		if err := write(uint32(wd)); err != nil {
			return cw.n, err
		}
	}
	for _, st := range m.stages {
		for i := range st {
			s := &st[i]
			if err := write(uint32(len(s.w1))); err != nil {
				return cw.n, err
			}
			for _, grp := range [][]float64{{s.inLo, s.inSpan}, s.w1, s.b1, s.w2, {s.b2}} {
				if f32 {
					for _, v := range grp {
						if err := write(float32(v)); err != nil {
							return cw.n, err
						}
					}
				} else if err := write(grp); err != nil {
					return cw.n, err
				}
			}
		}
	}
	if err := write(uint32(len(m.entries))); err != nil {
		return cw.n, err
	}
	for _, e := range m.entries {
		if err := write(e.Range.Lo); err != nil {
			return cw.n, err
		}
		if err := write(e.Range.Hi); err != nil {
			return cw.n, err
		}
		if err := write(int64(e.Value)); err != nil {
			return cw.n, err
		}
	}
	if err := write(m.errs); err != nil {
		return cw.n, err
	}
	return cw.n, bw.Flush()
}

// ReadModel deserializes a model written by WriteTo.
func ReadModel(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }

	var got [6]byte
	if err := read(&got); err != nil {
		return nil, fmt.Errorf("rqrmi: reading magic: %w", err)
	}
	var f32 bool
	switch got {
	case magic:
	case magicV2:
		f32 = true
	default:
		return nil, fmt.Errorf("rqrmi: bad magic %q", got[:])
	}
	// readF reads len(dst) parameters in the file's precision.
	readF := func(dst []float64) error {
		if !f32 {
			return read(&dst)
		}
		buf := make([]float32, len(dst))
		if err := read(&buf); err != nil {
			return err
		}
		for i, v := range buf {
			dst[i] = float64(v)
		}
		return nil
	}
	var nStages uint32
	if err := read(&nStages); err != nil {
		return nil, err
	}
	if nStages > 16 {
		return nil, fmt.Errorf("rqrmi: implausible stage count %d", nStages)
	}
	m := &Model{widths: make([]int, nStages), stages: make([][]submodel, nStages)}
	for i := range m.widths {
		var w uint32
		if err := read(&w); err != nil {
			return nil, err
		}
		// Must admit any width WriteTo can produce: training clamps widths
		// to the entry count, so custom configs on very large iSets can
		// legitimately exceed the paper's 512 (Table 4). Corrupt inputs are
		// bounded by the incremental stage allocation below, not this cap.
		if w == 0 || w > 1<<20 {
			return nil, fmt.Errorf("rqrmi: implausible stage width %d", w)
		}
		m.widths[i] = int(w)
	}
	for si := range m.stages {
		// Grow the stage as submodels actually decode (each consumes tens
		// of bytes), so a corrupt width cannot force a giant up-front
		// allocation.
		initialStage := m.widths[si]
		if initialStage > 1<<12 {
			initialStage = 1 << 12
		}
		m.stages[si] = make([]submodel, 0, initialStage)
		for j := 0; j < m.widths[si]; j++ {
			var hidden uint32
			if err := read(&hidden); err != nil {
				return nil, err
			}
			if hidden == 0 || hidden > 1024 {
				return nil, fmt.Errorf("rqrmi: implausible hidden size %d", hidden)
			}
			s := submodel{
				w1: make([]float64, hidden),
				b1: make([]float64, hidden),
				w2: make([]float64, hidden),
			}
			var norm [2]float64
			if err := readF(norm[:]); err != nil {
				return nil, err
			}
			s.inLo, s.inSpan = norm[0], norm[1]
			if s.inSpan <= 0 || math.IsNaN(s.inSpan) {
				return nil, fmt.Errorf("rqrmi: invalid input span %v", s.inSpan)
			}
			for _, dst := range [][]float64{s.w1, s.b1, s.w2} {
				if err := readF(dst); err != nil {
					return nil, err
				}
			}
			var b2 [1]float64
			if err := readF(b2[:]); err != nil {
				return nil, err
			}
			s.b2 = b2[0]
			m.stages[si] = append(m.stages[si], s)
		}
	}
	var nEntries uint32
	if err := read(&nEntries); err != nil {
		return nil, err
	}
	// Grow the entry arrays as bytes actually arrive instead of trusting the
	// count: a corrupt header claiming 4G entries must fail at EOF, not
	// allocate gigabytes up front (ReadModel is on the fuzzed table path).
	initial := int(nEntries)
	if initial > 1<<16 {
		initial = 1 << 16
	}
	m.entries = make([]Entry, 0, initial)
	m.los = make([]uint32, 0, initial)
	m.his = make([]uint32, 0, initial)
	for i := 0; i < int(nEntries); i++ {
		var lo, hi uint32
		var val int64
		if err := read(&lo); err != nil {
			return nil, err
		}
		if err := read(&hi); err != nil {
			return nil, err
		}
		if err := read(&val); err != nil {
			return nil, err
		}
		if lo > hi {
			return nil, fmt.Errorf("rqrmi: entry %d inverted [%d,%d]", i, lo, hi)
		}
		if i > 0 && m.his[i-1] >= lo {
			return nil, fmt.Errorf("rqrmi: entries %d and %d overlap", i-1, i)
		}
		m.entries = append(m.entries, Entry{Range: rules.Range{Lo: lo, Hi: hi}, Value: int(val)})
		m.los = append(m.los, lo)
		m.his = append(m.his, hi)
	}
	if nStages > 0 {
		m.errs = make([]int32, m.widths[nStages-1])
		if err := read(&m.errs); err != nil {
			return nil, err
		}
		for _, e := range m.errs {
			if e < 0 {
				return nil, fmt.Errorf("rqrmi: negative error bound %d", e)
			}
			if e > m.maxErr {
				m.maxErr = e
			}
		}
	}
	m.finalize()
	return m, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
