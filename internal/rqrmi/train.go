package rqrmi

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"nuevomatch/internal/nn"
)

// TrainStats reports what training did, feeding the Figure 15 experiment
// (training time vs. error bound).
type TrainStats struct {
	Submodels    int
	LeafRetrains int
	// MaxError/MeanError are the stored per-leaf bounds (slack included).
	MaxError  int
	MeanError float64
	Samples   int
	Duration  time.Duration
}

// maxKey is the largest key of the input domain D.
const maxKey = uint64(1)<<32 - 1

// Train fits an RQ-RMI to the given non-overlapping ranges following §3.5:
// stage by stage, computing each submodel's responsibility analytically from
// the trained submodels of the previous stage, generating its training set
// by uniform sampling of the responsibility, and — for leaves — computing
// the worst-case error bound and retraining with doubled samples while the
// bound exceeds cfg.TargetError.
//
// Training is deterministic for a fixed Config, regardless of Workers.
func Train(entries []Entry, cfg Config) (*Model, *TrainStats, error) {
	start := time.Now()
	es, err := validateEntries(entries)
	if err != nil {
		return nil, nil, err
	}
	cfg = cfg.withDefaults(len(es))
	if cfg.StageWidths[0] != 1 {
		return nil, nil, fmt.Errorf("rqrmi: first stage width must be 1, got %d", cfg.StageWidths[0])
	}

	m := &Model{entries: es}
	m.los = make([]uint32, len(es))
	m.his = make([]uint32, len(es))
	for i := range es {
		m.los[i] = es[i].Range.Lo
		m.his[i] = es[i].Range.Hi
	}
	if len(es) == 0 {
		m.widths = []int{}
		m.finalize()
		return m, &TrainStats{Duration: time.Since(start)}, nil
	}

	// Clamp widths to the entry count; a stage wider than the number of
	// distinct indexes wastes submodels without refining the prediction.
	widths := make([]int, 0, len(cfg.StageWidths))
	for _, w := range cfg.StageWidths {
		if w > len(es) {
			w = len(es)
		}
		if w < 1 {
			w = 1
		}
		widths = append(widths, w)
	}
	m.widths = widths
	m.stages = make([][]submodel, len(widths))

	t := &trainer{cfg: cfg, model: m}
	stats := &TrainStats{}

	resp := [][]kinterval{{{0, maxKey}}} // stage 0: the whole domain
	for si := range widths {
		m.stages[si] = make([]submodel, widths[si])
		isLeaf := si == len(widths)-1

		var next *respSet
		if !isLeaf {
			next = newRespSet(widths[si+1])
		} else {
			m.errs = make([]int32, widths[si])
		}

		// Train all submodels of the stage in parallel; every submodel's
		// randomness derives from (Seed, stage, index, attempt), so the
		// result is independent of scheduling.
		var wg sync.WaitGroup
		sem := make(chan struct{}, cfg.Workers)
		var mu sync.Mutex
		for j := 0; j < widths[si]; j++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(j int) {
				defer wg.Done()
				defer func() { <-sem }()
				sub, errBound, retrains, samples := t.trainSubmodel(si, j, resp[j], isLeaf)
				m.stages[si][j] = sub
				mu.Lock()
				stats.Submodels++
				stats.Samples += samples
				if isLeaf {
					m.errs[j] = errBound
					stats.LeafRetrains += retrains
				}
				mu.Unlock()
			}(j)
		}
		wg.Wait()

		if !isLeaf {
			for j := 0; j < widths[si]; j++ {
				m.stages[si][j].propagate(resp[j], widths[si+1], next)
			}
			resp = next.ivs
		}
	}

	var sum float64
	for _, e := range m.errs {
		if e > m.maxErr {
			m.maxErr = e
		}
		sum += float64(e)
	}
	stats.MaxError = int(m.maxErr)
	stats.MeanError = sum / float64(len(m.errs))
	stats.Duration = time.Since(start)
	m.finalize()
	return m, stats, nil
}

type trainer struct {
	cfg   Config
	model *Model
}

// trainSubmodel fits one submodel on its responsibility. For leaves it runs
// the sample-doubling loop of Figure 5 and returns the stored error bound;
// for internal submodels errBound is 0.
func (t *trainer) trainSubmodel(stage, idx int, resp []kinterval, isLeaf bool) (sub submodel, errBound int32, retrains, samples int) {
	h, ok := hull(resp)
	if !ok {
		// Unreachable submodel: no input routes here. Keep an identity
		// placeholder with a zero bound.
		rng := rand.New(rand.NewSource(t.seed(stage, idx, 0)))
		net := nn.New(t.cfg.Hidden, rng)
		sub := submodel{
			w1: net.W1, b1: net.B1, w2: net.W2, b2: net.B2,
			inLo: 0, inSpan: 1,
		}
		sub.roundParamsF32()
		return sub, 0, 0, 0
	}

	overlap := t.overlapCount(resp)
	want := 2 * overlap
	if want < t.cfg.MinSamples {
		want = t.cfg.MinSamples
	}
	if want > t.cfg.MaxSamples {
		want = t.cfg.MaxSamples
	}

	epochs := t.cfg.InternalEpochs
	if isLeaf {
		epochs = t.cfg.LeafEpochs
	}

	// The network is trained in the submodel's normalized input space
	// u = (x - inLo)/inSpan — the same affine transform eval applies — so
	// the near-identity initialization starts close to the local CDF no
	// matter how narrow the responsibility is.
	inLo := float64(h.lo) * scale
	inSpan := (float64(h.hi) - float64(h.lo)) * scale
	if inSpan <= 0 {
		inSpan = scale
	}
	// Snap the normalization scalars to float32-representable values before
	// generating samples: the single-precision kernel (§4) stores parameters
	// in float32, and training in the exact affine space inference evaluates
	// keeps the fit, the error analysis and the kernel aligned. scale itself
	// is a power of two, so the fallback span survives the rounding.
	inLo = float64(float32(inLo))
	inSpan = float64(float32(inSpan))

	var best submodel
	var bestErr int32 = -1
	attempts := t.cfg.MaxRetrain
	if !isLeaf {
		attempts = 1
	}
	for attempt := 0; attempt < attempts; attempt++ {
		rng := rand.New(rand.NewSource(t.seed(stage, idx, attempt)))
		// Uniform key sampling underweights dense clusters of narrow
		// ranges (many indices in few keys), which is exactly where the
		// error bound fails; retrain attempts therefore add every entry
		// boundary in the responsibility — the steps of the staircase
		// being learned — on top of the uniform samples.
		xs, ys := t.sampleDataset(resp, want, isLeaf && attempt > 0)
		if !isLeaf {
			// Routing submodels determine the index balance of the next
			// stage, so their fit must be good where the *index* mass is,
			// not where the key mass is: blend in samples drawn uniformly
			// over the entries of the responsibility.
			ixs, iys := t.sampleIndexUniform(resp, want/2)
			xs = append(xs, ixs...)
			ys = append(ys, iys...)
		}
		samples += len(xs)
		for i := range xs {
			xs[i] = (xs[i] - inLo) / inSpan
		}
		net := nn.New(t.cfg.Hidden, rng)
		nn.Train(net, xs, ys, nn.TrainConfig{Epochs: epochs, LR: t.cfg.LR})
		cand := submodel{
			w1: net.W1, b1: net.B1, w2: net.W2, b2: net.B2,
			inLo: inLo, inSpan: inSpan,
		}
		// Round the trained weights to float32-representable values BEFORE
		// computing responsibilities (propagate) and error bounds
		// (leafMaxError): the analysis then proves its theorems about
		// exactly the parameter values the float32 kernel loads, and
		// serializing the model in single precision is lossless.
		cand.roundParamsF32()
		if !isLeaf {
			return cand, 0, 0, samples
		}
		e := cand.leafMaxError(resp, t.model.los, t.model.his)
		if bestErr < 0 || e < bestErr {
			best, bestErr = cand, e
		}
		if int(bestErr) <= t.cfg.TargetError {
			break
		}
		retrains++
		want *= 2
		if want > t.cfg.MaxSamples {
			want = t.cfg.MaxSamples
		}
		// Cap at the number of keys actually available.
		if tk := totalKeys(resp); tk < uint64(want) {
			want = int(tk)
		}
	}
	stored := bestErr + int32(t.cfg.SafetySlack)
	if lim := int32(len(t.model.entries)); stored > lim {
		stored = lim
	}
	return best, stored, retrains, samples
}

// roundParamsF32 rounds every parameter to its nearest float32 value (still
// stored as float64). Applied before any bound or responsibility analysis,
// so float64-proven results hold verbatim for the float32 parameter form.
func (s *submodel) roundParamsF32() {
	for i := range s.w1 {
		s.w1[i] = float64(float32(s.w1[i]))
		s.b1[i] = float64(float32(s.b1[i]))
		s.w2[i] = float64(float32(s.w2[i]))
	}
	s.b2 = float64(float32(s.b2))
	s.inLo = float64(float32(s.inLo))
	s.inSpan = float64(float32(s.inSpan))
}

// seed derives a deterministic per-(stage, submodel, attempt) RNG seed.
func (t *trainer) seed(stage, idx, attempt int) int64 {
	s := uint64(t.cfg.Seed)
	for _, v := range [3]uint64{uint64(stage), uint64(idx), uint64(attempt)} {
		s ^= v + 0x9e3779b97f4a7c15 + (s << 6) + (s >> 2)
	}
	return int64(s)
}

// overlapCount returns the number of entries whose range intersects the
// responsibility hull — a cheap proxy for how much structure the submodel
// must learn, used to size the initial training set.
func (t *trainer) overlapCount(resp []kinterval) int {
	h, ok := hull(resp)
	if !ok {
		return 0
	}
	los := t.model.los
	n := len(los)
	first := sort.Search(n, func(i int) bool { return uint64(t.model.his[i]) >= h.lo })
	last := sort.Search(n, func(i int) bool { return uint64(los[i]) > h.hi })
	if last < first {
		return 0
	}
	return last - first
}

// sampleDataset draws ~want evenly spaced keys from the responsibility
// (§3.5.4): a sample is kept only when some entry contains it, so each range
// contributes proportionally to its share of the responsibility. When
// uniform placement yields too few matched samples — sparse ranges inside a
// wide responsibility — the dataset is topped up with the boundary keys of
// overlapping entries, which are exactly the steps of the function being
// learned.
func (t *trainer) sampleDataset(resp []kinterval, want int, allBoundaries bool) (xs, ys []float64) {
	total := totalKeys(resp)
	if total == 0 || want == 0 {
		return nil, nil
	}
	if uint64(want) > total {
		want = int(total)
	}
	n := float64(len(t.model.entries))
	label := func(idx int) float64 { return (float64(idx) + 0.5) / n }

	step := float64(total) / float64(want)
	ivi := 0
	consumed := uint64(0) // keys of resp before intervals[ivi]
	for i := 0; i < want; i++ {
		pos := uint64((float64(i) + 0.5) * step)
		if pos >= total {
			pos = total - 1
		}
		for pos-consumed >= resp[ivi].count() {
			consumed += resp[ivi].count()
			ivi++
		}
		key := resp[ivi].lo + (pos - consumed)
		if idx := t.trueIdx(key); idx >= 0 {
			xs = append(xs, float64(key)*scale)
			ys = append(ys, label(idx))
		}
	}

	// Add entry boundaries clipped into the responsibility: all of them on
	// retrain attempts, or as a top-up when uniform sampling matched too
	// few keys (sparse ranges in a wide responsibility).
	budget := want
	if !allBoundaries {
		if len(xs) >= want/2 {
			return xs, ys
		}
	} else {
		budget = len(xs) + 2*len(t.model.entries)
	}
	for _, iv := range resp {
		j := sort.Search(len(t.model.los), func(i int) bool { return uint64(t.model.los[i]) > iv.lo })
		if j > 0 {
			j--
		}
		for ; j < len(t.model.los) && uint64(t.model.los[j]) <= iv.hi; j++ {
			for _, key := range [2]uint64{uint64(t.model.los[j]), uint64(t.model.his[j])} {
				if key < iv.lo || key > iv.hi {
					continue
				}
				if idx := t.trueIdx(key); idx >= 0 {
					xs = append(xs, float64(key)*scale)
					ys = append(ys, label(idx))
				}
			}
			if len(xs) >= budget {
				return xs, ys
			}
		}
	}
	return xs, ys
}

// sampleIndexUniform draws up to want samples spread evenly over the
// *entries* overlapping the responsibility (one representative key per
// sampled entry), complementing the key-uniform sampling of §3.5.4 where
// narrow ranges carry many indices in few keys.
func (t *trainer) sampleIndexUniform(resp []kinterval, want int) (xs, ys []float64) {
	if want <= 0 {
		return nil, nil
	}
	n := float64(len(t.model.entries))
	label := func(idx int) float64 { return (float64(idx) + 0.5) / n }
	total := t.overlapCount(resp)
	stride := 1
	if total > want {
		stride = total / want
	}
	emitted := 0
	for _, iv := range resp {
		j := sort.Search(len(t.model.los), func(i int) bool { return uint64(t.model.los[i]) > iv.lo })
		if j > 0 {
			j--
		}
		for ; j < len(t.model.los) && uint64(t.model.los[j]) <= iv.hi; j += stride {
			lo, hi := uint64(t.model.los[j]), uint64(t.model.his[j])
			if lo < iv.lo {
				lo = iv.lo
			}
			if hi > iv.hi {
				hi = iv.hi
			}
			if lo > hi {
				continue
			}
			key := lo + (hi-lo)/2
			xs = append(xs, float64(key)*scale)
			ys = append(ys, label(j))
			emitted++
			if emitted >= want {
				return xs, ys
			}
		}
	}
	return xs, ys
}

// trueIdx returns the entry containing key, or -1.
func (t *trainer) trueIdx(key uint64) int {
	k := uint32(key)
	los, his := t.model.los, t.model.his
	lo, hi := 0, len(los)-1
	if hi < 0 {
		return -1
	}
	for lo < hi {
		mid := int(uint(lo+hi+1) >> 1)
		if los[mid] <= k {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if los[lo] <= k && k <= his[lo] {
		return lo
	}
	return -1
}
