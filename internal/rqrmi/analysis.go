package rqrmi

import (
	"sort"
)

// This file implements the analytic machinery of §3.5 and Appendix A —
// trigger inputs, transition inputs, responsibility propagation
// (Theorem A.1) and worst-case leaf error (Theorem A.13) — grounded on the
// integer key lattice (see the package comment for why).
//
// Within a linear piece of the network, the clamped output M is weakly
// monotone, so the quantized bucket function k ↦ ⌊M(k·2^-32)·w⌋ is a
// monotone step function of the key. Each transition input is therefore
// located exactly by binary search over the keys of the piece, using the
// same evaluation the model performs at lookup time. ReLU kinks, whose
// float64 positions may be off by ulps from the real roots, are handled by
// isolating the (at most one) lattice key adjacent to each kink into its own
// singleton segment, which is evaluated directly rather than assumed linear.

// kinterval is a closed interval [lo, hi] of keys. lo == hi is a singleton.
type kinterval struct {
	lo, hi uint64
}

func (iv kinterval) count() uint64 { return iv.hi - iv.lo + 1 }

// kinkKeys returns, for each ReLU kink of the submodel that falls inside
// (x(lo), x(hi)), the lattice keys flanking the kink (clipped to [lo, hi]).
// Using both flanking keys as partition points isolates the at-most-one
// ambiguous key per kink into a singleton segment, which partition evaluates
// directly, so every multi-key piece is strictly linear over its keys.
func (s *submodel) kinkKeys(lo, hi uint64) []uint64 {
	out := make([]uint64, 0, 2*len(s.w1))
	xlo, xhi := float64(lo)*scale, float64(hi)*scale
	for k, w := range s.w1 {
		if w == 0 {
			continue
		}
		// Hidden unit k flips where w·u + b1 = 0 with u = (x-inLo)/inSpan.
		u := -s.b1[k] / w
		x := s.inLo + u*s.inSpan
		if x <= xlo || x >= xhi {
			continue
		}
		kk := uint64(x / scale)
		if kk >= lo && kk <= hi {
			out = append(out, kk)
		}
		if kk+1 >= lo && kk+1 <= hi {
			out = append(out, kk+1)
		}
	}
	return out
}

// partition returns the sorted, unique segment-start keys that split
// [lo, hi] into maximal runs of keys sharing the same bucket value under
// quantization width w. The first element is always lo. Segment i spans
// [starts[i], starts[i+1]-1] (the last spans through hi) and every key in a
// segment has the bucket value of its start key.
func (s *submodel) partition(lo, hi uint64, w int) []uint64 {
	starts := []uint64{lo}
	if lo == hi {
		return starts
	}
	// Piece boundaries: kink-adjacent keys, each opening a new segment so
	// that the possibly-nonlinear key is isolated and directly evaluated.
	pieces := append(s.kinkKeys(lo, hi), lo, hi)
	sort.Slice(pieces, func(i, j int) bool { return pieces[i] < pieces[j] })
	pieces = dedupKeys(pieces)

	for pi := 0; pi+1 < len(pieces); pi++ {
		a, b := pieces[pi], pieces[pi+1]
		if a != lo {
			starts = append(starts, a)
		}
		// Within [a, b] the bucket is monotone; walk the flips.
		ba := s.bucket(a, w)
		for s.bucket(b, w) != ba {
			// Binary search the first key in (a, b] whose bucket differs
			// from ba; monotonicity of the step function makes the
			// predicate monotone.
			flo, fhi := a+1, b
			for flo < fhi {
				mid := flo + (fhi-flo)/2
				if s.bucket(mid, w) != ba {
					fhi = mid
				} else {
					flo = mid + 1
				}
			}
			starts = append(starts, flo)
			a = flo
			ba = s.bucket(a, w)
		}
	}
	return dedupKeys(starts)
}

func dedupKeys(ks []uint64) []uint64 {
	if len(ks) == 0 {
		return ks
	}
	out := ks[:1]
	for _, k := range ks[1:] {
		if k != out[len(out)-1] {
			out = append(out, k)
		}
	}
	return out
}

// respSet accumulates the responsibility intervals (Definition A.3) of the
// next stage's submodels while the current stage is analyzed.
type respSet struct {
	ivs [][]kinterval
}

func newRespSet(width int) *respSet {
	return &respSet{ivs: make([][]kinterval, width)}
}

// add registers [lo, hi] as part of submodel b's responsibility, merging
// with the previous interval when contiguous. Intervals arrive in
// nondecreasing order of lo for each bucket because propagate sweeps keys
// left to right.
func (r *respSet) add(b int, lo, hi uint64) {
	s := r.ivs[b]
	if n := len(s); n > 0 && s[n-1].hi+1 >= lo {
		if hi > s[n-1].hi {
			s[n-1].hi = hi
		}
		return
	}
	r.ivs[b] = append(s, kinterval{lo, hi})
}

// propagate computes the next stage's responsibilities from a trained
// submodel and its own responsibility (Theorem A.1): partition yields
// maximal constant-bucket segments, each routed whole.
func (s *submodel) propagate(resp []kinterval, nextWidth int, into *respSet) {
	for _, iv := range resp {
		starts := s.partition(iv.lo, iv.hi, nextWidth)
		for i, start := range starts {
			end := iv.hi
			if i+1 < len(starts) {
				end = starts[i+1] - 1
			}
			into.add(s.bucket(start, nextWidth), start, end)
		}
	}
}

// totalKeys returns the number of keys covered by a responsibility.
func totalKeys(resp []kinterval) uint64 {
	var t uint64
	for _, iv := range resp {
		t += iv.count()
	}
	return t
}

// hull returns the smallest interval covering the responsibility; ok is
// false for an empty responsibility.
func hull(resp []kinterval) (kinterval, bool) {
	if len(resp) == 0 {
		return kinterval{}, false
	}
	return kinterval{resp[0].lo, resp[len(resp)-1].hi}, true
}

// leafMaxError computes the exact worst-case index prediction error of a
// trained leaf submodel over every key of its responsibility that is covered
// by an entry (Theorem A.13). los/his are the sorted inclusive boundaries of
// the model's entries. Keys in gaps impose no constraint — a miss there is
// caught by validation (§3.6) — so only the responsibility ∩ entry overlaps
// are partitioned, keeping the cost proportional to the entries touched plus
// the prediction flips inside them.
func (s *submodel) leafMaxError(resp []kinterval, los, his []uint32) int32 {
	n := len(los)
	if n == 0 {
		return 0
	}
	var worst int32
	probe := func(key uint64, ti int) {
		pred := s.bucket(key, n)
		d := int32(pred - ti)
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}

	for _, iv := range resp {
		// First entry that can overlap iv: the last with Lo <= iv.lo, or
		// the first overall.
		j := sort.Search(n, func(i int) bool { return uint64(los[i]) > iv.lo })
		if j > 0 {
			j--
		}
		for ; j < n && uint64(los[j]) <= iv.hi; j++ {
			olo, ohi := uint64(los[j]), uint64(his[j])
			if olo < iv.lo {
				olo = iv.lo
			}
			if ohi > iv.hi {
				ohi = iv.hi
			}
			if olo > ohi {
				continue
			}
			// Within the overlap the true index is constantly j; the
			// prediction is constant per partition segment, so probing
			// the segment starts bounds every key of the overlap.
			for _, k := range s.partition(olo, ohi, n) {
				probe(k, j)
			}
		}
	}
	return worst
}
