package rqrmi

import (
	"math/rand"
	"testing"

	"nuevomatch/internal/rules"
)

// genEntries builds n non-overlapping ranges with the given expected gap and
// width parameters, returning the entries and the universe covered.
func genEntries(rng *rand.Rand, n int, maxGap, maxWidth uint32) []Entry {
	es := make([]Entry, 0, n)
	var cur uint64
	for i := 0; i < n; i++ {
		cur += uint64(rng.Uint32() % (maxGap + 1))
		w := uint64(rng.Uint32() % maxWidth)
		if cur+w > maxKey {
			break
		}
		es = append(es, Entry{Range: rules.Range{Lo: uint32(cur), Hi: uint32(cur + w)}, Value: i * 3})
		cur += w + 1
		if cur > maxKey {
			break
		}
	}
	return es
}

func smallConfig() Config {
	return Config{
		StageWidths:    []int{1, 4},
		Hidden:         8,
		TargetError:    32,
		MaxRetrain:     2,
		MinSamples:     64,
		MaxSamples:     1024,
		InternalEpochs: 120,
		LeafEpochs:     200,
		Seed:           1,
		Workers:        2,
	}
}

func TestValidateEntries(t *testing.T) {
	_, err := validateEntries([]Entry{
		{Range: rules.Range{Lo: 10, Hi: 20}},
		{Range: rules.Range{Lo: 15, Hi: 30}},
	})
	if err == nil {
		t.Error("overlapping ranges should be rejected")
	}
	_, err = validateEntries([]Entry{{Range: rules.Range{Lo: 20, Hi: 10}}})
	if err == nil {
		t.Error("inverted range should be rejected")
	}
	es, err := validateEntries([]Entry{
		{Range: rules.Range{Lo: 50, Hi: 60}, Value: 1},
		{Range: rules.Range{Lo: 0, Hi: 10}, Value: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if es[0].Value != 0 || es[1].Value != 1 {
		t.Error("entries should be sorted by range start")
	}
	// Adjacent but non-overlapping ranges are fine.
	if _, err := validateEntries([]Entry{
		{Range: rules.Range{Lo: 0, Hi: 10}},
		{Range: rules.Range{Lo: 11, Hi: 20}},
	}); err != nil {
		t.Errorf("adjacent ranges should be accepted: %v", err)
	}
}

func TestEmptyModel(t *testing.T) {
	m, stats, err := Train(nil, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Submodels != 0 {
		t.Errorf("Submodels = %d, want 0", stats.Submodels)
	}
	if _, ok := m.Lookup(1234); ok {
		t.Error("empty model must not find anything")
	}
	if m.Len() != 0 || m.MaxError() != 0 {
		t.Error("empty model invariants violated")
	}
}

func TestSingleEntry(t *testing.T) {
	m, _, err := Train([]Entry{{Range: rules.Range{Lo: 100, Hi: 200}, Value: 7}}, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint32{100, 150, 200} {
		v, ok := m.Lookup(k)
		if !ok || v != 7 {
			t.Errorf("Lookup(%d) = (%d, %v), want (7, true)", k, v, ok)
		}
	}
	for _, k := range []uint32{0, 99, 201, 1 << 31} {
		if _, ok := m.Lookup(k); ok {
			t.Errorf("Lookup(%d) should miss", k)
		}
	}
}

// exhaustiveCheck verifies every key of a small universe against the naive
// range scan; this exercises correctness at every boundary.
func exhaustiveCheck(t *testing.T, m *Model, es []Entry, upTo uint32) {
	t.Helper()
	for k := uint32(0); k <= upTo; k++ {
		want, found := -1, false
		for _, e := range es {
			if e.Range.Contains(k) {
				want, found = e.Value, true
				break
			}
		}
		got, ok := m.Lookup(k)
		if ok != found || (found && got != want) {
			t.Fatalf("Lookup(%d) = (%d, %v), want (%d, %v)", k, got, ok, want, found)
		}
	}
}

func TestLookupExhaustiveSmallUniverse(t *testing.T) {
	es := []Entry{
		{Range: rules.Range{Lo: 0, Hi: 4}, Value: 0},
		{Range: rules.Range{Lo: 5, Hi: 5}, Value: 1},
		{Range: rules.Range{Lo: 10, Hi: 19}, Value: 2},
		{Range: rules.Range{Lo: 25, Hi: 40}, Value: 3},
		{Range: rules.Range{Lo: 41, Hi: 41}, Value: 4},
		{Range: rules.Range{Lo: 100, Hi: 120}, Value: 5},
	}
	m, _, err := Train(es, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	exhaustiveCheck(t, m, es, 200)
}

func TestLookupRandomRanges(t *testing.T) {
	// Property: for random non-overlapping range sets spread over the full
	// 32-bit domain, lookups agree with the naive scan on boundary keys,
	// interior keys and gap keys.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		es := genEntries(rng, 200, 1<<24, 1<<20)
		m, _, err := Train(es, smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		probe := func(k uint32) {
			want, found := -1, false
			for _, e := range es {
				if e.Range.Contains(k) {
					want, found = e.Value, true
					break
				}
			}
			got, ok := m.Lookup(k)
			if ok != found || (found && got != want) {
				t.Fatalf("trial %d: Lookup(%d) = (%d, %v), want (%d, %v)", trial, k, got, ok, want, found)
			}
		}
		for _, e := range es {
			probe(e.Range.Lo)
			probe(e.Range.Hi)
			if e.Range.Lo > 0 {
				probe(e.Range.Lo - 1)
			}
			if e.Range.Hi < rules.MaxValue {
				probe(e.Range.Hi + 1)
			}
			probe(e.Range.Lo + uint32(e.Range.Size()/2))
		}
		for i := 0; i < 2000; i++ {
			probe(rng.Uint32())
		}
	}
}

func TestLookupThreeStages(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	es := genEntries(rng, 1500, 1<<20, 1<<16)
	cfg := smallConfig()
	cfg.StageWidths = []int{1, 4, 16}
	m, stats, err := Train(es, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStages() != 3 {
		t.Fatalf("NumStages = %d, want 3", m.NumStages())
	}
	if stats.Submodels != 1+4+16 {
		t.Errorf("Submodels = %d, want 21", stats.Submodels)
	}
	for _, e := range es {
		if v, ok := m.Lookup(e.Range.Lo); !ok || v != e.Value {
			t.Fatalf("Lookup(%d) = (%d, %v), want (%d, true)", e.Range.Lo, v, ok, e.Value)
		}
		if v, ok := m.Lookup(e.Range.Hi); !ok || v != e.Value {
			t.Fatalf("Lookup(%d) = (%d, %v), want (%d, true)", e.Range.Hi, v, ok, e.Value)
		}
	}
	for i := 0; i < 5000; i++ {
		k := rng.Uint32()
		want, found := -1, false
		for _, e := range es {
			if e.Range.Contains(k) {
				want, found = e.Value, true
				break
			}
		}
		got, ok := m.Lookup(k)
		if ok != found || (found && got != want) {
			t.Fatalf("Lookup(%d) = (%d, %v), want (%d, %v)", k, got, ok, want, found)
		}
	}
}

func TestAdjacentRangesNoGap(t *testing.T) {
	// Back-to-back ranges: every key is covered; indexes must be exact.
	es := make([]Entry, 64)
	lo := uint32(0)
	for i := range es {
		hi := lo + 1000
		es[i] = Entry{Range: rules.Range{Lo: lo, Hi: hi}, Value: i}
		lo = hi + 1
	}
	m, _, err := Train(es, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	exhaustiveCheck(t, m, es, 66000)
}

func TestErrorBoundIsRespected(t *testing.T) {
	// The stored per-leaf bound must cover the observed prediction error of
	// every covered key we can feasibly probe.
	rng := rand.New(rand.NewSource(5))
	es := genEntries(rng, 300, 1<<22, 1<<18)
	cfg := smallConfig()
	cfg.SafetySlack = -1 // store the exact measured bound
	m, _, err := Train(es, cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := func(k uint32) {
		ti := -1
		for i, e := range es {
			if e.Range.Contains(k) {
				ti = i
				break
			}
		}
		if ti < 0 {
			return
		}
		// es is sorted by construction, so position == entry index.
		leaf, pred := m.route(uint64(k))
		d := pred - ti
		if d < 0 {
			d = -d
		}
		if int32(d) > m.errs[leaf] {
			t.Fatalf("key %d: |pred-true| = %d exceeds leaf %d bound %d", k, d, leaf, m.errs[leaf])
		}
	}
	for _, e := range es {
		probe(e.Range.Lo)
		probe(e.Range.Hi)
	}
	for i := 0; i < 20000; i++ {
		probe(rng.Uint32())
	}
}

func TestSetValue(t *testing.T) {
	es := []Entry{{Range: rules.Range{Lo: 5, Hi: 9}, Value: 1}}
	m, _, err := Train(es, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.SetValue(0, -7)
	if v, ok := m.Lookup(7); !ok || v != -7 {
		t.Errorf("Lookup after SetValue = (%d, %v), want (-7, true)", v, ok)
	}
}

func TestDeterministicTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	es := genEntries(rng, 120, 1<<24, 1<<20)
	cfg := smallConfig()
	cfg.Workers = 4
	m1, _, err := Train(es, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := Train(es, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for si := range m1.stages {
		for j := range m1.stages[si] {
			a, b := &m1.stages[si][j], &m2.stages[si][j]
			for k := range a.w1 {
				if a.w1[k] != b.w1[k] || a.b1[k] != b.b1[k] || a.w2[k] != b.w2[k] {
					t.Fatalf("stage %d submodel %d differs between identical runs", si, j)
				}
			}
		}
	}
	for j := range m1.errs {
		if m1.errs[j] != m2.errs[j] {
			t.Fatalf("leaf %d error bound differs between identical runs", j)
		}
	}
}

func TestMemoryFootprint(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	es := genEntries(rng, 100, 1<<24, 1<<16)
	m, _, err := Train(es, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 5 submodels (1+4), 8 hidden => (25+2)*4 = 108 bytes each, plus 4 leaf
	// error bounds and 8 bytes bookkeeping.
	want := 5*108 + 4*4 + 8
	if got := m.MemoryFootprint(); got != want {
		t.Errorf("MemoryFootprint = %d, want %d", got, want)
	}
	// Boundary arrays and payloads plus the 8KB coarse gap bitmap.
	if got := m.ValueArrayBytes(); got != 12*len(es)+8*1024 {
		t.Errorf("ValueArrayBytes = %d, want %d", got, 12*len(es)+8*1024)
	}
}

func TestStageWidthsForSize(t *testing.T) {
	cases := []struct {
		n    int
		want []int
	}{
		{10, []int{1, 4}},
		{999, []int{1, 4}},
		{1000, []int{1, 4, 16}},
		{10000, []int{1, 4, 128}},
		{100000, []int{1, 8, 256}},
		{250000, []int{1, 8, 256}},
		{500000, []int{1, 8, 512}},
	}
	for _, c := range cases {
		got := StageWidthsForSize(c.n)
		if len(got) != len(c.want) {
			t.Errorf("StageWidthsForSize(%d) = %v, want %v", c.n, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("StageWidthsForSize(%d) = %v, want %v", c.n, got, c.want)
				break
			}
		}
	}
}

func TestConfigRejectsBadFirstWidth(t *testing.T) {
	cfg := smallConfig()
	cfg.StageWidths = []int{2, 4}
	if _, _, err := Train([]Entry{{Range: rules.Range{Lo: 0, Hi: 1}}}, cfg); err == nil {
		t.Error("first stage width != 1 should be rejected")
	}
}

func TestTargetErrorZeroValueUsesDefault(t *testing.T) {
	cfg := Config{}.withDefaults(500)
	if cfg.TargetError != 64 || cfg.Hidden != 8 || cfg.SafetySlack != 1 {
		t.Errorf("withDefaults gave %+v", cfg)
	}
	cfg = Config{SafetySlack: -1}.withDefaults(500)
	if cfg.SafetySlack != 0 {
		t.Errorf("negative SafetySlack should clamp to 0, got %d", cfg.SafetySlack)
	}
}

func TestFullDomainSingleRange(t *testing.T) {
	// One range covering the entire key space: every lookup hits.
	es := []Entry{{Range: rules.FullRange(), Value: 42}}
	m, _, err := Train(es, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint32{0, 1, 1 << 16, 1 << 31, rules.MaxValue} {
		if v, ok := m.Lookup(k); !ok || v != 42 {
			t.Errorf("Lookup(%d) = (%d, %v), want (42, true)", k, v, ok)
		}
	}
}

func TestExactMatchEntries(t *testing.T) {
	// Dense exact-match keys (ranges of size 1) — the hash-table-like case.
	es := make([]Entry, 256)
	for i := range es {
		k := uint32(i * 1000003)
		es[i] = Entry{Range: rules.ExactRange(k), Value: i}
	}
	m, _, err := Train(es, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range es {
		if v, ok := m.Lookup(e.Range.Lo); !ok || v != i {
			t.Fatalf("Lookup(%d) = (%d, %v), want (%d, true)", e.Range.Lo, v, ok, i)
		}
		if _, ok := m.Lookup(e.Range.Lo + 1); ok {
			t.Fatalf("Lookup(%d) should miss", e.Range.Lo+1)
		}
	}
}
