package rqrmi

import "math/bits"

// This file is the single-precision batched lookup path (§4): staged
// inference through the float32 kernel (AVX2 assembly or the bit-identical
// pure-Go form) followed by an 8-wide register-resident lockstep secondary
// search.
//
// Exactness argument. The float32 pipeline may predict a different entry
// index than the float64 pipeline — that is expected and harmless, because
// the secondary search window makes the final answer depend only on whether
// the true entry lies inside the window. The one hazard is the true entry
// falling OUTSIDE the float32 window. That condition is detectable in O(1)
// after the search, because entry starts are sorted and ranges are
// non-overlapping:
//
//   - left escape:  every entry in the window starts above the key
//     (los[l] > key after the search converges at the window floor);
//   - right escape: the search converged at the window ceiling and the next
//     entry also starts at or below the key (los[hi0+1] <= key).
//
// Either way the lane is rerouted to the exact scalar LookupEntry. In all
// other cases the window provably contains the key's global predecessor
// entry, and the containment check (los[l] <= key <= his[l]) decides
// found/miss exactly as the scalar path does. LookupEntryBatch therefore
// returns bit-identical results to LookupEntry for every key and every
// model, independent of kernel choice and of how well the re-validated
// float32 error bounds (errs32) fit — those only set the fallback rate.

// lookupEntryBatchF32 resolves keys through the float32 staged kernel,
// writing matched entry positions (or -1) into out. asm selects the AVX2
// kernel; results are identical either way.
//
//nm:hotpath
func (m *Model) lookupEntryBatchF32(keys []uint32, out []int32, asm bool) {
	var x, y, xg, yg [BatchChunk]float32
	var js, preds, order, act [BatchChunk]int32
	var akeys [BatchChunk]uint32
	var cnt [maxGroupWidth + 1]int32
	f := m.flat32
	last := len(m.stages) - 1
	nEntries := len(m.entries)
	maxIdx := int32(nEntries - 1)
	for off := 0; off < len(keys); off += BatchChunk {
		nIn := len(keys) - off
		if nIn > BatchChunk {
			nIn = BatchChunk
		}
		block := keys[off : off+nIn]
		// Compact away keys the coarse bitmap proves to be in a gap.
		n := 0
		for c, k := range block {
			if !m.coarseHit(k) {
				out[off+c] = -1
				continue
			}
			act[n] = int32(c)
			akeys[n] = k
			x[n] = float32(k) * scale32
			js[n] = 0
			n++
		}
		if n == 0 {
			continue
		}
		for s := 0; s <= last; s++ {
			outW := nEntries
			if s < last {
				outW = m.widths[s+1]
			}
			width := m.widths[s]
			fw := float32(outW)
			outW32 := int32(outW)
			isLeaf := s == last
			switch {
			case width == 1:
				f.evalBlock(int(f.off[s]), x[:n], y[:n], asm)
				if isLeaf {
					for c := 0; c < n; c++ {
						preds[c] = quantize32(y[c], fw, outW32)
					}
				} else {
					for c := 0; c < n; c++ {
						js[c] = quantize32(y[c], fw, outW32)
					}
				}
			case width <= maxGroupWidth:
				// Counting-sort keys by owning submodel so each group runs
				// the kernel with one parameter set; scatter results back.
				for j := 0; j <= width; j++ {
					cnt[j] = 0
				}
				for c := 0; c < n; c++ {
					cnt[js[c]+1]++
				}
				for j := 0; j < width; j++ {
					cnt[j+1] += cnt[j]
				}
				for c := 0; c < n; c++ {
					pos := cnt[js[c]]
					cnt[js[c]] = pos + 1
					order[pos] = int32(c)
					xg[pos] = x[c]
				}
				start := 0
				for j := 0; j < width && start < n; j++ {
					end := int(cnt[j])
					if end > start {
						f.evalBlock(int(f.off[s])+j, xg[start:end], yg[start:end], asm)
						start = end
					}
				}
				if isLeaf {
					for c := 0; c < n; c++ {
						preds[order[c]] = quantize32(yg[c], fw, outW32)
					}
				} else {
					for c := 0; c < n; c++ {
						js[order[c]] = quantize32(yg[c], fw, outW32)
					}
				}
			default:
				// Degenerately wide stage (hand-built models): scalar lanes
				// through the Go kernel, still bit-identical to vector lanes.
				var xa, ya [1]float32
				for c := 0; c < n; c++ {
					xa[0] = x[c]
					f.evalBlockGo(int(f.off[s])+int(js[c]), xa[:], ya[:])
					q := quantize32(ya[0], fw, outW32)
					if isLeaf {
						preds[c] = q
					} else {
						js[c] = q
					}
				}
			}
		}
		// Search windows from the re-validated float32 bounds. hi0 keeps the
		// original window ceiling: the branchless rounds drive hi below lo on
		// converged lanes, but right-escape detection needs the true ceiling.
		var lo, hi, hi0 [BatchChunk]int32
		for c := 0; c < n; c++ {
			e := m.errs32[js[c]]
			l, h := preds[c]-e, preds[c]+e
			if l < 0 {
				l = 0
			}
			if h > maxIdx {
				h = maxIdx
			}
			lo[c], hi[c] = l, h
			hi0[c] = h
		}
		// Lockstep search, 8 lanes per group with state in named locals so
		// the whole search runs register-resident: every round issues 8
		// independent boundary-array loads (hiding each other's latency) and
		// advances all 8 searches one branchless step. The step is idempotent
		// once a lane converges, so the group runs its widest lane's round
		// count; groups run their own count, so a single wide window does not
		// tax the whole chunk.
		los := m.los
		for c0 := 0; c0 < n; c0 += 8 {
			g := n - c0
			if g > 8 {
				g = 8
			}
			// Padding lanes get lo=hi=0: converged from the start, and lane 0
			// of the boundary array is always a valid load.
			l0, l1, l2, l3, l4, l5, l6, l7 := int32(0), int32(0), int32(0), int32(0), int32(0), int32(0), int32(0), int32(0)
			h0, h1, h2, h3, h4, h5, h6, h7 := int32(0), int32(0), int32(0), int32(0), int32(0), int32(0), int32(0), int32(0)
			var k0, k1, k2, k3, k4, k5, k6, k7 uint32
			rounds := 0
			for i := 0; i < g; i++ {
				l, h, k := lo[c0+i], hi[c0+i], akeys[c0+i]
				switch i {
				case 0:
					l0, h0, k0 = l, h, k
				case 1:
					l1, h1, k1 = l, h, k
				case 2:
					l2, h2, k2 = l, h, k
				case 3:
					l3, h3, k3 = l, h, k
				case 4:
					l4, h4, k4 = l, h, k
				case 5:
					l5, h5, k5 = l, h, k
				case 6:
					l6, h6, k6 = l, h, k
				case 7:
					l7, h7, k7 = l, h, k
				}
				if w := int(h - l); w > 0 {
					if r := bits.Len(uint(w)); r > rounds {
						rounds = r
					}
				}
			}
			for ; rounds > 0; rounds-- {
				m0 := int32(uint32(l0+h0+1) >> 1)
				m1 := int32(uint32(l1+h1+1) >> 1)
				m2 := int32(uint32(l2+h2+1) >> 1)
				m3 := int32(uint32(l3+h3+1) >> 1)
				m4 := int32(uint32(l4+h4+1) >> 1)
				m5 := int32(uint32(l5+h5+1) >> 1)
				m6 := int32(uint32(l6+h6+1) >> 1)
				m7 := int32(uint32(l7+h7+1) >> 1)
				b0 := los[m0]
				b1 := los[m1]
				b2 := los[m2]
				b3 := los[m3]
				b4 := los[m4]
				b5 := los[m5]
				b6 := los[m6]
				b7 := los[m7]
				var g0, g1, g2, g3, g4, g5, g6, g7 int32
				if b0 <= k0 {
					g0 = 1
				}
				if b1 <= k1 {
					g1 = 1
				}
				if b2 <= k2 {
					g2 = 1
				}
				if b3 <= k3 {
					g3 = 1
				}
				if b4 <= k4 {
					g4 = 1
				}
				if b5 <= k5 {
					g5 = 1
				}
				if b6 <= k6 {
					g6 = 1
				}
				if b7 <= k7 {
					g7 = 1
				}
				l0 += g0 * (m0 - l0)
				h0 -= (1 - g0) * (h0 - m0 + 1)
				l1 += g1 * (m1 - l1)
				h1 -= (1 - g1) * (h1 - m1 + 1)
				l2 += g2 * (m2 - l2)
				h2 -= (1 - g2) * (h2 - m2 + 1)
				l3 += g3 * (m3 - l3)
				h3 -= (1 - g3) * (h3 - m3 + 1)
				l4 += g4 * (m4 - l4)
				h4 -= (1 - g4) * (h4 - m4 + 1)
				l5 += g5 * (m5 - l5)
				h5 -= (1 - g5) * (h5 - m5 + 1)
				l6 += g6 * (m6 - l6)
				h6 -= (1 - g6) * (h6 - m6 + 1)
				l7 += g7 * (m7 - l7)
				h7 -= (1 - g7) * (h7 - m7 + 1)
			}
			for i := 0; i < g; i++ {
				switch i {
				case 0:
					lo[c0] = l0
				case 1:
					lo[c0+1] = l1
				case 2:
					lo[c0+2] = l2
				case 3:
					lo[c0+3] = l3
				case 4:
					lo[c0+4] = l4
				case 5:
					lo[c0+5] = l5
				case 6:
					lo[c0+6] = l6
				case 7:
					lo[c0+7] = l7
				}
			}
		}
		// Resolve lanes: escape detection first (see file comment), then the
		// exact containment check.
		for c := 0; c < n; c++ {
			l, k := lo[c], akeys[c]
			if los[l] > k || (l == hi0[c] && l < maxIdx && los[l+1] <= k) {
				// The float32 window may have missed the true entry: resolve
				// this key on the exact scalar float64 path.
				if idx, ok := m.LookupEntry(k); ok {
					out[off+int(act[c])] = int32(idx)
				} else {
					out[off+int(act[c])] = -1
				}
				continue
			}
			if k <= m.his[l] {
				out[off+int(act[c])] = l
			} else {
				out[off+int(act[c])] = -1
			}
		}
	}
}
