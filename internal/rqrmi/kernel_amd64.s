//go:build amd64 && !noasm

#include "textflag.h"

// func evalBlockAVX2(tri *float32, h int64, hdr *float32, x *float32, y *float32, n int64)
//
// 8-wide fused two-layer RQ-RMI submodel evaluation (paper §4.1): for each
// key lane,
//
//	u = (x - inLo) * invSpan
//	y = b2 + Σ_k w2[k] * relu(u*w1[k] + b1[k])
//	y = min(max(y, +0), 1-2^-24)
//
// The Go assembler's operand order is Intel-reversed (destination last), so
// e.g. VMAXPS Y15, Y4, Y4 is Intel vmaxps y4, y4, y15: src2 = Y15. VMAXPS/
// VMINPS return src2 when the sources compare equal (±0) or either is NaN —
// placing the constant in src2 makes the select direction match the Go
// kernel's negated comparisons (`if !(z > 0) { z = 0 }`) bit for bit.
//
// No FMA anywhere: VMULPS then VADDPS, two roundings, so results are
// reproducible against the pure-Go kernel on every host.
//
// Layout: tri holds h interleaved (w1, b1, w2) triplets — 12 bytes per
// hidden unit, one submodel's parameters contiguous; hdr = {inLo, invSpan,
// b2}. The main loop runs 16 keys per iteration (two YMM accumulators to
// hide VADDPS latency); an 8-wide loop finishes. The caller guarantees
// n > 0, n%8 == 0 and h > 0; sub-8 tails take the Go kernel.
//
// Register plan:
//	Y12 inLo   Y13 invSpan   Y14 b2   Y15 +0.0   Y11 clampHi (1-2^-24)
//	Y0,Y1 normalized inputs u   Y2,Y3 accumulators   Y4,Y5 scratch z
//	Y8 w1   Y9 b1   Y10 w2 (broadcast per hidden unit)
//	R8 tri base   R9 h   R10 x cursor   R11 y cursor   R12 keys left
//	BX tri cursor   CX hidden-unit counter
TEXT ·evalBlockAVX2(SB), NOSPLIT, $0-48
	MOVQ tri+0(FP), R8
	MOVQ h+8(FP), R9
	MOVQ hdr+16(FP), AX
	MOVQ x+24(FP), R10
	MOVQ y+32(FP), R11
	MOVQ n+40(FP), R12

	VBROADCASTSS (AX), Y12  // inLo
	VBROADCASTSS 4(AX), Y13 // invSpan
	VBROADCASTSS 8(AX), Y14 // b2
	VXORPS       Y15, Y15, Y15

	// clampHi = 0x3F7FFFFF = 1 - 2^-24, largest float32 < 1.0
	MOVL         $0x3F7FFFFF, AX
	VMOVD        AX, X11
	VPBROADCASTD X11, Y11

loop16:
	CMPQ    R12, $16
	JL      loop8
	VMOVUPS (R10), Y0
	VMOVUPS 32(R10), Y1
	VSUBPS  Y12, Y0, Y0 // u = x - inLo
	VMULPS  Y13, Y0, Y0 // u *= invSpan
	VSUBPS  Y12, Y1, Y1
	VMULPS  Y13, Y1, Y1
	VMOVAPS Y14, Y2     // y = b2
	VMOVAPS Y14, Y3
	MOVQ    R8, BX
	MOVQ    R9, CX

inner16:
	VBROADCASTSS (BX), Y8   // w1[k]
	VBROADCASTSS 4(BX), Y9  // b1[k]
	VBROADCASTSS 8(BX), Y10 // w2[k]
	VMULPS       Y8, Y0, Y4
	VADDPS       Y9, Y4, Y4 // z = u*w1 + b1
	VMAXPS       Y15, Y4, Y4 // relu; src2=+0 wins on -0/NaN
	VMULPS       Y10, Y4, Y4
	VADDPS       Y4, Y2, Y2 // y += w2*relu(z)
	VMULPS       Y8, Y1, Y5
	VADDPS       Y9, Y5, Y5
	VMAXPS       Y15, Y5, Y5
	VMULPS       Y10, Y5, Y5
	VADDPS       Y5, Y3, Y3
	ADDQ         $12, BX
	DECQ         CX
	JNZ          inner16

	VMAXPS  Y15, Y2, Y2 // clamp to [0, 1-2^-24]
	VMINPS  Y11, Y2, Y2
	VMAXPS  Y15, Y3, Y3
	VMINPS  Y11, Y3, Y3
	VMOVUPS Y2, (R11)
	VMOVUPS Y3, 32(R11)
	ADDQ    $64, R10
	ADDQ    $64, R11
	SUBQ    $16, R12
	JMP     loop16

loop8:
	CMPQ    R12, $8
	JL      done
	VMOVUPS (R10), Y0
	VSUBPS  Y12, Y0, Y0
	VMULPS  Y13, Y0, Y0
	VMOVAPS Y14, Y2
	MOVQ    R8, BX
	MOVQ    R9, CX

inner8:
	VBROADCASTSS (BX), Y8
	VBROADCASTSS 4(BX), Y9
	VBROADCASTSS 8(BX), Y10
	VMULPS       Y8, Y0, Y4
	VADDPS       Y9, Y4, Y4
	VMAXPS       Y15, Y4, Y4
	VMULPS       Y10, Y4, Y4
	VADDPS       Y4, Y2, Y2
	ADDQ         $12, BX
	DECQ         CX
	JNZ          inner8

	VMAXPS  Y15, Y2, Y2
	VMINPS  Y11, Y2, Y2
	VMOVUPS Y2, (R11)
	ADDQ    $32, R10
	ADDQ    $32, R11
	SUBQ    $8, R12
	JMP     loop8

done:
	VZEROUPPER
	RET
