package rqrmi

import (
	"math"
	"math/rand"
	"testing"
)

// randomFlat32 builds a single-submodel flatStages32 with the given hidden
// width and pseudo-random but finite parameters.
//
//nm:builder flatStages32
func randomFlat32(rng *rand.Rand, h int) *flatStages32 {
	f := &flatStages32{
		h:   h,
		off: []int32{0},
		tri: make([]float32, 3*h),
		hdr: make([]float32, 3),
	}
	for k := 0; k < h; k++ {
		f.tri[3*k] = float32(rng.NormFloat64() * 10)  // w1
		f.tri[3*k+1] = float32(rng.NormFloat64() * 2) // b1
		f.tri[3*k+2] = float32(rng.NormFloat64())     // w2
	}
	f.hdr[0] = float32(rng.Float64() * 0.5)     // inLo
	f.hdr[1] = float32(1 + rng.Float64()*100)   // invSpan
	f.hdr[2] = float32(rng.NormFloat64() * 0.1) // b2
	return f
}

// TestAsmGoKernelBitIdentical drives the AVX2 kernel and the pure-Go kernel
// over identical inputs — random lanes plus adversarial values (-0,
// denormals, values straddling the clamp) — and demands exact bit equality
// on every lane, for every hidden width and for every length mod 16 (to
// cover the 16-wide, 8-wide and Go-tail paths).
func TestAsmGoKernelBitIdentical(t *testing.T) {
	if !HasAsmKernel() {
		t.Skip("assembly kernel not available on this build/host")
	}
	rng := rand.New(rand.NewSource(6))
	for _, h := range []int{1, 2, 7, 8, 9} {
		f := randomFlat32(rng, h)
		for _, n := range []int{1, 7, 8, 9, 15, 16, 17, 64, 128, 129} {
			x := make([]float32, n)
			for i := range x {
				switch i % 7 {
				case 0:
					x[i] = float32(math.Copysign(0, -1)) // -0
				case 1:
					x[i] = math.Float32frombits(1) // smallest denormal
				case 2:
					x[i] = f.hdr[0] // exactly inLo → u = ±0
				default:
					x[i] = rng.Float32()
				}
			}
			got := make([]float32, n)
			want := make([]float32, n)
			f.evalBlock(0, x, got, true)
			f.evalBlockGo(0, x, want)
			for i := range got {
				if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
					t.Fatalf("h=%d n=%d lane %d: asm %08x (%g) != go %08x (%g) for x=%g",
						h, n, i, math.Float32bits(got[i]), got[i],
						math.Float32bits(want[i]), want[i], x[i])
				}
			}
		}
	}
}

// FuzzKernelEquivalence fuzzes one hidden unit's parameters, the submodel
// header and two input keys, asserting asm ≡ Go bitwise across an 8-lane
// block. Parameters are sanitized to finite values only — the kernels agree
// on NaN/Inf select direction by design, but fuzzing asserts the contract
// on the domain trained models inhabit.
func FuzzKernelEquivalence(f *testing.F) {
	if !HasAsmKernel() {
		f.Skip("assembly kernel not available on this build/host")
	}
	f.Add(float32(1), float32(0), float32(1), float32(0), float32(1), float32(0), float32(0.25), float32(0.75))
	f.Add(float32(-3.5), float32(0.1), float32(-1), float32(0.5), float32(64), float32(-0.01), float32(0.5), float32(0.5))
	// -0 and denormal inputs; weights crossing the ReLU knee.
	f.Add(float32(math.Copysign(0, -1)), float32(0), float32(2), float32(0), float32(8), float32(0),
		math.Float32frombits(1), math.Float32frombits(0x80000001))
	f.Add(float32(1e20), float32(-1e20), float32(1e-20), float32(0.9999999), float32(1e10), float32(1), float32(0), float32(1))
	fin := func(v float32) float32 {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return 0
		}
		return v
	}
	f.Fuzz(func(t *testing.T, w1, b1, w2, inLo, invSp, b2, x0, x1 float32) {
		fl := &flatStages32{
			h:   2,
			off: []int32{0},
			tri: []float32{fin(w1), fin(b1), fin(w2), fin(w2), fin(w1), fin(b1)},
			hdr: []float32{fin(inLo), fin(invSp), fin(b2)},
		}
		x := []float32{fin(x0), fin(x1), fin(x0) + 1, fin(x1) - 1, 0, 0.5, fin(x0) * 0.5, fin(x1) * 2}
		got := make([]float32, len(x))
		want := make([]float32, len(x))
		fl.evalBlock(0, x, got, true)
		fl.evalBlockGo(0, x, want)
		for i := range got {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				t.Fatalf("lane %d: asm %08x != go %08x (x=%g params=%v hdr=%v)",
					i, math.Float32bits(got[i]), math.Float32bits(want[i]), x[i], fl.tri, fl.hdr)
			}
		}
	})
}
