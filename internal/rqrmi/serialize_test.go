package rqrmi

import (
	"bytes"
	"math/rand"
	"testing"

	"nuevomatch/internal/rules"
)

func TestSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	es := genEntries(rng, 300, 1<<22, 1<<18)
	cfg := smallConfig()
	cfg.StageWidths = []int{1, 4, 8}
	m, _, err := Train(es, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := m.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	back, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != m.Len() || back.MaxError() != m.MaxError() ||
		back.NumStages() != m.NumStages() || back.NumSubmodels() != m.NumSubmodels() {
		t.Fatal("model shape changed across serialization")
	}
	// Lookups must be bit-identical.
	for i := 0; i < 20000; i++ {
		k := rng.Uint32()
		v1, ok1 := m.Lookup(k)
		v2, ok2 := back.Lookup(k)
		if v1 != v2 || ok1 != ok2 {
			t.Fatalf("Lookup(%d) differs: (%d,%v) vs (%d,%v)", k, v1, ok1, v2, ok2)
		}
	}
	for _, e := range es {
		v1, ok1 := m.Lookup(e.Range.Lo)
		v2, ok2 := back.Lookup(e.Range.Lo)
		if v1 != v2 || ok1 != ok2 {
			t.Fatalf("boundary Lookup(%d) differs", e.Range.Lo)
		}
	}
}

// TestSerializeVersionSelection pins the codec's version choice: trained
// models carry float32-rounded parameters, so they must take the compact v2
// encoding losslessly; a legacy model with float64-only weights must stay on
// v1 so its proven bounds survive the round-trip bit for bit.
func TestSerializeVersionSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m, _, err := Train(genEntries(rng, 200, 1<<22, 1<<18), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if v := buf.Bytes()[5]; v != 2 {
		t.Fatalf("trained model serialized as v%d, want v2 (float32)", v)
	}

	// Hand-built model with a weight float32 cannot represent.
	legacy := &Model{
		stages: [][]submodel{{{
			w1: []float64{1.0 / 3}, b1: []float64{0}, w2: []float64{1},
			b2: 0, inLo: 0, inSpan: 1,
		}}},
		widths:  []int{1},
		entries: []Entry{{Range: rules.Range{Lo: 10, Hi: 20}, Value: 7}},
		los:     []uint32{10}, his: []uint32{20},
		errs: []int32{1}, maxErr: 1,
	}
	legacy.finalize()
	var lbuf bytes.Buffer
	if _, err := legacy.WriteTo(&lbuf); err != nil {
		t.Fatal(err)
	}
	if v := lbuf.Bytes()[5]; v != 1 {
		t.Fatalf("legacy float64 model serialized as v%d, want v1", v)
	}
	back, err := ReadModel(&lbuf)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := back.Lookup(15); !ok || v != 7 {
		t.Fatalf("legacy round-trip Lookup(15) = (%d,%v), want (7,true)", v, ok)
	}
	// Re-encoding the reloaded legacy model must stay v1 (weights unchanged).
	var rbuf bytes.Buffer
	if _, err := back.WriteTo(&rbuf); err != nil {
		t.Fatal(err)
	}
	if v := rbuf.Bytes()[5]; v != 1 {
		t.Fatalf("legacy model re-serialized as v%d, want v1", v)
	}
}

func TestSerializeEmptyModel(t *testing.T) {
	m, _, err := Train(nil, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := back.Lookup(5); ok {
		t.Error("empty model must not match")
	}
}

func TestReadModelRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTRQ\x01xxxxxxxxxxxxxxxx"),
		append([]byte{'R', 'Q', 'R', 'M', 'I', 1}, 0xff, 0xff, 0xff, 0xff), // absurd stage count
	}
	for i, c := range cases {
		if _, err := ReadModel(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestReadModelRejectsOverlappingEntries(t *testing.T) {
	// Serialize a valid model, then corrupt an entry boundary.
	m, _, err := Train([]Entry{
		{Range: rules.Range{Lo: 0, Hi: 10}, Value: 0},
		{Range: rules.Range{Lo: 20, Hi: 30}, Value: 1},
	}, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The second entry's Lo is 12 bytes from the end of the entry block:
	// entries are trailed by len(errs)*4 bytes of bounds.
	loOff := len(data) - len(m.errs)*4 - 12
	data[loOff] = 5 // Lo: 20 -> 5, overlapping [0,10]
	if _, err := ReadModel(bytes.NewReader(data)); err == nil {
		t.Error("overlapping entries accepted")
	}
}
