package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewNearIdentity(t *testing.T) {
	m := New(8, rand.New(rand.NewSource(1)))
	for _, x := range []float64{0, 0.1, 0.25, 0.5, 0.75, 1} {
		if d := math.Abs(m.Eval(x) - x); d > 0.05 {
			t.Errorf("init Eval(%v) = %v, want ≈ x (|Δ| = %v)", x, m.Eval(x), d)
		}
	}
	if m.Hidden() != 8 {
		t.Errorf("Hidden() = %d, want 8", m.Hidden())
	}
	if m.NumParams() != 25 {
		t.Errorf("NumParams() = %d, want 25 (3·8+1)", m.NumParams())
	}
}

func TestNewPanicsOnBadHidden(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) should panic")
		}
	}()
	New(0, rand.New(rand.NewSource(1)))
}

func TestTrainLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := New(8, rng)
	xs := make([]float64, 128)
	ys := make([]float64, 128)
	for i := range xs {
		xs[i] = float64(i) / 127
		ys[i] = 0.3 + 0.4*xs[i]
	}
	loss := Train(m, xs, ys, TrainConfig{Epochs: 800})
	if loss > 1e-4 {
		t.Errorf("loss after training linear target = %v, want < 1e-4", loss)
	}
	if e := MaxAbsError(m, xs, ys); e > 0.02 {
		t.Errorf("max abs error = %v, want < 0.02", e)
	}
}

func TestTrainStepFunction(t *testing.T) {
	// CDF-like staircase: the shape leaf submodels actually learn.
	rng := rand.New(rand.NewSource(3))
	m := New(8, rng)
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := float64(i) / 199
		y := math.Floor(x*4) / 4
		xs = append(xs, x)
		ys = append(ys, y)
	}
	loss := Train(m, xs, ys, TrainConfig{Epochs: 1500, LR: 0.05})
	if loss > 0.01 {
		t.Errorf("loss after training staircase = %v, want < 0.01", loss)
	}
}

func TestTrainEmptyDataset(t *testing.T) {
	m := New(4, rand.New(rand.NewSource(4)))
	before := m.Clone()
	if loss := Train(m, nil, nil, TrainConfig{}); loss != 0 {
		t.Errorf("loss on empty dataset = %v, want 0", loss)
	}
	for k := range m.W1 {
		if m.W1[k] != before.W1[k] {
			t.Error("training on empty dataset must not change weights")
		}
	}
}

func TestTrainMismatchedLengthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Train with mismatched lengths should panic")
		}
	}()
	m := New(4, rand.New(rand.NewSource(5)))
	Train(m, []float64{1, 2}, []float64{1}, TrainConfig{})
}

func TestTrainIsDeterministic(t *testing.T) {
	build := func() *MLP {
		rng := rand.New(rand.NewSource(7))
		m := New(8, rng)
		xs := make([]float64, 64)
		ys := make([]float64, 64)
		for i := range xs {
			xs[i] = float64(i) / 63
			ys[i] = xs[i] * xs[i]
		}
		Train(m, xs, ys, TrainConfig{Epochs: 100})
		return m
	}
	a, b := build(), build()
	for k := range a.W1 {
		if a.W1[k] != b.W1[k] || a.B1[k] != b.B1[k] || a.W2[k] != b.W2[k] {
			t.Fatal("training must be deterministic for a fixed seed")
		}
	}
	if a.B2 != b.B2 {
		t.Fatal("training must be deterministic for a fixed seed")
	}
}

func TestTrainReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := New(8, rng)
	xs := make([]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i) / 99
		ys[i] = 0.9 - 0.8*xs[i] // decreasing: far from the identity init
	}
	initial := 0.0
	for i := range xs {
		d := m.Eval(xs[i]) - ys[i]
		initial += d * d
	}
	initial /= float64(len(xs))
	final := Train(m, xs, ys, TrainConfig{Epochs: 500})
	if final >= initial {
		t.Errorf("training did not reduce loss: %v -> %v", initial, final)
	}
	if final > 0.01 {
		t.Errorf("final loss %v too large for a linear target", final)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New(4, rand.New(rand.NewSource(9)))
	c := m.Clone()
	c.W1[0] = 1234
	c.B2 = -1
	if m.W1[0] == 1234 || m.B2 == -1 {
		t.Error("Clone must not share storage")
	}
}

func TestEvalPiecewiseLinear(t *testing.T) {
	// Between two adjacent ReLU kinks Eval must be exactly linear; verify by
	// second differences over a fine grid away from kinks.
	m := New(8, rand.New(rand.NewSource(10)))
	xs := make([]float64, 64)
	ys := make([]float64, 64)
	for i := range xs {
		xs[i] = float64(i) / 63
		ys[i] = math.Sin(xs[i]*3) * 0.3
	}
	Train(m, xs, ys, TrainConfig{Epochs: 300})

	kinks := make([]float64, 0, 8)
	for k := range m.W1 {
		if m.W1[k] != 0 {
			kinks = append(kinks, -m.B1[k]/m.W1[k])
		}
	}
	isNearKink := func(x float64) bool {
		for _, g := range kinks {
			if math.Abs(x-g) < 1e-3 {
				return true
			}
		}
		return false
	}
	const step = 1e-4
	for x := 0.0; x < 1-2*step; x += step {
		if isNearKink(x) || isNearKink(x+step) || isNearKink(x+2*step) {
			continue
		}
		d2 := m.Eval(x) - 2*m.Eval(x+step) + m.Eval(x+2*step)
		if math.Abs(d2) > 1e-9 {
			t.Fatalf("second difference %v at x=%v: Eval is not piecewise linear", d2, x)
		}
	}
}
