// Package nn implements the minimal neural-network machinery RQ-RMI needs: a
// fully-connected 3-layer perceptron with one scalar input, one scalar
// output, a single ReLU hidden layer (Definition 3.1 of the paper), and the
// Adam optimizer (§3.5.5) minimizing mean squared error.
//
// The paper trains submodels with TensorFlow; this package replaces it with
// a dependency-free implementation. The RQ-RMI correctness machinery only
// requires that the trained network be piecewise linear in its input, which
// holds for this architecture no matter how it is trained.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// MLP is the 3-layer network N(x) = ReLU(x·w1 + b1) × w2 + b2 of
// Definition 3.1: w1, b1 are the hidden layer's weight and bias vectors, w2
// is the output weight vector and b2 the output bias. The zero value is not
// usable; construct with New.
type MLP struct {
	W1, B1 []float64
	W2     []float64
	B2     float64
}

// New returns an MLP with h hidden units initialized close to the identity
// function on [0, 1]: the hidden kinks are spread uniformly over the domain
// and the output initially equals ReLU(x). This is a strong prior for the
// near-monotone key→index mappings RQ-RMI learns and makes Adam converge in
// a few hundred epochs. rng injects determinism; it must not be nil.
func New(h int, rng *rand.Rand) *MLP {
	if h < 1 {
		panic(fmt.Sprintf("nn: hidden size %d < 1", h))
	}
	m := &MLP{
		W1: make([]float64, h),
		B1: make([]float64, h),
		W2: make([]float64, h),
	}
	for k := 0; k < h; k++ {
		m.W1[k] = 1 + 0.01*rng.NormFloat64()
		m.B1[k] = -float64(k)/float64(h) + 0.01*rng.NormFloat64()
		m.W2[k] = 0.01 * rng.NormFloat64()
	}
	m.W2[0] = 1
	return m
}

// Hidden returns the number of hidden units.
func (m *MLP) Hidden() int { return len(m.W1) }

// Eval computes N(x).
func (m *MLP) Eval(x float64) float64 {
	y := m.B2
	for k, w := range m.W1 {
		z := x*w + m.B1[k]
		if z > 0 {
			y += m.W2[k] * z
		}
	}
	return y
}

// NumParams returns the number of scalar parameters (3h + 1).
func (m *MLP) NumParams() int { return 3*len(m.W1) + 1 }

// Clone returns a deep copy.
func (m *MLP) Clone() *MLP {
	return &MLP{
		W1: append([]float64(nil), m.W1...),
		B1: append([]float64(nil), m.B1...),
		W2: append([]float64(nil), m.W2...),
		B2: m.B2,
	}
}

// TrainConfig controls Train. The zero value is replaced by DefaultTrain.
type TrainConfig struct {
	Epochs int     // full-batch gradient steps
	LR     float64 // Adam step size
	Beta1  float64 // Adam first-moment decay
	Beta2  float64 // Adam second-moment decay
	Eps    float64 // Adam denominator epsilon
	// Patience stops training early when the loss has not improved by
	// more than Tol for Patience consecutive epochs. 0 disables.
	Patience int
	Tol      float64
}

// DefaultTrain is tuned for the ≤ few-thousand-sample datasets RQ-RMI
// submodels train on.
var DefaultTrain = TrainConfig{
	Epochs:   400,
	LR:       0.03,
	Beta1:    0.9,
	Beta2:    0.999,
	Eps:      1e-8,
	Patience: 150,
	Tol:      1e-10,
}

func (c TrainConfig) withDefaults() TrainConfig {
	d := DefaultTrain
	if c.Epochs > 0 {
		d.Epochs = c.Epochs
	}
	if c.LR > 0 {
		d.LR = c.LR
	}
	if c.Beta1 > 0 {
		d.Beta1 = c.Beta1
	}
	if c.Beta2 > 0 {
		d.Beta2 = c.Beta2
	}
	if c.Eps > 0 {
		d.Eps = c.Eps
	}
	if c.Patience > 0 {
		d.Patience = c.Patience
	}
	if c.Tol > 0 {
		d.Tol = c.Tol
	}
	return d
}

// Train fits the network to the dataset (xs[i], ys[i]) by full-batch Adam on
// the mean-squared-error loss (§3.5.5) and returns the final loss. Training
// on an empty dataset is a no-op returning 0. len(xs) must equal len(ys).
func Train(m *MLP, xs, ys []float64, cfg TrainConfig) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("nn: len(xs)=%d != len(ys)=%d", len(xs), len(ys)))
	}
	if len(xs) == 0 {
		return 0
	}
	c := cfg.withDefaults()
	h := len(m.W1)
	n := float64(len(xs))

	// Adam state: one slot per parameter, laid out [w1 | b1 | w2 | b2].
	np := 3*h + 1
	mom := make([]float64, np)
	vel := make([]float64, np)
	grad := make([]float64, np)
	z := make([]float64, h) // hidden pre-activations for the current sample

	best := math.Inf(1)
	stale := 0
	loss := 0.0
	for epoch := 1; epoch <= c.Epochs; epoch++ {
		for i := range grad {
			grad[i] = 0
		}
		loss = 0
		for i, x := range xs {
			pred := m.B2
			for k := 0; k < h; k++ {
				z[k] = x*m.W1[k] + m.B1[k]
				if z[k] > 0 {
					pred += m.W2[k] * z[k]
				}
			}
			diff := pred - ys[i]
			loss += diff * diff
			g := 2 * diff / n
			for k := 0; k < h; k++ {
				if z[k] > 0 {
					gw2 := g * z[k]
					gz := g * m.W2[k]
					grad[2*h+k] += gw2 // w2
					grad[k] += gz * x  // w1
					grad[h+k] += gz    // b1
				}
			}
			grad[3*h] += g // b2
		}
		loss /= n

		// Adam update with bias correction. The step size decays linearly
		// to 10% of LR over the run, which settles the oscillation Adam
		// exhibits near a minimum and tightens the final fit — important
		// because the submodel's worst-case error drives the secondary
		// search distance.
		t := float64(epoch)
		c1 := 1 - math.Pow(c.Beta1, t)
		c2 := 1 - math.Pow(c.Beta2, t)
		lr := c.LR * (1 - 0.9*t/float64(c.Epochs))
		for i := 0; i < np; i++ {
			mom[i] = c.Beta1*mom[i] + (1-c.Beta1)*grad[i]
			vel[i] = c.Beta2*vel[i] + (1-c.Beta2)*grad[i]*grad[i]
			step := lr * (mom[i] / c1) / (math.Sqrt(vel[i]/c2) + c.Eps)
			switch {
			case i < h:
				m.W1[i] -= step
			case i < 2*h:
				m.B1[i-h] -= step
			case i < 3*h:
				m.W2[i-2*h] -= step
			default:
				m.B2 -= step
			}
		}

		if c.Patience > 0 {
			if loss < best-c.Tol {
				best = loss
				stale = 0
			} else {
				stale++
				if stale >= c.Patience {
					break
				}
			}
		}
	}
	return loss
}

// MaxAbsError returns max_i |N(xs[i]) - ys[i]|, a convenience for tests and
// training diagnostics.
func MaxAbsError(m *MLP, xs, ys []float64) float64 {
	worst := 0.0
	for i, x := range xs {
		if d := math.Abs(m.Eval(x) - ys[i]); d > worst {
			worst = d
		}
	}
	return worst
}
